// Ablation A1: sensitivity to the weight limit K. Sweeps K from 64 to
// 1024 slots and reports partition counts and runtimes per algorithm on
// the mondial document (nested structure, where sibling partitioning
// matters most).
//
// Expected shape: partition counts fall roughly as 1/K for all
// algorithms; the gap between sibling partitioners (DHW/GHDW/EKM) and KM
// widens with K (more siblings fit together); exact-DP runtime grows
// super-linearly in K while the heuristics are K-independent.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/algorithm.h"

int main() {
  const double scale = natix::benchutil::ScaleFromEnv(0.5);
  static constexpr natix::TotalWeight kLimits[] = {64, 128, 256, 512, 1024};
  static constexpr std::string_view kAlgos[] = {"DHW", "GHDW", "EKM", "RS",
                                                "KM"};

  std::printf("Ablation: K sweep on mondial (scale %.2f)\n", scale);
  std::printf("cells: partitions / runtime\n\n");

  // The weight model caps node weights at K, so re-import per K.
  std::printf("%-6s", "algo");
  for (const natix::TotalWeight k : kLimits) {
    std::printf("        K=%-10llu", static_cast<unsigned long long>(k));
  }
  std::printf("\n");

  for (const std::string_view algo : kAlgos) {
    std::printf("%-6s", algo.data());
    std::fflush(stdout);
    for (const natix::TotalWeight k : kLimits) {
      const auto entry = natix::benchutil::LoadDocument("mondial", scale, k);
      natix::Timer timer;
      const natix::Result<natix::Partitioning> p =
          natix::PartitionWith(algo, entry->doc.tree, k);
      const double ms = timer.ElapsedMillis();
      p.status().CheckOK();
      char cell[40];
      std::snprintf(cell, sizeof(cell), "%zu / %.1fms", p->size(), ms);
      std::printf(" %19s", cell);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
