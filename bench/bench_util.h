#ifndef NATIX_BENCH_BENCH_UTIL_H_
#define NATIX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "xml/importer.h"

namespace natix {
namespace benchutil {

/// Benchmark scale factor: 1.0 reproduces the paper's document sizes
/// (Table 1). Override with NATIX_BENCH_SCALE to trade fidelity for
/// runtime (e.g. 0.1 for a quick smoke run).
inline double ScaleFromEnv(double default_scale = 1.0) {
  const char* env = std::getenv("NATIX_BENCH_SCALE");
  if (env == nullptr) return default_scale;
  const double v = std::atof(env);
  return v > 0 ? v : default_scale;
}

/// One generated-and-imported corpus document.
struct BenchDoc {
  const GeneratorInfo* info = nullptr;
  size_t xml_kb = 0;
  ImportedDocument doc;
};

/// Generates and imports the paper's six-document corpus at `scale`,
/// with the weight model capped at `limit` slots (the paper's K).
/// Heap-allocated so the ImportedDocument addresses stay stable for
/// NatixStore borrowing.
inline std::vector<std::unique_ptr<BenchDoc>> LoadCorpus(double scale,
                                                         TotalWeight limit) {
  std::vector<std::unique_ptr<BenchDoc>> corpus;
  WeightModel model;
  model.max_node_slots = static_cast<uint32_t>(limit);
  for (const GeneratorInfo& g : DocumentGenerators()) {
    const std::string xml = g.generate(/*seed=*/42, scale);
    Result<ImportedDocument> imp = ImportXml(xml, model);
    imp.status().CheckOK();
    auto entry = std::make_unique<BenchDoc>();
    entry->info = &g;
    entry->xml_kb = xml.size() / 1024;
    entry->doc = std::move(imp).value();
    corpus.push_back(std::move(entry));
  }
  return corpus;
}

/// Loads a single corpus document by generator name.
inline std::unique_ptr<BenchDoc> LoadDocument(std::string_view name,
                                              double scale,
                                              TotalWeight limit) {
  WeightModel model;
  model.max_node_slots = static_cast<uint32_t>(limit);
  const GeneratorInfo* g = FindGenerator(name);
  if (g == nullptr) {
    std::fprintf(stderr, "unknown generator %s\n", std::string(name).c_str());
    std::abort();
  }
  const std::string xml = g->generate(42, scale);
  Result<ImportedDocument> imp = ImportXml(xml, model);
  imp.status().CheckOK();
  auto entry = std::make_unique<BenchDoc>();
  entry->info = g;
  entry->xml_kb = xml.size() / 1024;
  entry->doc = std::move(imp).value();
  return entry;
}

}  // namespace benchutil
}  // namespace natix

#endif  // NATIX_BENCH_BENCH_UTIL_H_
