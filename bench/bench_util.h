#ifndef NATIX_BENCH_BENCH_UTIL_H_
#define NATIX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "datagen/generator.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/xpathmark.h"
#include "storage/buffer_manager.h"
#include "storage/store.h"
#include "xml/importer.h"

namespace natix {
namespace benchutil {

/// Benchmark scale factor: 1.0 reproduces the paper's document sizes
/// (Table 1). Override with NATIX_BENCH_SCALE to trade fidelity for
/// runtime (e.g. 0.1 for a quick smoke run).
inline double ScaleFromEnv(double default_scale = 1.0) {
  const char* env = std::getenv("NATIX_BENCH_SCALE");
  if (env == nullptr) return default_scale;
  const double v = std::atof(env);
  return v > 0 ? v : default_scale;
}

/// One generated-and-imported corpus document.
struct BenchDoc {
  const GeneratorInfo* info = nullptr;
  size_t xml_kb = 0;
  ImportedDocument doc;
};

/// Generates and imports the paper's six-document corpus at `scale`,
/// with the weight model capped at `limit` slots (the paper's K).
/// Heap-allocated so the ImportedDocument addresses stay stable for
/// NatixStore borrowing.
inline std::vector<std::unique_ptr<BenchDoc>> LoadCorpus(double scale,
                                                         TotalWeight limit) {
  std::vector<std::unique_ptr<BenchDoc>> corpus;
  WeightModel model;
  model.max_node_slots = static_cast<uint32_t>(limit);
  for (const GeneratorInfo& g : DocumentGenerators()) {
    const std::string xml = g.generate(/*seed=*/42, scale);
    Result<ImportedDocument> imp = ImportXml(xml, model);
    imp.status().CheckOK();
    auto entry = std::make_unique<BenchDoc>();
    entry->info = &g;
    entry->xml_kb = xml.size() / 1024;
    entry->doc = std::move(imp).value();
    corpus.push_back(std::move(entry));
  }
  return corpus;
}

/// Loads a single corpus document by generator name.
inline std::unique_ptr<BenchDoc> LoadDocument(std::string_view name,
                                              double scale,
                                              TotalWeight limit) {
  WeightModel model;
  model.max_node_slots = static_cast<uint32_t>(limit);
  const GeneratorInfo* g = FindGenerator(name);
  if (g == nullptr) {
    std::fprintf(stderr, "unknown generator %s\n", std::string(name).c_str());
    std::abort();
  }
  const std::string xml = g->generate(42, scale);
  Result<ImportedDocument> imp = ImportXml(xml, model);
  imp.status().CheckOK();
  auto entry = std::make_unique<BenchDoc>();
  entry->info = g;
  entry->xml_kb = xml.size() / 1024;
  entry->doc = std::move(imp).value();
  return entry;
}

/// One navigational query execution against a store: results plus the
/// access counters and their cost-model conversion. Shared by the query
/// benchmarks so they report identically.
struct QueryRun {
  std::vector<NodeId> result;
  AccessStats stats;
  double wall_ms = 0;
  double sim_ms = 0;
  /// Sweep use: total result nodes over all queries (the per-query
  /// vectors are discarded); lets two layouts be checked for equivalent
  /// answers without keeping every result alive.
  uint64_t result_nodes = 0;
};

/// Evaluates `path` against `store` (optionally through an LRU pool for
/// cold-cache runs; `provider` redirects pool misses, e.g. to a
/// FilePageSource), charging navigation to a fresh AccessStats.
inline QueryRun RunStoreQuery(const NatixStore& store, const PathExpr& path,
                              LruBufferPool* pool = nullptr,
                              const NavigationCostModel& cost = {},
                              const PageProvider* provider = nullptr) {
  QueryRun run;
  StoreQueryEvaluator eval(&store, &run.stats, pool, provider);
  Timer timer;
  Result<std::vector<NodeId>> result = eval.Evaluate(path);
  run.wall_ms = timer.ElapsedMillis();
  result.status().CheckOK();
  run.result = *std::move(result);
  run.sim_ms = cost.CostSeconds(run.stats) * 1e3;
  return run;
}

/// Runs all seven XPathMark queries back to back and accumulates their
/// access counters and simulated cost. Result vectors are discarded.
inline QueryRun RunXPathMarkSweep(const NatixStore& store,
                                  LruBufferPool* pool = nullptr,
                                  const NavigationCostModel& cost = {},
                                  const PageProvider* provider = nullptr) {
  QueryRun total;
  for (const XPathMarkQuery& q : XPathMarkQueries()) {
    const Result<PathExpr> path = ParseXPath(q.text);
    path.status().CheckOK();
    const QueryRun run = RunStoreQuery(store, *path, pool, cost, provider);
    total.stats.intra_moves += run.stats.intra_moves;
    total.stats.record_crossings += run.stats.record_crossings;
    total.stats.page_switches += run.stats.page_switches;
    total.wall_ms += run.wall_ms;
    total.sim_ms += run.sim_ms;
    total.result_nodes += run.result.size();
  }
  return total;
}

}  // namespace benchutil
}  // namespace natix

#endif  // NATIX_BENCH_BENCH_UTIL_H_
