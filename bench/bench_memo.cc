// Ablation A2: the memoization of Secs. 3.2.3 / 3.3.6. The dynamic
// programming tables only materialize root-weight values `s` that are
// reachable as (node weight + subset sums of child partition weights),
// instead of all K values. The paper reports that for a 20MB document and
// K = 256, "on average, less than 4 of the potential 256 values for s
// actually occur".
//
// This benchmark measures, per corpus document: the average number of
// materialized s-rows per inner node, the materialized DP cells, and the
// cells a full (non-memoized) table would allocate.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/exact_algorithms.h"

int main() {
  constexpr natix::TotalWeight kLimit = 256;
  const double scale = natix::benchutil::ScaleFromEnv(0.5);
  std::printf("Ablation: DP memoization (K = %llu, scale %.2f)\n\n",
              static_cast<unsigned long long>(kLimit), scale);
  std::printf("%-12s %6s | %14s %14s %16s %9s | %14s\n", "document", "algo",
              "rows/node", "cells", "full cells", "saving", "avg s-values");

  const auto corpus = natix::benchutil::LoadCorpus(scale, kLimit);
  for (const auto& entry : corpus) {
    for (const bool dhw : {false, true}) {
      natix::DpStats stats;
      const natix::Result<natix::Partitioning> p =
          dhw ? natix::DhwPartition(entry->doc.tree, kLimit, &stats)
              : natix::GhdwPartition(entry->doc.tree, kLimit, &stats);
      p.status().CheckOK();
      const double rows_per_node =
          stats.inner_nodes == 0
              ? 0.0
              : static_cast<double>(stats.rows) / stats.inner_nodes;
      const double saving =
          stats.full_table_cells == 0
              ? 0.0
              : 100.0 * (1.0 - static_cast<double>(stats.cells) /
                                   static_cast<double>(
                                       stats.full_table_cells));
      std::printf("%-12s %6s | %14.2f %14llu %16llu %8.1f%% | %14.2f\n",
                  std::string(entry->info->name).c_str(),
                  dhw ? "DHW" : "GHDW", rows_per_node,
                  static_cast<unsigned long long>(stats.cells),
                  static_cast<unsigned long long>(stats.full_table_cells),
                  saving, rows_per_node);
      std::fflush(stdout);
    }
  }
  std::printf("\npaper reference: <4 of 256 s-values per inner node on a "
              "20MB document\n");
  return 0;
}
