// Extension benchmark: sibling-axis queries (following-sibling /
// preceding-sibling) on the XMark document under the KM and EKM layouts.
//
// These axes are the purest use of what sibling partitioning provides:
// a sibling interval's members share a record, so sibling scans are
// intra-record under EKM but cross a record boundary per step under KM.
// Expect larger EKM speedups than any Table 3 query.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/heuristics.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "storage/store.h"

int main() {
  constexpr natix::TotalWeight kLimit = 256;
  const double scale = natix::benchutil::ScaleFromEnv(0.5);
  std::printf("Sibling-axis queries on XMark (K = %llu, scale %.2f)\n\n",
              static_cast<unsigned long long>(kLimit), scale);

  const auto entry = natix::benchutil::LoadDocument("xmark", scale, kLimit);
  const natix::ImportedDocument& doc = entry->doc;

  const auto km = natix::KmPartition(doc.tree, kLimit);
  const auto ekm = natix::EkmPartition(doc.tree, kLimit);
  km.status().CheckOK();
  ekm.status().CheckOK();
  const auto store_km = natix::NatixStore::Build(doc.Clone(), *km, kLimit);
  const auto store_ekm = natix::NatixStore::Build(doc.Clone(), *ekm, kLimit);
  store_km.status().CheckOK();
  store_ekm.status().CheckOK();

  static constexpr const char* kQueries[] = {
      "/site/regions/*/item/following-sibling::item",
      "/site/people/person/following-sibling::person",
      "/site/open_auctions/open_auction/bidder/following-sibling::bidder",
      "//listitem/following-sibling::listitem",
      "/site/closed_auctions/closed_auction/preceding-sibling::"
      "closed_auction",
      "/site/regions/*/item[following-sibling::item]/name",
  };

  const natix::NavigationCostModel cost;
  std::printf("%-62s | %11s %11s | %7s\n", "query", "KM-cross", "EKM-cross",
              "speedup");
  for (const char* q : kQueries) {
    const auto path = natix::ParseXPath(q);
    path.status().CheckOK();
    auto run = [&](const natix::NatixStore& store,
                   natix::AccessStats* stats) {
      natix::StoreQueryEvaluator eval(&store, stats);
      auto r = eval.Evaluate(*path);
      r.status().CheckOK();
      return r->size();
    };
    natix::AccessStats skm, sekm;
    const size_t n_km = run(*store_km, &skm);
    const size_t n_ekm = run(*store_ekm, &sekm);
    if (n_km != n_ekm) {
      std::fprintf(stderr, "BUG: result mismatch for %s\n", q);
      return 1;
    }
    std::printf("%-62s | %11llu %11llu | %6.2fx\n", q,
                static_cast<unsigned long long>(skm.record_crossings),
                static_cast<unsigned long long>(sekm.record_crossings),
                cost.CostSeconds(skm) / cost.CostSeconds(sekm));
  }
  return 0;
}
