// Thread-count sweep for the parallel DHW bottom-up phase on the Table 3
// document (XMark, K = 256): runs DHW with 1, 2, 4 and hardware_concurrency
// workers and reports wall time, speedup over the sequential run, and
// whether the outputs are byte-identical (they must be).
//
// Every configuration is emitted as one machine-readable JSON line
// (prefixed "BENCH_PARALLEL ") so future runs can be diffed as a
// trajectory:
//   BENCH_PARALLEL {"bench":"dhw_parallel","doc":"xmark",...}
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/exact_algorithms.h"
#include "tree/partitioning.h"

namespace {

double RunOnce(const natix::Tree& tree, natix::TotalWeight limit,
               unsigned threads, natix::Partitioning* out) {
  natix::DhwOptions opts;
  opts.num_threads = threads;
  natix::Timer timer;
  natix::Result<natix::Partitioning> p =
      natix::DhwPartition(tree, limit, opts);
  const double ms = timer.ElapsedMillis();
  p.status().CheckOK();
  *out = *std::move(p);
  return ms;
}

}  // namespace

int main() {
  constexpr natix::TotalWeight kLimit = 256;
  constexpr int kRepetitions = 3;
  const double scale = natix::benchutil::ScaleFromEnv();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::printf("DHW thread sweep on XMark (K = %llu, scale %.2f, %u hardware "
              "threads)\n\n",
              static_cast<unsigned long long>(kLimit), scale, hw);

  const auto entry = natix::benchutil::LoadDocument("xmark", scale, kLimit);
  const natix::Tree& tree = entry->doc.tree;
  std::printf("document: %zu nodes, %zu KB source\n\n", tree.size(),
              entry->xml_kb);

  std::vector<unsigned> sweep = {1, 2, 4, hw};
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());

  natix::Partitioning baseline;
  double baseline_ms = 0;
  std::printf("%8s %12s %9s %12s %10s\n", "threads", "wall-ms", "speedup",
              "partitions", "identical");
  for (const unsigned threads : sweep) {
    natix::Partitioning p;
    double best_ms = 0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const double ms = RunOnce(tree, kLimit, threads, &p);
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    const bool first = threads == sweep.front();
    if (first) {
      baseline = p;
      baseline_ms = best_ms;
    }
    const bool identical = p.intervals() == baseline.intervals();
    const double speedup = baseline_ms / best_ms;
    std::printf("%8u %12.1f %8.2fx %12zu %10s\n", threads, best_ms, speedup,
                p.size(), identical ? "yes" : "NO (bug!)");
    std::printf("BENCH_PARALLEL {\"bench\":\"dhw_parallel\",\"doc\":\"xmark\","
                "\"nodes\":%zu,\"k\":%llu,\"scale\":%.3f,\"threads\":%u,"
                "\"wall_ms\":%.3f,\"speedup_vs_seq\":%.3f,\"partitions\":%zu,"
                "\"identical\":%s}\n",
                tree.size(), static_cast<unsigned long long>(kLimit), scale,
                threads, best_ms, speedup, p.size(),
                identical ? "true" : "false");
    if (!identical) return 1;
  }
  std::printf("\nnum_threads=1 runs the pre-pooling sequential order with a "
              "single reused workspace; larger counts add the work-stealing "
              "pool on top.\n");
  return 0;
}
