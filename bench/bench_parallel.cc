// Thread-count sweep for the parallel DHW on the Table 3 document (XMark,
// K = 256): runs DHW with 1, 2, 4 and hardware_concurrency workers under
// the subtree-chunked scheduler and reports wall time, speedup over the
// sequential run, a per-phase breakdown (setup / leaf / bottom-up solve /
// extraction -- so a scaling win or loss is attributable to a phase), and
// whether the outputs are byte-identical (they must be).
//
// The leaf pass only exists as a separate phase sequentially; the chunked
// schedule folds it into the bottom-up tasks, which is why its column
// reads 0 for threads > 1.
//
// Every configuration is emitted as one machine-readable JSON line
// (prefixed "BENCH_PARALLEL ") so future runs can be diffed as a
// trajectory:
//   BENCH_PARALLEL {"bench":"dhw_parallel","doc":"xmark",...}
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/exact_algorithms.h"
#include "tree/partitioning.h"

namespace {

double RunOnce(const natix::Tree& tree, natix::TotalWeight limit,
               unsigned threads, size_t grain, natix::Partitioning* out,
               natix::DhwPhaseTimings* timings) {
  natix::DhwOptions opts;
  opts.num_threads = threads;
  if (grain != 0) opts.task_grain_nodes = grain;
  natix::Timer timer;
  natix::Result<natix::Partitioning> p =
      natix::DhwPartition(tree, limit, opts, nullptr, timings);
  const double ms = timer.ElapsedMillis();
  p.status().CheckOK();
  *out = *std::move(p);
  return ms;
}

}  // namespace

int main() {
  constexpr natix::TotalWeight kLimit = 256;
  constexpr int kRepetitions = 3;
  const double scale = natix::benchutil::ScaleFromEnv();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const size_t grain = natix::DhwOptions{}.task_grain_nodes;

  std::printf("DHW thread sweep on XMark (K = %llu, scale %.2f, %u hardware "
              "thread%s, task grain %zu nodes)\n\n",
              static_cast<unsigned long long>(kLimit), scale, hw,
              hw == 1 ? "" : "s", grain);

  const auto entry = natix::benchutil::LoadDocument("xmark", scale, kLimit);
  const natix::Tree& tree = entry->doc.tree;
  std::printf("document: %zu nodes, %zu KB source\n\n", tree.size(),
              entry->xml_kb);

  std::vector<unsigned> sweep = {1, 2, 4, hw};
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());

  natix::Partitioning baseline;
  double baseline_ms = 0;
  std::printf("%8s %10s %8s %8s %8s %8s %8s %11s %10s\n", "threads",
              "wall-ms", "speedup", "setup", "leaf", "solve", "extract",
              "partitions", "identical");
  for (const unsigned threads : sweep) {
    natix::Partitioning p;
    natix::DhwPhaseTimings best_phases;
    double best_ms = 0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      natix::DhwPhaseTimings phases;
      const double ms = RunOnce(tree, kLimit, threads, grain, &p, &phases);
      if (rep == 0 || ms < best_ms) {
        best_ms = ms;
        best_phases = phases;
      }
    }
    const bool first = threads == sweep.front();
    if (first) {
      baseline = p;
      baseline_ms = best_ms;
    }
    const bool identical = p.intervals() == baseline.intervals();
    const double speedup = baseline_ms / best_ms;
    std::printf("%8u %10.1f %7.2fx %8.1f %8.1f %8.1f %8.1f %11zu %10s\n",
                threads, best_ms, speedup, best_phases.setup_ms,
                best_phases.leaf_ms, best_phases.solve_ms,
                best_phases.extract_ms, p.size(),
                identical ? "yes" : "NO (bug!)");
    std::printf("BENCH_PARALLEL {\"bench\":\"dhw_parallel\",\"doc\":\"xmark\","
                "\"nodes\":%zu,\"k\":%llu,\"scale\":%.3f,\"threads\":%u,"
                "\"threads_used\":%u,\"hardware_threads\":%u,"
                "\"task_grain_nodes\":%zu,\"wall_ms\":%.3f,"
                "\"speedup_vs_seq\":%.3f,\"setup_ms\":%.3f,\"leaf_ms\":%.3f,"
                "\"solve_ms\":%.3f,\"extract_ms\":%.3f,\"partitions\":%zu,"
                "\"identical\":%s}\n",
                tree.size(), static_cast<unsigned long long>(kLimit), scale,
                threads, best_phases.threads_used, hw, grain, best_ms,
                speedup, best_phases.setup_ms, best_phases.leaf_ms,
                best_phases.solve_ms, best_phases.extract_ms, p.size(),
                identical ? "true" : "false");
    if (!identical) return 1;
  }
  std::printf("\nnum_threads=1 runs the sequential order with a single "
              "reused workspace; larger counts run the subtree-chunked "
              "task graph (grain %zu nodes) on the work-stealing pool, "
              "with the leaf pass folded into the chunk tasks and the "
              "extraction fanned out over light subtrees.\n",
              grain);
  if (hw < 2) {
    std::printf("NOTE: this host exposes %u hardware thread(s); wall-clock "
                "speedup > 1 is not physically reachable here, so treat the "
                "multi-thread rows as overhead (not scaling) measurements.\n",
                hw);
  }
  return 0;
}
