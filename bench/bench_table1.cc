// Reproduces Table 1: number of generated partitions per document and
// algorithm, at K = 256 slots of 8 bytes (2KB storage units).
//
// Expected shape (Sec. 6.2): DHW is minimal; GHDW within ~4% of DHW; EKM
// very close behind (third best overall); RS next; KM needs many more
// partitions (sibling partitioning saves >90% on the relational
// documents); DFS/BFS are erratic and can be worse than KM.
//
// NATIX_BENCH_SCALE (default 1.0 = paper-sized documents) scales the
// corpus.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "core/algorithm.h"
#include "tree/partitioning.h"

int main() {
  constexpr natix::TotalWeight kLimit = 256;
  const double scale = natix::benchutil::ScaleFromEnv();
  std::printf("Table 1: number of generated partitions (K = %llu slots "
              "of 8 bytes, scale %.2f)\n\n",
              static_cast<unsigned long long>(kLimit), scale);

  static constexpr std::string_view kAlgos[] = {"DHW", "GHDW", "EKM", "RS",
                                                "DFS", "KM",   "BFS"};
  std::printf("%-18s %8s %8s %9s |", "Document", "SizeKB", "Nodes",
              "Weight/K");
  for (const std::string_view a : kAlgos) std::printf(" %8s", a.data());
  std::printf("\n");

  const auto corpus = natix::benchutil::LoadCorpus(scale, kLimit);
  for (const auto& entry : corpus) {
    const natix::Tree& tree = entry->doc.tree;
    std::printf("%-18s %8zu %8zu %9llu |",
                std::string(entry->info->file_name).c_str(), entry->xml_kb,
                tree.size(),
                static_cast<unsigned long long>(tree.TotalTreeWeight() /
                                                kLimit));
    std::fflush(stdout);
    for (const std::string_view algo : kAlgos) {
      const natix::Result<natix::Partitioning> p =
          natix::PartitionWith(algo, tree, kLimit);
      p.status().CheckOK();
      // Feasibility is re-validated here so the numbers below are
      // guaranteed to describe legal sibling partitionings.
      natix::CheckFeasible(tree, *p, kLimit).CheckOK();
      std::printf(" %8zu", p->size());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\npaper reference (absolute numbers differ: synthetic "
              "corpus, but the ordering and ratios should match):\n");
  std::printf("  SigmodRecord.xml   382 384 402 405 1153 1294 2987\n");
  std::printf("  mondial-3.0.xml   1358 1376 1407 1433 3268 11625 17312\n");
  std::printf("  partsupp.xml      1083 1083 1091 1091 2282 15876 8192\n");
  std::printf("  uwm.xml           1727 1790 1746 1817 4345 5449 11039\n");
  std::printf("  orders.xml        2476 2476 2482 2482 5832 29876 15474\n");
  std::printf("  xmark0p1.xml      8603 8838 8975 9631 25046 20519 42155\n");
  return 0;
}
