// Reproduces Table 3: query processing on the XMark document under the KM
// (parent-child only) and EKM (sibling) partitionings, K = 256 (2KB
// units), plus total occupied disk space.
//
// Reported per query: result size, record crossings, simulated navigation
// time from the cost model, and measured wall time of the navigational
// evaluator. Expected shape (Sec. 6.4): EKM wins every query, up to >2x
// on the child/wildcard-heavy ones; KM occupies slightly *less* disk
// because its smaller records pack better into pages.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/heuristics.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/xpathmark.h"
#include "storage/store.h"

namespace {

struct Layout {
  const char* name;
  natix::Partitioning partitioning;
  natix::NatixStore store;
};

}  // namespace

int main() {
  constexpr natix::TotalWeight kLimit = 256;
  const double scale = natix::benchutil::ScaleFromEnv();
  std::printf("Table 3: query processing time on XMark (K = %llu, "
              "scale %.2f)\n\n",
              static_cast<unsigned long long>(kLimit), scale);

  const auto entry = natix::benchutil::LoadDocument("xmark", scale, kLimit);
  const natix::ImportedDocument& doc = entry->doc;
  std::printf("document: %zu nodes, %zu KB source\n\n", doc.tree.size(),
              entry->xml_kb);

  natix::Result<natix::Partitioning> km =
      natix::KmPartition(doc.tree, kLimit);
  natix::Result<natix::Partitioning> ekm =
      natix::EkmPartition(doc.tree, kLimit);
  km.status().CheckOK();
  ekm.status().CheckOK();

  natix::Result<natix::NatixStore> store_km =
      natix::NatixStore::Build(doc.Clone(), *km, kLimit);
  natix::Result<natix::NatixStore> store_ekm =
      natix::NatixStore::Build(doc.Clone(), *ekm, kLimit);
  km.status().CheckOK();
  ekm.status().CheckOK();
  store_km.status().CheckOK();
  store_ekm.status().CheckOK();

  std::printf("%-34s %14s %14s\n", "", "KM", "EKM");
  std::printf("%-34s %14zu %14zu\n", "records (partitions)",
              store_km->record_count(), store_ekm->record_count());
  std::printf("%-34s %12zuKB %12zuKB\n", "total occupied disk space",
              store_km->TotalDiskBytes() / 1024,
              store_ekm->TotalDiskBytes() / 1024);
  std::printf("%-34s %13.1f%% %13.1f%%\n", "page utilization",
              100 * store_km->PageUtilization(),
              100 * store_ekm->PageUtilization());
  std::printf("\n");

  const natix::NavigationCostModel cost;
  std::printf("%-4s %8s | %11s %11s | %9s %9s | %9s %9s | %7s\n", "qry",
              "results", "KM-cross", "EKM-cross", "KM-sim", "EKM-sim",
              "KM-wall", "EKM-wall", "speedup");

  double total_km = 0;
  double total_ekm = 0;
  for (const natix::XPathMarkQuery& q : natix::XPathMarkQueries()) {
    const natix::Result<natix::PathExpr> path = natix::ParseXPath(q.text);
    path.status().CheckOK();

    const natix::benchutil::QueryRun run_km =
        natix::benchutil::RunStoreQuery(*store_km, *path, nullptr, cost);
    const natix::benchutil::QueryRun run_ekm =
        natix::benchutil::RunStoreQuery(*store_ekm, *path, nullptr, cost);
    if (run_km.result != run_ekm.result) {
      std::fprintf(stderr, "BUG: %s results differ between layouts\n",
                   std::string(q.id).c_str());
      return 1;
    }
    total_km += run_km.sim_ms;
    total_ekm += run_ekm.sim_ms;
    std::printf(
        "%-4s %8zu | %11llu %11llu | %7.2fms %7.2fms | %7.2fms %7.2fms | "
        "%6.2fx\n",
        std::string(q.id).c_str(), run_km.result.size(),
        static_cast<unsigned long long>(run_km.stats.record_crossings),
        static_cast<unsigned long long>(run_ekm.stats.record_crossings),
        run_km.sim_ms, run_ekm.sim_ms, run_km.wall_ms, run_ekm.wall_ms,
        run_km.sim_ms / run_ekm.sim_ms);
  }
  std::printf("\ntotal simulated navigation time: KM %.2fms, EKM %.2fms "
              "(%.2fx)\n",
              total_km, total_ekm, total_km / total_ekm);
  std::printf("\npaper reference (seconds, Pentium IV 2.4GHz): Q1 "
              "0.065/0.036  Q2 0.033/0.023  Q3 0.770/0.595  Q4 "
              "0.344/0.262  Q5 0.150/0.074  Q6 0.870/0.650  Q7 "
              "0.854/0.607; disk ~8192KB/~8232KB\n");
  return 0;
}
