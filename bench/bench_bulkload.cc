// Extension benchmark: streaming bulkload (Sec. 4's main-memory friendly
// import) vs. batch partitioning.
//
// Reports, per corpus document and rule: partitions (identical to batch
// by construction), import throughput, the partitioner's peak working set
// as a fraction of the document, and the effect of the Sec. 4.3 early
// flush bound on pathological fan-out.
#include <cstdio>

#include "bench/bench_util.h"
#include "bulkload/streaming.h"
#include "common/timer.h"
#include "tree/partitioning.h"

int main() {
  constexpr natix::TotalWeight kLimit = 256;
  const double scale = natix::benchutil::ScaleFromEnv(0.25);
  std::printf("Streaming bulkload (K = %llu, scale %.2f)\n\n",
              static_cast<unsigned long long>(kLimit), scale);
  std::printf("%-10s %-5s %12s %12s %14s %10s %9s\n", "document", "rule",
              "partitions", "MB/s", "peak resident", "of nodes", "flushes");

  static constexpr struct {
    natix::BulkloadRule rule;
    const char* name;
  } kRules[] = {
      {natix::BulkloadRule::kGhdw, "GHDW"},
      {natix::BulkloadRule::kRs, "RS"},
      {natix::BulkloadRule::kKm, "KM"},
  };

  for (const char* name :
       {"sigmod", "mondial", "partsupp", "uwm", "orders", "xmark"}) {
    const natix::Result<std::string> xml =
        natix::GenerateDocument(name, 42, scale);
    xml.status().CheckOK();
    for (const auto& r : kRules) {
      natix::BulkloadOptions opts;
      opts.limit = kLimit;
      opts.rule = r.rule;
      opts.max_pending_children = 512;
      natix::Timer timer;
      const natix::Result<natix::BulkloadResult> result =
          natix::StreamingBulkload(*xml, opts);
      const double seconds = timer.ElapsedSeconds();
      result.status().CheckOK();
      natix::CheckFeasible(result->tree, result->partitioning, kLimit)
          .CheckOK();
      std::printf("%-10s %-5s %12zu %12.1f %14zu %9.1f%% %9llu\n", name,
                  r.name, result->partitioning.size(),
                  static_cast<double>(xml->size()) / (1024 * 1024) / seconds,
                  result->peak_resident_nodes,
                  100.0 * result->peak_resident_nodes /
                      static_cast<double>(result->tree.size()),
                  static_cast<unsigned long long>(result->forced_flushes));
      std::fflush(stdout);
    }
  }
  return 0;
}
