// Ablation A3: optimality gap of the approximation algorithms relative to
// the optimal DHW, across the corpus and two weight limits.
//
// Expected shape (Sec. 6.2): GHDW within ~4% of optimal everywhere (exact
// on the relational documents); EKM close behind ("the biggest
// surprise"), occasionally beating GHDW; RS a few percent worse; DFS/BFS
// far off and erratic.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/algorithm.h"

int main() {
  const double scale = natix::benchutil::ScaleFromEnv(0.5);
  static constexpr std::string_view kApprox[] = {"GHDW", "EKM", "RS", "DFS",
                                                 "KM", "BFS"};

  for (const natix::TotalWeight limit : {128ull, 256ull}) {
    std::printf("Optimality gap vs DHW, K = %llu (scale %.2f); cells: "
                "partitions (gap)\n\n",
                static_cast<unsigned long long>(limit), scale);
    std::printf("%-12s %10s |", "document", "DHW");
    for (const std::string_view a : kApprox) std::printf(" %16s", a.data());
    std::printf("\n");

    const auto corpus = natix::benchutil::LoadCorpus(scale, limit);
    for (const auto& entry : corpus) {
      const natix::Result<natix::Partitioning> opt =
          natix::PartitionWith("DHW", entry->doc.tree, limit);
      opt.status().CheckOK();
      std::printf("%-12s %10zu |", std::string(entry->info->name).c_str(),
                  opt->size());
      std::fflush(stdout);
      for (const std::string_view algo : kApprox) {
        const natix::Result<natix::Partitioning> p =
            natix::PartitionWith(algo, entry->doc.tree, limit);
        p.status().CheckOK();
        const double gap =
            100.0 * (static_cast<double>(p->size()) /
                         static_cast<double>(opt->size()) -
                     1.0);
        char cell[32];
        std::snprintf(cell, sizeof(cell), "%zu (+%.1f%%)", p->size(), gap);
        std::printf(" %16s", cell);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
