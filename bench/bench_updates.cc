// Extension benchmark: node-at-a-time maintenance vs. bulkload.
//
// Part 1 replays a corpus document as a stream of single-node insertions
// through the bare IncrementalPartitioner and compares the maintained
// partition count against a clean batch partitioning of the final tree --
// quantifying the "reorganization debt" that accumulates under online
// updates (the reason Natix separates its bulkload component from the
// node-at-a-time maintenance of its storage format).
//
// Part 2 drives the full mutable store end to end: randomized inserts
// interleaved with XPathMark query sweeps, checking every sweep against
// the reference tree evaluator, then comparing the grown store's layout
// and simulated navigation cost against a fresh bulkload of the final
// document. Emits BENCH_UPDATES JSON lines (one per sweep plus a
// summary) for snapshotting.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/algorithm.h"
#include "core/heuristics.h"
#include "query/reference_evaluator.h"
#include "storage/fault_injector.h"
#include "storage/file_backend.h"
#include "storage/fsck.h"
#include "storage/page_integrity.h"
#include "storage/self_heal.h"
#include "updates/incremental.h"

namespace {

/// Randomized single-node inserts matching the store_updates_test
/// workload: uniform parent, 40% chance of a non-append position, half
/// text nodes with 1-40 bytes of content.
bool ApplyRandomInserts(natix::NatixStore* store, int count,
                        natix::Rng* rng) {
  static constexpr const char* kLabels[] = {"item", "note", "entry", "x"};
  for (int i = 0; i < count; ++i) {
    const natix::Tree& t = store->tree();
    const natix::NodeId parent =
        static_cast<natix::NodeId>(rng->NextBounded(t.size()));
    natix::NodeId before = natix::kInvalidNode;
    if (t.ChildCount(parent) > 0 && rng->NextBool(0.4)) {
      const std::vector<natix::NodeId> kids = t.Children(parent);
      before = kids[rng->NextBounded(kids.size())];
    }
    const bool text = rng->NextBool(0.5);
    std::string content;
    if (text) content.assign(1 + rng->NextBounded(40), 'a' + i % 26);
    const auto id = store->InsertBefore(
        parent, before, text ? "" : kLabels[rng->NextBounded(4)],
        text ? natix::NodeKind::kText : natix::NodeKind::kElement, content);
    if (!id.ok()) {
      std::fprintf(stderr, "insert: %s\n", id.status().ToString().c_str());
      return false;
    }
  }
  return true;
}

struct MixCounts {
  int inserts = 0;
  int deletes = 0;
  int moves = 0;
  int renames = 0;
  int skipped = 0;
};

/// Randomized mixed update stream (~40% insert / 30% delete-subtree /
/// 20% move-subtree / 10% rename), mirroring `natix_cli update`'s
/// default mix. Deletes convert back into inserts while the live count
/// sits below `size_floor`, so the document keeps roughly its size.
bool ApplyRandomOps(natix::NatixStore* store, int count, size_t size_floor,
                    natix::Rng* rng, MixCounts* did) {
  static constexpr const char* kLabels[] = {"item", "note", "entry", "x"};
  for (int i = 0; i < count; ++i) {
    const natix::Tree& t = store->tree();
    const auto pick_live = [&]() -> natix::NodeId {
      for (int tries = 0; tries < 256; ++tries) {
        const auto v = static_cast<natix::NodeId>(rng->NextBounded(t.size()));
        if (store->IsLiveNode(v)) return v;
      }
      return 0;
    };
    const auto subtree_capped = [&](natix::NodeId v, size_t cap) {
      std::vector<natix::NodeId> stack = {v};
      size_t n = 0;
      while (!stack.empty()) {
        const natix::NodeId u = stack.back();
        stack.pop_back();
        if (++n > cap) return false;
        for (natix::NodeId c = t.FirstChild(u); c != natix::kInvalidNode;
             c = t.NextSibling(c)) {
          stack.push_back(c);
        }
      }
      return true;
    };
    uint64_t roll = rng->NextBounded(100);
    if (roll >= 40 && roll < 70 && store->live_node_count() < size_floor) {
      roll = 0;
    }
    natix::Status applied = natix::Status::OK();
    if (roll < 40) {
      const natix::NodeId parent = pick_live();
      natix::NodeId before = natix::kInvalidNode;
      if (t.ChildCount(parent) > 0 && rng->NextBool(0.4)) {
        const std::vector<natix::NodeId> kids = t.Children(parent);
        before = kids[rng->NextBounded(kids.size())];
      }
      const bool text = rng->NextBool(0.5);
      std::string content;
      if (text) content.assign(1 + rng->NextBounded(40), 'a' + i % 26);
      applied = store
                    ->InsertBefore(parent, before,
                                   text ? "" : kLabels[rng->NextBounded(4)],
                                   text ? natix::NodeKind::kText
                                        : natix::NodeKind::kElement,
                                   content)
                    .status();
      ++did->inserts;
    } else if (roll < 70) {
      const natix::NodeId v = pick_live();
      if (v == 0 || !subtree_capped(v, 16)) {
        ++did->skipped;
      } else {
        applied = store->DeleteSubtree(v).status();
        ++did->deletes;
      }
    } else if (roll < 90) {
      const natix::NodeId v = pick_live();
      const natix::NodeId parent = pick_live();
      bool legal = v != 0;
      for (natix::NodeId a = parent; a != natix::kInvalidNode;
           a = t.Parent(a)) {
        if (a == v) {
          legal = false;
          break;
        }
      }
      if (!legal) {
        ++did->skipped;
      } else {
        natix::NodeId before = natix::kInvalidNode;
        if (t.ChildCount(parent) > 0 && rng->NextBool(0.5)) {
          const std::vector<natix::NodeId> kids = t.Children(parent);
          before = kids[rng->NextBounded(kids.size())];
          if (before == v) before = natix::kInvalidNode;
        }
        applied = store->MoveSubtree(v, parent, before);
        ++did->moves;
      }
    } else {
      applied = store->Rename(pick_live(), kLabels[rng->NextBounded(4)]);
      ++did->renames;
    }
    if (!applied.ok()) {
      std::fprintf(stderr, "op: %s\n", applied.ToString().c_str());
      return false;
    }
  }
  return true;
}

/// Hardware threads as reported by the runtime, floored at one so the
/// JSON rows stay meaningful on hosts where the query returns zero.
unsigned HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

/// Runs all XPathMark queries against the store and cross-checks each
/// result against the reference evaluator on the store's tree.
bool SweepMatchesReference(const natix::NatixStore& store) {
  natix::AccessStats stats;
  natix::StoreQueryEvaluator eval(&store, &stats);
  for (const natix::XPathMarkQuery& q : natix::XPathMarkQueries()) {
    const auto path = natix::ParseXPath(q.text);
    path.status().CheckOK();
    const auto got = eval.Evaluate(*path);
    const auto want = natix::EvaluateOnTree(store.tree(), *path);
    got.status().CheckOK();
    want.status().CheckOK();
    if (*got != *want) {
      std::fprintf(stderr, "BUG: %s diverges from reference evaluator\n",
                   std::string(q.id).c_str());
      return false;
    }
  }
  return true;
}

int RunReplayTable(natix::TotalWeight limit, double scale) {
  std::printf("Incremental maintenance vs. bulkload (K = %llu, "
              "scale %.2f)\n\n",
              static_cast<unsigned long long>(limit), scale);
  std::printf("%-12s %9s | %11s %11s %9s | %9s %9s | %10s\n", "document",
              "nodes", "incremental", "batch EKM", "debt", "splits",
              "ins/sec", "opt (DHW)");

  for (const char* name :
       {"sigmod", "mondial", "partsupp", "uwm", "orders", "xmark"}) {
    const auto entry = natix::benchutil::LoadDocument(name, scale, limit);
    const natix::Tree& source = entry->doc.tree;

    // Replay the document in document order as single-node insertions.
    natix::Tree replay;
    auto ip = natix::IncrementalPartitioner::CreateEmpty(
        &replay, limit, source.WeightOf(source.root()),
        source.LabelOf(source.root()));
    ip.status().CheckOK();
    std::vector<natix::NodeId> mapped(source.size());
    mapped[source.root()] = replay.root();
    natix::Timer timer;
    const std::vector<natix::NodeId> preorder = source.PreorderNodes();
    for (size_t i = 1; i < preorder.size(); ++i) {
      const natix::NodeId v = preorder[i];
      const auto inserted = ip->InsertBefore(
          mapped[source.Parent(v)], natix::kInvalidNode, source.WeightOf(v),
          source.LabelOf(v), source.KindOf(v));
      inserted.status().CheckOK();
      mapped[v] = *inserted;
    }
    const double seconds = timer.ElapsedSeconds();
    ip->Validate().CheckOK();

    const auto batch = natix::PartitionWith("EKM", source, limit);
    batch.status().CheckOK();
    const auto opt = natix::PartitionWith("DHW", source, limit);
    opt.status().CheckOK();

    std::printf("%-12s %9zu | %11zu %11zu %8.1f%% | %9llu %9.0fk | %10zu\n",
                name, source.size(), ip->partition_count(), batch->size(),
                100.0 * (static_cast<double>(ip->partition_count()) /
                             static_cast<double>(batch->size()) -
                         1.0),
                static_cast<unsigned long long>(ip->split_count()),
                static_cast<double>(source.size()) / seconds / 1000.0,
                opt->size());
    std::fflush(stdout);
  }
  return 0;
}

int RunStoreLeg(natix::TotalWeight limit, double scale) {
  constexpr int kChunks = 4;
  constexpr int kChunkInserts = 2500;
  std::printf("\nEnd-to-end mutable store: %d randomized inserts on XMark "
              "interleaved with XPathMark sweeps\n\n",
              kChunks * kChunkInserts);

  const auto entry = natix::benchutil::LoadDocument("xmark", scale, limit);
  const auto ekm = natix::EkmPartition(entry->doc.tree, limit);
  ekm.status().CheckOK();
  auto store = natix::NatixStore::Build(entry->doc.Clone(), *ekm, limit);
  store.status().CheckOK();
  const size_t nodes_before = store->tree().size();

  const natix::NavigationCostModel cost;
  const natix::benchutil::QueryRun before =
      natix::benchutil::RunXPathMarkSweep(*store, nullptr, cost);
  const double util_before = store->PageUtilization();
  std::printf("%9s | %9s %9s %9s | %10s %10s | %6s\n", "inserts", "ins/us",
              "splits", "reloc", "sweep-sim", "crossings", "util");
  std::printf("%9d | %9s %9s %9s | %8.2fms %10llu | %5.1f%%\n", 0, "-", "-",
              "-", before.sim_ms,
              static_cast<unsigned long long>(before.stats.record_crossings),
              100.0 * util_before);

  natix::Rng rng(1);
  double insert_ms_total = 0;
  for (int chunk = 1; chunk <= kChunks; ++chunk) {
    natix::Timer timer;
    if (!ApplyRandomInserts(&*store, kChunkInserts, &rng)) return 1;
    const double insert_ms = timer.ElapsedMillis();
    insert_ms_total += insert_ms;
    store->partitioner()->Validate().CheckOK();
    if (!SweepMatchesReference(*store)) return 1;

    const natix::benchutil::QueryRun sweep =
        natix::benchutil::RunXPathMarkSweep(*store, nullptr, cost);
    const natix::UpdateStats us = store->update_stats();
    const int done = chunk * kChunkInserts;
    std::printf(
        "%9d | %9.2f %9llu %9llu | %8.2fms %10llu | %5.1f%%\n", done,
        1e3 * insert_ms / kChunkInserts,
        static_cast<unsigned long long>(us.splits),
        static_cast<unsigned long long>(us.relocations), sweep.sim_ms,
        static_cast<unsigned long long>(sweep.stats.record_crossings),
        100.0 * store->PageUtilization());
    std::printf(
        "BENCH_UPDATES {\"bench\":\"store_updates\",\"doc\":\"xmark\","
        "\"nodes\":%zu,\"k\":%llu,\"scale\":%.3f,\"inserts\":%d,"
        "\"insert_us\":%.3f,\"splits\":%llu,\"rewritten\":%llu,"
        "\"relocations\":%llu,\"compactions\":%llu,\"utilization\":%.4f,"
        "\"sweep_sim_ms\":%.3f,\"sweep_crossings\":%llu,"
        "\"queries_match\":true,\"hardware_threads\":%u}\n",
        store->tree().size(), static_cast<unsigned long long>(limit), scale,
        done, 1e3 * insert_ms / kChunkInserts,
        static_cast<unsigned long long>(us.splits),
        static_cast<unsigned long long>(us.records_rewritten),
        static_cast<unsigned long long>(us.relocations),
        static_cast<unsigned long long>(us.compactions),
        store->PageUtilization(), sweep.sim_ms,
        static_cast<unsigned long long>(sweep.stats.record_crossings),
        HardwareThreads());
    std::fflush(stdout);
  }

  // Reference point: bulkload the final document from scratch.
  const auto fresh_p = natix::EkmPartition(store->tree(), limit);
  fresh_p.status().CheckOK();
  auto snapshot = store->SnapshotDocument();
  snapshot.status().CheckOK();
  const auto fresh =
      natix::NatixStore::Build(std::move(snapshot).value(), *fresh_p, limit);
  fresh.status().CheckOK();
  const natix::benchutil::QueryRun grown_sweep =
      natix::benchutil::RunXPathMarkSweep(*store, nullptr, cost);
  const natix::benchutil::QueryRun fresh_sweep =
      natix::benchutil::RunXPathMarkSweep(*fresh, nullptr, cost);
  const double drift_pct =
      fresh_sweep.sim_ms > 0
          ? 100.0 * (grown_sweep.sim_ms - fresh_sweep.sim_ms) /
                fresh_sweep.sim_ms
          : 0.0;

  const natix::UpdateStats us = store->update_stats();
  std::printf("\n%llu inserts in %.1fms (%.2fus each): splits %llu, "
              "records rewritten %llu, relocations %llu\n",
              static_cast<unsigned long long>(us.inserts), insert_ms_total,
              1e3 * insert_ms_total / static_cast<double>(us.inserts),
              static_cast<unsigned long long>(us.splits),
              static_cast<unsigned long long>(us.records_rewritten),
              static_cast<unsigned long long>(us.relocations));
  std::printf("grown store: %zu records on %zu pages (utilization %.1f%% "
              "-> %.1f%%)\n",
              store->record_count(), store->page_count(),
              100.0 * util_before, 100.0 * store->PageUtilization());
  std::printf("fresh rebuild: %zu records on %zu pages (utilization "
              "%.1f%%)\n",
              fresh->record_count(), fresh->page_count(),
              100.0 * fresh->PageUtilization());
  std::printf("sweep cost: before %.2fms, grown %.2fms, fresh %.2fms "
              "(drift %.1f%% over fresh)\n",
              before.sim_ms, grown_sweep.sim_ms, fresh_sweep.sim_ms,
              drift_pct);
  std::printf(
      "BENCH_UPDATES {\"bench\":\"store_updates_summary\",\"doc\":\"xmark\","
      "\"nodes_before\":%zu,\"nodes_after\":%zu,\"k\":%llu,\"scale\":%.3f,"
      "\"inserts\":%llu,\"insert_us\":%.3f,\"splits\":%llu,"
      "\"relocations\":%llu,\"cost_before_ms\":%.3f,\"cost_grown_ms\":%.3f,"
      "\"cost_fresh_ms\":%.3f,\"drift_pct\":%.2f,\"records_grown\":%zu,"
      "\"records_fresh\":%zu,\"util_grown\":%.4f,\"util_fresh\":%.4f,"
      "\"hardware_threads\":%u}\n",
      nodes_before, store->tree().size(),
      static_cast<unsigned long long>(limit), scale,
      static_cast<unsigned long long>(us.inserts),
      1e3 * insert_ms_total / static_cast<double>(us.inserts),
      static_cast<unsigned long long>(us.splits),
      static_cast<unsigned long long>(us.relocations), before.sim_ms,
      grown_sweep.sim_ms, fresh_sweep.sim_ms, drift_pct,
      store->record_count(), fresh->record_count(),
      store->PageUtilization(), fresh->PageUtilization(),
      HardwareThreads());
  return 0;
}

// Part 3: the full CRUD surface. A 10k-op mixed stream (~40% insert,
// 30% delete-subtree, 20% move-subtree, 10% rename) through the WAL,
// with a checkpoint taken mid-stream, XPathMark sweeps cross-checked
// against the reference evaluator after every chunk, then a crash +
// recovery and a fresh bulkload of the compacted final document. The
// acceptance metrics: the grown store's XPathMark answers must map
// node-for-node onto the fresh store's, and page utilization after the
// stream must stay within 15% of the fresh-build baseline.
int RunMixedLeg(natix::TotalWeight limit, double scale) {
  constexpr int kChunks = 4;
  constexpr int kChunkOps = 2500;
  std::printf("\nMixed CRUD stream: %d ops (40/30/20/10 insert/delete/"
              "move/rename) on XMark through the WAL\n\n",
              kChunks * kChunkOps);

  const auto entry = natix::benchutil::LoadDocument("xmark", scale, limit);
  const auto ekm = natix::EkmPartition(entry->doc.tree, limit);
  ekm.status().CheckOK();
  auto store = natix::NatixStore::Build(entry->doc.Clone(), *ekm, limit);
  store.status().CheckOK();
  const size_t size_floor = store->live_node_count();

  auto backend = std::make_unique<natix::MemoryFileBackend>();
  const std::shared_ptr<natix::MemoryFileBackend::Bytes> disk =
      backend->disk();
  store->EnableDurability(std::move(backend)).CheckOK();

  const natix::NavigationCostModel cost;
  natix::Rng rng(7);
  MixCounts did;
  double op_ms_total = 0;
  std::printf("%9s | %7s %7s %7s %7s | %8s %8s | %6s\n", "ops", "ins",
              "del", "mov", "ren", "splits", "merges", "util");
  for (int chunk = 1; chunk <= kChunks; ++chunk) {
    natix::Timer timer;
    if (!ApplyRandomOps(&*store, kChunkOps, size_floor, &rng, &did)) {
      return 1;
    }
    op_ms_total += timer.ElapsedMillis();
    store->partitioner()->Validate().CheckOK();
    if (!SweepMatchesReference(*store)) return 1;
    // One checkpoint mid-stream: recovery restores it and replays the
    // second half of the op stream through the mixed replay path.
    if (chunk == kChunks / 2) store->Checkpoint().CheckOK();
    const natix::UpdateStats us = store->update_stats();
    std::printf("%9d | %7d %7d %7d %7d | %8llu %8llu | %5.1f%%\n",
                chunk * kChunkOps, did.inserts, did.deletes, did.moves,
                did.renames, static_cast<unsigned long long>(us.splits),
                static_cast<unsigned long long>(us.merges),
                100.0 * store->PageUtilization());
    std::fflush(stdout);
  }
  const natix::UpdateStats before_crash = store->update_stats();
  const size_t records_before_crash = store->record_count();

  // Crash and rebuild: the tail past the mid-stream checkpoint replays
  // through the same insert/delete/move/rename paths.
  store = natix::Status::Internal("crashed");
  natix::Timer recover_timer;
  auto recovered = natix::NatixStore::Recover(
      std::make_unique<natix::MemoryFileBackend>(disk));
  const double recover_ms = recover_timer.ElapsedMillis();
  recovered.status().CheckOK();
  recovered->partitioner()->Validate().CheckOK();
  const natix::UpdateStats us = recovered->update_stats();
  if (us.inserts != before_crash.inserts ||
      us.deletes != before_crash.deletes ||
      us.moves != before_crash.moves ||
      us.renames != before_crash.renames ||
      recovered->record_count() != records_before_crash) {
    std::fprintf(stderr, "BUG: recovered store diverges from the original\n");
    return 1;
  }
  if (!SweepMatchesReference(*recovered)) return 1;

  // Oracle: bulkload the compacted final document from scratch; every
  // XPathMark answer on the grown store must map node-for-node (through
  // the compaction's id map) onto the fresh store's answer.
  std::vector<natix::NodeId> old_to_new;
  auto snapshot = recovered->CompactSnapshot(&old_to_new);
  snapshot.status().CheckOK();
  const auto fresh_p = natix::EkmPartition(snapshot->tree, limit);
  fresh_p.status().CheckOK();
  const auto fresh =
      natix::NatixStore::Build(std::move(snapshot).value(), *fresh_p, limit);
  fresh.status().CheckOK();
  bool answers_equivalent = true;
  {
    natix::AccessStats ga, fa;
    natix::StoreQueryEvaluator grown_eval(&*recovered, &ga);
    natix::StoreQueryEvaluator fresh_eval(&*fresh, &fa);
    for (const natix::XPathMarkQuery& q : natix::XPathMarkQueries()) {
      const auto path = natix::ParseXPath(q.text);
      path.status().CheckOK();
      auto got = grown_eval.Evaluate(*path);
      const auto want = fresh_eval.Evaluate(*path);
      got.status().CheckOK();
      want.status().CheckOK();
      for (natix::NodeId& v : *got) v = old_to_new[v];
      if (*got != *want) {
        std::fprintf(stderr, "BUG: %s diverges between grown and fresh\n",
                     std::string(q.id).c_str());
        answers_equivalent = false;
      }
    }
  }
  if (!answers_equivalent) return 1;

  const natix::benchutil::QueryRun grown_sweep =
      natix::benchutil::RunXPathMarkSweep(*recovered, nullptr, cost);
  const natix::benchutil::QueryRun fresh_sweep =
      natix::benchutil::RunXPathMarkSweep(*fresh, nullptr, cost);
  const double util_grown = recovered->PageUtilization();
  const double util_fresh = fresh->PageUtilization();
  const double util_drift_pct =
      util_fresh > 0 ? 100.0 * (util_fresh - util_grown) / util_fresh : 0.0;
  const int total_ops =
      did.inserts + did.deletes + did.moves + did.renames;
  std::printf("\n%d mixed ops in %.1fms (%.2fus each), recovery %.1fms\n",
              total_ops, op_ms_total,
              1e3 * op_ms_total / std::max(1, total_ops), recover_ms);
  std::printf("grown: %zu live nodes, %zu records, utilization %.1f%%; "
              "fresh: %zu records, %.1f%% (drift %.1f%%)\n",
              recovered->live_node_count(), recovered->record_count(),
              100.0 * util_grown, fresh->record_count(), 100.0 * util_fresh,
              util_drift_pct);
  std::printf("sweep cost: grown %.2fms vs fresh %.2fms; answers "
              "equivalent through the compaction map\n",
              grown_sweep.sim_ms, fresh_sweep.sim_ms);
  std::printf(
      "BENCH_UPDATES {\"bench\":\"store_updates_mixed\",\"doc\":\"xmark\","
      "\"k\":%llu,\"scale\":%.3f,\"ops\":%d,\"inserts\":%d,\"deletes\":%d,"
      "\"moves\":%d,\"renames\":%d,\"skipped\":%d,\"op_us\":%.3f,"
      "\"splits\":%llu,\"merges\":%llu,\"rewritten\":%llu,\"created\":%llu,"
      "\"recover_ms\":%.3f,\"live_nodes\":%zu,\"records_grown\":%zu,"
      "\"records_fresh\":%zu,\"util_grown\":%.4f,\"util_fresh\":%.4f,"
      "\"util_drift_pct\":%.2f,\"cost_grown_ms\":%.3f,"
      "\"cost_fresh_ms\":%.3f,\"queries_match\":true,"
      "\"answers_equivalent\":true,\"hardware_threads\":%u}\n",
      static_cast<unsigned long long>(limit), scale, total_ops, did.inserts,
      did.deletes, did.moves, did.renames, did.skipped,
      1e3 * op_ms_total / std::max(1, total_ops),
      static_cast<unsigned long long>(us.splits),
      static_cast<unsigned long long>(us.merges),
      static_cast<unsigned long long>(us.records_rewritten),
      static_cast<unsigned long long>(us.records_created), recover_ms,
      recovered->live_node_count(), recovered->record_count(),
      fresh->record_count(), util_grown, util_fresh, util_drift_pct,
      grown_sweep.sim_ms, fresh_sweep.sim_ms, HardwareThreads());
  return 0;
}

// Part 4: snapshot serving. N reader threads each pin a store version
// (OpenSnapshot) and sweep XPathMark in a loop while one writer thread
// streams the mixed CRUD workload through the same store. Each reader
// verifies its first sweep against a fresh-build oracle of its pinned
// version (MaterializeDocument preserves NodeIds, so the reference
// evaluator's answers compare directly); after that it just counts
// sweeps. Emits one "store_updates_serve" row per reader count so the
// guard can check reader scaling on multi-core hosts.
int RunServeLeg(natix::TotalWeight limit, double scale) {
  const unsigned hw = HardwareThreads();
  constexpr int kWriterChunk = 64;
  constexpr int kMinWriterOps = 512;
  constexpr double kMinRunMs = 400.0;
  std::printf("\nSnapshot serving: pinned readers sweeping XPathMark "
              "against one mixed-op writer (%u hardware threads)\n\n",
              hw);

  const auto entry = natix::benchutil::LoadDocument("xmark", scale, limit);
  const auto ekm = natix::EkmPartition(entry->doc.tree, limit);
  ekm.status().CheckOK();

  std::vector<unsigned> legs = {1};
  if (const unsigned wide = std::min(4u, hw); wide > 1) {
    legs.push_back(wide);
  }

  std::printf("%8s | %9s %11s %11s | %7s\n", "readers", "sweeps",
              "sweeps/sec", "writer ops", "oracle");
  for (const unsigned readers : legs) {
    // A fresh store per reader count: every leg's writer starts from the
    // same bulkloaded layout instead of the previous leg's residue.
    auto store = natix::NatixStore::Build(entry->doc.Clone(), *ekm, limit);
    store.status().CheckOK();
    const size_t size_floor = store->live_node_count();

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> sweeps{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> pool;
    natix::Timer timer;
    for (unsigned r = 0; r < readers; ++r) {
      pool.emplace_back([&]() {
        const natix::StoreSnapshot snap = store->OpenSnapshot();
        const auto oracle = snap.MaterializeDocument();
        if (!oracle.ok()) {
          ++failures;
          return;
        }
        natix::AccessStats stats;
        natix::StoreQueryEvaluator eval(&snap, &stats);
        bool checked = false;
        while (!stop.load(std::memory_order_acquire)) {
          for (const natix::XPathMarkQuery& q :
               natix::XPathMarkQueries()) {
            const auto path = natix::ParseXPath(q.text);
            const auto got = path.ok() ? eval.Evaluate(*path)
                                       : path.status();
            if (!got.ok()) {
              ++failures;
              return;
            }
            if (!checked) {
              const auto want =
                  natix::EvaluateOnTree(oracle->tree, *path);
              if (!want.ok() || *got != *want) {
                ++failures;
                return;
              }
            }
          }
          checked = true;
          sweeps.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    natix::Rng rng(11);
    MixCounts did;
    int writer_ops = 0;
    bool writer_ok = true;
    // The writer streams until every floor is met: a minimum op count, a
    // minimum wall time, and at least one counted sweep per reader.
    const auto need_more = [&]() {
      if (failures.load(std::memory_order_relaxed) > 0) return false;
      return writer_ops < kMinWriterOps ||
             timer.ElapsedMillis() < kMinRunMs ||
             sweeps.load(std::memory_order_relaxed) <
                 static_cast<uint64_t>(readers);
    };
    while (need_more()) {
      if (!ApplyRandomOps(&*store, kWriterChunk, size_floor, &rng, &did)) {
        writer_ok = false;
        break;
      }
      writer_ops += kWriterChunk;
    }
    stop.store(true, std::memory_order_release);
    for (std::thread& t : pool) t.join();
    const double elapsed_ms = timer.ElapsedMillis();
    if (!writer_ok || failures.load() > 0) {
      std::fprintf(stderr, "BUG: serving leg with %u readers failed "
                           "(%d reader failures)\n",
                   readers, failures.load());
      return 1;
    }
    if (store->open_snapshot_count() != 0) {
      std::fprintf(stderr, "BUG: %zu snapshots leaked after join\n",
                   store->open_snapshot_count());
      return 1;
    }
    const natix::MvccStats ms = store->mvcc_stats();
    if (ms.held_frames != 0) {
      std::fprintf(stderr, "BUG: %llu retired frames still held with no "
                           "open snapshot\n",
                   static_cast<unsigned long long>(ms.held_frames));
      return 1;
    }
    store->partitioner()->Validate().CheckOK();
    const double sweeps_per_sec =
        1e3 * static_cast<double>(sweeps.load()) / elapsed_ms;
    std::printf("%8u | %9llu %11.2f %11d | %7s\n", readers,
                static_cast<unsigned long long>(sweeps.load()),
                sweeps_per_sec, writer_ops, "ok");
    std::printf(
        "BENCH_UPDATES {\"bench\":\"store_updates_serve\",\"doc\":\"xmark\","
        "\"k\":%llu,\"scale\":%.3f,\"readers\":%u,\"writer_ops\":%d,"
        "\"sweeps\":%llu,\"elapsed_ms\":%.1f,\"sweeps_per_sec\":%.2f,"
        "\"retired_frames\":%llu,\"reclaimed_frames\":%llu,"
        "\"snapshot_reads\":%llu,\"answers_equivalent\":true,"
        "\"hardware_threads\":%u}\n",
        static_cast<unsigned long long>(limit), scale, readers, writer_ops,
        static_cast<unsigned long long>(sweeps.load()), elapsed_ms,
        sweeps_per_sec, static_cast<unsigned long long>(ms.retired_frames),
        static_cast<unsigned long long>(ms.reclaimed_frames),
        static_cast<unsigned long long>(ms.snapshot_reads), hw);
    std::fflush(stdout);
  }
  return 0;
}

// Part 4b: graceful degradation. Streams mixed ops through a
// fault-injecting WAL backend until an injected device death demotes
// the store, then measures what the health state machine promises: a
// degraded store answers every XPathMark query exactly like the
// reference evaluator over its own materialized tree (reads never
// poison), and a revived device rehabilitates back to a healthy store
// that accepts ops and checkpoints again. Emits one
// "store_updates_degraded" row.
int RunDegradedLeg(natix::TotalWeight limit, double scale) {
  constexpr int kChunk = 16;
  constexpr int kMaxOps = 4096;
  constexpr double kServeMs = 300.0;
  std::printf("\nDegraded serving: mixed ops until an injected WAL device "
              "death, query sweeps while degraded, then rehabilitation\n\n");

  const auto entry = natix::benchutil::LoadDocument("xmark", scale, limit);
  const auto ekm = natix::EkmPartition(entry->doc.tree, limit);
  ekm.status().CheckOK();
  auto store = natix::NatixStore::Build(entry->doc.Clone(), *ekm, limit);
  store.status().CheckOK();
  const size_t size_floor = store->live_node_count();

  auto inj = std::make_unique<natix::FaultInjectingBackend>(
      std::make_unique<natix::MemoryFileBackend>(),
      natix::FaultInjectingBackend::kNoLimit, natix::FaultMode::kFailStop,
      /*seed=*/42);
  natix::FaultInjectingBackend* raw = inj.get();
  store->EnableDurability(std::move(inj), natix::SyncPolicy::GroupCommit())
      .CheckOK();
  raw->ArmSyncFault(raw->sync_count() + 4);

  natix::Rng rng(23);
  MixCounts did;
  int ops_before = 0;
  while (store->health() == natix::StoreHealth::kHealthy &&
         ops_before < kMaxOps) {
    if (ApplyRandomOps(&*store, kChunk, size_floor, &rng, &did)) {
      ops_before += kChunk;
      // The durability barrier is what drives the armed fsync fault.
      (void)store->SyncWal();
    }
  }
  if (store->health() != natix::StoreHealth::kDegraded) {
    std::fprintf(stderr, "BUG: store is %s after the injected device "
                         "death (wanted degraded)\n",
                 natix::StoreHealthName(store->health()));
    return 1;
  }

  // Serve while degraded: time query sweeps and check the first sweep's
  // answers against the reference evaluator over the materialized tree.
  bool answers_equivalent = true;
  uint64_t sweeps = 0;
  double degraded_ms = 0.0;
  {
    const natix::StoreSnapshot snap = store->OpenSnapshot();
    const auto oracle = snap.MaterializeDocument();
    oracle.status().CheckOK();
    natix::AccessStats stats;
    natix::StoreQueryEvaluator eval(&*store, &stats);
    bool checked = false;
    natix::Timer timer;
    while (timer.ElapsedMillis() < kServeMs && answers_equivalent) {
      for (const natix::XPathMarkQuery& q : natix::XPathMarkQueries()) {
        const auto path = natix::ParseXPath(q.text);
        const auto got =
            path.ok() ? eval.Evaluate(*path) : path.status();
        if (!got.ok()) {
          answers_equivalent = false;
          break;
        }
        if (!checked) {
          const auto want = natix::EvaluateOnTree(oracle->tree, *path);
          if (!want.ok() || *got != *want) {
            answers_equivalent = false;
            break;
          }
        }
      }
      checked = true;
      ++sweeps;
    }
    degraded_ms = timer.ElapsedMillis();
  }
  if (!answers_equivalent) {
    std::fprintf(stderr, "BUG: degraded store answered a query wrong\n");
    return 1;
  }

  // The operator swaps the device; rehabilitation must re-earn full
  // health and the store must take ops and checkpoints again.
  raw->Revive();
  const natix::Status rehab = store->TryRehabilitate();
  const bool rehabilitated =
      rehab.ok() && store->health() == natix::StoreHealth::kHealthy;
  int ops_after = 0;
  if (rehabilitated) {
    for (int c = 0; c < 4; ++c) {
      if (!ApplyRandomOps(&*store, kChunk, size_floor, &rng, &did)) break;
      ops_after += kChunk;
    }
  }
  if (!rehabilitated || ops_after == 0) {
    std::fprintf(stderr, "BUG: rehabilitation failed (%s)\n",
                 rehab.ToString().c_str());
    return 1;
  }
  store->Checkpoint().CheckOK();
  store->partitioner()->Validate().CheckOK();

  const double sweeps_per_sec =
      degraded_ms > 0 ? 1e3 * static_cast<double>(sweeps) / degraded_ms
                      : 0.0;
  std::printf("%d ops to the device death; %llu degraded sweeps "
              "(%.2f/sec, answers ok); rehabilitated, %d ops after\n",
              ops_before, static_cast<unsigned long long>(sweeps),
              sweeps_per_sec, ops_after);
  std::printf(
      "BENCH_UPDATES {\"bench\":\"store_updates_degraded\",\"doc\":"
      "\"xmark\",\"k\":%llu,\"scale\":%.3f,\"ops_before_fault\":%d,"
      "\"degraded_sweeps\":%llu,\"degraded_ms\":%.1f,"
      "\"sweeps_per_sec\":%.2f,\"answers_equivalent\":%s,"
      "\"rehabilitated\":%s,\"ops_after_rehab\":%d}\n",
      static_cast<unsigned long long>(limit), scale, ops_before,
      static_cast<unsigned long long>(sweeps), degraded_ms, sweeps_per_sec,
      answers_equivalent ? "true" : "false",
      rehabilitated ? "true" : "false", ops_after);
  std::fflush(stdout);
  return 0;
}

// Part 5: the same insert workload through a write-ahead log under a
// given sync policy. Measures the durable insert latency -- the timed
// section covers the inserts plus the durability barrier (SyncWal) that
// acknowledges them, while checkpoints run outside the timer (an
// amortized cost reported separately) -- and the durability overhead:
// log bytes per record byte for the op stream and for checkpoints.
// With `full` set it then recovers the store from the log, checks the
// surviving insert count and runs the fsck + self-healing integrity
// legs; the timing-only variant stops after the stats row.
int RunWalLeg(natix::TotalWeight limit, double scale,
              const natix::SyncPolicy& policy, bool full) {
  constexpr int kInserts = 10000;
  constexpr int kCheckpointEvery = 2500;
  std::printf("\nDurable store: %d inserts through the WAL (sync policy "
              "%s, checkpoint every %d)\n\n",
              kInserts, policy.ModeName(), kCheckpointEvery);

  const auto entry = natix::benchutil::LoadDocument("xmark", scale, limit);
  const auto ekm = natix::EkmPartition(entry->doc.tree, limit);
  ekm.status().CheckOK();
  auto store = natix::NatixStore::Build(entry->doc.Clone(), *ekm, limit);
  store.status().CheckOK();

  auto backend = std::make_unique<natix::MemoryFileBackend>();
  const std::shared_ptr<natix::MemoryFileBackend::Bytes> disk =
      backend->disk();
  natix::Timer attach_timer;
  store->EnableDurability(std::move(backend), policy).CheckOK();
  const double attach_ms = attach_timer.ElapsedMillis();

  natix::Rng rng(1);
  double insert_ms = 0;
  double checkpoint_ms = 0;
  for (int done = 0; done < kInserts; done += kCheckpointEvery) {
    natix::Timer timer;
    if (!ApplyRandomInserts(&*store, kCheckpointEvery, &rng)) return 1;
    // The durability barrier belongs in the timed section: an op only
    // counts once it is acknowledged fsynced.
    store->SyncWal().CheckOK();
    insert_ms += timer.ElapsedMillis();
    natix::Timer cp_timer;
    store->Checkpoint().CheckOK();
    checkpoint_ms += cp_timer.ElapsedMillis();
  }

  const natix::WalStats ws = store->wal_stats();
  std::printf("initial checkpoint: %.1fms; %d durable inserts in %.1fms "
              "(%.2fus each); %.1fms in checkpoints\n",
              attach_ms, kInserts, insert_ms, 1e3 * insert_ms / kInserts,
              checkpoint_ms);
  std::printf("commit pipeline: %llu fsyncs, %llu batches, mean batch "
              "%.1f entries\n",
              static_cast<unsigned long long>(ws.fsyncs),
              static_cast<unsigned long long>(ws.sync_batches),
              ws.MeanBatchOps());
  std::printf("WAL: %llu bytes (%llu op bytes in %llu entries, %llu "
              "checkpoint bytes in %llu checkpoints)\n",
              static_cast<unsigned long long>(ws.wal_bytes),
              static_cast<unsigned long long>(ws.op_bytes),
              static_cast<unsigned long long>(ws.op_entries),
              static_cast<unsigned long long>(ws.checkpoint_bytes),
              static_cast<unsigned long long>(ws.checkpoints));
  std::printf("op log amplification: %.3fx of %llu record bytes\n",
              ws.OpAmplification(),
              static_cast<unsigned long long>(ws.record_bytes));
  if (ws.OpAmplification() >= 2.0) {
    std::fprintf(stderr, "BUG: op log amplification above the 2x budget\n");
    return 1;
  }

  if (!full) {
    // Timing-only leg: the latency row is the whole point.
    std::printf(
        "BENCH_UPDATES {\"bench\":\"store_updates_wal\",\"doc\":\"xmark\","
        "\"sync_policy\":\"%s\",\"nodes\":%zu,\"k\":%llu,\"scale\":%.3f,"
        "\"inserts\":%d,\"insert_us\":%.3f,\"checkpoint_ms\":%.3f,"
        "\"fsyncs\":%llu,\"sync_batches\":%llu,\"mean_batch_ops\":%.2f,"
        "\"wal_bytes\":%llu,\"op_amplification\":%.4f,"
        "\"hardware_threads\":%u}\n",
        policy.ModeName(), store->tree().size(),
        static_cast<unsigned long long>(limit), scale, kInserts,
        1e3 * insert_ms / kInserts, checkpoint_ms,
        static_cast<unsigned long long>(ws.fsyncs),
        static_cast<unsigned long long>(ws.sync_batches), ws.MeanBatchOps(),
        static_cast<unsigned long long>(ws.wal_bytes), ws.OpAmplification(),
        HardwareThreads());
    return 0;
  }

  // Crash (drop the store) and rebuild from the surviving bytes.
  const size_t records_before_crash = store->record_count();
  store = natix::Status::Internal("crashed");
  natix::Timer recover_timer;
  auto recovered = natix::NatixStore::Recover(
      std::make_unique<natix::MemoryFileBackend>(disk));
  const double recover_ms = recover_timer.ElapsedMillis();
  recovered.status().CheckOK();
  const natix::UpdateStats us = recovered->update_stats();
  std::printf("recovery: %.1fms, %llu/%d inserts survived, %zu records\n",
              recover_ms, static_cast<unsigned long long>(us.inserts),
              kInserts, recovered->record_count());
  if (us.inserts != static_cast<uint64_t>(kInserts) ||
      recovered->record_count() != records_before_crash) {
    std::fprintf(stderr, "BUG: recovered store diverges from the original\n");
    return 1;
  }
  recovered->partitioner()->Validate().CheckOK();
  if (!SweepMatchesReference(*recovered)) return 1;

  // Integrity leg: flush the recovered store's pages as sealed cells,
  // damage a sample of them, and measure fsck detection plus the
  // self-healing read path over the same WAL.
  natix::MemoryFileBackend pagefile;
  recovered->FlushPagesTo(&pagefile).CheckOK();
  const size_t cell_size = recovered->page_size() + natix::kPageCellOverhead;
  const size_t pages = recovered->regular_page_count();
  const size_t to_damage = std::min<size_t>(8, pages);
  for (size_t p = 0; p < to_damage; ++p) {
    (*pagefile.disk())[p * cell_size + 64] ^= 0x10;
  }
  natix::MemoryFileBackend audit_wal(disk);
  std::unique_ptr<natix::NatixStore> audited;
  natix::Timer fsck_timer;
  auto report = natix::FsckLog(&audit_wal, &audited);
  report.status().CheckOK();
  natix::FsckPageFile(&pagefile, *audited, &*report).CheckOK();
  const double fsck_ms = fsck_timer.ElapsedMillis();
  if (report->cell_checksum_failures != to_damage) {
    std::fprintf(stderr, "BUG: fsck found %llu of %zu damaged cells\n",
                 static_cast<unsigned long long>(
                     report->cell_checksum_failures),
                 to_damage);
    return 1;
  }
  natix::FilePageSource primary(&pagefile, recovered->page_size(),
                                recovered->page_provider());
  natix::MemoryFileBackend heal_wal(disk);
  const natix::SelfHealingPageSource healer(&primary, &heal_wal);
  natix::Timer heal_timer;
  for (uint32_t p = 0; p < static_cast<uint32_t>(pages); ++p) {
    healer.ReadPage(p).status().CheckOK();
  }
  const double heal_ms = heal_timer.ElapsedMillis();
  const natix::IntegrityStats is = healer.stats();
  if (is.repairs != to_damage || is.repair_failures != 0) {
    std::fprintf(stderr, "BUG: %llu of %zu damaged pages healed "
                         "(%llu failures)\n",
                 static_cast<unsigned long long>(is.repairs), to_damage,
                 static_cast<unsigned long long>(is.repair_failures));
    return 1;
  }
  std::printf("integrity: fsck over %zu cells in %.1fms (%llu damaged "
              "found), %llu pages healed in %.1fms\n",
              pages, fsck_ms,
              static_cast<unsigned long long>(
                  report->cell_checksum_failures),
              static_cast<unsigned long long>(is.repairs), heal_ms);

  std::printf(
      "BENCH_UPDATES {\"bench\":\"store_updates_wal\",\"doc\":\"xmark\","
      "\"sync_policy\":\"%s\",\"nodes\":%zu,\"k\":%llu,\"scale\":%.3f,"
      "\"inserts\":%d,\"insert_us\":%.3f,\"checkpoint_ms\":%.3f,"
      "\"fsyncs\":%llu,\"sync_batches\":%llu,\"mean_batch_ops\":%.2f,"
      "\"wal_bytes\":%llu,\"op_bytes\":%llu,"
      "\"op_entries\":%llu,\"checkpoint_bytes\":%llu,\"checkpoints\":%llu,"
      "\"record_bytes\":%llu,\"op_amplification\":%.4f,"
      "\"recover_ms\":%.3f,\"recovered_inserts\":%llu,"
      "\"queries_match\":true,\"fsck_cells\":%zu,\"fsck_ms\":%.3f,"
      "\"fsck_damage_found\":%llu,\"pages_repaired\":%llu,"
      "\"repair_failures\":%llu,\"heal_ms\":%.3f,"
      "\"hardware_threads\":%u}\n",
      policy.ModeName(), recovered->tree().size(),
      static_cast<unsigned long long>(limit),
      scale, kInserts, 1e3 * insert_ms / kInserts, checkpoint_ms,
      static_cast<unsigned long long>(ws.fsyncs),
      static_cast<unsigned long long>(ws.sync_batches), ws.MeanBatchOps(),
      static_cast<unsigned long long>(ws.wal_bytes),
      static_cast<unsigned long long>(ws.op_bytes),
      static_cast<unsigned long long>(ws.op_entries),
      static_cast<unsigned long long>(ws.checkpoint_bytes),
      static_cast<unsigned long long>(ws.checkpoints),
      static_cast<unsigned long long>(ws.record_bytes),
      ws.OpAmplification(), recover_ms,
      static_cast<unsigned long long>(us.inserts), pages, fsck_ms,
      static_cast<unsigned long long>(report->cell_checksum_failures),
      static_cast<unsigned long long>(is.repairs),
      static_cast<unsigned long long>(is.repair_failures), heal_ms,
      HardwareThreads());
  return 0;
}

}  // namespace

int main() {
  constexpr natix::TotalWeight kLimit = 256;
  const double scale = natix::benchutil::ScaleFromEnv(0.25);
  if (const int rc = RunReplayTable(kLimit, scale)) return rc;
  if (const int rc = RunStoreLeg(kLimit, scale)) return rc;
  if (const int rc = RunMixedLeg(kLimit, scale)) return rc;
  if (const int rc = RunServeLeg(kLimit, scale)) return rc;
  if (const int rc = RunDegradedLeg(kLimit, scale)) return rc;
  // Two durable legs: every-op fsync prices the strongest guarantee
  // (timing only), group commit is the default policy and carries the
  // full recovery + integrity flow.
  if (const int rc = RunWalLeg(kLimit, scale, natix::SyncPolicy::EveryOp(),
                               /*full=*/false)) {
    return rc;
  }
  return RunWalLeg(kLimit, scale, natix::SyncPolicy::GroupCommit(),
                   /*full=*/true);
}
