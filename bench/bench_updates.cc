// Extension benchmark: node-at-a-time maintenance vs. bulkload.
//
// Replays a corpus document as a stream of single-node insertions through
// the IncrementalPartitioner and compares the maintained partition count
// against a clean batch partitioning of the final tree -- quantifying the
// "reorganization debt" that accumulates under online updates (the reason
// Natix separates its bulkload component from the node-at-a-time
// maintenance of its storage format).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/algorithm.h"
#include "updates/incremental.h"

int main() {
  constexpr natix::TotalWeight kLimit = 256;
  const double scale = natix::benchutil::ScaleFromEnv(0.25);
  std::printf("Incremental maintenance vs. bulkload (K = %llu, "
              "scale %.2f)\n\n",
              static_cast<unsigned long long>(kLimit), scale);
  std::printf("%-12s %9s | %11s %11s %9s | %9s %9s | %10s\n", "document",
              "nodes", "incremental", "batch EKM", "debt", "splits",
              "ins/sec", "opt (DHW)");

  for (const char* name :
       {"sigmod", "mondial", "partsupp", "uwm", "orders", "xmark"}) {
    const auto entry = natix::benchutil::LoadDocument(name, scale, kLimit);
    const natix::Tree& source = entry->doc.tree;

    // Replay the document in document order as single-node insertions.
    natix::Tree replay;
    auto ip = natix::IncrementalPartitioner::CreateEmpty(
        &replay, kLimit, source.WeightOf(source.root()),
        source.LabelOf(source.root()));
    ip.status().CheckOK();
    std::vector<natix::NodeId> mapped(source.size());
    mapped[source.root()] = replay.root();
    natix::Timer timer;
    const std::vector<natix::NodeId> preorder = source.PreorderNodes();
    for (size_t i = 1; i < preorder.size(); ++i) {
      const natix::NodeId v = preorder[i];
      const auto inserted = ip->InsertBefore(
          mapped[source.Parent(v)], natix::kInvalidNode, source.WeightOf(v),
          source.LabelOf(v), source.KindOf(v));
      inserted.status().CheckOK();
      mapped[v] = *inserted;
    }
    const double seconds = timer.ElapsedSeconds();
    ip->Validate().CheckOK();

    const auto batch = natix::PartitionWith("EKM", source, kLimit);
    batch.status().CheckOK();
    const auto opt = natix::PartitionWith("DHW", source, kLimit);
    opt.status().CheckOK();

    std::printf("%-12s %9zu | %11zu %11zu %8.1f%% | %9llu %9.0fk | %10zu\n",
                name, source.size(), ip->partition_count(), batch->size(),
                100.0 * (static_cast<double>(ip->partition_count()) /
                             static_cast<double>(batch->size()) -
                         1.0),
                static_cast<unsigned long long>(ip->split_count()),
                static_cast<double>(source.size()) / seconds / 1000.0,
                opt->size());
    std::fflush(stdout);
  }
  return 0;
}
