// Extension benchmark: cold-cache query behaviour with real page reads.
//
// The paper's Table 3 runs with a buffer pool larger than the document
// ("no page fault during query evaluation"), isolating navigation cost.
// This ablation runs the complementary experiment: the store's document
// is *released* (records are the only source of truth), its pages are
// flushed to a page file, and queries run record-backed through an LRU
// buffer of bounded size whose misses genuinely read and decode page
// bytes. A layout with fewer, fuller records packs a query's working set
// into fewer pages, so sibling partitioning's advantage grows as the
// buffer shrinks.
//
// Each row also reports measured I/O: miss count, bytes actually read
// through the FilePageSource and the wall time spent in those reads; the
// sweep's wall time covers the record decoding on top. Machine-readable
// "BENCH_COLDCACHE {...}" JSON lines accompany the table.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#if defined(__linux__)
#include <malloc.h>
#endif

#include "bench/bench_util.h"
#include "core/heuristics.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/xpathmark.h"
#include "storage/buffer_manager.h"
#include "storage/file_backend.h"
#include "storage/store.h"

namespace {

// Current resident set in KiB from /proc/self/status (0 off-Linux).
// malloc_trim() first, so freed document arenas actually leave the RSS.
uint64_t CurrentRssKb() {
#if defined(__linux__)
  malloc_trim(0);
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%llu", reinterpret_cast<unsigned long long*>(&kb));
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  return 0;
#endif
}

struct Layout {
  const char* name;
  natix::NatixStore store;
  natix::MemoryFileBackend pagefile;
};

}  // namespace

int main() {
  constexpr natix::TotalWeight kLimit = 256;
  const double scale = natix::benchutil::ScaleFromEnv(0.25);
  std::printf("Cold-cache ablation on XMark (K = %llu, scale %.2f): "
              "document released, pages served from a flushed page file\n\n",
              static_cast<unsigned long long>(kLimit), scale);

  auto entry = natix::benchutil::LoadDocument("xmark", scale, kLimit);
  const natix::ImportedDocument& doc = entry->doc;
  const auto km = natix::KmPartition(doc.tree, kLimit);
  const auto ekm = natix::EkmPartition(doc.tree, kLimit);
  km.status().CheckOK();
  ekm.status().CheckOK();
  auto store_km = natix::NatixStore::Build(doc.Clone(), *km, kLimit);
  auto store_ekm = natix::NatixStore::Build(doc.Clone(), *ekm, kLimit);
  store_km.status().CheckOK();
  store_ekm.status().CheckOK();
  const uint64_t rss_resident_kb = CurrentRssKb();

  Layout layouts[] = {{"KM", std::move(*store_km), {}},
                      {"EKM", std::move(*store_ekm), {}}};
  // Evicted mode: drop the in-memory documents (and the import copy);
  // from here on, record bytes are the only representation.
  entry.reset();
  for (Layout& l : layouts) {
    l.store.ReleaseDocument().CheckOK();
    l.store.FlushPagesTo(&l.pagefile).CheckOK();
  }
  const uint64_t rss_released_kb = CurrentRssKb();
  std::printf("pages: KM %zu, EKM %zu\n", layouts[0].store.page_count(),
              layouts[1].store.page_count());
  std::printf("RSS: %llu KiB with documents resident, %llu KiB released\n\n",
              static_cast<unsigned long long>(rss_resident_kb),
              static_cast<unsigned long long>(rss_released_kb));
  std::printf("BENCH_COLDCACHE {\"metric\":\"rss\",\"resident_kb\":%llu,"
              "\"released_kb\":%llu}\n\n",
              static_cast<unsigned long long>(rss_resident_kb),
              static_cast<unsigned long long>(rss_released_kb));

  const natix::NavigationCostModel nav_cost;
  std::printf("%-12s %-4s | %9s %12s %9s | %9s %9s\n", "buffer", "algo",
              "misses", "bytes read", "read ms", "sweep ms", "sim ms");
  for (const size_t frames : {16ul, 64ul, 256ul, 4096ul}) {
    double wall[2] = {0, 0};
    for (int i = 0; i < 2; ++i) {
      Layout& l = layouts[i];
      natix::LruBufferPool pool =
          natix::LruBufferPool::Create(frames).ValueOrDie();
      const natix::FilePageSource source(&l.pagefile, l.store.page_size(),
                                         l.store.page_provider());
      const natix::benchutil::QueryRun sweep =
          natix::benchutil::RunXPathMarkSweep(l.store, &pool, nav_cost,
                                              &source);
      const natix::BufferStats& bs = pool.stats();
      wall[i] = sweep.wall_ms;
      std::printf("%-12zu %-4s | %9llu %12llu %9.2f | %9.2f %9.2f\n",
                  frames, l.name,
                  static_cast<unsigned long long>(bs.misses),
                  static_cast<unsigned long long>(bs.bytes_read),
                  static_cast<double>(bs.read_ns) * 1e-6, sweep.wall_ms,
                  sweep.sim_ms);
      std::printf("BENCH_COLDCACHE {\"layout\":\"%s\",\"frames\":%zu,"
                  "\"misses\":%llu,\"bytes_read\":%llu,\"read_ms\":%.3f,"
                  "\"sweep_wall_ms\":%.3f,\"sim_ms\":%.3f,"
                  "\"crossings\":%llu,\"page_switches\":%llu}\n",
                  l.name, frames,
                  static_cast<unsigned long long>(bs.misses),
                  static_cast<unsigned long long>(bs.bytes_read),
                  static_cast<double>(bs.read_ns) * 1e-6, sweep.wall_ms,
                  sweep.sim_ms,
                  static_cast<unsigned long long>(
                      sweep.stats.record_crossings),
                  static_cast<unsigned long long>(
                      sweep.stats.page_switches));
    }
    std::printf("%-12s      | KM/EKM sweep wall ratio %.2fx\n\n", "",
                wall[1] > 0 ? wall[0] / wall[1] : 0.0);
  }
  std::printf("(each row runs XPathMark Q1-Q7 back to back through one "
              "shared pool; 4096 frames approximates the paper's warm "
              "buffer. Every miss reads one page from the page file and "
              "every crossing decodes a record view from frame bytes.)\n");
  return 0;
}
