// Extension benchmark: cold-cache query behaviour.
//
// The paper's Table 3 runs with a buffer pool larger than the document
// ("no page fault during query evaluation"), isolating navigation cost.
// This ablation runs the complementary experiment: queries through an LRU
// page buffer of bounded size. A layout with fewer, fuller records packs
// a query's working set into fewer pages, so sibling partitioning's
// advantage *grows* as the buffer shrinks (page faults dominate at
// ~100us each vs ~1us of navigation per crossing).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/heuristics.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/xpathmark.h"
#include "storage/buffer_manager.h"
#include "storage/store.h"

int main() {
  constexpr natix::TotalWeight kLimit = 256;
  constexpr double kFaultMicros = 100.0;  // one page read (fast SSD)
  const double scale = natix::benchutil::ScaleFromEnv(0.25);
  std::printf("Cold-cache ablation on XMark (K = %llu, scale %.2f, "
              "page fault = %.0fus)\n\n",
              static_cast<unsigned long long>(kLimit), scale, kFaultMicros);

  const auto entry = natix::benchutil::LoadDocument("xmark", scale, kLimit);
  const natix::ImportedDocument& doc = entry->doc;
  const auto km = natix::KmPartition(doc.tree, kLimit);
  const auto ekm = natix::EkmPartition(doc.tree, kLimit);
  km.status().CheckOK();
  ekm.status().CheckOK();
  const auto store_km = natix::NatixStore::Build(doc.Clone(), *km, kLimit);
  const auto store_ekm = natix::NatixStore::Build(doc.Clone(), *ekm, kLimit);
  store_km.status().CheckOK();
  store_ekm.status().CheckOK();
  std::printf("pages: KM %zu, EKM %zu\n\n", store_km->page_count(),
              store_ekm->page_count());

  const natix::NavigationCostModel nav_cost;
  std::printf("%-12s | %13s %13s | %12s %12s | %7s\n", "buffer",
              "KM faults", "EKM faults", "KM est", "EKM est", "speedup");
  for (const size_t frames : {16ul, 64ul, 256ul, 4096ul}) {
    uint64_t faults_km = 0;
    uint64_t faults_ekm = 0;
    double est_km = 0;
    double est_ekm = 0;
    auto run_all = [&](const natix::NatixStore& store, uint64_t* faults,
                       double* est) {
      natix::LruBufferPool pool = natix::LruBufferPool::Create(frames).ValueOrDie();
      const natix::benchutil::QueryRun sweep =
          natix::benchutil::RunXPathMarkSweep(store, &pool, nav_cost);
      *faults = pool.stats().misses;
      *est += sweep.sim_ms * 1e-3 +
              static_cast<double>(pool.stats().misses) * kFaultMicros * 1e-6;
    };
    run_all(*store_km, &faults_km, &est_km);
    run_all(*store_ekm, &faults_ekm, &est_ekm);
    char label[32];
    std::snprintf(label, sizeof(label), "%zu pages", frames);
    std::printf("%-12s | %13llu %13llu | %10.1fms %10.1fms | %6.2fx\n",
                label, static_cast<unsigned long long>(faults_km),
                static_cast<unsigned long long>(faults_ekm), est_km * 1e3,
                est_ekm * 1e3, est_km / est_ekm);
  }
  std::printf("\n(each row runs Q1-Q7 back to back through one shared "
              "pool; 4096 pages approximates the paper's warm buffer)\n");
  return 0;
}
