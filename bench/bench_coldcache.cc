// Extension benchmark: cold-cache query behaviour with real page reads.
//
// The paper's Table 3 runs with a buffer pool larger than the document
// ("no page fault during query evaluation"), isolating navigation cost.
// This ablation runs the complementary experiment: the store's document
// is *released* (records are the only source of truth), its pages are
// flushed to a page file, and queries run record-backed through an LRU
// buffer of bounded size whose misses genuinely read and decode page
// bytes. A layout with fewer, fuller records packs a query's working set
// into fewer pages, so sibling partitioning's advantage grows as the
// buffer shrinks.
//
// On top of the KM/EKM layout comparison, every layout is built twice:
// once with the v2 slot-aligned record format and once with the v3
// compressed format (varint metadata + Huffman-coded text cells). The
// partitioning, weights and query answers are identical by construction
// -- only the physical record bytes differ -- so the v2/v3 delta in
// bytes_read is the storage format's contribution alone.
//
// Each row also reports measured I/O: miss count, bytes actually read
// through the FilePageSource and the wall time spent in those reads; the
// sweep's wall time covers the record decoding on top. Machine-readable
// "BENCH_COLDCACHE {...}" JSON lines accompany the table.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#if defined(__linux__)
#include <malloc.h>
#endif

#include "bench/bench_util.h"
#include "core/heuristics.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/xpathmark.h"
#include "storage/buffer_manager.h"
#include "storage/file_backend.h"
#include "storage/store.h"

namespace {

// Current resident set in KiB from /proc/self/status (0 off-Linux).
// malloc_trim() first, so freed document arenas actually leave the RSS.
uint64_t CurrentRssKb() {
#if defined(__linux__)
  malloc_trim(0);
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      std::sscanf(line + 6, "%llu", reinterpret_cast<unsigned long long*>(&kb));
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  return 0;
#endif
}

struct Layout {
  const char* algo;
  uint16_t record_format;
  const char* format_name;
  natix::NatixStore store;
  natix::MemoryFileBackend pagefile;
};

// Hardware threads as reported by the runtime, floored at one so the
// JSON rows stay meaningful on hosts where the query returns zero.
unsigned HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

int main() {
  constexpr natix::TotalWeight kLimit = 256;
  const double scale = natix::benchutil::ScaleFromEnv(0.25);
  std::printf("Cold-cache ablation on XMark (K = %llu, scale %.2f): "
              "document released, pages served from a flushed page file\n\n",
              static_cast<unsigned long long>(kLimit), scale);

  auto entry = natix::benchutil::LoadDocument("xmark", scale, kLimit);
  const natix::ImportedDocument& doc = entry->doc;
  const auto km = natix::KmPartition(doc.tree, kLimit);
  const auto ekm = natix::EkmPartition(doc.tree, kLimit);
  km.status().CheckOK();
  ekm.status().CheckOK();
  natix::StoreOptions v2_opts;
  v2_opts.record_format = natix::kRecordFormatV2;
  natix::StoreOptions v3_opts;
  v3_opts.record_format = natix::kRecordFormatV3;
  auto km_v2 = natix::NatixStore::Build(doc.Clone(), *km, kLimit, v2_opts);
  auto km_v3 = natix::NatixStore::Build(doc.Clone(), *km, kLimit, v3_opts);
  auto ekm_v2 = natix::NatixStore::Build(doc.Clone(), *ekm, kLimit, v2_opts);
  auto ekm_v3 = natix::NatixStore::Build(doc.Clone(), *ekm, kLimit, v3_opts);
  for (const auto* s : {&km_v2, &km_v3, &ekm_v2, &ekm_v3}) {
    s->status().CheckOK();
  }
  const uint64_t rss_resident_kb = CurrentRssKb();

  Layout layouts[] = {
      {"KM", natix::kRecordFormatV2, "v2", std::move(*km_v2), {}},
      {"KM", natix::kRecordFormatV3, "v3", std::move(*km_v3), {}},
      {"EKM", natix::kRecordFormatV2, "v2", std::move(*ekm_v2), {}},
      {"EKM", natix::kRecordFormatV3, "v3", std::move(*ekm_v3), {}},
  };
  // Evicted mode: drop the in-memory documents (and the import copy);
  // from here on, record bytes are the only representation.
  entry.reset();
  for (Layout& l : layouts) {
    l.store.ReleaseDocument().CheckOK();
    l.store.FlushPagesTo(&l.pagefile).CheckOK();
  }
  const uint64_t rss_released_kb = CurrentRssKb();
  std::printf("%-4s %-3s | %9s %8s %13s %13s\n", "algo", "fmt", "records",
              "pages", "records/page", "disk bytes");
  for (const Layout& l : layouts) {
    std::printf("%-4s %-3s | %9zu %8zu %13.2f %13llu\n", l.algo,
                l.format_name, l.store.record_count(), l.store.page_count(),
                static_cast<double>(l.store.record_count()) /
                    static_cast<double>(l.store.page_count()),
                static_cast<unsigned long long>(l.store.TotalDiskBytes()));
    std::printf("BENCH_COLDCACHE {\"metric\":\"layout\",\"layout\":\"%s\","
                "\"format\":\"%s\",\"records\":%zu,\"pages\":%zu,"
                "\"records_per_page\":%.3f,\"disk_bytes\":%llu,"
                "\"hardware_threads\":%u}\n",
                l.algo, l.format_name, l.store.record_count(),
                l.store.page_count(),
                static_cast<double>(l.store.record_count()) /
                    static_cast<double>(l.store.page_count()),
                static_cast<unsigned long long>(l.store.TotalDiskBytes()),
                HardwareThreads());
  }
  std::printf("\nRSS: %llu KiB with documents resident, %llu KiB released\n\n",
              static_cast<unsigned long long>(rss_resident_kb),
              static_cast<unsigned long long>(rss_released_kb));
  std::printf("BENCH_COLDCACHE {\"metric\":\"rss\",\"resident_kb\":%llu,"
              "\"released_kb\":%llu,\"hardware_threads\":%u}\n\n",
              static_cast<unsigned long long>(rss_resident_kb),
              static_cast<unsigned long long>(rss_released_kb),
              HardwareThreads());

  const natix::NavigationCostModel nav_cost;
  bool results_equivalent = true;
  std::printf("%-8s %-4s %-3s | %9s %12s %9s | %9s %9s %10s\n", "buffer",
              "algo", "fmt", "misses", "bytes read", "read ms", "sweep ms",
              "sim ms", "results");
  for (const size_t frames : {16ul, 64ul, 256ul, 4096ul}) {
    uint64_t bytes_read[4] = {0, 0, 0, 0};
    uint64_t results[4] = {0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
      Layout& l = layouts[i];
      natix::LruBufferPool pool =
          natix::LruBufferPool::Create(frames).ValueOrDie();
      const natix::FilePageSource source(&l.pagefile, l.store.page_size(),
                                         l.store.page_provider());
      const natix::benchutil::QueryRun sweep =
          natix::benchutil::RunXPathMarkSweep(l.store, &pool, nav_cost,
                                              &source);
      const natix::BufferStats& bs = pool.stats();
      bytes_read[i] = bs.bytes_read;
      results[i] = sweep.result_nodes;
      std::printf("%-8zu %-4s %-3s | %9llu %12llu %9.2f | %9.2f %9.2f "
                  "%10llu\n",
                  frames, l.algo, l.format_name,
                  static_cast<unsigned long long>(bs.misses),
                  static_cast<unsigned long long>(bs.bytes_read),
                  static_cast<double>(bs.read_ns) * 1e-6, sweep.wall_ms,
                  sweep.sim_ms,
                  static_cast<unsigned long long>(sweep.result_nodes));
      std::printf("BENCH_COLDCACHE {\"layout\":\"%s\",\"format\":\"%s\","
                  "\"frames\":%zu,\"misses\":%llu,\"bytes_read\":%llu,"
                  "\"read_ms\":%.3f,\"sweep_wall_ms\":%.3f,\"sim_ms\":%.3f,"
                  "\"crossings\":%llu,\"page_switches\":%llu,"
                  "\"result_nodes\":%llu,\"hardware_threads\":%u}\n",
                  l.algo, l.format_name, frames,
                  static_cast<unsigned long long>(bs.misses),
                  static_cast<unsigned long long>(bs.bytes_read),
                  static_cast<double>(bs.read_ns) * 1e-6, sweep.wall_ms,
                  sweep.sim_ms,
                  static_cast<unsigned long long>(
                      sweep.stats.record_crossings),
                  static_cast<unsigned long long>(
                      sweep.stats.page_switches),
                  static_cast<unsigned long long>(sweep.result_nodes),
                  HardwareThreads());
    }
    // Same algorithm, same partitioning, same queries: the answers must
    // not depend on the record format.
    if (results[0] != results[1] || results[2] != results[3]) {
      results_equivalent = false;
    }
    const auto reduction = [](uint64_t v2, uint64_t v3) {
      return v2 > 0
                 ? 100.0 * (1.0 - static_cast<double>(v3) /
                                      static_cast<double>(v2))
                 : 0.0;
    };
    std::printf("%-8s          | v3 reads %.1f%% fewer bytes (KM), %.1f%% "
                "fewer (EKM)\n",
                "", reduction(bytes_read[0], bytes_read[1]),
                reduction(bytes_read[2], bytes_read[3]));
    std::printf("BENCH_COLDCACHE {\"metric\":\"compression\",\"frames\":%zu,"
                "\"km_bytes_read_reduction_pct\":%.2f,"
                "\"ekm_bytes_read_reduction_pct\":%.2f,"
                "\"results_equivalent\":%s,\"hardware_threads\":%u}\n\n",
                frames, reduction(bytes_read[0], bytes_read[1]),
                reduction(bytes_read[2], bytes_read[3]),
                results[0] == results[1] && results[2] == results[3]
                    ? "true"
                    : "false",
                HardwareThreads());
  }
  std::printf("(each row runs XPathMark Q1-Q7 back to back through one "
              "shared pool; 4096 frames approximates the paper's warm "
              "buffer. Every miss reads one page from the page file and "
              "every crossing decodes a record view from frame bytes.)\n");
  if (!results_equivalent) {
    std::printf("ERROR: query results differ between record formats\n");
    return 1;
  }
  return 0;
}
