// Reproduces Table 2: CPU time of each partitioning algorithm per
// document (K = 256). Uses google-benchmark; the expensive exact
// algorithms run a single iteration (like the paper's one-shot
// measurement), the cheap heuristics use normal statistical iteration.
//
// Expected shape (Sec. 6.3): DHW is by far the slowest (the paper reports
// ~5 orders of magnitude between DHW and EKM); GHDW is one to two orders
// faster than DHW but far slower than the heuristics; EKM/RS/DFS are
// near-instant; KM pays for per-node child sorting; BFS sits between.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/algorithm.h"

namespace {

using natix::benchutil::BenchDoc;

std::vector<std::unique_ptr<BenchDoc>>& Corpus() {
  static std::vector<std::unique_ptr<BenchDoc>>& corpus =
      *new std::vector<std::unique_ptr<BenchDoc>>(
          natix::benchutil::LoadCorpus(natix::benchutil::ScaleFromEnv(),
                                       256));
  return corpus;
}

void RunAlgorithm(benchmark::State& state, const BenchDoc* doc,
                  std::string_view algo) {
  for (auto _ : state) {
    natix::Result<natix::Partitioning> p =
        natix::PartitionWith(algo, doc->doc.tree, 256);
    p.status().CheckOK();
    benchmark::DoNotOptimize(p->size());
  }
  state.counters["nodes"] = static_cast<double>(doc->doc.tree.size());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const auto& doc : Corpus()) {
    for (const std::string_view algo :
         {"DHW", "GHDW", "EKM", "RS", "DFS", "KM", "BFS"}) {
      const std::string name = std::string("Table2/") +
                               std::string(doc->info->name) + "/" +
                               std::string(algo);
      auto* bench = benchmark::RegisterBenchmark(
          name.c_str(),
          [doc_ptr = doc.get(), algo](benchmark::State& state) {
            RunAlgorithm(state, doc_ptr, algo);
          });
      bench->Unit(benchmark::kMillisecond);
      if (algo == "DHW" || algo == "GHDW") {
        bench->Iterations(1);  // one-shot, like the paper's Table 2
      }
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
