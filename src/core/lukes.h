#ifndef NATIX_CORE_LUKES_H_
#define NATIX_CORE_LUKES_H_

#include "common/status.h"
#include "tree/partitioning.h"
#include "tree/tree.h"

namespace natix {

/// Lukes' algorithm (IBM J. R&D 1974; discussed in Sec. 5 of the paper):
/// dynamic programming over (node, part-weight) states that maximizes the
/// total *value* of edges kept inside partitions, subject to the weight
/// limit. Partitions are connected through parent-child edges only -- no
/// sibling sharing.
///
/// This implementation uses unit edge values, for which maximizing kept
/// edges is equivalent to minimizing the number of partitions: it then
/// solves the same problem as Kundu-Misra and serves as the "classic
/// optimal" baseline the paper compares against (both are optimal for
/// parent-child partitionings; DHW's sibling partitionings beat them).
///
/// O(nK^2) time, O(nK) memory. Like KM, the output consists of
/// single-node intervals plus (t, t).
Result<Partitioning> LukesPartition(const Tree& tree, TotalWeight limit);

/// The number of parent-child edges Lukes' algorithm keeps inside
/// partitions for the returned partitioning equals
/// `tree.size() - partitioning.size()`: every partition is a connected
/// subgraph, so a partitioning with p parts cuts exactly p - 1 edges.
///
/// Exposed for tests: the maximal kept-edge value for `tree` under
/// `limit` (computed without extracting a partitioning).
Result<uint64_t> LukesOptimalValue(const Tree& tree, TotalWeight limit);

}  // namespace natix

#endif  // NATIX_CORE_LUKES_H_
