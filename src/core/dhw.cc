#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/algorithm.h"
#include "core/exact_algorithms.h"
#include "core/flat_dp.h"

namespace natix {

namespace {

/// Per-node outcome of the DHW flat DP: the optimal and (if it exists)
/// nearly optimal partitionings of the node's subtree, pre-extracted as
/// interval chains so the DP table can be freed immediately.
struct NodeSolution {
  /// Root partition weight of the optimal subtree partitioning, W^P(v).
  Weight opt_rootweight = 0;
  /// ΔW(v) = W^P(v) - W^Q(v); 0 if no nearly optimal partitioning exists.
  Weight delta_w = 0;
  std::vector<FlatDp::IntervalChoice> opt_chain;
  std::vector<FlatDp::IntervalChoice> near_chain;
  bool has_near = false;
};

/// Per-worker state: a pooled DP workspace, the flat-problem scratch
/// vectors, extraction scratch, and a private stats accumulator (merged
/// once at the end, so the hot loop never touches shared counters).
struct DhwWorker {
  FlatDpWorkspace workspace;
  std::vector<Weight> weights;
  std::vector<Weight> deltas;
  DpStats stats;
  // Extraction scratch, reused across the worker's extraction jobs.
  std::vector<std::pair<NodeId, bool>> stack;
  std::vector<NodeId> children;
  std::vector<char> child_near;
};

/// Solves the flat DP at inner node `v`. Reads only the children's
/// (completed) NodeSolutions and writes only sol[v], so independent
/// subtrees can be solved concurrently; the result is deterministic
/// regardless of scheduling.
void SolveInnerNode(const Tree& tree, TotalWeight limit, NodeId v,
                    std::vector<NodeSolution>& sol, DhwWorker& worker) {
  NodeSolution& s = sol[v];
  worker.weights.clear();
  worker.deltas.clear();
  for (NodeId c = tree.FirstChild(v); c != kInvalidNode;
       c = tree.NextSibling(c)) {
    worker.weights.push_back(sol[c].opt_rootweight);
    worker.deltas.push_back(sol[c].delta_w);
  }
  const size_t child_count = worker.weights.size();

  const Weight wv = tree.WeightOf(v);
  FlatDp dp(wv, worker.weights.data(), worker.deltas.data(), child_count,
            limit, &worker.workspace);
  dp.EnsureSeed(wv);
  const FlatDp::Entry* opt = dp.FinalEntry(wv);
  s.opt_rootweight = opt->rootweight;
  s.opt_chain = dp.ExtractChain(wv);

  // Lemma 4: rerunning with root weight w(v) + K - W^P(v) + 1 yields a
  // nearly optimal partitioning (or none, if that exceeds K).
  const uint64_t s_near = static_cast<uint64_t>(wv) + limit -
                          opt->rootweight + 1;
  if (s_near <= limit) {
    const uint32_t sq = static_cast<uint32_t>(s_near);
    dp.EnsureSeed(sq);
    const FlatDp::Entry* near = dp.FinalEntry(sq);
    s.near_chain = dp.ExtractChain(sq);
    s.has_near = true;
    // The table's rootweight fields include the inflated base sq; the
    // actual root partition weight of the nearly optimal partitioning in
    // T is near->rootweight - (sq - w(v)). (The paper's pseudocode
    // subtracts table fields directly, which would mix the two bases.)
    const Weight near_actual = near->rootweight - (sq - wv);
    s.delta_w = s.opt_rootweight - near_actual;
  }
  worker.stats.inner_nodes += 1;
  worker.stats.rows += dp.RowCount();
  worker.stats.cells += dp.CellCount();
  worker.stats.full_table_cells +=
      (static_cast<uint64_t>(limit) - wv + 1) *
      (static_cast<uint64_t>(child_count) + 1);
}

/// Seeds the trivial solution of a leaf.
inline void SolveLeaf(const Tree& tree, NodeId v,
                      std::vector<NodeSolution>& sol) {
  sol[v].opt_rootweight = tree.WeightOf(v);
}

unsigned ResolveThreadCount(const Tree& tree, const DhwOptions& options) {
  unsigned threads = options.num_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // Oversubscription past the hardware brings no speedup, and an absurd
  // request (e.g. a wrapped-around negative from a CLI) must not translate
  // into thousands of OS threads. Determinism is unaffected by the cap.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, std::max(8u, 2 * hw));
  // Below the cutoff the pool's wake-up/steal overhead dominates the DP
  // work; fall back to the sequential path.
  if (tree.size() < options.min_parallel_nodes) threads = 1;
  return threads;
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// One scheduler task: either a single heavy inner node, or a chunk of
/// whole light subtrees given as ranges into the postorder array.
struct DhwTask {
  /// Heavy node to solve, or kInvalidNode for a chunk task.
  NodeId heavy_node = kInvalidNode;
  /// Chunk tasks: half-open range into the shared range list.
  uint32_t ranges_begin = 0;
  uint32_t ranges_end = 0;
};

/// The subtree-chunked task graph. Built once per run (setup phase);
/// execution allocates nothing.
struct DhwSchedule {
  std::vector<NodeId> post;           // global postorder
  std::vector<uint32_t> pos;          // pos[v] = index of v in post
  std::vector<uint32_t> subtree_nodes;
  std::vector<DhwTask> tasks;
  /// Inclusive postorder index ranges referenced by chunk tasks. Each
  /// range covers whole subtrees, so walking it in increasing index order
  /// meets every child before its parent.
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  std::vector<uint32_t> dependency_counts;
  std::vector<uint32_t> dependent_of;
  /// task id of each heavy node (kNoDependent elsewhere).
  std::vector<uint32_t> task_of_node;
  size_t grain = 0;

  bool IsHeavy(NodeId v) const { return subtree_nodes[v] > grain; }
};

/// Decomposes the tree into chunk and heavy-node tasks with accumulated
/// subtree size >= grain per chunk. Requires subtree_nodes[root] > grain
/// (otherwise the whole tree is one grain and the caller should run
/// sequentially). Heavy nodes (subtree > grain) become tasks of their
/// own; the maximal light subtrees hanging off each heavy node are
/// greedily grouped left-to-right into chunk tasks. Every task has at
/// most one dependent (its heavy parent's task), which is exactly the
/// shape ThreadPool::RunGraph schedules.
DhwSchedule BuildSchedule(const Tree& tree, size_t grain) {
  DhwSchedule sched;
  sched.grain = grain;
  sched.post = tree.PostorderNodes();
  const size_t n = sched.post.size();
  sched.pos.resize(n);
  sched.subtree_nodes.assign(n, 1);
  for (size_t i = 0; i < n; ++i) {
    const NodeId v = sched.post[i];
    sched.pos[v] = static_cast<uint32_t>(i);
    for (NodeId c = tree.FirstChild(v); c != kInvalidNode;
         c = tree.NextSibling(c)) {
      sched.subtree_nodes[v] += sched.subtree_nodes[c];
    }
  }
  sched.task_of_node.assign(n, ThreadPool::kNoDependent);

  for (const NodeId v : sched.post) {
    if (!sched.IsHeavy(v)) continue;
    // Heavy nodes have subtree > grain >= 1, hence children.
    const uint32_t first_chunk = static_cast<uint32_t>(sched.tasks.size());
    uint32_t heavy_children = 0;
    size_t acc = 0;
    uint32_t rbegin = static_cast<uint32_t>(sched.ranges.size());
    const auto close_chunk = [&] {
      if (sched.ranges.size() == rbegin) return;
      DhwTask chunk;
      chunk.ranges_begin = rbegin;
      chunk.ranges_end = static_cast<uint32_t>(sched.ranges.size());
      sched.tasks.push_back(chunk);
      sched.dependency_counts.push_back(0);
      sched.dependent_of.push_back(ThreadPool::kNoDependent);
      rbegin = static_cast<uint32_t>(sched.ranges.size());
      acc = 0;
    };
    for (NodeId c = tree.FirstChild(v); c != kInvalidNode;
         c = tree.NextSibling(c)) {
      if (sched.IsHeavy(c)) {
        ++heavy_children;
        continue;
      }
      // The subtree of c is the contiguous postorder slice ending at c.
      const uint32_t hi = sched.pos[c];
      const uint32_t lo = hi - sched.subtree_nodes[c] + 1;
      if (sched.ranges.size() > rbegin &&
          sched.ranges.back().second + 1 == lo) {
        sched.ranges.back().second = hi;
      } else {
        sched.ranges.emplace_back(lo, hi);
      }
      acc += sched.subtree_nodes[c];
      if (acc >= grain) close_chunk();
    }
    close_chunk();

    const uint32_t vid = static_cast<uint32_t>(sched.tasks.size());
    sched.task_of_node[v] = vid;
    DhwTask heavy;
    heavy.heavy_node = v;
    sched.tasks.push_back(heavy);
    sched.dependency_counts.push_back(vid - first_chunk + heavy_children);
    sched.dependent_of.push_back(ThreadPool::kNoDependent);
    for (uint32_t t = first_chunk; t < vid; ++t) {
      sched.dependent_of[t] = vid;
    }
    for (NodeId c = tree.FirstChild(v); c != kInvalidNode;
         c = tree.NextSibling(c)) {
      if (sched.IsHeavy(c)) sched.dependent_of[sched.task_of_node[c]] = vid;
    }
  }
  return sched;
}

/// Emits v's chain intervals into `out` (in chain order) and pushes v's
/// children onto `stack` left-to-right with their use_near flags, so the
/// LIFO pop visits them right-to-left -- the traversal order the original
/// sequential extraction used, which the parallel one must reproduce.
void EmitAndDescend(const Tree& tree, const std::vector<NodeSolution>& sol,
                    NodeId v, bool use_near, DhwWorker& worker,
                    std::vector<std::pair<NodeId, NodeId>>& out) {
  const NodeSolution& s = sol[v];
  const std::vector<FlatDp::IntervalChoice>& chain =
      use_near ? s.near_chain : s.opt_chain;
  worker.children.clear();
  for (NodeId c = tree.FirstChild(v); c != kInvalidNode;
       c = tree.NextSibling(c)) {
    worker.children.push_back(c);
  }
  worker.child_near.assign(worker.children.size(), 0);
  for (const FlatDp::IntervalChoice& choice : chain) {
    out.emplace_back(worker.children[choice.begin],
                     worker.children[choice.end]);
    for (const uint32_t idx : choice.nearly) worker.child_near[idx] = 1;
  }
  for (size_t i = 0; i < worker.children.size(); ++i) {
    worker.stack.push_back(
        {worker.children[i], worker.child_near[i] != 0});
  }
}

/// Extracts the full interval sequence of `root`'s subtree (root's own
/// chain first, then descendants in right-to-left preorder).
void ExtractSubtree(const Tree& tree, const std::vector<NodeSolution>& sol,
                    NodeId root, bool use_near, DhwWorker& worker,
                    std::vector<std::pair<NodeId, NodeId>>& out) {
  worker.stack.clear();
  worker.stack.push_back({root, use_near});
  while (!worker.stack.empty()) {
    const auto [v, near] = worker.stack.back();
    worker.stack.pop_back();
    if (tree.FirstChild(v) == kInvalidNode) continue;
    EmitAndDescend(tree, sol, v, near, worker, out);
  }
}

/// A light subtree whose extraction was deferred to the parallel phase.
struct ExtractJob {
  NodeId root = kInvalidNode;
  bool use_near = false;
  std::vector<std::pair<NodeId, NodeId>> out;
};

}  // namespace

Result<Partitioning> DhwPartition(const Tree& tree, TotalWeight limit,
                                  const DhwOptions& options, DpStats* stats,
                                  DhwPhaseTimings* timings) {
  NATIX_RETURN_NOT_OK(CheckPartitionable(tree, limit));
  using Clock = std::chrono::steady_clock;

  std::vector<NodeSolution> sol(tree.size());
  const size_t grain =
      std::max<size_t>(1, options.task_grain_nodes == 0
                              ? DhwOptions{}.task_grain_nodes
                              : options.task_grain_nodes);
  unsigned threads = ResolveThreadCount(tree, options);
  // A tree no larger than one task grain would decompose into a single
  // task; take the sequential path directly (same result, no pool).
  if (tree.size() <= grain) threads = 1;

  const auto merge_stats = [stats](const DhwWorker& worker) {
    if (stats == nullptr) return;
    stats->inner_nodes += worker.stats.inner_nodes;
    stats->rows += worker.stats.rows;
    stats->cells += worker.stats.cells;
    stats->full_table_cells += worker.stats.full_table_cells;
  };

  Partitioning p;
  p.Add(tree.root(), tree.root());

  if (threads <= 1) {
    if (timings != nullptr) timings->threads_used = 1;
    // Sequential path: leaves first, then inner nodes in postorder with a
    // single reused workspace.
    auto t0 = Clock::now();
    const std::vector<NodeId> postorder = tree.PostorderNodes();
    if (timings != nullptr) timings->setup_ms = MsSince(t0);

    t0 = Clock::now();
    std::vector<NodeId> inner;
    for (const NodeId v : postorder) {
      if (tree.FirstChild(v) == kInvalidNode) {
        SolveLeaf(tree, v, sol);
      } else {
        inner.push_back(v);
      }
    }
    if (timings != nullptr) timings->leaf_ms = MsSince(t0);

    t0 = Clock::now();
    DhwWorker worker;
    for (const NodeId v : inner) {
      SolveInnerNode(tree, limit, v, sol, worker);
    }
    merge_stats(worker);
    if (timings != nullptr) timings->solve_ms = MsSince(t0);

    t0 = Clock::now();
    std::vector<std::pair<NodeId, NodeId>> flat;
    ExtractSubtree(tree, sol, tree.root(), /*use_near=*/false, worker, flat);
    for (const auto& [a, b] : flat) p.Add(a, b);
    if (timings != nullptr) timings->extract_ms = MsSince(t0);
    return p;
  }

  // Parallel path: subtree-chunked bottom-up solve, then a split
  // extraction (sequential over the heavy spine, parallel over the light
  // subtrees). Both phases produce exactly the sequential result: the
  // per-node solutions are schedule-independent, and the extraction
  // reassembles its pieces in the sequential emission order.
  auto t0 = Clock::now();
  const DhwSchedule sched = BuildSchedule(tree, grain);
  if (threads > sched.tasks.size()) {
    threads = static_cast<unsigned>(sched.tasks.size());
  }
  std::vector<DhwWorker> workers(threads);
  ThreadPool pool(threads);
  if (timings != nullptr) {
    timings->setup_ms = MsSince(t0);
    timings->threads_used = threads;
  }

  t0 = Clock::now();
  pool.RunGraph(
      sched.tasks.size(), sched.dependency_counts.data(),
      sched.dependent_of.data(), [&](size_t task, unsigned worker) {
        const DhwTask& t = sched.tasks[task];
        DhwWorker& w = workers[worker];
        if (t.heavy_node != kInvalidNode) {
          SolveInnerNode(tree, limit, t.heavy_node, sol, w);
          return;
        }
        // Chunk task: whole light subtrees in postorder slices; the leaf
        // pass rides along inside the chunk (no sequential pre-pass).
        for (uint32_t r = t.ranges_begin; r < t.ranges_end; ++r) {
          const auto [lo, hi] = sched.ranges[r];
          for (uint32_t i = lo; i <= hi; ++i) {
            const NodeId v = sched.post[i];
            if (tree.FirstChild(v) == kInvalidNode) {
              SolveLeaf(tree, v, sol);
            } else {
              SolveInnerNode(tree, limit, v, sol, w);
            }
          }
        }
      });
  for (const DhwWorker& worker : workers) merge_stats(worker);
  if (timings != nullptr) timings->solve_ms = MsSince(t0);

  t0 = Clock::now();
  // Extraction phase 1 (sequential): walk the heavy spine in the exact
  // traversal order of the sequential extraction. Heavy nodes emit their
  // intervals inline; each maximal light subtree becomes a deferred job,
  // marked by a (kInvalidNode, job index) placeholder so phase 3 can
  // splice its output back in at the right position.
  std::vector<std::pair<NodeId, NodeId>> ops;
  std::vector<ExtractJob> jobs;
  DhwWorker& w0 = workers[0];
  w0.stack.clear();
  w0.stack.push_back({tree.root(), false});
  while (!w0.stack.empty()) {
    const auto [v, near] = w0.stack.back();
    w0.stack.pop_back();
    if (tree.FirstChild(v) == kInvalidNode) continue;
    if (!sched.IsHeavy(v)) {
      ops.emplace_back(kInvalidNode, static_cast<NodeId>(jobs.size()));
      ExtractJob job;
      job.root = v;
      job.use_near = near;
      jobs.push_back(std::move(job));
      continue;
    }
    EmitAndDescend(tree, sol, v, near, w0, ops);
  }

  // Phase 2 (parallel): extract every light subtree independently.
  pool.RunIndependent(jobs.size(), [&](size_t j, unsigned worker) {
    ExtractJob& job = jobs[j];
    ExtractSubtree(tree, sol, job.root, job.use_near, workers[worker],
                   job.out);
  });

  // Phase 3 (sequential): splice the pieces in emission order.
  for (const auto& [a, b] : ops) {
    if (a != kInvalidNode) {
      p.Add(a, b);
    } else {
      for (const auto& [ja, jb] : jobs[b].out) p.Add(ja, jb);
    }
  }
  if (timings != nullptr) timings->extract_ms = MsSince(t0);
  return p;
}

Result<Partitioning> DhwPartition(const Tree& tree, TotalWeight limit,
                                  DpStats* stats) {
  return DhwPartition(tree, limit, DhwOptions{}, stats);
}

}  // namespace natix
