#include <cstdint>
#include <utility>
#include <vector>

#include "core/algorithm.h"
#include "core/exact_algorithms.h"
#include "core/flat_dp.h"

namespace natix {

namespace {

/// Per-node outcome of the DHW flat DP: the optimal and (if it exists)
/// nearly optimal partitionings of the node's subtree, pre-extracted as
/// interval chains so the DP table can be freed immediately.
struct NodeSolution {
  /// Root partition weight of the optimal subtree partitioning, W^P(v).
  Weight opt_rootweight = 0;
  /// ΔW(v) = W^P(v) - W^Q(v); 0 if no nearly optimal partitioning exists.
  Weight delta_w = 0;
  std::vector<FlatDp::IntervalChoice> opt_chain;
  std::vector<FlatDp::IntervalChoice> near_chain;
  bool has_near = false;
};

}  // namespace

Result<Partitioning> DhwPartition(const Tree& tree, TotalWeight limit,
                                  DpStats* stats) {
  NATIX_RETURN_NOT_OK(CheckPartitionable(tree, limit));

  std::vector<NodeSolution> sol(tree.size());

  // Bottom-up phase: for every node compute the optimal and nearly optimal
  // subtree partitionings over the children's (rootweight, ΔW) pairs.
  for (const NodeId v : tree.PostorderNodes()) {
    NodeSolution& s = sol[v];
    if (tree.FirstChild(v) == kInvalidNode) {
      // A single-node subtree has exactly one partitioning; no nearly
      // optimal solution exists (ΔW = 0).
      s.opt_rootweight = tree.WeightOf(v);
      continue;
    }
    const std::vector<NodeId> children = tree.Children(v);
    std::vector<Weight> weights;
    std::vector<Weight> deltas;
    weights.reserve(children.size());
    deltas.reserve(children.size());
    for (const NodeId c : children) {
      weights.push_back(sol[c].opt_rootweight);
      deltas.push_back(sol[c].delta_w);
    }

    const Weight wv = tree.WeightOf(v);
    FlatDp dp(wv, std::move(weights), std::move(deltas), limit);
    dp.EnsureSeed(wv);
    const FlatDp::Entry* opt = dp.FinalEntry(wv);
    s.opt_rootweight = opt->rootweight;
    s.opt_chain = dp.ExtractChain(wv);

    // Lemma 4: rerunning with root weight w(v) + K - W^P(v) + 1 yields a
    // nearly optimal partitioning (or none, if that exceeds K).
    const uint64_t s_near = static_cast<uint64_t>(wv) + limit -
                            opt->rootweight + 1;
    if (s_near <= limit) {
      const uint32_t sq = static_cast<uint32_t>(s_near);
      dp.EnsureSeed(sq);
      const FlatDp::Entry* near = dp.FinalEntry(sq);
      s.near_chain = dp.ExtractChain(sq);
      s.has_near = true;
      // The table's rootweight fields include the inflated base sq; the
      // actual root partition weight of the nearly optimal partitioning in
      // T is near->rootweight - (sq - w(v)). (The paper's pseudocode
      // subtracts table fields directly, which would mix the two bases.)
      const Weight near_actual = near->rootweight - (sq - wv);
      s.delta_w = s.opt_rootweight - near_actual;
    }
    if (stats != nullptr) {
      stats->inner_nodes += 1;
      stats->rows += dp.RowCount();
      stats->cells += dp.CellCount();
      stats->full_table_cells +=
          (limit - wv + 1) * (children.size() + 1);
    }
  }

  // Top-down extraction: the root uses its optimal partitioning; a node
  // uses its nearly optimal partitioning iff the interval containing it
  // selected it (field `nearly` of the chosen entry).
  Partitioning p;
  p.Add(tree.root(), tree.root());
  std::vector<std::pair<NodeId, bool>> stack = {{tree.root(), false}};
  while (!stack.empty()) {
    const auto [v, use_near] = stack.back();
    stack.pop_back();
    if (tree.FirstChild(v) == kInvalidNode) continue;
    const NodeSolution& s = sol[v];
    const std::vector<FlatDp::IntervalChoice>& chain =
        use_near ? s.near_chain : s.opt_chain;
    const std::vector<NodeId> children = tree.Children(v);
    std::vector<bool> child_near(children.size(), false);
    for (const FlatDp::IntervalChoice& choice : chain) {
      p.Add(children[choice.begin], children[choice.end]);
      for (const uint32_t idx : choice.nearly) child_near[idx] = true;
    }
    for (size_t i = 0; i < children.size(); ++i) {
      stack.push_back({children[i], child_near[i]});
    }
  }
  return p;
}

}  // namespace natix
