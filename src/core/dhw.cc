#include <algorithm>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/algorithm.h"
#include "core/exact_algorithms.h"
#include "core/flat_dp.h"

namespace natix {

namespace {

/// Per-node outcome of the DHW flat DP: the optimal and (if it exists)
/// nearly optimal partitionings of the node's subtree, pre-extracted as
/// interval chains so the DP table can be freed immediately.
struct NodeSolution {
  /// Root partition weight of the optimal subtree partitioning, W^P(v).
  Weight opt_rootweight = 0;
  /// ΔW(v) = W^P(v) - W^Q(v); 0 if no nearly optimal partitioning exists.
  Weight delta_w = 0;
  std::vector<FlatDp::IntervalChoice> opt_chain;
  std::vector<FlatDp::IntervalChoice> near_chain;
  bool has_near = false;
};

/// Per-worker state: a pooled DP workspace, the flat-problem scratch
/// vectors, and a private stats accumulator (merged once at the end, so
/// the hot loop never touches shared counters).
struct DhwWorker {
  FlatDpWorkspace workspace;
  std::vector<Weight> weights;
  std::vector<Weight> deltas;
  DpStats stats;
};

/// Solves the flat DP at inner node `v`. Reads only the children's
/// (completed) NodeSolutions and writes only sol[v], so independent
/// subtrees can be solved concurrently; the result is deterministic
/// regardless of scheduling.
void SolveInnerNode(const Tree& tree, TotalWeight limit, NodeId v,
                    std::vector<NodeSolution>& sol, DhwWorker& worker) {
  NodeSolution& s = sol[v];
  worker.weights.clear();
  worker.deltas.clear();
  for (NodeId c = tree.FirstChild(v); c != kInvalidNode;
       c = tree.NextSibling(c)) {
    worker.weights.push_back(sol[c].opt_rootweight);
    worker.deltas.push_back(sol[c].delta_w);
  }
  const size_t child_count = worker.weights.size();

  const Weight wv = tree.WeightOf(v);
  FlatDp dp(wv, worker.weights.data(), worker.deltas.data(), child_count,
            limit, &worker.workspace);
  dp.EnsureSeed(wv);
  const FlatDp::Entry* opt = dp.FinalEntry(wv);
  s.opt_rootweight = opt->rootweight;
  s.opt_chain = dp.ExtractChain(wv);

  // Lemma 4: rerunning with root weight w(v) + K - W^P(v) + 1 yields a
  // nearly optimal partitioning (or none, if that exceeds K).
  const uint64_t s_near = static_cast<uint64_t>(wv) + limit -
                          opt->rootweight + 1;
  if (s_near <= limit) {
    const uint32_t sq = static_cast<uint32_t>(s_near);
    dp.EnsureSeed(sq);
    const FlatDp::Entry* near = dp.FinalEntry(sq);
    s.near_chain = dp.ExtractChain(sq);
    s.has_near = true;
    // The table's rootweight fields include the inflated base sq; the
    // actual root partition weight of the nearly optimal partitioning in
    // T is near->rootweight - (sq - w(v)). (The paper's pseudocode
    // subtracts table fields directly, which would mix the two bases.)
    const Weight near_actual = near->rootweight - (sq - wv);
    s.delta_w = s.opt_rootweight - near_actual;
  }
  worker.stats.inner_nodes += 1;
  worker.stats.rows += dp.RowCount();
  worker.stats.cells += dp.CellCount();
  worker.stats.full_table_cells +=
      (static_cast<uint64_t>(limit) - wv + 1) *
      (static_cast<uint64_t>(child_count) + 1);
}

unsigned ResolveThreadCount(const Tree& tree, const DhwOptions& options) {
  unsigned threads = options.num_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // Oversubscription past the hardware brings no speedup, and an absurd
  // request (e.g. a wrapped-around negative from a CLI) must not translate
  // into thousands of OS threads. Determinism is unaffected by the cap.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, std::max(8u, 2 * hw));
  // Below the cutoff the pool's wake-up/steal overhead dominates the DP
  // work; fall back to the sequential path.
  if (tree.size() < options.min_parallel_nodes) threads = 1;
  return threads;
}

}  // namespace

Result<Partitioning> DhwPartition(const Tree& tree, TotalWeight limit,
                                  const DhwOptions& options, DpStats* stats) {
  NATIX_RETURN_NOT_OK(CheckPartitionable(tree, limit));

  std::vector<NodeSolution> sol(tree.size());

  // Leaves have exactly one partitioning; no nearly optimal solution
  // exists (ΔW = 0). Solving them up front leaves only inner nodes for the
  // (possibly parallel) bottom-up phase.
  const std::vector<NodeId> postorder = tree.PostorderNodes();
  std::vector<NodeId> inner;
  for (const NodeId v : postorder) {
    if (tree.FirstChild(v) == kInvalidNode) {
      sol[v].opt_rootweight = tree.WeightOf(v);
    } else {
      inner.push_back(v);
    }
  }

  unsigned threads = ResolveThreadCount(tree, options);
  if (threads > inner.size()) {
    threads = static_cast<unsigned>(inner.size() == 0 ? 1 : inner.size());
  }

  if (threads <= 1) {
    // Sequential path: identical to the parallel one, in postorder (the
    // pre-pooling execution order), with a single reused workspace.
    DhwWorker worker;
    for (const NodeId v : inner) {
      SolveInnerNode(tree, limit, v, sol, worker);
    }
    if (stats != nullptr) {
      stats->inner_nodes += worker.stats.inner_nodes;
      stats->rows += worker.stats.rows;
      stats->cells += worker.stats.cells;
      stats->full_table_cells += worker.stats.full_table_cells;
    }
  } else {
    // Dependency-counter schedule: inner node v becomes ready once all of
    // its inner children are solved (leaves were solved above). Each inner
    // node's only dependent is its parent, which is itself inner, so the
    // graph is exactly the tree restricted to inner nodes.
    std::vector<uint32_t> task_of(tree.size(), ThreadPool::kNoDependent);
    for (size_t i = 0; i < inner.size(); ++i) {
      task_of[inner[i]] = static_cast<uint32_t>(i);
    }
    std::vector<uint32_t> dependency_counts(inner.size(), 0);
    std::vector<uint32_t> dependent_of(inner.size(),
                                       ThreadPool::kNoDependent);
    for (size_t i = 0; i < inner.size(); ++i) {
      const NodeId parent = tree.Parent(inner[i]);
      if (parent == kInvalidNode) continue;
      const uint32_t parent_task = task_of[parent];
      dependent_of[i] = parent_task;
      ++dependency_counts[parent_task];
    }

    std::vector<DhwWorker> workers(threads);
    ThreadPool pool(threads);
    pool.RunGraph(inner.size(), dependency_counts.data(),
                  dependent_of.data(),
                  [&](size_t task, unsigned worker) {
                    SolveInnerNode(tree, limit, inner[task], sol,
                                   workers[worker]);
                  });
    if (stats != nullptr) {
      for (const DhwWorker& worker : workers) {
        stats->inner_nodes += worker.stats.inner_nodes;
        stats->rows += worker.stats.rows;
        stats->cells += worker.stats.cells;
        stats->full_table_cells += worker.stats.full_table_cells;
      }
    }
  }

  // Top-down extraction: the root uses its optimal partitioning; a node
  // uses its nearly optimal partitioning iff the interval containing it
  // selected it (field `nearly` of the chosen entry). Sequential and
  // independent of the solve schedule, so the emitted interval order (and
  // hence the whole result) is byte-identical across thread counts.
  Partitioning p;
  p.Add(tree.root(), tree.root());
  std::vector<std::pair<NodeId, bool>> stack = {{tree.root(), false}};
  std::vector<NodeId> children;
  std::vector<char> child_near;
  while (!stack.empty()) {
    const auto [v, use_near] = stack.back();
    stack.pop_back();
    if (tree.FirstChild(v) == kInvalidNode) continue;
    const NodeSolution& s = sol[v];
    const std::vector<FlatDp::IntervalChoice>& chain =
        use_near ? s.near_chain : s.opt_chain;
    children.clear();
    for (NodeId c = tree.FirstChild(v); c != kInvalidNode;
         c = tree.NextSibling(c)) {
      children.push_back(c);
    }
    child_near.assign(children.size(), 0);
    for (const FlatDp::IntervalChoice& choice : chain) {
      p.Add(children[choice.begin], children[choice.end]);
      for (const uint32_t idx : choice.nearly) child_near[idx] = 1;
    }
    for (size_t i = 0; i < children.size(); ++i) {
      stack.push_back({children[i], child_near[i] != 0});
    }
  }
  return p;
}

Result<Partitioning> DhwPartition(const Tree& tree, TotalWeight limit,
                                  DpStats* stats) {
  return DhwPartition(tree, limit, DhwOptions{}, stats);
}

}  // namespace natix
