#ifndef NATIX_CORE_FLAT_DP_H_
#define NATIX_CORE_FLAT_DP_H_

#include <cstdint>
#include <map>
#include <vector>

#include "tree/tree.h"

namespace natix {

/// The dynamic programming engine shared by FDW, GHDW and DHW
/// (Figs. 4, 5 and 7 of the paper).
///
/// It solves the *flat* subproblem at one node v: given v's weight, the
/// effective weights of its children (their partition root weights after
/// their own subtrees were partitioned) and the weight limit K, compute for
/// each root-weight parameter `s` an optimal (minimal cardinality, then
/// minimal root weight) way of distributing the children between the root
/// partition and new sibling intervals.
///
/// Table layout: entry (s, j) describes an optimal solution for the subtree
/// restricted to the first j children with root-weight parameter s
/// (Lemma 2). Entries form chains through `next` pointers; each chain link
/// contributes at most one interval.
///
/// DHW extension (Fig. 7): each child additionally carries ΔW, the root
/// weight saved by switching that child's subtree from its optimal to its
/// nearly optimal partitioning at the cost of exactly one extra partition
/// (Lemma 4). When an interval is too heavy under optimal child
/// partitionings, children are switched to nearly optimal in descending-ΔW
/// order until it fits (Lemma 5); the switched children are recorded in the
/// entry's `nearly` set and its cardinality accounts one extra partition
/// per switch. Passing an empty `delta_w` yields the plain FDW/GHDW
/// behaviour.
///
/// Memoization (Secs. 3.2.3, 3.3.6): starting from a queried root weight
/// (a *seed*), the only cells the recurrence can reach are
///   (s, j) with s = seed + (sum of effective weights of a subset of the
///   children right of column j), s <= K.
/// EnsureSeed() propagates that reachability column by column (tracking,
/// per s value, the highest column where it is needed) and fills only
/// those cells. The paper reports that fewer than 4 of 256 s values occur
/// on average for real documents; RowCount()/CellCount() expose the actual
/// usage for the memoization ablation benchmark.
/// Fenwick-tree window over the ΔW values of the children currently in
/// candidate 2's sliding interval. Supports O(log K) insertion and the
/// O(log K) query "minimal number of largest ΔWs whose sum reaches X",
/// which is exactly the greedy switch count of Lemma 5. The concrete set
/// of switched children is only materialized for the intervals of the
/// final solution (ComputeNearlySet), keeping the DP inner loop cheap.
class DeltaWindow {
 public:
  explicit DeltaWindow(uint32_t limit);

  /// Adds one child's ΔW (must be in [1, limit]).
  void Insert(Weight delta);
  /// Removes everything inserted since the last Clear().
  void Clear();
  /// Minimal count of largest inserted values with sum >= need. The total
  /// inserted sum must be >= need.
  uint32_t MinCountForSum(uint64_t need) const;

 private:
  void Update(size_t pos, int32_t dc, int64_t ds);

  size_t n_;
  uint32_t log_ = 0;
  std::vector<uint32_t> cnt_;
  std::vector<uint64_t> sum_;
  std::vector<Weight> inserted_;
};

class FlatDp {
 public:
  /// One DP table cell.
  struct Entry {
    /// Number of intervals committed so far along the chain, plus one per
    /// nearly-optimal switch (constant baseline per node; only differences
    /// matter).
    uint32_t card = 0;
    /// Weight of the root partition of this (partial) solution.
    uint32_t rootweight = 0;
    /// Child index range [begin, end] of the interval added by this entry;
    /// begin == -1 if this entry added no interval.
    int32_t begin = -1;
    int32_t end = -1;
    /// Chain predecessor (row s `next_s`, column `next_j`); next_j == -1
    /// terminates the chain.
    uint32_t next_s = 0;
    int32_t next_j = -1;
  };

  /// One interval of an extracted solution, in child-index space.
  struct IntervalChoice {
    uint32_t begin = 0;
    uint32_t end = 0;
    std::vector<uint32_t> nearly;
  };

  /// `node_weight`: weight of the (collapsed) root of the flat subproblem.
  /// `child_weights[i]`: effective weight of child i (its own weight for
  /// FDW; its partition root weight for GHDW/DHW). Every child weight must
  /// be in [1, limit].
  /// `delta_w`: per-child ΔW (empty, or same size as `child_weights`).
  /// `limit`: the weight limit K.
  FlatDp(Weight node_weight, std::vector<Weight> child_weights,
         std::vector<Weight> delta_w, TotalWeight limit);

  /// Ensures the cells reachable from the query (s, child_count) exist.
  /// No-op if s > limit (the query is then infeasible).
  void EnsureSeed(uint32_t s);

  /// Entry at (s, child_count). EnsureSeed(s) must have been called;
  /// returns nullptr if s > limit.
  const Entry* FinalEntry(uint32_t s) const;

  /// Walks the chain from (s, child_count) and returns the chosen
  /// intervals (right-to-left order). EnsureSeed(s) must have been called.
  std::vector<IntervalChoice> ExtractChain(uint32_t s) const;

  size_t child_count() const { return child_weights_.size(); }

  /// Number of materialized rows (distinct s values) and cells; exposed for
  /// the memoization ablation benchmark.
  size_t RowCount() const { return rows_.size(); }
  size_t CellCount() const;

 private:
  /// Appends cells [row.size(), upto] to the row for s.
  void FillCells(uint32_t s, size_t upto);
  /// Greedy nearly-optimal switch set for the interval [begin, end]
  /// (Lemma 5), recomputed at extraction time.
  std::vector<uint32_t> ComputeNearlySet(uint32_t begin, uint32_t end) const;

  Weight node_weight_;
  std::vector<Weight> child_weights_;
  std::vector<Weight> delta_w_;
  uint32_t limit_;
  /// first_col_[s]: highest column where value s is needed; -1 = not needed.
  std::vector<int32_t> first_col_;
  /// Rows keyed by s, descending (fill dependency order). Row s holds
  /// columns [0, first_col_[s]].
  std::map<uint32_t, std::vector<Entry>, std::greater<>> rows_;
  /// Scratch ΔW window for candidate 2 (cleared per column).
  DeltaWindow window_;
};

}  // namespace natix

#endif  // NATIX_CORE_FLAT_DP_H_
