#ifndef NATIX_CORE_FLAT_DP_H_
#define NATIX_CORE_FLAT_DP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tree/tree.h"

namespace natix {

/// Fenwick-tree window over the ΔW values of the children currently in
/// candidate 2's sliding interval. Supports O(log K) insertion and the
/// O(log K) query "minimal number of largest ΔWs whose sum reaches X",
/// which is exactly the greedy switch count of Lemma 5. The concrete set
/// of switched children is only materialized for the intervals of the
/// final solution (ComputeNearlySet), keeping the DP inner loop cheap.
///
/// The window is reusable: Clear() undoes exactly the insertions since the
/// previous Clear() (O(inserted log K)), and Reset() re-targets the window
/// at a new limit without zeroing the O(K) trees — both are what lets a
/// pooled workspace run node after node with zero steady-state allocation.
class DeltaWindow {
 public:
  DeltaWindow() = default;
  explicit DeltaWindow(uint32_t limit) { Reset(limit); }

  /// Re-targets the window at `limit`. Clears any outstanding insertions
  /// first (O(inserted)); the backing trees only grow, so the call
  /// allocates at most once per high-water limit.
  void Reset(uint32_t limit);

  /// Adds one child's ΔW (must be in [1, limit]).
  void Insert(Weight delta);
  /// Removes everything inserted since the last Clear().
  void Clear();
  /// Minimal count of largest inserted values with sum >= need. The total
  /// inserted sum must be >= need.
  uint32_t MinCountForSum(uint64_t need) const;

 private:
  void Update(size_t pos, int32_t dc, int64_t ds);

  size_t n_ = 0;
  uint32_t log_ = 0;
  std::vector<uint32_t> cnt_;
  std::vector<uint64_t> sum_;
  std::vector<Weight> inserted_;
};

class FlatDp;

/// One DP table cell. (Defined at namespace scope so FlatDpWorkspace can
/// pool rows of them; use FlatDp::Entry in client code.)
struct FlatDpEntry {
  /// Number of intervals committed so far along the chain, plus one per
  /// nearly-optimal switch (constant baseline per node; only differences
  /// matter).
  uint32_t card = 0;
  /// Weight of the root partition of this (partial) solution.
  uint32_t rootweight = 0;
  /// Child index range [begin, end] of the interval added by this entry;
  /// begin == -1 if this entry added no interval.
  int32_t begin = -1;
  int32_t end = -1;
  /// Chain predecessor (row s `next_s`, column `next_j`); next_j == -1
  /// terminates the chain.
  uint32_t next_s = 0;
  int32_t next_j = -1;
};

/// Reusable backing store for FlatDp instances.
///
/// A FlatDp run needs a handful of O(K)-sized structures (the needed-cell
/// frontier, the row index, the ΔW window) plus one Entry vector per
/// materialized row. Allocating those per node is what dominated DHW's
/// allocator traffic, so a workspace keeps all of them alive across nodes:
/// row vectors are recycled from a pool (their capacity survives), and the
/// per-s metadata is invalidated in O(1) by an epoch stamp instead of an
/// O(K) wipe. In steady state (same limit, row/scratch capacities warmed
/// up) a FlatDp run performs zero heap allocations.
///
/// A workspace serves one FlatDp at a time: constructing a new FlatDp on it
/// invalidates the tables of the previous one. It is not thread-safe; use
/// one workspace per worker thread.
class FlatDpWorkspace {
 public:
  FlatDpWorkspace() = default;
  FlatDpWorkspace(const FlatDpWorkspace&) = delete;
  FlatDpWorkspace& operator=(const FlatDpWorkspace&) = delete;

 private:
  friend class FlatDp;

  /// Per root-weight value s: the needed-cell frontier and the row handle,
  /// each valid only when its stamp matches the workspace epoch.
  struct RowState {
    uint64_t first_col_epoch = 0;
    uint64_t row_epoch = 0;
    uint32_t row_slot = 0;
    int32_t first_col = -1;
  };

  /// Starts a new FlatDp run: bumps the epoch (invalidating all per-s
  /// state) and re-targets the ΔW window. O(1) amortized.
  void BeginNode(uint32_t limit);

  /// Recycles (or creates) a row vector and registers it for value s.
  uint32_t AcquireRowSlot(uint32_t s);

  uint64_t epoch_ = 0;
  std::vector<RowState> per_s_;
  /// Recycled row vectors; [0, rows_used_) are live for the current epoch.
  std::vector<std::vector<FlatDpEntry>> row_pool_;
  size_t rows_used_ = 0;
  /// s values with a live row this epoch (for cell accounting).
  std::vector<uint32_t> used_s_;
  DeltaWindow window_;
  /// EnsureSeed scratch: reachability bitsets and the raised-value list.
  std::vector<uint64_t> active_;
  std::vector<uint64_t> shifted_;
  std::vector<uint32_t> raised_;
};

/// The dynamic programming engine shared by FDW, GHDW and DHW
/// (Figs. 4, 5 and 7 of the paper).
///
/// It solves the *flat* subproblem at one node v: given v's weight, the
/// effective weights of its children (their partition root weights after
/// their own subtrees were partitioned) and the weight limit K, compute for
/// each root-weight parameter `s` an optimal (minimal cardinality, then
/// minimal root weight) way of distributing the children between the root
/// partition and new sibling intervals.
///
/// Table layout: entry (s, j) describes an optimal solution for the subtree
/// restricted to the first j children with root-weight parameter s
/// (Lemma 2). Entries form chains through `next` pointers; each chain link
/// contributes at most one interval.
///
/// DHW extension (Fig. 7): each child additionally carries ΔW, the root
/// weight saved by switching that child's subtree from its optimal to its
/// nearly optimal partitioning at the cost of exactly one extra partition
/// (Lemma 4). When an interval is too heavy under optimal child
/// partitionings, children are switched to nearly optimal in descending-ΔW
/// order until it fits (Lemma 5); the switched children are recorded in the
/// entry's `nearly` set and its cardinality accounts one extra partition
/// per switch. Passing an empty `delta_w` yields the plain FDW/GHDW
/// behaviour.
///
/// Memoization (Secs. 3.2.3, 3.3.6): starting from a queried root weight
/// (a *seed*), the only cells the recurrence can reach are
///   (s, j) with s = seed + (sum of effective weights of a subset of the
///   children right of column j), s <= K.
/// EnsureSeed() propagates that reachability column by column (tracking,
/// per s value, the highest column where it is needed) and fills only
/// those cells. The paper reports that fewer than 4 of 256 s values occur
/// on average for real documents; RowCount()/CellCount() expose the actual
/// usage for the memoization ablation benchmark.
class FlatDp {
 public:
  using Entry = FlatDpEntry;

  /// One interval of an extracted solution, in child-index space.
  struct IntervalChoice {
    uint32_t begin = 0;
    uint32_t end = 0;
    std::vector<uint32_t> nearly;
  };

  /// `node_weight`: weight of the (collapsed) root of the flat subproblem.
  /// `child_weights[i]`: effective weight of child i (its own weight for
  /// FDW; its partition root weight for GHDW/DHW). Every child weight must
  /// be in [1, limit].
  /// `delta_w`: per-child ΔW (empty, or same size as `child_weights`).
  /// `limit`: the weight limit K.
  /// `workspace`: optional pooled backing store; when null the FlatDp owns
  /// a private workspace (the pre-pooling behaviour).
  FlatDp(Weight node_weight, std::vector<Weight> child_weights,
         std::vector<Weight> delta_w, TotalWeight limit,
         FlatDpWorkspace* workspace = nullptr);

  /// Borrowing variant for hot loops: operates directly on caller-owned
  /// arrays of `child_count` weights/ΔWs, which must outlive the FlatDp.
  /// `delta_w` may be null (all-zero ΔW).
  FlatDp(Weight node_weight, const Weight* child_weights,
         const Weight* delta_w, size_t child_count, TotalWeight limit,
         FlatDpWorkspace* workspace);

  /// Ensures the cells reachable from the query (s, child_count) exist.
  /// No-op if s > limit (the query is then infeasible).
  void EnsureSeed(uint32_t s);

  /// Entry at (s, child_count). EnsureSeed(s) must have been called;
  /// returns nullptr if s > limit.
  const Entry* FinalEntry(uint32_t s) const;

  /// Walks the chain from (s, child_count) and returns the chosen
  /// intervals (right-to-left order). EnsureSeed(s) must have been called.
  std::vector<IntervalChoice> ExtractChain(uint32_t s) const;

  size_t child_count() const { return child_count_; }

  /// Number of materialized rows (distinct s values) and cells; exposed for
  /// the memoization ablation benchmark.
  size_t RowCount() const { return ws_->rows_used_; }
  size_t CellCount() const;

 private:
  void Init(TotalWeight limit, FlatDpWorkspace* workspace);

  /// Row accessors, all epoch-checked against the workspace.
  int32_t FirstColOf(uint32_t s) const;
  void SetFirstCol(uint32_t s, int32_t col);
  std::vector<Entry>& RowFor(uint32_t s);
  const std::vector<Entry>* FindRow(uint32_t s) const;

  /// Appends cells [row.size(), upto] to the row for s.
  void FillCells(uint32_t s, size_t upto);
  /// Greedy nearly-optimal switch set for the interval [begin, end]
  /// (Lemma 5), recomputed at extraction time.
  std::vector<uint32_t> ComputeNearlySet(uint32_t begin, uint32_t end) const;

  Weight node_weight_;
  /// Backing storage for the owning constructor; the borrowing constructor
  /// leaves these empty.
  std::vector<Weight> owned_child_weights_;
  std::vector<Weight> owned_delta_w_;
  const Weight* child_weights_ = nullptr;
  const Weight* delta_w_ = nullptr;
  size_t child_count_ = 0;
  uint32_t limit_ = 0;
  FlatDpWorkspace* ws_ = nullptr;
  std::unique_ptr<FlatDpWorkspace> owned_ws_;
};

}  // namespace natix

#endif  // NATIX_CORE_FLAT_DP_H_
