#ifndef NATIX_CORE_ALGORITHM_H_
#define NATIX_CORE_ALGORITHM_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "tree/partitioning.h"
#include "tree/tree.h"

namespace natix {

/// Cross-algorithm execution options. Algorithms ignore the fields they
/// have no use for (only DHW is parallel today).
struct PartitionOptions {
  /// Worker threads for algorithms with a parallel phase. 0 = one per
  /// hardware thread, 1 = sequential. Results are identical either way.
  unsigned num_threads = 0;
  /// Target node count per parallel task for algorithms that chunk their
  /// work by subtree (DHW). 0 = the algorithm's default (see
  /// DhwOptions::task_grain_nodes). Purely a scheduling knob; results are
  /// identical for every value.
  size_t task_grain_nodes = 0;
};

/// Common interface of all tree sibling partitioning algorithms in this
/// library (the paper's Sec. 3 exact algorithms and Sec. 4 heuristics).
///
/// Partition() returns a *feasible* tree sibling partitioning for the given
/// weight limit: disjoint sibling intervals including (t, t), every
/// partition weight <= limit. Implementations differ in how close to the
/// minimal cardinality they get and in their runtime/memory cost.
class PartitioningAlgorithm {
 public:
  virtual ~PartitioningAlgorithm() = default;

  /// Stable identifier, e.g. "DHW", "EKM". Used by the registry and the
  /// benchmark tables.
  virtual std::string_view name() const = 0;

  /// One-line description for --help style output.
  virtual std::string_view description() const = 0;

  /// Computes a feasible sibling partitioning of `tree` under `limit`.
  /// Fails with InvalidArgument if no feasible partitioning exists
  /// (some node weight exceeds `limit`) or the tree is empty.
  virtual Result<Partitioning> Partition(const Tree& tree,
                                         TotalWeight limit) const = 0;

  /// Options-aware variant; the default implementation ignores the options
  /// (correct for every purely sequential algorithm).
  virtual Result<Partitioning> Partition(const Tree& tree, TotalWeight limit,
                                         const PartitionOptions& options)
      const {
    (void)options;
    return Partition(tree, limit);
  }

  /// True for algorithms guaranteed to produce a minimal (and lean)
  /// partitioning (only DHW, and FDW on flat trees).
  virtual bool IsOptimal() const { return false; }

  /// True if the algorithm can emit partitions before having seen the whole
  /// document (Sec. 4.1's "main-memory friendly" property).
  virtual bool IsMainMemoryFriendly() const { return false; }
};

/// Validates the common preconditions shared by every algorithm: non-empty
/// tree, positive limit, and max node weight <= limit (otherwise no feasible
/// sibling partitioning exists, since a node can never shed its own weight).
Status CheckPartitionable(const Tree& tree, TotalWeight limit);

/// Global algorithm registry.
///
/// Names (paper Sec. 6): "FDW", "GHDW", "DHW", "DFS", "BFS", "RS", "KM",
/// "EKM", plus "LUKES" (the Sec. 5 related-work baseline). FDW is
/// registered but only accepts flat trees; LUKES is memory-bounded to
/// moderate n * K products.
const PartitioningAlgorithm* FindAlgorithm(std::string_view name);

/// All registered algorithm names, in the paper's Table 1 column order
/// (DHW, GHDW, EKM, RS, DFS, KM, BFS) followed by FDW and LUKES.
std::vector<std::string_view> AlgorithmNames();

/// Convenience: looks up `algorithm` in the registry and runs it.
Result<Partitioning> PartitionWith(std::string_view algorithm,
                                   const Tree& tree, TotalWeight limit);
Result<Partitioning> PartitionWith(std::string_view algorithm,
                                   const Tree& tree, TotalWeight limit,
                                   const PartitionOptions& options);

}  // namespace natix

#endif  // NATIX_CORE_ALGORITHM_H_
