#include "core/algorithm.h"
#include "core/exact_algorithms.h"
#include "core/reduction.h"

namespace natix {

Result<Partitioning> GhdwPartition(const Tree& tree, TotalWeight limit,
                                   DpStats* stats) {
  NATIX_RETURN_NOT_OK(CheckPartitionable(tree, limit));

  // rootweight[v]: weight of v's partition after Tv was partitioned with
  // the locally optimal solution; v is treated as a single node of this
  // weight on the next higher level (Lemma 1).
  std::vector<Weight> rootweight(tree.size(), 0);
  Partitioning p;
  std::vector<ChildPart> children;
  for (const NodeId v : tree.PostorderNodes()) {
    if (tree.FirstChild(v) == kInvalidNode) {
      rootweight[v] = tree.WeightOf(v);
      continue;
    }
    children.clear();
    for (NodeId c = tree.FirstChild(v); c != kInvalidNode;
         c = tree.NextSibling(c)) {
      children.push_back({c, rootweight[c], 1});
    }
    rootweight[v] = static_cast<Weight>(GhdwReduce(
        tree.WeightOf(v), children, limit, &p, nullptr, stats));
  }
  p.Add(tree.root(), tree.root());
  return p;
}

}  // namespace natix
