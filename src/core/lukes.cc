#include "core/lukes.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/algorithm.h"

namespace natix {

namespace {

constexpr int64_t kUnreachable = -1;

/// Guard against the algorithm's O(nK) table memory (the practical
/// problem Bordawekar/Shmueli report for Lukes' algorithm on XML; Sec. 5).
constexpr uint64_t kMaxTableEntries = 1ull << 26;

/// Per-node DP table: value[w] = maximal kept-edge value of a partitioning
/// of the subtree where the part containing the node weighs exactly w;
/// kUnreachable if no such partitioning exists.
using Table = std::vector<int64_t>;

struct LukesState {
  const Tree* tree = nullptr;
  uint32_t limit = 0;
  std::vector<Table> tables;

  /// Merges child table `tc` into `tv` (one step of Lukes' knapsack).
  /// With unit edge values, keeping the parent-child edge adds 1.
  Table MergeChild(const Table& tv, const Table& tc) const {
    Table out(limit + 1, kUnreachable);
    // Cut: the child's part is closed with its best value.
    const int64_t best_child = *std::max_element(tc.begin(), tc.end());
    for (uint32_t w = 0; w <= limit; ++w) {
      if (tv[w] == kUnreachable) continue;
      out[w] = std::max(out[w], tv[w] + best_child);
    }
    // Keep: the child's part joins the node's part.
    for (uint32_t w = 0; w <= limit; ++w) {
      if (tv[w] == kUnreachable) continue;
      for (uint32_t wc = 1; wc + w <= limit; ++wc) {
        if (tc[wc] == kUnreachable) continue;
        out[w + wc] = std::max(out[w + wc], tv[w] + tc[wc] + 1);
      }
    }
    return out;
  }

  /// Computes tables for all nodes, bottom-up.
  void ComputeTables() {
    const Tree& t = *tree;
    tables.resize(t.size());
    for (const NodeId v : t.PostorderNodes()) {
      Table tv(limit + 1, kUnreachable);
      tv[t.WeightOf(v)] = 0;
      for (NodeId c = t.FirstChild(v); c != kInvalidNode;
           c = t.NextSibling(c)) {
        tv = MergeChild(tv, tables[c]);
      }
      tables[v] = std::move(tv);
    }
  }

  static uint32_t ArgMax(const Table& table) {
    uint32_t best = 0;
    for (uint32_t w = 1; w < table.size(); ++w) {
      if (table[w] > table[best]) best = w;
    }
    return best;
  }

  /// Re-runs the child merge for `v` keeping backpointers, then walks them
  /// to decide, per child, cut vs keep (and the kept weight).
  /// back[j][w]: after merging the first j children reaching part weight
  /// w: -1 = child j was cut, otherwise the weight the child contributed.
  void ExtractNode(NodeId v, uint32_t target_w, Partitioning* out) {
    const Tree& t = *tree;
    struct Frame {
      NodeId node;
      uint32_t target;
    };
    std::vector<Frame> stack = {{v, target_w}};
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      const std::vector<NodeId> children = t.Children(f.node);
      if (children.empty()) continue;

      // Forward pass with backpointers.
      std::vector<Table> partial(children.size() + 1);
      partial[0].assign(limit + 1, kUnreachable);
      partial[0][t.WeightOf(f.node)] = 0;
      std::vector<std::vector<int32_t>> back(
          children.size(), std::vector<int32_t>(limit + 1, -2));
      for (size_t j = 0; j < children.size(); ++j) {
        const Table& tc = tables[children[j]];
        const Table& prev = partial[j];
        Table cur(limit + 1, kUnreachable);
        const int64_t best_child =
            *std::max_element(tc.begin(), tc.end());
        for (uint32_t w = 0; w <= limit; ++w) {
          if (prev[w] == kUnreachable) continue;
          if (prev[w] + best_child > cur[w]) {
            cur[w] = prev[w] + best_child;
            back[j][w] = -1;  // cut
          }
        }
        for (uint32_t w = 0; w <= limit; ++w) {
          if (prev[w] == kUnreachable) continue;
          for (uint32_t wc = 1; wc + w <= limit; ++wc) {
            if (tc[wc] == kUnreachable) continue;
            if (prev[w] + tc[wc] + 1 > cur[w + wc]) {
              cur[w + wc] = prev[w] + tc[wc] + 1;
              back[j][w + wc] = static_cast<int32_t>(wc);
            }
          }
        }
        partial[j + 1] = std::move(cur);
      }

      // Backward walk from (children.size(), f.target).
      uint32_t w = f.target;
      for (size_t j = children.size(); j-- > 0;) {
        const int32_t choice = back[j][w];
        const NodeId c = children[j];
        if (choice == -1) {
          // Cut: c roots its own partition with its best table weight.
          out->Add(c, c);
          stack.push_back({c, ArgMax(tables[c])});
        } else {
          // Kept: c contributes `choice` weight to this part.
          stack.push_back({c, static_cast<uint32_t>(choice)});
          w -= static_cast<uint32_t>(choice);
        }
      }
    }
  }
};

Result<LukesState> Prepare(const Tree& tree, TotalWeight limit) {
  NATIX_RETURN_NOT_OK(CheckPartitionable(tree, limit));
  const uint64_t entries = static_cast<uint64_t>(tree.size()) * (limit + 1);
  if (entries > kMaxTableEntries) {
    return Status::ResourceExhausted(
        "Lukes' algorithm needs " + std::to_string(entries) +
        " table entries (n * K); use a smaller document or limit, or one "
        "of the linear-memory algorithms");
  }
  LukesState state;
  state.tree = &tree;
  state.limit = static_cast<uint32_t>(limit);
  state.ComputeTables();
  return state;
}

}  // namespace

Result<Partitioning> LukesPartition(const Tree& tree, TotalWeight limit) {
  NATIX_ASSIGN_OR_RETURN(LukesState state, Prepare(tree, limit));
  Partitioning p;
  p.Add(tree.root(), tree.root());
  const uint32_t root_w = LukesState::ArgMax(state.tables[tree.root()]);
  state.ExtractNode(tree.root(), root_w, &p);
  return p;
}

Result<uint64_t> LukesOptimalValue(const Tree& tree, TotalWeight limit) {
  NATIX_ASSIGN_OR_RETURN(LukesState state, Prepare(tree, limit));
  const Table& root = state.tables[tree.root()];
  return static_cast<uint64_t>(*std::max_element(root.begin(), root.end()));
}

}  // namespace natix
