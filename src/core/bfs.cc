#include <deque>

#include "core/algorithm.h"
#include "core/heuristics.h"

namespace natix {

Result<Partitioning> BfsPartition(const Tree& tree, TotalWeight limit) {
  NATIX_RETURN_NOT_OK(CheckPartitionable(tree, limit));

  constexpr uint32_t kNone = 0xFFFFFFFFu;
  std::vector<uint32_t> partition_of(tree.size(), kNone);
  std::vector<TotalWeight> partition_weight;
  // One root interval per partition; extended when a node joins its
  // previous sibling's partition as an additional partition root.
  std::vector<SiblingInterval> partition_interval;

  auto new_partition = [&](NodeId v) {
    partition_of[v] = static_cast<uint32_t>(partition_weight.size());
    partition_weight.push_back(tree.WeightOf(v));
    partition_interval.push_back({v, v});
  };

  std::deque<NodeId> queue = {tree.root()};
  new_partition(tree.root());
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (NodeId c = tree.FirstChild(v); c != kInvalidNode;
         c = tree.NextSibling(c)) {
      queue.push_back(c);
      // Try the parent's partition first, then the previous sibling's.
      const uint32_t pp = partition_of[v];
      if (partition_weight[pp] + tree.WeightOf(c) <= limit) {
        partition_of[c] = pp;
        partition_weight[pp] += tree.WeightOf(c);
        continue;  // joins below its parent; not an interval root
      }
      const NodeId prev = tree.PrevSibling(c);
      if (prev != kInvalidNode) {
        const uint32_t sp = partition_of[prev];
        if (sp != pp && partition_weight[sp] + tree.WeightOf(c) <= limit) {
          partition_of[c] = sp;
          partition_weight[sp] += tree.WeightOf(c);
          // prev is necessarily a root of sp (its parent is in a full,
          // different partition), so c extends sp's root interval.
          partition_interval[sp].last = c;
          continue;
        }
      }
      new_partition(c);
    }
  }

  Partitioning p;
  p.Reserve(partition_interval.size());
  for (const SiblingInterval& iv : partition_interval) p.Add(iv);
  return p;
}

}  // namespace natix
