#include "core/algorithm.h"
#include "core/exact_algorithms.h"
#include "core/flat_dp.h"

namespace natix {

Result<Partitioning> FdwPartition(const Tree& tree, TotalWeight limit,
                                  DpStats* stats) {
  NATIX_RETURN_NOT_OK(CheckPartitionable(tree, limit));
  const NodeId t = tree.root();
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (v != t && tree.Parent(v) != t) {
      return Status::InvalidArgument(
          "FDW only handles flat trees; node " + std::to_string(v) +
          " is not a child of the root (use GHDW or DHW for deep trees)");
    }
  }

  const std::vector<NodeId> children = tree.Children(t);
  std::vector<Weight> weights;
  weights.reserve(children.size());
  for (const NodeId c : children) weights.push_back(tree.WeightOf(c));

  FlatDp dp(tree.WeightOf(t), std::move(weights), {}, limit);
  const uint32_t s0 = tree.WeightOf(t);
  dp.EnsureSeed(s0);

  Partitioning p;
  p.Add(t, t);
  for (const FlatDp::IntervalChoice& choice : dp.ExtractChain(s0)) {
    p.Add(children[choice.begin], children[choice.end]);
  }
  if (stats != nullptr) {
    stats->inner_nodes += 1;
    stats->rows += dp.RowCount();
    stats->cells += dp.CellCount();
    stats->full_table_cells +=
        (limit - tree.WeightOf(t) + 1) * (children.size() + 1);
  }
  return p;
}

}  // namespace natix
