#include "core/reduction.h"

#include <algorithm>

#include "core/flat_dp.h"

namespace natix {

TotalWeight RsReduce(Weight own_weight,
                     const std::vector<ChildPart>& children,
                     TotalWeight limit, Partitioning* out,
                     size_t* flushed_resident) {
  TotalWeight rw = own_weight;
  for (const ChildPart& c : children) rw += c.residual;
  size_t right = children.size();  // one past the rightmost uncut child
  while (rw > limit) {
    // Start a new interval at the rightmost uncut child and extend it
    // leftwards while it helps and fits.
    size_t left = right - 1;
    TotalWeight interval_weight = children[left].residual;
    rw -= children[left].residual;
    if (flushed_resident != nullptr) {
      *flushed_resident += children[left].resident;
    }
    while (rw > limit && left > 0 &&
           interval_weight + children[left - 1].residual <= limit) {
      --left;
      interval_weight += children[left].residual;
      rw -= children[left].residual;
      if (flushed_resident != nullptr) {
        *flushed_resident += children[left].resident;
      }
    }
    out->Add(children[left].node, children[right - 1].node);
    right = left;
  }
  return rw;
}

TotalWeight KmReduce(Weight own_weight,
                     const std::vector<ChildPart>& children,
                     TotalWeight limit, Partitioning* out,
                     size_t* flushed_resident) {
  TotalWeight rw = own_weight;
  for (const ChildPart& c : children) rw += c.residual;
  if (rw <= limit) return rw;
  std::vector<const ChildPart*> heavy;
  heavy.reserve(children.size());
  for (const ChildPart& c : children) heavy.push_back(&c);
  std::sort(heavy.begin(), heavy.end(),
            [](const ChildPart* a, const ChildPart* b) {
              return a->residual > b->residual;
            });
  for (const ChildPart* c : heavy) {
    if (rw <= limit) break;
    out->Add(c->node, c->node);
    rw -= c->residual;
    if (flushed_resident != nullptr) *flushed_resident += c->resident;
  }
  return rw;
}

TotalWeight GhdwReduce(Weight own_weight,
                       const std::vector<ChildPart>& children,
                       TotalWeight limit, Partitioning* out,
                       size_t* flushed_resident, DpStats* stats) {
  if (children.empty()) return own_weight;
  std::vector<Weight> weights;
  weights.reserve(children.size());
  for (const ChildPart& c : children) {
    weights.push_back(static_cast<Weight>(c.residual));
  }
  FlatDp dp(own_weight, std::move(weights), {}, limit);
  dp.EnsureSeed(own_weight);
  for (const FlatDp::IntervalChoice& choice : dp.ExtractChain(own_weight)) {
    out->Add(children[choice.begin].node, children[choice.end].node);
    if (flushed_resident != nullptr) {
      for (uint32_t i = choice.begin; i <= choice.end; ++i) {
        *flushed_resident += children[i].resident;
      }
    }
  }
  if (stats != nullptr) {
    stats->inner_nodes += 1;
    stats->rows += dp.RowCount();
    stats->cells += dp.CellCount();
    stats->full_table_cells += (limit - own_weight + 1) * (children.size() + 1);
  }
  return dp.FinalEntry(own_weight)->rootweight;
}

}  // namespace natix
