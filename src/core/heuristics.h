#ifndef NATIX_CORE_HEURISTICS_H_
#define NATIX_CORE_HEURISTICS_H_

#include "common/status.h"
#include "tree/partitioning.h"
#include "tree/tree.h"

namespace natix {

/// DFS heuristic (Sec. 4.2.1, adapted from Tsangaris/Naughton): preorder
/// traversal assigning each node greedily to the current partition; a new
/// partition starts when the node does not fit or is not connected to the
/// current partition by a parent-child or sibling edge. Main-memory
/// friendly; top-down, so not very robust.
Result<Partitioning> DfsPartition(const Tree& tree, TotalWeight limit);

/// BFS heuristic (Sec. 4.2.2): level-order traversal; each node first tries
/// its parent's partition, then its previous sibling's partition, else a
/// new one. Not main-memory friendly.
Result<Partitioning> BfsPartition(const Tree& tree, TotalWeight limit);

/// Rightmost Siblings (Sec. 4.3.2): the original Natix bulkload heuristic.
/// Bottom-up; when a subtree exceeds the limit, children are packed into
/// new partitions from right to left until the residual subtree fits.
Result<Partitioning> RsPartition(const Tree& tree, TotalWeight limit);

/// Kundu and Misra (Sec. 4.3.3): bottom-up; while a subtree is too heavy,
/// the heaviest child subtree is cut into a partition of its own. Minimal
/// for parent-child-only partitionings, but produces only single-node
/// intervals (no sibling sharing).
Result<Partitioning> KmPartition(const Tree& tree, TotalWeight limit);

/// Enhanced Kundu and Misra (Sec. 4.3.4, novel in the paper): KM applied to
/// the binary (first-child / next-sibling) representation of the tree; cuts
/// of "next sibling" edges translate into sibling intervals. The paper's
/// recommended default for Natix: near-optimal and extremely fast.
Result<Partitioning> EkmPartition(const Tree& tree, TotalWeight limit);

}  // namespace natix

#endif  // NATIX_CORE_HEURISTICS_H_
