#ifndef NATIX_CORE_REDUCTION_H_
#define NATIX_CORE_REDUCTION_H_

#include <vector>

#include "core/exact_algorithms.h"
#include "tree/partitioning.h"
#include "tree/tree.h"

namespace natix {

/// The partition-local state of one already-processed child subtree: the
/// child node, the weight of its partition-local residual subtree, and how
/// many nodes of that residual are still unassigned ("resident" in the
/// bulkloader's memory model; batch algorithms ignore it).
struct ChildPart {
  NodeId node = kInvalidNode;
  TotalWeight residual = 0;
  size_t resident = 1;
};

/// Per-node reduction rules shared by the batch algorithms (core/rs.cc,
/// core/km.cc, core/ghdw.cc) and the streaming bulkloader
/// (bulkload/streaming.*). Each takes the weight of the current node, the
/// states of its children (left to right), and the weight limit; emits
/// sibling intervals into `out`; and returns the node's new residual
/// weight. All children are consumed: those not placed into intervals are
/// absorbed into the node's partition.
///
/// `flushed_resident`, if non-null, accumulates the resident counts of the
/// children whose subtrees were assigned to emitted intervals.

/// Rightmost-siblings rule (Sec. 4.3.2): while the residual exceeds the
/// limit, pack children right-to-left into intervals filled up to the
/// limit.
TotalWeight RsReduce(Weight own_weight, const std::vector<ChildPart>& children,
                     TotalWeight limit, Partitioning* out,
                     size_t* flushed_resident = nullptr);

/// Kundu-Misra rule (Sec. 4.3.3): while the residual exceeds the limit,
/// cut the heaviest child as a single-node interval.
TotalWeight KmReduce(Weight own_weight, const std::vector<ChildPart>& children,
                     TotalWeight limit, Partitioning* out,
                     size_t* flushed_resident = nullptr);

/// GHDW rule (Sec. 3.3.1): run the flat-tree DP over the children's
/// residual weights and emit its optimal interval set; the returned
/// residual is the DP's (lean) root partition weight.
TotalWeight GhdwReduce(Weight own_weight,
                       const std::vector<ChildPart>& children,
                       TotalWeight limit, Partitioning* out,
                       size_t* flushed_resident = nullptr,
                       DpStats* stats = nullptr);

}  // namespace natix

#endif  // NATIX_CORE_REDUCTION_H_
