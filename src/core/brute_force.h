#ifndef NATIX_CORE_BRUTE_FORCE_H_
#define NATIX_CORE_BRUTE_FORCE_H_

#include <cstddef>

#include "common/status.h"
#include "tree/partitioning.h"
#include "tree/tree.h"

namespace natix {

/// Result of exhaustive enumeration of all tree sibling partitionings.
struct BruteForceResult {
  /// An optimal (minimal and lean) partitioning.
  Partitioning best;
  /// Its cardinality and root weight.
  size_t min_cardinality = 0;
  TotalWeight min_root_weight = 0;
  /// Root weight of a nearly optimal partitioning (minimal cardinality + 1,
  /// lean); has_nearly_optimal is false if no feasible partitioning with
  /// min_cardinality + 1 intervals exists.
  bool has_nearly_optimal = false;
  TotalWeight nearly_optimal_root_weight = 0;
  /// Number of feasible partitionings enumerated.
  size_t feasible_count = 0;
};

/// Exhaustively enumerates every tree sibling partitioning of `tree`
/// (exponential; intended for trees with <= ~12 nodes) and returns the
/// optimum. Used by the tests as ground truth for DHW (Sec. 2.2) and for
/// the nearly-optimal machinery (Lemmas 3-4). Fails with InvalidArgument
/// if no feasible partitioning exists or the tree is larger than
/// `max_nodes`.
Result<BruteForceResult> BruteForceOptimal(const Tree& tree,
                                           TotalWeight limit,
                                           size_t max_nodes = 12);

}  // namespace natix

#endif  // NATIX_CORE_BRUTE_FORCE_H_
