#include "core/algorithm.h"
#include "core/heuristics.h"

namespace natix {

Result<Partitioning> DfsPartition(const Tree& tree, TotalWeight limit) {
  NATIX_RETURN_NOT_OK(CheckPartitionable(tree, limit));

  // stamp[v] == current_id marks membership in the open partition; using
  // stamps avoids clearing a flag array when a partition closes.
  std::vector<uint32_t> stamp(tree.size(), 0);
  uint32_t current_id = 0;
  TotalWeight current_weight = 0;
  SiblingInterval current_interval;

  Partitioning p;
  auto close_current = [&]() { p.Add(current_interval); };
  auto open_new = [&](NodeId v) {
    ++current_id;
    current_weight = tree.WeightOf(v);
    current_interval = {v, v};
    stamp[v] = current_id;
  };

  bool first = true;
  for (const NodeId v : tree.PreorderNodes()) {
    if (first) {
      open_new(v);
      first = false;
      continue;
    }
    const NodeId parent = tree.Parent(v);
    const NodeId prev = tree.PrevSibling(v);
    const bool parent_in = stamp[parent] == current_id;
    const bool sibling_in = prev != kInvalidNode && stamp[prev] == current_id;
    const bool connected = parent_in || sibling_in;
    if (connected && current_weight + tree.WeightOf(v) <= limit) {
      stamp[v] = current_id;
      current_weight += tree.WeightOf(v);
      // If the parent is outside the partition, v joins as a new partition
      // root adjacent to the interval's current last root.
      if (!parent_in) current_interval.last = v;
    } else {
      close_current();
      open_new(v);
    }
  }
  close_current();
  return p;
}

}  // namespace natix
