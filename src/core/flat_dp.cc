#include "core/flat_dp.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace natix {

namespace {
constexpr uint32_t kInfeasibleCard = std::numeric_limits<uint32_t>::max();
}  // namespace

// Fenwick trees over *descending* delta values: position 1 holds the
// largest possible value (= limit), position limit holds value 1. The
// sliding interval of candidate 2 inserts each child's ΔW once; the query
// answers "how many of the largest ΔWs are needed to reach a given sum"
// (the greedy of Lemma 5) in O(log K).
void DeltaWindow::Reset(uint32_t limit) {
  // Every Insert() since the last Clear() is undone first, so the trees are
  // all-zero and re-targeting is just a matter of growing them: stale
  // (now out-of-range) positions hold zeroes and never perturb a query.
  Clear();
  n_ = limit;
  if (cnt_.size() < static_cast<size_t>(limit) + 1) {
    cnt_.resize(static_cast<size_t>(limit) + 1, 0);
    sum_.resize(static_cast<size_t>(limit) + 1, 0);
  }
  log_ = 0;
  while ((1u << (log_ + 1)) <= n_) ++log_;
}

void DeltaWindow::Update(size_t pos, int32_t dc, int64_t ds) {
  for (size_t i = pos; i <= n_; i += i & (~i + 1)) {
    cnt_[i] = static_cast<uint32_t>(static_cast<int64_t>(cnt_[i]) + dc);
    sum_[i] = static_cast<uint64_t>(static_cast<int64_t>(sum_[i]) + ds);
  }
}

void DeltaWindow::Insert(Weight delta) {
  assert(delta >= 1 && delta <= n_);
  Update(n_ + 1 - delta, +1, +static_cast<int64_t>(delta));
  inserted_.push_back(delta);
}

void DeltaWindow::Clear() {
  for (const Weight d : inserted_) {
    Update(n_ + 1 - d, -1, -static_cast<int64_t>(d));
  }
  inserted_.clear();
}

uint32_t DeltaWindow::MinCountForSum(uint64_t need) const {
  if (need == 0) return 0;
  // Walk 1: the largest prefix (of descending values) whose sum is still
  // below `need`.
  uint64_t acc_sum = 0;
  uint32_t acc_cnt = 0;
  size_t pos = 0;
  for (uint32_t bit = log_ + 1; bit-- > 0;) {
    const size_t next = pos + (1ull << bit);
    if (next <= n_ && acc_sum + sum_[next] < need) {
      pos = next;
      acc_sum += sum_[next];
      acc_cnt += cnt_[next];
    }
  }
  // Walk 2: the value of the next (descending) element -- the smallest
  // position whose cumulative count exceeds acc_cnt.
  uint32_t skip = 0;
  size_t p2 = 0;
  for (uint32_t bit = log_ + 1; bit-- > 0;) {
    const size_t next = p2 + (1ull << bit);
    if (next <= n_ && skip + cnt_[next] <= acc_cnt) {
      p2 = next;
      skip += cnt_[next];
    }
  }
  const size_t idx = p2 + 1;
  assert(idx <= n_ && "insufficient ΔW to satisfy the requested sum");
  const uint64_t value = n_ + 1 - idx;
  const uint64_t remaining = need - acc_sum;
  return acc_cnt + static_cast<uint32_t>((remaining + value - 1) / value);
}

void FlatDpWorkspace::BeginNode(uint32_t limit) {
  ++epoch_;
  if (per_s_.size() < static_cast<size_t>(limit) + 1) {
    per_s_.resize(static_cast<size_t>(limit) + 1);
  }
  rows_used_ = 0;
  used_s_.clear();
  window_.Reset(limit);
}

uint32_t FlatDpWorkspace::AcquireRowSlot(uint32_t s) {
  if (rows_used_ == row_pool_.size()) {
    row_pool_.emplace_back();
  } else {
    row_pool_[rows_used_].clear();  // keeps the capacity
  }
  used_s_.push_back(s);
  return static_cast<uint32_t>(rows_used_++);
}

FlatDp::FlatDp(Weight node_weight, std::vector<Weight> child_weights,
               std::vector<Weight> delta_w, TotalWeight limit,
               FlatDpWorkspace* workspace)
    : node_weight_(node_weight),
      owned_child_weights_(std::move(child_weights)),
      owned_delta_w_(std::move(delta_w)) {
  assert(owned_delta_w_.empty() ||
         owned_delta_w_.size() == owned_child_weights_.size());
  if (owned_delta_w_.empty()) {
    owned_delta_w_.assign(owned_child_weights_.size(), 0);
  }
  child_weights_ = owned_child_weights_.data();
  delta_w_ = owned_delta_w_.data();
  child_count_ = owned_child_weights_.size();
  Init(limit, workspace);
}

FlatDp::FlatDp(Weight node_weight, const Weight* child_weights,
               const Weight* delta_w, size_t child_count, TotalWeight limit,
               FlatDpWorkspace* workspace)
    : node_weight_(node_weight),
      child_weights_(child_weights),
      delta_w_(delta_w),
      child_count_(child_count) {
  if (delta_w_ == nullptr) {
    owned_delta_w_.assign(child_count_, 0);
    delta_w_ = owned_delta_w_.data();
  }
  Init(limit, workspace);
}

void FlatDp::Init(TotalWeight limit, FlatDpWorkspace* workspace) {
  limit_ = static_cast<uint32_t>(limit);
  (void)node_weight_;
  assert(node_weight_ >= 1 && node_weight_ <= limit_);
  for (size_t i = 0; i < child_count_; ++i) {
    (void)i;
    assert(child_weights_[i] >= 1 && child_weights_[i] <= limit_);
  }
  if (workspace == nullptr) {
    owned_ws_ = std::make_unique<FlatDpWorkspace>();
    workspace = owned_ws_.get();
  }
  ws_ = workspace;
  ws_->BeginNode(limit_);
}

int32_t FlatDp::FirstColOf(uint32_t s) const {
  const FlatDpWorkspace::RowState& st = ws_->per_s_[s];
  return st.first_col_epoch == ws_->epoch_ ? st.first_col : -1;
}

void FlatDp::SetFirstCol(uint32_t s, int32_t col) {
  FlatDpWorkspace::RowState& st = ws_->per_s_[s];
  st.first_col_epoch = ws_->epoch_;
  st.first_col = col;
}

std::vector<FlatDp::Entry>& FlatDp::RowFor(uint32_t s) {
  FlatDpWorkspace::RowState& st = ws_->per_s_[s];
  if (st.row_epoch != ws_->epoch_) {
    st.row_epoch = ws_->epoch_;
    st.row_slot = ws_->AcquireRowSlot(s);
  }
  return ws_->row_pool_[st.row_slot];
}

const std::vector<FlatDp::Entry>* FlatDp::FindRow(uint32_t s) const {
  const FlatDpWorkspace::RowState& st = ws_->per_s_[s];
  return st.row_epoch == ws_->epoch_ ? &ws_->row_pool_[st.row_slot] : nullptr;
}

void FlatDp::EnsureSeed(uint32_t s) {
  if (s > limit_) return;
  const int32_t n = static_cast<int32_t>(child_count_);
  if (FirstColOf(s) >= n) return;  // already ensured for a full query

  // Phase 1: propagate the needed-cell frontier column by column.
  // `active` holds the s values raised by this call; at column j each of
  // them may raise s + w(c_j) to column j - 1 (candidate 1 of Lemma 2).
  // Candidate 2 stays within the same row at lower columns, which the
  // monotone first_col extent already covers.
  const size_t words = (static_cast<size_t>(limit_) + 64) / 64;
  std::vector<uint64_t>& active = ws_->active_;
  active.assign(words, 0);
  std::vector<uint64_t>& shifted = ws_->shifted_;
  shifted.assign(words, 0);
  auto set_bit = [&](uint32_t i) { active[i >> 6] |= 1ull << (i & 63); };
  auto test_bit = [&](uint32_t i) {
    return (active[i >> 6] >> (i & 63)) & 1u;
  };

  // `active` doubles as the membership bitmap for `raised`: a bit is set
  // exactly when the value was noted, so the duplicate check is O(1)
  // instead of a linear scan over the raised list.
  std::vector<uint32_t>& raised = ws_->raised_;
  raised.clear();
  auto note_raise = [&](uint32_t value, int32_t col) {
    if (!test_bit(value)) raised.push_back(value);
    SetFirstCol(value, col);
    set_bit(value);
  };

  note_raise(s, n);
  for (int32_t j = n; j >= 1; --j) {
    const Weight w = child_weights_[static_cast<size_t>(j - 1)];
    if (w > limit_) continue;
    // shifted = active << w, truncated to limit_ + 1 bits.
    const uint32_t word_shift = w >> 6;
    const uint32_t bit_shift = w & 63;
    std::fill(shifted.begin(), shifted.end(), 0);
    if (word_shift < words) {
      for (size_t i = words; i-- > word_shift;) {
        uint64_t v = active[i - word_shift] << bit_shift;
        if (bit_shift != 0 && i - word_shift > 0) {
          v |= active[i - word_shift - 1] >> (64 - bit_shift);
        }
        shifted[i] = v;
      }
    }
    for (size_t i = 0; i < words; ++i) {
      uint64_t bits = shifted[i];
      while (bits != 0) {
        const uint32_t b = static_cast<uint32_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        const uint32_t value = static_cast<uint32_t>(i * 64 + b);
        if (value > limit_) break;
        if (FirstColOf(value) < j - 1) note_raise(value, j - 1);
      }
    }
  }

  // Phase 2: fill raised rows in descending s order (a cell only depends
  // on rows with larger s, and on earlier cells of its own row).
  std::sort(raised.rbegin(), raised.rend());
  for (const uint32_t value : raised) {
    FillCells(value, static_cast<size_t>(FirstColOf(value)));
  }
}

void FlatDp::FillCells(uint32_t s, size_t upto) {
  std::vector<Entry>& row = RowFor(s);  // creates empty row if absent
  if (row.size() > upto) return;
  row.reserve(upto + 1);
  if (row.empty()) {
    Entry base;
    base.card = 0;
    base.rootweight = s;
    base.begin = base.end = -1;
    base.next_j = -1;
    row.push_back(base);
  }

  DeltaWindow& window = ws_->window_;
  for (size_t j = row.size(); j <= upto; ++j) {
    Entry best;
    best.card = kInfeasibleCard;

    // Candidate 1 (Lemma 2, statement 1): child c_j joins the root
    // partition. Only the child's *optimal* partitioning is considered
    // (Lemma 5, statement 1).
    const uint64_t s_joined =
        static_cast<uint64_t>(s) + child_weights_[j - 1];
    if (s_joined <= limit_) {
      const std::vector<Entry>* joined =
          FindRow(static_cast<uint32_t>(s_joined));
      assert(joined != nullptr && joined->size() >= j &&
             "needed-cell propagation must cover candidate 1");
      best = (*joined)[j - 1];
    }

    // Candidate 2 (Lemma 2, statement 2): append an interval
    // (c_{j-m}, c_j) to the solution for the first j-m-1 children. When
    // the interval is too heavy under optimal child partitionings but
    // fits once children switch to nearly optimal ones, the number of
    // switches is the minimal count of largest ΔWs covering the excess
    // (Lemma 5); each switch costs one partition.
    window.Clear();
    uint64_t w = 0;
    uint64_t dw_sum = 0;
    for (size_t m = 0; m < j && m < limit_; ++m) {
      if (w - dw_sum >= limit_) break;  // cannot grow the interval further
      const size_t left = j - 1 - m;
      w += child_weights_[left];
      const Weight d = delta_w_[left];
      dw_sum += d;
      if (d > 0) window.Insert(d);
      if (w - dw_sum > limit_) continue;  // even all-nearly-optimal too heavy

      const Entry& base = row[left];
      uint32_t crd = base.card + 1;
      if (w > limit_) crd += window.MinCountForSum(w - limit_);
      const uint32_t rw = base.rootweight;
      if (crd < best.card || (crd == best.card && rw < best.rootweight)) {
        best.card = crd;
        best.rootweight = rw;
        best.begin = static_cast<int32_t>(left);
        best.end = static_cast<int32_t>(j - 1);
        best.next_s = s;
        best.next_j = static_cast<int32_t>(left);
      }
    }
    assert(best.card != kInfeasibleCard &&
           "every (s <= K, j) subproblem is feasible");
    row.push_back(best);
  }
  window.Clear();
}

const FlatDp::Entry* FlatDp::FinalEntry(uint32_t s) const {
  if (s > limit_) return nullptr;
  const std::vector<Entry>* row = FindRow(s);
  (void)row;
  assert(row != nullptr && row->size() == child_count_ + 1 &&
         "EnsureSeed(s) must be called first");
  return &(*FindRow(s))[child_count_];
}

std::vector<uint32_t> FlatDp::ComputeNearlySet(uint32_t begin,
                                               uint32_t end) const {
  uint64_t w = 0;
  for (uint32_t i = begin; i <= end; ++i) w += child_weights_[i];
  std::vector<uint32_t> nearly;
  if (w <= limit_) return nearly;
  // The greedy of Lemma 5: switch children to nearly optimal
  // partitionings in descending-ΔW order until the interval fits.
  std::vector<std::pair<Weight, uint32_t>> by_delta;
  for (uint32_t i = begin; i <= end; ++i) {
    if (delta_w_[i] > 0) by_delta.push_back({delta_w_[i], i});
  }
  std::sort(by_delta.begin(), by_delta.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [d, idx] : by_delta) {
    if (w <= limit_) break;
    w -= d;
    nearly.push_back(idx);
  }
  assert(w <= limit_ && "ΔW bookkeeping out of sync with fill time");
  return nearly;
}

std::vector<FlatDp::IntervalChoice> FlatDp::ExtractChain(uint32_t s) const {
  std::vector<IntervalChoice> out;
  const Entry* e = FinalEntry(s);
  assert(e != nullptr);
  for (;;) {
    if (e->begin >= 0) {
      const uint32_t begin = static_cast<uint32_t>(e->begin);
      const uint32_t end = static_cast<uint32_t>(e->end);
      out.push_back({begin, end, ComputeNearlySet(begin, end)});
    }
    if (e->next_j < 0) break;
    const std::vector<Entry>* row = FindRow(e->next_s);
    assert(row != nullptr);
    e = &(*row)[static_cast<size_t>(e->next_j)];
  }
  return out;
}

size_t FlatDp::CellCount() const {
  size_t cells = 0;
  for (const uint32_t s : ws_->used_s_) {
    cells += ws_->row_pool_[ws_->per_s_[s].row_slot].size();
  }
  return cells;
}

}  // namespace natix
