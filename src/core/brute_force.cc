#include "core/brute_force.h"

#include <map>

#include "core/algorithm.h"

namespace natix {

namespace {

// Per-node assignment during enumeration:
//   kFree   - node stays in its parent's partition,
//   kStart  - node is a member and starts a new interval,
//   kExtend - node is a member and extends its previous sibling's interval
//             (only valid if the previous sibling is a member).
enum class Assign : uint8_t { kFree, kStart, kExtend };

class Enumerator {
 public:
  Enumerator(const Tree& tree, TotalWeight limit)
      : tree_(tree), limit_(limit), assign_(tree.size(), Assign::kFree) {}

  BruteForceResult Run() {
    Recurse(1);
    BruteForceResult out;
    out.best = std::move(best_);
    out.min_cardinality = best_card_;
    out.min_root_weight = best_root_weight_;
    out.feasible_count = feasible_count_;
    const auto near = lean_by_card_.find(best_card_ + 1);
    if (near != lean_by_card_.end()) {
      out.has_nearly_optimal = true;
      out.nearly_optimal_root_weight = near->second;
    }
    return out;
  }

 private:
  void Recurse(NodeId v) {
    if (v >= tree_.size()) {
      Evaluate();
      return;
    }
    // Node ids are assigned in AppendChild order, so a previous sibling
    // always has a smaller id and is assigned before v.
    assign_[v] = Assign::kFree;
    Recurse(v + 1);
    assign_[v] = Assign::kStart;
    Recurse(v + 1);
    const NodeId prev = tree_.PrevSibling(v);
    if (prev != kInvalidNode && assign_[prev] != Assign::kFree) {
      assign_[v] = Assign::kExtend;
      Recurse(v + 1);
    }
    assign_[v] = Assign::kFree;
  }

  void Evaluate() {
    Partitioning p;
    p.Add(tree_.root(), tree_.root());
    for (NodeId v = 1; v < tree_.size(); ++v) {
      if (assign_[v] != Assign::kStart) continue;
      NodeId last = v;
      for (NodeId s = tree_.NextSibling(last);
           s != kInvalidNode && assign_[s] == Assign::kExtend;
           s = tree_.NextSibling(s)) {
        last = s;
      }
      p.Add(v, last);
    }
    const Result<PartitionAnalysis> analysis = Analyze(tree_, p, limit_);
    if (!analysis.ok() || !analysis->feasible) return;
    ++feasible_count_;
    const size_t card = analysis->cardinality;
    const TotalWeight rw = analysis->root_weight;
    const auto it = lean_by_card_.find(card);
    if (it == lean_by_card_.end() || rw < it->second) {
      lean_by_card_[card] = rw;
    }
    if (card < best_card_ || (card == best_card_ && rw < best_root_weight_)) {
      best_card_ = card;
      best_root_weight_ = rw;
      best_ = std::move(p);
    }
  }

  const Tree& tree_;
  TotalWeight limit_;
  std::vector<Assign> assign_;
  Partitioning best_;
  size_t best_card_ = static_cast<size_t>(-1);
  TotalWeight best_root_weight_ = 0;
  size_t feasible_count_ = 0;
  std::map<size_t, TotalWeight> lean_by_card_;
};

}  // namespace

Result<BruteForceResult> BruteForceOptimal(const Tree& tree,
                                           TotalWeight limit,
                                           size_t max_nodes) {
  NATIX_RETURN_NOT_OK(CheckPartitionable(tree, limit));
  if (tree.size() > max_nodes) {
    return Status::InvalidArgument(
        "brute force enumeration limited to " + std::to_string(max_nodes) +
        " nodes, got " + std::to_string(tree.size()));
  }
  return Enumerator(tree, limit).Run();
}

}  // namespace natix
