#ifndef NATIX_CORE_EXACT_ALGORITHMS_H_
#define NATIX_CORE_EXACT_ALGORITHMS_H_

#include <cstdint>

#include "common/status.h"
#include "tree/partitioning.h"
#include "tree/tree.h"

namespace natix {

/// Dynamic-programming usage counters, exposed for the memoization ablation
/// benchmark (Sec. 3.3.6: "on average, less than 4 of the potential 256
/// values for s actually occur").
struct DpStats {
  /// Nodes for which a flat DP was run (inner nodes).
  uint64_t inner_nodes = 0;
  /// Materialized DP rows (distinct s values), summed over nodes.
  uint64_t rows = 0;
  /// Materialized DP cells, summed over nodes.
  uint64_t cells = 0;
  /// Cells a non-memoized implementation would allocate:
  /// (K - w(v) + 1) * (childcount(v) + 1) summed over inner nodes.
  uint64_t full_table_cells = 0;
};

/// Algorithm FDW (Fig. 4): optimal partitioning of a *flat* tree (every
/// non-root node is a leaf) in O(nK^2). Fails with InvalidArgument on deep
/// trees.
Result<Partitioning> FdwPartition(const Tree& tree, TotalWeight limit,
                                  DpStats* stats = nullptr);

/// Algorithm GHDW (Fig. 5): bottom-up application of the flat DP with
/// locally optimal subtree partitionings (greedy in tree height). Feasible
/// and near-optimal, but not always minimal (Fig. 6). O(nK^2).
Result<Partitioning> GhdwPartition(const Tree& tree, TotalWeight limit,
                                   DpStats* stats = nullptr);

/// Execution options for DHW's parallel phases.
struct DhwOptions {
  /// Worker threads for the bottom-up DP and extraction phases. 0 = one
  /// per hardware thread; 1 = sequential. The result is byte-identical
  /// for every value (the per-node DP is deterministic; only the schedule
  /// varies).
  unsigned num_threads = 0;
  /// Trees smaller than this are solved sequentially regardless of
  /// num_threads: below it the pool's wake-up and steal overhead exceeds
  /// the DP work. Tests lower it to force the parallel path on tiny trees.
  ///
  /// Interplay with task_grain_nodes: min_parallel_nodes gates on *total*
  /// tree size before any decomposition happens; a tree that passes the
  /// gate additionally falls back to sequential when it is no larger than
  /// a single task grain (the chunked scheduler would produce one task).
  /// Both fallbacks take the exact code path num_threads = 1 takes.
  size_t min_parallel_nodes = 4096;
  /// Target node count per parallel task. The scheduler coarsens work by
  /// subtree: a node whose subtree exceeds the grain becomes a task of
  /// its own, and its lighter child subtrees are greedily grouped into
  /// chunk tasks of >= grain nodes each. Larger grains amortize pool
  /// overhead; smaller grains expose more parallelism. 0 = the default.
  /// Purely a scheduling knob -- the partitioning is identical for every
  /// value.
  size_t task_grain_nodes = 4096;
};

/// Wall-clock breakdown of one DhwPartition run, for bench_parallel's
/// attribution of where time goes. In the chunked parallel schedule the
/// leaf pass is folded into the bottom-up tasks (each chunk seeds its own
/// leaves), so leaf_ms is only nonzero on the sequential path.
struct DhwPhaseTimings {
  /// Postorder / subtree-size / task-graph construction.
  double setup_ms = 0;
  /// Sequential leaf seeding (sequential path only; 0 when chunked).
  double leaf_ms = 0;
  /// Bottom-up DP over inner nodes (includes in-chunk leaf seeding on the
  /// parallel path).
  double solve_ms = 0;
  /// Top-down interval extraction.
  double extract_ms = 0;
  /// Worker threads actually used (after all fallbacks).
  unsigned threads_used = 1;
};

/// Algorithm DHW (Fig. 7): optimal tree sibling partitioning. Extends GHDW
/// with the choice between optimal and nearly optimal subtree partitionings
/// (Lemmas 3-5). Produces a minimal *and* lean partitioning in O(nK^3).
/// The bottom-up phase runs on a work-stealing pool over subtree-chunked
/// tasks (see DhwOptions), and the extraction phase fans the independent
/// light subtrees out over the same pool; per-thread pooled DP workspaces
/// keep the steady state allocation-free.
Result<Partitioning> DhwPartition(const Tree& tree, TotalWeight limit,
                                  DpStats* stats = nullptr);
Result<Partitioning> DhwPartition(const Tree& tree, TotalWeight limit,
                                  const DhwOptions& options,
                                  DpStats* stats = nullptr,
                                  DhwPhaseTimings* timings = nullptr);

}  // namespace natix

#endif  // NATIX_CORE_EXACT_ALGORITHMS_H_
