#ifndef NATIX_CORE_EXACT_ALGORITHMS_H_
#define NATIX_CORE_EXACT_ALGORITHMS_H_

#include <cstdint>

#include "common/status.h"
#include "tree/partitioning.h"
#include "tree/tree.h"

namespace natix {

/// Dynamic-programming usage counters, exposed for the memoization ablation
/// benchmark (Sec. 3.3.6: "on average, less than 4 of the potential 256
/// values for s actually occur").
struct DpStats {
  /// Nodes for which a flat DP was run (inner nodes).
  uint64_t inner_nodes = 0;
  /// Materialized DP rows (distinct s values), summed over nodes.
  uint64_t rows = 0;
  /// Materialized DP cells, summed over nodes.
  uint64_t cells = 0;
  /// Cells a non-memoized implementation would allocate:
  /// (K - w(v) + 1) * (childcount(v) + 1) summed over inner nodes.
  uint64_t full_table_cells = 0;
};

/// Algorithm FDW (Fig. 4): optimal partitioning of a *flat* tree (every
/// non-root node is a leaf) in O(nK^2). Fails with InvalidArgument on deep
/// trees.
Result<Partitioning> FdwPartition(const Tree& tree, TotalWeight limit,
                                  DpStats* stats = nullptr);

/// Algorithm GHDW (Fig. 5): bottom-up application of the flat DP with
/// locally optimal subtree partitionings (greedy in tree height). Feasible
/// and near-optimal, but not always minimal (Fig. 6). O(nK^2).
Result<Partitioning> GhdwPartition(const Tree& tree, TotalWeight limit,
                                   DpStats* stats = nullptr);

/// Execution options for DHW's parallel bottom-up phase.
struct DhwOptions {
  /// Worker threads for the bottom-up DP phase. 0 = one per hardware
  /// thread; 1 = today's sequential execution order. The result is
  /// byte-identical for every value (the per-node DP is deterministic;
  /// only the schedule varies).
  unsigned num_threads = 0;
  /// Trees smaller than this are solved sequentially regardless of
  /// num_threads: below it the pool's wake-up and steal overhead exceeds
  /// the DP work. Tests lower it to force the parallel path on tiny trees.
  size_t min_parallel_nodes = 4096;
};

/// Algorithm DHW (Fig. 7): optimal tree sibling partitioning. Extends GHDW
/// with the choice between optimal and nearly optimal subtree partitionings
/// (Lemmas 3-5). Produces a minimal *and* lean partitioning in O(nK^3).
/// The bottom-up phase runs on a work-stealing pool (see DhwOptions);
/// independent subtrees are solved concurrently with per-thread pooled DP
/// workspaces.
Result<Partitioning> DhwPartition(const Tree& tree, TotalWeight limit,
                                  DpStats* stats = nullptr);
Result<Partitioning> DhwPartition(const Tree& tree, TotalWeight limit,
                                  const DhwOptions& options,
                                  DpStats* stats = nullptr);

}  // namespace natix

#endif  // NATIX_CORE_EXACT_ALGORITHMS_H_
