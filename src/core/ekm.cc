#include "core/algorithm.h"
#include "core/heuristics.h"

namespace natix {

// EKM = Kundu-Misra on the binary (first-child / next-sibling)
// representation. In the binary tree, a node x has as left child its first
// n-ary child and as right child its next n-ary sibling. Cutting the edge
// above x makes x a partition root:
//   * a cut "next sibling" edge splits a sibling run, so x starts a new
//     sibling interval;
//   * a cut "first child" edge detaches the whole child list, so x starts
//     an interval spanning x and its following uncut siblings.
// The mapped n-ary intervals are (c, r) for every cut node c, where r is
// the last consecutive sibling of c whose own edge was not cut.
Result<Partitioning> EkmPartition(const Tree& tree, TotalWeight limit) {
  NATIX_RETURN_NOT_OK(CheckPartitionable(tree, limit));

  const size_t n = tree.size();
  // binary_residual[x]: weight of x's binary subtree (x + first-child
  // subtree + next-sibling subtree) minus cut parts.
  std::vector<TotalWeight> binary_residual(n, 0);
  std::vector<bool> cut(n, false);

  // Reverse preorder guarantees that both binary children of a node (its
  // n-ary first child and next sibling) are processed before the node.
  const std::vector<NodeId> preorder = tree.PreorderNodes();
  for (size_t i = preorder.size(); i-- > 0;) {
    const NodeId x = preorder[i];
    const NodeId left = tree.FirstChild(x);
    const NodeId right = tree.NextSibling(x);
    TotalWeight rw = tree.WeightOf(x);
    if (left != kInvalidNode) rw += binary_residual[left];
    if (right != kInvalidNode) rw += binary_residual[right];
    while (rw > limit) {
      // Cut the heavier of the (at most two) uncut binary children.
      const TotalWeight lw =
          (left != kInvalidNode && !cut[left]) ? binary_residual[left] : 0;
      const TotalWeight rwgt =
          (right != kInvalidNode && !cut[right]) ? binary_residual[right] : 0;
      if (lw >= rwgt) {
        cut[left] = true;
        rw -= lw;
      } else {
        cut[right] = true;
        rw -= rwgt;
      }
    }
    binary_residual[x] = rw;
  }

  // Map binary cuts back to n-ary sibling intervals.
  Partitioning p;
  p.Add(tree.root(), tree.root());
  for (NodeId c = 0; c < n; ++c) {
    if (!cut[c]) continue;
    NodeId r = c;
    for (NodeId s = tree.NextSibling(r); s != kInvalidNode && !cut[s];
         s = tree.NextSibling(s)) {
      r = s;
    }
    p.Add(c, r);
  }
  return p;
}

}  // namespace natix
