#include "core/algorithm.h"

#include <array>

#include "core/exact_algorithms.h"
#include "core/heuristics.h"
#include "core/lukes.h"

namespace natix {

Status CheckPartitionable(const Tree& tree, TotalWeight limit) {
  if (tree.empty()) {
    return Status::InvalidArgument("cannot partition an empty tree");
  }
  if (limit == 0) {
    return Status::InvalidArgument("weight limit must be positive");
  }
  const Weight max_node = tree.MaxNodeWeight();
  if (max_node > limit) {
    return Status::InvalidArgument(
        "no feasible sibling partitioning: node weight " +
        std::to_string(max_node) + " exceeds limit " + std::to_string(limit) +
        " (split oversized nodes first, e.g. with the XML weight model's "
        "overflow handling)");
  }
  return Status::OK();
}

namespace {

// Every registry entry is options-aware so PartitionOptions threads
// through uniformly; sequential algorithms simply ignore the options.
using PartitionFn = Result<Partitioning> (*)(const Tree&, TotalWeight,
                                             const PartitionOptions&);

class FnAlgorithm : public PartitioningAlgorithm {
 public:
  constexpr FnAlgorithm(std::string_view name, std::string_view description,
                        PartitionFn fn, bool optimal, bool memory_friendly)
      : name_(name),
        description_(description),
        fn_(fn),
        optimal_(optimal),
        memory_friendly_(memory_friendly) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }
  Result<Partitioning> Partition(const Tree& tree,
                                 TotalWeight limit) const override {
    return fn_(tree, limit, PartitionOptions{});
  }
  Result<Partitioning> Partition(const Tree& tree, TotalWeight limit,
                                 const PartitionOptions& options)
      const override {
    return fn_(tree, limit, options);
  }
  bool IsOptimal() const override { return optimal_; }
  bool IsMainMemoryFriendly() const override { return memory_friendly_; }

 private:
  std::string_view name_;
  std::string_view description_;
  PartitionFn fn_;
  bool optimal_;
  bool memory_friendly_;
};

Result<Partitioning> DhwFn(const Tree& t, TotalWeight k,
                           const PartitionOptions& o) {
  DhwOptions dhw;
  dhw.num_threads = o.num_threads;
  if (o.task_grain_nodes != 0) dhw.task_grain_nodes = o.task_grain_nodes;
  return DhwPartition(t, k, dhw);
}
Result<Partitioning> GhdwFn(const Tree& t, TotalWeight k,
                            const PartitionOptions&) {
  return GhdwPartition(t, k);
}
Result<Partitioning> FdwFn(const Tree& t, TotalWeight k,
                           const PartitionOptions&) {
  return FdwPartition(t, k);
}
Result<Partitioning> EkmFn(const Tree& t, TotalWeight k,
                           const PartitionOptions&) {
  return EkmPartition(t, k);
}
Result<Partitioning> RsFn(const Tree& t, TotalWeight k,
                          const PartitionOptions&) {
  return RsPartition(t, k);
}
Result<Partitioning> DfsFn(const Tree& t, TotalWeight k,
                           const PartitionOptions&) {
  return DfsPartition(t, k);
}
Result<Partitioning> KmFn(const Tree& t, TotalWeight k,
                          const PartitionOptions&) {
  return KmPartition(t, k);
}
Result<Partitioning> BfsFn(const Tree& t, TotalWeight k,
                           const PartitionOptions&) {
  return BfsPartition(t, k);
}
Result<Partitioning> LukesFn(const Tree& t, TotalWeight k,
                             const PartitionOptions&) {
  return LukesPartition(t, k);
}

// Registry in the paper's Table 1 column order, FDW last. Constructed on
// first use and intentionally never destroyed (static storage duration
// objects must be trivially destructible).
const std::array<FnAlgorithm, 9>& Registry() {
  static const std::array<FnAlgorithm, 9>& algorithms =
      *new std::array<FnAlgorithm, 9>{
    FnAlgorithm{"DHW",
                "optimal sibling partitioning, O(nK^3) dynamic programming "
                "over height and width (Sec. 3.3.5)",
                &DhwFn, /*optimal=*/true, /*memory_friendly=*/false},
    FnAlgorithm{"GHDW",
                "greedy height / dynamic-programming width; locally optimal "
                "subtree partitionings (Sec. 3.3.1)",
                &GhdwFn, false, true},
    FnAlgorithm{"EKM",
                "Kundu-Misra on the binary first-child/next-sibling "
                "representation; the paper's recommended default (Sec. 4.3.4)",
                &EkmFn, false, true},
    FnAlgorithm{"RS",
                "rightmost-siblings packing, the original Natix bulkload "
                "heuristic (Sec. 4.3.2)",
                &RsFn, false, true},
    FnAlgorithm{"DFS",
                "greedy preorder assignment, adapted from Tsangaris/Naughton "
                "(Sec. 4.2.1)",
                &DfsFn, false, true},
    FnAlgorithm{"KM",
                "Kundu-Misra: parent-child partitions only, no sibling "
                "sharing (Sec. 4.3.3)",
                &KmFn, false, true},
    FnAlgorithm{"BFS",
                "greedy level-order assignment (Sec. 4.2.2)", &BfsFn,
                false, false},
    FnAlgorithm{"FDW",
                "optimal partitioning of flat trees, O(nK^2) (Sec. 3.2.2)",
                &FdwFn, true, false},
    FnAlgorithm{"LUKES",
                "Lukes' value-based DP with unit edge values: optimal for "
                "parent-child partitionings, no sibling sharing (Sec. 5)",
                &LukesFn, false, false},
      };
  return algorithms;
}

}  // namespace

const PartitioningAlgorithm* FindAlgorithm(std::string_view name) {
  for (const FnAlgorithm& a : Registry()) {
    if (a.name() == name) return &a;
  }
  return nullptr;
}

std::vector<std::string_view> AlgorithmNames() {
  std::vector<std::string_view> names;
  names.reserve(Registry().size());
  for (const FnAlgorithm& a : Registry()) names.push_back(a.name());
  return names;
}

Result<Partitioning> PartitionWith(std::string_view algorithm,
                                   const Tree& tree, TotalWeight limit) {
  return PartitionWith(algorithm, tree, limit, PartitionOptions{});
}

Result<Partitioning> PartitionWith(std::string_view algorithm,
                                   const Tree& tree, TotalWeight limit,
                                   const PartitionOptions& options) {
  const PartitioningAlgorithm* a = FindAlgorithm(algorithm);
  if (a == nullptr) {
    return Status::NotFound("unknown partitioning algorithm: " +
                            std::string(algorithm));
  }
  return a->Partition(tree, limit, options);
}

}  // namespace natix
