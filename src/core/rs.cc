#include "core/algorithm.h"
#include "core/heuristics.h"
#include "core/reduction.h"

namespace natix {

Result<Partitioning> RsPartition(const Tree& tree, TotalWeight limit) {
  NATIX_RETURN_NOT_OK(CheckPartitionable(tree, limit));

  // residual[v]: weight of v's partition-local subtree after cuts below.
  std::vector<TotalWeight> residual(tree.size(), 0);
  Partitioning p;
  std::vector<ChildPart> children;
  for (const NodeId v : tree.PostorderNodes()) {
    children.clear();
    for (NodeId c = tree.FirstChild(v); c != kInvalidNode;
         c = tree.NextSibling(c)) {
      children.push_back({c, residual[c], 1});
    }
    residual[v] = RsReduce(tree.WeightOf(v), children, limit, &p);
  }
  p.Add(tree.root(), tree.root());
  return p;
}

}  // namespace natix
