#include "common/rng.h"
#include "datagen/generator.h"
#include "datagen/text.h"
#include "datagen/xml_writer.h"

namespace natix {

namespace {

std::string CountryCode(Rng* rng) {
  std::string code(3, 'A');
  for (char& c : code) {
    c = static_cast<char>('A' + rng->NextBounded(26));
  }
  return code;
}

}  // namespace

// mondial-3.0.xml profile: nested geographic data -- countries containing
// provinces containing cities, heavy use of attributes, plus
// organizations with long member lists. Deeper and more irregular than
// the relational documents. Original: 1785KB, 152218 nodes.
std::string GenerateMondial(uint64_t seed, double scale) {
  Rng rng(seed ^ 0x30d1a1);
  TextGenerator text(&rng);
  XmlWriter w;
  const int countries = static_cast<int>(494 * scale + 0.5);
  const int organizations = static_cast<int>(359 * scale + 0.5);
  w.Open("mondial");
  for (int c = 0; c < countries; ++c) {
    const std::string code = CountryCode(&rng);
    w.Open("country", {{"car_code", code},
                       {"area", text.Number(1000, 9000000)},
                       {"capital", "cty-" + code + "-1"},
                       {"memberships", "org-" + text.Number(1, 99)}});
    w.Element("name", text.Sentence(1, 2));
    w.Element("population", text.Number(100000, 900000000));
    w.Element("population_growth", text.Number(0, 5) + "." +
                                       text.Number(0, 99));
    w.Element("infant_mortality", text.Number(2, 90) + "." +
                                      text.Number(0, 9));
    w.Element("gdp_total", text.Number(500, 8000000));
    w.Element("inflation", text.Number(0, 30) + "." + text.Number(0, 9));
    const int ethnic = static_cast<int>(rng.NextInRange(0, 4));
    for (int e = 0; e < ethnic; ++e) {
      w.Open("ethnicgroups",
             {{"percentage", text.Number(1, 99)}});
      w.Text(text.Words(1));
      w.Close();
    }
    const int religions = static_cast<int>(rng.NextInRange(0, 3));
    for (int e = 0; e < religions; ++e) {
      w.Open("religions", {{"percentage", text.Number(1, 99)}});
      w.Text(text.Words(1));
      w.Close();
    }
    // Larger countries are subdivided into provinces with cities; the
    // fan-out is skewed like the real data (a few countries with dozens
    // of provinces, many with none).
    const int provinces =
        rng.NextBool(0.45)
            ? static_cast<int>(rng.NextZipf(40, 0.6)) + 1
            : 0;
    int city_counter = 0;
    for (int p = 0; p < provinces; ++p) {
      const std::string prov_id =
          "prov-" + code + "-" + std::to_string(p + 1);
      w.Open("province", {{"id", prov_id},
                          {"country", code},
                          {"capital", "cty-" + code + "-" +
                                          std::to_string(city_counter + 1)}});
      w.Element("name", text.Sentence(1, 2));
      w.Element("area", text.Number(100, 500000));
      w.Element("population", text.Number(10000, 30000000));
      const int cities = static_cast<int>(rng.NextInRange(1, 6));
      for (int ct = 0; ct < cities; ++ct) {
        ++city_counter;
        w.Open("city", {{"id", "cty-" + code + "-" +
                                   std::to_string(city_counter)},
                        {"country", code},
                        {"province", prov_id}});
        w.Element("name", text.Sentence(1, 2));
        if (rng.NextBool(0.7)) {
          w.Element("population", text.Number(5000, 20000000));
        }
        if (rng.NextBool(0.4)) {
          w.Element("longitude", text.Number(0, 179) + "." +
                                     text.Number(0, 9));
          w.Element("latitude", text.Number(0, 89) + "." +
                                    text.Number(0, 9));
        }
        w.Close();  // city
      }
      w.Close();  // province
    }
    w.Close();  // country
  }
  for (int o = 0; o < organizations; ++o) {
    w.Open("organization",
           {{"id", "org-" + std::to_string(o + 1)},
            {"headq", "cty-" + CountryCode(&rng) + "-1"}});
    w.Element("name", text.Sentence(2, 6));
    w.Element("abbrev", CountryCode(&rng));
    w.Element("established", text.Date());
    const int members = static_cast<int>(rng.NextZipf(60, 0.5)) + 1;
    for (int m = 0; m < members; ++m) {
      w.Open("members", {{"type", rng.NextBool(0.8) ? "member"
                                                    : "observer"},
                         {"country", CountryCode(&rng)}});
      w.Close();
    }
    w.Close();  // organization
  }
  w.Close();
  return w.Finish();
}

}  // namespace natix
