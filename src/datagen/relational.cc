#include <cstdio>

#include "common/rng.h"
#include "datagen/generator.h"
#include "datagen/text.h"
#include "datagen/xml_writer.h"

namespace natix {

// partsupp.xml profile: the TPC-H PARTSUPP relation dumped as XML -- a
// root with one flat <T> tuple element per row, five scalar columns, the
// last a long comment string. Original: 2242KB, 96005 nodes
// (=> ~8700 rows at 11 nodes per row).
std::string GeneratePartsupp(uint64_t seed, double scale) {
  Rng rng(seed ^ 0x9a6757);
  TextGenerator text(&rng);
  XmlWriter w;
  const int rows = static_cast<int>(8727 * scale + 0.5);
  w.Open("partsupp");
  for (int r = 0; r < rows; ++r) {
    w.Open("T");
    w.Element("PS_PARTKEY", std::to_string(r / 4 + 1));
    w.Element("PS_SUPPKEY", text.Number(1, 1000));
    w.Element("PS_AVAILQTY", text.Number(1, 9999));
    w.Element("PS_SUPPLYCOST", text.Number(100, 99999));
    // TPC-H ps_comment averages ~125 characters.
    w.Element("PS_COMMENT", text.Words(static_cast<int>(
                                rng.NextInRange(14, 28))));
    w.Close();
  }
  w.Close();
  return w.Finish();
}

// orders.xml profile: the TPC-H ORDERS relation as XML -- one <T> per
// row, nine scalar columns. Original: 5379KB, 300005 nodes
// (=> ~15800 rows at 19 nodes per row).
std::string GenerateOrders(uint64_t seed, double scale) {
  Rng rng(seed ^ 0x0bde5);
  TextGenerator text(&rng);
  XmlWriter w;
  const int rows = static_cast<int>(15789 * scale + 0.5);
  static constexpr std::string_view kStatus[] = {"O", "F", "P"};
  static constexpr std::string_view kPriority[] = {
      "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"};
  w.Open("orders");
  for (int r = 0; r < rows; ++r) {
    w.Open("T");
    w.Element("O_ORDERKEY", std::to_string(r + 1));
    w.Element("O_CUSTKEY", text.Number(1, 15000));
    w.Element("O_ORDERSTATUS", kStatus[rng.NextBounded(3)]);
    w.Element("O_TOTALPRICE", text.Number(1000, 400000) + "." +
                                  text.Number(10, 99));
    w.Element("O_ORDERDATE", text.Date());
    w.Element("O_ORDERPRIORITY", kPriority[rng.NextBounded(5)]);
    char clerk[20];
    std::snprintf(clerk, sizeof(clerk), "Clerk#%09d",
                  static_cast<int>(rng.NextInRange(1, 1000)));
    w.Element("O_CLERK", clerk);
    w.Element("O_SHIPPRIORITY", "0");
    // TPC-H o_comment averages ~49 characters.
    w.Element("O_COMMENT",
              text.Words(static_cast<int>(rng.NextInRange(5, 12))));
    w.Close();
  }
  w.Close();
  return w.Finish();
}

}  // namespace natix
