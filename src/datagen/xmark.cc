#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/generator.h"
#include "datagen/text.h"
#include "datagen/xml_writer.h"

namespace natix {

namespace {

// XMark auction-site generator, modeled on the XMark DTD (Schmidt et al.,
// VLDB 2002). Scale 1.0 corresponds to the paper's XMark scale factor 0.1
// document (xmark0p1.xml: 11670KB, 549213 nodes). The element vocabulary
// covers everything the XPathMark queries Q1-Q7 touch: regions with
// per-continent item lists, closed auctions with
// annotation/description/parlist/listitem/text/keyword chains, and mail
// elements inside item mailboxes.
class XmarkGenerator {
 public:
  XmarkGenerator(uint64_t seed, double scale)
      : rng_(seed ^ 0x3a41c), text_(&rng_), scale_(scale) {}

  std::string Generate() {
    items_ = Scaled(3260);
    persons_ = Scaled(3830);
    open_auctions_ = Scaled(1800);
    closed_auctions_ = Scaled(1460);
    categories_ = Scaled(150);

    w_.Open("site");
    Regions();
    Categories();
    Catgraph();
    People();
    OpenAuctions();
    ClosedAuctions();
    w_.Close();
    return w_.Finish();
  }

 private:
  int Scaled(int base) const {
    const int v = static_cast<int>(base * scale_ + 0.5);
    return v < 1 ? 1 : v;
  }

  std::string ItemId(int i) const { return "item" + std::to_string(i); }
  std::string PersonId(int i) const { return "person" + std::to_string(i); }
  std::string CategoryId(int i) const {
    return "category" + std::to_string(i);
  }

  std::string RandomItemRef() { return ItemId(Bounded(items_)); }
  std::string RandomPersonRef() { return PersonId(Bounded(persons_)); }
  std::string RandomCategoryRef() { return CategoryId(Bounded(categories_)); }
  int Bounded(int n) { return static_cast<int>(rng_.NextBounded(n)); }

  // <text> mixed content with inline keyword/bold/emph elements; the
  // keyword elements are what //keyword and Q2/Q4/Q6 navigate to.
  void MixedText() {
    w_.Open("text");
    const int runs = static_cast<int>(rng_.NextInRange(2, 5));
    for (int r = 0; r < runs; ++r) {
      w_.Text(text_.Words(static_cast<int>(rng_.NextInRange(6, 20))) + " ");
      const double dice = rng_.NextDouble();
      if (dice < 0.45) {
        w_.Element("keyword", text_.Words(2));
      } else if (dice < 0.65) {
        w_.Element("bold", text_.Words(2));
      } else if (dice < 0.8) {
        w_.Element("emph", text_.Words(2));
      }
    }
    w_.Text(text_.Words(static_cast<int>(rng_.NextInRange(2, 8))));
    w_.Close();
  }

  // description := text | parlist; parlist nests listitems which contain
  // text (with keywords) or a deeper parlist (Q2: .../annotation/
  // description/parlist/listitem/text/keyword; Q4/Q6: keyword under
  // listitem at any depth).
  void Description(int depth) {
    w_.Open("description");
    if (depth > 0 && rng_.NextBool(0.55)) {
      Parlist(depth);
    } else {
      MixedText();
    }
    w_.Close();
  }

  void Parlist(int depth) {
    w_.Open("parlist");
    const int items = static_cast<int>(rng_.NextInRange(1, 4));
    for (int i = 0; i < items; ++i) {
      w_.Open("listitem");
      if (depth > 1 && rng_.NextBool(0.2)) {
        Parlist(depth - 1);
      } else {
        MixedText();
      }
      w_.Close();
    }
    w_.Close();
  }

  void Regions() {
    // Continent shares follow the XMark generator.
    static constexpr struct {
      std::string_view name;
      double share;
    } kRegions[] = {
        {"africa", 0.025},    {"asia", 0.10},     {"australia", 0.10},
        {"europe", 0.30},     {"namerica", 0.425}, {"samerica", 0.05},
    };
    w_.Open("regions");
    int next_item = 0;
    for (const auto& region : kRegions) {
      w_.Open(region.name);
      int count = static_cast<int>(items_ * region.share + 0.5);
      if (&region == &kRegions[5]) count = items_ - next_item;  // remainder
      for (int i = 0; i < count && next_item < items_; ++i) {
        Item(next_item++);
      }
      w_.Close();
    }
    w_.Close();
  }

  void Item(int id) {
    if (rng_.NextBool(0.1)) {
      w_.Open("item", {{"id", ItemId(id)}, {"featured", "yes"}});
    } else {
      w_.Open("item", {{"id", ItemId(id)}});
    }
    w_.Element("location", rng_.NextBool(0.6) ? "United States"
                                              : text_.Sentence(1, 2));
    w_.Element("quantity", text_.Number(1, 10));
    w_.Element("name", text_.Sentence(2, 4));
    w_.Open("payment");
    w_.Text("Creditcard");
    w_.Close();
    Description(2);
    w_.Open("shipping");
    w_.Text("Will ship internationally");
    w_.Close();
    const int cats = static_cast<int>(rng_.NextInRange(1, 3));
    for (int c = 0; c < cats; ++c) {
      w_.Open("incategory", {{"category", RandomCategoryRef()}});
      w_.Close();
    }
    w_.Open("mailbox");
    const int mails = static_cast<int>(rng_.NextZipf(6, 0.5));
    for (int m = 0; m < mails; ++m) {
      w_.Open("mail");
      w_.Element("from", text_.PersonName());
      w_.Element("to", text_.PersonName());
      w_.Element("date", text_.Date());
      MixedText();
      w_.Close();
    }
    w_.Close();  // mailbox
    w_.Close();  // item
  }

  void Categories() {
    w_.Open("categories");
    for (int c = 0; c < categories_; ++c) {
      w_.Open("category", {{"id", CategoryId(c)}});
      w_.Element("name", text_.Sentence(1, 3));
      Description(1);
      w_.Close();
    }
    w_.Close();
  }

  void Catgraph() {
    w_.Open("catgraph");
    for (int e = 0; e < categories_; ++e) {
      w_.Open("edge", {{"from", RandomCategoryRef()},
                       {"to", RandomCategoryRef()}});
      w_.Close();
    }
    w_.Close();
  }

  void People() {
    w_.Open("people");
    for (int p = 0; p < persons_; ++p) {
      w_.Open("person", {{"id", PersonId(p)}});
      w_.Element("name", text_.PersonName());
      w_.Element("emailaddress",
                 "mailto:" + text_.Words(1) + "@" + text_.Words(1) + ".com");
      if (rng_.NextBool(0.5)) {
        w_.Element("phone", "+" + text_.Number(1, 99) + " (" +
                                text_.Number(10, 999) + ") " +
                                text_.Number(1000000, 99999999));
      }
      if (rng_.NextBool(0.5)) {
        w_.Open("address");
        w_.Element("street", text_.Number(1, 99) + " " + text_.Words(1) +
                                 " St");
        w_.Element("city", text_.Sentence(1, 1));
        w_.Element("country", "United States");
        w_.Element("zipcode", text_.Number(10000, 99999));
        w_.Close();
      }
      if (rng_.NextBool(0.3)) {
        w_.Element("homepage", "http://www." + text_.Words(1) + ".com/~" +
                                   text_.Words(1));
      }
      if (rng_.NextBool(0.4)) {
        w_.Element("creditcard",
                   text_.Number(1000, 9999) + " " + text_.Number(1000, 9999) +
                       " " + text_.Number(1000, 9999) + " " +
                       text_.Number(1000, 9999));
      }
      if (rng_.NextBool(0.7)) {
        w_.Open("profile", {{"income", text_.Number(9000, 120000) + ".00"}});
        const int interests = static_cast<int>(rng_.NextZipf(4, 0.5));
        for (int i = 0; i < interests; ++i) {
          w_.Open("interest", {{"category", RandomCategoryRef()}});
          w_.Close();
        }
        if (rng_.NextBool(0.5)) {
          w_.Open("education");
          w_.Text(rng_.NextBool() ? "Graduate School" : "College");
          w_.Close();
        }
        if (rng_.NextBool(0.5)) {
          w_.Element("gender", rng_.NextBool() ? "male" : "female");
        }
        w_.Element("business", rng_.NextBool() ? "Yes" : "No");
        if (rng_.NextBool(0.5)) {
          w_.Element("age", text_.Number(18, 90));
        }
        w_.Close();  // profile
      }
      if (rng_.NextBool(0.4)) {
        w_.Open("watches");
        const int watches = static_cast<int>(rng_.NextZipf(5, 0.5)) + 1;
        for (int i = 0; i < watches; ++i) {
          w_.Open("watch",
                  {{"open_auction",
                    "open_auction" + std::to_string(Bounded(open_auctions_))}});
          w_.Close();
        }
        w_.Close();
      }
      w_.Close();  // person
    }
    w_.Close();  // people
  }

  void Annotation() {
    w_.Open("annotation");
    w_.Open("author", {{"person", RandomPersonRef()}});
    w_.Close();
    Description(2);
    w_.Open("happiness");
    w_.Text(text_.Number(1, 10));
    w_.Close();
    w_.Close();
  }

  void OpenAuctions() {
    w_.Open("open_auctions");
    for (int a = 0; a < open_auctions_; ++a) {
      w_.Open("open_auction", {{"id", "open_auction" + std::to_string(a)}});
      w_.Element("initial", text_.Number(1, 300) + "." + text_.Number(10, 99));
      if (rng_.NextBool(0.4)) {
        w_.Element("reserve", text_.Number(50, 500) + ".00");
      }
      const int bidders = static_cast<int>(rng_.NextZipf(6, 0.4));
      for (int b = 0; b < bidders; ++b) {
        w_.Open("bidder");
        w_.Element("date", text_.Date());
        w_.Element("time", text_.Number(10, 23) + ":" +
                               text_.Number(10, 59) + ":" +
                               text_.Number(10, 59));
        w_.Open("personref", {{"person", RandomPersonRef()}});
        w_.Close();
        w_.Element("increase", text_.Number(1, 30) + ".00");
        w_.Close();
      }
      w_.Element("current", text_.Number(10, 1000) + ".00");
      if (rng_.NextBool(0.3)) w_.Element("privacy", "Yes");
      w_.Open("itemref", {{"item", RandomItemRef()}});
      w_.Close();
      w_.Open("seller", {{"person", RandomPersonRef()}});
      w_.Close();
      Annotation();
      w_.Element("quantity", text_.Number(1, 10));
      w_.Element("type", rng_.NextBool(0.7) ? "Regular" : "Featured");
      w_.Open("interval");
      w_.Element("start", text_.Date());
      w_.Element("end", text_.Date());
      w_.Close();
      w_.Close();  // open_auction
    }
    w_.Close();
  }

  void ClosedAuctions() {
    w_.Open("closed_auctions");
    for (int a = 0; a < closed_auctions_; ++a) {
      w_.Open("closed_auction");
      w_.Open("seller", {{"person", RandomPersonRef()}});
      w_.Close();
      w_.Open("buyer", {{"person", RandomPersonRef()}});
      w_.Close();
      w_.Open("itemref", {{"item", RandomItemRef()}});
      w_.Close();
      w_.Element("price", text_.Number(10, 1000) + ".00");
      w_.Element("date", text_.Date());
      w_.Element("quantity", text_.Number(1, 10));
      w_.Element("type", rng_.NextBool(0.7) ? "Regular" : "Featured");
      Annotation();
      w_.Close();  // closed_auction
    }
    w_.Close();
  }

  Rng rng_;
  TextGenerator text_;
  XmlWriter w_;
  double scale_;
  int items_ = 0;
  int persons_ = 0;
  int open_auctions_ = 0;
  int closed_auctions_ = 0;
  int categories_ = 0;
};

}  // namespace

std::string GenerateXmark(uint64_t seed, double scale) {
  return XmarkGenerator(seed, scale).Generate();
}

}  // namespace natix
