#include <cstdio>

#include "common/rng.h"
#include "datagen/generator.h"
#include "datagen/text.h"
#include "datagen/xml_writer.h"

namespace natix {

// uwm.xml profile: the University of Wisconsin-Milwaukee course catalog --
// very many small, shallow course_listing records with a section list.
// Original: 2338KB, 189542 nodes. Node budget per listing is ~30, so
// ~6300 listings at scale 1.
std::string GenerateUwm(uint64_t seed, double scale) {
  Rng rng(seed ^ 0x0441);
  TextGenerator text(&rng);
  XmlWriter w;
  const int listings = static_cast<int>(4700 * scale + 0.5);
  static constexpr std::string_view kLevels[] = {"U", "G", "U/G"};
  w.Open("root");
  for (int i = 0; i < listings; ++i) {
    w.Open("course_listing");
    char course[16];
    std::snprintf(course, sizeof(course), "%03d-%03d",
                  static_cast<int>(rng.NextInRange(100, 999)),
                  static_cast<int>(rng.NextInRange(100, 999)));
    w.Element("course", course);
    w.Open("note");
    w.Close();
    w.Element("title", text.Sentence(2, 6));
    w.Element("credits", text.Number(1, 6));
    w.Element("level", kLevels[rng.NextBounded(3)]);
    if (rng.NextBool(0.4)) {
      w.Element("restrictions", text.Sentence(4, 10));
    }
    w.Open("sections");
    const int sections = static_cast<int>(rng.NextInRange(1, 4));
    for (int s = 0; s < sections; ++s) {
      w.Open("section_listing");
      w.Element("section_note", text.Words(2));
      w.Element("section", std::to_string(s + 1));
      if (rng.NextBool(0.7)) {
        w.Open("hours");
        w.Element("start", text.Number(8, 16) + ":00");
        w.Element("end", text.Number(9, 18) + ":50");
        w.Close();
      }
      if (rng.NextBool(0.8)) {
        w.Element("days", rng.NextBool() ? "MW" : "TR");
      }
      if (rng.NextBool(0.6)) {
        w.Element("instructor", text.PersonName());
      }
      w.Close();  // section_listing
    }
    w.Close();  // sections
    w.Close();  // course_listing
  }
  w.Close();
  return w.Finish();
}

}  // namespace natix
