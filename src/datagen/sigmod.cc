#include <cstdio>

#include "common/rng.h"
#include "datagen/generator.h"
#include "datagen/text.h"
#include "datagen/xml_writer.h"

namespace natix {

// SigmodRecord.xml profile: a shallow bibliography. 67 volumes' worth of
// issues, each with a list of articles; each article has a title, page
// numbers and an author list whose entries carry a "position" attribute.
// Original: 477KB, 42054 nodes.
std::string GenerateSigmodRecord(uint64_t seed, double scale) {
  Rng rng(seed ^ 0x5160d);
  TextGenerator text(&rng);
  XmlWriter w;
  const int issues = static_cast<int>(119 * scale + 0.5);
  w.Open("SigmodRecord");
  for (int i = 0; i < issues; ++i) {
    w.Open("issue");
    w.Element("volume", text.Number(11, 30));
    w.Element("number", text.Number(1, 4));
    w.Open("articles");
    const int articles = static_cast<int>(rng.NextInRange(10, 35));
    for (int a = 0; a < articles; ++a) {
      w.Open("article");
      w.Element("title", text.Sentence(4, 12));
      const int init_page = static_cast<int>(rng.NextInRange(1, 120));
      w.Element("initPage", std::to_string(init_page));
      w.Element("endPage",
                std::to_string(init_page +
                               static_cast<int>(rng.NextInRange(2, 30))));
      w.Open("authors");
      const int authors = static_cast<int>(rng.NextInRange(1, 4));
      for (int p = 0; p < authors; ++p) {
        char pos[16];
        std::snprintf(pos, sizeof(pos), "%02d", p);
        w.Open("author", {{"position", std::string_view(pos)}});
        w.Text(text.PersonName());
        w.Close();
      }
      w.Close();  // authors
      w.Close();  // article
    }
    w.Close();  // articles
    w.Close();  // issue
  }
  w.Close();
  return w.Finish();
}

}  // namespace natix
