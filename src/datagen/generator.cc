#include "datagen/generator.h"

namespace natix {

const std::vector<GeneratorInfo>& DocumentGenerators() {
  static const std::vector<GeneratorInfo>& generators =
      *new std::vector<GeneratorInfo>{
          {"sigmod", "SigmodRecord.xml",
           "shallow bibliography records (issues/articles/authors)",
           &GenerateSigmodRecord, 42054, 477},
          {"mondial", "mondial-3.0.xml",
           "nested geographic data (countries/provinces/cities, "
           "attribute-heavy organizations)",
           &GenerateMondial, 152218, 1785},
          {"partsupp", "partsupp.xml",
           "TPC-H PARTSUPP relation as flat XML tuples", &GeneratePartsupp,
           96005, 2242},
          {"uwm", "uwm.xml",
           "university course catalog (many small shallow records)",
           &GenerateUwm, 189542, 2338},
          {"orders", "orders.xml",
           "TPC-H ORDERS relation as flat XML tuples", &GenerateOrders,
           300005, 5379},
          {"xmark", "xmark0p1.xml",
           "XMark auction site (scale factor 0.1), XPathMark-compatible",
           &GenerateXmark, 549213, 11670},
      };
  return generators;
}

const GeneratorInfo* FindGenerator(std::string_view name) {
  for (const GeneratorInfo& g : DocumentGenerators()) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

Result<std::string> GenerateDocument(std::string_view name, uint64_t seed,
                                     double scale) {
  const GeneratorInfo* g = FindGenerator(name);
  if (g == nullptr) {
    return Status::NotFound("unknown document generator: " +
                            std::string(name));
  }
  return g->generate(seed, scale);
}

}  // namespace natix
