#ifndef NATIX_DATAGEN_TEXT_H_
#define NATIX_DATAGEN_TEXT_H_

#include <string>

#include "common/rng.h"

namespace natix {

/// Shared word-salad text generation for the document generators.
/// Draws from a fixed vocabulary with Zipf-skewed ranks, mimicking the
/// natural-language text (Shakespeare excerpts) the original XMark
/// generator embeds.
class TextGenerator {
 public:
  explicit TextGenerator(Rng* rng) : rng_(rng) {}

  /// One random word.
  std::string_view Word();

  /// `n` space-separated words.
  std::string Words(int n);

  /// A sentence of `min_words`..`max_words` words, capitalized, with a
  /// trailing period.
  std::string Sentence(int min_words, int max_words);

  /// A personal name like "Umeshwar Kossmann".
  std::string PersonName();

  /// A date like "07/13/1998".
  std::string Date();

  /// An integer rendered as a string, uniform in [lo, hi].
  std::string Number(int64_t lo, int64_t hi);

 private:
  Rng* rng_;
};

}  // namespace natix

#endif  // NATIX_DATAGEN_TEXT_H_
