#ifndef NATIX_DATAGEN_XML_WRITER_H_
#define NATIX_DATAGEN_XML_WRITER_H_

#include <cassert>
#include <string>
#include <string_view>
#include <vector>

#include "xml/document.h"

namespace natix {

/// Minimal streaming XML writer used by the document generators.
/// Content is escaped; element nesting is tracked so Close() needs no
/// arguments. Produces compact output (no insignificant whitespace), which
/// keeps the parser -> importer pipeline free of whitespace text nodes.
class XmlWriter {
 public:
  XmlWriter() = default;

  /// Opens <tag>.
  void Open(std::string_view tag) {
    out_ += '<';
    out_ += tag;
    out_ += '>';
    open_.emplace_back(tag);
  }

  /// Opens <tag attr1="v1" ...>.
  void Open(std::string_view tag,
            std::initializer_list<std::pair<std::string_view,
                                            std::string_view>> attrs) {
    out_ += '<';
    out_ += tag;
    for (const auto& [name, value] : attrs) {
      out_ += ' ';
      out_ += name;
      out_ += "=\"";
      out_ += EscapeXmlAttribute(value);
      out_ += '"';
    }
    out_ += '>';
    open_.emplace_back(tag);
  }

  /// Closes the innermost open element.
  void Close() {
    assert(!open_.empty());
    out_ += "</";
    out_ += open_.back();
    out_ += '>';
    open_.pop_back();
  }

  /// Appends escaped character data.
  void Text(std::string_view text) { out_ += EscapeXmlText(text); }

  /// <tag>text</tag> in one go.
  void Element(std::string_view tag, std::string_view text) {
    Open(tag);
    Text(text);
    Close();
  }

  /// <tag/> (empty element).
  void EmptyElement(std::string_view tag) {
    out_ += '<';
    out_ += tag;
    out_ += "/>";
  }

  /// Returns the document; all elements must be closed.
  std::string Finish() {
    assert(open_.empty());
    return std::move(out_);
  }

 private:
  std::string out_;
  std::vector<std::string> open_;
};

}  // namespace natix

#endif  // NATIX_DATAGEN_XML_WRITER_H_
