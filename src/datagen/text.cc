#include "datagen/text.h"

#include <cstdio>

namespace natix {

namespace {

constexpr std::string_view kVocabulary[] = {
    "the",      "of",        "and",       "to",        "a",
    "in",       "that",      "is",        "was",       "he",
    "for",      "it",        "with",      "as",        "his",
    "on",       "be",        "at",        "by",        "had",
    "not",      "are",       "but",       "from",      "or",
    "have",     "an",        "they",      "which",     "one",
    "you",      "were",      "her",       "all",       "she",
    "there",    "would",     "their",     "we",        "him",
    "been",     "has",       "when",      "who",       "will",
    "more",     "no",        "if",        "out",       "so",
    "said",     "what",      "up",        "its",       "about",
    "into",     "than",      "them",      "can",       "only",
    "other",    "new",       "some",      "could",     "time",
    "these",    "two",       "may",       "then",      "do",
    "first",    "any",       "my",        "now",       "such",
    "like",     "our",       "over",      "man",       "me",
    "even",     "most",      "made",      "after",     "also",
    "did",      "many",      "before",    "must",      "through",
    "years",    "where",     "much",      "your",      "way",
    "well",     "down",      "should",    "because",   "each",
    "just",     "those",     "people",    "how",       "too",
    "little",   "state",     "good",      "very",      "make",
    "world",    "still",     "own",       "see",       "men",
    "work",     "long",      "get",       "here",      "between",
    "both",     "life",      "being",     "under",     "never",
    "day",      "same",      "another",   "know",      "while",
    "last",     "might",     "us",        "great",     "old",
    "year",     "off",       "come",      "since",     "against",
    "go",       "came",      "right",     "used",      "take",
    "three",    "states",    "himself",   "few",       "house",
    "use",      "during",    "without",   "again",     "place",
    "american", "around",    "however",   "home",      "small",
    "found",    "mrs",       "thought",   "went",      "say",
    "part",     "once",      "general",   "high",      "upon",
    "school",   "every",     "don",       "does",      "got",
    "united",   "left",      "number",    "course",    "war",
    "until",    "always",    "away",      "something", "fact",
    "though",   "water",     "less",      "public",    "put",
    "thing",    "almost",    "hand",      "enough",    "far",
    "took",     "head",      "yet",       "government", "system",
};
constexpr size_t kVocabularySize =
    sizeof(kVocabulary) / sizeof(kVocabulary[0]);

constexpr std::string_view kFirstNames[] = {
    "Umeshwar", "Guido",  "Carl",    "Julia",   "Sven",    "Till",
    "Robert",   "Alex",   "Maria",   "Ioana",   "Ralph",   "Florian",
    "Martin",   "Albert", "Michael", "Mario",   "Sukhamay", "Jayadev",
    "Joseph",   "Oded",   "Rajesh",  "Manolis", "Jeffrey", "Kevin",
    "Roberta",  "Vanja",  "Jim",     "George",  "Guy",     "Fatma",
};
constexpr std::string_view kLastNames[] = {
    "Kossmann",  "Moerkotte", "Kanne",    "Neumann",  "Helmer",
    "Westmann",  "Schiele",   "Boehm",    "Seeger",   "Manolescu",
    "Busse",     "Waas",      "Kersten",  "Schmidt",  "Carey",
    "Kundu",     "Misra",     "Lukes",    "Shmueli",  "Bordawekar",
    "Tsangaris", "Naughton",  "Beyer",    "Cochrane", "Josifovski",
    "Lohman",    "Pirahesh",  "Franceschet", "Schkolnick", "Fiebig",
};

}  // namespace

std::string_view TextGenerator::Word() {
  return kVocabulary[rng_->NextZipf(kVocabularySize, 0.8)];
}

std::string TextGenerator::Words(int n) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += Word();
  }
  return out;
}

std::string TextGenerator::Sentence(int min_words, int max_words) {
  const int n =
      static_cast<int>(rng_->NextInRange(min_words, max_words));
  std::string out = Words(n);
  if (!out.empty()) {
    out[0] = static_cast<char>(out[0] - 'a' + 'A');
    out += '.';
  }
  return out;
}

std::string TextGenerator::PersonName() {
  const size_t nf = sizeof(kFirstNames) / sizeof(kFirstNames[0]);
  const size_t nl = sizeof(kLastNames) / sizeof(kLastNames[0]);
  std::string out(kFirstNames[rng_->NextBounded(nf)]);
  out += ' ';
  out += kLastNames[rng_->NextBounded(nl)];
  return out;
}

std::string TextGenerator::Date() {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d/%02d/%04d",
                static_cast<int>(rng_->NextInRange(1, 12)),
                static_cast<int>(rng_->NextInRange(1, 28)),
                static_cast<int>(rng_->NextInRange(1996, 2002)));
  return buf;
}

std::string TextGenerator::Number(int64_t lo, int64_t hi) {
  return std::to_string(rng_->NextInRange(lo, hi));
}

}  // namespace natix
