#ifndef NATIX_DATAGEN_GENERATOR_H_
#define NATIX_DATAGEN_GENERATOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace natix {

/// A synthetic XML document generator.
///
/// The paper evaluates on five documents from the University of
/// Washington XML repository plus an XMark (scale 0.1) document. Those
/// exact files are not redistributable here, so each generator produces a
/// deterministic document with the same *structural profile* (element
/// vocabulary, fan-out and depth regime, text-length distribution, node
/// count of the same order) — which is all the partitioning algorithms
/// and the navigation-cost experiments observe.
struct GeneratorInfo {
  /// Registry key: "sigmod", "mondial", "partsupp", "uwm", "orders",
  /// "xmark".
  std::string_view name;
  /// File name used in the paper's tables, e.g. "SigmodRecord.xml".
  std::string_view file_name;
  std::string_view description;
  /// Produces the XML text. `scale` linearly scales entity counts;
  /// scale = 1.0 approximates the paper's document sizes.
  std::string (*generate)(uint64_t seed, double scale);
  /// Node count of the original document (Table 1), for reference.
  size_t paper_nodes;
  /// File size of the original document in KB (Table 1).
  size_t paper_kb;
};

/// All generators, in the paper's Table 1 row order.
const std::vector<GeneratorInfo>& DocumentGenerators();

/// Finds a generator by name; nullptr if unknown.
const GeneratorInfo* FindGenerator(std::string_view name);

/// Generates a document by generator name.
Result<std::string> GenerateDocument(std::string_view name, uint64_t seed,
                                     double scale);

/// Individual generators (also reachable via the registry).
std::string GenerateSigmodRecord(uint64_t seed, double scale);
std::string GenerateMondial(uint64_t seed, double scale);
std::string GeneratePartsupp(uint64_t seed, double scale);
std::string GenerateUwm(uint64_t seed, double scale);
std::string GenerateOrders(uint64_t seed, double scale);
std::string GenerateXmark(uint64_t seed, double scale);

}  // namespace natix

#endif  // NATIX_DATAGEN_GENERATOR_H_
