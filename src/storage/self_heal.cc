#include "storage/self_heal.h"

#include <cstring>
#include <string>

#include "storage/record_manager.h"

namespace natix {

Result<std::vector<uint8_t>> SelfHealingPageSource::ReadPage(
    uint32_t page_id) const {
  Result<std::vector<uint8_t>> first = primary_->ReadPage(page_id);
  if (first.ok() || (page_id & RecordManager::kJumboPageBit) != 0) {
    return first;
  }
  // Persistent transient errors (retries exhausted inside the primary)
  // are not corruption; healing cannot help a device that will not read.
  if (first.status().code() == StatusCode::kUnavailable) {
    return first;
  }
  if (pool_ != nullptr && pool_->Quarantine(page_id)) {
    ++stats_.quarantines;
  }
  const Status repaired = RepairPage(page_id, first.status().message());
  if (!repaired.ok()) {
    ++stats_.repair_failures;
    const Status loud = Status::Internal(
        "page " + std::to_string(page_id) + " is unrecoverable: " +
        first.status().message() + "; repair failed: " + repaired.message());
    if (on_unrecoverable_) on_unrecoverable_(loud);
    return loud;
  }
  // The repair only counts if the rewritten cell verifies end to end.
  Result<std::vector<uint8_t>> retry = primary_->ReadPage(page_id);
  if (!retry.ok()) {
    ++stats_.repair_failures;
    const Status loud = Status::Internal(
        "page " + std::to_string(page_id) +
        " still unreadable after repair: " + retry.status().message());
    if (on_unrecoverable_) on_unrecoverable_(loud);
    return loud;
  }
  ++stats_.repairs;
  return retry;
}

Status SelfHealingPageSource::RepairPage(uint32_t page_id,
                                         const std::string& why) const {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "no clean source: the store is not durability-backed (" + why + ")");
  }
  if (scratch_ == nullptr) {
    NATIX_ASSIGN_OR_RETURN(NatixStore store,
                           NatixStore::RecoverForAudit(wal_));
    scratch_ = std::make_unique<NatixStore>(std::move(store));
  }
  if (page_id >= scratch_->regular_page_count()) {
    return Status::OutOfRange("the recovered store has no page " +
                              std::to_string(page_id));
  }
  NATIX_ASSIGN_OR_RETURN(const std::vector<uint8_t> image,
                         scratch_->page_provider()->ReadPage(page_id));
  if (image.size() != scratch_->page_size()) {
    return Status::Internal("recovered image of page " +
                            std::to_string(page_id) + " has size " +
                            std::to_string(image.size()));
  }
  const size_t cell_size = primary_->page_size() + kPageCellOverhead;
  const uint64_t offset = static_cast<uint64_t>(page_id) * cell_size;
  // Stamp the repaired cell one epoch past the damaged one when the old
  // head stamp survived, so a second interruption still reads as torn;
  // fall back to the recovered store's flush epoch otherwise.
  uint32_t epoch = static_cast<uint32_t>(scratch_->version()) + 1;
  uint8_t head[8];
  if (primary_->file()->ReadAt(offset, head, sizeof(head)).ok()) {
    uint32_t magic, old_epoch;
    std::memcpy(&magic, head, 4);
    std::memcpy(&old_epoch, head + 4, 4);
    if (magic == kPageCellMagic && old_epoch != 0) epoch = old_epoch + 1;
  }
  if (epoch == 0) epoch = 1;
  const std::vector<uint8_t> cell =
      SealPageCell(epoch, image.data(), image.size());
  NATIX_RETURN_NOT_OK(
      primary_->file()->WriteAt(offset, cell.data(), cell.size()));
  return primary_->file()->Sync();
}

IntegrityStats SelfHealingPageSource::stats() const {
  IntegrityStats merged = primary_->stats();
  merged.quarantines += stats_.quarantines;
  merged.repairs += stats_.repairs;
  merged.repair_failures += stats_.repair_failures;
  return merged;
}

}  // namespace natix
