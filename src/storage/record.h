#ifndef NATIX_STORAGE_RECORD_H_
#define NATIX_STORAGE_RECORD_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "tree/tree.h"

namespace natix {

/// Stable logical identifier of a record. The RecordManager maps it to a
/// physical (page, slot) address through an indirection table, so the id
/// survives in-place updates, record splits and page-to-page relocation
/// -- the property that lets proxies and the store's partition table keep
/// pointing at a record while the space below it is reorganized.
struct RecordId {
  uint32_t value = 0xFFFFFFFFu;

  bool valid() const { return value != 0xFFFFFFFFu; }
  friend bool operator==(const RecordId&, const RecordId&) = default;
};

/// Sentinel partition index ("no partition").
inline constexpr uint32_t kNoPartition = 0xFFFFFFFFu;

/// Link sentinels used by the in-record topology. A link field either
/// holds the in-record index of the neighbour, kEdgeNone when the
/// neighbour does not exist at all, or kEdgeRemote when it exists but
/// lives in another record -- in which case a proxy entry keyed by
/// (node index, edge kind) names the target.
inline constexpr int32_t kEdgeNone = -1;
inline constexpr int32_t kEdgeRemote = -2;

/// Which outgoing edge of a node a proxy stands in for. Parent edges
/// never need proxies: every node whose parent is outside the record is
/// an interval member, and all interval members share one parent, named
/// by the record's single aggregate entry (paper Sec. 2 helper nodes).
enum class RecordEdge : uint8_t {
  kFirstChild = 0,
  kNextSibling = 1,
  kPrevSibling = 2,
};

/// A proxy node: stands in for a partition-crossing child/sibling edge
/// and names the target node's home record. The partition/record/slot
/// triple is a placement hint -- correct as of the last time this record
/// was encoded; splits elsewhere can move the target, so navigation
/// verifies against the store's authoritative tables.
struct RecordProxy {
  uint32_t from_index = 0;
  RecordEdge edge = RecordEdge::kFirstChild;
  NodeId target_node = kInvalidNode;
  uint32_t target_partition = kNoPartition;
  RecordId target_record;
  uint32_t target_slot = 0;

  friend bool operator==(const RecordProxy&, const RecordProxy&) = default;
};

/// The aggregate node: the record's single back-pointer to the record
/// holding the parent of its interval members. parent_node is
/// kInvalidNode for the record containing the document root.
struct RecordAggregate {
  NodeId parent_node = kInvalidNode;
  uint32_t parent_partition = kNoPartition;
  RecordId parent_record;
  uint32_t parent_slot = 0;

  friend bool operator==(const RecordAggregate&,
                         const RecordAggregate&) = default;
};

/// Everything the encoder needs to know about one node of the fragment.
/// Link fields hold in-record indices or kEdgeNone / kEdgeRemote.
struct RecordNodeSpec {
  NodeId node = kInvalidNode;
  uint64_t weight = 0;
  int32_t parent = kEdgeNone;
  int32_t first_child = kEdgeNone;
  int32_t next_sibling = kEdgeNone;
  int32_t prev_sibling = kEdgeNone;
  uint8_t kind = 0;
  int32_t label = -1;
  std::string_view content;
  bool overflow = false;
};

/// One node inside a decoded record (tests and debugging; navigation
/// uses the zero-copy RecordView instead).
struct RecordNode {
  NodeId node = kInvalidNode;
  /// In-record index of the parent; kEdgeNone for interval members.
  int32_t parent_in_record = kEdgeNone;
  int32_t first_child = kEdgeNone;
  int32_t next_sibling = kEdgeNone;
  int32_t prev_sibling = kEdgeNone;
  uint64_t weight = 0;
  uint8_t kind = 0;
  int32_t label = -1;
  /// Slot-aligned inline content byte count, or the externalized length
  /// when overflow is set.
  uint32_t content_bytes = 0;
  /// Exact inline content (empty for overflow nodes).
  std::string content;
  /// True if the content lives in an overflow record.
  bool overflow = false;
};

/// Decoded form of a record, for tests and debugging.
struct DecodedRecord {
  std::vector<RecordNode> nodes;
  std::vector<RecordProxy> proxies;
  RecordAggregate aggregate;
  uint32_t proxy_count = 0;
};

/// Record format versions. v2 is the slot-aligned layout below; v3 packs
/// node data entries back to back with varint fields and optional
/// Huffman-compressed content (see ContentCodec). Which one a store
/// *writes* is negotiated per store (StoreOptions::record_format); both
/// are always readable, so a v2 store opens under a v3 binary unchanged.
inline constexpr uint16_t kRecordFormatV2 = 2;
inline constexpr uint16_t kRecordFormatV3 = 3;

/// Serializes one partition's subtree fragment into self-describing
/// record bytes (format version 2 or 3).
///
/// Common layout (little-endian):
///   header (28 bytes):
///     u16 version (= 2 or 3), u16 flags (bit0 = wide topology entries)
///     u32 node_count, u32 proxy_count
///     aggregate: u32 parent_node, u32 parent_partition,
///                u32 parent_record, u32 parent_slot
///   node_count x topology entry, nodes in document order:
///     narrow (16 bytes): u32 node, u16 weight, u16 parent,
///       u16 first_child, u16 next_sibling, u16 prev_sibling,
///       u16 data_offset             (0xFFFF = none, 0xFFFE = remote)
///     wide (28 bytes): the same fields as u32
///       (0xFFFFFFFF = none, 0xFFFFFFFE = remote)
///   proxy_count x proxy entry (20 bytes), sorted by key:
///     u32 key = (from_index << 2) | edge
///     u32 target_node, u32 target_partition, u32 target_record,
///     u32 target_slot
///
/// v2 node data (data_offset counts slot_size-byte slots from the
/// section start):
///     header slot (8 bytes): u8 kind,
///       u8 flags (bit0 = overflow, bits 1-7 = padding byte count),
///       u16 content_slots, u32 label
///     content_slots x slot_size bytes of content (zero padded; the
///     exact length is content_slots * slot_size - padding), or a single
///     8-byte overflow slot holding the externalized content length when
///     flags.overflow is set
///
/// v3 node data (data_offset counts *bytes* from the section start;
/// entries are packed back to back, unaligned and unpadded):
///     u8 meta: bits 0-2 kind, bit 3 overflow, bit 4 compressed
///     varint label_plus1 (0 = unlabeled, i.e. label id -1)
///     overflow:    varint external_len (no content bytes follow)
///     uncompressed: varint raw_len, raw_len content bytes
///     compressed:   varint raw_len, varint enc_len (< raw_len),
///                   enc_len ContentCodec bytes
/// The label id is the store-level label dictionary reference (the store
/// interns every tag name once; records never carry tag strings). The
/// node's *weight* stays the slot-based storage weight of the raw
/// content -- partitioning and the fsck weight invariant are defined on
/// logical slots, v3 only shrinks the physical bytes.
///
/// The v2 slot-aligned data section is exactly slot_size * (partition
/// weight in slots) bytes, matching the paper's weight model; topology,
/// proxies and the aggregate are the "additional metadata needed to
/// maintain the on-disk structures" (Sec. 6.4). The encoder picks the
/// narrow topology width whenever every index, weight and data offset
/// fits 16 bits, keeping the metadata overhead near the v1 format's.
class RecordBuilder {
 public:
  explicit RecordBuilder(uint32_t slot_size = 8,
                         uint16_t format = kRecordFormatV3)
      : slot_size_(slot_size), format_(format) {}

  /// Appends a node. `content` may be empty; when `spec.overflow` is
  /// true the content is replaced by an overflow slot recording
  /// `spec.content.size()` as the externalized length.
  void AddNode(const RecordNodeSpec& spec);

  /// Adds a proxy entry for a partition-crossing edge. Entries may be
  /// added in any order; Build() sorts them by key.
  void AddProxy(const RecordProxy& proxy);

  /// Sets the record's aggregate (parent record back-pointer).
  void SetAggregate(const RecordAggregate& aggregate);

  size_t node_count() const { return nodes_.size(); }

  /// Serialized size of the record so far, in bytes.
  size_t ByteSize() const;

  /// Produces the record bytes. Fails if a link index is out of range
  /// or the slot geometry cannot be represented.
  Result<std::vector<uint8_t>> Build() const;

 private:
  struct PendingNode {
    RecordNodeSpec spec;
    std::string content;
    /// v3 only: the node's packed data entry, built by AddNode so
    /// ByteSize() needs no re-encoding.
    std::vector<uint8_t> entry;
  };

  bool NeedsWide() const;
  size_t DataSlots() const;
  size_t DataBytes() const;

  uint32_t slot_size_;
  uint16_t format_;
  std::vector<PendingNode> nodes_;
  std::vector<RecordProxy> proxies_;
  RecordAggregate aggregate_;
};

/// Zero-copy view over record bytes. Parse() validates the section
/// geometry and every node's data-slot bounds once; the accessors then
/// read straight from the caller's buffer, which must outlive the view.
class RecordView {
 public:
  RecordView() = default;

  static Result<RecordView> Parse(const uint8_t* data, size_t size,
                                  uint32_t slot_size = 8);

  bool valid() const { return data_ != nullptr; }
  uint32_t node_count() const { return node_count_; }
  uint32_t proxy_count() const { return proxy_count_; }
  RecordAggregate aggregate() const;

  NodeId node_id(uint32_t i) const;
  uint64_t weight(uint32_t i) const;
  int32_t parent(uint32_t i) const;
  int32_t first_child(uint32_t i) const;
  int32_t next_sibling(uint32_t i) const;
  int32_t prev_sibling(uint32_t i) const;
  uint8_t kind(uint32_t i) const;
  int32_t label(uint32_t i) const;
  bool overflow(uint32_t i) const;
  /// Logical content slots (ceil(exact length / slot_size)); the weight
  /// model's view of the node regardless of the physical encoding.
  uint32_t content_slots(uint32_t i) const;
  /// Exact inline content (empty for overflow nodes). For a compressed
  /// v3 node the bytes are lazily decoded into a per-view scratch
  /// buffer: the returned view stays valid until the next content()
  /// call on this RecordView, and is empty if the cell does not decode
  /// (call VerifyContent to distinguish corruption from emptiness).
  std::string_view content(uint32_t i) const;
  /// Checks that node i's content payload decodes cleanly. Trivially OK
  /// for v2 and uncompressed v3 nodes (Parse already bounds-checked
  /// them); for compressed v3 cells this runs the full decode, so fsck
  /// and DecodeRecord call it while navigation does not.
  Status VerifyContent(uint32_t i) const;
  /// Slot-aligned inline content byte count, or the externalized length
  /// for overflow nodes.
  uint64_t content_bytes(uint32_t i) const;
  /// Externalized content length (overflow nodes only; 0 otherwise).
  uint64_t overflow_bytes(uint32_t i) const;

  /// The j-th proxy entry (sorted by (from_index, edge)).
  RecordProxy proxy(uint32_t j) const;
  /// Binary-searches for the proxy covering `from_index`'s `edge`.
  std::optional<RecordProxy> FindProxy(uint32_t from_index,
                                       RecordEdge edge) const;
  /// Linear scan for the in-record index of `v`; -1 if absent.
  int32_t IndexOf(NodeId v) const;

 private:
  /// Decoded v3 data-entry header (payload stays in the record buffer).
  struct V3Entry {
    uint8_t kind = 0;
    bool overflow = false;
    bool compressed = false;
    int32_t label = -1;
    /// Raw content length, or the externalized length for overflow.
    uint64_t raw_len = 0;
    /// Stored payload length (== raw_len when uncompressed).
    uint64_t enc_len = 0;
    const uint8_t* payload = nullptr;
  };

  size_t TopoEntryOff(uint32_t i) const;
  uint32_t TopoField(uint32_t i, uint32_t field) const;
  int32_t TopoLink(uint32_t i, uint32_t field) const;
  const uint8_t* DataSlot(uint32_t i) const;
  V3Entry ParseV3(uint32_t i) const;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  uint32_t slot_size_ = 8;
  bool wide_ = false;
  bool v3_ = false;
  uint32_t node_count_ = 0;
  uint32_t proxy_count_ = 0;
  size_t topo_off_ = 0;
  size_t proxy_off_ = 0;
  size_t data_off_ = 0;
  /// Lazy decompression cache for content(); see the accessor docs.
  mutable std::string scratch_;
  mutable uint32_t scratch_index_ = 0xFFFFFFFFu;
  mutable bool scratch_ok_ = false;
};

/// Parses record bytes into an owning DecodedRecord (tests/debugging).
Result<DecodedRecord> DecodeRecord(const uint8_t* data, size_t size,
                                   uint32_t slot_size = 8);

/// Rewrites the interned-label id of entry `index` without re-encoding
/// anything else -- content cells (including compressed v3 cells) are
/// carried over byte for byte. For v2 the label is a fixed 4-byte field;
/// for v3 the label varint may change width, in which case the data
/// section is shifted and every entry's data offset re-based. Fails with
/// kFailedPrecondition when the shift would overflow the narrow
/// topology's 16-bit offset field (the caller falls back to a full
/// partition re-encode).
Result<std::vector<uint8_t>> RewriteRecordLabel(const uint8_t* data,
                                                size_t size, uint32_t index,
                                                int32_t new_label,
                                                uint32_t slot_size = 8);

/// Removes the given entry indices from a record, in place semantically:
/// surviving entries keep their topology fields and data cells byte for
/// byte (no content decode/re-encode), only indices, data offsets and
/// counts are re-based. Sibling links into the removed set are spliced
/// through it (a survivor whose next_sibling chain dead-ends in a remote
/// link inherits the removed entry's proxy, re-keyed), first_child links
/// follow the removed entry's sibling chain to the first survivor, and
/// proxies from removed entries are dropped. Exactly the transformation
/// a subtree delete applies to the one record that keeps living: the
/// removed set must be closed under in-record descendants (a survivor
/// whose parent is removed is rejected).
Result<std::vector<uint8_t>> RemoveRecordEntries(
    const uint8_t* data, size_t size, const std::vector<uint32_t>& remove,
    uint32_t slot_size = 8);

/// Authoritative placement of a node, for re-stamping stale hints.
struct RecordPlacement {
  uint32_t partition = kNoPartition;
  RecordId record;
  uint32_t slot = 0;
};

/// Re-stamps every proxy's and the aggregate's placement-hint fields
/// (partition / record / slot -- target_node and parent_node stay
/// untouched) from `resolve`, strictly in place: hint fields are fixed
/// width, so the record's size and layout cannot change. `resolve`
/// returns the authoritative placement of a node or false when the node
/// is unknown (such hints are left alone). Returns how many entries were
/// actually rewritten. fsck --fix-hints runs this over every record and
/// reseal-writes the ones that changed.
template <typename Resolver>
size_t PatchPlacementHints(std::vector<uint8_t>* bytes,
                           const Resolver& resolve, uint32_t slot_size = 8);

namespace record_internal {
/// Non-template core of PatchPlacementHints: offsets of the 12
/// hint bytes of the aggregate and of each proxy entry.
Result<std::vector<size_t>> HintFieldOffsets(const uint8_t* data, size_t size,
                                             uint32_t slot_size);
}  // namespace record_internal

template <typename Resolver>
size_t PatchPlacementHints(std::vector<uint8_t>* bytes,
                           const Resolver& resolve, uint32_t slot_size) {
  // Hint layout at each offset o: u32 node at o-4 (aggregate parent_node
  // or proxy target_node), then u32 partition, u32 record, u32 slot.
  Result<std::vector<size_t>> offsets = record_internal::HintFieldOffsets(
      bytes->data(), bytes->size(), slot_size);
  if (!offsets.ok()) return 0;
  size_t patched = 0;
  for (const size_t o : *offsets) {
    uint32_t node;
    std::memcpy(&node, bytes->data() + o - 4, 4);
    if (node == kInvalidNode) continue;
    RecordPlacement placement;
    if (!resolve(static_cast<NodeId>(node), &placement)) continue;
    uint32_t fields[3];
    std::memcpy(fields, bytes->data() + o, 12);
    const uint32_t want[3] = {placement.partition, placement.record.value,
                              placement.slot};
    if (std::memcmp(fields, want, 12) == 0) continue;
    std::memcpy(bytes->data() + o, want, 12);
    ++patched;
  }
  return patched;
}

}  // namespace natix

#endif  // NATIX_STORAGE_RECORD_H_
