#ifndef NATIX_STORAGE_RECORD_H_
#define NATIX_STORAGE_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "tree/tree.h"

namespace natix {

/// Stable logical identifier of a record. The RecordManager maps it to a
/// physical (page, slot) address through an indirection table, so the id
/// survives in-place updates, record splits and page-to-page relocation
/// -- the property that lets proxies and the store's partition table keep
/// pointing at a record while the space below it is reorganized.
struct RecordId {
  uint32_t value = 0xFFFFFFFFu;

  bool valid() const { return value != 0xFFFFFFFFu; }
  friend bool operator==(const RecordId&, const RecordId&) = default;
};

/// One node inside a serialized record.
struct RecordNode {
  /// NodeId in the logical document tree.
  NodeId node = kInvalidNode;
  /// Index of the parent within this record; -1 for partition roots.
  int32_t parent_in_record = -1;
  uint8_t kind = 0;
  int32_t label = -1;
  /// Inline content byte count (0 if none or externalized).
  uint32_t content_bytes = 0;
  /// True if the content lives in an overflow record.
  bool overflow = false;
};

/// Decoded form of a record, for tests and debugging.
struct DecodedRecord {
  std::vector<RecordNode> nodes;
  /// Number of proxy entries (references to cut-away child/sibling
  /// records).
  uint32_t proxy_count = 0;
};

/// Serializes one partition into record bytes.
///
/// Format (little-endian):
///   u32 node_count, u32 proxy_count
///   node_count x structure entry: u32 logical node id, i32 parent index
///   proxy_count x u64 proxy payload (record references of cut children)
///   node_count x slot-aligned node data:
///     header slot (8 bytes): u8 kind, u8 flags (bit0 = overflow),
///                            u16 content_slots, u32 label
///     content_slots x 8 bytes of content (zero padded), or a single
///     8-byte overflow reference slot when flags.overflow is set
///
/// The slot-aligned node data section is exactly
/// 8 * (partition weight in slots) bytes, matching the paper's weight
/// model; the structure and proxy sections are the "additional metadata
/// needed to maintain the on-disk structures" (Sec. 6.4).
class RecordBuilder {
 public:
  explicit RecordBuilder(uint32_t slot_size = 8) : slot_size_(slot_size) {}

  /// Appends a node. `content` may be empty; when `overflow` is true the
  /// content is replaced by an overflow reference slot.
  void AddNode(NodeId node, int32_t parent_in_record, uint8_t kind,
               int32_t label, std::string_view content, bool overflow);

  /// Adds a proxy entry for a cut-away child record.
  void AddProxy(uint64_t record_ref);

  size_t node_count() const { return nodes_.size(); }

  /// Serialized size of the record so far, in bytes.
  size_t ByteSize() const;

  /// Produces the record bytes.
  std::vector<uint8_t> Build() const;

 private:
  struct PendingNode {
    NodeId node;
    int32_t parent_in_record;
    uint8_t kind;
    int32_t label;
    std::string content;
    bool overflow;
  };
  uint32_t slot_size_;
  std::vector<PendingNode> nodes_;
  std::vector<uint64_t> proxies_;
};

/// Parses record bytes produced by RecordBuilder.
Result<DecodedRecord> DecodeRecord(const uint8_t* data, size_t size,
                                   uint32_t slot_size = 8);

}  // namespace natix

#endif  // NATIX_STORAGE_RECORD_H_
