#include "storage/file_backend.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/retry.h"

namespace natix {

namespace {
std::string ErrnoMessage(const std::string& what, int err) {
  return what + ": " + std::strerror(err);
}
}  // namespace

Status MemoryFileBackend::Append(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  disk_->insert(disk_->end(), bytes, bytes + size);
  return Status::OK();
}

Status MemoryFileBackend::ReadAt(uint64_t offset, void* out, size_t size) {
  if (offset > disk_->size() || size > disk_->size() - offset) {
    return Status::OutOfRange("read past end of backend");
  }
  std::memcpy(out, disk_->data() + offset, size);
  return Status::OK();
}

Status MemoryFileBackend::WriteAt(uint64_t offset, const void* data,
                                  size_t size) {
  if (offset + size > disk_->size()) {
    disk_->resize(static_cast<size_t>(offset + size));
  }
  if (size > 0) std::memcpy(disk_->data() + offset, data, size);
  return Status::OK();
}

Status MemoryFileBackend::Truncate(uint64_t size) {
  if (size > disk_->size()) {
    return Status::InvalidArgument("truncate cannot extend the backend");
  }
  disk_->resize(static_cast<size_t>(size));
  return Status::OK();
}

Result<std::unique_ptr<PosixFileBackend>> PosixFileBackend::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::Internal(ErrnoMessage("open " + path, errno));
  }
  return std::unique_ptr<PosixFileBackend>(new PosixFileBackend(fd, path));
}

PosixFileBackend::~PosixFileBackend() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> PosixFileBackend::Size() {
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::Internal(ErrnoMessage("fstat " + path_, errno));
  }
  return static_cast<uint64_t>(st.st_size);
}

namespace {
/// Errnos worth retrying: the device was busy or threw a one-off I/O
/// error. ENOSPC is backpressure (the disk is full until the operator
/// frees space -- retrying is pointless but nothing is broken);
/// everything else (EBADF, ...) is permanent.
bool IsTransientErrno(int err) { return err == EIO || err == EAGAIN; }

/// Maps a permanent errno onto the failure taxonomy.
Status PermanentErrnoStatus(int err, std::string msg) {
  return err == ENOSPC ? Status::ResourceExhausted(std::move(msg))
                       : Status::Internal(std::move(msg));
}
}  // namespace

Status PosixFileBackend::TransferAt(bool write, uint64_t offset, void* buf,
                                    size_t size) {
  uint8_t* bytes = static_cast<uint8_t*>(buf);
  size_t done = 0;
  int transient = 0;
  while (done < size) {
    const ssize_t n =
        write ? ::pwrite(fd_, bytes + done, size - done,
                         static_cast<off_t>(offset + done))
              : ::pread(fd_, bytes + done, size - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (IsTransientErrno(errno) &&
          transient < kDeviceRetryPolicy.max_retries) {
        ++transient_retries_;
        RetryBackoff(kDeviceRetryPolicy, transient++);
        continue;
      }
      const std::string msg = ErrnoMessage(
          (write ? "pwrite " : "pread ") + path_, errno);
      return IsTransientErrno(errno) ? Status::Unavailable(msg)
                                     : PermanentErrnoStatus(errno, msg);
    }
    if (!write && n == 0) {
      return Status::OutOfRange("read past end of " + path_);
    }
    done += static_cast<size_t>(n);
    transient = 0;  // progress resets the retry budget
  }
  return Status::OK();
}

Status PosixFileBackend::Append(const void* data, size_t size) {
  NATIX_ASSIGN_OR_RETURN(const uint64_t end, Size());
  return TransferAt(/*write=*/true, end, const_cast<void*>(data), size);
}

Status PosixFileBackend::ReadAt(uint64_t offset, void* out, size_t size) {
  return TransferAt(/*write=*/false, offset, out, size);
}

Status PosixFileBackend::WriteAt(uint64_t offset, const void* data,
                                 size_t size) {
  return TransferAt(/*write=*/true, offset, const_cast<void*>(data), size);
}

Status PosixFileBackend::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return PermanentErrnoStatus(errno,
                                ErrnoMessage("ftruncate " + path_, errno));
  }
  return Status::OK();
}

Status PosixFileBackend::Sync() {
#if defined(__linux__)
  // fdatasync skips the metadata-only flush (mtime etc.); file length
  // changes still reach disk, which is all WAL/page-file durability
  // needs.
  if (::fdatasync(fd_) != 0) {
    return PermanentErrnoStatus(errno,
                                ErrnoMessage("fdatasync " + path_, errno));
  }
#else
  if (::fsync(fd_) != 0) {
    return PermanentErrnoStatus(errno, ErrnoMessage("fsync " + path_, errno));
  }
#endif
  return Status::OK();
}

}  // namespace natix
