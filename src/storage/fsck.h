#ifndef NATIX_STORAGE_FSCK_H_
#define NATIX_STORAGE_FSCK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/file_backend.h"
#include "storage/store.h"

namespace natix {

/// Structured damage summary produced by the fsck checks. Counters are
/// grouped by the cross-validation that found them; `problems` holds a
/// capped list of human-readable detail lines. A report is clean iff
/// every error counter is zero -- stale proxy placement hints are
/// recorded separately because navigation resolves targets through the
/// store's authoritative tables and tolerates them by design.
struct FsckReport {
  // --- log structure ---
  uint64_t entries_scanned = 0;
  uint64_t last_lsn = 0;
  uint64_t complete_checkpoints = 0;
  uint64_t last_checkpoint_begin_lsn = 0;
  uint64_t last_checkpoint_end_lsn = 0;
  /// The log ends inside an unfinished checkpoint (crash mid-checkpoint;
  /// recovery ignores it, so this is informational).
  bool incomplete_checkpoint_tail = false;
  /// Trailing bytes that do not form a valid entry (crash damage).
  bool tail_torn = false;
  uint64_t torn_bytes = 0;
  /// Entries violating the log grammar (op inside a checkpoint, image
  /// outside one, end/begin mismatch, non-sequential checkpoint LSNs).
  uint64_t log_structure_errors = 0;
  /// True once the log's last complete checkpoint restored and its op
  /// tail replayed; the store-level checks below ran only if set.
  bool store_recovered = false;

  // --- store-level cross-validation (records <-> tables <-> pages) ---
  uint64_t records_checked = 0;
  uint64_t nodes_checked = 0;
  uint64_t pages_checked = 0;
  uint64_t proxies_checked = 0;
  /// Records that do not resolve or whose bytes fail to parse.
  uint64_t record_errors = 0;
  /// Page directory damage: an invalid slotted-page image, or a record
  /// whose directory entry disagrees with its header/length.
  uint64_t directory_errors = 0;
  /// Node <-> record table mismatches (partition/slot tables vs record
  /// contents, node-coverage violations).
  uint64_t topology_errors = 0;
  /// Structurally impossible proxies (bad from-index / target node).
  uint64_t proxy_errors = 0;
  /// Aggregate back-pointer violations.
  uint64_t aggregate_errors = 0;
  /// Partition-invariant violations (record weight over the limit).
  uint64_t partition_errors = 0;
  /// Proxy/aggregate placement hints that lag the authoritative tables
  /// (warning only; see above).
  uint64_t stale_placement_hints = 0;

  // --- flushed page file (sealed cells) ---
  bool page_file_checked = false;
  uint64_t page_cells_checked = 0;
  /// Cells rejected as bit rot / zeroed sectors, plus missing cells.
  uint64_t cell_checksum_failures = 0;
  /// Cells rejected as torn (half-old/half-new).
  uint64_t cell_torn = 0;
  /// Cells that verify but differ from the store's authoritative image
  /// (a stale generation that kept a valid seal).
  uint64_t cell_content_mismatches = 0;

  /// Detail lines, capped at kMaxProblems (the counters stay exact).
  static constexpr size_t kMaxProblems = 64;
  std::vector<std::string> problems;

  /// Sum of every error counter (stale hints excluded).
  uint64_t damage_count() const;
  bool clean() const { return damage_count() == 0; }
  /// Multi-line human-readable summary (the `natix_cli fsck` output).
  std::string Summary() const;

  /// Appends a detail line, honouring the cap.
  void AddProblem(std::string line);
};

/// Audits a WAL: scans the log structure (LSN chain, checkpoint
/// begin/end pairing, torn tail), then restores the store it describes
/// (read-only, via NatixStore::RecoverForAudit) and runs the store-level
/// cross-validation on the result. Never writes to `wal`. Returns a
/// Status only when the log cannot even be opened (no/invalid magic);
/// all damage beyond that is reported inside the FsckReport. On success
/// and when `store_out` is non-null, the recovered store is handed out
/// for further checks (FsckPageFile) or queries.
Result<FsckReport> FsckLog(FileBackend* wal,
                           std::unique_ptr<NatixStore>* store_out = nullptr);

/// Store-level deep check, usable on any store (recovered or live):
/// cross-validates page directory entries <-> record headers <-> proxy
/// targets and aggregate back-pointers <-> the partition tables and
/// their invariants. Findings land in `report`.
Status FsckStore(const NatixStore& store, FsckReport* report);

/// Verifies every sealed cell of a page file written by FlushPagesTo()
/// against `store`'s authoritative page images: seal integrity (torn vs
/// rot classification) plus byte equality for cells that pass.
Status FsckPageFile(FileBackend* page_file, const NatixStore& store,
                    FsckReport* report);

}  // namespace natix

#endif  // NATIX_STORAGE_FSCK_H_
