#ifndef NATIX_STORAGE_PAGE_INTEGRITY_H_
#define NATIX_STORAGE_PAGE_INTEGRITY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace natix {

/// Every page image that leaves the process -- the flat page file written
/// by FlushPagesTo() and the page images inside WAL checkpoints -- is
/// wrapped in a sealed cell:
///
///   [magic u32 "NPG1"][epoch u32][payload bytes][epoch u32][crc u32]
///
/// with crc = CRC32 over everything before the crc field (magic, head
/// epoch, payload, tail epoch). The duplicated epoch is the torn-page
/// detector: a write that stopped partway leaves the new epoch at the
/// head and the previous cell's epoch (or garbage) at the tail, so a
/// head/tail epoch mismatch under a failed CRC reads as "half-old/
/// half-new" rather than bit rot. The in-memory Page layout is untouched;
/// sealing happens purely at the I/O boundary.
inline constexpr uint32_t kPageCellMagic = 0x3147504Eu;  // "NPG1" LE
inline constexpr size_t kPageCellOverhead = 16;

/// What inspection of a sealed cell concluded.
enum class PageDamage : uint8_t {
  kNone = 0,
  /// Head and tail epoch disagree: the cell mixes two write generations
  /// (interrupted overwrite / torn sectors).
  kTorn = 1,
  /// Epochs agree (or the framing itself is gone) but the CRC fails:
  /// bit rot, a zeroed sector, or a foreign byte range.
  kChecksum = 2,
};

const char* PageDamageName(PageDamage damage);

/// Counters kept by the verified read path (FilePageSource) and the
/// self-healing layer (SelfHealingPageSource); bench_updates snapshots
/// them next to the WAL amplification numbers.
struct IntegrityStats {
  /// Page cells read and verified successfully.
  uint64_t pages_read = 0;
  /// Transient (Unavailable) backend errors absorbed by retrying.
  uint64_t transient_retries = 0;
  /// Cells rejected as bit rot / zeroed sectors.
  uint64_t checksum_failures = 0;
  /// Cells rejected as torn (half-old/half-new).
  uint64_t torn_pages = 0;
  /// Buffer-pool frames dropped before a repair.
  uint64_t quarantines = 0;
  /// Damaged cells rewritten from a clean source and re-verified.
  uint64_t repairs = 0;
  /// Damaged cells with no clean source (or whose rewrite failed).
  uint64_t repair_failures = 0;
};

/// Wraps `size` payload bytes in a sealed cell. `epoch` must be nonzero
/// and should differ from the epoch previously written at the same file
/// offset (otherwise a torn overwrite is indistinguishable from rot --
/// it is still detected, just classified as kChecksum).
std::vector<uint8_t> SealPageCell(uint32_t epoch, const uint8_t* payload,
                                  size_t size);

/// Inspects a cell without copying. Returns the damage classification;
/// on kNone (and on kTorn, when the head framing is intact) `*epoch_out`
/// receives the head epoch if non-null.
PageDamage ClassifyPageCell(const uint8_t* cell, size_t size,
                            uint32_t* epoch_out = nullptr);

/// Verifies a cell and extracts its payload. On damage returns
/// ParseError whose message names the classification (torn page vs
/// checksum mismatch); `damage_out` (if non-null) receives it either way.
Result<std::vector<uint8_t>> OpenPageCell(const uint8_t* cell, size_t size,
                                          uint32_t* epoch_out = nullptr,
                                          PageDamage* damage_out = nullptr);

}  // namespace natix

#endif  // NATIX_STORAGE_PAGE_INTEGRITY_H_
