#include "storage/page.h"

namespace natix {

Result<uint16_t> Page::Insert(const std::vector<uint8_t>& record) {
  if (record.size() > FreeSpace()) {
    return Status::ResourceExhausted("record does not fit in page");
  }
  const uint32_t offset = ReadU32(0);
  const uint32_t slot = slot_count();
  std::memcpy(data_.data() + offset, record.data(), record.size());
  WriteU32(0, offset + static_cast<uint32_t>(record.size()));
  WriteU32(4, slot + 1);
  // Directory entry for slot s lives at size - 8*(s+1).
  const size_t dir_off = data_.size() - 8ull * (slot + 1);
  WriteU32(dir_off, offset);
  WriteU32(dir_off + 4, static_cast<uint32_t>(record.size()));
  return static_cast<uint16_t>(slot);
}

Result<std::pair<const uint8_t*, size_t>> Page::Get(uint16_t slot) const {
  if (slot >= slot_count()) {
    return Status::NotFound("no such slot: " + std::to_string(slot));
  }
  const size_t dir_off = data_.size() - 8ull * (slot + 1);
  const uint32_t offset = ReadU32(dir_off);
  const uint32_t length = ReadU32(dir_off + 4);
  return std::make_pair(data_.data() + offset, static_cast<size_t>(length));
}

}  // namespace natix
