#include "storage/page.h"

#include <algorithm>

namespace natix {

Result<Page> Page::FromImage(std::vector<uint8_t> data) {
  if (data.size() < kMinPageSize) {
    return Status::ParseError("page image too small: " +
                              std::to_string(data.size()) + " bytes");
  }
  Page page(std::move(data));
  const size_t size = page.data_.size();
  const uint32_t payload_end = page.ReadU32(0);
  const uint32_t slots = page.ReadU32(4);
  // The directory must fit behind the payload area: 8 header bytes, then
  // payloads up to payload_end, then 8 bytes per slot from the back.
  if (slots > (size - 8) / 8) {
    return Status::ParseError("page image slot count " +
                              std::to_string(slots) + " exceeds page size");
  }
  if (payload_end < 8 || payload_end > size - 8ull * slots) {
    return Status::ParseError("page image payload end " +
                              std::to_string(payload_end) +
                              " overlaps the slot directory");
  }
  // Walk the directory: every live entry must lie inside the payload
  // area, and the live bytes must be coverable by it.
  size_t live_bytes = 0;
  uint32_t tombstones = 0;
  for (uint32_t s = 0; s < slots; ++s) {
    const size_t dir_off = page.DirOffset(s);
    const uint32_t offset = page.ReadU32(dir_off);
    const uint32_t length = page.ReadU32(dir_off + 4);
    if (offset == kFreedOffset) {
      if (length != 0) {
        return Status::ParseError("page image tombstone slot " +
                                  std::to_string(s) + " has nonzero length");
      }
      ++tombstones;
      continue;
    }
    if (offset < 8 || offset > payload_end ||
        length > payload_end - offset) {
      return Status::ParseError("page image slot " + std::to_string(s) +
                                " extent [" + std::to_string(offset) + ", +" +
                                std::to_string(length) +
                                ") outside the payload area");
    }
    live_bytes += length;
  }
  if (live_bytes > payload_end - 8u) {
    return Status::ParseError("page image live bytes exceed the payload area");
  }
  // Derived bookkeeping: holes are whatever the payload area holds beyond
  // the live extents (freed records, shrink slack, overlap is impossible
  // to distinguish here and compaction handles it either way).
  page.hole_bytes_ = (payload_end - 8u) - live_bytes;
  page.free_slots_ = tombstones;
  return page;
}

Result<std::pair<uint32_t, uint32_t>> Page::CheckedEntry(uint16_t slot) const {
  if (slot >= slot_count()) {
    return Status::NotFound("no such slot: " + std::to_string(slot));
  }
  const size_t dir_off = DirOffset(slot);
  const uint32_t offset = ReadU32(dir_off);
  if (offset == kFreedOffset) {
    return Status::NotFound("slot is freed: " + std::to_string(slot));
  }
  const uint32_t length = ReadU32(dir_off + 4);
  const uint32_t payload_end = ReadU32(0);
  if (offset < 8 || offset > payload_end || length > payload_end - offset) {
    return Status::ParseError("corrupt directory entry for slot " +
                              std::to_string(slot));
  }
  return std::make_pair(offset, length);
}

Result<std::pair<uint32_t, uint32_t>> Page::EntryInImage(
    const uint8_t* data, size_t size, uint16_t slot) {
  if (data == nullptr || size < kMinPageSize) {
    return Status::ParseError("page image too small");
  }
  const auto read_u32 = [&](size_t off) {
    uint32_t v;
    std::memcpy(&v, data + off, 4);
    return v;
  };
  const uint32_t slots = read_u32(4);
  if (slots > (size - 8) / 8) {
    return Status::ParseError("page image slot count exceeds page size");
  }
  if (slot >= slots) {
    return Status::NotFound("no such slot: " + std::to_string(slot));
  }
  const size_t dir_off = size - 8ull * (slot + 1u);
  const uint32_t offset = read_u32(dir_off);
  if (offset == kFreedOffset) {
    return Status::NotFound("slot is freed: " + std::to_string(slot));
  }
  const uint32_t length = read_u32(dir_off + 4);
  const uint32_t payload_end = read_u32(0);
  if (payload_end < 8 || payload_end > size - 8ull * slots) {
    return Status::ParseError("page image payload end overlaps directory");
  }
  if (offset < 8 || offset > payload_end || length > payload_end - offset) {
    return Status::ParseError("corrupt directory entry for slot " +
                              std::to_string(slot));
  }
  return std::make_pair(offset, length);
}

Result<uint16_t> Page::Insert(const std::vector<uint8_t>& record) {
  if (record.size() > FreeSpace()) {
    if (record.size() > FreeTotal()) {
      return Status::ResourceExhausted("record does not fit in page");
    }
    Compact();
    if (record.size() > FreeSpace()) {
      return Status::ResourceExhausted("record does not fit in page");
    }
  }
  // Pick a slot: reuse a tombstone if one exists, else grow the directory.
  uint32_t slot = slot_count();
  if (free_slots_ > 0) {
    for (uint32_t s = 0; s < slot_count(); ++s) {
      if (ReadU32(DirOffset(s)) == kFreedOffset) {
        slot = s;
        break;
      }
    }
  }
  if (slot > 0xFFFFu) {
    // Slot numbers travel as uint16_t (RecordIds, directory lookups); a
    // 65537th slot would silently alias slot 0 after the narrowing cast.
    return Status::ResourceExhausted("page slot directory is full");
  }
  const uint32_t offset = ReadU32(0);
  std::memcpy(data_.data() + offset, record.data(), record.size());
  WriteU32(0, offset + static_cast<uint32_t>(record.size()));
  if (slot == slot_count()) {
    WriteU32(4, slot + 1);
  } else {
    --free_slots_;
  }
  const size_t dir_off = DirOffset(slot);
  WriteU32(dir_off, offset);
  WriteU32(dir_off + 4, static_cast<uint32_t>(record.size()));
  return static_cast<uint16_t>(slot);
}

Status Page::Update(uint16_t slot, const std::vector<uint8_t>& record) {
  NATIX_ASSIGN_OR_RETURN(const auto entry, CheckedEntry(slot));
  const size_t dir_off = DirOffset(slot);
  const uint32_t offset = entry.first;
  const uint32_t length = entry.second;
  if (record.size() <= length) {
    // In-place rewrite; the tail of the old extent becomes a hole that
    // compaction reclaims (directory lengths drive compaction).
    std::memcpy(data_.data() + offset, record.data(), record.size());
    hole_bytes_ += length - record.size();
    WriteU32(dir_off + 4, static_cast<uint32_t>(record.size()));
    return Status::OK();
  }
  // Growth: the old extent is reclaimable, so capacity is tail + holes +
  // the old length. No new directory entry is needed.
  if (TailSpace() + hole_bytes_ + length < record.size()) {
    return Status::ResourceExhausted("updated record does not fit in page");
  }
  // Tombstone the old extent, compact if the tail alone is too small,
  // then append at the (possibly fresh) payload end.
  WriteU32(dir_off, kFreedOffset);
  WriteU32(dir_off + 4, 0);
  hole_bytes_ += length;
  if (TailSpace() < record.size()) Compact();
  const uint32_t end = ReadU32(0);
  std::memcpy(data_.data() + end, record.data(), record.size());
  WriteU32(0, end + static_cast<uint32_t>(record.size()));
  WriteU32(dir_off, end);
  WriteU32(dir_off + 4, static_cast<uint32_t>(record.size()));
  return Status::OK();
}

Status Page::Free(uint16_t slot) {
  NATIX_ASSIGN_OR_RETURN(const auto entry, CheckedEntry(slot));
  const size_t dir_off = DirOffset(slot);
  hole_bytes_ += entry.second;
  WriteU32(dir_off, kFreedOffset);
  WriteU32(dir_off + 4, 0);
  ++free_slots_;
  return Status::OK();
}

Result<std::pair<const uint8_t*, size_t>> Page::Get(uint16_t slot) const {
  NATIX_ASSIGN_OR_RETURN(const auto entry, CheckedEntry(slot));
  return std::make_pair(data_.data() + entry.first,
                        static_cast<size_t>(entry.second));
}

size_t Page::LiveBytes() const {
  size_t live = 0;
  for (uint32_t s = 0; s < slot_count(); ++s) {
    if (ReadU32(DirOffset(s)) != kFreedOffset) live += ReadU32(DirOffset(s) + 4);
  }
  return live;
}

void Page::Compact() {
  // Collect live extents in payload order, then slide them left. Slot
  // numbers (and therefore RecordIds resolving here) are unchanged.
  struct Extent {
    uint32_t slot, offset, length;
  };
  std::vector<Extent> live;
  live.reserve(slot_count());
  for (uint32_t s = 0; s < slot_count(); ++s) {
    const uint32_t off = ReadU32(DirOffset(s));
    if (off == kFreedOffset) continue;
    live.push_back({s, off, ReadU32(DirOffset(s) + 4)});
  }
  std::sort(live.begin(), live.end(),
            [](const Extent& a, const Extent& b) { return a.offset < b.offset; });
  uint32_t write = 8;
  for (const Extent& e : live) {
    if (e.offset != write) {
      std::memmove(data_.data() + write, data_.data() + e.offset, e.length);
      WriteU32(DirOffset(e.slot), write);
    }
    write += e.length;
  }
  WriteU32(0, write);
  hole_bytes_ = 0;
  ++compactions_;
}

}  // namespace natix
