#ifndef NATIX_STORAGE_FAULT_INJECTOR_H_
#define NATIX_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "storage/file_backend.h"

namespace natix {

/// How an injected fault mangles the write it fires on.
enum class FaultMode : uint8_t {
  /// The write is dropped entirely and the backend dies ("power cut
  /// before the block hit the platter").
  kFailStop = 0,
  /// A strict prefix of the write lands, then the backend dies (short
  /// write at the device boundary).
  kShortWrite = 1,
  /// A prefix lands and the following bytes are replaced by garbage
  /// before the backend dies (torn sector: the tail was part-written with
  /// stale/corrupt data).
  kTornWrite = 2,
};

/// How an injected read fault corrupts the ReadAt it fires on. Unlike
/// write faults these model a flaky (not dying) device: the backend
/// stays alive afterwards.
enum class ReadFaultMode : uint8_t {
  kNone = 0,
  /// The read "succeeds" but one deterministic bit of the returned
  /// buffer is flipped -- silent corruption only a checksum can catch.
  kBitFlip = 1,
  /// A strict prefix of the buffer is filled, then the call fails with
  /// Unavailable (device gave up mid-transfer); a retry succeeds.
  kShortRead = 2,
  /// The call fails with Unavailable without touching the buffer; after
  /// `count` consecutive failures, reads succeed again.
  kTransientEio = 3,
};

/// A FileBackend decorator that kills the underlying backend on the Nth
/// append, simulating a crash mid-I/O. Deterministic: the same
/// (fault_at, mode, seed) triple always yields the same surviving bytes,
/// so every cell of the crash matrix is reproducible. After the fault
/// fires (and after it, for every later call) all operations return
/// Internal -- the process is "dead"; tests then recover from the bytes
/// the inner backend kept.
///
/// Independently, ArmReadFault() injects read-path faults (bit flips,
/// short reads, transient EIO) on the Nth ReadAt without killing the
/// backend, ArmTransientAppendFault() makes a window of Append() calls
/// fail Unavailable (flaky device, retry succeeds), and ArmSyncFault()
/// kills the backend on the Nth Sync() -- an fsync failure is a crash,
/// exactly like a failed append.
///
/// The injector also models *power loss*: it tracks the inner size at
/// the last successful Sync() (everything past it is an un-fsynced
/// suffix the platter never saw) and snapshots the durable prefix before
/// any in-place damage to it, so DurableImage() returns exactly the
/// bytes that survive pulling the plug.
///
/// Thread-safe: every operation and observer serializes on one internal
/// mutex, so a DurableImage() "plug pull" taken while a background
/// flusher is appending always lands between whole backend calls --
/// like a real disk, which stays internally consistent no matter when
/// the host dies.
class FaultInjectingBackend : public FileBackend {
 public:
  /// `fault_at`: 0-based index of the Append() call the fault fires on; a
  /// count past the end of the workload means the fault never fires.
  FaultInjectingBackend(std::unique_ptr<FileBackend> inner, uint64_t fault_at,
                        FaultMode mode, uint64_t seed = 0x5eedull)
      : inner_(std::move(inner)), fault_at_(fault_at), mode_(mode),
        rng_(seed) {
    // Pre-existing bytes are assumed durable (they were there before
    // "power came on").
    if (const Result<uint64_t> s = inner_->Size(); s.ok()) {
      durable_size_ = *s;
    }
  }

  bool fired() const { return Locked(fired_); }
  /// Append() calls observed so far; lets a dry run count the workload's
  /// total write ops before the matrix picks fault points.
  uint64_t append_count() const { return Locked(appends_); }

  /// Arms a read fault firing on the `fault_at`-th ReadAt (0-based) and,
  /// for the transient modes, on the `count - 1` calls after it.
  void ArmReadFault(ReadFaultMode mode, uint64_t fault_at,
                    uint32_t count = 1) {
    const std::lock_guard<std::mutex> lock(mu_);
    read_mode_ = mode;
    read_fault_at_ = fault_at;
    read_fault_count_ = count;
  }

  /// Arms transient append failures: the `fault_at`-th Append (0-based)
  /// and the `count - 1` after it land a random strict prefix and fail
  /// Unavailable, but the backend stays alive -- a flaky device a
  /// bounded retry should absorb.
  void ArmTransientAppendFault(uint64_t fault_at, uint32_t count = 1) {
    const std::lock_guard<std::mutex> lock(mu_);
    append_fault_at_ = fault_at;
    append_fault_count_ = count;
  }

  /// Arms a fatal fsync failure on the `fault_at`-th Sync() (0-based):
  /// the call fails and the backend is dead afterwards, like a kill
  /// fault on Append.
  void ArmSyncFault(uint64_t fault_at) {
    const std::lock_guard<std::mutex> lock(mu_);
    sync_fault_at_ = fault_at;
  }

  /// ReadAt() calls observed so far (faulted or not).
  uint64_t read_count() const { return Locked(reads_); }
  /// Read faults actually injected so far.
  uint64_t read_faults_fired() const { return Locked(read_faults_fired_); }
  /// Transient append faults actually injected so far.
  uint64_t append_faults_fired() const { return Locked(append_faults_fired_); }
  /// Sync() calls observed so far.
  uint64_t sync_count() const { return Locked(syncs_); }

  /// Inner size at the last successful Sync().
  uint64_t durable_size() const { return Locked(durable_size_); }
  /// The bytes that survive power loss right now: the content as of the
  /// last successful Sync(). Un-fsynced appended suffixes are dropped;
  /// un-fsynced in-place damage (WriteAt/Truncate into the durable
  /// prefix) is undone via the pre-damage snapshot. Works after the
  /// backend died -- that is the point.
  Result<std::vector<uint8_t>> DurableImage();

  Result<uint64_t> Size() override;
  Status Append(const void* data, size_t size) override;
  Status ReadAt(uint64_t offset, void* out, size_t size) override;
  Status WriteAt(uint64_t offset, const void* data, size_t size) override;
  Status Truncate(uint64_t size) override;
  Status Sync() override;

 private:
  static constexpr uint64_t kNever = ~0ull;

  Status Dead() const {
    return Status::Internal("injected fault: backend is dead");
  }
  /// Copies the still-undamaged durable prefix aside before the first
  /// un-fsynced in-place mutation touches it. Call with mu_ held.
  void SnapshotDurablePrefix();

  template <typename T>
  T Locked(const T& field) const {
    const std::lock_guard<std::mutex> lock(mu_);
    return field;
  }

  mutable std::mutex mu_;
  std::unique_ptr<FileBackend> inner_;
  uint64_t fault_at_;
  FaultMode mode_;
  Rng rng_;
  uint64_t appends_ = 0;
  bool fired_ = false;

  ReadFaultMode read_mode_ = ReadFaultMode::kNone;
  uint64_t read_fault_at_ = 0;
  uint32_t read_fault_count_ = 1;
  uint64_t reads_ = 0;
  uint64_t read_faults_fired_ = 0;

  uint64_t append_fault_at_ = kNever;
  uint32_t append_fault_count_ = 0;
  uint64_t append_faults_fired_ = 0;

  uint64_t sync_fault_at_ = kNever;
  uint64_t syncs_ = 0;

  uint64_t durable_size_ = 0;
  std::optional<std::vector<uint8_t>> durable_snapshot_;
};

}  // namespace natix

#endif  // NATIX_STORAGE_FAULT_INJECTOR_H_
