#ifndef NATIX_STORAGE_FAULT_INJECTOR_H_
#define NATIX_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "storage/file_backend.h"

namespace natix {

/// How an injected fault mangles the write it fires on.
enum class FaultMode : uint8_t {
  /// The write is dropped entirely and the backend dies ("power cut
  /// before the block hit the platter").
  kFailStop = 0,
  /// A strict prefix of the write lands, then the backend dies (short
  /// write at the device boundary).
  kShortWrite = 1,
  /// A prefix lands and the following bytes are replaced by garbage
  /// before the backend dies (torn sector: the tail was part-written with
  /// stale/corrupt data).
  kTornWrite = 2,
};

/// How an injected read fault corrupts the ReadAt it fires on. Unlike
/// write faults these model a flaky (not dying) device: the backend
/// stays alive afterwards.
enum class ReadFaultMode : uint8_t {
  kNone = 0,
  /// The read "succeeds" but one deterministic bit of the returned
  /// buffer is flipped -- silent corruption only a checksum can catch.
  kBitFlip = 1,
  /// A strict prefix of the buffer is filled, then the call fails with
  /// Unavailable (device gave up mid-transfer); a retry succeeds.
  kShortRead = 2,
  /// The call fails with Unavailable without touching the buffer; after
  /// `count` consecutive failures, reads succeed again.
  kTransientEio = 3,
};

/// A FileBackend decorator that kills the underlying backend on the Nth
/// append, simulating a crash mid-I/O. Deterministic: the same
/// (fault_at, mode, seed) triple always yields the same surviving bytes,
/// so every cell of the crash matrix is reproducible. After the fault
/// fires (and after it, for every later call) all operations return
/// Internal -- the process is "dead"; tests then recover from the bytes
/// the inner backend kept.
///
/// Independently, ArmReadFault() injects read-path faults (bit flips,
/// short reads, transient EIO) on the Nth ReadAt without killing the
/// backend, ArmTransientAppendFault() makes a window of Append() calls
/// fail Unavailable (flaky device, retry succeeds), ArmSyncFault()
/// kills the backend on the Nth Sync() -- an fsync failure is a crash,
/// exactly like a failed append -- and ArmCapacityLimit() models a full
/// disk: writes that would grow past the limit fail ResourceExhausted
/// without landing bytes and without killing anything.
///
/// Every Arm* call adds an independent trigger -- windows accumulate
/// rather than overwrite -- so a chaos trial can arm several fault
/// kinds (and several windows of one kind) concurrently. A single Arm*
/// call keeps the one-shot semantics the legacy crash matrices rely on.
/// Revive() clears a fired fatal fault ("the operator swapped the
/// cable"): the inner backend keeps whatever bytes survived and serves
/// again, which is what TryRehabilitate() re-probes after.
///
/// The injector also models *power loss*: it tracks the inner size at
/// the last successful Sync() (everything past it is an un-fsynced
/// suffix the platter never saw) and snapshots the durable prefix before
/// any in-place damage to it, so DurableImage() returns exactly the
/// bytes that survive pulling the plug.
///
/// Thread-safe: every operation and observer serializes on one internal
/// mutex, so a DurableImage() "plug pull" taken while a background
/// flusher is appending always lands between whole backend calls --
/// like a real disk, which stays internally consistent no matter when
/// the host dies.
class FaultInjectingBackend : public FileBackend {
 public:
  /// `fault_at`: 0-based index of the Append() call the fault fires on; a
  /// count past the end of the workload means the fault never fires.
  FaultInjectingBackend(std::unique_ptr<FileBackend> inner, uint64_t fault_at,
                        FaultMode mode, uint64_t seed = 0x5eedull)
      : inner_(std::move(inner)), fault_at_(fault_at), mode_(mode),
        rng_(seed) {
    // Pre-existing bytes are assumed durable (they were there before
    // "power came on").
    if (const Result<uint64_t> s = inner_->Size(); s.ok()) {
      durable_size_ = *s;
    }
  }

  bool fired() const { return Locked(fired_); }
  /// Append() calls observed so far; lets a dry run count the workload's
  /// total write ops before the matrix picks fault points.
  uint64_t append_count() const { return Locked(appends_); }

  /// No capacity limit / a fault index that never fires.
  static constexpr uint64_t kNoLimit = ~0ull;

  /// Arms another fatal write fault firing on the `fault_at`-th Append
  /// (0-based), alongside the constructor's one. Only the first fatal
  /// fault to fire matters -- the backend is dead afterwards.
  void ArmAppendFault(FaultMode mode, uint64_t fault_at) {
    const std::lock_guard<std::mutex> lock(mu_);
    write_faults_.push_back({mode, fault_at});
  }

  /// Arms a read fault firing on the `fault_at`-th ReadAt (0-based) and,
  /// for the transient modes, on the `count - 1` calls after it.
  void ArmReadFault(ReadFaultMode mode, uint64_t fault_at,
                    uint32_t count = 1) {
    const std::lock_guard<std::mutex> lock(mu_);
    read_faults_.push_back({mode, fault_at, count});
  }

  /// Arms transient append failures: the `fault_at`-th Append (0-based)
  /// and the `count - 1` after it land a random strict prefix and fail
  /// Unavailable, but the backend stays alive -- a flaky device a
  /// bounded retry should absorb.
  void ArmTransientAppendFault(uint64_t fault_at, uint32_t count = 1) {
    const std::lock_guard<std::mutex> lock(mu_);
    transient_faults_.push_back({fault_at, count});
  }

  /// Arms a fatal fsync failure on the `fault_at`-th Sync() (0-based):
  /// the call fails and the backend is dead afterwards, like a kill
  /// fault on Append.
  void ArmSyncFault(uint64_t fault_at) {
    const std::lock_guard<std::mutex> lock(mu_);
    sync_faults_.push_back(fault_at);
  }

  /// Arms the capacity-limited ("disk full") mode: an Append/WriteAt
  /// that would grow the inner backend past `max_bytes` fails
  /// ResourceExhausted without landing a single byte -- the filesystem
  /// refused the allocation -- and without killing the backend. ENOSPC
  /// is backpressure: Truncate still frees space, in-place rewrites
  /// below the limit still land, and raising the limit (or passing
  /// kNoLimit) "frees the disk".
  void ArmCapacityLimit(uint64_t max_bytes) {
    const std::lock_guard<std::mutex> lock(mu_);
    capacity_ = max_bytes;
  }

  /// Clears a fired fatal fault, as if the operator replaced the flaky
  /// device: the inner backend holds whatever bytes survived the crash
  /// and serves again. Rehabilitation probes go through this.
  void Revive() {
    const std::lock_guard<std::mutex> lock(mu_);
    fired_ = false;
  }

  /// ReadAt() calls observed so far (faulted or not).
  uint64_t read_count() const { return Locked(reads_); }
  /// Read faults actually injected so far.
  uint64_t read_faults_fired() const { return Locked(read_faults_fired_); }
  /// Transient append faults actually injected so far.
  uint64_t append_faults_fired() const { return Locked(append_faults_fired_); }
  /// Sync() calls observed so far.
  uint64_t sync_count() const { return Locked(syncs_); }

  /// Inner size at the last successful Sync().
  uint64_t durable_size() const { return Locked(durable_size_); }
  /// The bytes that survive power loss right now: the content as of the
  /// last successful Sync(). Un-fsynced appended suffixes are dropped;
  /// un-fsynced in-place damage (WriteAt/Truncate into the durable
  /// prefix) is undone via the pre-damage snapshot. Works after the
  /// backend died -- that is the point.
  Result<std::vector<uint8_t>> DurableImage();

  Result<uint64_t> Size() override;
  Status Append(const void* data, size_t size) override;
  Status ReadAt(uint64_t offset, void* out, size_t size) override;
  Status WriteAt(uint64_t offset, const void* data, size_t size) override;
  Status Truncate(uint64_t size) override;
  Status Sync() override;

 private:
  static constexpr uint64_t kNever = ~0ull;

  struct WriteFault {
    FaultMode mode;
    uint64_t at;
  };
  struct ReadFault {
    ReadFaultMode mode;
    uint64_t at;
    uint32_t count;
  };
  struct TransientWindow {
    uint64_t at;
    uint32_t count;
  };

  Status Dead() const {
    return Status::Internal("injected fault: backend is dead");
  }
  /// Kills the backend on this append per `mode` (landing a prefix /
  /// torn bytes first). Call with mu_ held.
  Status FireWriteFault(FaultMode mode, const void* data, size_t size);
  /// Copies the still-undamaged durable prefix aside before the first
  /// un-fsynced in-place mutation touches it. Call with mu_ held.
  void SnapshotDurablePrefix();

  template <typename T>
  T Locked(const T& field) const {
    const std::lock_guard<std::mutex> lock(mu_);
    return field;
  }

  mutable std::mutex mu_;
  std::unique_ptr<FileBackend> inner_;
  uint64_t fault_at_;
  FaultMode mode_;
  Rng rng_;
  uint64_t appends_ = 0;
  bool fired_ = false;

  std::vector<WriteFault> write_faults_;
  std::vector<ReadFault> read_faults_;
  std::vector<TransientWindow> transient_faults_;
  std::vector<uint64_t> sync_faults_;
  uint64_t capacity_ = kNoLimit;

  uint64_t reads_ = 0;
  uint64_t read_faults_fired_ = 0;
  uint64_t append_faults_fired_ = 0;
  uint64_t syncs_ = 0;

  uint64_t durable_size_ = 0;
  std::optional<std::vector<uint8_t>> durable_snapshot_;
};

}  // namespace natix

#endif  // NATIX_STORAGE_FAULT_INJECTOR_H_
