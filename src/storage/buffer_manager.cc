#include "storage/buffer_manager.h"

#include <algorithm>
#include <chrono>

namespace natix {

Result<LruBufferPool> LruBufferPool::Create(size_t capacity) {
  if (capacity == 0) {
    return Status::InvalidArgument("buffer pool capacity must be positive");
  }
  return LruBufferPool(capacity);
}

LruBufferPool::LruBufferPool(size_t capacity)
    : capacity_(capacity), mu_(std::make_unique<std::mutex>()) {
  frames_.reserve(capacity_);
}

LruBufferPool::Frame& LruBufferPool::Touch(FrameKey key) {
  ++stats_.accesses;
  const auto it = frames_.find(key);
  if (it != frames_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second;
  }
  ++stats_.misses;
  if (lru_.size() >= capacity_) {
    // Evict the least-recently-used unpinned frame. If every frame is
    // pinned the pool temporarily oversubscribes rather than dropping a
    // frame someone still reads from.
    for (auto victim = lru_.rbegin(); victim != lru_.rend(); ++victim) {
      const auto vit = frames_.find(*victim);
      if (vit->second.pins > 0) {
        ++stats_.pinned_evictions_refused;
        continue;
      }
      ++stats_.evictions;
      lru_.erase(std::next(victim).base());
      frames_.erase(vit);
      break;
    }
  }
  lru_.push_front(key);
  Frame& frame = frames_[key];
  frame.lru_it = lru_.begin();
  return frame;
}

bool LruBufferPool::Access(uint32_t page) {
  std::lock_guard<std::mutex> lock(*mu_);
  const FrameKey key{page, 0};
  const bool resident = frames_.contains(key);
  Touch(key);
  return resident;
}

Result<const std::vector<uint8_t>*> LruBufferPool::Pin(
    uint32_t page, const PageProvider* provider, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(*mu_);
  Frame& frame = Touch(FrameKey{page, epoch});
  if (!frame.loaded && provider != nullptr) {
    const auto start = std::chrono::steady_clock::now();
    Result<std::vector<uint8_t>> bytes = provider->ReadPage(page);
    const auto end = std::chrono::steady_clock::now();
    stats_.read_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    if (!bytes.ok()) {
      // A failed read leaves the (byteless) frame resident; the next Pin
      // retries the provider.
      return bytes.status();
    }
    stats_.bytes_read += bytes->size();
    frame.bytes = std::move(bytes).value();
    frame.loaded = true;
  }
  if (frame.pins > 0) ++stats_.shared_pins;
  ++frame.pins;
  ++stats_.pin_events;
  return &frame.bytes;
}

void LruBufferPool::Unpin(uint32_t page, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(*mu_);
  const auto it = frames_.find(FrameKey{page, epoch});
  if (it == frames_.end() || it->second.pins == 0) return;
  --it->second.pins;
  ++stats_.unpin_events;
}

bool LruBufferPool::IsResident(uint32_t page, uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(*mu_);
  return frames_.contains(FrameKey{page, epoch});
}

size_t LruBufferPool::resident_count() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return lru_.size();
}

size_t LruBufferPool::pinned_count() const {
  std::lock_guard<std::mutex> lock(*mu_);
  size_t pinned = 0;
  for (const auto& [key, frame] : frames_) {
    if (frame.pins > 0) ++pinned;
  }
  return pinned;
}

BufferStats LruBufferPool::stats() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return stats_;
}

void LruBufferPool::ResetStats() {
  std::lock_guard<std::mutex> lock(*mu_);
  stats_.Reset();
}

bool LruBufferPool::Quarantine(uint32_t page, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(*mu_);
  const auto it = frames_.find(FrameKey{page, epoch});
  if (it == frames_.end() || it->second.pins > 0) return false;
  lru_.erase(it->second.lru_it);
  frames_.erase(it);
  ++stats_.quarantines;
  return true;
}

void LruBufferPool::InvalidateBytes() {
  std::lock_guard<std::mutex> lock(*mu_);
  for (auto& [key, frame] : frames_) {
    frame.bytes.clear();
    frame.bytes.shrink_to_fit();
    frame.loaded = false;
  }
}

void LruBufferPool::Clear() {
  std::lock_guard<std::mutex> lock(*mu_);
  lru_.clear();
  frames_.clear();
}

std::vector<uint32_t> BufferManager::DirtyPagesSorted() const {
  std::vector<uint32_t> out(dirty_.begin(), dirty_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace natix
