#include "storage/buffer_manager.h"

#include <algorithm>

namespace natix {

Result<LruBufferPool> LruBufferPool::Create(size_t capacity) {
  if (capacity == 0) {
    return Status::InvalidArgument("buffer pool capacity must be positive");
  }
  return LruBufferPool(capacity);
}

LruBufferPool::LruBufferPool(size_t capacity) : capacity_(capacity) {
  frames_.reserve(capacity_);
}

bool LruBufferPool::Access(uint32_t page) {
  ++stats_.accesses;
  const auto it = frames_.find(page);
  if (it != frames_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++stats_.misses;
  if (lru_.size() >= capacity_) {
    ++stats_.evictions;
    frames_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(page);
  frames_[page] = lru_.begin();
  return false;
}

bool LruBufferPool::IsResident(uint32_t page) const {
  return frames_.contains(page);
}

void LruBufferPool::Clear() {
  lru_.clear();
  frames_.clear();
}

std::vector<uint32_t> BufferManager::DirtyPagesSorted() const {
  std::vector<uint32_t> out(dirty_.begin(), dirty_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace natix
