#ifndef NATIX_STORAGE_RECORD_MANAGER_H_
#define NATIX_STORAGE_RECORD_MANAGER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "storage/record.h"

namespace natix {

/// Places records on slotted pages, several records per page (Sec. 6.4:
/// "the record manager ... stores several records on a single disk
/// page"). Allocation is append-with-lookback: a new record is placed on
/// the first of the most recent `lookback` pages with enough free space,
/// otherwise on a fresh page. This reproduces the fragmentation behaviour
/// the paper observes (larger records leave more slack, so a layout with
/// fewer but larger records can occupy slightly *more* total disk space).
class RecordManager {
 public:
  /// Jumbo records (larger than one page) use this slot sentinel; their
  /// RecordId.page indexes the jumbo table with the high bit set.
  static constexpr uint16_t kJumboSlot = 0xFFFF;
  static constexpr uint32_t kJumboPageBit = 0x80000000u;

  explicit RecordManager(size_t page_size = 8192, int lookback = 8)
      : page_size_(page_size), lookback_(lookback) {}

  /// Stores a record, returns its id. Records larger than one page become
  /// *jumbo* records stored in a dedicated chain of pages (a rare case:
  /// e.g. a record whose node has very many cut-away child runs).
  Result<RecordId> Insert(const std::vector<uint8_t>& record);

  /// Read-only access to a stored record's bytes.
  Result<std::pair<const uint8_t*, size_t>> Get(RecordId id) const;

  size_t page_count() const { return pages_.size() + jumbo_pages_; }
  size_t record_count() const { return record_count_; }
  uint64_t disk_bytes() const { return page_count() * page_size_; }
  uint64_t payload_bytes() const { return payload_bytes_; }
  size_t jumbo_record_count() const { return jumbo_records_.size(); }
  /// Fraction of allocated page bytes actually occupied by records.
  double Utilization() const {
    return page_count() == 0
               ? 0.0
               : static_cast<double>(payload_bytes_) /
                     static_cast<double>(disk_bytes());
  }

 private:
  size_t page_size_;
  int lookback_;
  std::vector<Page> pages_;
  std::vector<std::vector<uint8_t>> jumbo_records_;
  size_t jumbo_pages_ = 0;
  size_t record_count_ = 0;
  uint64_t payload_bytes_ = 0;
};

}  // namespace natix

#endif  // NATIX_STORAGE_RECORD_MANAGER_H_
