#ifndef NATIX_STORAGE_RECORD_MANAGER_H_
#define NATIX_STORAGE_RECORD_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/page.h"
#include "storage/record.h"

namespace natix {

/// Counters for the copy-on-write retire/reclaim machinery backing
/// snapshot isolation. `retired_*`/`reclaimed_*` are cumulative;
/// `held_*` are gauges of pre-images currently kept alive for open
/// snapshots. All values are atomics read with relaxed ordering, so the
/// struct is safe to poll from reader threads mid-run.
struct MvccStats {
  uint64_t retired_frames = 0;
  uint64_t retired_bytes = 0;
  uint64_t reclaimed_frames = 0;
  uint64_t reclaimed_bytes = 0;
  uint64_t held_frames = 0;
  uint64_t held_bytes = 0;
  /// ReadPageAsOf() calls served from a retired pre-image vs. from the
  /// live page image.
  uint64_t snapshot_reads = 0;
  uint64_t current_reads = 0;
};

/// Places records on slotted pages, several records per page (Sec. 6.4:
/// "the record manager ... stores several records on a single disk
/// page"), and keeps them addressable under mutation. RecordIds are
/// *logical*: an indirection table maps them to physical (page, slot)
/// addresses, so Update() can relocate a grown record to another page --
/// the Kanne/Moerkotte record-split maintenance the incremental store is
/// built on -- without invalidating anything that points at it.
///
/// Allocation is append-with-lookback: a new record is placed on the
/// first of the most recent `lookback` pages with enough free space,
/// otherwise on a page freed up by earlier deletes/shrinks (tracked in a
/// lazily-validated candidate stack), otherwise on a fresh page. This
/// reproduces the fragmentation behaviour the paper observes (larger
/// records leave more slack, so a layout with fewer but larger records
/// can occupy slightly *more* total disk space).
class RecordManager : public PageProvider {
 public:
  /// Jumbo records (larger than one page) live in a dedicated chain of
  /// pages; their synthetic page number carries this bit so they share
  /// the page-id namespace used for buffer accounting.
  static constexpr uint32_t kJumboPageBit = 0x80000000u;

  /// Sentinel page id for unused/freed logical ids, exposed so snapshot
  /// address tables can test liveness without reaching into Entry.
  static constexpr uint32_t kInvalidPage = 0xFFFFFFFFu;

  explicit RecordManager(size_t page_size = 8192, int lookback = 8)
      : page_size_(page_size), lookback_(lookback),
        mvcc_(std::make_unique<MvccCounters>()) {}

  /// Stores a record, returns its logical id (freed ids are recycled).
  Result<RecordId> Insert(const std::vector<uint8_t>& record);

  /// Reserves a logical id without bytes. Self-describing records name
  /// each other by RecordId (proxies, aggregates), so a batch encode
  /// first allocates the ids of every record it will write, then
  /// serializes, then places each with InsertWithId(). A pending id is
  /// invisible to Get()/Update() until its bytes arrive.
  RecordId Allocate();

  /// Places bytes under an id reserved by Allocate().
  Status InsertWithId(RecordId id, const std::vector<uint8_t>& record);

  /// Physical (page, slot) address of a live record; for jumbo records
  /// the slot is 0 and the page carries kJumboPageBit.
  Result<std::pair<uint32_t, uint16_t>> AddressOf(RecordId id) const;

  /// Rewrites a record under its existing id. In place when the new bytes
  /// fit where the record lives; otherwise the record is relocated to
  /// another page (or to/from the jumbo chain) and the indirection table
  /// is repointed -- the id, and anything holding it, stays valid.
  Status Update(RecordId id, const std::vector<uint8_t>& record);

  /// Releases a record; its page space becomes reusable and its logical
  /// id is recycled by a later Insert().
  Status Free(RecordId id);

  /// Read-only access to a stored record's bytes.
  Result<std::pair<const uint8_t*, size_t>> Get(RecordId id) const;

  /// Physical page currently holding the record (jumbo records report
  /// their synthetic kJumboPageBit page id); 0xFFFFFFFF for invalid ids.
  /// This is what navigation charges page switches against -- it changes
  /// when a record relocates, which is exactly the point.
  uint32_t PageOf(RecordId id) const;

  bool IsJumbo(RecordId id) const;

  size_t page_count() const { return pages_.size() + jumbo_pages_; }
  /// Regular slotted pages only (page ids [0, regular_page_count()));
  /// jumbo chains live outside this range under synthetic ids.
  size_t regular_page_count() const { return pages_.size(); }
  size_t record_count() const { return live_records_; }
  uint64_t disk_bytes() const { return page_count() * page_size_; }
  uint64_t payload_bytes() const { return payload_bytes_; }
  size_t jumbo_record_count() const { return live_jumbos_; }
  /// Updates that had to move a record to a different page.
  uint64_t relocation_count() const { return relocations_; }
  /// Records freed over the manager's lifetime.
  uint64_t free_count() const { return frees_; }
  /// Total record payload bytes handed to Insert()/Update() over the
  /// manager's lifetime -- the denominator of the WAL write-amplification
  /// metric. Atomic so stats pollers on reader threads race with nothing.
  uint64_t record_bytes_written() const {
    return mvcc_->record_bytes_written.load(std::memory_order_relaxed);
  }

  // --- Versioned (MVCC) page resolution -------------------------------
  //
  // The store serializes writers; before each mutating operation it calls
  // BeginWriteEpoch() with the epoch the operation will publish as (the
  // store version after the op) and the high-water mark of currently open
  // snapshots. Every page mutation then runs copy-on-write: if the
  // page's current image is visible to an open snapshot, the pre-image is
  // retired into that page's epoch list before the bytes change, and the
  // page is stamped with the new epoch. Readers resolve (page, snapshot
  // version) through ReadPageAsOf(); retired images die only when every
  // snapshot at or below their epoch has closed (ReclaimRetired()).
  //
  // Thread contract: BeginWriteEpoch, the mutators and ReclaimRetired run
  // under the store's writer (unique) lock; ReadPageAsOf and
  // RecordBytesAsOf run under its reader (shared) lock.

  /// Arms copy-on-write for the next mutating operation. `epoch` is the
  /// version the operation publishes as; `snapshots_open` / `max_open`
  /// describe the snapshot registry at the time the writer lock was
  /// taken (no snapshot can open mid-operation).
  void BeginWriteEpoch(uint64_t epoch, bool snapshots_open,
                       uint64_t max_open);

  /// Epoch the page's current image became valid at (0 for never-mutated
  /// pages). The (page, epoch) pair identifies one immutable page image
  /// and keys buffer-pool frames.
  uint64_t PageEpochOf(uint32_t page_id) const;

  /// The page's image as visible to a snapshot pinned at `snapshot`:
  /// the live image when the page has not changed since, otherwise the
  /// retired pre-image whose validity interval covers `snapshot`.
  Result<std::vector<uint8_t>> ReadPageAsOf(uint32_t page_id,
                                            uint64_t snapshot) const;

  /// One record's bytes out of the page image visible at `snapshot` --
  /// the no-buffer-pool read path (copies only the record, not the whole
  /// page image). Jumbo pages ignore `slot` (the image is the record).
  Result<std::vector<uint8_t>> RecordBytesAsOf(uint32_t page_id,
                                               uint16_t slot,
                                               uint64_t snapshot) const;

  /// Drops every retired image no open snapshot can still reach:
  /// `min_open` is the smallest open snapshot version, or UINT64_MAX
  /// when none remain.
  void ReclaimRetired(uint64_t min_open);

  /// Copy of the logical-id indirection table (page, slot) -- dead ids
  /// report kInvalidPage. Snapshots capture this at open so address
  /// resolution needs no lock afterwards.
  std::vector<std::pair<uint32_t, uint16_t>> ExportAddresses() const;

  /// Copy of the page -> current-epoch map (pages absent are at epoch 0).
  std::unordered_map<uint32_t, uint64_t> ExportPageEpochs() const {
    return page_epochs_;
  }

  MvccStats mvcc_stats() const;

  /// Dirty-page tracker: every mutation reports the touched page (jumbo
  /// records under their synthetic kJumboPageBit id), and checkpointing
  /// flushes exactly the dirty set.
  BufferManager& buffer() { return buffer_; }
  const BufferManager& buffer() const { return buffer_; }

  /// Image of one page for checkpointing: the raw page bytes for slotted
  /// pages, the record content for a jumbo id.
  Result<std::vector<uint8_t>> PageImage(uint32_t page_id) const;

  /// PageProvider: the manager's in-memory page images are the default
  /// byte source for buffer-pool misses.
  Result<std::vector<uint8_t>> ReadPage(uint32_t page_id) const override {
    return PageImage(page_id);
  }

  /// Appends the manager's metadata (indirection table, free lists,
  /// counters -- everything except page contents) to `w`.
  void SerializeMeta(class ByteWriter* w) const;

  /// Rebuilds a manager from SerializeMeta() bytes. Pages come back
  /// zeroed; the caller then applies checkpoint page images with
  /// ApplyPageImage() and seals with FinishRestore().
  static Result<RecordManager> RestoreMeta(class ByteReader* r);

  /// Overwrites one page (or jumbo record) with a checkpoint image.
  /// Images from successive checkpoints are applied in log order, later
  /// ones superseding earlier ones.
  Status ApplyPageImage(uint32_t page_id, const uint8_t* data, size_t size);

  /// Finishes a restore: rebuilds the reuse-candidate stack, clears free
  /// jumbo slots, cross-checks the indirection table against the restored
  /// pages (every live id must resolve, byte totals must match) and marks
  /// everything clean.
  Status FinishRestore();

  /// Marks every page and jumbo record dirty, forcing the next
  /// checkpoint to write a complete image set instead of an incremental
  /// one. Rehabilitation needs this: truncating the log may erase a
  /// previously installed checkpoint, and the incremental dirty set --
  /// tracked relative to that erased checkpoint -- would no longer cover
  /// everything the surviving log is missing.
  void MarkAllPagesDirty();

  /// Page payload compactions performed (summed over all pages).
  uint64_t compaction_count() const;
  /// Fraction of allocated page bytes actually occupied by live records.
  double Utilization() const {
    return page_count() == 0
               ? 0.0
               : static_cast<double>(payload_bytes_) /
                     static_cast<double>(disk_bytes());
  }

 private:
  /// Physical address of a logical id. page == kNoPage: id unused/freed;
  /// page == kPendingPage: id reserved by Allocate() awaiting bytes;
  /// kJumboPageBit set (and neither sentinel): index into
  /// jumbo_records_. Both sentinels have the jumbo bit set, so every
  /// jumbo test must first rule them out via IsLivePage().
  struct Entry {
    uint32_t page = kNoPage;
    uint16_t slot = 0;
  };
  static constexpr uint32_t kNoPage = kInvalidPage;
  static constexpr uint32_t kPendingPage = 0xFFFFFFFEu;
  static bool IsLivePage(uint32_t page) {
    return page != kNoPage && page != kPendingPage;
  }

  size_t PagePayloadCapacity() const { return page_size_ - 16; }
  size_t JumboPagesFor(size_t bytes) const {
    return (bytes + PagePayloadCapacity() - 1) / PagePayloadCapacity();
  }
  /// Physically places the bytes (page with space, jumbo chain, or a
  /// fresh page).
  Result<Entry> Place(const std::vector<uint8_t>& record);
  /// Remembers that `page` gained free space (lazy, validated on pop).
  void NoteFreeSpace(uint32_t page);

  /// One retired page image and the closed interval of store versions it
  /// serves. Chains per page are appended in epoch order, so intervals
  /// are disjoint and ascending.
  struct RetiredImage {
    uint64_t valid_from;
    uint64_t valid_through;
    std::vector<uint8_t> bytes;
  };

  /// Atomic counter block behind a pointer so the manager stays movable.
  struct MvccCounters {
    std::atomic<uint64_t> record_bytes_written{0};
    std::atomic<uint64_t> retired_frames{0};
    std::atomic<uint64_t> retired_bytes{0};
    std::atomic<uint64_t> reclaimed_frames{0};
    std::atomic<uint64_t> reclaimed_bytes{0};
    std::atomic<uint64_t> snapshot_reads{0};
    std::atomic<uint64_t> current_reads{0};
  };

  /// Called before mutating an existing page: retires the pre-image if
  /// an open snapshot still sees it, then stamps the page with the
  /// current write epoch. Idempotent within one epoch.
  void PrepareCow(uint32_t page_id);
  /// Stamps a page whose prior content is unreachable (fresh pages,
  /// recycled jumbo slots): no pre-image to retire.
  void StampEpoch(uint32_t page_id);
  /// The image bytes visible at `snapshot` (live page or retired copy).
  Result<const std::vector<uint8_t>*> ImageAsOf(uint32_t page_id,
                                                uint64_t snapshot) const;
  void BumpRecordBytes(size_t n) {
    mvcc_->record_bytes_written.fetch_add(n, std::memory_order_relaxed);
  }

  size_t page_size_;
  int lookback_;
  std::vector<Page> pages_;
  std::vector<std::vector<uint8_t>> jumbo_records_;
  std::vector<uint32_t> free_jumbos_;
  std::vector<Entry> entries_;       // logical id -> physical address
  std::vector<uint32_t> free_ids_;   // recycled logical ids
  /// Pages that recently gained free space; stale entries are discarded
  /// when popped, so maintenance stays O(1) amortized per operation.
  std::vector<uint32_t> reuse_candidates_;
  size_t jumbo_pages_ = 0;
  size_t live_records_ = 0;
  size_t live_jumbos_ = 0;
  uint64_t payload_bytes_ = 0;
  uint64_t relocations_ = 0;
  uint64_t frees_ = 0;
  BufferManager buffer_;
  /// Epoch the next mutating operation publishes as (0 during bulk load
  /// and restore: no snapshots can exist yet).
  uint64_t write_epoch_ = 0;
  /// Whether the current operation must retire pre-images, and up to
  /// which snapshot version (set by BeginWriteEpoch).
  bool cow_armed_ = false;
  uint64_t cow_max_snapshot_ = 0;
  /// valid-from epoch of each page's current image; absent means 0.
  std::unordered_map<uint32_t, uint64_t> page_epochs_;
  /// Retired pre-images per page, oldest first.
  std::unordered_map<uint32_t, std::vector<RetiredImage>> retired_;
  std::unique_ptr<MvccCounters> mvcc_;
};

}  // namespace natix

#endif  // NATIX_STORAGE_RECORD_MANAGER_H_
