#ifndef NATIX_STORAGE_RECORD_MANAGER_H_
#define NATIX_STORAGE_RECORD_MANAGER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/page.h"
#include "storage/record.h"

namespace natix {

/// Places records on slotted pages, several records per page (Sec. 6.4:
/// "the record manager ... stores several records on a single disk
/// page"), and keeps them addressable under mutation. RecordIds are
/// *logical*: an indirection table maps them to physical (page, slot)
/// addresses, so Update() can relocate a grown record to another page --
/// the Kanne/Moerkotte record-split maintenance the incremental store is
/// built on -- without invalidating anything that points at it.
///
/// Allocation is append-with-lookback: a new record is placed on the
/// first of the most recent `lookback` pages with enough free space,
/// otherwise on a page freed up by earlier deletes/shrinks (tracked in a
/// lazily-validated candidate stack), otherwise on a fresh page. This
/// reproduces the fragmentation behaviour the paper observes (larger
/// records leave more slack, so a layout with fewer but larger records
/// can occupy slightly *more* total disk space).
class RecordManager : public PageProvider {
 public:
  /// Jumbo records (larger than one page) live in a dedicated chain of
  /// pages; their synthetic page number carries this bit so they share
  /// the page-id namespace used for buffer accounting.
  static constexpr uint32_t kJumboPageBit = 0x80000000u;

  explicit RecordManager(size_t page_size = 8192, int lookback = 8)
      : page_size_(page_size), lookback_(lookback) {}

  /// Stores a record, returns its logical id (freed ids are recycled).
  Result<RecordId> Insert(const std::vector<uint8_t>& record);

  /// Reserves a logical id without bytes. Self-describing records name
  /// each other by RecordId (proxies, aggregates), so a batch encode
  /// first allocates the ids of every record it will write, then
  /// serializes, then places each with InsertWithId(). A pending id is
  /// invisible to Get()/Update() until its bytes arrive.
  RecordId Allocate();

  /// Places bytes under an id reserved by Allocate().
  Status InsertWithId(RecordId id, const std::vector<uint8_t>& record);

  /// Physical (page, slot) address of a live record; for jumbo records
  /// the slot is 0 and the page carries kJumboPageBit.
  Result<std::pair<uint32_t, uint16_t>> AddressOf(RecordId id) const;

  /// Rewrites a record under its existing id. In place when the new bytes
  /// fit where the record lives; otherwise the record is relocated to
  /// another page (or to/from the jumbo chain) and the indirection table
  /// is repointed -- the id, and anything holding it, stays valid.
  Status Update(RecordId id, const std::vector<uint8_t>& record);

  /// Releases a record; its page space becomes reusable and its logical
  /// id is recycled by a later Insert().
  Status Free(RecordId id);

  /// Read-only access to a stored record's bytes.
  Result<std::pair<const uint8_t*, size_t>> Get(RecordId id) const;

  /// Physical page currently holding the record (jumbo records report
  /// their synthetic kJumboPageBit page id); 0xFFFFFFFF for invalid ids.
  /// This is what navigation charges page switches against -- it changes
  /// when a record relocates, which is exactly the point.
  uint32_t PageOf(RecordId id) const;

  bool IsJumbo(RecordId id) const;

  size_t page_count() const { return pages_.size() + jumbo_pages_; }
  /// Regular slotted pages only (page ids [0, regular_page_count()));
  /// jumbo chains live outside this range under synthetic ids.
  size_t regular_page_count() const { return pages_.size(); }
  size_t record_count() const { return live_records_; }
  uint64_t disk_bytes() const { return page_count() * page_size_; }
  uint64_t payload_bytes() const { return payload_bytes_; }
  size_t jumbo_record_count() const { return live_jumbos_; }
  /// Updates that had to move a record to a different page.
  uint64_t relocation_count() const { return relocations_; }
  /// Records freed over the manager's lifetime.
  uint64_t free_count() const { return frees_; }
  /// Total record payload bytes handed to Insert()/Update() over the
  /// manager's lifetime -- the denominator of the WAL write-amplification
  /// metric.
  uint64_t record_bytes_written() const { return record_bytes_written_; }

  /// Dirty-page tracker: every mutation reports the touched page (jumbo
  /// records under their synthetic kJumboPageBit id), and checkpointing
  /// flushes exactly the dirty set.
  BufferManager& buffer() { return buffer_; }
  const BufferManager& buffer() const { return buffer_; }

  /// Image of one page for checkpointing: the raw page bytes for slotted
  /// pages, the record content for a jumbo id.
  Result<std::vector<uint8_t>> PageImage(uint32_t page_id) const;

  /// PageProvider: the manager's in-memory page images are the default
  /// byte source for buffer-pool misses.
  Result<std::vector<uint8_t>> ReadPage(uint32_t page_id) const override {
    return PageImage(page_id);
  }

  /// Appends the manager's metadata (indirection table, free lists,
  /// counters -- everything except page contents) to `w`.
  void SerializeMeta(class ByteWriter* w) const;

  /// Rebuilds a manager from SerializeMeta() bytes. Pages come back
  /// zeroed; the caller then applies checkpoint page images with
  /// ApplyPageImage() and seals with FinishRestore().
  static Result<RecordManager> RestoreMeta(class ByteReader* r);

  /// Overwrites one page (or jumbo record) with a checkpoint image.
  /// Images from successive checkpoints are applied in log order, later
  /// ones superseding earlier ones.
  Status ApplyPageImage(uint32_t page_id, const uint8_t* data, size_t size);

  /// Finishes a restore: rebuilds the reuse-candidate stack, clears free
  /// jumbo slots, cross-checks the indirection table against the restored
  /// pages (every live id must resolve, byte totals must match) and marks
  /// everything clean.
  Status FinishRestore();
  /// Page payload compactions performed (summed over all pages).
  uint64_t compaction_count() const;
  /// Fraction of allocated page bytes actually occupied by live records.
  double Utilization() const {
    return page_count() == 0
               ? 0.0
               : static_cast<double>(payload_bytes_) /
                     static_cast<double>(disk_bytes());
  }

 private:
  /// Physical address of a logical id. page == kNoPage: id unused/freed;
  /// page == kPendingPage: id reserved by Allocate() awaiting bytes;
  /// kJumboPageBit set (and neither sentinel): index into
  /// jumbo_records_. Both sentinels have the jumbo bit set, so every
  /// jumbo test must first rule them out via IsLivePage().
  struct Entry {
    uint32_t page = kNoPage;
    uint16_t slot = 0;
  };
  static constexpr uint32_t kNoPage = 0xFFFFFFFFu;
  static constexpr uint32_t kPendingPage = 0xFFFFFFFEu;
  static bool IsLivePage(uint32_t page) {
    return page != kNoPage && page != kPendingPage;
  }

  size_t PagePayloadCapacity() const { return page_size_ - 16; }
  size_t JumboPagesFor(size_t bytes) const {
    return (bytes + PagePayloadCapacity() - 1) / PagePayloadCapacity();
  }
  /// Physically places the bytes (page with space, jumbo chain, or a
  /// fresh page).
  Result<Entry> Place(const std::vector<uint8_t>& record);
  /// Remembers that `page` gained free space (lazy, validated on pop).
  void NoteFreeSpace(uint32_t page);

  size_t page_size_;
  int lookback_;
  std::vector<Page> pages_;
  std::vector<std::vector<uint8_t>> jumbo_records_;
  std::vector<uint32_t> free_jumbos_;
  std::vector<Entry> entries_;       // logical id -> physical address
  std::vector<uint32_t> free_ids_;   // recycled logical ids
  /// Pages that recently gained free space; stale entries are discarded
  /// when popped, so maintenance stays O(1) amortized per operation.
  std::vector<uint32_t> reuse_candidates_;
  size_t jumbo_pages_ = 0;
  size_t live_records_ = 0;
  size_t live_jumbos_ = 0;
  uint64_t payload_bytes_ = 0;
  uint64_t relocations_ = 0;
  uint64_t frees_ = 0;
  uint64_t record_bytes_written_ = 0;
  BufferManager buffer_;
};

}  // namespace natix

#endif  // NATIX_STORAGE_RECORD_MANAGER_H_
