#ifndef NATIX_STORAGE_PAGE_H_
#define NATIX_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/status.h"

namespace natix {

/// A fixed-size slotted page, the disk allocation unit of the mini-Natix
/// storage engine. Records grow from the front of the payload area; the
/// slot directory grows from the back. Slots are never compacted (records
/// are write-once in this bulk-load engine).
///
/// Layout:
///   [0..8)                  header: payload_end (u32), slot_count (u32)
///   [8..payload_end)        record payloads
///   [size - 8*slot_count..) slot directory, 8 bytes per slot
///                           (offset u32, length u32), last slot first
class Page {
 public:
  explicit Page(size_t size) : data_(size, 0) {
    WriteU32(0, 8);  // payload starts after the header
    WriteU32(4, 0);  // no slots
  }

  size_t size() const { return data_.size(); }
  uint32_t slot_count() const { return ReadU32(4); }

  /// Bytes available for one more record's payload (its 8-byte directory
  /// entry already accounted).
  size_t FreeSpace() const {
    const size_t dir = 8ull * slot_count();
    const size_t used = ReadU32(0);  // includes the 8-byte header
    const size_t total = data_.size();
    if (used + dir + 8 >= total) return 0;
    return total - used - dir - 8;
  }

  /// Appends a record; returns its slot number, or ResourceExhausted if it
  /// does not fit.
  Result<uint16_t> Insert(const std::vector<uint8_t>& record);

  /// Read-only view of a record's bytes.
  Result<std::pair<const uint8_t*, size_t>> Get(uint16_t slot) const;

  /// Bytes wasted at the end of the payload area (fragmentation metric).
  size_t SlackBytes() const { return FreeSpace(); }

 private:
  uint32_t ReadU32(size_t off) const {
    uint32_t v;
    std::memcpy(&v, data_.data() + off, 4);
    return v;
  }
  void WriteU32(size_t off, uint32_t v) {
    std::memcpy(data_.data() + off, &v, 4);
  }

  std::vector<uint8_t> data_;
};

}  // namespace natix

#endif  // NATIX_STORAGE_PAGE_H_
