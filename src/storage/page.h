#ifndef NATIX_STORAGE_PAGE_H_
#define NATIX_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/status.h"

namespace natix {

/// A fixed-size slotted page, the disk allocation unit of the mini-Natix
/// storage engine. Records grow from the front of the payload area; the
/// slot directory grows from the back. Slots are stable (a record keeps
/// its slot number for its whole life on the page); freed slots are
/// tombstoned in the directory and reused by later insertions. Holes left
/// by Free() and by in-place shrinks are reclaimed by compaction, which
/// slides live payloads to the front without renumbering slots.
///
/// Layout:
///   [0..8)                  header: payload_end (u32), slot_count (u32)
///   [8..payload_end)        record payloads
///   [size - 8*slot_count..) slot directory, 8 bytes per slot
///                           (offset u32, length u32), last slot first;
///                           freed slots have offset == kFreedOffset
class Page {
 public:
  static constexpr uint32_t kFreedOffset = 0xFFFFFFFFu;
  /// Smallest page that can hold the header plus one slot entry.
  static constexpr size_t kMinPageSize = 16;

  explicit Page(size_t size) : data_(size, 0) {
    WriteU32(0, 8);  // payload starts after the header
    WriteU32(4, 0);  // no slots
  }

  /// Rebuilds a page from a raw image (checkpoint restore / WAL replay).
  /// The header and every directory entry are validated against the image
  /// bounds -- a corrupt or truncated image yields a Status, never an
  /// out-of-range read -- and the derived bookkeeping (hole bytes, free
  /// slot count) is recomputed from the directory.
  static Result<Page> FromImage(std::vector<uint8_t> data);

  /// Raw page bytes, the unit checkpointing writes to the WAL.
  const std::vector<uint8_t>& image() const { return data_; }

  size_t size() const { return data_.size(); }
  uint32_t slot_count() const { return ReadU32(4); }

  /// Bytes available for one more record's payload without compaction
  /// (a directory entry for it already accounted; reusing a freed slot
  /// costs nothing).
  size_t FreeSpace() const {
    const size_t dir = 8ull * slot_count();
    const size_t reserve = free_slots_ > 0 ? 0 : 8;
    const size_t used = ReadU32(0);  // includes the 8-byte header
    const size_t total = data_.size();
    if (used + dir + reserve >= total) return 0;
    return total - used - dir - reserve;
  }

  /// Bytes available for one more record counting reclaimable holes
  /// (freed records, shrink slack); reaching them may require Compact().
  size_t FreeTotal() const { return FreeSpace() + hole_bytes_; }

  /// Stores a record; returns its slot number (reusing a freed slot when
  /// one exists), or ResourceExhausted if it does not fit even after
  /// compaction or the directory already holds 65536 slots (slot numbers
  /// are 16-bit everywhere downstream). Compacts automatically when the
  /// contiguous tail is too small but the total free space suffices.
  Result<uint16_t> Insert(const std::vector<uint8_t>& record);

  /// Rewrites the record in `slot` with new bytes, keeping the slot
  /// number. Shrinks rewrite in place; growth appends to the payload tail
  /// (compacting first if needed). ResourceExhausted if the new size does
  /// not fit on this page at all -- the caller then relocates the record
  /// to another page.
  Status Update(uint16_t slot, const std::vector<uint8_t>& record);

  /// Frees the record in `slot`; its directory entry becomes a tombstone
  /// reusable by later insertions.
  Status Free(uint16_t slot);

  /// Read-only view of a record's bytes.
  Result<std::pair<const uint8_t*, size_t>> Get(uint16_t slot) const;

  /// Validated directory lookup: (payload offset, length) of the live
  /// record in `slot`. NotFound for out-of-range or tombstoned slots,
  /// ParseError when the entry points outside the payload area (corrupt
  /// image). All record accessors go through this, so a bad directory
  /// entry can never turn into an out-of-bounds read.
  Result<std::pair<uint32_t, uint32_t>> CheckedEntry(uint16_t slot) const;

  /// Validated directory lookup against a raw page image that has not
  /// been adopted into a Page -- the buffer pool reads frames as plain
  /// byte vectors and record-backed navigation locates record payloads
  /// inside them with this. Same checks as CheckedEntry().
  static Result<std::pair<uint32_t, uint32_t>> EntryInImage(
      const uint8_t* data, size_t size, uint16_t slot);

  /// Sum of live record payload bytes on this page.
  size_t LiveBytes() const;

  /// Bytes wasted at the end of the payload area (fragmentation metric).
  size_t SlackBytes() const { return FreeSpace(); }

  /// Number of tombstoned directory entries.
  uint32_t free_slot_count() const { return free_slots_; }
  /// How many times this page compacted its payload area.
  uint64_t compaction_count() const { return compactions_; }

 private:
  /// Adopts raw bytes without validation; only FromImage() uses this,
  /// after checking the header.
  explicit Page(std::vector<uint8_t> data) : data_(std::move(data)) {}

  uint32_t ReadU32(size_t off) const {
    uint32_t v;
    std::memcpy(&v, data_.data() + off, 4);
    return v;
  }
  void WriteU32(size_t off, uint32_t v) {
    std::memcpy(data_.data() + off, &v, 4);
  }
  size_t DirOffset(uint32_t slot) const {
    return data_.size() - 8ull * (slot + 1);
  }
  /// Contiguous payload tail assuming no new directory entry is needed.
  size_t TailSpace() const {
    const size_t used = ReadU32(0);
    const size_t dir = 8ull * slot_count();
    return used + dir >= data_.size() ? 0 : data_.size() - used - dir;
  }
  /// Slides live payloads to the front (slot numbers unchanged).
  void Compact();

  std::vector<uint8_t> data_;
  /// Reclaimable payload bytes: freed records + in-place shrink slack.
  size_t hole_bytes_ = 0;
  uint32_t free_slots_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace natix

#endif  // NATIX_STORAGE_PAGE_H_
