#include "storage/record_manager.h"

namespace natix {

Result<RecordId> RecordManager::Insert(const std::vector<uint8_t>& record) {
  // Try the most recent pages first (bulk load locality).
  const size_t first =
      pages_.size() > static_cast<size_t>(lookback_)
          ? pages_.size() - static_cast<size_t>(lookback_)
          : 0;
  for (size_t p = pages_.size(); p-- > first;) {
    if (pages_[p].FreeSpace() >= record.size()) {
      Result<uint16_t> slot = pages_[p].Insert(record);
      if (slot.ok()) {
        ++record_count_;
        payload_bytes_ += record.size();
        return RecordId{static_cast<uint32_t>(p), *slot};
      }
    }
  }
  Page page(page_size_);
  if (record.size() > page.FreeSpace()) {
    // Jumbo record: spans a dedicated chain of pages.
    const size_t payload_per_page = page_size_ - 16;
    jumbo_pages_ += (record.size() + payload_per_page - 1) / payload_per_page;
    jumbo_records_.push_back(record);
    ++record_count_;
    payload_bytes_ += record.size();
    return RecordId{
        static_cast<uint32_t>(jumbo_records_.size() - 1) | kJumboPageBit,
        kJumboSlot};
  }
  pages_.push_back(std::move(page));
  Result<uint16_t> slot = pages_.back().Insert(record);
  if (!slot.ok()) return slot.status();
  ++record_count_;
  payload_bytes_ += record.size();
  return RecordId{static_cast<uint32_t>(pages_.size() - 1), *slot};
}

Result<std::pair<const uint8_t*, size_t>> RecordManager::Get(
    RecordId id) const {
  if (id.slot == kJumboSlot) {
    const uint32_t index = id.page & ~kJumboPageBit;
    if (index >= jumbo_records_.size()) {
      return Status::NotFound("no such jumbo record: " +
                              std::to_string(index));
    }
    const std::vector<uint8_t>& rec = jumbo_records_[index];
    return std::make_pair(rec.data(), rec.size());
  }
  if (id.page >= pages_.size()) {
    return Status::NotFound("no such page: " + std::to_string(id.page));
  }
  return pages_[id.page].Get(id.slot);
}

}  // namespace natix
