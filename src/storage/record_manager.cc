#include "storage/record_manager.h"

#include <algorithm>

namespace natix {

namespace {
/// Bound on stale reuse candidates examined per placement, so a burst of
/// frees cannot make one insertion O(pages).
constexpr int kMaxCandidatePops = 16;
}  // namespace

void RecordManager::NoteFreeSpace(uint32_t page) {
  reuse_candidates_.push_back(page);
}

Result<RecordManager::Entry> RecordManager::Place(
    const std::vector<uint8_t>& record) {
  if (record.size() > PagePayloadCapacity()) {
    // Jumbo record: spans a dedicated chain of pages.
    uint32_t index;
    if (!free_jumbos_.empty()) {
      index = free_jumbos_.back();
      free_jumbos_.pop_back();
      jumbo_records_[index] = record;
    } else {
      index = static_cast<uint32_t>(jumbo_records_.size());
      jumbo_records_.push_back(record);
    }
    jumbo_pages_ += JumboPagesFor(record.size());
    ++live_jumbos_;
    return Entry{index | kJumboPageBit, 0};
  }
  // Try the most recent pages first (bulk load locality).
  const size_t first =
      pages_.size() > static_cast<size_t>(lookback_)
          ? pages_.size() - static_cast<size_t>(lookback_)
          : 0;
  for (size_t p = pages_.size(); p-- > first;) {
    if (pages_[p].FreeTotal() >= record.size()) {
      Result<uint16_t> slot = pages_[p].Insert(record);
      if (slot.ok()) return Entry{static_cast<uint32_t>(p), *slot};
    }
  }
  // Then pages that regained space through frees/shrinks.
  for (int pops = 0; pops < kMaxCandidatePops && !reuse_candidates_.empty();
       ++pops) {
    const uint32_t p = reuse_candidates_.back();
    reuse_candidates_.pop_back();
    if (pages_[p].FreeTotal() < record.size()) continue;
    Result<uint16_t> slot = pages_[p].Insert(record);
    if (!slot.ok()) continue;
    // The page may still have room for more; keep it as a candidate.
    if (pages_[p].FreeTotal() > 0) reuse_candidates_.push_back(p);
    return Entry{p, *slot};
  }
  pages_.emplace_back(page_size_);
  Result<uint16_t> slot = pages_.back().Insert(record);
  if (!slot.ok()) return slot.status();
  return Entry{static_cast<uint32_t>(pages_.size() - 1), *slot};
}

Result<RecordId> RecordManager::Insert(const std::vector<uint8_t>& record) {
  NATIX_ASSIGN_OR_RETURN(const Entry entry, Place(record));
  uint32_t id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
    entries_[id] = entry;
  } else {
    id = static_cast<uint32_t>(entries_.size());
    entries_.push_back(entry);
  }
  ++live_records_;
  payload_bytes_ += record.size();
  return RecordId{id};
}

Status RecordManager::Update(RecordId id, const std::vector<uint8_t>& record) {
  if (id.value >= entries_.size() || entries_[id.value].page == kNoPage) {
    return Status::NotFound("no such record: " + std::to_string(id.value));
  }
  Entry& entry = entries_[id.value];
  if (entry.page & kJumboPageBit) {
    const uint32_t index = entry.page & ~kJumboPageBit;
    std::vector<uint8_t>& old = jumbo_records_[index];
    payload_bytes_ -= old.size();
    jumbo_pages_ -= JumboPagesFor(old.size());
    if (record.size() > PagePayloadCapacity()) {
      // Jumbo stays jumbo: rewrite its chain in place.
      old = record;
      jumbo_pages_ += JumboPagesFor(record.size());
      payload_bytes_ += record.size();
      return Status::OK();
    }
    // Shrunk below a page: leave the jumbo chain, move to a slotted page.
    old.clear();
    old.shrink_to_fit();
    free_jumbos_.push_back(index);
    --live_jumbos_;
    NATIX_ASSIGN_OR_RETURN(entry, Place(record));
    payload_bytes_ += record.size();
    ++relocations_;
    return Status::OK();
  }
  Page& page = pages_[entry.page];
  NATIX_ASSIGN_OR_RETURN(const auto old, page.Get(entry.slot));
  const size_t old_size = old.second;
  if (record.size() <= PagePayloadCapacity() &&
      page.Update(entry.slot, record).ok()) {
    payload_bytes_ += record.size();
    payload_bytes_ -= old_size;
    if (record.size() < old_size) NoteFreeSpace(entry.page);
    return Status::OK();
  }
  // Does not fit where it lives (or outgrew pages entirely): relocate.
  NATIX_RETURN_NOT_OK(page.Free(entry.slot));
  NoteFreeSpace(entry.page);
  NATIX_ASSIGN_OR_RETURN(entry, Place(record));
  payload_bytes_ += record.size();
  payload_bytes_ -= old_size;
  ++relocations_;
  return Status::OK();
}

Status RecordManager::Free(RecordId id) {
  if (id.value >= entries_.size() || entries_[id.value].page == kNoPage) {
    return Status::NotFound("no such record: " + std::to_string(id.value));
  }
  Entry& entry = entries_[id.value];
  if (entry.page & kJumboPageBit) {
    const uint32_t index = entry.page & ~kJumboPageBit;
    std::vector<uint8_t>& rec = jumbo_records_[index];
    payload_bytes_ -= rec.size();
    jumbo_pages_ -= JumboPagesFor(rec.size());
    rec.clear();
    rec.shrink_to_fit();
    free_jumbos_.push_back(index);
    --live_jumbos_;
  } else {
    NATIX_ASSIGN_OR_RETURN(const auto bytes, pages_[entry.page].Get(entry.slot));
    payload_bytes_ -= bytes.second;
    NATIX_RETURN_NOT_OK(pages_[entry.page].Free(entry.slot));
    NoteFreeSpace(entry.page);
  }
  entry = Entry{};
  free_ids_.push_back(id.value);
  --live_records_;
  ++frees_;
  return Status::OK();
}

Result<std::pair<const uint8_t*, size_t>> RecordManager::Get(
    RecordId id) const {
  if (id.value >= entries_.size() || entries_[id.value].page == kNoPage) {
    return Status::NotFound("no such record: " + std::to_string(id.value));
  }
  const Entry& entry = entries_[id.value];
  if (entry.page & kJumboPageBit) {
    const std::vector<uint8_t>& rec =
        jumbo_records_[entry.page & ~kJumboPageBit];
    return std::make_pair(rec.data(), rec.size());
  }
  return pages_[entry.page].Get(entry.slot);
}

uint32_t RecordManager::PageOf(RecordId id) const {
  if (id.value >= entries_.size()) return kNoPage;
  return entries_[id.value].page;
}

bool RecordManager::IsJumbo(RecordId id) const {
  return id.value < entries_.size() && entries_[id.value].page != kNoPage &&
         (entries_[id.value].page & kJumboPageBit) != 0;
}

uint64_t RecordManager::compaction_count() const {
  uint64_t total = 0;
  for (const Page& p : pages_) total += p.compaction_count();
  return total;
}

}  // namespace natix
