#include "storage/record_manager.h"

#include <algorithm>

#include "common/bytes.h"

namespace natix {

namespace {
/// Bound on stale reuse candidates examined per placement, so a burst of
/// frees cannot make one insertion O(pages).
constexpr int kMaxCandidatePops = 16;
}  // namespace

void RecordManager::NoteFreeSpace(uint32_t page) {
  reuse_candidates_.push_back(page);
}

void RecordManager::BeginWriteEpoch(uint64_t epoch, bool snapshots_open,
                                    uint64_t max_open) {
  write_epoch_ = epoch;
  cow_armed_ = snapshots_open;
  cow_max_snapshot_ = max_open;
}

uint64_t RecordManager::PageEpochOf(uint32_t page_id) const {
  const auto it = page_epochs_.find(page_id);
  return it == page_epochs_.end() ? 0 : it->second;
}

void RecordManager::StampEpoch(uint32_t page_id) {
  if (write_epoch_ != 0) page_epochs_[page_id] = write_epoch_;
}

void RecordManager::PrepareCow(uint32_t page_id) {
  if (write_epoch_ == 0) return;  // bulk load / restore: nothing to isolate
  const uint64_t from = PageEpochOf(page_id);
  if (from >= write_epoch_) return;  // already copied this epoch
  if (cow_armed_ && from <= cow_max_snapshot_) {
    Result<std::vector<uint8_t>> image = PageImage(page_id);
    if (image.ok()) {
      mvcc_->retired_frames.fetch_add(1, std::memory_order_relaxed);
      mvcc_->retired_bytes.fetch_add(image->size(),
                                     std::memory_order_relaxed);
      retired_[page_id].push_back(
          RetiredImage{from, write_epoch_ - 1, std::move(image).value()});
    }
  }
  page_epochs_[page_id] = write_epoch_;
}

Result<const std::vector<uint8_t>*> RecordManager::ImageAsOf(
    uint32_t page_id, uint64_t snapshot) const {
  if (snapshot >= PageEpochOf(page_id)) {
    mvcc_->current_reads.fetch_add(1, std::memory_order_relaxed);
    if (page_id & kJumboPageBit) {
      const uint32_t index = page_id & ~kJumboPageBit;
      if (index >= jumbo_records_.size()) {
        return Status::NotFound("no such jumbo record: " +
                                std::to_string(index));
      }
      return &jumbo_records_[index];
    }
    if (page_id >= pages_.size()) {
      return Status::NotFound("no such page: " + std::to_string(page_id));
    }
    return &pages_[page_id].image();
  }
  const auto it = retired_.find(page_id);
  if (it != retired_.end()) {
    // Newest pre-images sit at the back; a fresh snapshot is most likely
    // to need the most recent one.
    for (auto img = it->second.rbegin(); img != it->second.rend(); ++img) {
      if (img->valid_from <= snapshot && snapshot <= img->valid_through) {
        mvcc_->snapshot_reads.fetch_add(1, std::memory_order_relaxed);
        return &img->bytes;
      }
    }
  }
  return Status::Internal("page " + std::to_string(page_id) +
                          " has no image visible at snapshot version " +
                          std::to_string(snapshot) +
                          " (frame reclaimed under an open snapshot?)");
}

Result<std::vector<uint8_t>> RecordManager::ReadPageAsOf(
    uint32_t page_id, uint64_t snapshot) const {
  NATIX_ASSIGN_OR_RETURN(const std::vector<uint8_t>* image,
                         ImageAsOf(page_id, snapshot));
  return *image;
}

Result<std::vector<uint8_t>> RecordManager::RecordBytesAsOf(
    uint32_t page_id, uint16_t slot, uint64_t snapshot) const {
  NATIX_ASSIGN_OR_RETURN(const std::vector<uint8_t>* image,
                         ImageAsOf(page_id, snapshot));
  if (page_id & kJumboPageBit) return *image;  // the image is the record
  NATIX_ASSIGN_OR_RETURN(const auto entry,
                         Page::EntryInImage(image->data(), image->size(),
                                            slot));
  return std::vector<uint8_t>(image->begin() + entry.first,
                              image->begin() + entry.first + entry.second);
}

void RecordManager::ReclaimRetired(uint64_t min_open) {
  for (auto it = retired_.begin(); it != retired_.end();) {
    std::vector<RetiredImage>& chain = it->second;
    uint64_t frames = 0, bytes = 0;
    chain.erase(std::remove_if(chain.begin(), chain.end(),
                               [&](const RetiredImage& img) {
                                 if (img.valid_through >= min_open) {
                                   return false;
                                 }
                                 ++frames;
                                 bytes += img.bytes.size();
                                 return true;
                               }),
                chain.end());
    if (frames > 0) {
      mvcc_->reclaimed_frames.fetch_add(frames, std::memory_order_relaxed);
      mvcc_->reclaimed_bytes.fetch_add(bytes, std::memory_order_relaxed);
    }
    it = chain.empty() ? retired_.erase(it) : std::next(it);
  }
}

std::vector<std::pair<uint32_t, uint16_t>> RecordManager::ExportAddresses()
    const {
  std::vector<std::pair<uint32_t, uint16_t>> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    out.emplace_back(IsLivePage(e.page) ? e.page : kInvalidPage, e.slot);
  }
  return out;
}

MvccStats RecordManager::mvcc_stats() const {
  MvccStats s;
  s.retired_frames = mvcc_->retired_frames.load(std::memory_order_relaxed);
  s.retired_bytes = mvcc_->retired_bytes.load(std::memory_order_relaxed);
  s.reclaimed_frames =
      mvcc_->reclaimed_frames.load(std::memory_order_relaxed);
  s.reclaimed_bytes = mvcc_->reclaimed_bytes.load(std::memory_order_relaxed);
  s.held_frames = s.retired_frames - s.reclaimed_frames;
  s.held_bytes = s.retired_bytes - s.reclaimed_bytes;
  s.snapshot_reads = mvcc_->snapshot_reads.load(std::memory_order_relaxed);
  s.current_reads = mvcc_->current_reads.load(std::memory_order_relaxed);
  return s;
}

Result<RecordManager::Entry> RecordManager::Place(
    const std::vector<uint8_t>& record) {
  if (record.size() > PagePayloadCapacity()) {
    // Jumbo record: spans a dedicated chain of pages.
    uint32_t index;
    if (!free_jumbos_.empty()) {
      index = free_jumbos_.back();
      free_jumbos_.pop_back();
      // The freed slot's pre-image was retired by Free(); its current
      // (cleared) content is unreachable, so stamp without retiring.
      StampEpoch(index | kJumboPageBit);
      jumbo_records_[index] = record;
    } else {
      index = static_cast<uint32_t>(jumbo_records_.size());
      jumbo_records_.push_back(record);
      StampEpoch(index | kJumboPageBit);
    }
    jumbo_pages_ += JumboPagesFor(record.size());
    ++live_jumbos_;
    buffer_.MarkDirty(index | kJumboPageBit);
    return Entry{index | kJumboPageBit, 0};
  }
  // Try the most recent pages first (bulk load locality).
  const size_t first =
      pages_.size() > static_cast<size_t>(lookback_)
          ? pages_.size() - static_cast<size_t>(lookback_)
          : 0;
  for (size_t p = pages_.size(); p-- > first;) {
    if (pages_[p].FreeTotal() >= record.size()) {
      PrepareCow(static_cast<uint32_t>(p));
      Result<uint16_t> slot = pages_[p].Insert(record);
      if (slot.ok()) {
        buffer_.MarkDirty(static_cast<uint32_t>(p));
        return Entry{static_cast<uint32_t>(p), *slot};
      }
    }
  }
  // Then pages that regained space through frees/shrinks.
  for (int pops = 0; pops < kMaxCandidatePops && !reuse_candidates_.empty();
       ++pops) {
    const uint32_t p = reuse_candidates_.back();
    reuse_candidates_.pop_back();
    if (pages_[p].FreeTotal() < record.size()) continue;
    PrepareCow(p);
    Result<uint16_t> slot = pages_[p].Insert(record);
    if (!slot.ok()) continue;
    // The page may still have room for more; keep it as a candidate.
    if (pages_[p].FreeTotal() > 0) reuse_candidates_.push_back(p);
    buffer_.MarkDirty(p);
    return Entry{p, *slot};
  }
  pages_.emplace_back(page_size_);
  StampEpoch(static_cast<uint32_t>(pages_.size() - 1));
  Result<uint16_t> slot = pages_.back().Insert(record);
  if (!slot.ok()) return slot.status();
  buffer_.MarkDirty(static_cast<uint32_t>(pages_.size() - 1));
  return Entry{static_cast<uint32_t>(pages_.size() - 1), *slot};
}

Result<RecordId> RecordManager::Insert(const std::vector<uint8_t>& record) {
  NATIX_ASSIGN_OR_RETURN(const Entry entry, Place(record));
  uint32_t id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
    entries_[id] = entry;
  } else {
    id = static_cast<uint32_t>(entries_.size());
    entries_.push_back(entry);
  }
  ++live_records_;
  payload_bytes_ += record.size();
  BumpRecordBytes(record.size());
  return RecordId{id};
}

RecordId RecordManager::Allocate() {
  uint32_t id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
    entries_[id] = Entry{kPendingPage, 0};
  } else {
    id = static_cast<uint32_t>(entries_.size());
    entries_.push_back(Entry{kPendingPage, 0});
  }
  return RecordId{id};
}

Status RecordManager::InsertWithId(RecordId id,
                                   const std::vector<uint8_t>& record) {
  if (id.value >= entries_.size() ||
      entries_[id.value].page != kPendingPage) {
    return Status::InvalidArgument("record id " + std::to_string(id.value) +
                                   " was not reserved by Allocate()");
  }
  NATIX_ASSIGN_OR_RETURN(const Entry entry, Place(record));
  entries_[id.value] = entry;
  ++live_records_;
  payload_bytes_ += record.size();
  BumpRecordBytes(record.size());
  return Status::OK();
}

Result<std::pair<uint32_t, uint16_t>> RecordManager::AddressOf(
    RecordId id) const {
  if (id.value >= entries_.size() || !IsLivePage(entries_[id.value].page)) {
    return Status::NotFound("no such record: " + std::to_string(id.value));
  }
  const Entry& entry = entries_[id.value];
  return std::make_pair(entry.page, entry.slot);
}

Status RecordManager::Update(RecordId id, const std::vector<uint8_t>& record) {
  if (id.value >= entries_.size() || !IsLivePage(entries_[id.value].page)) {
    return Status::NotFound("no such record: " + std::to_string(id.value));
  }
  BumpRecordBytes(record.size());
  Entry& entry = entries_[id.value];
  if (entry.page & kJumboPageBit) {
    PrepareCow(entry.page);
    const uint32_t index = entry.page & ~kJumboPageBit;
    std::vector<uint8_t>& old = jumbo_records_[index];
    payload_bytes_ -= old.size();
    jumbo_pages_ -= JumboPagesFor(old.size());
    if (record.size() > PagePayloadCapacity()) {
      // Jumbo stays jumbo: rewrite its chain in place.
      old = record;
      jumbo_pages_ += JumboPagesFor(record.size());
      payload_bytes_ += record.size();
      buffer_.MarkDirty(entry.page);
      return Status::OK();
    }
    // Shrunk below a page: leave the jumbo chain, move to a slotted page.
    old.clear();
    old.shrink_to_fit();
    free_jumbos_.push_back(index);
    --live_jumbos_;
    buffer_.MarkDirty(entry.page);
    NATIX_ASSIGN_OR_RETURN(entry, Place(record));
    payload_bytes_ += record.size();
    ++relocations_;
    return Status::OK();
  }
  Page& page = pages_[entry.page];
  NATIX_ASSIGN_OR_RETURN(const auto old, page.Get(entry.slot));
  const size_t old_size = old.second;
  PrepareCow(entry.page);
  if (record.size() <= PagePayloadCapacity() &&
      page.Update(entry.slot, record).ok()) {
    payload_bytes_ += record.size();
    payload_bytes_ -= old_size;
    if (record.size() < old_size) NoteFreeSpace(entry.page);
    buffer_.MarkDirty(entry.page);
    return Status::OK();
  }
  // Does not fit where it lives (or outgrew pages entirely): relocate.
  NATIX_RETURN_NOT_OK(page.Free(entry.slot));
  NoteFreeSpace(entry.page);
  buffer_.MarkDirty(entry.page);
  NATIX_ASSIGN_OR_RETURN(entry, Place(record));
  payload_bytes_ += record.size();
  payload_bytes_ -= old_size;
  ++relocations_;
  return Status::OK();
}

Status RecordManager::Free(RecordId id) {
  if (id.value >= entries_.size() || entries_[id.value].page == kNoPage) {
    return Status::NotFound("no such record: " + std::to_string(id.value));
  }
  Entry& entry = entries_[id.value];
  if (entry.page == kPendingPage) {
    // Reserved but never placed: just recycle the id.
    entry = Entry{};
    free_ids_.push_back(id.value);
    return Status::OK();
  }
  if (entry.page & kJumboPageBit) {
    PrepareCow(entry.page);
    const uint32_t index = entry.page & ~kJumboPageBit;
    std::vector<uint8_t>& rec = jumbo_records_[index];
    payload_bytes_ -= rec.size();
    jumbo_pages_ -= JumboPagesFor(rec.size());
    rec.clear();
    rec.shrink_to_fit();
    free_jumbos_.push_back(index);
    --live_jumbos_;
    buffer_.MarkDirty(entry.page);
  } else {
    NATIX_ASSIGN_OR_RETURN(const auto bytes, pages_[entry.page].Get(entry.slot));
    payload_bytes_ -= bytes.second;
    PrepareCow(entry.page);
    NATIX_RETURN_NOT_OK(pages_[entry.page].Free(entry.slot));
    NoteFreeSpace(entry.page);
    buffer_.MarkDirty(entry.page);
  }
  entry = Entry{};
  free_ids_.push_back(id.value);
  --live_records_;
  ++frees_;
  return Status::OK();
}

Result<std::pair<const uint8_t*, size_t>> RecordManager::Get(
    RecordId id) const {
  if (id.value >= entries_.size() || !IsLivePage(entries_[id.value].page)) {
    return Status::NotFound("no such record: " + std::to_string(id.value));
  }
  const Entry& entry = entries_[id.value];
  if (entry.page & kJumboPageBit) {
    const std::vector<uint8_t>& rec =
        jumbo_records_[entry.page & ~kJumboPageBit];
    return std::make_pair(rec.data(), rec.size());
  }
  return pages_[entry.page].Get(entry.slot);
}

uint32_t RecordManager::PageOf(RecordId id) const {
  if (id.value >= entries_.size()) return kNoPage;
  const uint32_t page = entries_[id.value].page;
  return page == kPendingPage ? kNoPage : page;
}

bool RecordManager::IsJumbo(RecordId id) const {
  return id.value < entries_.size() &&
         IsLivePage(entries_[id.value].page) &&
         (entries_[id.value].page & kJumboPageBit) != 0;
}

void RecordManager::MarkAllPagesDirty() {
  for (size_t p = 0; p < pages_.size(); ++p) {
    buffer_.MarkDirty(static_cast<uint32_t>(p));
  }
  // Freed jumbo slots are included: their image is the cleared record,
  // exactly what Free() already persists through the dirty set.
  for (size_t j = 0; j < jumbo_records_.size(); ++j) {
    buffer_.MarkDirty(static_cast<uint32_t>(j) | kJumboPageBit);
  }
}

uint64_t RecordManager::compaction_count() const {
  uint64_t total = 0;
  for (const Page& p : pages_) total += p.compaction_count();
  return total;
}

Result<std::vector<uint8_t>> RecordManager::PageImage(uint32_t page_id) const {
  if (page_id & kJumboPageBit) {
    const uint32_t index = page_id & ~kJumboPageBit;
    if (index >= jumbo_records_.size()) {
      return Status::NotFound("no such jumbo record: " + std::to_string(index));
    }
    return jumbo_records_[index];
  }
  if (page_id >= pages_.size()) {
    return Status::NotFound("no such page: " + std::to_string(page_id));
  }
  return pages_[page_id].image();
}

namespace {
constexpr uint32_t kRecordManagerFormatVersion = 1;
}  // namespace

void RecordManager::SerializeMeta(ByteWriter* w) const {
  w->U32(kRecordManagerFormatVersion);
  w->U64(page_size_);
  w->I32(lookback_);
  w->U64(pages_.size());
  w->U64(jumbo_records_.size());
  w->U64(entries_.size());
  for (const Entry& e : entries_) {
    w->U32(e.page);
    w->U16(e.slot);
  }
  w->U64(free_ids_.size());
  for (const uint32_t id : free_ids_) w->U32(id);
  w->U64(free_jumbos_.size());
  for (const uint32_t id : free_jumbos_) w->U32(id);
  w->U64(jumbo_pages_);
  w->U64(live_records_);
  w->U64(live_jumbos_);
  w->U64(payload_bytes_);
  w->U64(relocations_);
  w->U64(frees_);
  w->U64(record_bytes_written());
}

Result<RecordManager> RecordManager::RestoreMeta(ByteReader* r) {
  NATIX_ASSIGN_OR_RETURN(const uint32_t version, r->U32());
  if (version != kRecordManagerFormatVersion) {
    return Status::ParseError("unsupported record manager format version " +
                              std::to_string(version));
  }
  NATIX_ASSIGN_OR_RETURN(const uint64_t page_size, r->U64());
  NATIX_ASSIGN_OR_RETURN(const int32_t lookback, r->I32());
  if (page_size < Page::kMinPageSize || page_size > (1u << 30) ||
      lookback < 0) {
    return Status::ParseError("implausible record manager geometry");
  }
  RecordManager rm(static_cast<size_t>(page_size), lookback);
  NATIX_ASSIGN_OR_RETURN(const uint64_t page_count, r->U64());
  NATIX_ASSIGN_OR_RETURN(const uint64_t jumbo_count, r->U64());
  NATIX_ASSIGN_OR_RETURN(const uint64_t entry_count, r->U64());
  // Each serialized entry is 6 bytes; cheap plausibility bounds before
  // the allocations below. Page counts are not derivable from the entry
  // count (relocating updates mint pages without minting ids), so they
  // get a generous absolute cap instead.
  if (entry_count > r->remaining() / 6) {
    return Status::ParseError("record manager table sizes exceed payload");
  }
  constexpr uint64_t kMaxRestoredPages = 1ull << 24;
  if (page_count > kMaxRestoredPages || jumbo_count > kMaxRestoredPages) {
    return Status::ParseError("record manager page count implausibly large");
  }
  // Pages come back zeroed; checkpoint images overwrite them next.
  for (uint64_t i = 0; i < page_count; ++i) {
    rm.pages_.emplace_back(rm.page_size_);
  }
  rm.jumbo_records_.resize(static_cast<size_t>(jumbo_count));
  rm.entries_.reserve(static_cast<size_t>(entry_count));
  for (uint64_t i = 0; i < entry_count; ++i) {
    Entry e;
    NATIX_ASSIGN_OR_RETURN(e.page, r->U32());
    NATIX_ASSIGN_OR_RETURN(e.slot, r->U16());
    if (e.page == kPendingPage) {
      return Status::ParseError("record entry " + std::to_string(i) +
                                " was checkpointed while pending");
    }
    if (e.page != kNoPage) {
      const bool jumbo = (e.page & kJumboPageBit) != 0;
      const uint32_t index = e.page & ~kJumboPageBit;
      if ((jumbo && index >= jumbo_count) || (!jumbo && index >= page_count)) {
        return Status::ParseError("record entry " + std::to_string(i) +
                                  " points at a nonexistent page");
      }
    }
    rm.entries_.push_back(e);
  }
  NATIX_ASSIGN_OR_RETURN(const uint64_t free_id_count, r->U64());
  if (free_id_count > entry_count) {
    return Status::ParseError("free id list longer than the entry table");
  }
  for (uint64_t i = 0; i < free_id_count; ++i) {
    NATIX_ASSIGN_OR_RETURN(const uint32_t id, r->U32());
    if (id >= entry_count || rm.entries_[id].page != kNoPage) {
      return Status::ParseError("free id list names a live record");
    }
    rm.free_ids_.push_back(id);
  }
  NATIX_ASSIGN_OR_RETURN(const uint64_t free_jumbo_count, r->U64());
  if (free_jumbo_count > jumbo_count) {
    return Status::ParseError("free jumbo list longer than the jumbo table");
  }
  for (uint64_t i = 0; i < free_jumbo_count; ++i) {
    NATIX_ASSIGN_OR_RETURN(const uint32_t id, r->U32());
    if (id >= jumbo_count) {
      return Status::ParseError("free jumbo list out of range");
    }
    rm.free_jumbos_.push_back(id);
  }
  NATIX_ASSIGN_OR_RETURN(uint64_t v, r->U64());
  rm.jumbo_pages_ = static_cast<size_t>(v);
  NATIX_ASSIGN_OR_RETURN(v, r->U64());
  rm.live_records_ = static_cast<size_t>(v);
  NATIX_ASSIGN_OR_RETURN(v, r->U64());
  rm.live_jumbos_ = static_cast<size_t>(v);
  NATIX_ASSIGN_OR_RETURN(rm.payload_bytes_, r->U64());
  NATIX_ASSIGN_OR_RETURN(rm.relocations_, r->U64());
  NATIX_ASSIGN_OR_RETURN(rm.frees_, r->U64());
  NATIX_ASSIGN_OR_RETURN(const uint64_t record_bytes, r->U64());
  rm.mvcc_->record_bytes_written.store(record_bytes,
                                       std::memory_order_relaxed);
  return rm;
}

Status RecordManager::ApplyPageImage(uint32_t page_id, const uint8_t* data,
                                     size_t size) {
  if (page_id & kJumboPageBit) {
    const uint32_t index = page_id & ~kJumboPageBit;
    if (index >= jumbo_records_.size()) {
      return Status::ParseError("page image for nonexistent jumbo record " +
                                std::to_string(index));
    }
    jumbo_records_[index].assign(data, data + size);
    return Status::OK();
  }
  if (page_id >= pages_.size()) {
    return Status::ParseError("page image for nonexistent page " +
                              std::to_string(page_id));
  }
  if (size != page_size_) {
    return Status::ParseError("page image size " + std::to_string(size) +
                              " does not match page size " +
                              std::to_string(page_size_));
  }
  NATIX_ASSIGN_OR_RETURN(pages_[page_id],
                         Page::FromImage(std::vector<uint8_t>(data,
                                                              data + size)));
  return Status::OK();
}

Status RecordManager::FinishRestore() {
  // A freed jumbo slot may still carry content from an older checkpoint
  // image; drop it (the slot is reused only through Place(), which
  // rewrites the content anyway).
  for (const uint32_t index : free_jumbos_) {
    jumbo_records_[index].clear();
    jumbo_records_[index].shrink_to_fit();
  }
  // Cross-check the indirection table against the restored pages: every
  // live id must resolve to record bytes, and the totals must agree with
  // the checkpointed counters. This is what turns a subtly corrupt
  // checkpoint into a recovery error instead of silent bad answers.
  uint64_t live = 0, live_jumbo = 0, bytes = 0;
  for (size_t id = 0; id < entries_.size(); ++id) {
    const Entry& e = entries_[id];
    if (e.page == kNoPage) continue;
    ++live;
    if (e.page & kJumboPageBit) {
      ++live_jumbo;
      bytes += jumbo_records_[e.page & ~kJumboPageBit].size();
      continue;
    }
    Result<std::pair<const uint8_t*, size_t>> rec = pages_[e.page].Get(e.slot);
    if (!rec.ok()) {
      return Status::ParseError("record " + std::to_string(id) +
                                " does not resolve after restore: " +
                                rec.status().message());
    }
    bytes += rec->second;
  }
  if (live != live_records_ || live_jumbo != live_jumbos_ ||
      bytes != payload_bytes_) {
    return Status::ParseError(
        "restored record totals disagree with checkpoint counters");
  }
  // The reuse-candidate stack is advisory; reseed it with every page that
  // has reclaimable space.
  reuse_candidates_.clear();
  for (size_t p = 0; p < pages_.size(); ++p) {
    if (pages_[p].FreeTotal() > 0) {
      reuse_candidates_.push_back(static_cast<uint32_t>(p));
    }
  }
  buffer_.MarkAllClean();
  return Status::OK();
}

}  // namespace natix
