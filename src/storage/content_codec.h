#ifndef NATIX_STORAGE_CONTENT_CODEC_H_
#define NATIX_STORAGE_CONTENT_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace natix {

/// Lightweight text compression for record content payloads (format v3).
///
/// A canonical Huffman code over single bytes, built from a *builtin*
/// frequency table representative of XML character data (English text,
/// markup punctuation, digits). Using a fixed table instead of per-store
/// statistics keeps records self-describing: fsck, self-heal and
/// recovery can decode any v3 cell from its bytes alone, with no
/// side-channel dictionary that could itself be lost or corrupted. The
/// trade-off -- a few percent worse ratio than an adaptive code -- is
/// the right one for an integrity-checked store.
///
/// The code is deterministic: the same input always encodes to the same
/// bytes on every platform (the table is fixed and ties in the Huffman
/// build are broken by symbol value).
class ContentCodec {
 public:
  /// Encodes `raw` into `*out` (cleared first). Returns true when the
  /// encoded form is strictly smaller than the input; on false the
  /// caller should store the raw bytes (out's contents are unspecified).
  static bool Compress(std::string_view raw, std::vector<uint8_t>* out);

  /// Decodes exactly `raw_len` bytes from the `enc_len`-byte stream into
  /// `*out`. Returns false on a malformed stream: an invalid code, a
  /// stream that ends early, or one with leftover whole bytes. Corrupt
  /// cells are reported, never silently decoded to something else.
  static bool Decompress(const uint8_t* enc, size_t enc_len, size_t raw_len,
                         std::string* out);

  /// Longest code length in bits (exposed for the codec's own tests).
  static uint32_t MaxCodeBits();
};

}  // namespace natix

#endif  // NATIX_STORAGE_CONTENT_CODEC_H_
