#ifndef NATIX_STORAGE_SELF_HEAL_H_
#define NATIX_STORAGE_SELF_HEAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/page_integrity.h"
#include "storage/store.h"

namespace natix {

/// A PageProvider that repairs what it cannot read. Wraps a
/// FilePageSource (which already verifies every cell and retries
/// transients) and, when a read still fails with corruption, walks the
/// repair state machine:
///
///   1. quarantine -- the damaged page's buffer-pool frame is dropped so
///      no stale copy survives the repair (skipped while pinned);
///   2. restore -- a scratch store is recovered from the WAL
///      (last complete checkpoint image + op-tail replay, read-only via
///      NatixStore::RecoverForAudit) and asked for the page's
///      authoritative image;
///   3. rewrite -- the image is re-sealed under a fresh epoch and
///      written over the damaged cell in place (FileBackend::WriteAt);
///   4. retry -- the read goes back through the verifying primary
///      source, so a repair only counts once the rewritten cell passes
///      its CRC again.
///
/// Failing that -- no WAL attached, the WAL itself unrecoverable, or the
/// rewritten cell still bad -- the read fails loudly with Internal;
/// there is no silent fallback.
class SelfHealingPageSource : public PageProvider {
 public:
  /// `primary` must serve sealed cells from `page_file` (the repair
  /// rewrites cells there through WriteAt). `wal` is the durability log
  /// used as the clean source; pass null for a store without one --
  /// reads then fail loudly instead of healing. `pool` (optional) is
  /// the buffer pool whose frame for a damaged page gets quarantined.
  /// All pointers must outlive the source.
  SelfHealingPageSource(FilePageSource* primary, FileBackend* wal,
                        LruBufferPool* pool = nullptr)
      : primary_(primary), wal_(wal), pool_(pool) {}

  Result<std::vector<uint8_t>> ReadPage(uint32_t page_id) const override;

  /// Invoked (with the loud Internal error) whenever a page proves
  /// unrecoverable -- repair failed, or the resealed cell still does not
  /// verify. The owning store's NoteUnrecoverableFailure() is the
  /// intended sink: a page neither the file nor the WAL can produce is a
  /// kFailed-grade condition, not something a retry will fix. The
  /// callback must not re-enter this source and must not hold the
  /// store's writer lock when reads flow while it is held shared.
  void set_on_unrecoverable(std::function<void(const Status&)> cb) {
    on_unrecoverable_ = std::move(cb);
  }

  /// Healing counters, merged with the primary source's verification
  /// counters (pages_read, torn/checksum failures, transient retries).
  IntegrityStats stats() const;

 private:
  /// Steps 1-3 of the state machine; `why` is the original failure
  /// message, carried into the loud error when repair is impossible.
  Status RepairPage(uint32_t page_id, const std::string& why) const;

  FilePageSource* primary_;
  FileBackend* wal_;
  LruBufferPool* pool_;
  /// Scratch store recovered from wal_ on first repair; later repairs
  /// reuse it (the WAL does not change under an offline healing pass).
  mutable std::unique_ptr<NatixStore> scratch_;
  mutable IntegrityStats stats_;
  std::function<void(const Status&)> on_unrecoverable_;
};

}  // namespace natix

#endif  // NATIX_STORAGE_SELF_HEAL_H_
