#ifndef NATIX_STORAGE_BUFFER_MANAGER_H_
#define NATIX_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace natix {

/// Buffer access counters.
struct BufferStats {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;  // each miss models one page read from disk
  uint64_t evictions = 0;

  double HitRate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }
  void Reset() { *this = BufferStats(); }
};

/// An LRU page buffer, used to model cold-cache query behaviour.
///
/// The paper's query experiment deliberately runs with a buffer pool
/// larger than the document, eliminating I/O; this class enables the
/// complementary experiment: with a bounded buffer, a layout that packs a
/// query's working set into fewer pages (sibling partitioning) touches
/// fewer distinct pages and therefore faults less. Pages are identified
/// by number only; the actual bytes stay in the RecordManager (this is a
/// cache *model*, the data is already in memory).
class LruBufferPool {
 public:
  /// `capacity`: number of page frames; must be positive. A zero capacity
  /// is rejected with InvalidArgument -- this used to be an assert, which
  /// compiles out under NDEBUG (the default RelWithDebInfo build) and let
  /// a zero-capacity pool evict from an empty list.
  static Result<LruBufferPool> Create(size_t capacity);

  /// Touches a page: records a hit if resident, otherwise a miss (and an
  /// eviction if the pool was full). Returns true on a hit.
  bool Access(uint32_t page);

  /// True if the page is currently resident (no stats effect).
  bool IsResident(uint32_t page) const;

  size_t capacity() const { return capacity_; }
  size_t resident_count() const { return lru_.size(); }
  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Empties the pool (cold restart), keeping the stats.
  void Clear();

 private:
  explicit LruBufferPool(size_t capacity);

  size_t capacity_;
  /// Most-recently-used at the front.
  std::list<uint32_t> lru_;
  std::unordered_map<uint32_t, std::list<uint32_t>::iterator> frames_;
  BufferStats stats_;
};

/// Tracks which pages of a RecordManager have been mutated since the last
/// checkpoint. The durability layer flushes exactly this set as page
/// images when a checkpoint is taken; every page/jumbo mutation in the
/// RecordManager reports here. Page ids use the RecordManager convention:
/// plain slotted pages are their index, jumbo records carry the high bit.
class BufferManager {
 public:
  void MarkDirty(uint32_t page_id) { dirty_.insert(page_id); }
  bool IsDirty(uint32_t page_id) const { return dirty_.contains(page_id); }
  size_t dirty_count() const { return dirty_.size(); }

  /// Dirty page ids in ascending order (deterministic checkpoint layout).
  std::vector<uint32_t> DirtyPagesSorted() const;

  /// Called after a checkpoint commits or a restore completes: everything
  /// on "disk" (the WAL) now matches memory.
  void MarkAllClean() { dirty_.clear(); }

 private:
  std::unordered_set<uint32_t> dirty_;
};

}  // namespace natix

#endif  // NATIX_STORAGE_BUFFER_MANAGER_H_
