#ifndef NATIX_STORAGE_BUFFER_MANAGER_H_
#define NATIX_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace natix {

/// Buffer access counters.
struct BufferStats {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;  // each miss is one page read from the provider
  uint64_t evictions = 0;
  /// Frames dropped by Quarantine() after a failed integrity check.
  uint64_t quarantines = 0;
  /// Bytes actually fetched through a PageProvider on misses.
  uint64_t bytes_read = 0;
  /// Wall time spent inside PageProvider::ReadPage on misses.
  uint64_t read_ns = 0;
  /// Successful Pin() calls and their matching Unpin() calls. Equal once
  /// every reader has released its frames -- the pin-accounting invariant
  /// the eviction and quarantine paths are tested against.
  uint64_t pin_events = 0;
  uint64_t unpin_events = 0;
  /// Pins that found the frame already pinned by another reader (shared
  /// reader pins on one frame).
  uint64_t shared_pins = 0;
  /// Victim-scan skips of pinned frames: an eviction candidate was passed
  /// over because a reader still holds it. Snapshot readers assert their
  /// pinned frames are never reclaimed by watching this stay in lockstep
  /// with frame residency.
  uint64_t pinned_evictions_refused = 0;

  double HitRate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }
  void Reset() { *this = BufferStats(); }
};

/// Source of page bytes for buffer-pool misses. The RecordManager is the
/// default provider (its in-memory page images); FilePageSource serves
/// frames from a FileBackend for genuinely cold reads. Page ids use the
/// RecordManager convention: plain slotted pages are their index, jumbo
/// records carry the high bit and resolve to the record bytes themselves.
class PageProvider {
 public:
  virtual ~PageProvider() = default;
  virtual Result<std::vector<uint8_t>> ReadPage(uint32_t page_id) const = 0;
};

/// An LRU page buffer holding real frames.
///
/// The paper's query experiment deliberately runs with a buffer pool
/// larger than the document, eliminating I/O; this class enables the
/// complementary experiment: with a bounded buffer, a layout that packs a
/// query's working set into fewer pages (sibling partitioning) touches
/// fewer distinct pages and therefore faults less. Two usage modes share
/// the same LRU state and stats:
///   - Access() is the historical cache *model*: it touches a page id
///     without materializing bytes.
///   - Pin() additionally loads the frame's bytes through a PageProvider
///     on a miss and protects the frame from eviction until Unpin().
///     Record-backed navigation decodes node data straight out of pinned
///     frames.
/// The stats accounting (accesses/hits/misses/evictions) is identical in
/// both modes, so a pinned navigation run reproduces the model's counters
/// exactly as long as at most one frame is pinned at a time.
///
/// Frames are keyed by (page, epoch): a snapshot reader pins the page
/// image that was current at its pinned store version, so two snapshots
/// over different versions of the same page occupy distinct frames while
/// readers over the same version share one. Epoch 0 is the historical
/// single-version mode (Access() and default Pin() arguments).
///
/// Every public method takes an internal mutex, so one pool may be shared
/// by concurrent snapshot readers. Pins are shared (reader) pins: a frame
/// with pins > 0 is never evicted and never quarantined, and the bytes of
/// a loaded frame are immutable until the frame dies, so the pointer a
/// Pin() returns stays valid until the matching Unpin() regardless of
/// what other threads do. A miss loads bytes through the provider while
/// the pool lock is held, serializing concurrent misses (correctness
/// first; frame reads are memcpy-cheap for the in-memory providers).
class LruBufferPool {
 public:
  /// `capacity`: number of page frames; must be positive. A zero capacity
  /// is rejected with InvalidArgument -- this used to be an assert, which
  /// compiles out under NDEBUG (the default RelWithDebInfo build) and let
  /// a zero-capacity pool evict from an empty list.
  static Result<LruBufferPool> Create(size_t capacity);

  /// Touches a page: records a hit if resident, otherwise a miss (and an
  /// eviction if the pool was full). Returns true on a hit.
  bool Access(uint32_t page);

  /// Touches a page like Access(), loads its bytes through `provider` if
  /// the frame is not already materialized, and pins the frame. The
  /// returned vector stays valid until the matching Unpin(). With a null
  /// provider the frame stays byteless (model mode) and the returned
  /// pointer is to an empty vector. `epoch` selects which version of the
  /// page the frame holds; the provider passed alongside must serve
  /// exactly that version's bytes.
  Result<const std::vector<uint8_t>*> Pin(uint32_t page,
                                          const PageProvider* provider,
                                          uint64_t epoch = 0);

  /// Releases one pin on `page`'s frame at `epoch`. Unbalanced unpins are
  /// ignored (and not counted as unpin events).
  void Unpin(uint32_t page, uint64_t epoch = 0);

  /// True if the page is currently resident at `epoch` (no stats effect).
  bool IsResident(uint32_t page, uint64_t epoch = 0) const;

  size_t capacity() const { return capacity_; }
  size_t resident_count() const;
  size_t pinned_count() const;
  /// Snapshot of the counters, taken under the pool lock (safe to call
  /// from any thread while readers run).
  BufferStats stats() const;
  void ResetStats();

  /// Empties the pool (cold restart), keeping the stats. The caller must
  /// not hold pins across a Clear().
  void Clear();

  /// Evicts one frame outright because its bytes failed an integrity
  /// check -- quarantined bytes must not be served to later Pin()s, and
  /// unlike InvalidateBytes() the residency is dropped too (the page is
  /// suspect, not merely stale). Refuses (returns false) while the frame
  /// is pinned: a reader still holds a pointer into it. Returns true if
  /// a frame was dropped.
  bool Quarantine(uint32_t page, uint64_t epoch = 0);

  /// Drops every frame's bytes but keeps residency, pins and stats: the
  /// next Pin() of each page reloads through its provider. Predates
  /// epoch-keyed frames (snapshot readers never see stale bytes -- a
  /// mutated page publishes under a fresh epoch key); retained for
  /// provider-swap call sites. The caller must not hold pins (their frame
  /// bytes would be yanked mid-read).
  void InvalidateBytes();

 private:
  explicit LruBufferPool(size_t capacity);

  /// (page, epoch) identity of one immutable page image.
  struct FrameKey {
    uint32_t page = 0;
    uint64_t epoch = 0;
    bool operator==(const FrameKey&) const = default;
  };
  struct FrameKeyHash {
    size_t operator()(const FrameKey& k) const {
      // splitmix-style mix of the two halves.
      uint64_t x = (static_cast<uint64_t>(k.page) << 1) ^ k.epoch;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      return static_cast<size_t>(x * 0x94d049bb133111ebull);
    }
  };

  struct Frame {
    /// Position in lru_ (most-recently-used at the front).
    std::list<FrameKey>::iterator lru_it;
    /// Frame bytes; empty until a Pin() with a provider materializes it.
    std::vector<uint8_t> bytes;
    uint32_t pins = 0;
    bool loaded = false;
  };

  /// Shared touch path of Access()/Pin(): stats, LRU bump, eviction.
  /// Returns the touched frame (inserting an empty one on a miss).
  /// Caller holds mu_.
  Frame& Touch(FrameKey key);

  size_t capacity_;
  /// Heap-allocated so the pool stays movable (Result<LruBufferPool>).
  std::unique_ptr<std::mutex> mu_;
  std::list<FrameKey> lru_;
  std::unordered_map<FrameKey, Frame, FrameKeyHash> frames_;
  BufferStats stats_;
};

/// Tracks which pages of a RecordManager have been mutated since the last
/// checkpoint. The durability layer flushes exactly this set as page
/// images when a checkpoint is taken; every page/jumbo mutation in the
/// RecordManager reports here. Page ids use the RecordManager convention:
/// plain slotted pages are their index, jumbo records carry the high bit.
class BufferManager {
 public:
  void MarkDirty(uint32_t page_id) { dirty_.insert(page_id); }
  bool IsDirty(uint32_t page_id) const { return dirty_.contains(page_id); }
  size_t dirty_count() const { return dirty_.size(); }

  /// Dirty page ids in ascending order (deterministic checkpoint layout).
  std::vector<uint32_t> DirtyPagesSorted() const;

  /// Called after a checkpoint commits or a restore completes: everything
  /// on "disk" (the WAL) now matches memory.
  void MarkAllClean() { dirty_.clear(); }

 private:
  std::unordered_set<uint32_t> dirty_;
};

}  // namespace natix

#endif  // NATIX_STORAGE_BUFFER_MANAGER_H_
