#ifndef NATIX_STORAGE_FILE_BACKEND_H_
#define NATIX_STORAGE_FILE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace natix {

/// Byte-level storage the WAL writes through. The interface is the small
/// append-mostly subset a log needs; implementations are an in-memory
/// "disk" (tests, crash simulation) and a POSIX file (the CLI). Fault
/// injection wraps any backend (see fault_injector.h), which is how the
/// crash matrix kills the store at every I/O.
class FileBackend {
 public:
  virtual ~FileBackend() = default;

  /// Current size in bytes.
  virtual Result<uint64_t> Size() = 0;

  /// Appends `size` bytes at the end. A failure may leave a prefix of the
  /// bytes written (short/torn write) -- exactly what recovery must cope
  /// with.
  virtual Status Append(const void* data, size_t size) = 0;

  /// Reads exactly `size` bytes at `offset` into `out`; OutOfRange if the
  /// range extends past the end.
  virtual Status ReadAt(uint64_t offset, void* out, size_t size) = 0;

  /// Overwrites `size` bytes at `offset` (extending the file if the range
  /// runs past the end, like pwrite). Used by the repair path to rewrite
  /// a damaged page cell in place.
  virtual Status WriteAt(uint64_t offset, const void* data, size_t size) = 0;

  /// Shrinks the file to `size` bytes (drops a torn tail after recovery).
  virtual Status Truncate(uint64_t size) = 0;

  /// Makes everything appended so far durable.
  virtual Status Sync() = 0;
};

/// An in-memory FileBackend over a shared byte vector. The vector is the
/// simulated disk: tests keep a reference, destroy the store mid-workload
/// (the "crash"), and hand the surviving bytes to recovery.
class MemoryFileBackend : public FileBackend {
 public:
  using Bytes = std::vector<uint8_t>;

  /// Backend over a fresh empty "disk".
  MemoryFileBackend() : disk_(std::make_shared<Bytes>()) {}
  /// Backend over an existing "disk" (recovery attaches to the bytes the
  /// crashed store left behind).
  explicit MemoryFileBackend(std::shared_ptr<Bytes> disk)
      : disk_(std::move(disk)) {}

  const std::shared_ptr<Bytes>& disk() const { return disk_; }

  Result<uint64_t> Size() override { return uint64_t{disk_->size()}; }
  Status Append(const void* data, size_t size) override;
  Status ReadAt(uint64_t offset, void* out, size_t size) override;
  Status WriteAt(uint64_t offset, const void* data, size_t size) override;
  Status Truncate(uint64_t size) override;
  Status Sync() override { return Status::OK(); }

 private:
  std::shared_ptr<Bytes> disk_;
};

/// A FileBackend over a POSIX file, used by the CLI's --wal flag. Opens
/// (creating if needed) for read/append; Sync() is fdatasync.
///
/// Every pread/pwrite loops on EINTR and on partial transfers, and
/// retries transient device errors (EIO, EAGAIN) a bounded number of
/// times with exponential backoff before giving up with Unavailable --
/// a flaky device must be retried, a persistent one reported.
class PosixFileBackend : public FileBackend {
 public:
  static Result<std::unique_ptr<PosixFileBackend>> Open(
      const std::string& path);

  ~PosixFileBackend() override;
  PosixFileBackend(const PosixFileBackend&) = delete;
  PosixFileBackend& operator=(const PosixFileBackend&) = delete;

  Result<uint64_t> Size() override;
  Status Append(const void* data, size_t size) override;
  Status ReadAt(uint64_t offset, void* out, size_t size) override;
  Status WriteAt(uint64_t offset, const void* data, size_t size) override;
  Status Truncate(uint64_t size) override;
  Status Sync() override;

  /// Transient-error retries performed so far (EIO/EAGAIN that later
  /// succeeded or exhausted the budget).
  uint64_t transient_retries() const { return transient_retries_; }

 private:
  PosixFileBackend(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  /// Shared pread/pwrite loop: EINTR restarts immediately, transient
  /// errnos restart after backoff (up to kMaxTransientRetries), anything
  /// else is fatal.
  Status TransferAt(bool write, uint64_t offset, void* buf, size_t size);

  int fd_;
  std::string path_;
  uint64_t transient_retries_ = 0;
};

}  // namespace natix

#endif  // NATIX_STORAGE_FILE_BACKEND_H_
