#include "storage/content_codec.h"

#include <algorithm>
#include <array>
#include <queue>

namespace natix {

namespace {

/// Builtin byte frequencies: English letter statistics blended with the
/// punctuation XML character data actually contains (whitespace, digits,
/// markup-adjacent symbols). Every byte has a nonzero count so arbitrary
/// binary content stays encodable (just not profitably -- Compress then
/// reports false and the raw bytes are stored).
std::array<uint32_t, 256> BuiltinFrequencies() {
  std::array<uint32_t, 256> f;
  f.fill(1);
  f[' '] = 18000;
  f['\n'] = 900;
  f['\t'] = 300;
  // Lowercase letters, classic English distribution (per-100k scale).
  const struct { char c; uint32_t n; } kLower[] = {
      {'e', 12702}, {'t', 9056}, {'a', 8167}, {'o', 7507}, {'i', 6966},
      {'n', 6749},  {'s', 6327}, {'h', 6094}, {'r', 5987}, {'d', 4253},
      {'l', 4025},  {'c', 2782}, {'u', 2758}, {'m', 2406}, {'w', 2360},
      {'f', 2228},  {'g', 2015}, {'y', 1974}, {'p', 1929}, {'b', 1492},
      {'v', 978},   {'k', 772},  {'j', 153},  {'x', 150},  {'q', 95},
      {'z', 74}};
  for (const auto& e : kLower) {
    f[static_cast<uint8_t>(e.c)] = e.n;
    // Uppercase at roughly an eighth of the lowercase rate.
    f[static_cast<uint8_t>(e.c - 'a' + 'A')] = std::max(1u, e.n / 8);
  }
  for (char c = '0'; c <= '9'; ++c) f[static_cast<uint8_t>(c)] = 1100;
  const struct { char c; uint32_t n; } kPunct[] = {
      {'.', 1300}, {',', 1200}, {'-', 700}, {'\'', 500}, {'"', 400},
      {';', 300},  {':', 300},  {'!', 150}, {'?', 150},  {'(', 120},
      {')', 120},  {'/', 250},  {'&', 120}, {'%', 80},   {'$', 80},
      {'#', 60},   {'@', 60},   {'_', 200}, {'=', 100},  {'+', 60},
      {'*', 60},   {'<', 80},   {'>', 80}};
  for (const auto& e : kPunct) f[static_cast<uint8_t>(e.c)] = e.n;
  return f;
}

struct CodecTables {
  std::array<uint8_t, 256> len;     // code length per symbol, in bits
  std::array<uint32_t, 256> code;   // canonical code, MSB-aligned in len bits
  uint32_t max_bits = 0;
  // Canonical decode: per length l, the first code value of that length
  // and the index into `symbols` where its symbols start.
  std::array<uint32_t, 33> first_code;
  std::array<uint32_t, 33> count;
  std::array<uint32_t, 33> sym_base;
  std::array<uint8_t, 256> symbols;  // symbols ordered by (len, value)
};

/// Builds the Huffman code lengths for the builtin table, then assigns
/// canonical codes. Ties in the priority queue are broken by the lowest
/// contained symbol so the lengths are platform-independent.
CodecTables BuildTables() {
  const std::array<uint32_t, 256> freq = BuiltinFrequencies();
  struct HuffNode {
    uint64_t weight;
    int min_symbol;  // deterministic tie-break
    int left, right;  // -1 for leaves
    int symbol;
  };
  std::vector<HuffNode> nodes;
  nodes.reserve(511);
  using QE = std::pair<std::pair<uint64_t, int>, int>;  // ((w, min_sym), idx)
  std::priority_queue<QE, std::vector<QE>, std::greater<QE>> q;
  for (int s = 0; s < 256; ++s) {
    nodes.push_back({freq[s], s, -1, -1, s});
    q.push({{freq[s], s}, s});
  }
  while (q.size() > 1) {
    const QE a = q.top();
    q.pop();
    const QE b = q.top();
    q.pop();
    const int idx = static_cast<int>(nodes.size());
    nodes.push_back({a.first.first + b.first.first,
                     std::min(a.first.second, b.first.second), a.second,
                     b.second, -1});
    q.push({{nodes[idx].weight, nodes[idx].min_symbol}, idx});
  }
  CodecTables t{};
  // Iterative depth assignment.
  std::vector<std::pair<int, uint8_t>> stack = {
      {q.top().second, static_cast<uint8_t>(0)}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const HuffNode& n = nodes[idx];
    if (n.symbol >= 0) {
      t.len[n.symbol] = std::max<uint8_t>(1, depth);
      continue;
    }
    stack.push_back({n.left, static_cast<uint8_t>(depth + 1)});
    stack.push_back({n.right, static_cast<uint8_t>(depth + 1)});
  }
  // Canonical code assignment: symbols sorted by (length, value).
  t.count.fill(0);
  for (int s = 0; s < 256; ++s) {
    ++t.count[t.len[s]];
    t.max_bits = std::max<uint32_t>(t.max_bits, t.len[s]);
  }
  uint32_t code = 0;
  uint32_t base = 0;
  for (uint32_t l = 1; l <= t.max_bits; ++l) {
    code <<= 1;
    t.first_code[l] = code;
    t.sym_base[l] = base;
    code += t.count[l];
    base += t.count[l];
  }
  std::array<uint32_t, 33> next = t.first_code;
  std::array<uint32_t, 33> next_slot = t.sym_base;
  for (int s = 0; s < 256; ++s) {
    const uint8_t l = t.len[s];
    t.code[s] = next[l]++;
    t.symbols[next_slot[l]++] = static_cast<uint8_t>(s);
  }
  return t;
}

const CodecTables& Tables() {
  static const CodecTables& tables = *new CodecTables(BuildTables());
  return tables;
}

}  // namespace

bool ContentCodec::Compress(std::string_view raw, std::vector<uint8_t>* out) {
  if (raw.empty()) return false;
  const CodecTables& t = Tables();
  out->clear();
  out->reserve(raw.size());
  uint64_t bits = 0;
  uint32_t nbits = 0;
  for (const char c : raw) {
    const uint8_t s = static_cast<uint8_t>(c);
    bits = (bits << t.len[s]) | t.code[s];
    nbits += t.len[s];
    while (nbits >= 8) {
      out->push_back(static_cast<uint8_t>(bits >> (nbits - 8)));
      nbits -= 8;
      if (out->size() >= raw.size()) return false;  // not shrinking; bail
    }
  }
  if (nbits > 0) {
    out->push_back(static_cast<uint8_t>(bits << (8 - nbits)));
  }
  return out->size() < raw.size();
}

bool ContentCodec::Decompress(const uint8_t* enc, size_t enc_len,
                              size_t raw_len, std::string* out) {
  const CodecTables& t = Tables();
  out->clear();
  out->reserve(raw_len);
  size_t byte = 0;
  uint32_t bit = 0;  // bits consumed of enc[byte], MSB first
  uint32_t code = 0;
  uint32_t len = 0;
  while (out->size() < raw_len) {
    if (byte >= enc_len) return false;  // stream ended mid-symbol
    code = (code << 1) |
           (static_cast<uint32_t>(enc[byte] >> (7 - bit)) & 1u);
    ++len;
    if (++bit == 8) {
      bit = 0;
      ++byte;
    }
    if (len > t.max_bits) return false;  // no such code
    if (t.count[len] != 0 && code >= t.first_code[len] &&
        code < t.first_code[len] + t.count[len]) {
      out->push_back(static_cast<char>(
          t.symbols[t.sym_base[len] + (code - t.first_code[len])]));
      code = 0;
      len = 0;
    }
  }
  // The stream must end in the byte we stopped in: leftover whole bytes
  // mean the declared lengths and the payload disagree.
  const size_t used = byte + (bit != 0 ? 1 : 0);
  return used == enc_len;
}

uint32_t ContentCodec::MaxCodeBits() { return Tables().max_bits; }

}  // namespace natix
