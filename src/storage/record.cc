#include "storage/record.h"

#include <cstring>

namespace natix {

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t off = out->size();
  out->resize(off + 4);
  std::memcpy(out->data() + off, &v, 4);
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t off = out->size();
  out->resize(off + 8);
  std::memcpy(out->data() + off, &v, 8);
}

uint32_t GetU32(const uint8_t* data) {
  uint32_t v;
  std::memcpy(&v, data, 4);
  return v;
}

}  // namespace

void RecordBuilder::AddNode(NodeId node, int32_t parent_in_record,
                            uint8_t kind, int32_t label,
                            std::string_view content, bool overflow) {
  nodes_.push_back({node, parent_in_record, kind, label,
                    std::string(content), overflow});
}

void RecordBuilder::AddProxy(uint64_t record_ref) {
  proxies_.push_back(record_ref);
}

size_t RecordBuilder::ByteSize() const {
  size_t bytes = 8;                      // counts
  bytes += nodes_.size() * 8;            // structure entries
  bytes += proxies_.size() * 8;          // proxy entries
  for (const PendingNode& n : nodes_) {
    bytes += slot_size_;  // header slot
    if (n.overflow) {
      bytes += slot_size_;  // overflow reference slot
    } else if (!n.content.empty()) {
      const size_t slots = (n.content.size() + slot_size_ - 1) / slot_size_;
      bytes += slots * slot_size_;
    }
  }
  return bytes;
}

std::vector<uint8_t> RecordBuilder::Build() const {
  std::vector<uint8_t> out;
  out.reserve(ByteSize());
  PutU32(&out, static_cast<uint32_t>(nodes_.size()));
  PutU32(&out, static_cast<uint32_t>(proxies_.size()));
  for (const PendingNode& n : nodes_) {
    PutU32(&out, n.node);
    PutU32(&out, static_cast<uint32_t>(n.parent_in_record));
  }
  for (const uint64_t p : proxies_) PutU64(&out, p);
  for (const PendingNode& n : nodes_) {
    const uint32_t content_slots =
        n.overflow ? 0
                   : static_cast<uint32_t>(
                         (n.content.size() + slot_size_ - 1) / slot_size_);
    // Header slot: kind, flags, content slot count, label.
    const size_t off = out.size();
    out.resize(off + slot_size_, 0);
    out[off] = n.kind;
    out[off + 1] = n.overflow ? 1 : 0;
    const uint16_t cs16 = static_cast<uint16_t>(content_slots);
    std::memcpy(out.data() + off + 2, &cs16, 2);
    std::memcpy(out.data() + off + 4, &n.label, 4);
    if (n.overflow) {
      // Overflow reference slot (the externalized content length).
      const uint64_t ref = n.content.size();
      PutU64(&out, ref);
    } else if (!n.content.empty()) {
      const size_t coff = out.size();
      out.resize(coff + static_cast<size_t>(content_slots) * slot_size_, 0);
      std::memcpy(out.data() + coff, n.content.data(), n.content.size());
    }
  }
  return out;
}

Result<DecodedRecord> DecodeRecord(const uint8_t* data, size_t size,
                                   uint32_t slot_size) {
  if (size < 8) return Status::ParseError("record too small");
  DecodedRecord rec;
  const uint32_t node_count = GetU32(data);
  rec.proxy_count = GetU32(data + 4);
  size_t off = 8;
  if (size < off + 8ull * node_count + 8ull * rec.proxy_count) {
    return Status::ParseError("record truncated in structure section");
  }
  rec.nodes.resize(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    rec.nodes[i].node = GetU32(data + off);
    rec.nodes[i].parent_in_record = static_cast<int32_t>(GetU32(data + off + 4));
    off += 8;
  }
  off += 8ull * rec.proxy_count;
  for (uint32_t i = 0; i < node_count; ++i) {
    if (off + slot_size > size) {
      return Status::ParseError("record truncated in node data");
    }
    RecordNode& n = rec.nodes[i];
    n.kind = data[off];
    const bool overflow = (data[off + 1] & 1) != 0;
    n.overflow = overflow;
    uint16_t content_slots;
    std::memcpy(&content_slots, data + off + 2, 2);
    std::memcpy(&n.label, data + off + 4, 4);
    off += slot_size;
    if (overflow) {
      if (off + 8 > size) {
        return Status::ParseError("record truncated in overflow reference");
      }
      uint64_t ref;
      std::memcpy(&ref, data + off, 8);
      n.content_bytes = static_cast<uint32_t>(ref);
      off += 8;
    } else {
      n.content_bytes = content_slots * slot_size;
      off += static_cast<size_t>(content_slots) * slot_size;
      if (off > size) {
        return Status::ParseError("record truncated in content");
      }
    }
  }
  return rec;
}

}  // namespace natix
