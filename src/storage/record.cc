#include "storage/record.h"

#include <algorithm>
#include <cstring>

namespace natix {

namespace {

constexpr uint16_t kRecordFormatVersion = 2;
constexpr uint16_t kFlagWideTopology = 1;
constexpr size_t kHeaderBytes = 28;
constexpr size_t kNarrowEntryBytes = 16;
constexpr size_t kWideEntryBytes = 28;
constexpr size_t kProxyBytes = 20;
constexpr uint16_t kNarrowNone = 0xFFFFu;
constexpr uint16_t kNarrowRemote = 0xFFFEu;
constexpr uint32_t kWideNone = 0xFFFFFFFFu;
constexpr uint32_t kWideRemote = 0xFFFFFFFEu;

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  const size_t off = out->size();
  out->resize(off + 2);
  std::memcpy(out->data() + off, &v, 2);
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t off = out->size();
  out->resize(off + 4);
  std::memcpy(out->data() + off, &v, 4);
}

uint16_t GetU16(const uint8_t* data) {
  uint16_t v;
  std::memcpy(&v, data, 2);
  return v;
}

uint32_t GetU32(const uint8_t* data) {
  uint32_t v;
  std::memcpy(&v, data, 4);
  return v;
}

uint32_t ProxyKey(uint32_t from_index, RecordEdge edge) {
  return (from_index << 2) | static_cast<uint32_t>(edge);
}

/// Slots a node's data occupies: the header slot plus either one
/// overflow slot or its inline content slots.
uint64_t NodeDataSlots(bool overflow, uint64_t content_size,
                       uint32_t slot_size) {
  if (overflow) return 2;
  return 1 + (content_size + slot_size - 1) / slot_size;
}

}  // namespace

void RecordBuilder::AddNode(const RecordNodeSpec& spec) {
  PendingNode pending;
  pending.spec = spec;
  pending.content.assign(spec.content.begin(), spec.content.end());
  pending.spec.content = {};  // Build() reads the owned copy.
  nodes_.push_back(std::move(pending));
}

void RecordBuilder::AddProxy(const RecordProxy& proxy) {
  proxies_.push_back(proxy);
}

void RecordBuilder::SetAggregate(const RecordAggregate& aggregate) {
  aggregate_ = aggregate;
}

size_t RecordBuilder::DataSlots() const {
  uint64_t slots = 0;
  for (const PendingNode& n : nodes_) {
    slots += NodeDataSlots(n.spec.overflow, n.content.size(), slot_size_);
  }
  return static_cast<size_t>(slots);
}

bool RecordBuilder::NeedsWide() const {
  if (nodes_.size() > kNarrowRemote - 1) return true;
  if (DataSlots() > kNarrowNone) return true;
  for (const PendingNode& n : nodes_) {
    if (n.spec.weight > kNarrowNone) return true;
  }
  return false;
}

size_t RecordBuilder::ByteSize() const {
  const size_t entry = NeedsWide() ? kWideEntryBytes : kNarrowEntryBytes;
  return kHeaderBytes + nodes_.size() * entry + proxies_.size() * kProxyBytes +
         DataSlots() * slot_size_;
}

Result<std::vector<uint8_t>> RecordBuilder::Build() const {
  if (slot_size_ < 8 || slot_size_ > 128) {
    return Status::InvalidArgument("record slot size must be in [8, 128]");
  }
  const uint32_t node_count = static_cast<uint32_t>(nodes_.size());
  const bool wide = NeedsWide();
  // Validate links and slot geometry before writing anything.
  for (const PendingNode& n : nodes_) {
    for (const int32_t link : {n.spec.parent, n.spec.first_child,
                               n.spec.next_sibling, n.spec.prev_sibling}) {
      if (link != kEdgeNone && link != kEdgeRemote &&
          (link < 0 || static_cast<uint32_t>(link) >= node_count)) {
        return Status::InvalidArgument("record link index out of range");
      }
    }
    if (!n.spec.overflow) {
      const uint64_t slots =
          (n.content.size() + slot_size_ - 1) / slot_size_;
      if (slots > kNarrowNone) {
        return Status::InvalidArgument(
            "inline content too large for content_slots field");
      }
    }
  }

  std::vector<RecordProxy> proxies = proxies_;
  std::sort(proxies.begin(), proxies.end(),
            [](const RecordProxy& a, const RecordProxy& b) {
              return ProxyKey(a.from_index, a.edge) <
                     ProxyKey(b.from_index, b.edge);
            });
  for (size_t j = 1; j < proxies.size(); ++j) {
    if (ProxyKey(proxies[j - 1].from_index, proxies[j - 1].edge) ==
        ProxyKey(proxies[j].from_index, proxies[j].edge)) {
      return Status::InvalidArgument("duplicate proxy for the same edge");
    }
  }

  std::vector<uint8_t> out;
  out.reserve(ByteSize());
  PutU16(&out, kRecordFormatVersion);
  PutU16(&out, wide ? kFlagWideTopology : 0);
  PutU32(&out, node_count);
  PutU32(&out, static_cast<uint32_t>(proxies.size()));
  PutU32(&out, aggregate_.parent_node);
  PutU32(&out, aggregate_.parent_partition);
  PutU32(&out, aggregate_.parent_record.value);
  PutU32(&out, aggregate_.parent_slot);

  const auto encode_link = [&](int32_t link) -> uint32_t {
    if (wide) {
      if (link == kEdgeNone) return kWideNone;
      if (link == kEdgeRemote) return kWideRemote;
      return static_cast<uint32_t>(link);
    }
    if (link == kEdgeNone) return kNarrowNone;
    if (link == kEdgeRemote) return kNarrowRemote;
    return static_cast<uint32_t>(link);
  };

  uint64_t slot_cursor = 0;
  for (const PendingNode& n : nodes_) {
    PutU32(&out, n.spec.node);
    if (wide) {
      PutU32(&out, static_cast<uint32_t>(n.spec.weight));
      PutU32(&out, encode_link(n.spec.parent));
      PutU32(&out, encode_link(n.spec.first_child));
      PutU32(&out, encode_link(n.spec.next_sibling));
      PutU32(&out, encode_link(n.spec.prev_sibling));
      PutU32(&out, static_cast<uint32_t>(slot_cursor));
    } else {
      PutU16(&out, static_cast<uint16_t>(n.spec.weight));
      PutU16(&out, static_cast<uint16_t>(encode_link(n.spec.parent)));
      PutU16(&out, static_cast<uint16_t>(encode_link(n.spec.first_child)));
      PutU16(&out, static_cast<uint16_t>(encode_link(n.spec.next_sibling)));
      PutU16(&out, static_cast<uint16_t>(encode_link(n.spec.prev_sibling)));
      PutU16(&out, static_cast<uint16_t>(slot_cursor));
    }
    slot_cursor += NodeDataSlots(n.spec.overflow, n.content.size(),
                                 slot_size_);
  }

  for (const RecordProxy& p : proxies) {
    PutU32(&out, ProxyKey(p.from_index, p.edge));
    PutU32(&out, p.target_node);
    PutU32(&out, p.target_partition);
    PutU32(&out, p.target_record.value);
    PutU32(&out, p.target_slot);
  }

  for (const PendingNode& n : nodes_) {
    const uint32_t content_slots =
        n.spec.overflow
            ? 0
            : static_cast<uint32_t>(
                  (n.content.size() + slot_size_ - 1) / slot_size_);
    const uint32_t pad =
        n.spec.overflow
            ? 0
            : static_cast<uint32_t>(content_slots * slot_size_ -
                                    n.content.size());
    // Header slot: kind, flags (overflow bit + pad count), content slot
    // count, label.
    const size_t off = out.size();
    out.resize(off + slot_size_, 0);
    out[off] = n.spec.kind;
    out[off + 1] = static_cast<uint8_t>((n.spec.overflow ? 1 : 0) |
                                        (pad << 1));
    const uint16_t cs16 = static_cast<uint16_t>(content_slots);
    std::memcpy(out.data() + off + 2, &cs16, 2);
    std::memcpy(out.data() + off + 4, &n.spec.label, 4);
    if (n.spec.overflow) {
      // Overflow slot: the externalized content length.
      const size_t ooff = out.size();
      out.resize(ooff + slot_size_, 0);
      const uint64_t ref = n.content.size();
      std::memcpy(out.data() + ooff, &ref, 8);
    } else if (!n.content.empty()) {
      const size_t coff = out.size();
      out.resize(coff + static_cast<size_t>(content_slots) * slot_size_, 0);
      std::memcpy(out.data() + coff, n.content.data(), n.content.size());
    }
  }
  return out;
}

size_t RecordView::TopoEntryOff(uint32_t i) const {
  return topo_off_ + static_cast<size_t>(i) *
                         (wide_ ? kWideEntryBytes : kNarrowEntryBytes);
}

uint32_t RecordView::TopoField(uint32_t i, uint32_t field) const {
  const size_t off = TopoEntryOff(i);
  if (wide_) return GetU32(data_ + off + 4 * field);
  if (field == 0) return GetU32(data_ + off);
  return GetU16(data_ + off + 4 + 2 * (field - 1));
}

int32_t RecordView::TopoLink(uint32_t i, uint32_t field) const {
  const uint32_t raw = TopoField(i, field);
  if (wide_) {
    if (raw == kWideNone) return kEdgeNone;
    if (raw == kWideRemote) return kEdgeRemote;
  } else {
    if (raw == kNarrowNone) return kEdgeNone;
    if (raw == kNarrowRemote) return kEdgeRemote;
  }
  return static_cast<int32_t>(raw);
}

const uint8_t* RecordView::DataSlot(uint32_t i) const {
  return data_ + data_off_ +
         static_cast<size_t>(TopoField(i, 6)) * slot_size_;
}

Result<RecordView> RecordView::Parse(const uint8_t* data, size_t size,
                                     uint32_t slot_size) {
  if (slot_size < 8 || slot_size > 128) {
    return Status::InvalidArgument("record slot size must be in [8, 128]");
  }
  if (size < kHeaderBytes) return Status::ParseError("record too small");
  RecordView view;
  view.data_ = data;
  view.size_ = size;
  view.slot_size_ = slot_size;
  const uint16_t version = GetU16(data);
  if (version != kRecordFormatVersion) {
    return Status::ParseError("unsupported record format version");
  }
  const uint16_t flags = GetU16(data + 2);
  view.wide_ = (flags & kFlagWideTopology) != 0;
  view.node_count_ = GetU32(data + 4);
  view.proxy_count_ = GetU32(data + 8);
  view.topo_off_ = kHeaderBytes;
  const uint64_t entry =
      view.wide_ ? kWideEntryBytes : kNarrowEntryBytes;
  const uint64_t topo_bytes = entry * view.node_count_;
  const uint64_t proxy_bytes =
      static_cast<uint64_t>(kProxyBytes) * view.proxy_count_;
  if (kHeaderBytes + topo_bytes + proxy_bytes > size) {
    return Status::ParseError("record truncated in topology section");
  }
  view.proxy_off_ = kHeaderBytes + static_cast<size_t>(topo_bytes);
  view.data_off_ = view.proxy_off_ + static_cast<size_t>(proxy_bytes);
  // Validate every node's links and data-slot geometry once, so the
  // accessors can read without bounds checks.
  for (uint32_t i = 0; i < view.node_count_; ++i) {
    for (uint32_t field = 2; field <= 5; ++field) {
      const int32_t link = view.TopoLink(i, field);
      if (link != kEdgeNone && link != kEdgeRemote &&
          static_cast<uint32_t>(link) >= view.node_count_) {
        return Status::ParseError("record link index out of range");
      }
    }
    const uint64_t slot_off = view.TopoField(i, 6);
    const uint64_t header_at =
        view.data_off_ + slot_off * slot_size;
    if (header_at + slot_size > size) {
      return Status::ParseError("record truncated in node data");
    }
    const uint8_t* header = data + header_at;
    const bool overflow = (header[1] & 1) != 0;
    const uint32_t pad = header[1] >> 1;
    const uint16_t content_slots = GetU16(header + 2);
    const uint64_t extra_slots = overflow ? 1 : content_slots;
    if (header_at + (1 + extra_slots) * slot_size > size) {
      return Status::ParseError("record truncated in node content");
    }
    if (!overflow && content_slots == 0 && pad != 0) {
      return Status::ParseError("record content padding without content");
    }
    if (!overflow && pad >= slot_size && content_slots > 0) {
      return Status::ParseError("record content padding exceeds slot");
    }
  }
  // Proxy keys must be strictly increasing for FindProxy's binary
  // search, and reference in-range nodes.
  uint32_t prev_key = 0;
  for (uint32_t j = 0; j < view.proxy_count_; ++j) {
    const uint32_t key = GetU32(data + view.proxy_off_ + j * kProxyBytes);
    if (j > 0 && key <= prev_key) {
      return Status::ParseError("record proxies not sorted");
    }
    prev_key = key;
    if ((key >> 2) >= view.node_count_ ||
        (key & 3) > static_cast<uint32_t>(RecordEdge::kPrevSibling)) {
      return Status::ParseError("record proxy key out of range");
    }
  }
  return view;
}

RecordAggregate RecordView::aggregate() const {
  RecordAggregate agg;
  agg.parent_node = GetU32(data_ + 12);
  agg.parent_partition = GetU32(data_ + 16);
  agg.parent_record = RecordId{GetU32(data_ + 20)};
  agg.parent_slot = GetU32(data_ + 24);
  return agg;
}

NodeId RecordView::node_id(uint32_t i) const { return TopoField(i, 0); }
uint64_t RecordView::weight(uint32_t i) const { return TopoField(i, 1); }
int32_t RecordView::parent(uint32_t i) const { return TopoLink(i, 2); }
int32_t RecordView::first_child(uint32_t i) const { return TopoLink(i, 3); }
int32_t RecordView::next_sibling(uint32_t i) const { return TopoLink(i, 4); }
int32_t RecordView::prev_sibling(uint32_t i) const { return TopoLink(i, 5); }

uint8_t RecordView::kind(uint32_t i) const { return DataSlot(i)[0]; }

int32_t RecordView::label(uint32_t i) const {
  int32_t v;
  std::memcpy(&v, DataSlot(i) + 4, 4);
  return v;
}

bool RecordView::overflow(uint32_t i) const {
  return (DataSlot(i)[1] & 1) != 0;
}

uint32_t RecordView::content_slots(uint32_t i) const {
  return overflow(i) ? 0 : GetU16(DataSlot(i) + 2);
}

std::string_view RecordView::content(uint32_t i) const {
  const uint8_t* header = DataSlot(i);
  if ((header[1] & 1) != 0) return {};
  const uint32_t slots = GetU16(header + 2);
  if (slots == 0) return {};
  const uint32_t pad = header[1] >> 1;
  return std::string_view(
      reinterpret_cast<const char*>(header + slot_size_),
      static_cast<size_t>(slots) * slot_size_ - pad);
}

uint64_t RecordView::content_bytes(uint32_t i) const {
  if (overflow(i)) return overflow_bytes(i);
  return static_cast<uint64_t>(content_slots(i)) * slot_size_;
}

uint64_t RecordView::overflow_bytes(uint32_t i) const {
  const uint8_t* header = DataSlot(i);
  if ((header[1] & 1) == 0) return 0;
  uint64_t ref;
  std::memcpy(&ref, header + slot_size_, 8);
  return ref;
}

RecordProxy RecordView::proxy(uint32_t j) const {
  const uint8_t* p = data_ + proxy_off_ + j * kProxyBytes;
  const uint32_t key = GetU32(p);
  RecordProxy proxy;
  proxy.from_index = key >> 2;
  proxy.edge = static_cast<RecordEdge>(key & 3);
  proxy.target_node = GetU32(p + 4);
  proxy.target_partition = GetU32(p + 8);
  proxy.target_record = RecordId{GetU32(p + 12)};
  proxy.target_slot = GetU32(p + 16);
  return proxy;
}

std::optional<RecordProxy> RecordView::FindProxy(uint32_t from_index,
                                                 RecordEdge edge) const {
  const uint32_t want = ProxyKey(from_index, edge);
  uint32_t lo = 0, hi = proxy_count_;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    const uint32_t key = GetU32(data_ + proxy_off_ + mid * kProxyBytes);
    if (key == want) return proxy(mid);
    if (key < want) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return std::nullopt;
}

int32_t RecordView::IndexOf(NodeId v) const {
  for (uint32_t i = 0; i < node_count_; ++i) {
    if (node_id(i) == v) return static_cast<int32_t>(i);
  }
  return -1;
}

Result<DecodedRecord> DecodeRecord(const uint8_t* data, size_t size,
                                   uint32_t slot_size) {
  Result<RecordView> view = RecordView::Parse(data, size, slot_size);
  NATIX_RETURN_NOT_OK(view.status());
  DecodedRecord rec;
  rec.aggregate = view->aggregate();
  rec.proxy_count = view->proxy_count();
  rec.nodes.resize(view->node_count());
  for (uint32_t i = 0; i < view->node_count(); ++i) {
    RecordNode& n = rec.nodes[i];
    n.node = view->node_id(i);
    n.parent_in_record = view->parent(i);
    n.first_child = view->first_child(i);
    n.next_sibling = view->next_sibling(i);
    n.prev_sibling = view->prev_sibling(i);
    n.weight = view->weight(i);
    n.kind = view->kind(i);
    n.label = view->label(i);
    n.overflow = view->overflow(i);
    n.content_bytes = static_cast<uint32_t>(view->content_bytes(i));
    n.content.assign(view->content(i));
  }
  rec.proxies.reserve(view->proxy_count());
  for (uint32_t j = 0; j < view->proxy_count(); ++j) {
    rec.proxies.push_back(view->proxy(j));
  }
  return rec;
}

}  // namespace natix
