#include "storage/record.h"

#include <algorithm>
#include <cstring>

#include "storage/content_codec.h"

namespace natix {

namespace {

constexpr uint16_t kFlagWideTopology = 1;
constexpr size_t kHeaderBytes = 28;
constexpr size_t kNarrowEntryBytes = 16;
constexpr size_t kWideEntryBytes = 28;
constexpr size_t kProxyBytes = 20;
constexpr uint16_t kNarrowNone = 0xFFFFu;
constexpr uint16_t kNarrowRemote = 0xFFFEu;
constexpr uint32_t kWideNone = 0xFFFFFFFFu;
constexpr uint32_t kWideRemote = 0xFFFFFFFEu;

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  const size_t off = out->size();
  out->resize(off + 2);
  std::memcpy(out->data() + off, &v, 2);
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t off = out->size();
  out->resize(off + 4);
  std::memcpy(out->data() + off, &v, 4);
}

uint16_t GetU16(const uint8_t* data) {
  uint16_t v;
  std::memcpy(&v, data, 2);
  return v;
}

uint32_t GetU32(const uint8_t* data) {
  uint32_t v;
  std::memcpy(&v, data, 4);
  return v;
}

uint32_t ProxyKey(uint32_t from_index, RecordEdge edge) {
  return (from_index << 2) | static_cast<uint32_t>(edge);
}

/// Slots a node's data occupies: the header slot plus either one
/// overflow slot or its inline content slots.
uint64_t NodeDataSlots(bool overflow, uint64_t content_size,
                       uint32_t slot_size) {
  if (overflow) return 2;
  return 1 + (content_size + slot_size - 1) / slot_size;
}

// --------------------------------------------------------- v3 helpers ----

/// v3 meta byte: bits 0-2 kind, bit 3 overflow, bit 4 compressed. The
/// top three bits are reserved and must be zero (Parse rejects them set,
/// which doubles as a cheap corruption check).
constexpr uint8_t kV3KindMask = 0x07;
constexpr uint8_t kV3Overflow = 0x08;
constexpr uint8_t kV3Compressed = 0x10;
constexpr uint8_t kV3Reserved = 0xE0;

/// Content below this many bytes is never worth the codec's framing.
constexpr size_t kV3CompressMinBytes = 16;

void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// Decodes a varint at [*pos, end). Returns false on truncation or an
/// over-long (> 10 byte) encoding; advances *pos past the varint on
/// success.
bool GetVarint(const uint8_t* data, size_t size, size_t* pos, uint64_t* v) {
  uint64_t value = 0;
  uint32_t shift = 0;
  while (*pos < size && shift < 64) {
    const uint8_t byte = data[(*pos)++];
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = value;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

void RecordBuilder::AddNode(const RecordNodeSpec& spec) {
  PendingNode pending;
  pending.spec = spec;
  pending.content.assign(spec.content.begin(), spec.content.end());
  pending.spec.content = {};  // Build() reads the owned copy.
  if (format_ == kRecordFormatV3) {
    // Precompute the packed data entry now so ByteSize() stays O(1) per
    // node and Build() is a plain concatenation. Validation problems
    // (bad kind, bad label) are still reported by Build(), which
    // re-checks the spec; the entry is just dropped bytes in that case.
    std::vector<uint8_t>& e = pending.entry;
    bool compressed = false;
    std::vector<uint8_t> enc;
    if (!spec.overflow && pending.content.size() >= kV3CompressMinBytes) {
      compressed = ContentCodec::Compress(pending.content, &enc);
    }
    e.push_back(static_cast<uint8_t>((spec.kind & kV3KindMask) |
                                     (spec.overflow ? kV3Overflow : 0) |
                                     (compressed ? kV3Compressed : 0)));
    const uint32_t label_plus1 =
        spec.label < 0 ? 0u : static_cast<uint32_t>(spec.label) + 1u;
    PutVarint(&e, label_plus1);
    if (spec.overflow) {
      PutVarint(&e, pending.content.size());
    } else {
      PutVarint(&e, pending.content.size());
      if (compressed) {
        PutVarint(&e, enc.size());
        e.insert(e.end(), enc.begin(), enc.end());
      } else {
        e.insert(e.end(), pending.content.begin(), pending.content.end());
      }
    }
  }
  nodes_.push_back(std::move(pending));
}

void RecordBuilder::AddProxy(const RecordProxy& proxy) {
  proxies_.push_back(proxy);
}

void RecordBuilder::SetAggregate(const RecordAggregate& aggregate) {
  aggregate_ = aggregate;
}

size_t RecordBuilder::DataSlots() const {
  uint64_t slots = 0;
  for (const PendingNode& n : nodes_) {
    slots += NodeDataSlots(n.spec.overflow, n.content.size(), slot_size_);
  }
  return static_cast<size_t>(slots);
}

size_t RecordBuilder::DataBytes() const {
  size_t bytes = 0;
  for (const PendingNode& n : nodes_) bytes += n.entry.size();
  return bytes;
}

bool RecordBuilder::NeedsWide() const {
  if (nodes_.size() > kNarrowRemote - 1) return true;
  // Field 6 is a u16 in the narrow layout: a v2 slot offset or a v3 byte
  // offset. Total section size bounds every node's offset.
  if (format_ == kRecordFormatV3) {
    if (DataBytes() > kNarrowNone) return true;
  } else if (DataSlots() > kNarrowNone) {
    return true;
  }
  for (const PendingNode& n : nodes_) {
    if (n.spec.weight > kNarrowNone) return true;
  }
  return false;
}

size_t RecordBuilder::ByteSize() const {
  const size_t entry = NeedsWide() ? kWideEntryBytes : kNarrowEntryBytes;
  const size_t data = format_ == kRecordFormatV3 ? DataBytes()
                                                 : DataSlots() * slot_size_;
  return kHeaderBytes + nodes_.size() * entry + proxies_.size() * kProxyBytes +
         data;
}

Result<std::vector<uint8_t>> RecordBuilder::Build() const {
  if (slot_size_ < 8 || slot_size_ > 128) {
    return Status::InvalidArgument("record slot size must be in [8, 128]");
  }
  if (format_ != kRecordFormatV2 && format_ != kRecordFormatV3) {
    return Status::InvalidArgument("unsupported record format version");
  }
  const bool v3 = format_ == kRecordFormatV3;
  const uint32_t node_count = static_cast<uint32_t>(nodes_.size());
  const bool wide = NeedsWide();
  // Validate links and data geometry before writing anything.
  for (const PendingNode& n : nodes_) {
    for (const int32_t link : {n.spec.parent, n.spec.first_child,
                               n.spec.next_sibling, n.spec.prev_sibling}) {
      if (link != kEdgeNone && link != kEdgeRemote &&
          (link < 0 || static_cast<uint32_t>(link) >= node_count)) {
        return Status::InvalidArgument("record link index out of range");
      }
    }
    if (v3) {
      if ((n.spec.kind & ~static_cast<uint8_t>(kV3KindMask)) != 0) {
        return Status::InvalidArgument("record node kind exceeds 3 bits");
      }
      if (n.spec.label < -1) {
        return Status::InvalidArgument("record label out of range");
      }
    } else if (!n.spec.overflow) {
      const uint64_t slots =
          (n.content.size() + slot_size_ - 1) / slot_size_;
      if (slots > kNarrowNone) {
        return Status::InvalidArgument(
            "inline content too large for content_slots field");
      }
    }
  }

  std::vector<RecordProxy> proxies = proxies_;
  std::sort(proxies.begin(), proxies.end(),
            [](const RecordProxy& a, const RecordProxy& b) {
              return ProxyKey(a.from_index, a.edge) <
                     ProxyKey(b.from_index, b.edge);
            });
  for (size_t j = 1; j < proxies.size(); ++j) {
    if (ProxyKey(proxies[j - 1].from_index, proxies[j - 1].edge) ==
        ProxyKey(proxies[j].from_index, proxies[j].edge)) {
      return Status::InvalidArgument("duplicate proxy for the same edge");
    }
  }

  std::vector<uint8_t> out;
  out.reserve(ByteSize());
  PutU16(&out, format_);
  PutU16(&out, wide ? kFlagWideTopology : 0);
  PutU32(&out, node_count);
  PutU32(&out, static_cast<uint32_t>(proxies.size()));
  PutU32(&out, aggregate_.parent_node);
  PutU32(&out, aggregate_.parent_partition);
  PutU32(&out, aggregate_.parent_record.value);
  PutU32(&out, aggregate_.parent_slot);

  const auto encode_link = [&](int32_t link) -> uint32_t {
    if (wide) {
      if (link == kEdgeNone) return kWideNone;
      if (link == kEdgeRemote) return kWideRemote;
      return static_cast<uint32_t>(link);
    }
    if (link == kEdgeNone) return kNarrowNone;
    if (link == kEdgeRemote) return kNarrowRemote;
    return static_cast<uint32_t>(link);
  };

  // Field 6: the node's v2 slot offset or v3 byte offset into the data
  // section (entries are packed in node order either way).
  uint64_t data_cursor = 0;
  for (const PendingNode& n : nodes_) {
    PutU32(&out, n.spec.node);
    if (wide) {
      PutU32(&out, static_cast<uint32_t>(n.spec.weight));
      PutU32(&out, encode_link(n.spec.parent));
      PutU32(&out, encode_link(n.spec.first_child));
      PutU32(&out, encode_link(n.spec.next_sibling));
      PutU32(&out, encode_link(n.spec.prev_sibling));
      PutU32(&out, static_cast<uint32_t>(data_cursor));
    } else {
      PutU16(&out, static_cast<uint16_t>(n.spec.weight));
      PutU16(&out, static_cast<uint16_t>(encode_link(n.spec.parent)));
      PutU16(&out, static_cast<uint16_t>(encode_link(n.spec.first_child)));
      PutU16(&out, static_cast<uint16_t>(encode_link(n.spec.next_sibling)));
      PutU16(&out, static_cast<uint16_t>(encode_link(n.spec.prev_sibling)));
      PutU16(&out, static_cast<uint16_t>(data_cursor));
    }
    data_cursor += v3 ? n.entry.size()
                      : NodeDataSlots(n.spec.overflow, n.content.size(),
                                      slot_size_);
  }

  for (const RecordProxy& p : proxies) {
    PutU32(&out, ProxyKey(p.from_index, p.edge));
    PutU32(&out, p.target_node);
    PutU32(&out, p.target_partition);
    PutU32(&out, p.target_record.value);
    PutU32(&out, p.target_slot);
  }

  if (v3) {
    for (const PendingNode& n : nodes_) {
      out.insert(out.end(), n.entry.begin(), n.entry.end());
    }
    return out;
  }

  for (const PendingNode& n : nodes_) {
    const uint32_t content_slots =
        n.spec.overflow
            ? 0
            : static_cast<uint32_t>(
                  (n.content.size() + slot_size_ - 1) / slot_size_);
    const uint32_t pad =
        n.spec.overflow
            ? 0
            : static_cast<uint32_t>(content_slots * slot_size_ -
                                    n.content.size());
    // Header slot: kind, flags (overflow bit + pad count), content slot
    // count, label.
    const size_t off = out.size();
    out.resize(off + slot_size_, 0);
    out[off] = n.spec.kind;
    out[off + 1] = static_cast<uint8_t>((n.spec.overflow ? 1 : 0) |
                                        (pad << 1));
    const uint16_t cs16 = static_cast<uint16_t>(content_slots);
    std::memcpy(out.data() + off + 2, &cs16, 2);
    std::memcpy(out.data() + off + 4, &n.spec.label, 4);
    if (n.spec.overflow) {
      // Overflow slot: the externalized content length.
      const size_t ooff = out.size();
      out.resize(ooff + slot_size_, 0);
      const uint64_t ref = n.content.size();
      std::memcpy(out.data() + ooff, &ref, 8);
    } else if (!n.content.empty()) {
      const size_t coff = out.size();
      out.resize(coff + static_cast<size_t>(content_slots) * slot_size_, 0);
      std::memcpy(out.data() + coff, n.content.data(), n.content.size());
    }
  }
  return out;
}

size_t RecordView::TopoEntryOff(uint32_t i) const {
  return topo_off_ + static_cast<size_t>(i) *
                         (wide_ ? kWideEntryBytes : kNarrowEntryBytes);
}

uint32_t RecordView::TopoField(uint32_t i, uint32_t field) const {
  const size_t off = TopoEntryOff(i);
  if (wide_) return GetU32(data_ + off + 4 * field);
  if (field == 0) return GetU32(data_ + off);
  return GetU16(data_ + off + 4 + 2 * (field - 1));
}

int32_t RecordView::TopoLink(uint32_t i, uint32_t field) const {
  const uint32_t raw = TopoField(i, field);
  if (wide_) {
    if (raw == kWideNone) return kEdgeNone;
    if (raw == kWideRemote) return kEdgeRemote;
  } else {
    if (raw == kNarrowNone) return kEdgeNone;
    if (raw == kNarrowRemote) return kEdgeRemote;
  }
  return static_cast<int32_t>(raw);
}

const uint8_t* RecordView::DataSlot(uint32_t i) const {
  return data_ + data_off_ +
         static_cast<size_t>(TopoField(i, 6)) * slot_size_;
}

RecordView::V3Entry RecordView::ParseV3(uint32_t i) const {
  // Parse() validated this entry, so the varint reads cannot fail; the
  // bounds are only passed along so GetVarint terminates.
  V3Entry e;
  size_t pos = data_off_ + TopoField(i, 6);
  const uint8_t meta = data_[pos++];
  e.kind = meta & kV3KindMask;
  e.overflow = (meta & kV3Overflow) != 0;
  e.compressed = (meta & kV3Compressed) != 0;
  uint64_t label_plus1 = 0;
  GetVarint(data_, size_, &pos, &label_plus1);
  e.label = static_cast<int32_t>(label_plus1) - 1;
  GetVarint(data_, size_, &pos, &e.raw_len);
  e.enc_len = e.raw_len;
  if (e.compressed) GetVarint(data_, size_, &pos, &e.enc_len);
  e.payload = e.overflow ? nullptr : data_ + pos;
  return e;
}

Result<RecordView> RecordView::Parse(const uint8_t* data, size_t size,
                                     uint32_t slot_size) {
  if (slot_size < 8 || slot_size > 128) {
    return Status::InvalidArgument("record slot size must be in [8, 128]");
  }
  if (size < kHeaderBytes) return Status::ParseError("record too small");
  RecordView view;
  view.data_ = data;
  view.size_ = size;
  view.slot_size_ = slot_size;
  const uint16_t version = GetU16(data);
  if (version != kRecordFormatV2 && version != kRecordFormatV3) {
    return Status::ParseError("unsupported record format version");
  }
  view.v3_ = version == kRecordFormatV3;
  const uint16_t flags = GetU16(data + 2);
  view.wide_ = (flags & kFlagWideTopology) != 0;
  view.node_count_ = GetU32(data + 4);
  view.proxy_count_ = GetU32(data + 8);
  view.topo_off_ = kHeaderBytes;
  const uint64_t entry =
      view.wide_ ? kWideEntryBytes : kNarrowEntryBytes;
  const uint64_t topo_bytes = entry * view.node_count_;
  const uint64_t proxy_bytes =
      static_cast<uint64_t>(kProxyBytes) * view.proxy_count_;
  if (kHeaderBytes + topo_bytes + proxy_bytes > size) {
    return Status::ParseError("record truncated in topology section");
  }
  view.proxy_off_ = kHeaderBytes + static_cast<size_t>(topo_bytes);
  view.data_off_ = view.proxy_off_ + static_cast<size_t>(proxy_bytes);
  // Validate every node's links and data geometry once, so the accessors
  // can read without bounds checks. Compressed v3 payloads are *not*
  // decoded here -- Parse runs on every record crossing during
  // navigation; VerifyContent() does the expensive check on demand
  // (fsck, DecodeRecord).
  for (uint32_t i = 0; i < view.node_count_; ++i) {
    for (uint32_t field = 2; field <= 5; ++field) {
      const int32_t link = view.TopoLink(i, field);
      if (link != kEdgeNone && link != kEdgeRemote &&
          static_cast<uint32_t>(link) >= view.node_count_) {
        return Status::ParseError("record link index out of range");
      }
    }
    if (view.v3_) {
      size_t pos = view.data_off_ + view.TopoField(i, 6);
      if (pos >= size) {
        return Status::ParseError("record truncated in node data");
      }
      const uint8_t meta = data[pos++];
      if ((meta & kV3Reserved) != 0) {
        return Status::ParseError("record data entry has reserved bits set");
      }
      const bool overflow = (meta & kV3Overflow) != 0;
      const bool compressed = (meta & kV3Compressed) != 0;
      if (overflow && compressed) {
        return Status::ParseError("record overflow entry marked compressed");
      }
      uint64_t label_plus1 = 0;
      if (!GetVarint(data, size, &pos, &label_plus1) ||
          label_plus1 > 0x7FFFFFFFu) {
        return Status::ParseError("record data entry label malformed");
      }
      uint64_t raw_len = 0;
      if (!GetVarint(data, size, &pos, &raw_len)) {
        return Status::ParseError("record data entry length malformed");
      }
      if (!overflow) {
        uint64_t stored_len = raw_len;
        if (compressed) {
          if (!GetVarint(data, size, &pos, &stored_len) ||
              stored_len >= raw_len) {
            return Status::ParseError(
                "record compressed entry not smaller than raw");
          }
        }
        if (stored_len > size - pos) {
          return Status::ParseError("record truncated in node content");
        }
      }
      continue;
    }
    const uint64_t slot_off = view.TopoField(i, 6);
    const uint64_t header_at =
        view.data_off_ + slot_off * slot_size;
    if (header_at + slot_size > size) {
      return Status::ParseError("record truncated in node data");
    }
    const uint8_t* header = data + header_at;
    const bool overflow = (header[1] & 1) != 0;
    const uint32_t pad = header[1] >> 1;
    const uint16_t content_slots = GetU16(header + 2);
    const uint64_t extra_slots = overflow ? 1 : content_slots;
    if (header_at + (1 + extra_slots) * slot_size > size) {
      return Status::ParseError("record truncated in node content");
    }
    if (!overflow && content_slots == 0 && pad != 0) {
      return Status::ParseError("record content padding without content");
    }
    if (!overflow && pad >= slot_size && content_slots > 0) {
      return Status::ParseError("record content padding exceeds slot");
    }
  }
  // Proxy keys must be strictly increasing for FindProxy's binary
  // search, and reference in-range nodes.
  uint32_t prev_key = 0;
  for (uint32_t j = 0; j < view.proxy_count_; ++j) {
    const uint32_t key = GetU32(data + view.proxy_off_ + j * kProxyBytes);
    if (j > 0 && key <= prev_key) {
      return Status::ParseError("record proxies not sorted");
    }
    prev_key = key;
    if ((key >> 2) >= view.node_count_ ||
        (key & 3) > static_cast<uint32_t>(RecordEdge::kPrevSibling)) {
      return Status::ParseError("record proxy key out of range");
    }
  }
  return view;
}

RecordAggregate RecordView::aggregate() const {
  RecordAggregate agg;
  agg.parent_node = GetU32(data_ + 12);
  agg.parent_partition = GetU32(data_ + 16);
  agg.parent_record = RecordId{GetU32(data_ + 20)};
  agg.parent_slot = GetU32(data_ + 24);
  return agg;
}

NodeId RecordView::node_id(uint32_t i) const { return TopoField(i, 0); }
uint64_t RecordView::weight(uint32_t i) const { return TopoField(i, 1); }
int32_t RecordView::parent(uint32_t i) const { return TopoLink(i, 2); }
int32_t RecordView::first_child(uint32_t i) const { return TopoLink(i, 3); }
int32_t RecordView::next_sibling(uint32_t i) const { return TopoLink(i, 4); }
int32_t RecordView::prev_sibling(uint32_t i) const { return TopoLink(i, 5); }

uint8_t RecordView::kind(uint32_t i) const {
  if (v3_) return ParseV3(i).kind;
  return DataSlot(i)[0];
}

int32_t RecordView::label(uint32_t i) const {
  if (v3_) return ParseV3(i).label;
  int32_t v;
  std::memcpy(&v, DataSlot(i) + 4, 4);
  return v;
}

bool RecordView::overflow(uint32_t i) const {
  if (v3_) return ParseV3(i).overflow;
  return (DataSlot(i)[1] & 1) != 0;
}

uint32_t RecordView::content_slots(uint32_t i) const {
  if (v3_) {
    const V3Entry e = ParseV3(i);
    if (e.overflow) return 0;
    return static_cast<uint32_t>((e.raw_len + slot_size_ - 1) / slot_size_);
  }
  return overflow(i) ? 0 : GetU16(DataSlot(i) + 2);
}

std::string_view RecordView::content(uint32_t i) const {
  if (v3_) {
    const V3Entry e = ParseV3(i);
    if (e.overflow || e.raw_len == 0) return {};
    if (!e.compressed) {
      return std::string_view(reinterpret_cast<const char*>(e.payload),
                              static_cast<size_t>(e.raw_len));
    }
    if (scratch_index_ != i) {
      scratch_index_ = i;
      scratch_ok_ = ContentCodec::Decompress(
          e.payload, static_cast<size_t>(e.enc_len),
          static_cast<size_t>(e.raw_len), &scratch_);
    }
    return scratch_ok_ ? std::string_view(scratch_) : std::string_view();
  }
  const uint8_t* header = DataSlot(i);
  if ((header[1] & 1) != 0) return {};
  const uint32_t slots = GetU16(header + 2);
  if (slots == 0) return {};
  const uint32_t pad = header[1] >> 1;
  return std::string_view(
      reinterpret_cast<const char*>(header + slot_size_),
      static_cast<size_t>(slots) * slot_size_ - pad);
}

Status RecordView::VerifyContent(uint32_t i) const {
  if (!v3_) return Status::OK();
  const V3Entry e = ParseV3(i);
  if (!e.compressed) return Status::OK();
  if (scratch_index_ != i) {
    scratch_index_ = i;
    scratch_ok_ = ContentCodec::Decompress(
        e.payload, static_cast<size_t>(e.enc_len),
        static_cast<size_t>(e.raw_len), &scratch_);
  }
  if (!scratch_ok_) {
    return Status::ParseError("record compressed content does not decode");
  }
  return Status::OK();
}

uint64_t RecordView::content_bytes(uint32_t i) const {
  if (overflow(i)) return overflow_bytes(i);
  return static_cast<uint64_t>(content_slots(i)) * slot_size_;
}

uint64_t RecordView::overflow_bytes(uint32_t i) const {
  if (v3_) {
    const V3Entry e = ParseV3(i);
    return e.overflow ? e.raw_len : 0;
  }
  const uint8_t* header = DataSlot(i);
  if ((header[1] & 1) == 0) return 0;
  uint64_t ref;
  std::memcpy(&ref, header + slot_size_, 8);
  return ref;
}

RecordProxy RecordView::proxy(uint32_t j) const {
  const uint8_t* p = data_ + proxy_off_ + j * kProxyBytes;
  const uint32_t key = GetU32(p);
  RecordProxy proxy;
  proxy.from_index = key >> 2;
  proxy.edge = static_cast<RecordEdge>(key & 3);
  proxy.target_node = GetU32(p + 4);
  proxy.target_partition = GetU32(p + 8);
  proxy.target_record = RecordId{GetU32(p + 12)};
  proxy.target_slot = GetU32(p + 16);
  return proxy;
}

std::optional<RecordProxy> RecordView::FindProxy(uint32_t from_index,
                                                 RecordEdge edge) const {
  const uint32_t want = ProxyKey(from_index, edge);
  uint32_t lo = 0, hi = proxy_count_;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    const uint32_t key = GetU32(data_ + proxy_off_ + mid * kProxyBytes);
    if (key == want) return proxy(mid);
    if (key < want) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return std::nullopt;
}

int32_t RecordView::IndexOf(NodeId v) const {
  for (uint32_t i = 0; i < node_count_; ++i) {
    if (node_id(i) == v) return static_cast<int32_t>(i);
  }
  return -1;
}

namespace {

/// Section geometry shared by the in-place rewrite helpers; derived
/// straight from a record Parse() already validated.
struct RecordGeometry {
  bool v3 = false;
  bool wide = false;
  uint32_t node_count = 0;
  uint32_t proxy_count = 0;
  size_t entry_bytes = 0;
  size_t proxy_off = 0;
  size_t data_off = 0;
};

RecordGeometry GeometryOf(const uint8_t* data) {
  RecordGeometry g;
  g.v3 = GetU16(data) == kRecordFormatV3;
  g.wide = (GetU16(data + 2) & kFlagWideTopology) != 0;
  g.node_count = GetU32(data + 4);
  g.proxy_count = GetU32(data + 8);
  g.entry_bytes = g.wide ? kWideEntryBytes : kNarrowEntryBytes;
  g.proxy_off = kHeaderBytes + g.node_count * g.entry_bytes;
  g.data_off = g.proxy_off + static_cast<size_t>(g.proxy_count) * kProxyBytes;
  return g;
}

size_t FieldOffset(const RecordGeometry& g, uint32_t i, uint32_t field) {
  const size_t entry = kHeaderBytes + i * g.entry_bytes;
  if (g.wide) return entry + 4 * field;
  return field == 0 ? entry : entry + 4 + 2 * (field - 1);
}

uint64_t GetField(const RecordGeometry& g, const uint8_t* data, uint32_t i,
                  uint32_t field) {
  const size_t off = FieldOffset(g, i, field);
  if (g.wide || field == 0) return GetU32(data + off);
  return GetU16(data + off);
}

void PutField(const RecordGeometry& g, uint8_t* data, uint32_t i,
              uint32_t field, uint64_t value) {
  const size_t off = FieldOffset(g, i, field);
  if (g.wide || field == 0) {
    const uint32_t v = static_cast<uint32_t>(value);
    std::memcpy(data + off, &v, 4);
  } else {
    const uint16_t v = static_cast<uint16_t>(value);
    std::memcpy(data + off, &v, 2);
  }
}

uint32_t EncodeLink(const RecordGeometry& g, int32_t link) {
  if (link == kEdgeNone) return g.wide ? kWideNone : kNarrowNone;
  if (link == kEdgeRemote) return g.wide ? kWideRemote : kNarrowRemote;
  return static_cast<uint32_t>(link);
}

/// Byte span of one v3 data entry, plus where its label varint sits.
struct V3EntrySpan {
  size_t label_off = 0;
  size_t label_len = 0;
  size_t total_len = 0;
};

bool ParseV3EntrySpan(const uint8_t* data, size_t size, size_t start,
                      V3EntrySpan* out) {
  size_t pos = start;
  if (pos >= size) return false;
  const uint8_t meta = data[pos++];
  const bool overflow = (meta & kV3Overflow) != 0;
  const bool compressed = (meta & kV3Compressed) != 0;
  out->label_off = pos;
  uint64_t label_plus1 = 0;
  if (!GetVarint(data, size, &pos, &label_plus1)) return false;
  out->label_len = pos - out->label_off;
  uint64_t raw_len = 0;
  if (!GetVarint(data, size, &pos, &raw_len)) return false;
  if (!overflow) {
    uint64_t stored = raw_len;
    if (compressed && !GetVarint(data, size, &pos, &stored)) return false;
    if (stored > size - pos) return false;
    pos += stored;
  }
  out->total_len = pos - start;
  return true;
}

}  // namespace

Result<std::vector<uint8_t>> RewriteRecordLabel(const uint8_t* data,
                                                size_t size, uint32_t index,
                                                int32_t new_label,
                                                uint32_t slot_size) {
  NATIX_RETURN_NOT_OK(RecordView::Parse(data, size, slot_size).status());
  const RecordGeometry g = GeometryOf(data);
  if (index >= g.node_count) {
    return Status::InvalidArgument("record entry index out of range");
  }
  if (new_label < -1) {
    return Status::InvalidArgument("label id out of range");
  }
  if (!g.v3) {
    // v2 keeps the label as a fixed 4-byte field in the node's header
    // slot: a pure in-place patch.
    std::vector<uint8_t> out(data, data + size);
    const size_t slot_at =
        g.data_off + static_cast<size_t>(GetField(g, data, index, 6)) *
                         slot_size;
    std::memcpy(out.data() + slot_at + 4, &new_label, 4);
    return out;
  }
  const uint64_t my_off = GetField(g, data, index, 6);
  V3EntrySpan span;
  if (!ParseV3EntrySpan(data, size, g.data_off + my_off, &span)) {
    return Status::ParseError("record data entry malformed");
  }
  std::vector<uint8_t> label_bytes;
  PutVarint(&label_bytes,
            new_label < 0 ? 0u : static_cast<uint32_t>(new_label) + 1u);
  const int64_t delta =
      static_cast<int64_t>(label_bytes.size()) -
      static_cast<int64_t>(span.label_len);
  if (delta != 0 && !g.wide) {
    const int64_t data_bytes = static_cast<int64_t>(size - g.data_off);
    if (data_bytes + delta > kNarrowNone) {
      return Status::FailedPrecondition(
          "label rewrite overflows narrow data offsets");
    }
  }
  std::vector<uint8_t> out;
  out.reserve(size + (delta > 0 ? static_cast<size_t>(delta) : 0));
  out.insert(out.end(), data, data + span.label_off);
  out.insert(out.end(), label_bytes.begin(), label_bytes.end());
  out.insert(out.end(), data + span.label_off + span.label_len, data + size);
  if (delta != 0) {
    // Entries behind the grown/shrunk one shift; re-base their offsets.
    for (uint32_t i = 0; i < g.node_count; ++i) {
      if (i == index) continue;
      const uint64_t off = GetField(g, data, i, 6);
      if (off <= my_off) continue;
      PutField(g, out.data(), i, 6,
               static_cast<uint64_t>(static_cast<int64_t>(off) + delta));
    }
  }
  return out;
}

Result<std::vector<uint8_t>> RemoveRecordEntries(
    const uint8_t* data, size_t size, const std::vector<uint32_t>& remove,
    uint32_t slot_size) {
  Result<RecordView> parsed = RecordView::Parse(data, size, slot_size);
  NATIX_RETURN_NOT_OK(parsed.status());
  const RecordView& view = *parsed;
  const RecordGeometry g = GeometryOf(data);
  const uint32_t n = g.node_count;
  std::vector<bool> removed(n, false);
  for (const uint32_t i : remove) {
    if (i >= n) {
      return Status::InvalidArgument("record entry index out of range");
    }
    removed[i] = true;
  }
  if (remove.empty()) return std::vector<uint8_t>(data, data + size);
  std::vector<int32_t> remap(n, -1);
  uint32_t kept = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (!removed[i]) remap[i] = static_cast<int32_t>(kept++);
  }
  if (kept == 0) {
    return Status::InvalidArgument("cannot remove every record entry");
  }

  // Splice a link that leads into the removed set: follow `chase` links
  // of removed entries to the first survivor. A chain that dead-ends in
  // a remote link hands the last removed entry's proxy to the survivor.
  struct Spliced {
    int32_t link = kEdgeNone;
    std::optional<RecordProxy> inherited;
  };
  auto splice = [&](int32_t link, RecordEdge chase) -> Result<Spliced> {
    Spliced out;
    int32_t cur = link;
    while (cur >= 0 && removed[static_cast<uint32_t>(cur)]) {
      const uint32_t r = static_cast<uint32_t>(cur);
      const int32_t next = chase == RecordEdge::kPrevSibling
                               ? view.prev_sibling(r)
                               : view.next_sibling(r);
      if (next == kEdgeRemote) {
        std::optional<RecordProxy> p = view.FindProxy(r, chase);
        if (!p.has_value()) {
          return Status::ParseError("record remote link without proxy");
        }
        out.link = kEdgeRemote;
        out.inherited = p;
        return out;
      }
      cur = next;
    }
    out.link = cur;
    return out;
  };

  std::vector<RecordProxy> proxies;
  for (uint32_t j = 0; j < g.proxy_count; ++j) {
    RecordProxy p = view.proxy(j);
    if (removed[p.from_index]) continue;
    p.from_index = static_cast<uint32_t>(remap[p.from_index]);
    proxies.push_back(p);
  }

  struct NewEntry {
    uint32_t old_index = 0;
    int32_t parent = kEdgeNone;
    int32_t first_child = kEdgeNone;
    int32_t next_sibling = kEdgeNone;
    int32_t prev_sibling = kEdgeNone;
    uint64_t data_len = 0;  // bytes (v3) or slots (v2)
  };
  std::vector<NewEntry> entries;
  entries.reserve(kept);
  for (uint32_t i = 0; i < n; ++i) {
    if (removed[i]) continue;
    NewEntry e;
    e.old_index = i;
    e.parent = view.parent(i);
    if (e.parent >= 0 && removed[static_cast<uint32_t>(e.parent)]) {
      // The removed set must be descendant-closed; a survivor under a
      // removed parent means the caller did not remove a whole subtree.
      return Status::InvalidArgument(
          "record entry removal is not descendant-closed");
    }
    struct LinkFix {
      int32_t* link;
      RecordEdge edge;       // the survivor's edge being fixed
      RecordEdge chase;      // direction to follow through removed entries
    };
    e.first_child = view.first_child(i);
    e.next_sibling = view.next_sibling(i);
    e.prev_sibling = view.prev_sibling(i);
    const LinkFix fixes[3] = {
        {&e.first_child, RecordEdge::kFirstChild, RecordEdge::kNextSibling},
        {&e.next_sibling, RecordEdge::kNextSibling, RecordEdge::kNextSibling},
        {&e.prev_sibling, RecordEdge::kPrevSibling, RecordEdge::kPrevSibling},
    };
    for (const LinkFix& f : fixes) {
      if (*f.link < 0 || !removed[static_cast<uint32_t>(*f.link)]) continue;
      NATIX_ASSIGN_OR_RETURN(const Spliced s, splice(*f.link, f.chase));
      *f.link = s.link;
      if (s.inherited.has_value()) {
        RecordProxy p = *s.inherited;
        p.from_index = static_cast<uint32_t>(remap[i]);
        p.edge = f.edge;
        proxies.push_back(p);
      }
    }
    entries.push_back(e);
  }

  // Remap surviving local links and lay out the new data section.
  for (NewEntry& e : entries) {
    for (int32_t* link : {&e.parent, &e.first_child, &e.next_sibling,
                          &e.prev_sibling}) {
      if (*link >= 0) *link = remap[static_cast<uint32_t>(*link)];
    }
    if (g.v3) {
      V3EntrySpan span;
      const size_t start =
          g.data_off +
          static_cast<size_t>(GetField(g, data, e.old_index, 6));
      if (!ParseV3EntrySpan(data, size, start, &span)) {
        return Status::ParseError("record data entry malformed");
      }
      e.data_len = span.total_len;
    } else {
      e.data_len = view.overflow(e.old_index)
                       ? 2
                       : 1 + view.content_slots(e.old_index);
    }
  }

  std::sort(proxies.begin(), proxies.end(),
            [](const RecordProxy& a, const RecordProxy& b) {
              return ProxyKey(a.from_index, a.edge) <
                     ProxyKey(b.from_index, b.edge);
            });

  std::vector<uint8_t> out;
  PutU16(&out, GetU16(data));
  PutU16(&out, GetU16(data + 2));
  PutU32(&out, kept);
  PutU32(&out, static_cast<uint32_t>(proxies.size()));
  out.insert(out.end(), data + 12, data + kHeaderBytes);  // aggregate
  RecordGeometry ng = g;
  ng.node_count = kept;
  ng.proxy_count = static_cast<uint32_t>(proxies.size());
  ng.proxy_off = kHeaderBytes + kept * g.entry_bytes;
  ng.data_off = ng.proxy_off + proxies.size() * kProxyBytes;
  out.resize(ng.proxy_off, 0);
  uint64_t cursor = 0;
  for (uint32_t i = 0; i < kept; ++i) {
    const NewEntry& e = entries[i];
    PutField(ng, out.data(), i, 0, GetField(g, data, e.old_index, 0));
    PutField(ng, out.data(), i, 1, GetField(g, data, e.old_index, 1));
    PutField(ng, out.data(), i, 2, EncodeLink(g, e.parent));
    PutField(ng, out.data(), i, 3, EncodeLink(g, e.first_child));
    PutField(ng, out.data(), i, 4, EncodeLink(g, e.next_sibling));
    PutField(ng, out.data(), i, 5, EncodeLink(g, e.prev_sibling));
    PutField(ng, out.data(), i, 6, cursor);
    cursor += e.data_len;
  }
  for (const RecordProxy& p : proxies) {
    PutU32(&out, ProxyKey(p.from_index, p.edge));
    PutU32(&out, p.target_node);
    PutU32(&out, p.target_partition);
    PutU32(&out, p.target_record.value);
    PutU32(&out, p.target_slot);
  }
  for (const NewEntry& e : entries) {
    const size_t start =
        g.data_off + static_cast<size_t>(GetField(g, data, e.old_index, 6)) *
                         (g.v3 ? 1 : slot_size);
    const size_t len =
        static_cast<size_t>(e.data_len) * (g.v3 ? 1 : slot_size);
    out.insert(out.end(), data + start, data + start + len);
  }
  return out;
}

namespace record_internal {

Result<std::vector<size_t>> HintFieldOffsets(const uint8_t* data, size_t size,
                                             uint32_t slot_size) {
  NATIX_RETURN_NOT_OK(RecordView::Parse(data, size, slot_size).status());
  const RecordGeometry g = GeometryOf(data);
  std::vector<size_t> offsets;
  offsets.reserve(1 + g.proxy_count);
  offsets.push_back(16);  // aggregate: parent_node at 12, hints at 16
  for (uint32_t j = 0; j < g.proxy_count; ++j) {
    // Proxy: key at +0, target_node at +4, hints at +8.
    offsets.push_back(g.proxy_off + static_cast<size_t>(j) * kProxyBytes + 8);
  }
  return offsets;
}

}  // namespace record_internal

Result<DecodedRecord> DecodeRecord(const uint8_t* data, size_t size,
                                   uint32_t slot_size) {
  Result<RecordView> view = RecordView::Parse(data, size, slot_size);
  NATIX_RETURN_NOT_OK(view.status());
  DecodedRecord rec;
  rec.aggregate = view->aggregate();
  rec.proxy_count = view->proxy_count();
  rec.nodes.resize(view->node_count());
  for (uint32_t i = 0; i < view->node_count(); ++i) {
    RecordNode& n = rec.nodes[i];
    n.node = view->node_id(i);
    n.parent_in_record = view->parent(i);
    n.first_child = view->first_child(i);
    n.next_sibling = view->next_sibling(i);
    n.prev_sibling = view->prev_sibling(i);
    n.weight = view->weight(i);
    n.kind = view->kind(i);
    n.label = view->label(i);
    n.overflow = view->overflow(i);
    n.content_bytes = static_cast<uint32_t>(view->content_bytes(i));
    NATIX_RETURN_NOT_OK(view->VerifyContent(i));
    n.content.assign(view->content(i));
  }
  rec.proxies.reserve(view->proxy_count());
  for (uint32_t j = 0; j < view->proxy_count(); ++j) {
    rec.proxies.push_back(view->proxy(j));
  }
  return rec;
}

}  // namespace natix
