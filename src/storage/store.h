#ifndef NATIX_STORAGE_STORE_H_
#define NATIX_STORAGE_STORE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/record.h"
#include "storage/record_manager.h"
#include "tree/partitioning.h"
#include "xml/importer.h"

namespace natix {

/// Store construction options.
struct StoreOptions {
  /// Disk page size in bytes; several records share one page.
  size_t page_size = 8192;
  /// Record manager allocation lookback (see RecordManager).
  int allocation_lookback = 8;
  /// Storage slot size (must match the weight model used at import).
  uint32_t slot_size = 8;
};

/// Counters for navigation operations against a NatixStore.
struct AccessStats {
  /// Moves between nodes of the same record (cheap pointer chasing).
  uint64_t intra_moves = 0;
  /// Moves that cross a record boundary (record lookup + pin).
  uint64_t record_crossings = 0;
  /// Crossings that additionally land on a different page (buffer-pool
  /// hash lookup + latch; no I/O, the paper's experiment runs with a warm
  /// buffer larger than the document).
  uint64_t page_switches = 0;

  uint64_t TotalMoves() const { return intra_moves + record_crossings; }
  void Reset() { *this = AccessStats(); }
};

/// Converts access counters into simulated navigation time. Defaults are
/// calibrated to commodity-hardware order-of-magnitude costs: intra-record
/// navigation is pointer arithmetic within a pinned record; a record
/// crossing pays a record-id -> (page, slot) lookup, page pin and record
/// header decode.
struct NavigationCostModel {
  double intra_ns = 25.0;
  double crossing_ns = 700.0;
  double page_switch_ns = 300.0;  // surcharge on top of crossing_ns

  double CostSeconds(const AccessStats& stats) const {
    return (stats.intra_moves * intra_ns +
            stats.record_crossings * crossing_ns +
            stats.page_switches * page_switch_ns) *
           1e-9;
  }
};

/// The mini-Natix store: a document loaded under a given tree sibling
/// partitioning. Each partition becomes one physical record (serialized
/// with RecordBuilder); records are packed onto slotted pages by the
/// RecordManager; oversized text is stored in overflow pages.
///
/// The store borrows the ImportedDocument (it must outlive the store).
class NatixStore {
 public:
  /// Builds the store. `partitioning` must be feasible for `limit` on
  /// `doc.tree` (checked; the limit is in slots of the weight model used
  /// at import).
  static Result<NatixStore> Build(const ImportedDocument& doc,
                                  const Partitioning& partitioning,
                                  TotalWeight limit,
                                  const StoreOptions& options = {});

  const Tree& tree() const { return doc_->tree; }
  const ImportedDocument& document() const { return *doc_; }

  /// Partition index (== record index) holding a node.
  uint32_t PartitionOf(NodeId v) const { return partition_of_[v]; }
  /// Physical record id of a partition.
  RecordId RecordOf(uint32_t partition) const { return records_[partition]; }
  /// Physical record id holding a node.
  RecordId RecordOfNode(NodeId v) const {
    return records_[partition_of_[v]];
  }

  /// Raw bytes of a partition's record.
  Result<std::pair<const uint8_t*, size_t>> RecordBytes(
      uint32_t partition) const {
    return manager_.Get(records_[partition]);
  }

  size_t record_count() const { return records_.size(); }
  size_t page_count() const { return manager_.page_count(); }
  size_t overflow_page_count() const { return overflow_pages_; }
  /// Total occupied disk space: data pages + overflow pages.
  uint64_t TotalDiskBytes() const {
    return manager_.disk_bytes() + overflow_pages_ * page_size_;
  }
  double PageUtilization() const { return manager_.Utilization(); }
  uint64_t payload_bytes() const { return manager_.payload_bytes(); }

 private:
  NatixStore(const ImportedDocument* doc, RecordManager manager)
      : doc_(doc), manager_(std::move(manager)) {}

  const ImportedDocument* doc_;
  RecordManager manager_;
  std::vector<uint32_t> partition_of_;  // node -> partition index
  std::vector<RecordId> records_;       // partition index -> record
  size_t overflow_pages_ = 0;
  size_t page_size_ = 8192;
};

/// A navigation cursor over a NatixStore. Every move is charged to an
/// AccessStats according to whether it stays within the current record.
/// This is the storage-level equivalent of following intra-record pointers
/// vs. dereferencing a proxy to another record.
class Navigator {
 public:
  /// `store` and `stats` must outlive the navigator. If `buffer` is
  /// non-null, every move that lands on a different record touches the
  /// target page in the pool, modelling cold-cache behaviour (a miss =
  /// one page read); pass nullptr for the paper's warm-buffer setting.
  Navigator(const NatixStore* store, AccessStats* stats,
            LruBufferPool* buffer = nullptr)
      : store_(store),
        stats_(stats),
        buffer_(buffer),
        current_(store->tree().root()) {}

  NodeId current() const { return current_; }

  /// Moves to the root (charged like any other move).
  void JumpToRoot() { Move(store_->tree().root()); }

  /// Random-access jump (e.g. when an evaluator restarts from a context
  /// node).
  void JumpTo(NodeId v) { Move(v); }

  /// Axis moves; return false (and stay put) when no such node exists.
  bool ToFirstChild();
  bool ToNextSibling();
  bool ToPrevSibling();
  bool ToParent();

 private:
  void Move(NodeId to);

  const NatixStore* store_;
  AccessStats* stats_;
  LruBufferPool* buffer_;
  NodeId current_;
};

}  // namespace natix

#endif  // NATIX_STORAGE_STORE_H_
