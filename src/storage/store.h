#ifndef NATIX_STORAGE_STORE_H_
#define NATIX_STORAGE_STORE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/file_backend.h"
#include "storage/page_integrity.h"
#include "storage/record.h"
#include "storage/record_manager.h"
#include "storage/wal.h"
#include "tree/partitioning.h"
#include "updates/incremental.h"
#include "xml/importer.h"

namespace natix {

/// Store construction options.
struct StoreOptions {
  /// Disk page size in bytes; several records share one page.
  size_t page_size = 8192;
  /// Record manager allocation lookback (see RecordManager).
  int allocation_lookback = 8;
  /// Storage slot size (must match the weight model used at import).
  uint32_t slot_size = 8;
  /// Metadata slots charged to nodes inserted through InsertBefore();
  /// must match the weight model used at import.
  uint32_t metadata_slots = 1;
  /// Record wire format for every record this store writes
  /// (kRecordFormatV2 or kRecordFormatV3). Readers accept both formats
  /// regardless, so this only picks the encoding of new/rewritten
  /// records; stores recovered from pre-v3 checkpoints keep writing v2.
  uint16_t record_format = kRecordFormatV3;
};

/// Counters for navigation operations against a NatixStore.
struct AccessStats {
  /// Moves between nodes of the same record (cheap pointer chasing).
  uint64_t intra_moves = 0;
  /// Moves that cross a record boundary (record lookup + pin).
  uint64_t record_crossings = 0;
  /// Crossings that additionally land on a different page (buffer-pool
  /// hash lookup + latch; no I/O, the paper's experiment runs with a warm
  /// buffer larger than the document).
  uint64_t page_switches = 0;

  uint64_t TotalMoves() const { return intra_moves + record_crossings; }
  void Reset() { *this = AccessStats(); }
};

/// Converts access counters into simulated navigation time. Defaults are
/// calibrated to commodity-hardware order-of-magnitude costs: intra-record
/// navigation is pointer arithmetic within a pinned record; a record
/// crossing pays a record-id -> (page, slot) lookup, page pin and record
/// header decode.
struct NavigationCostModel {
  double intra_ns = 25.0;
  double crossing_ns = 700.0;
  double page_switch_ns = 300.0;  // surcharge on top of crossing_ns

  double CostSeconds(const AccessStats& stats) const {
    return (stats.intra_moves * intra_ns +
            stats.record_crossings * crossing_ns +
            stats.page_switches * page_switch_ns) *
           1e-9;
  }
};

/// Counters for the durability layer of a NatixStore, the basis of the
/// write-amplification report in bench_updates. All counters cover the
/// current process's WAL session (they restart at zero after recovery).
struct WalStats {
  /// Total log bytes appended (entry headers included).
  uint64_t wal_bytes = 0;
  /// Log bytes spent on logical insert-op entries.
  uint64_t op_bytes = 0;
  /// Log bytes spent on checkpoints (metadata + page images).
  uint64_t checkpoint_bytes = 0;
  /// Logical operations logged.
  uint64_t op_entries = 0;
  /// Checkpoints completed.
  uint64_t checkpoints = 0;
  /// Record payload bytes written by the record manager in the same
  /// window -- the denominator of the amplification ratio.
  uint64_t record_bytes = 0;
  /// Backend fsyncs issued by the WAL writer.
  uint64_t fsyncs = 0;
  /// Fsyncs that made at least one new entry durable, and the entries
  /// they covered; their ratio is the mean commit batch size.
  uint64_t sync_batches = 0;
  uint64_t synced_entries = 0;
  /// Transient (Unavailable) append attempts absorbed by retry.
  uint64_t append_retries = 0;
  /// LSN of the last entry logged and the durable watermark: entries
  /// with LSN <= durable_lsn survive power loss.
  uint64_t last_lsn = 0;
  uint64_t durable_lsn = 0;

  /// Log bytes per record byte for the op stream alone (checkpoints are
  /// reported separately: their cost is amortized by the checkpoint
  /// cadence, not by each operation).
  double OpAmplification() const {
    return record_bytes == 0
               ? 0.0
               : static_cast<double>(op_bytes) /
                     static_cast<double>(record_bytes);
  }
  /// Mean entries made durable per effective fsync batch.
  double MeanBatchOps() const {
    return sync_batches == 0 ? 0.0
                             : static_cast<double>(synced_entries) /
                                   static_cast<double>(sync_batches);
  }
};

/// Counters for mutations applied to a NatixStore.
struct UpdateStats {
  /// InsertBefore() calls that succeeded.
  uint64_t inserts = 0;
  /// DeleteSubtree() calls that succeeded.
  uint64_t deletes = 0;
  /// MoveSubtree() calls that succeeded.
  uint64_t moves = 0;
  /// Rename() calls that succeeded.
  uint64_t renames = 0;
  /// Partition splits performed by the incremental partitioner.
  uint64_t splits = 0;
  /// Under-utilized partitions absorbed into a run-adjacent sibling
  /// partition (the delete path's neighbour-merge).
  uint64_t merges = 0;
  /// Pre-existing records rewritten because their partition changed.
  uint64_t records_rewritten = 0;
  /// Records created for partitions born from splits.
  uint64_t records_created = 0;
  /// Record rewrites that had to move the record to a different page.
  uint64_t relocations = 0;
  /// Page payload compactions triggered by rewrites.
  uint64_t compactions = 0;
};

/// Serves buffer-pool frames from a FileBackend that FlushPagesTo()
/// populated: page p lives in a sealed cell (page_integrity.h) at byte
/// offset p * (page_size + kPageCellOverhead). Every read verifies the
/// cell's CRC before handing bytes up -- a damaged cell fails with
/// ParseError naming the classification (torn vs rot), and transient
/// backend errors (Unavailable) are retried a bounded number of times
/// with backoff. Jumbo pages (synthetic kJumboPageBit ids) are not part
/// of the flat file layout and fall back to the record manager's
/// in-memory image. bench_coldcache reads through this to charge real
/// I/O to pool misses.
class FilePageSource : public PageProvider {
 public:
  FilePageSource(FileBackend* file, size_t page_size,
                 const PageProvider* jumbo_fallback)
      : file_(file), page_size_(page_size), fallback_(jumbo_fallback) {}

  Result<std::vector<uint8_t>> ReadPage(uint32_t page_id) const override;

  FileBackend* file() const { return file_; }
  size_t page_size() const { return page_size_; }
  const IntegrityStats& stats() const { return stats_; }

 private:
  FileBackend* file_;
  size_t page_size_;
  const PageProvider* fallback_;
  mutable IntegrityStats stats_;
};

/// What Recover() found in the log -- the CLI maps this onto its exit
/// codes and LSN-range report, fsck onto its damage summary.
struct RecoveryInfo {
  /// LSN of the kCheckpointBegin entry of the restored checkpoint.
  uint64_t checkpoint_begin_lsn = 0;
  /// LSN of its kCheckpointEnd entry (the restore point).
  uint64_t checkpoint_end_lsn = 0;
  /// LSN of the last valid entry applied (restore point or op tail).
  uint64_t last_lsn = 0;
  /// Valid log entries scanned (checkpoint entries included).
  uint64_t entries_scanned = 0;
  /// Complete checkpoints found in the log.
  uint64_t checkpoints_found = 0;
  /// Op entries replayed after the restore point.
  uint64_t replayed_ops = 0;
  /// True when the log ended in bytes that do not form a valid entry
  /// (crash damage); Recover() truncates them, RecoverForAudit() leaves
  /// them in place.
  bool tail_was_torn = false;
  /// Size of that torn tail in bytes.
  uint64_t torn_bytes = 0;
};

/// Health of a durable store's write path. Reads (snapshots, queries,
/// navigation, fsck) never consult the WAL, so they keep serving in every
/// state; what degrades is the *mutation* surface.
///
///   kHealthy --(WAL append/sync failure)--> kDegraded
///   kHealthy/kDegraded --(torn checkpoint, reseal failure)--> kFailed
///   kDegraded --(TryRehabilitate() succeeds)--> kHealthy
///
/// kDegraded means the log may be missing a suffix of applied ops but the
/// in-memory store is intact: mutations are refused (FailedPrecondition),
/// reads serve, and TryRehabilitate() may win the store back by truncating
/// the log to its durable watermark and re-checkpointing. kFailed means a
/// write landed partially in a way that cannot be reasoned about (a torn
/// checkpoint group, an unreadable resealed page): rehabilitation is
/// refused and the only way forward is Recover() from the on-disk bytes.
/// Severity only escalates; Demote() never moves health backwards.
enum class StoreHealth : uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kFailed = 2,
};

/// "healthy" / "degraded" / "failed" -- stable strings for logs and CLI.
const char* StoreHealthName(StoreHealth health);

class StoreSnapshot;

/// The mini-Natix store: a document loaded under a given tree sibling
/// partitioning. Each partition becomes one physical record (serialized
/// with RecordBuilder); records are packed onto slotted pages by the
/// RecordManager; oversized text is stored in overflow pages.
///
/// Records are self-describing (format v2: per-node topology, proxies for
/// partition-crossing edges, one aggregate parent back-pointer), which
/// makes them the physical source of truth: ReleaseDocument() drops the
/// in-memory ImportedDocument and the store keeps answering navigation,
/// queries, updates and checkpoints from record bytes alone. A released
/// store rematerializes its document on demand (first InsertBefore) via
/// MaterializeDocument(), which reconstructs the exact same NodeIds.
///
/// The store *owns* its document and may mutate it: InsertBefore() adds a
/// node, drives the IncrementalPartitioner, and rewrites exactly the
/// records named in its PartitionDelta -- the storage-level realization of
/// the Kanne/Moerkotte record split. RecordIds are logical, so records
/// relocated by growth keep their identity; navigation and queries stay
/// correct mid-update-stream.
class NatixStore {
 public:
  /// Builds the store, taking ownership of `doc`. `partitioning` must be
  /// feasible for `limit` on `doc.tree` (checked; the limit is in slots
  /// of the weight model used at import).
  static Result<NatixStore> Build(ImportedDocument doc,
                                  const Partitioning& partitioning,
                                  TotalWeight limit,
                                  const StoreOptions& options = {});

  /// Inserts a node as a child of `parent` immediately before `before`
  /// (kInvalidNode appends), with the given label/kind/content. The
  /// node's weight follows the store's weight model; content too large
  /// for the partition limit is externalized to overflow storage. Only
  /// the records of partitions in the resulting PartitionDelta are
  /// rewritten, so per-insert cost is proportional to the partitions
  /// touched, not to the document. On a released store the document is
  /// rematerialized from records first.
  Result<NodeId> InsertBefore(NodeId parent, NodeId before,
                              std::string_view label = {},
                              NodeKind kind = NodeKind::kElement,
                              std::string_view content = {});

  /// Deletes the subtree rooted at `v` (the root cannot be deleted).
  /// Every node of the subtree is tombstoned: its NodeId is never
  /// recycled, its partition slot becomes kNoPartition, and the records
  /// of partitions that lose all their nodes are freed. Partitions left
  /// under half the weight limit are merged with a run-adjacent sibling
  /// partition (see IncrementalPartitioner::DeleteSubtree), so page
  /// utilization does not drift under delete-heavy workloads. Returns
  /// the removed NodeIds in document order. Goes through the same
  /// delta-application pipeline as every other mutation.
  Result<std::vector<NodeId>> DeleteSubtree(NodeId v);

  /// Splices the subtree rooted at `v` to a new position (child of
  /// `parent`, immediately before `before`; kInvalidNode appends). The
  /// subtree's record bytes are not re-imported: only the records of the
  /// source partition, the destination partition and the old/new
  /// neighbours (whose crossing-edge proxies or aggregate back-pointers
  /// change) are rewritten.
  Status MoveSubtree(NodeId v, NodeId parent, NodeId before);

  /// Replaces the label of `v`. The new label is interned and the one
  /// record holding `v` is patched in place through RewriteRecordLabel
  /// (honoring the v3 varint label encoding); when the patch cannot be
  /// represented (narrow-offset overflow) the partition is re-encoded
  /// instead. Works on a released store without materializing the
  /// document.
  Status Rename(NodeId v, std::string_view label);

  /// True while the in-memory document is resident. tree()/document()
  /// may only be called then.
  bool has_document() const { return doc_ != nullptr; }

  const Tree& tree() const {
    assert(doc_ != nullptr && "document released; use record accessors");
    return doc_->tree;
  }
  const ImportedDocument& document() const {
    assert(doc_ != nullptr && "document released; use record accessors");
    return *doc_;
  }

  /// Drops the in-memory document (and parks the incremental
  /// partitioner's state), leaving the records as the only copy of the
  /// data -- the memory-bounded operating mode. Overflow node content is
  /// moved to a small side map (records store only its length). No-op on
  /// an already-released store.
  Status ReleaseDocument();

  /// Rebuilds the in-memory document from record bytes if it was
  /// released; no-op otherwise. NodeIds, labels and content round-trip
  /// exactly.
  Status EnsureDocument();

  /// Reconstructs a standalone document from record bytes (works whether
  /// or not the in-memory document is resident; never mutates the
  /// store). The record-is-truth invariant in one call: the result must
  /// equal the resident document.
  Result<ImportedDocument> MaterializeDocument() const;

  /// Deep copy of the (possibly mutated) document, for reference
  /// rebuilds and equivalence checks. Materializes from records when the
  /// document is released.
  Result<ImportedDocument> SnapshotDocument() const;

  /// A tombstone-free snapshot: live nodes renumbered densely in
  /// document order, dead slots dropped. `old_to_new` (sized like the
  /// store's node table) maps every live NodeId to its id in the
  /// compacted document and kInvalidNode for tombstones. The result is
  /// what a fresh import of the current logical document looks like, so
  /// equivalence checks can Build() a reference store from it and
  /// compare query answers through the map.
  Result<ImportedDocument> CompactSnapshot(
      std::vector<NodeId>* old_to_new) const;

  /// Re-stamps the placement-hint fields (partition / record / slot) of
  /// every proxy and aggregate in every record from the store's
  /// authoritative tables, rewriting only the records whose hints were
  /// stale. Returns the number of hint entries rewritten. Hints go stale
  /// when splits, merges or moves re-home a proxy target; navigation
  /// never trusts them, but fsck --fix-hints uses this to restore the
  /// bulk-load property that hints are exact.
  Result<size_t> RefreshPlacementHints();

  /// Number of node slots in the store, tombstones included (valid
  /// regardless of document residency). NodeIds are never recycled, so
  /// this only grows.
  size_t node_count() const { return partition_of_.size(); }

  /// Number of live (non-tombstoned) nodes.
  size_t live_node_count() const {
    size_t live = 0;
    for (const uint32_t p : partition_of_) live += p != kNoPartition ? 1 : 0;
    return live;
  }

  /// True when `v` names a live node (false for tombstones and
  /// out-of-range ids).
  bool IsLiveNode(NodeId v) const {
    return v < partition_of_.size() && partition_of_[v] != kNoPartition;
  }

  /// The document root (NodeId 0 by construction); kInvalidNode only for
  /// a default-constructed store.
  NodeId RootNode() const {
    return partition_of_.empty() ? kInvalidNode : NodeId{0};
  }

  /// Monotonic mutation counter: bumped by every successful mutation,
  /// survives release/rematerialize cycles and checkpoint/recovery.
  /// Snapshots pin a version; caches derived from the node set (the
  /// query evaluator's document-order ranks) key their freshness on
  /// this. Thread-safe (takes the reader lock).
  uint64_t version() const;

  /// Opens a read view pinned at the current version. The snapshot's
  /// accessors answer from tables copied at open and page images
  /// resolved as-of the pinned version, so N reader threads may each
  /// hold a snapshot and navigate/query it while one writer thread
  /// keeps mutating the store: mutations publish re-encoded records
  /// copy-on-write and the pre-images a snapshot can still reach are
  /// retired, not overwritten, until every snapshot at or below their
  /// epoch closes (~StoreSnapshot triggers the reclaim). The snapshot
  /// borrows the store -- it must not outlive it, and the store must
  /// not be moved while snapshots are open.
  StoreSnapshot OpenSnapshot() const;

  /// Number of snapshot handles currently open (all versions).
  /// Thread-safe.
  size_t open_snapshot_count() const;

  /// Copy-on-write retire/reclaim counters (thread-safe; see MvccStats).
  MvccStats mvcc_stats() const { return manager_.mvcc_stats(); }

  /// Label string by interned id; empty view for -1 or out of range.
  /// Backed by the store's own label table, so it works on a released
  /// store.
  std::string_view LabelNameOf(int32_t id) const {
    return id < 0 || static_cast<size_t>(id) >= labels_.size()
               ? std::string_view()
               : labels_[static_cast<size_t>(id)];
  }
  size_t label_count() const { return labels_.size(); }

  /// Partition index (== record index) holding a node.
  uint32_t PartitionOf(NodeId v) const { return partition_of_[v]; }
  /// Physical record id of a partition.
  RecordId RecordOf(uint32_t partition) const { return records_[partition]; }
  /// Physical record id holding a node.
  RecordId RecordOfNode(NodeId v) const {
    return records_[partition_of_[v]];
  }
  /// In-record topology index of a node within its record.
  uint32_t SlotOfNode(NodeId v) const { return slot_in_record_[v]; }
  /// Page currently holding a node's record (changes when the record
  /// relocates; jumbo records report their synthetic page id).
  uint32_t PageOfNode(NodeId v) const {
    return manager_.PageOf(records_[partition_of_[v]]);
  }

  /// Node kind decoded from the node's record bytes (no document, no
  /// buffer pool, no stats).
  Result<NodeKind> KindOfNode(NodeId v) const;
  /// Interned label id decoded from the node's record bytes.
  Result<int32_t> LabelIdOfNode(NodeId v) const;

  /// Raw bytes of a partition's record.
  Result<std::pair<const uint8_t*, size_t>> RecordBytes(
      uint32_t partition) const {
    return manager_.Get(records_[partition]);
  }

  /// Physical (page, slot) address of a record (see
  /// RecordManager::AddressOf); navigation uses it to locate record
  /// payloads inside pinned page frames.
  Result<std::pair<uint32_t, uint16_t>> AddressOfRecord(RecordId id) const {
    return manager_.AddressOf(id);
  }

  /// Storage slot size the records were encoded with.
  uint32_t slot_size() const { return options_.slot_size; }
  size_t page_size() const { return page_size_; }

  /// Default byte source for buffer-pool misses: the record manager's
  /// in-memory page images.
  const PageProvider* page_provider() const { return &manager_; }

  /// Writes every regular page image sequentially to `file` as sealed
  /// cells (page p at offset p * (page_size + kPageCellOverhead); the
  /// file is truncated first). A FilePageSource over the result serves
  /// genuinely cold, checksum-verified page reads.
  Status FlushPagesTo(FileBackend* file) const;

  /// The incremental partitioner, once the store has been mutated
  /// (nullptr for a store that has only been bulk-loaded or whose
  /// document is currently released).
  const IncrementalPartitioner* partitioner() const { return inc_.get(); }

  /// Attaches a write-ahead log to the store. The backend must be empty;
  /// an initial checkpoint of the full store is written immediately, so
  /// from this point the log alone reconstructs the store. Every later
  /// mutation appends one logical op entry before returning; when that
  /// op is acknowledged durable is the `policy`'s call (see SyncPolicy;
  /// the default group-commit batches fsyncs across a commit window).
  Status EnableDurability(std::unique_ptr<FileBackend> backend,
                          SyncPolicy policy = SyncPolicy());

  /// Writes a checkpoint: the store's metadata plus an image of every
  /// page dirtied since the previous checkpoint. Recovery replays only
  /// the op tail after the last complete checkpoint, so checkpoint
  /// cadence bounds recovery work. Works on a released store (the
  /// checkpoint then carries no document; recovery restores a released
  /// store).
  Status Checkpoint();

  /// Rebuilds a store from the log left behind by a crashed (or cleanly
  /// stopped) durable store: restores the last complete checkpoint,
  /// replays the op tail, truncates any torn bytes off the log, and
  /// re-attaches the backend for continued durable operation. `info`
  /// (optional) receives what the scan found, torn tail included.
  static Result<NatixStore> Recover(std::unique_ptr<FileBackend> backend,
                                    RecoveryInfo* info = nullptr,
                                    SyncPolicy policy = SyncPolicy());

  /// Read-only flavour of Recover() for fsck and the self-healing read
  /// path: restores the checkpoint and replays the op tail exactly like
  /// Recover(), but never writes to `backend` (no torn-tail truncation)
  /// and leaves the result non-durable. `backend` must outlive nothing --
  /// it is only read during the call.
  static Result<NatixStore> RecoverForAudit(FileBackend* backend,
                                            RecoveryInfo* info = nullptr);

  bool durable() const { return wal_ != nullptr; }
  /// Write-path health (see StoreHealth). Always kHealthy for a
  /// non-durable store.
  StoreHealth health() const { return health_; }
  /// Human-readable cause of the last demotion; empty while healthy.
  const std::string& health_reason() const { return health_reason_; }
  /// True when the store is not kHealthy: the in-memory store may be
  /// ahead of the log, so further mutations are refused. (Compatibility
  /// spelling of `health() != StoreHealth::kHealthy`.)
  bool poisoned() const { return health_ != StoreHealth::kHealthy; }

  /// Attempts to win a kDegraded store back to kHealthy: re-probes the
  /// backend, truncates the log to the durable watermark (dropping any
  /// entries of unknowable durability, and a dangling checkpoint-begin
  /// group if one made it in), re-attaches a WAL writer there and writes
  /// a fresh checkpoint so the log again matches the in-memory store --
  /// applied-but-unlogged ops are re-covered by that checkpoint, not
  /// replayed. On success the store is kHealthy and accepts mutations.
  /// On failure the store stays kDegraded (each failure path reports why)
  /// and the call may be retried. Refused (FailedPrecondition) for
  /// kFailed stores and for non-durable ones.
  Status TryRehabilitate();

  /// Records an unrecoverable storage-layer failure observed outside the
  /// store's own call graph (e.g. the self-healing read path failed to
  /// reseal a quarantined page): demotes straight to kFailed.
  void NoteUnrecoverableFailure(const Status& cause);
  /// Thread-safe: the session counters are atomics and the WalWriter
  /// accessors take the writer's own mutex, so a monitoring thread may
  /// poll this while the mutator thread streams ops.
  WalStats wal_stats() const;

  /// Sync policy the WAL runs under (meaningful only when durable()).
  const SyncPolicy& sync_policy() const { return sync_policy_; }
  /// LSN of the last entry this store logged (0 when non-durable).
  uint64_t last_wal_lsn() const { return wal_ ? wal_->last_lsn() : 0; }
  /// The acknowledgement watermark: ops whose entry LSN is <= this are
  /// fsynced and survive power loss. Under kSyncEveryOp it trails every
  /// mutation by zero; under kGroupCommit it advances as the flusher
  /// lands batches; under kSyncOnCheckpoint only checkpoints move it.
  uint64_t durable_wal_lsn() const { return wal_ ? wal_->durable_lsn() : 0; }
  /// Flushes and fsyncs every logged entry; on success every prior
  /// mutation is durable. A failed sync demotes the store to kDegraded
  /// exactly like a failed append; a full disk (ResourceExhausted) is
  /// backpressure and leaves health untouched.
  Status SyncWal();

  size_t record_count() const { return records_.size(); }
  size_t page_count() const { return manager_.page_count(); }
  /// Regular slotted pages only -- the pages FlushPagesTo() writes and
  /// fsck's page-file checker verifies.
  size_t regular_page_count() const { return manager_.regular_page_count(); }
  size_t overflow_page_count() const { return overflow_pages_; }
  /// Total occupied disk space: data pages + overflow pages.
  uint64_t TotalDiskBytes() const {
    return manager_.disk_bytes() + overflow_pages_ * page_size_;
  }
  double PageUtilization() const { return manager_.Utilization(); }
  /// The format new records are encoded with (checkpoints persist it, so
  /// a recovered store keeps writing whatever the original store wrote).
  uint16_t record_format() const { return options_.record_format; }
  uint64_t payload_bytes() const { return manager_.payload_bytes(); }
  TotalWeight limit() const { return limit_; }
  UpdateStats update_stats() const;

  /// Joins the WAL flusher thread (via `wal_`) before any other member --
  /// in particular `backend_`, which the flusher writes to -- is torn
  /// down. The moves stay defaulted; they are safe because `wal_` is
  /// declared before `backend_`, so move-assignment retires the old
  /// WalWriter (joining its flusher) before the old backend can be freed.
  ~NatixStore();
  NatixStore(NatixStore&&) = default;
  NatixStore& operator=(NatixStore&&) = default;

 private:
  friend class StoreSnapshot;

  NatixStore();

  /// Concurrency state, heap-held so the store stays movable (the
  /// defaulted moves transfer the pointer; a store must not be moved
  /// while snapshots are open or other threads touch it).
  struct ConcurrencyCore {
    /// Single-writer / shared-reader lock over the store tables, the
    /// record manager and the WAL session. Public mutators hold it
    /// exclusive; snapshot opens and snapshot page/record reads hold it
    /// shared. Not recursive: internal cross-calls bind to the
    /// *Locked() bodies below.
    mutable std::shared_mutex mu;
    /// Guards open_snapshots. A leaf lock: taken with mu held shared
    /// (open), exclusive (close, CoW arming) or not at all
    /// (open_snapshot_count); never the other way around.
    mutable std::mutex reg_mu;
    /// Open snapshots: pinned version -> handle count.
    std::map<uint64_t, uint32_t> open_snapshots;
    // WAL session counters, atomic so wal_stats() needs no lock.
    std::atomic<uint64_t> wal_op_bytes{0};
    std::atomic<uint64_t> wal_checkpoint_bytes{0};
    std::atomic<uint64_t> wal_op_entries{0};
    std::atomic<uint64_t> wal_checkpoints{0};
    std::atomic<uint64_t> wal_record_base{0};
  };

  /// Releases one handle on `version` and reclaims retired page images
  /// no remaining snapshot can reach (called by ~StoreSnapshot; takes
  /// the writer lock).
  void CloseSnapshot(uint64_t version) const;

  /// Arms the record manager's copy-on-write for the mutation about to
  /// run: the write epoch is version_ + 1, and pre-images are retired
  /// (rather than dropped) only when an open snapshot can still reach
  /// them. Caller holds cc_->mu exclusive.
  void ArmCow();

  // Unlocked bodies of the public locking wrappers. Internal
  // cross-calls must bind to these (cc_->mu is not recursive).
  Result<NodeId> InsertBeforeLocked(NodeId parent, NodeId before,
                                    std::string_view label, NodeKind kind,
                                    std::string_view content);
  Result<std::vector<NodeId>> DeleteSubtreeLocked(NodeId v);
  Status MoveSubtreeLocked(NodeId v, NodeId parent, NodeId before);
  Status RenameLocked(NodeId v, std::string_view label);
  Status ReleaseDocumentLocked();
  Status EnsureDocumentLocked();
  Result<size_t> RefreshPlacementHintsLocked();
  Status FlushPagesToLocked(FileBackend* file) const;
  Status CheckpointLocked();
  Status SyncWalLocked();
  Result<ImportedDocument> MaterializeDocumentLocked() const;
  Result<ImportedDocument> SnapshotDocumentLocked() const;
  Result<ImportedDocument> CompactSnapshotLocked(
      std::vector<NodeId>* old_to_new) const;

  /// Creates the incremental partitioner on first mutation: from the
  /// saved state of a release cycle when one exists, else from the
  /// build-time partitioning (interval id i == build partition i).
  Status EnsureMutable();

  /// Serializes one partition into self-describing record bytes.
  /// `members` must list the partition's nodes in document order and
  /// slot_in_record_ must already be current for every member and every
  /// cut-away neighbour. Adds `*overflow_bytes` of externalized content.
  Result<std::vector<uint8_t>> EncodePartition(
      uint32_t part, const std::vector<NodeId>& members,
      uint64_t* overflow_bytes) const;

  /// Records the in-record topology index of every member.
  void AssignSlots(const std::vector<NodeId>& members);

  /// Appends labels interned by the tree since the last sync to the
  /// store's own label table (ids are shared between the two).
  void SyncLabels();

  /// True if `v`'s content is externalized (the weight model's overflow
  /// stub: inline slots would exceed the node's weight).
  bool NodeOverflows(NodeId v) const;

  /// Shared body of MaterializeDocument()/EnsureDocument(): decodes
  /// every record into a fresh document. Overflow content comes from the
  /// resident document when there is one, else from overflow_content_.
  Result<ImportedDocument> BuildDocumentFromRecords() const;

  /// Serializes everything a checkpoint must capture except page
  /// contents: document (when resident), partitioner state,
  /// record-manager metadata, store tables and counters.
  void SerializeCheckpointMeta(std::vector<uint8_t>* out) const;

  /// Rebuilds a store from checkpoint metadata (pages still zeroed).
  static Result<NatixStore> FromCheckpointMeta(const uint8_t* data,
                                               size_t size);

  /// Shared body of Recover()/RecoverForAudit(): scans the log, restores
  /// the last complete checkpoint, replays the op tail. Never mutates
  /// `backend`. Outputs the offset just past the valid prefix and the
  /// next LSN so Recover() can truncate and re-attach.
  static Result<NatixStore> RecoverCore(FileBackend* backend,
                                        RecoveryInfo* info,
                                        uint64_t* valid_end,
                                        uint64_t* next_lsn);

  /// Applies one PartitionDelta to the physical layer -- the single
  /// pipeline shared by insert, delete, move and rename: frees the
  /// records of retired partitions, refreshes the membership and
  /// in-record slot tables of every partition in the delta plus the
  /// given `neighbours` (nodes whose crossing edges changed without a
  /// membership change), then re-encodes exactly those records. Bumps
  /// version_.
  Status ApplyDelta(const PartitionDelta& delta,
                    const std::vector<NodeId>& neighbours);

  /// Interns `label` into the store's own label table (used by the
  /// released-store rename path, where no tree is resident).
  int32_t InternStoreLabel(std::string_view label);

  /// Re-encodes partition `part` from the resident document, using the
  /// current membership tables (rename fallback when the in-place label
  /// patch cannot be represented).
  Status ReencodePartition(uint32_t part);

  /// Appends one logical op entry for a completed InsertBefore().
  Status LogInsert(NodeId parent_logged, NodeId before, NodeKind kind,
                   std::string_view label, std::string_view content);
  /// Appends one logical op entry for a completed DeleteSubtree().
  Status LogDelete(NodeId v);
  /// Appends one logical op entry for a completed MoveSubtree().
  Status LogMove(NodeId v, NodeId parent, NodeId before);
  /// Appends one logical op entry for a completed Rename().
  Status LogRename(NodeId v, std::string_view label);
  /// Shared tail of the Log*() helpers: appends and accounts one entry.
  Status LogOp(WalEntryType type, const std::vector<uint8_t>& payload);

  /// Gate every mutation and checkpoint passes first: OK while healthy,
  /// FailedPrecondition naming the health state and demotion cause
  /// otherwise.
  Status CheckWritable() const;

  /// Classified demotion: records `what` failed with `cause` and moves
  /// health_ to `to` -- but severity only escalates (a kDegraded demand
  /// cannot overwrite kFailed, and the first recorded reason wins).
  void Demote(StoreHealth to, const char* what, const Status& cause);

  void RecomputeOverflowPages() {
    const uint64_t payload = page_size_ - 16;
    overflow_pages_ =
        static_cast<size_t>((overflow_bytes_ + payload - 1) / payload);
  }

  /// Owned on the heap so the partitioner's Tree* survives store moves.
  /// Null while the document is released.
  std::unique_ptr<ImportedDocument> doc_;
  RecordManager manager_;
  StoreOptions options_;
  TotalWeight limit_ = 0;
  Partitioning partitioning_;  // build-time snapshot; seeds inc_
  std::unique_ptr<IncrementalPartitioner> inc_;
  /// Partitioner state parked across a release cycle (inc_ holds a Tree*
  /// and cannot outlive the document).
  IncrementalPartitioner::SavedState saved_inc_;
  bool has_saved_inc_ = false;
  std::vector<uint32_t> partition_of_;  // node -> partition index
  std::vector<RecordId> records_;       // partition index -> record
  std::vector<uint32_t> slot_in_record_;  // node -> in-record index
  std::vector<std::string> labels_;     // store-owned copy of the label table
  std::vector<uint64_t> record_overflow_;  // externalized bytes per record
  /// Externalized content of overflow nodes, kept only while the
  /// document is released (records store just the length; the resident
  /// document is the source otherwise).
  std::unordered_map<NodeId, std::string> overflow_content_;
  /// document().source_bytes, preserved across a release cycle.
  uint64_t released_source_bytes_ = 0;
  uint64_t version_ = 0;
  uint64_t overflow_bytes_ = 0;
  size_t overflow_pages_ = 0;
  size_t page_size_ = 8192;
  uint64_t inserts_ = 0;
  uint64_t deletes_ = 0;
  uint64_t moves_ = 0;
  uint64_t renames_ = 0;
  uint64_t records_rewritten_ = 0;
  uint64_t records_created_ = 0;

  // Durability (all null/zero for a plain in-memory store). Order
  // matters: `wal_` must precede `backend_` so defaulted move-assignment
  // joins the old writer's flusher thread before freeing the backend it
  // writes to (the destructor resets `wal_` first for the same reason).
  std::unique_ptr<WalWriter> wal_;
  std::unique_ptr<FileBackend> backend_;
  SyncPolicy sync_policy_;
  /// Write-path health state machine (see StoreHealth above). Replaces
  /// the old sticky `poisoned_` flag: Degraded is recoverable via
  /// TryRehabilitate(), Failed is terminal for this in-process store.
  StoreHealth health_ = StoreHealth::kHealthy;
  std::string health_reason_;
  /// Set while recovery replays the op tail, so the replayed
  /// InsertBefore() calls do not log themselves again.
  bool replaying_ = false;
  /// Locks, the snapshot registry and the atomic WAL session counters
  /// (wal_record_base is record_bytes_written() when the WAL attached;
  /// wal_stats() reports record bytes relative to it, so the ratio
  /// covers the same window as the log counters).
  std::unique_ptr<ConcurrencyCore> cc_;
};

/// An immutable read view of a NatixStore pinned at one version -- the
/// read-path contract: every navigator and evaluator works over a
/// snapshot, never over the live store, so a writer thread mutating the
/// store cannot change an answer mid-query. The logical tables
/// (partition/record/slot/label/address) are copied at open; page bytes
/// are resolved on demand as-of the pinned version (the live image when
/// the page has not changed since, a retired pre-image otherwise), under
/// the store's reader lock. Closing the snapshot lets the store reclaim
/// pre-images no remaining snapshot can reach.
///
/// Move-only. The handle must not outlive its store, and must not be
/// moved while a Navigator holds a pointer to it (the navigator's
/// provider points into the handle).
class StoreSnapshot {
 public:
  StoreSnapshot(StoreSnapshot&& other) noexcept
      : state_(std::move(other.state_)), source_(state_.get()) {}
  StoreSnapshot& operator=(StoreSnapshot&& other) noexcept;
  StoreSnapshot(const StoreSnapshot&) = delete;
  StoreSnapshot& operator=(const StoreSnapshot&) = delete;
  /// Releases the version pin; the store reclaims page pre-images no
  /// remaining snapshot can reach.
  ~StoreSnapshot();

  /// The pinned store version.
  uint64_t version() const { return state_->version; }

  // The read-side surface of NatixStore, answered from the pinned
  // tables (same semantics as the store accessors of the same name).
  size_t node_count() const { return state_->partition_of.size(); }
  bool IsLiveNode(NodeId v) const {
    return v < state_->partition_of.size() &&
           state_->partition_of[v] != kNoPartition;
  }
  NodeId RootNode() const {
    return state_->partition_of.empty() ? kInvalidNode : NodeId{0};
  }
  uint32_t PartitionOf(NodeId v) const { return state_->partition_of[v]; }
  RecordId RecordOf(uint32_t partition) const {
    return state_->records[partition];
  }
  RecordId RecordOfNode(NodeId v) const {
    return state_->records[state_->partition_of[v]];
  }
  uint32_t SlotOfNode(NodeId v) const { return state_->slot_in_record[v]; }
  /// Physical (page, slot) address of a record at this version (NotFound
  /// for records that were dead at open).
  Result<std::pair<uint32_t, uint16_t>> AddressOfRecord(RecordId id) const;
  uint32_t PageOfNode(NodeId v) const;
  std::string_view LabelNameOf(int32_t id) const {
    return id < 0 || static_cast<size_t>(id) >= state_->labels.size()
               ? std::string_view()
               : state_->labels[static_cast<size_t>(id)];
  }
  size_t label_count() const { return state_->labels.size(); }
  uint32_t slot_size() const { return state_->slot_size; }
  size_t page_size() const { return state_->page_size; }
  Result<NodeKind> KindOfNode(NodeId v) const;
  Result<int32_t> LabelIdOfNode(NodeId v) const;

  /// Epoch of the page image this version reads -- the frame key a
  /// buffer-pool pin of `page` must use, so two snapshots over different
  /// versions of one page occupy distinct frames.
  uint64_t PageEpochOf(uint32_t page) const {
    const auto it = state_->page_epochs.find(page);
    return it == state_->page_epochs.end() ? 0 : it->second;
  }

  /// Copies the record bytes of `partition` as of this version (the live
  /// image, or a retired pre-image when the writer has since re-encoded
  /// the record). Thread-safe against the writer.
  Result<std::vector<uint8_t>> CopyRecordBytes(uint32_t partition) const;

  /// Byte source for buffer-pool misses, serving this version's page
  /// images. Thread-safe against the writer.
  const PageProvider* page_provider() const { return &source_; }

  /// Document-order rank of every node slot, captured at open when the
  /// store's document was resident; empty otherwise (the evaluator then
  /// derives ranks by walking records through a Navigator).
  const std::vector<uint32_t>& preorder_ranks() const {
    return state_->preorder_ranks;
  }

  /// Reconstructs the document as of this version from record bytes
  /// (tombstones included, NodeIds preserved) -- the oracle input for
  /// isolation checks.
  Result<ImportedDocument> MaterializeDocument() const;

  /// Tombstone-free document as of this version, live nodes renumbered
  /// densely in document order (see NatixStore::CompactSnapshot).
  Result<ImportedDocument> CompactDocument(
      std::vector<NodeId>* old_to_new) const;

 private:
  friend class NatixStore;

  struct State {
    const NatixStore* store = nullptr;
    uint64_t version = 0;
    uint32_t slot_size = 8;
    size_t page_size = 8192;
    std::vector<uint32_t> partition_of;   // node -> partition index
    std::vector<RecordId> records;        // partition index -> record
    std::vector<uint32_t> slot_in_record; // node -> in-record index
    std::vector<std::string> labels;
    /// record id -> (page, slot) at this version; records dead at open
    /// hold RecordManager::kInvalidPage.
    std::vector<std::pair<uint32_t, uint16_t>> addresses;
    /// page -> epoch of the image this version reads (absent = 0).
    std::unordered_map<uint32_t, uint64_t> page_epochs;
    /// Externalized content of overflow nodes, copied at open.
    std::unordered_map<NodeId, std::string> overflow_content;
    uint64_t source_bytes = 0;
    std::vector<uint32_t> preorder_ranks;
  };

  /// PageProvider over the pinned version: resolves each page through
  /// the snapshot's epoch map under the store's reader lock.
  class PageSource : public PageProvider {
   public:
    explicit PageSource(const State* state) : state_(state) {}
    Result<std::vector<uint8_t>> ReadPage(uint32_t page_id) const override;

   private:
    const State* state_;
  };

  explicit StoreSnapshot(std::unique_ptr<State> state)
      : state_(std::move(state)), source_(state_.get()) {}

  std::unique_ptr<State> state_;  // null only in a moved-from handle
  PageSource source_;
};

/// A navigation cursor over one StoreSnapshot, decoding moves from record
/// bytes: in-record links for intra-record steps, proxy entries for
/// partition-crossing child/sibling edges and the aggregate back-pointer
/// for the parent of interval members. The in-memory document is never
/// consulted (a released store navigates identically), and the snapshot
/// isolates the cursor from concurrent writers: every record it decodes
/// is the pinned version's image.
///
/// Every move is charged to an AccessStats according to whether it stays
/// within the current record. With a buffer pool, the target page of each
/// record crossing is pinned under the snapshot's (page, epoch) frame key
/// (the previous pin is dropped first, so at most one frame is pinned
/// between moves); node data is then decoded from the pinned frame.
/// Without a pool, record bytes are copied out of the snapshot into a
/// cursor-owned scratch buffer. Proxies name the target node; its current
/// record/page are resolved through the snapshot's tables, since splits
/// elsewhere may have moved it after this record was last encoded.
class Navigator {
 public:
  /// Walks `snapshot`, which must outlive the navigator (as must `stats`
  /// and `buffer`/`provider`, if given). If `buffer` is non-null, every
  /// move that lands on a different record pins the target page in the
  /// pool (a miss = one page read through `provider`, defaulting to the
  /// snapshot's as-of provider); pass a null buffer for the paper's
  /// warm-buffer setting.
  Navigator(const StoreSnapshot* snapshot, AccessStats* stats,
            LruBufferPool* buffer = nullptr,
            const PageProvider* provider = nullptr);

  /// Convenience: opens (and owns) a snapshot of `store` at its current
  /// version. Navigation is then isolated from later store mutations --
  /// re-create the navigator to observe them.
  Navigator(const NatixStore* store, AccessStats* stats,
            LruBufferPool* buffer = nullptr,
            const PageProvider* provider = nullptr);

  ~Navigator();
  Navigator(const Navigator&) = delete;
  Navigator& operator=(const Navigator&) = delete;

  /// The snapshot this cursor reads (owned or borrowed).
  const StoreSnapshot* snapshot() const { return snap_; }

  NodeId current() const { return current_; }

  /// Moves to the root (charged like any other move).
  void JumpToRoot() { Move(snap_->RootNode()); }

  /// Random-access jump (e.g. when an evaluator restarts from a context
  /// node).
  void JumpTo(NodeId v) { Move(v); }

  /// Axis moves; return false (and stay put) when no such node exists.
  bool ToFirstChild();
  bool ToNextSibling();
  bool ToPrevSibling();
  bool ToParent();

  /// Kind/label of the current node, decoded from its record (no stats
  /// effect; the record is already materialized for the cursor).
  NodeKind CurrentKind();
  int32_t CurrentLabelId();

 private:
  void Move(NodeId to);
  /// Decodes the current node's record (copied from the snapshot, no
  /// pool activity) if no view is cached.
  void EnsureView();
  void SetView(const uint8_t* data, size_t size);
  void UnpinCurrent();
  /// Resolves a topology link of the current node to a NodeId:
  /// kInvalidNode for kEdgeNone, the proxy target for kEdgeRemote, the
  /// in-record node otherwise.
  NodeId LinkTarget(int32_t link, RecordEdge edge);

  /// Set by the convenience constructor; snap_ points here then.
  std::optional<StoreSnapshot> owned_;
  const StoreSnapshot* snap_;
  AccessStats* stats_;
  LruBufferPool* buffer_;
  const PageProvider* provider_;
  NodeId current_;
  RecordView view_;
  bool view_valid_ = false;
  uint32_t idx_ = 0;
  /// Page whose frame the view decodes from, 0xFFFFFFFF when the view
  /// reads scratch_ (note: valid jumbo page ids have the high bit set
  /// but never equal the sentinel). pinned_epoch_ completes the frame
  /// key.
  uint32_t pinned_page_ = 0xFFFFFFFFu;
  uint64_t pinned_epoch_ = 0;
  /// Record bytes copied out of the snapshot for the pool-less path
  /// (the store's live image may be re-encoded under the cursor; the
  /// copy is stable).
  std::vector<uint8_t> scratch_;
};

}  // namespace natix

#endif  // NATIX_STORAGE_STORE_H_
