#ifndef NATIX_STORAGE_STORE_H_
#define NATIX_STORAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/file_backend.h"
#include "storage/record.h"
#include "storage/record_manager.h"
#include "storage/wal.h"
#include "tree/partitioning.h"
#include "updates/incremental.h"
#include "xml/importer.h"

namespace natix {

/// Store construction options.
struct StoreOptions {
  /// Disk page size in bytes; several records share one page.
  size_t page_size = 8192;
  /// Record manager allocation lookback (see RecordManager).
  int allocation_lookback = 8;
  /// Storage slot size (must match the weight model used at import).
  uint32_t slot_size = 8;
  /// Metadata slots charged to nodes inserted through InsertBefore();
  /// must match the weight model used at import.
  uint32_t metadata_slots = 1;
};

/// Counters for navigation operations against a NatixStore.
struct AccessStats {
  /// Moves between nodes of the same record (cheap pointer chasing).
  uint64_t intra_moves = 0;
  /// Moves that cross a record boundary (record lookup + pin).
  uint64_t record_crossings = 0;
  /// Crossings that additionally land on a different page (buffer-pool
  /// hash lookup + latch; no I/O, the paper's experiment runs with a warm
  /// buffer larger than the document).
  uint64_t page_switches = 0;

  uint64_t TotalMoves() const { return intra_moves + record_crossings; }
  void Reset() { *this = AccessStats(); }
};

/// Converts access counters into simulated navigation time. Defaults are
/// calibrated to commodity-hardware order-of-magnitude costs: intra-record
/// navigation is pointer arithmetic within a pinned record; a record
/// crossing pays a record-id -> (page, slot) lookup, page pin and record
/// header decode.
struct NavigationCostModel {
  double intra_ns = 25.0;
  double crossing_ns = 700.0;
  double page_switch_ns = 300.0;  // surcharge on top of crossing_ns

  double CostSeconds(const AccessStats& stats) const {
    return (stats.intra_moves * intra_ns +
            stats.record_crossings * crossing_ns +
            stats.page_switches * page_switch_ns) *
           1e-9;
  }
};

/// Counters for the durability layer of a NatixStore, the basis of the
/// write-amplification report in bench_updates. All counters cover the
/// current process's WAL session (they restart at zero after recovery).
struct WalStats {
  /// Total log bytes appended (entry headers included).
  uint64_t wal_bytes = 0;
  /// Log bytes spent on logical insert-op entries.
  uint64_t op_bytes = 0;
  /// Log bytes spent on checkpoints (metadata + page images).
  uint64_t checkpoint_bytes = 0;
  /// Logical operations logged.
  uint64_t op_entries = 0;
  /// Checkpoints completed.
  uint64_t checkpoints = 0;
  /// Record payload bytes written by the record manager in the same
  /// window -- the denominator of the amplification ratio.
  uint64_t record_bytes = 0;

  /// Log bytes per record byte for the op stream alone (checkpoints are
  /// reported separately: their cost is amortized by the checkpoint
  /// cadence, not by each operation).
  double OpAmplification() const {
    return record_bytes == 0
               ? 0.0
               : static_cast<double>(op_bytes) /
                     static_cast<double>(record_bytes);
  }
};

/// Counters for mutations applied to a NatixStore.
struct UpdateStats {
  /// InsertBefore() calls that succeeded.
  uint64_t inserts = 0;
  /// Partition splits performed by the incremental partitioner.
  uint64_t splits = 0;
  /// Pre-existing records rewritten because their partition changed.
  uint64_t records_rewritten = 0;
  /// Records created for partitions born from splits.
  uint64_t records_created = 0;
  /// Record rewrites that had to move the record to a different page.
  uint64_t relocations = 0;
  /// Page payload compactions triggered by rewrites.
  uint64_t compactions = 0;
};

/// The mini-Natix store: a document loaded under a given tree sibling
/// partitioning. Each partition becomes one physical record (serialized
/// with RecordBuilder); records are packed onto slotted pages by the
/// RecordManager; oversized text is stored in overflow pages.
///
/// The store *owns* its document and may mutate it: InsertBefore() adds a
/// node, drives the IncrementalPartitioner, and rewrites exactly the
/// records named in its PartitionDelta -- the storage-level realization of
/// the Kanne/Moerkotte record split. RecordIds are logical, so records
/// relocated by growth keep their identity; navigation and queries stay
/// correct mid-update-stream.
class NatixStore {
 public:
  /// Builds the store, taking ownership of `doc`. `partitioning` must be
  /// feasible for `limit` on `doc.tree` (checked; the limit is in slots
  /// of the weight model used at import).
  static Result<NatixStore> Build(ImportedDocument doc,
                                  const Partitioning& partitioning,
                                  TotalWeight limit,
                                  const StoreOptions& options = {});

  /// Inserts a node as a child of `parent` immediately before `before`
  /// (kInvalidNode appends), with the given label/kind/content. The
  /// node's weight follows the store's weight model; content too large
  /// for the partition limit is externalized to overflow storage. Only
  /// the records of partitions in the resulting PartitionDelta are
  /// rewritten, so per-insert cost is proportional to the partitions
  /// touched, not to the document.
  Result<NodeId> InsertBefore(NodeId parent, NodeId before,
                              std::string_view label = {},
                              NodeKind kind = NodeKind::kElement,
                              std::string_view content = {});

  const Tree& tree() const { return doc_->tree; }
  const ImportedDocument& document() const { return *doc_; }

  /// Deep copy of the (possibly mutated) document, for reference
  /// rebuilds and equivalence checks.
  ImportedDocument SnapshotDocument() const { return doc_->Clone(); }

  /// Partition index (== record index) holding a node.
  uint32_t PartitionOf(NodeId v) const { return partition_of_[v]; }
  /// Physical record id of a partition.
  RecordId RecordOf(uint32_t partition) const { return records_[partition]; }
  /// Physical record id holding a node.
  RecordId RecordOfNode(NodeId v) const {
    return records_[partition_of_[v]];
  }
  /// Page currently holding a node's record (changes when the record
  /// relocates; jumbo records report their synthetic page id).
  uint32_t PageOfNode(NodeId v) const {
    return manager_.PageOf(records_[partition_of_[v]]);
  }

  /// Raw bytes of a partition's record.
  Result<std::pair<const uint8_t*, size_t>> RecordBytes(
      uint32_t partition) const {
    return manager_.Get(records_[partition]);
  }

  /// The incremental partitioner, once the store has been mutated
  /// (nullptr for a store that has only been bulk-loaded).
  const IncrementalPartitioner* partitioner() const { return inc_.get(); }

  /// Attaches a write-ahead log to the store. The backend must be empty;
  /// an initial checkpoint of the full store is written immediately, so
  /// from this point the log alone reconstructs the store. Every later
  /// InsertBefore() appends one logical op entry before returning.
  Status EnableDurability(std::unique_ptr<FileBackend> backend);

  /// Writes a checkpoint: the store's metadata plus an image of every
  /// page dirtied since the previous checkpoint. Recovery replays only
  /// the op tail after the last complete checkpoint, so checkpoint
  /// cadence bounds recovery work.
  Status Checkpoint();

  /// Rebuilds a store from the log left behind by a crashed (or cleanly
  /// stopped) durable store: restores the last complete checkpoint,
  /// replays the op tail, truncates any torn bytes off the log, and
  /// re-attaches the backend for continued durable operation.
  static Result<NatixStore> Recover(std::unique_ptr<FileBackend> backend);

  bool durable() const { return wal_ != nullptr; }
  /// True after a WAL or checkpoint write failed: the in-memory store may
  /// be ahead of the log, so further mutations are refused.
  bool poisoned() const { return poisoned_; }
  WalStats wal_stats() const;

  size_t record_count() const { return records_.size(); }
  size_t page_count() const { return manager_.page_count(); }
  size_t overflow_page_count() const { return overflow_pages_; }
  /// Total occupied disk space: data pages + overflow pages.
  uint64_t TotalDiskBytes() const {
    return manager_.disk_bytes() + overflow_pages_ * page_size_;
  }
  double PageUtilization() const { return manager_.Utilization(); }
  uint64_t payload_bytes() const { return manager_.payload_bytes(); }
  TotalWeight limit() const { return limit_; }
  UpdateStats update_stats() const;

 private:
  NatixStore() = default;

  /// Creates the incremental partitioner from the build-time partitioning
  /// on first mutation (interval id i == build partition i).
  Status EnsureMutable();

  /// Serializes everything a checkpoint must capture except page
  /// contents: document, partitioner state, record-manager metadata,
  /// store tables and counters.
  void SerializeCheckpointMeta(std::vector<uint8_t>* out) const;

  /// Rebuilds a store from checkpoint metadata (pages still zeroed).
  static Result<NatixStore> FromCheckpointMeta(const uint8_t* data,
                                               size_t size);

  /// Appends one logical op entry for a completed InsertBefore().
  Status LogInsert(NodeId parent_logged, NodeId before, NodeKind kind,
                   std::string_view label, std::string_view content);

  void RecomputeOverflowPages() {
    const uint64_t payload = page_size_ - 16;
    overflow_pages_ =
        static_cast<size_t>((overflow_bytes_ + payload - 1) / payload);
  }

  /// Owned on the heap so the partitioner's Tree* survives store moves.
  std::unique_ptr<ImportedDocument> doc_;
  RecordManager manager_;
  StoreOptions options_;
  TotalWeight limit_ = 0;
  Partitioning partitioning_;  // build-time snapshot; seeds inc_
  std::unique_ptr<IncrementalPartitioner> inc_;
  std::vector<uint32_t> partition_of_;  // node -> partition index
  std::vector<RecordId> records_;       // partition index -> record
  std::vector<uint64_t> record_overflow_;  // externalized bytes per record
  uint64_t overflow_bytes_ = 0;
  size_t overflow_pages_ = 0;
  size_t page_size_ = 8192;
  uint64_t inserts_ = 0;
  uint64_t records_rewritten_ = 0;
  uint64_t records_created_ = 0;

  // Durability (all null/zero for a plain in-memory store).
  std::unique_ptr<FileBackend> backend_;
  std::unique_ptr<WalWriter> wal_;
  bool poisoned_ = false;
  /// Set while recovery replays the op tail, so the replayed
  /// InsertBefore() calls do not log themselves again.
  bool replaying_ = false;
  uint64_t wal_op_bytes_ = 0;
  uint64_t wal_checkpoint_bytes_ = 0;
  uint64_t wal_op_entries_ = 0;
  uint64_t wal_checkpoints_ = 0;
  /// record_bytes_written() when the WAL attached; wal_stats() reports
  /// record bytes relative to this, so the ratio covers the same window
  /// as the log counters.
  uint64_t wal_record_base_ = 0;
};

/// A navigation cursor over a NatixStore. Every move is charged to an
/// AccessStats according to whether it stays within the current record.
/// This is the storage-level equivalent of following intra-record pointers
/// vs. dereferencing a proxy to another record.
class Navigator {
 public:
  /// `store` and `stats` must outlive the navigator. If `buffer` is
  /// non-null, every move that lands on a different record touches the
  /// target page in the pool, modelling cold-cache behaviour (a miss =
  /// one page read); pass nullptr for the paper's warm-buffer setting.
  Navigator(const NatixStore* store, AccessStats* stats,
            LruBufferPool* buffer = nullptr)
      : store_(store),
        stats_(stats),
        buffer_(buffer),
        current_(store->tree().root()) {}

  NodeId current() const { return current_; }

  /// Moves to the root (charged like any other move).
  void JumpToRoot() { Move(store_->tree().root()); }

  /// Random-access jump (e.g. when an evaluator restarts from a context
  /// node).
  void JumpTo(NodeId v) { Move(v); }

  /// Axis moves; return false (and stay put) when no such node exists.
  bool ToFirstChild();
  bool ToNextSibling();
  bool ToPrevSibling();
  bool ToParent();

 private:
  void Move(NodeId to);

  const NatixStore* store_;
  AccessStats* stats_;
  LruBufferPool* buffer_;
  NodeId current_;
};

}  // namespace natix

#endif  // NATIX_STORAGE_STORE_H_
