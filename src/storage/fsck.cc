#include "storage/fsck.h"

#include <optional>
#include <utility>

#include "common/bytes.h"
#include "storage/page.h"
#include "storage/page_integrity.h"
#include "storage/record.h"
#include "storage/record_manager.h"
#include "storage/wal.h"

namespace natix {

uint64_t FsckReport::damage_count() const {
  return log_structure_errors + record_errors + directory_errors +
         topology_errors + proxy_errors + aggregate_errors +
         partition_errors + cell_checksum_failures + cell_torn +
         cell_content_mismatches;
}

void FsckReport::AddProblem(std::string line) {
  if (problems.size() < kMaxProblems) {
    problems.push_back(std::move(line));
  } else if (problems.size() == kMaxProblems) {
    problems.push_back("... further problems elided (counters stay exact)");
  }
}

std::string FsckReport::Summary() const {
  auto u = [](uint64_t v) { return std::to_string(v); };
  std::string out;
  out += "log: " + u(entries_scanned) + " entries, last LSN " + u(last_lsn) +
         ", " + u(complete_checkpoints) + " complete checkpoint(s)";
  if (complete_checkpoints > 0) {
    out += " (last at LSN " + u(last_checkpoint_begin_lsn) + ".." +
           u(last_checkpoint_end_lsn) + ")";
  }
  out += "\n";
  if (incomplete_checkpoint_tail) {
    out += "log: ends inside an unfinished checkpoint (ignored by "
           "recovery)\n";
  }
  if (tail_torn) {
    out += "log: torn tail of " + u(torn_bytes) + " byte(s)\n";
  }
  if (log_structure_errors > 0) {
    out += "log: " + u(log_structure_errors) + " structure error(s)\n";
  }
  out += store_recovered
             ? "store: restored; checked " + u(records_checked) +
                   " records, " + u(nodes_checked) + " nodes, " +
                   u(pages_checked) + " pages, " + u(proxies_checked) +
                   " proxies\n"
             : "store: NOT restored\n";
  const uint64_t store_errors = record_errors + directory_errors +
                                topology_errors + proxy_errors +
                                aggregate_errors + partition_errors;
  if (store_errors > 0) {
    out += "store: " + u(record_errors) + " record, " +
           u(directory_errors) + " directory, " + u(topology_errors) +
           " topology, " + u(proxy_errors) + " proxy, " +
           u(aggregate_errors) + " aggregate, " + u(partition_errors) +
           " partition error(s)\n";
  }
  if (stale_placement_hints > 0) {
    out += "store: " + u(stale_placement_hints) +
           " stale placement hint(s) (tolerated by navigation)\n";
  }
  if (page_file_checked) {
    out += "pagefile: " + u(page_cells_checked) + " cell(s) checked, " +
           u(cell_checksum_failures) + " checksum failure(s), " +
           u(cell_torn) + " torn, " + u(cell_content_mismatches) +
           " content mismatch(es)\n";
  }
  for (const std::string& p : problems) out += "  ! " + p + "\n";
  out += clean() ? "fsck: clean\n"
                 : "fsck: " + u(damage_count()) + " problem(s) found\n";
  return out;
}

Result<FsckReport> FsckLog(FileBackend* wal,
                           std::unique_ptr<NatixStore>* store_out) {
  FsckReport report;
  NATIX_ASSIGN_OR_RETURN(WalReader reader, WalReader::Open(wal));
  struct Pending {
    uint64_t begin_lsn = 0;
    uint64_t images = 0;
  };
  std::optional<Pending> pending;
  while (true) {
    NATIX_ASSIGN_OR_RETURN(std::optional<WalEntry> entry, reader.Next());
    if (!entry.has_value()) break;
    ++report.entries_scanned;
    report.last_lsn = entry->lsn;
    switch (entry->type) {
      case WalEntryType::kInsertOp:
      case WalEntryType::kDeleteOp:
      case WalEntryType::kMoveOp:
      case WalEntryType::kRenameOp:
        if (pending.has_value()) {
          ++report.log_structure_errors;
          report.AddProblem("op entry inside a checkpoint at LSN " +
                            std::to_string(entry->lsn));
        }
        break;
      case WalEntryType::kCheckpointBegin:
        if (pending.has_value()) {
          ++report.log_structure_errors;
          report.AddProblem("nested checkpoint at LSN " +
                            std::to_string(entry->lsn));
        }
        pending = Pending{entry->lsn, 0};
        break;
      case WalEntryType::kPageImage:
        if (!pending.has_value()) {
          ++report.log_structure_errors;
          report.AddProblem("page image outside a checkpoint at LSN " +
                            std::to_string(entry->lsn));
        } else {
          ++pending->images;
        }
        break;
      case WalEntryType::kCheckpointEnd: {
        if (!pending.has_value()) {
          ++report.log_structure_errors;
          report.AddProblem("checkpoint end without a begin at LSN " +
                            std::to_string(entry->lsn));
          break;
        }
        ByteReader r(entry->payload.data(), entry->payload.size());
        const auto begin_lsn = r.U64();
        const auto image_count = r.U64();
        if (!begin_lsn.ok() || !image_count.ok() ||
            *begin_lsn != pending->begin_lsn ||
            *image_count != pending->images) {
          ++report.log_structure_errors;
          report.AddProblem("checkpoint end at LSN " +
                            std::to_string(entry->lsn) +
                            " does not match its begin");
        } else if (entry->lsn != pending->begin_lsn + pending->images + 1) {
          // LSNs are assigned sequentially by the single writer, so a
          // checkpoint's entries must occupy a contiguous LSN range.
          ++report.log_structure_errors;
          report.AddProblem("checkpoint LSN chain broken at LSN " +
                            std::to_string(entry->lsn));
        } else {
          ++report.complete_checkpoints;
          report.last_checkpoint_begin_lsn = pending->begin_lsn;
          report.last_checkpoint_end_lsn = entry->lsn;
        }
        pending.reset();
        break;
      }
    }
  }
  report.incomplete_checkpoint_tail = pending.has_value();
  report.tail_torn = reader.tail_is_torn();
  NATIX_ASSIGN_OR_RETURN(const uint64_t log_size, wal->Size());
  report.torn_bytes =
      reader.valid_end() < log_size ? log_size - reader.valid_end() : 0;
  if (report.complete_checkpoints == 0) {
    report.AddProblem("log contains no complete checkpoint");
    ++report.log_structure_errors;
    return report;
  }
  Result<NatixStore> store = NatixStore::RecoverForAudit(wal);
  if (!store.ok()) {
    ++report.log_structure_errors;
    report.AddProblem("store restore failed: " +
                      store.status().ToString());
    return report;
  }
  report.store_recovered = true;
  NATIX_RETURN_NOT_OK(FsckStore(*store, &report));
  if (store_out != nullptr) {
    *store_out = std::make_unique<NatixStore>(std::move(store).value());
  }
  return report;
}

Status FsckStore(const NatixStore& store, FsckReport* report) {
  const size_t n = store.node_count();
  const uint32_t parts = static_cast<uint32_t>(store.record_count());
  // Parse every live record once; the views borrow the manager's bytes,
  // which are stable for the duration of this (const) audit.
  std::vector<std::optional<RecordView>> views(parts);
  for (uint32_t p = 0; p < parts; ++p) {
    if (!store.RecordOf(p).valid()) continue;  // dead partition
    const auto bytes = store.RecordBytes(p);
    if (!bytes.ok()) {
      ++report->record_errors;
      report->AddProblem("record of partition " + std::to_string(p) +
                         " does not resolve: " +
                         bytes.status().ToString());
      continue;
    }
    const auto view =
        RecordView::Parse(bytes->first, bytes->second, store.slot_size());
    if (!view.ok()) {
      ++report->record_errors;
      report->AddProblem("record of partition " + std::to_string(p) +
                         " does not parse: " + view.status().ToString());
      continue;
    }
    views[p] = *view;
    ++report->records_checked;
  }
  // Forward direction: every live node's table entry resolves into a
  // record slot holding exactly that node. Tombstoned nodes (deleted
  // subtrees) legitimately map to no partition and are skipped.
  for (NodeId v = 0; v < n; ++v) {
    if (!store.IsLiveNode(v)) continue;
    ++report->nodes_checked;
    const uint32_t p = store.PartitionOf(v);
    if (p >= parts || !views[p].has_value()) {
      ++report->topology_errors;
      report->AddProblem("node " + std::to_string(v) +
                         " maps to unusable partition " + std::to_string(p));
      continue;
    }
    const RecordView& view = *views[p];
    const uint32_t slot = store.SlotOfNode(v);
    if (slot >= view.node_count() || view.node_id(slot) != v) {
      ++report->topology_errors;
      report->AddProblem("node " + std::to_string(v) + " slot " +
                         std::to_string(slot) +
                         " disagrees with record of partition " +
                         std::to_string(p));
    }
  }
  // Reverse direction per record: contents point back at the tables,
  // node coverage is exact, the partition weight invariant holds, and
  // every proxy / the aggregate name plausible targets.
  const uint32_t root_partition = n > 0 ? store.PartitionOf(0) : 0;
  uint64_t covered = 0;
  for (uint32_t p = 0; p < parts; ++p) {
    if (!views[p].has_value()) continue;
    const RecordView& view = *views[p];
    covered += view.node_count();
    uint64_t weight = 0;
    for (uint32_t i = 0; i < view.node_count(); ++i) {
      weight += view.weight(i);
      // Compressed v3 cells: Parse only bounds-checks them; the audit
      // runs the full decode so a corrupt payload is surfaced here, not
      // on some later navigation.
      const Status content = view.VerifyContent(i);
      if (!content.ok()) {
        ++report->record_errors;
        report->AddProblem("record of partition " + std::to_string(p) +
                           " slot " + std::to_string(i) +
                           " content corrupt: " + content.ToString());
      }
      const NodeId u = view.node_id(i);
      if (u >= n || store.PartitionOf(u) != p || store.SlotOfNode(u) != i) {
        ++report->topology_errors;
        report->AddProblem("record of partition " + std::to_string(p) +
                           " slot " + std::to_string(i) +
                           " holds node " + std::to_string(u) +
                           " the tables do not map back");
      }
    }
    if (weight > store.limit()) {
      ++report->partition_errors;
      report->AddProblem("partition " + std::to_string(p) + " weighs " +
                         std::to_string(weight) + " > limit " +
                         std::to_string(store.limit()));
    }
    for (uint32_t j = 0; j < view.proxy_count(); ++j) {
      ++report->proxies_checked;
      const RecordProxy proxy = view.proxy(j);
      if (proxy.from_index >= view.node_count() || proxy.target_node >= n) {
        ++report->proxy_errors;
        report->AddProblem("partition " + std::to_string(p) + " proxy " +
                           std::to_string(j) +
                           " names an impossible node");
        continue;
      }
      const uint32_t tp = store.PartitionOf(proxy.target_node);
      if (tp >= parts || !store.RecordOf(tp).valid()) {
        ++report->proxy_errors;
        report->AddProblem("partition " + std::to_string(p) + " proxy " +
                           std::to_string(j) + " targets node " +
                           std::to_string(proxy.target_node) +
                           " of unusable partition " + std::to_string(tp));
        continue;
      }
      if (proxy.target_partition != tp ||
          proxy.target_record.value != store.RecordOf(tp).value ||
          proxy.target_slot != store.SlotOfNode(proxy.target_node)) {
        ++report->stale_placement_hints;
      }
    }
    const RecordAggregate agg = view.aggregate();
    const bool holds_root = n > 0 && p == root_partition;
    if ((agg.parent_node == kInvalidNode) != holds_root) {
      ++report->aggregate_errors;
      report->AddProblem("partition " + std::to_string(p) +
                         " aggregate parent is " +
                         (holds_root ? "set on the root record"
                                     : "missing on a non-root record"));
    } else if (agg.parent_node != kInvalidNode) {
      if (agg.parent_node >= n) {
        ++report->aggregate_errors;
        report->AddProblem("partition " + std::to_string(p) +
                           " aggregate names an impossible parent");
      } else {
        const uint32_t pp = store.PartitionOf(agg.parent_node);
        if (agg.parent_partition != pp ||
            agg.parent_record.value != store.RecordOf(pp).value ||
            agg.parent_slot != store.SlotOfNode(agg.parent_node)) {
          ++report->stale_placement_hints;
        }
      }
    }
  }
  const uint64_t live = store.live_node_count();
  if (covered != live) {
    ++report->topology_errors;
    report->AddProblem("records cover " + std::to_string(covered) +
                       " node slots for " + std::to_string(live) +
                       " live nodes");
  }
  // Page directory: every regular page image must validate, and every
  // record's directory entry must agree with the record header it
  // addresses.
  for (uint32_t pid = 0;
       pid < static_cast<uint32_t>(store.regular_page_count()); ++pid) {
    const auto image = store.page_provider()->ReadPage(pid);
    if (!image.ok()) {
      ++report->directory_errors;
      report->AddProblem("page " + std::to_string(pid) +
                         " image unreadable: " + image.status().ToString());
      continue;
    }
    const auto page = Page::FromImage(*image);
    if (!page.ok()) {
      ++report->directory_errors;
      report->AddProblem("page " + std::to_string(pid) +
                         " directory invalid: " + page.status().ToString());
      continue;
    }
    ++report->pages_checked;
  }
  for (uint32_t p = 0; p < parts; ++p) {
    if (!views[p].has_value()) continue;
    const auto addr = store.AddressOfRecord(store.RecordOf(p));
    if (!addr.ok()) {
      ++report->directory_errors;
      continue;
    }
    if ((addr->first & RecordManager::kJumboPageBit) != 0) continue;
    const auto image = store.page_provider()->ReadPage(addr->first);
    if (!image.ok()) continue;  // already counted above
    const auto entry =
        Page::EntryInImage(image->data(), image->size(), addr->second);
    const auto bytes = store.RecordBytes(p);
    if (!entry.ok() || !bytes.ok() || entry->second != bytes->second) {
      ++report->directory_errors;
      report->AddProblem("partition " + std::to_string(p) +
                         " directory entry (page " +
                         std::to_string(addr->first) + ", slot " +
                         std::to_string(addr->second) +
                         ") disagrees with its record header");
    }
  }
  return Status::OK();
}

Status FsckPageFile(FileBackend* page_file, const NatixStore& store,
                    FsckReport* report) {
  report->page_file_checked = true;
  const size_t cell_size = store.page_size() + kPageCellOverhead;
  NATIX_ASSIGN_OR_RETURN(const uint64_t file_size, page_file->Size());
  const uint64_t expected =
      static_cast<uint64_t>(store.regular_page_count()) * cell_size;
  if (file_size != expected) {
    report->AddProblem("page file holds " + std::to_string(file_size) +
                       " bytes, expected " + std::to_string(expected));
  }
  std::vector<uint8_t> cell(cell_size);
  for (uint32_t pid = 0;
       pid < static_cast<uint32_t>(store.regular_page_count()); ++pid) {
    const Status read = page_file->ReadAt(
        static_cast<uint64_t>(pid) * cell_size, cell.data(), cell.size());
    if (!read.ok()) {
      ++report->cell_checksum_failures;
      report->AddProblem("page " + std::to_string(pid) +
                         " cell unreadable: " + read.ToString());
      continue;
    }
    ++report->page_cells_checked;
    PageDamage damage = PageDamage::kNone;
    const Result<std::vector<uint8_t>> payload =
        OpenPageCell(cell.data(), cell.size(), nullptr, &damage);
    if (!payload.ok()) {
      if (damage == PageDamage::kTorn) {
        ++report->cell_torn;
      } else {
        ++report->cell_checksum_failures;
      }
      report->AddProblem("page " + std::to_string(pid) + ": " +
                         payload.status().message());
      continue;
    }
    const auto truth = store.page_provider()->ReadPage(pid);
    if (truth.ok() && *payload != *truth) {
      ++report->cell_content_mismatches;
      report->AddProblem("page " + std::to_string(pid) +
                         " cell verifies but differs from the "
                         "authoritative image (stale generation)");
    }
  }
  return Status::OK();
}

}  // namespace natix
