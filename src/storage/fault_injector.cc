#include "storage/fault_injector.h"

#include <vector>

namespace natix {

Result<uint64_t> FaultInjectingBackend::Size() {
  if (fired_) return Dead();
  return inner_->Size();
}

Status FaultInjectingBackend::Append(const void* data, size_t size) {
  if (fired_) return Dead();
  if (appends_++ != fault_at_) return inner_->Append(data, size);
  fired_ = true;
  if (mode_ == FaultMode::kFailStop || size == 0) return Dead();
  // Land a strict prefix: at least 0, at most size-1 bytes survive.
  const size_t keep = static_cast<size_t>(rng_.NextBounded(size));
  if (mode_ == FaultMode::kShortWrite) {
    if (keep > 0) {
      // The inner write's own failure (it shouldn't fail -- the inner
      // backend is healthy) would still read as a crash; ignore it.
      (void)inner_->Append(data, keep);
    }
    return Dead();
  }
  // Torn write: the prefix is real, the rest of the entry's bytes are
  // garbage (stale sector content). Recovery must detect this via CRC.
  std::vector<uint8_t> torn(static_cast<const uint8_t*>(data),
                            static_cast<const uint8_t*>(data) + size);
  for (size_t i = keep; i < torn.size(); ++i) {
    torn[i] = static_cast<uint8_t>(rng_.Next());
  }
  (void)inner_->Append(torn.data(), torn.size());
  return Dead();
}

Status FaultInjectingBackend::ReadAt(uint64_t offset, void* out, size_t size) {
  if (fired_) return Dead();
  const uint64_t idx = reads_++;
  if (read_mode_ == ReadFaultMode::kNone || idx < read_fault_at_ ||
      idx >= read_fault_at_ + read_fault_count_) {
    return inner_->ReadAt(offset, out, size);
  }
  ++read_faults_fired_;
  switch (read_mode_) {
    case ReadFaultMode::kBitFlip: {
      NATIX_RETURN_NOT_OK(inner_->ReadAt(offset, out, size));
      if (size > 0) {
        const uint64_t bit = rng_.NextBounded(size * 8);
        static_cast<uint8_t*>(out)[bit / 8] ^=
            static_cast<uint8_t>(1u << (bit % 8));
      }
      return Status::OK();
    }
    case ReadFaultMode::kShortRead: {
      // A strict prefix lands in `out`; the tail keeps whatever garbage
      // the caller's buffer held. The error is transient: retrying the
      // same read succeeds once the fault window has passed.
      const size_t keep =
          size == 0 ? 0 : static_cast<size_t>(rng_.NextBounded(size));
      if (keep > 0) NATIX_RETURN_NOT_OK(inner_->ReadAt(offset, out, keep));
      return Status::Unavailable("injected short read");
    }
    case ReadFaultMode::kTransientEio:
      return Status::Unavailable("injected transient EIO");
    case ReadFaultMode::kNone:
      break;
  }
  return inner_->ReadAt(offset, out, size);
}

Status FaultInjectingBackend::WriteAt(uint64_t offset, const void* data,
                                      size_t size) {
  if (fired_) return Dead();
  return inner_->WriteAt(offset, data, size);
}

Status FaultInjectingBackend::Truncate(uint64_t size) {
  if (fired_) return Dead();
  return inner_->Truncate(size);
}

Status FaultInjectingBackend::Sync() {
  if (fired_) return Dead();
  return inner_->Sync();
}

}  // namespace natix
