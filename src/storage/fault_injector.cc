#include "storage/fault_injector.h"

#include <vector>

namespace natix {

Result<uint64_t> FaultInjectingBackend::Size() {
  if (fired_) return Dead();
  return inner_->Size();
}

Status FaultInjectingBackend::Append(const void* data, size_t size) {
  if (fired_) return Dead();
  if (appends_++ != fault_at_) return inner_->Append(data, size);
  fired_ = true;
  if (mode_ == FaultMode::kFailStop || size == 0) return Dead();
  // Land a strict prefix: at least 0, at most size-1 bytes survive.
  const size_t keep = static_cast<size_t>(rng_.NextBounded(size));
  if (mode_ == FaultMode::kShortWrite) {
    if (keep > 0) {
      // The inner write's own failure (it shouldn't fail -- the inner
      // backend is healthy) would still read as a crash; ignore it.
      (void)inner_->Append(data, keep);
    }
    return Dead();
  }
  // Torn write: the prefix is real, the rest of the entry's bytes are
  // garbage (stale sector content). Recovery must detect this via CRC.
  std::vector<uint8_t> torn(static_cast<const uint8_t*>(data),
                            static_cast<const uint8_t*>(data) + size);
  for (size_t i = keep; i < torn.size(); ++i) {
    torn[i] = static_cast<uint8_t>(rng_.Next());
  }
  (void)inner_->Append(torn.data(), torn.size());
  return Dead();
}

Status FaultInjectingBackend::ReadAt(uint64_t offset, void* out, size_t size) {
  if (fired_) return Dead();
  return inner_->ReadAt(offset, out, size);
}

Status FaultInjectingBackend::Truncate(uint64_t size) {
  if (fired_) return Dead();
  return inner_->Truncate(size);
}

Status FaultInjectingBackend::Sync() {
  if (fired_) return Dead();
  return inner_->Sync();
}

}  // namespace natix
