#include "storage/fault_injector.h"

#include <algorithm>
#include <vector>

namespace natix {

Result<uint64_t> FaultInjectingBackend::Size() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fired_) return Dead();
  return inner_->Size();
}

Status FaultInjectingBackend::FireWriteFault(FaultMode mode, const void* data,
                                             size_t size) {
  fired_ = true;
  if (mode == FaultMode::kFailStop || size == 0) return Dead();
  // Land a strict prefix: at least 0, at most size-1 bytes survive.
  const size_t keep = static_cast<size_t>(rng_.NextBounded(size));
  if (mode == FaultMode::kShortWrite) {
    if (keep > 0) {
      // The inner write's own failure (it shouldn't fail -- the inner
      // backend is healthy) would still read as a crash; ignore it.
      (void)inner_->Append(data, keep);
    }
    return Dead();
  }
  // Torn write: the prefix is real, the rest of the entry's bytes are
  // garbage (stale sector content). Recovery must detect this via CRC.
  std::vector<uint8_t> torn(static_cast<const uint8_t*>(data),
                            static_cast<const uint8_t*>(data) + size);
  for (size_t i = keep; i < torn.size(); ++i) {
    torn[i] = static_cast<uint8_t>(rng_.Next());
  }
  (void)inner_->Append(torn.data(), torn.size());
  return Dead();
}

Status FaultInjectingBackend::Append(const void* data, size_t size) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fired_) return Dead();
  const uint64_t idx = appends_++;
  if (idx == fault_at_) return FireWriteFault(mode_, data, size);
  for (const WriteFault& f : write_faults_) {
    if (idx == f.at) return FireWriteFault(f.mode, data, size);
  }
  for (const TransientWindow& w : transient_faults_) {
    if (idx < w.at || idx >= w.at + w.count) continue;
    // Transient: a strict prefix may land, the call fails Unavailable,
    // the backend lives on. A correct writer truncates back and retries.
    ++append_faults_fired_;
    const size_t keep =
        size == 0 ? 0 : static_cast<size_t>(rng_.NextBounded(size));
    if (keep > 0) (void)inner_->Append(data, keep);
    return Status::Unavailable("injected transient append failure");
  }
  if (capacity_ != kNoLimit) {
    NATIX_ASSIGN_OR_RETURN(const uint64_t cur, inner_->Size());
    if (cur + size > capacity_) {
      return Status::ResourceExhausted(
          "injected disk full: append would grow the backend past " +
          std::to_string(capacity_) + " bytes");
    }
  }
  return inner_->Append(data, size);
}

Status FaultInjectingBackend::ReadAt(uint64_t offset, void* out, size_t size) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fired_) return Dead();
  const uint64_t idx = reads_++;
  ReadFaultMode mode = ReadFaultMode::kNone;
  for (const ReadFault& f : read_faults_) {
    if (f.mode != ReadFaultMode::kNone && idx >= f.at &&
        idx < f.at + f.count) {
      mode = f.mode;  // first armed window containing idx wins
      break;
    }
  }
  if (mode == ReadFaultMode::kNone) {
    return inner_->ReadAt(offset, out, size);
  }
  ++read_faults_fired_;
  switch (mode) {
    case ReadFaultMode::kBitFlip: {
      NATIX_RETURN_NOT_OK(inner_->ReadAt(offset, out, size));
      if (size > 0) {
        const uint64_t bit = rng_.NextBounded(size * 8);
        static_cast<uint8_t*>(out)[bit / 8] ^=
            static_cast<uint8_t>(1u << (bit % 8));
      }
      return Status::OK();
    }
    case ReadFaultMode::kShortRead: {
      // A strict prefix lands in `out`; the tail keeps whatever garbage
      // the caller's buffer held. The error is transient: retrying the
      // same read succeeds once the fault window has passed.
      const size_t keep =
          size == 0 ? 0 : static_cast<size_t>(rng_.NextBounded(size));
      if (keep > 0) NATIX_RETURN_NOT_OK(inner_->ReadAt(offset, out, keep));
      return Status::Unavailable("injected short read");
    }
    case ReadFaultMode::kTransientEio:
      return Status::Unavailable("injected transient EIO");
    case ReadFaultMode::kNone:
      break;
  }
  return inner_->ReadAt(offset, out, size);
}

Status FaultInjectingBackend::WriteAt(uint64_t offset, const void* data,
                                      size_t size) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fired_) return Dead();
  if (capacity_ != kNoLimit && offset + size > capacity_) {
    // Growing past the limit is refused; rewrites below it still land
    // (a full disk happily overwrites allocated blocks).
    return Status::ResourceExhausted(
        "injected disk full: write would grow the backend past " +
        std::to_string(capacity_) + " bytes");
  }
  if (size > 0 && offset < durable_size_) SnapshotDurablePrefix();
  return inner_->WriteAt(offset, data, size);
}

Status FaultInjectingBackend::Truncate(uint64_t size) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fired_) return Dead();
  if (size < durable_size_) SnapshotDurablePrefix();
  return inner_->Truncate(size);
}

Status FaultInjectingBackend::Sync() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fired_) return Dead();
  const uint64_t idx = syncs_++;
  for (const uint64_t at : sync_faults_) {
    if (idx == at) {
      fired_ = true;
      return Status::Internal(
          "injected fault: fsync failed; backend is dead");
    }
  }
  NATIX_RETURN_NOT_OK(inner_->Sync());
  // Everything on the platter now: the durable image is the live content.
  durable_snapshot_.reset();
  if (const Result<uint64_t> s = inner_->Size(); s.ok()) {
    durable_size_ = *s;
  }
  return Status::OK();
}

void FaultInjectingBackend::SnapshotDurablePrefix() {
  // Only the FIRST damaging mutation since the last Sync snapshots: at
  // that moment inner[0, durable_size_) still equals the durable bytes.
  if (durable_snapshot_.has_value()) return;
  std::vector<uint8_t> snap(static_cast<size_t>(durable_size_));
  if (durable_size_ > 0 &&
      !inner_->ReadAt(0, snap.data(), snap.size()).ok()) {
    return;  // best effort; the healthy inner backends never fail here
  }
  durable_snapshot_ = std::move(snap);
}

Result<std::vector<uint8_t>> FaultInjectingBackend::DurableImage() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (durable_snapshot_.has_value()) return *durable_snapshot_;
  NATIX_ASSIGN_OR_RETURN(const uint64_t size, inner_->Size());
  const uint64_t n = std::min(size, durable_size_);
  std::vector<uint8_t> out(static_cast<size_t>(n));
  if (n > 0) NATIX_RETURN_NOT_OK(inner_->ReadAt(0, out.data(), out.size()));
  return out;
}

}  // namespace natix
