#include "storage/store.h"

#include <algorithm>

namespace natix {

Result<NatixStore> NatixStore::Build(const ImportedDocument& doc,
                                     const Partitioning& partitioning,
                                     TotalWeight limit,
                                     const StoreOptions& options) {
  const Tree& tree = doc.tree;
  NATIX_ASSIGN_OR_RETURN(const PartitionAnalysis analysis,
                         Analyze(tree, partitioning, limit));
  if (!analysis.feasible) {
    return Status::InvalidArgument(
        "cannot build a store from an infeasible partitioning (max "
        "partition weight " +
        std::to_string(analysis.max_weight) + " > " + std::to_string(limit) +
        ")");
  }

  NatixStore store(&doc, RecordManager(options.page_size,
                                       options.allocation_lookback));
  store.page_size_ = options.page_size;
  store.partition_of_ = analysis.partition_of;
  store.records_.assign(partitioning.size(), RecordId{});

  // Group nodes by partition; preorder iteration makes each group sorted
  // in document order, so parents precede their in-record children.
  std::vector<std::vector<NodeId>> members(partitioning.size());
  for (const NodeId v : tree.PreorderNodes()) {
    members[store.partition_of_[v]].push_back(v);
  }

  // Insert records in document order of their first node (bulk-load
  // locality: partitions created close together land on nearby pages).
  const std::vector<uint32_t> pre_rank = tree.PreorderRanks();
  std::vector<uint32_t> order(partitioning.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return pre_rank[members[a].front()] < pre_rank[members[b].front()];
  });

  // position_in_record[v]: index of v within its partition's member list.
  std::vector<int32_t> position_in_record(tree.size(), -1);
  for (const std::vector<NodeId>& mem : members) {
    for (size_t i = 0; i < mem.size(); ++i) {
      position_in_record[mem[i]] = static_cast<int32_t>(i);
    }
  }

  uint64_t overflow_bytes = 0;
  for (const uint32_t part : order) {
    RecordBuilder builder(options.slot_size);
    for (const NodeId v : members[part]) {
      const NodeId parent = tree.Parent(v);
      const int32_t parent_pos =
          (parent == kInvalidNode || store.partition_of_[parent] != part)
              ? -1
              : position_in_record[parent];
      // A node is externalized iff its weight is smaller than what its
      // content would need inline (the weight model's overflow stub).
      const uint64_t inline_slots =
          1 + (static_cast<uint64_t>(doc.content_bytes[v]) +
               options.slot_size - 1) /
                  options.slot_size;
      const bool overflow =
          doc.content_bytes[v] > 0 && inline_slots > tree.WeightOf(v);
      if (overflow) overflow_bytes += doc.content_bytes[v];
      builder.AddNode(v, parent_pos, static_cast<uint8_t>(tree.KindOf(v)),
                      tree.LabelIdOf(v), doc.ContentOf(v), overflow);
      // One proxy entry per *run* of cut-away children sharing a target
      // record: adjacent siblings in the same foreign partition are
      // reachable through a single proxy (this is what sibling-interval
      // storage buys at the format level).
      uint32_t prev_target = part;
      for (NodeId c = tree.FirstChild(v); c != kInvalidNode;
           c = tree.NextSibling(c)) {
        const uint32_t target = store.partition_of_[c];
        if (target != part && target != prev_target) {
          builder.AddProxy(target);
        }
        prev_target = target;
      }
    }
    NATIX_ASSIGN_OR_RETURN(const RecordId rid,
                           store.manager_.Insert(builder.Build()));
    store.records_[part] = rid;
  }

  const uint64_t overflow_payload = options.page_size - 16;
  store.overflow_pages_ = static_cast<size_t>(
      (overflow_bytes + overflow_payload - 1) / overflow_payload);
  return store;
}

bool Navigator::ToFirstChild() {
  const NodeId c = store_->tree().FirstChild(current_);
  if (c == kInvalidNode) return false;
  Move(c);
  return true;
}

bool Navigator::ToNextSibling() {
  const NodeId s = store_->tree().NextSibling(current_);
  if (s == kInvalidNode) return false;
  Move(s);
  return true;
}

bool Navigator::ToPrevSibling() {
  const NodeId s = store_->tree().PrevSibling(current_);
  if (s == kInvalidNode) return false;
  Move(s);
  return true;
}

bool Navigator::ToParent() {
  const NodeId p = store_->tree().Parent(current_);
  if (p == kInvalidNode) return false;
  Move(p);
  return true;
}

void Navigator::Move(NodeId to) {
  const RecordId from_rec = store_->RecordOfNode(current_);
  const RecordId to_rec = store_->RecordOfNode(to);
  if (from_rec == to_rec) {
    ++stats_->intra_moves;
  } else {
    ++stats_->record_crossings;
    if (from_rec.page != to_rec.page) ++stats_->page_switches;
    if (buffer_ != nullptr) buffer_->Access(to_rec.page);
  }
  current_ = to;
}

}  // namespace natix
