#include "storage/store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <optional>
#include <utility>

#include "common/bytes.h"
#include "common/retry.h"
#include "storage/page.h"
#include "xml/weight_model.h"

namespace natix {

const char* StoreHealthName(StoreHealth health) {
  switch (health) {
    case StoreHealth::kHealthy:
      return "healthy";
    case StoreHealth::kDegraded:
      return "degraded";
    case StoreHealth::kFailed:
      return "failed";
  }
  return "unknown";
}

Result<std::vector<uint8_t>> FilePageSource::ReadPage(uint32_t page_id) const {
  if ((page_id & RecordManager::kJumboPageBit) != 0) {
    if (fallback_ == nullptr) {
      return Status::InvalidArgument(
          "jumbo page " + std::to_string(page_id) +
          " is not in the flat page file and no fallback is attached");
    }
    return fallback_->ReadPage(page_id);
  }
  const size_t cell_size = page_size_ + kPageCellOverhead;
  const uint64_t offset = static_cast<uint64_t>(page_id) * cell_size;
  std::vector<uint8_t> cell(cell_size);
  // Device-level retries (EINTR, partial transfers, flaky EIO) already
  // happen inside PosixFileBackend; this layer absorbs transients any
  // backend may surface.
  NATIX_RETURN_NOT_OK(RetryTransient(
      kIoRetryPolicy,
      [&] { return file_->ReadAt(offset, cell.data(), cell.size()); },
      [&](int) {
        ++stats_.transient_retries;
        return Status::OK();
      }));
  PageDamage damage = PageDamage::kNone;
  Result<std::vector<uint8_t>> payload =
      OpenPageCell(cell.data(), cell.size(), nullptr, &damage);
  if (!payload.ok()) {
    if (damage == PageDamage::kTorn) {
      ++stats_.torn_pages;
    } else {
      ++stats_.checksum_failures;
    }
    return Status::ParseError("page " + std::to_string(page_id) + ": " +
                              payload.status().message());
  }
  if (payload->size() != page_size_) {
    ++stats_.checksum_failures;
    return Status::ParseError("page " + std::to_string(page_id) +
                              ": cell payload size " +
                              std::to_string(payload->size()) +
                              " does not match page size " +
                              std::to_string(page_size_));
  }
  ++stats_.pages_read;
  return payload;
}

bool NatixStore::NodeOverflows(NodeId v) const {
  // A node is externalized iff its weight is smaller than what its
  // content would need inline (the weight model's overflow stub).
  const uint32_t bytes = doc_->content_bytes[v];
  if (bytes == 0) return false;
  const uint64_t inline_slots =
      1 + (static_cast<uint64_t>(bytes) + options_.slot_size - 1) /
              options_.slot_size;
  return inline_slots > doc_->tree.WeightOf(v);
}

void NatixStore::AssignSlots(const std::vector<NodeId>& members) {
  for (size_t i = 0; i < members.size(); ++i) {
    slot_in_record_[members[i]] = static_cast<uint32_t>(i);
  }
}

void NatixStore::SyncLabels() {
  const Tree& tree = doc_->tree;
  for (size_t id = labels_.size(); id < tree.LabelCount(); ++id) {
    labels_.emplace_back(tree.LabelName(static_cast<int32_t>(id)));
  }
}

Result<std::vector<uint8_t>> NatixStore::EncodePartition(
    uint32_t part, const std::vector<NodeId>& members,
    uint64_t* overflow_bytes) const {
  const Tree& tree = doc_->tree;
  RecordBuilder builder(options_.slot_size, options_.record_format);
  *overflow_bytes = 0;
  // Local link of a neighbour: its in-record index when it shares the
  // partition, kEdgeRemote plus a proxy naming the target node and its
  // current home otherwise.
  const auto link = [&](uint32_t i, NodeId target,
                        RecordEdge edge) -> int32_t {
    if (target == kInvalidNode) return kEdgeNone;
    const uint32_t target_part = partition_of_[target];
    if (target_part == part) {
      return static_cast<int32_t>(slot_in_record_[target]);
    }
    RecordProxy proxy;
    proxy.from_index = i;
    proxy.edge = edge;
    proxy.target_node = target;
    proxy.target_partition = target_part;
    proxy.target_record = records_[target_part];
    proxy.target_slot = slot_in_record_[target];
    builder.AddProxy(proxy);
    return kEdgeRemote;
  };
  for (size_t i = 0; i < members.size(); ++i) {
    const NodeId v = members[i];
    const uint32_t idx = static_cast<uint32_t>(i);
    RecordNodeSpec spec;
    spec.node = v;
    spec.weight = tree.WeightOf(v);
    spec.kind = static_cast<uint8_t>(tree.KindOf(v));
    spec.label = tree.LabelIdOf(v);
    // Parent links never go remote: a node whose parent lives outside
    // the record is an interval member, and all interval members share
    // the one parent named by the record's aggregate.
    const NodeId parent = tree.Parent(v);
    spec.parent = (parent != kInvalidNode && partition_of_[parent] == part)
                      ? static_cast<int32_t>(slot_in_record_[parent])
                      : kEdgeNone;
    spec.first_child = link(idx, tree.FirstChild(v), RecordEdge::kFirstChild);
    spec.next_sibling =
        link(idx, tree.NextSibling(v), RecordEdge::kNextSibling);
    spec.prev_sibling =
        link(idx, tree.PrevSibling(v), RecordEdge::kPrevSibling);
    spec.overflow = NodeOverflows(v);
    spec.content = doc_->ContentOf(v);
    if (spec.overflow) *overflow_bytes += doc_->content_bytes[v];
    builder.AddNode(spec);
  }
  // members is in document order, so front() is the interval head; its
  // parent (shared by every interval member) is the aggregate target.
  const NodeId head_parent = tree.Parent(members.front());
  if (head_parent != kInvalidNode) {
    RecordAggregate agg;
    agg.parent_node = head_parent;
    agg.parent_partition = partition_of_[head_parent];
    agg.parent_record = records_[agg.parent_partition];
    agg.parent_slot = slot_in_record_[head_parent];
    builder.SetAggregate(agg);
  }
  return builder.Build();
}

NatixStore::NatixStore() : cc_(std::make_unique<ConcurrencyCore>()) {}

NatixStore::~NatixStore() {
  // Join the flusher thread while the backend it writes to is still
  // alive; member destruction order alone cannot guarantee that for
  // every teardown path.
  wal_.reset();
}

uint64_t NatixStore::version() const {
  std::shared_lock<std::shared_mutex> lock(cc_->mu);
  return version_;
}

size_t NatixStore::open_snapshot_count() const {
  std::lock_guard<std::mutex> reg(cc_->reg_mu);
  size_t n = 0;
  for (const auto& [version, count] : cc_->open_snapshots) n += count;
  return n;
}

void NatixStore::ArmCow() {
  bool open = false;
  uint64_t max_open = 0;
  {
    std::lock_guard<std::mutex> reg(cc_->reg_mu);
    open = !cc_->open_snapshots.empty();
    if (open) max_open = cc_->open_snapshots.rbegin()->first;
  }
  // Every mutator publishes at version_ + 1 (ApplyDelta, Rename and
  // RefreshPlacementHints each bump exactly once on success).
  manager_.BeginWriteEpoch(version_ + 1, open, max_open);
}

StoreSnapshot NatixStore::OpenSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(cc_->mu);
  auto state = std::make_unique<StoreSnapshot::State>();
  state->store = this;
  state->version = version_;
  state->slot_size = options_.slot_size;
  state->page_size = page_size_;
  state->partition_of = partition_of_;
  state->records = records_;
  state->slot_in_record = slot_in_record_;
  state->labels = labels_;
  state->addresses = manager_.ExportAddresses();
  state->page_epochs = manager_.ExportPageEpochs();
  state->source_bytes =
      doc_ != nullptr ? doc_->source_bytes : released_source_bytes_;
  if (doc_ != nullptr) {
    state->preorder_ranks = doc_->tree.PreorderRanks();
    for (NodeId v = 0; v < partition_of_.size(); ++v) {
      if (partition_of_[v] != kNoPartition && NodeOverflows(v)) {
        state->overflow_content.emplace(v, std::string(doc_->ContentOf(v)));
      }
    }
  } else {
    state->overflow_content = overflow_content_;
  }
  {
    std::lock_guard<std::mutex> reg(cc_->reg_mu);
    ++cc_->open_snapshots[state->version];
  }
  return StoreSnapshot(std::move(state));
}

void NatixStore::CloseSnapshot(uint64_t version) const {
  // Exclusive: reclamation must not race snapshot page reads, and the
  // min-open computation must be atomic with respect to writers arming
  // copy-on-write.
  std::unique_lock<std::shared_mutex> lock(cc_->mu);
  uint64_t min_open = UINT64_MAX;
  {
    std::lock_guard<std::mutex> reg(cc_->reg_mu);
    const auto it = cc_->open_snapshots.find(version);
    if (it != cc_->open_snapshots.end() && --it->second == 0) {
      cc_->open_snapshots.erase(it);
    }
    if (!cc_->open_snapshots.empty()) {
      min_open = cc_->open_snapshots.begin()->first;
    }
  }
  // Retired pre-images are a cache of dead versions; dropping them does
  // not change observable store state, hence the cast from this const
  // close path.
  const_cast<RecordManager&>(manager_).ReclaimRetired(min_open);
}

Result<NatixStore> NatixStore::Build(ImportedDocument doc,
                                     const Partitioning& partitioning,
                                     TotalWeight limit,
                                     const StoreOptions& options) {
  if (options.page_size < Page::kMinPageSize + 16) {
    return Status::InvalidArgument("page size " +
                                   std::to_string(options.page_size) +
                                   " too small for the slotted page layout");
  }
  NATIX_ASSIGN_OR_RETURN(const PartitionAnalysis analysis,
                         Analyze(doc.tree, partitioning, limit));
  if (!analysis.feasible) {
    return Status::InvalidArgument(
        "cannot build a store from an infeasible partitioning (max "
        "partition weight " +
        std::to_string(analysis.max_weight) + " > " + std::to_string(limit) +
        ")");
  }

  NatixStore store;
  store.doc_ = std::make_unique<ImportedDocument>(std::move(doc));
  store.manager_ =
      RecordManager(options.page_size, options.allocation_lookback);
  store.options_ = options;
  store.page_size_ = options.page_size;
  store.limit_ = limit;
  store.partitioning_ = partitioning;
  store.partition_of_ = analysis.partition_of;
  store.records_.assign(partitioning.size(), RecordId{});
  store.record_overflow_.assign(partitioning.size(), 0);
  const Tree& tree = store.doc_->tree;
  store.slot_in_record_.assign(tree.size(), 0);
  store.SyncLabels();

  // Group nodes by partition; preorder iteration makes each group sorted
  // in document order, so parents precede their in-record children.
  std::vector<std::vector<NodeId>> members(partitioning.size());
  for (const NodeId v : tree.PreorderNodes()) {
    members[store.partition_of_[v]].push_back(v);
  }
  for (const std::vector<NodeId>& m : members) store.AssignSlots(m);

  // Insert records in document order of their first node (bulk-load
  // locality: partitions created close together land on nearby pages).
  const std::vector<uint32_t> pre_rank = tree.PreorderRanks();
  std::vector<uint32_t> order(partitioning.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return pre_rank[members[a].front()] < pre_rank[members[b].front()];
  });

  // Two-phase encode: reserve every record id first, so proxies and
  // aggregates can name the records of neighbouring partitions, then
  // serialize and place each record under its reserved id.
  for (const uint32_t part : order) {
    store.records_[part] = store.manager_.Allocate();
  }
  for (const uint32_t part : order) {
    uint64_t overflow = 0;
    NATIX_ASSIGN_OR_RETURN(
        const std::vector<uint8_t> bytes,
        store.EncodePartition(part, members[part], &overflow));
    NATIX_RETURN_NOT_OK(
        store.manager_.InsertWithId(store.records_[part], bytes));
    store.record_overflow_[part] = overflow;
    store.overflow_bytes_ += overflow;
  }
  store.RecomputeOverflowPages();
  return store;
}

Status NatixStore::ReleaseDocument() {
  std::unique_lock<std::shared_mutex> lock(cc_->mu);
  return ReleaseDocumentLocked();
}

Status NatixStore::ReleaseDocumentLocked() {
  if (doc_ == nullptr) return Status::OK();
  // Park the partitioner's interval table: inc_ holds a pointer into the
  // document's tree and cannot outlive it.
  if (inc_ != nullptr) {
    saved_inc_ = inc_->SaveState();
    has_saved_inc_ = true;
    inc_.reset();
  }
  // Records store only the length of externalized content; the bytes
  // themselves move to the side map until rematerialization.
  overflow_content_.clear();
  const size_t n = doc_->tree.size();
  for (NodeId v = 0; v < n; ++v) {
    if (NodeOverflows(v)) {
      overflow_content_.emplace(v, std::string(doc_->ContentOf(v)));
    }
  }
  released_source_bytes_ = doc_->source_bytes;
  doc_.reset();
  return Status::OK();
}

Status NatixStore::EnsureDocument() {
  std::unique_lock<std::shared_mutex> lock(cc_->mu);
  return EnsureDocumentLocked();
}

Status NatixStore::EnsureDocumentLocked() {
  if (doc_ != nullptr) return Status::OK();
  NATIX_ASSIGN_OR_RETURN(ImportedDocument doc, BuildDocumentFromRecords());
  doc_ = std::make_unique<ImportedDocument>(std::move(doc));
  // The document is the overflow source again; drop the side copies.
  overflow_content_.clear();
  return Status::OK();
}

Result<ImportedDocument> NatixStore::MaterializeDocument() const {
  std::shared_lock<std::shared_mutex> lock(cc_->mu);
  return MaterializeDocumentLocked();
}

Result<ImportedDocument> NatixStore::MaterializeDocumentLocked() const {
  return BuildDocumentFromRecords();
}

Result<ImportedDocument> NatixStore::SnapshotDocument() const {
  std::shared_lock<std::shared_mutex> lock(cc_->mu);
  return SnapshotDocumentLocked();
}

Result<ImportedDocument> NatixStore::SnapshotDocumentLocked() const {
  if (doc_ != nullptr) return doc_->Clone();
  return BuildDocumentFromRecords();
}

namespace {

/// Resolves a record topology link to the NodeId it denotes.
Result<NodeId> ResolveLink(const RecordView& view, uint32_t i, int32_t link,
                           RecordEdge edge) {
  if (link == kEdgeNone) return kInvalidNode;
  if (link == kEdgeRemote) {
    const std::optional<RecordProxy> proxy = view.FindProxy(i, edge);
    if (!proxy.has_value()) {
      return Status::ParseError("record marks an edge remote but carries no "
                                "proxy for node index " +
                                std::to_string(i));
    }
    return proxy->target_node;
  }
  if (link < 0 || static_cast<uint32_t>(link) >= view.node_count()) {
    return Status::ParseError("record link index out of range");
  }
  return view.node_id(static_cast<uint32_t>(link));
}

/// The store tables BuildDocumentFromTables() decodes against -- either
/// the live store's members or a snapshot's pinned copies.
struct RecordTables {
  const std::vector<uint32_t>& partition_of;
  const std::vector<RecordId>& records;
  const std::vector<uint32_t>& slot_in_record;
  const std::vector<std::string>& labels;
  uint32_t slot_size;
  uint64_t source_bytes;
};

/// Shared document reconstruction: decodes every record into a fresh
/// document. `record_bytes(part)` returns the record bytes of a
/// partition (the returned pointer must stay valid until the next call);
/// `overflow_content(v)` returns the externalized content of an overflow
/// node.
Result<ImportedDocument> BuildDocumentFromTables(
    const RecordTables& t,
    const std::function<Result<std::pair<const uint8_t*, size_t>>(uint32_t)>&
        record_bytes,
    const std::function<Result<std::string_view>(NodeId)>& overflow_content) {
  const size_t n = t.partition_of.size();
  if (n == 0) {
    return Status::FailedPrecondition("store holds no nodes");
  }
  Tree::Links links;
  links.parent.assign(n, kInvalidNode);
  links.first_child.assign(n, kInvalidNode);
  links.next_sibling.assign(n, kInvalidNode);
  links.prev_sibling.assign(n, kInvalidNode);
  links.weight.assign(n, 1);
  links.label.assign(n, -1);
  links.kind.assign(n, NodeKind::kElement);
  links.labels = t.labels;
  // Tombstoned nodes (partition_of == kNoPartition) are covered by no
  // record; they keep their arena slot as a dead, link-free node with
  // the same normalized fields Tree::RemoveSubtree leaves behind.
  size_t dead = 0;
  for (size_t v = 0; v < n; ++v) {
    if (t.partition_of[v] == kNoPartition) ++dead;
  }
  if (dead != 0) {
    links.alive.assign(n, 1);
    for (size_t v = 0; v < n; ++v) {
      if (t.partition_of[v] == kNoPartition) links.alive[v] = 0;
    }
  }

  ImportedDocument out;
  out.content_bytes.assign(n, 0);
  out.content_offset.assign(n, 0);
  std::vector<uint8_t> seen(n, 0);
  for (size_t part = 0; part < t.records.size(); ++part) {
    if (!t.records[part].valid()) continue;
    NATIX_ASSIGN_OR_RETURN(const auto bytes,
                           record_bytes(static_cast<uint32_t>(part)));
    NATIX_ASSIGN_OR_RETURN(
        const RecordView view,
        RecordView::Parse(bytes.first, bytes.second, t.slot_size));
    const RecordAggregate agg = view.aggregate();
    for (uint32_t i = 0; i < view.node_count(); ++i) {
      const NodeId v = view.node_id(i);
      if (v >= n) {
        return Status::ParseError("record of partition " +
                                  std::to_string(part) +
                                  " names out-of-range node " +
                                  std::to_string(v));
      }
      if (seen[v]) {
        return Status::ParseError("node " + std::to_string(v) +
                                  " appears in more than one record");
      }
      seen[v] = 1;
      // Cross-check the store's navigation tables against the record
      // bytes: they must agree, or navigation would read wrong slots.
      if (t.partition_of[v] != part || t.slot_in_record[v] != i) {
        return Status::ParseError(
            "store tables disagree with record contents for node " +
            std::to_string(v));
      }
      const uint64_t weight = view.weight(i);
      if (weight == 0 || weight > 0xFFFFFFFFull) {
        return Status::ParseError("record weight out of range for node " +
                                  std::to_string(v));
      }
      links.weight[v] = static_cast<Weight>(weight);
      const uint8_t kind = view.kind(i);
      if (kind > static_cast<uint8_t>(NodeKind::kProcessingInstruction)) {
        return Status::ParseError("record node kind corrupt for node " +
                                  std::to_string(v));
      }
      links.kind[v] = static_cast<NodeKind>(kind);
      const int32_t label = view.label(i);
      if (label < -1 ||
          (label >= 0 && static_cast<size_t>(label) >= t.labels.size())) {
        return Status::ParseError("record label id out of range for node " +
                                  std::to_string(v));
      }
      links.label[v] = label;
      const int32_t plink = view.parent(i);
      if (plink == kEdgeNone) {
        // Interval member: the parent is the aggregate target
        // (kInvalidNode in the record holding the document root).
        links.parent[v] = agg.parent_node;
      } else if (plink == kEdgeRemote) {
        return Status::ParseError("record parent link marked remote");
      } else if (static_cast<uint32_t>(plink) >= view.node_count()) {
        return Status::ParseError("record parent index out of range");
      } else {
        links.parent[v] = view.node_id(static_cast<uint32_t>(plink));
      }
      NATIX_ASSIGN_OR_RETURN(
          links.first_child[v],
          ResolveLink(view, i, view.first_child(i), RecordEdge::kFirstChild));
      NATIX_ASSIGN_OR_RETURN(links.next_sibling[v],
                             ResolveLink(view, i, view.next_sibling(i),
                                         RecordEdge::kNextSibling));
      NATIX_ASSIGN_OR_RETURN(links.prev_sibling[v],
                             ResolveLink(view, i, view.prev_sibling(i),
                                         RecordEdge::kPrevSibling));
      std::string_view content;
      if (view.overflow(i)) {
        // The record holds only the externalized length; the bytes live
        // outside the record and come back through the callback.
        const uint64_t len = view.overflow_bytes(i);
        NATIX_ASSIGN_OR_RETURN(content, overflow_content(v));
        if (content.size() != len) {
          return Status::ParseError(
              "overflow content length mismatch for node " +
              std::to_string(v));
        }
        ++out.overflow_nodes;
        out.overflow_bytes += len;
      } else {
        // A corrupt compressed cell would read back as empty; fail the
        // materialization instead of silently dropping the text.
        NATIX_RETURN_NOT_OK(view.VerifyContent(i));
        content = view.content(i);
      }
      out.content_offset[v] = out.content_pool.size();
      out.content_bytes[v] = static_cast<uint32_t>(content.size());
      out.content_pool.append(content);
      out.content_total_bytes += content.size();
    }
  }
  for (size_t v = 0; v < n; ++v) {
    // Covered tombstones are already rejected by the table cross-check
    // above (kNoPartition never equals a record's partition index).
    if (!seen[v] && t.partition_of[v] != kNoPartition) {
      return Status::ParseError("node " + std::to_string(v) +
                                " is not covered by any record");
    }
  }
  NATIX_ASSIGN_OR_RETURN(out.tree, Tree::FromParts(std::move(links)));
  // source_node is import provenance; a rematerialized document has none.
  out.source_bytes = t.source_bytes;
  return out;
}

/// Shared compaction core: renumbers the live nodes of `old` in preorder
/// and rebuilds a dense document. `slot_size` drives the overflow
/// recomputation; `old_to_new` (optional) receives the id translation.
Result<ImportedDocument> CompactDocumentImpl(const ImportedDocument& old,
                                             uint32_t slot_size,
                                             std::vector<NodeId>* old_to_new) {
  const Tree& tree = old.tree;
  std::vector<NodeId> map(tree.size(), kInvalidNode);
  const std::vector<NodeId> order = tree.PreorderNodes();  // live only
  for (size_t i = 0; i < order.size(); ++i) {
    map[order[i]] = static_cast<NodeId>(i);
  }
  const auto remap = [&](NodeId u) {
    return u == kInvalidNode ? kInvalidNode : map[u];
  };
  const size_t m = order.size();
  Tree::Links links;
  links.parent.resize(m);
  links.first_child.resize(m);
  links.next_sibling.resize(m);
  links.prev_sibling.resize(m);
  links.weight.resize(m);
  links.label.resize(m);
  links.kind.resize(m);
  links.labels.reserve(tree.LabelCount());
  for (size_t id = 0; id < tree.LabelCount(); ++id) {
    links.labels.emplace_back(tree.LabelName(static_cast<int32_t>(id)));
  }
  ImportedDocument out;
  out.content_bytes.assign(m, 0);
  out.content_offset.assign(m, 0);
  for (size_t i = 0; i < m; ++i) {
    const NodeId v = order[i];
    links.parent[i] = remap(tree.Parent(v));
    links.first_child[i] = remap(tree.FirstChild(v));
    links.next_sibling[i] = remap(tree.NextSibling(v));
    links.prev_sibling[i] = remap(tree.PrevSibling(v));
    links.weight[i] = tree.WeightOf(v);
    links.label[i] = tree.LabelIdOf(v);
    links.kind[i] = tree.KindOf(v);
    const std::string_view content = old.ContentOf(v);
    out.content_offset[i] = out.content_pool.size();
    out.content_bytes[i] = static_cast<uint32_t>(content.size());
    out.content_pool.append(content);
    out.content_total_bytes += content.size();
    if (!content.empty()) {
      const uint64_t inline_slots =
          1 + (content.size() + slot_size - 1) / slot_size;
      if (inline_slots > tree.WeightOf(v)) {
        ++out.overflow_nodes;
        out.overflow_bytes += content.size();
      }
    }
  }
  NATIX_ASSIGN_OR_RETURN(out.tree, Tree::FromParts(std::move(links)));
  out.source_bytes = old.source_bytes;
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return out;
}

}  // namespace

Result<ImportedDocument> NatixStore::BuildDocumentFromRecords() const {
  const RecordTables tables{partition_of_,       records_,
                            slot_in_record_,     labels_,
                            options_.slot_size,
                            doc_ != nullptr ? doc_->source_bytes
                                            : released_source_bytes_};
  return BuildDocumentFromTables(
      tables,
      [this](uint32_t part) { return manager_.Get(records_[part]); },
      [this](NodeId v) -> Result<std::string_view> {
        if (doc_ != nullptr) return doc_->ContentOf(v);
        const auto it = overflow_content_.find(v);
        if (it == overflow_content_.end()) {
          return Status::ParseError("overflow content of node " +
                                    std::to_string(v) + " is not available");
        }
        return std::string_view(it->second);
      });
}

Result<NodeKind> NatixStore::KindOfNode(NodeId v) const {
  if (v >= node_count()) {
    return Status::InvalidArgument("no such node: " + std::to_string(v));
  }
  NATIX_ASSIGN_OR_RETURN(const auto bytes, manager_.Get(RecordOfNode(v)));
  NATIX_ASSIGN_OR_RETURN(
      const RecordView view,
      RecordView::Parse(bytes.first, bytes.second, options_.slot_size));
  const uint32_t i = slot_in_record_[v];
  if (i >= view.node_count() || view.node_id(i) != v) {
    return Status::Internal("slot table does not match record contents");
  }
  return static_cast<NodeKind>(view.kind(i));
}

Result<int32_t> NatixStore::LabelIdOfNode(NodeId v) const {
  if (v >= node_count()) {
    return Status::InvalidArgument("no such node: " + std::to_string(v));
  }
  NATIX_ASSIGN_OR_RETURN(const auto bytes, manager_.Get(RecordOfNode(v)));
  NATIX_ASSIGN_OR_RETURN(
      const RecordView view,
      RecordView::Parse(bytes.first, bytes.second, options_.slot_size));
  const uint32_t i = slot_in_record_[v];
  if (i >= view.node_count() || view.node_id(i) != v) {
    return Status::Internal("slot table does not match record contents");
  }
  return view.label(i);
}

Status NatixStore::FlushPagesTo(FileBackend* file) const {
  std::shared_lock<std::shared_mutex> lock(cc_->mu);
  return FlushPagesToLocked(file);
}

Status NatixStore::FlushPagesToLocked(FileBackend* file) const {
  NATIX_RETURN_NOT_OK(file->Truncate(0));
  // Epoch stamp for this flush generation: nonzero, and different from
  // the previous flush of a mutated store, so an interrupted re-flush of
  // a cell reads as torn rather than rot.
  const uint32_t epoch = static_cast<uint32_t>(version_) + 1;
  for (uint32_t p = 0; p < manager_.regular_page_count(); ++p) {
    NATIX_ASSIGN_OR_RETURN(const std::vector<uint8_t> image,
                           manager_.PageImage(p));
    if (image.size() != page_size_) {
      return Status::Internal("page image size mismatch for page " +
                              std::to_string(p));
    }
    const std::vector<uint8_t> cell =
        SealPageCell(epoch, image.data(), image.size());
    NATIX_RETURN_NOT_OK(file->Append(cell.data(), cell.size()));
  }
  return file->Sync();
}

Status NatixStore::EnsureMutable() {
  if (inc_ != nullptr) return Status::OK();
  if (has_saved_inc_) {
    // Revive the partitioner parked by a release cycle; the build-time
    // snapshot would lose every split since then.
    NATIX_ASSIGN_OR_RETURN(
        IncrementalPartitioner inc,
        IncrementalPartitioner::Restore(&doc_->tree, limit_, saved_inc_));
    inc_ = std::make_unique<IncrementalPartitioner>(std::move(inc));
    saved_inc_ = {};
    has_saved_inc_ = false;
    return Status::OK();
  }
  NATIX_ASSIGN_OR_RETURN(
      IncrementalPartitioner inc,
      IncrementalPartitioner::Create(&doc_->tree, limit_, partitioning_));
  inc_ = std::make_unique<IncrementalPartitioner>(std::move(inc));
  return Status::OK();
}

Result<NodeId> NatixStore::InsertBefore(NodeId parent, NodeId before,
                                        std::string_view label, NodeKind kind,
                                        std::string_view content) {
  std::unique_lock<std::shared_mutex> lock(cc_->mu);
  ArmCow();
  return InsertBeforeLocked(parent, before, label, kind, content);
}

Result<NodeId> NatixStore::InsertBeforeLocked(NodeId parent, NodeId before,
                                              std::string_view label,
                                              NodeKind kind,
                                              std::string_view content) {
  NATIX_RETURN_NOT_OK(CheckWritable());
  NATIX_RETURN_NOT_OK(EnsureDocumentLocked());
  NATIX_RETURN_NOT_OK(EnsureMutable());
  // Weight per the store's model; cap at the partition limit so any
  // content stays insertable (beyond the cap it is externalized, exactly
  // like the import-time overflow stub).
  const uint32_t cap = static_cast<uint32_t>(
      std::min<TotalWeight>(limit_, 0xFFFFFFFFull));
  const WeightModel model{options_.slot_size, options_.metadata_slots, cap};
  const Weight weight = model.NodeWeight(content.size());

  NATIX_ASSIGN_OR_RETURN(const NodeId id,
                         inc_->InsertBefore(parent, before, weight, label,
                                            kind));
  // Extend the document arrays for the new node.
  doc_->content_bytes.push_back(static_cast<uint32_t>(content.size()));
  doc_->content_offset.push_back(doc_->content_pool.size());
  doc_->content_pool.append(content);
  if (doc_->source_node.size() + 1 == doc_->tree.size()) {
    doc_->source_node.push_back(XmlDocument::kNoNode);
  }
  doc_->content_total_bytes += content.size();
  if (model.Overflows(content.size())) {
    ++doc_->overflow_nodes;
    doc_->overflow_bytes += content.size();
  }

  // Membership-preserving neighbours: the parent (when the new node
  // became its first child) and the two adjacent siblings now have an
  // edge to `id`, but their partitions appear in the delta only if their
  // membership also changed.
  std::vector<NodeId> neighbours;
  if (doc_->tree.FirstChild(parent) == id) neighbours.push_back(parent);
  neighbours.push_back(doc_->tree.PrevSibling(id));
  neighbours.push_back(doc_->tree.NextSibling(id));
  NATIX_RETURN_NOT_OK(ApplyDelta(inc_->last_delta(), neighbours));
  ++inserts_;
  // Log after applying: the only crash points are backend writes, so an
  // op either reaches the log whole (replayable) or the tail is torn and
  // recovery stops before it -- as if the op never happened.
  if (wal_ != nullptr && !replaying_) {
    NATIX_RETURN_NOT_OK(LogInsert(parent, before, kind, label, content));
  }
  return id;
}

Status NatixStore::ApplyDelta(const PartitionDelta& delta,
                              const std::vector<NodeId>& neighbours) {
  // Retired partitions go first: their records are freed and their ids
  // forgotten before any re-encode runs, so a dirtied neighbour cannot
  // emit a proxy hint naming a freed record.
  for (const uint32_t part : delta.deleted) {
    if (records_[part].valid()) {
      NATIX_RETURN_NOT_OK(manager_.Free(records_[part]));
      records_[part] = RecordId{};
      overflow_bytes_ -= record_overflow_[part];
      record_overflow_[part] = 0;
    }
  }
  partition_of_.resize(doc_->tree.size(), 0);
  slot_in_record_.resize(doc_->tree.size(), 0);
  SyncLabels();
  if (records_.size() < inc_->interval_count()) {
    records_.resize(inc_->interval_count(), RecordId{});
    record_overflow_.resize(inc_->interval_count(), 0);
  }

  // Refresh membership and in-record slots for every touched partition
  // *before* serializing any of them: proxies point at the partitions,
  // records and slots of cut-away neighbours, which may themselves have
  // moved this operation.
  struct Group {
    uint32_t part;
    std::vector<NodeId> nodes;
    bool created = false;
  };
  std::vector<Group> groups;
  groups.reserve(delta.dirty.size() + delta.created.size());
  for (const uint32_t part : delta.dirty) {
    groups.push_back({part, inc_->PartitionNodes(part)});
  }
  for (const uint32_t part : delta.created) {
    groups.push_back({part, inc_->PartitionNodes(part)});
  }
  for (const Group& g : groups) {
    for (const NodeId v : g.nodes) partition_of_[v] = g.part;
    AssignSlots(g.nodes);
  }
  // `neighbours` are nodes with a changed crossing edge whose partitions
  // may not appear in the delta. Their records must be re-encoded anyway
  // -- a proxy's target_node is authoritative, so leaving the old one in
  // place would corrupt navigation, not just stale a placement hint.
  const auto add_neighbour = [&](NodeId v) {
    if (v == kInvalidNode) return;
    const uint32_t part = partition_of_[v];
    for (const Group& g : groups) {
      if (g.part == part) return;
    }
    groups.push_back({part, inc_->PartitionNodes(part)});
  };
  for (const NodeId v : neighbours) add_neighbour(v);
  // Reserve record ids for partitions born this operation before any
  // encode: a rewritten record's proxies may name them.
  for (Group& g : groups) {
    if (!records_[g.part].valid()) {
      records_[g.part] = manager_.Allocate();
      g.created = true;
    }
  }

  for (const Group& g : groups) {
    uint64_t overflow = 0;
    NATIX_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                           EncodePartition(g.part, g.nodes, &overflow));
    if (g.created) {
      NATIX_RETURN_NOT_OK(manager_.InsertWithId(records_[g.part], bytes));
      ++records_created_;
    } else {
      NATIX_RETURN_NOT_OK(manager_.Update(records_[g.part], bytes));
      ++records_rewritten_;
    }
    overflow_bytes_ = overflow_bytes_ - record_overflow_[g.part] + overflow;
    record_overflow_[g.part] = overflow;
  }
  RecomputeOverflowPages();
  ++version_;
  return Status::OK();
}

Result<std::vector<NodeId>> NatixStore::DeleteSubtree(NodeId v) {
  std::unique_lock<std::shared_mutex> lock(cc_->mu);
  ArmCow();
  return DeleteSubtreeLocked(v);
}

Result<std::vector<NodeId>> NatixStore::DeleteSubtreeLocked(NodeId v) {
  NATIX_RETURN_NOT_OK(CheckWritable());
  NATIX_RETURN_NOT_OK(EnsureDocumentLocked());
  NATIX_RETURN_NOT_OK(EnsureMutable());
  const Tree& tree = doc_->tree;
  if (v >= tree.size() || !tree.IsAlive(v)) {
    return Status::InvalidArgument("no such node: " + std::to_string(v));
  }
  if (v == RootNode()) {
    return Status::InvalidArgument("the document root cannot be deleted");
  }
  // Neighbours whose crossing edge to `v` disappears, captured before
  // the detach rewires them.
  std::vector<NodeId> neighbours;
  const NodeId parent = tree.Parent(v);
  if (parent != kInvalidNode && tree.FirstChild(parent) == v) {
    neighbours.push_back(parent);
  }
  neighbours.push_back(tree.PrevSibling(v));
  neighbours.push_back(tree.NextSibling(v));

  // Content bookkeeping before the tombstoning normalizes the subtree's
  // weights (NodeOverflows needs the original weight).
  const std::vector<NodeId> subtree = tree.SubtreeNodes(v);
  for (const NodeId r : subtree) {
    if (NodeOverflows(r)) {
      --doc_->overflow_nodes;
      doc_->overflow_bytes -= doc_->content_bytes[r];
    }
    doc_->content_total_bytes -= doc_->content_bytes[r];
    doc_->content_bytes[r] = 0;
    doc_->content_offset[r] = 0;
  }
  NATIX_RETURN_NOT_OK(inc_->DeleteSubtree(v).status());
  for (const NodeId r : subtree) {
    partition_of_[r] = kNoPartition;
    slot_in_record_[r] = 0;
  }
  NATIX_RETURN_NOT_OK(ApplyDelta(inc_->last_delta(), neighbours));
  ++deletes_;
  if (wal_ != nullptr && !replaying_) {
    NATIX_RETURN_NOT_OK(LogDelete(v));
  }
  return subtree;
}

Status NatixStore::MoveSubtree(NodeId v, NodeId parent, NodeId before) {
  std::unique_lock<std::shared_mutex> lock(cc_->mu);
  ArmCow();
  return MoveSubtreeLocked(v, parent, before);
}

Status NatixStore::MoveSubtreeLocked(NodeId v, NodeId parent, NodeId before) {
  NATIX_RETURN_NOT_OK(CheckWritable());
  NATIX_RETURN_NOT_OK(EnsureDocumentLocked());
  NATIX_RETURN_NOT_OK(EnsureMutable());
  const Tree& tree = doc_->tree;
  if (v >= tree.size() || !tree.IsAlive(v)) {
    return Status::InvalidArgument("no such node: " + std::to_string(v));
  }
  // Old neighbours lose their edge to `v`; captured before the splice.
  // The partitioner validates the rest (ancestry, destination liveness)
  // before mutating anything, so capturing early is safe.
  std::vector<NodeId> neighbours;
  const NodeId old_parent = tree.Parent(v);
  if (old_parent != kInvalidNode && tree.FirstChild(old_parent) == v) {
    neighbours.push_back(old_parent);
  }
  neighbours.push_back(tree.PrevSibling(v));
  neighbours.push_back(tree.NextSibling(v));
  NATIX_RETURN_NOT_OK(inc_->MoveSubtree(v, parent, before));
  // New neighbours gained an edge to `v`.
  if (tree.FirstChild(parent) == v) neighbours.push_back(parent);
  neighbours.push_back(tree.PrevSibling(v));
  neighbours.push_back(tree.NextSibling(v));
  NATIX_RETURN_NOT_OK(ApplyDelta(inc_->last_delta(), neighbours));
  ++moves_;
  if (wal_ != nullptr && !replaying_) {
    NATIX_RETURN_NOT_OK(LogMove(v, parent, before));
  }
  return Status::OK();
}

int32_t NatixStore::InternStoreLabel(std::string_view label) {
  if (label.empty()) return -1;
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) return static_cast<int32_t>(i);
  }
  labels_.emplace_back(label);
  return static_cast<int32_t>(labels_.size() - 1);
}

Status NatixStore::ReencodePartition(uint32_t part) {
  std::vector<NodeId> members;
  for (NodeId u = 0; u < partition_of_.size(); ++u) {
    if (partition_of_[u] == part) members.push_back(u);
  }
  // Members in document order == increasing in-record slot.
  std::sort(members.begin(), members.end(), [&](NodeId a, NodeId b) {
    return slot_in_record_[a] < slot_in_record_[b];
  });
  uint64_t overflow = 0;
  NATIX_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                         EncodePartition(part, members, &overflow));
  NATIX_RETURN_NOT_OK(manager_.Update(records_[part], bytes));
  ++records_rewritten_;
  overflow_bytes_ = overflow_bytes_ - record_overflow_[part] + overflow;
  record_overflow_[part] = overflow;
  RecomputeOverflowPages();
  return Status::OK();
}

Status NatixStore::Rename(NodeId v, std::string_view label) {
  std::unique_lock<std::shared_mutex> lock(cc_->mu);
  ArmCow();
  return RenameLocked(v, label);
}

Status NatixStore::RenameLocked(NodeId v, std::string_view label) {
  NATIX_RETURN_NOT_OK(CheckWritable());
  if (v >= partition_of_.size() || partition_of_[v] == kNoPartition) {
    return Status::InvalidArgument("no such node: " + std::to_string(v));
  }
  int32_t label_id = -1;
  if (doc_ != nullptr) {
    if (inc_ != nullptr) {
      NATIX_RETURN_NOT_OK(inc_->Rename(v, label));
    } else {
      doc_->tree.SetLabel(v, label);
    }
    SyncLabels();
    label_id = doc_->tree.LabelIdOf(v);
  } else {
    // Released store: the rename runs against record bytes alone.
    label_id = InternStoreLabel(label);
  }
  const uint32_t part = partition_of_[v];
  NATIX_ASSIGN_OR_RETURN(const auto raw, manager_.Get(records_[part]));
  Result<std::vector<uint8_t>> patched = RewriteRecordLabel(
      raw.first, raw.second, slot_in_record_[v], label_id,
      options_.slot_size);
  if (patched.ok()) {
    NATIX_RETURN_NOT_OK(manager_.Update(records_[part], *patched));
    ++records_rewritten_;
  } else if (patched.status().code() == StatusCode::kFailedPrecondition) {
    // The varint label grew past what the narrow topology's 16-bit data
    // offsets can address: re-encode the whole partition instead (the
    // builder switches to wide entries as needed).
    NATIX_RETURN_NOT_OK(EnsureDocumentLocked());
    if (doc_->tree.LabelIdOf(v) != label_id) {
      // The document was rematerialized from the unpatched records.
      doc_->tree.SetLabel(v, label);
      SyncLabels();
    }
    NATIX_RETURN_NOT_OK(ReencodePartition(part));
  } else {
    return patched.status();
  }
  ++renames_;
  ++version_;
  if (wal_ != nullptr && !replaying_) {
    NATIX_RETURN_NOT_OK(LogRename(v, label));
  }
  return Status::OK();
}

Result<ImportedDocument> NatixStore::CompactSnapshot(
    std::vector<NodeId>* old_to_new) const {
  std::shared_lock<std::shared_mutex> lock(cc_->mu);
  return CompactSnapshotLocked(old_to_new);
}

Result<ImportedDocument> NatixStore::CompactSnapshotLocked(
    std::vector<NodeId>* old_to_new) const {
  NATIX_ASSIGN_OR_RETURN(const ImportedDocument old, SnapshotDocumentLocked());
  return CompactDocumentImpl(old, options_.slot_size, old_to_new);
}

Result<size_t> NatixStore::RefreshPlacementHints() {
  std::unique_lock<std::shared_mutex> lock(cc_->mu);
  ArmCow();
  return RefreshPlacementHintsLocked();
}

Result<size_t> NatixStore::RefreshPlacementHintsLocked() {
  size_t patched_total = 0;
  for (size_t part = 0; part < records_.size(); ++part) {
    if (!records_[part].valid()) continue;
    NATIX_ASSIGN_OR_RETURN(const auto raw, manager_.Get(records_[part]));
    std::vector<uint8_t> bytes(raw.first, raw.first + raw.second);
    const size_t patched = PatchPlacementHints(
        &bytes,
        [this](NodeId v, RecordPlacement* out) {
          if (v >= partition_of_.size() ||
              partition_of_[v] == kNoPartition) {
            return false;
          }
          out->partition = partition_of_[v];
          out->record = records_[partition_of_[v]];
          out->slot = slot_in_record_[v];
          return true;
        },
        options_.slot_size);
    if (patched == 0) continue;
    NATIX_RETURN_NOT_OK(manager_.Update(records_[part], bytes));
    ++records_rewritten_;
    patched_total += patched;
  }
  if (patched_total != 0) ++version_;
  return patched_total;
}

Status NatixStore::LogOp(WalEntryType type,
                         const std::vector<uint8_t>& payload) {
  // Transient (Unavailable) backend hiccups are retried with backoff
  // inside the writer; an error surfacing here means the log truly lost
  // the entry (append failed for good, or -- under kSyncEveryOp -- the
  // fsync did), so the in-memory store is ahead of the log and must
  // refuse further mutations.
  Result<uint64_t> lsn = wal_->Append(type, payload);
  if (!lsn.ok()) {
    if (IsBackpressure(lsn.status()) &&
        sync_policy_.mode != SyncPolicy::Mode::kSyncOnCheckpoint) {
      // Disk full, but the entry is still buffered in the writer (the
      // buffered modes park the batch on ENOSPC): once space frees, the
      // log catches up on its own. Backpressure, not a demotion -- the
      // caller sees ResourceExhausted and may retry later.
      return lsn.status();
    }
    // Either a genuine write failure or a full disk under the unbuffered
    // kSyncOnCheckpoint mode, where the entry is simply gone while the
    // op is already applied in memory: the log no longer matches memory.
    Demote(StoreHealth::kDegraded, "WAL append", lsn.status());
    return Status::FailedPrecondition(
        "WAL append failed (" + lsn.status().message() + "); store is " +
        StoreHealthName(health_));
  }
  cc_->wal_op_bytes.fetch_add(kWalEntryHeaderSize + payload.size(),
                              std::memory_order_relaxed);
  cc_->wal_op_entries.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status NatixStore::LogInsert(NodeId parent_logged, NodeId before,
                             NodeKind kind, std::string_view label,
                             std::string_view content) {
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  w.U32(parent_logged);
  w.U32(before);
  w.U8(static_cast<uint8_t>(kind));
  w.Str(label);
  w.Str(content);
  return LogOp(WalEntryType::kInsertOp, payload);
}

Status NatixStore::LogDelete(NodeId v) {
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  w.U32(v);
  return LogOp(WalEntryType::kDeleteOp, payload);
}

Status NatixStore::LogMove(NodeId v, NodeId parent, NodeId before) {
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  w.U32(v);
  w.U32(parent);
  w.U32(before);
  return LogOp(WalEntryType::kMoveOp, payload);
}

Status NatixStore::LogRename(NodeId v, std::string_view label) {
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  w.U32(v);
  w.Str(label);
  return LogOp(WalEntryType::kRenameOp, payload);
}

namespace {
// v3: checkpoint page-image payloads carry sealed cells (page_integrity)
// instead of raw page bytes, so recovery verifies every image's CRC.
// v4: the metadata records the store's negotiated record wire format;
// v3 checkpoints are still accepted and imply record format v2 (the only
// format that existed when they were written).
// v5: the tree serializes tombstone flags, the partitioner state carries
// its merge counter and the metadata records the delete/move/rename
// counters. Pre-v5 checkpoints read back with those counters at zero.
constexpr uint32_t kCheckpointFormatVersion = 5;
constexpr uint32_t kCheckpointFormatVersionRecordFormat = 4;
constexpr uint32_t kCheckpointFormatVersionSealedCells = 3;

void WritePartitionerState(ByteWriter* w,
                           const IncrementalPartitioner::SavedState& state) {
  w->U64(state.intervals.size());
  for (const IncrementalPartitioner::IntervalInfo& iv : state.intervals) {
    w->U32(iv.first);
    w->U32(iv.last);
    w->U64(iv.weight);
    w->U8(iv.alive ? 1 : 0);
  }
  w->U64(state.split_count);
  w->U64(state.merge_count);
}

Result<IncrementalPartitioner::SavedState> ReadPartitionerState(
    ByteReader* r, uint32_t version) {
  IncrementalPartitioner::SavedState state;
  NATIX_ASSIGN_OR_RETURN(const uint64_t count, r->U64());
  if (count > r->remaining() / 17) {
    return Status::ParseError("checkpoint interval table exceeds payload");
  }
  state.intervals.resize(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    IncrementalPartitioner::IntervalInfo& iv = state.intervals[i];
    NATIX_ASSIGN_OR_RETURN(iv.first, r->U32());
    NATIX_ASSIGN_OR_RETURN(iv.last, r->U32());
    NATIX_ASSIGN_OR_RETURN(iv.weight, r->U64());
    NATIX_ASSIGN_OR_RETURN(const uint8_t alive, r->U8());
    if (alive > 1) {
      return Status::ParseError("checkpoint interval alive flag corrupt");
    }
    iv.alive = alive == 1;
  }
  NATIX_ASSIGN_OR_RETURN(state.split_count, r->U64());
  if (version >= kCheckpointFormatVersion) {
    NATIX_ASSIGN_OR_RETURN(state.merge_count, r->U64());
  }
  return state;
}
}  // namespace

void NatixStore::SerializeCheckpointMeta(std::vector<uint8_t>* out) const {
  ByteWriter w(out);
  w.U32(kCheckpointFormatVersion);
  w.U64(options_.page_size);
  w.I32(options_.allocation_lookback);
  w.U32(options_.slot_size);
  w.U32(options_.metadata_slots);
  w.U32(options_.record_format);
  w.U64(limit_);
  w.U8(doc_ != nullptr ? 1 : 0);
  if (doc_ != nullptr) {
    doc_->tree.SerializeTo(out);
    w.U64(doc_->content_bytes.size());
    for (const uint32_t b : doc_->content_bytes) w.U32(b);
    w.U64(doc_->content_offset.size());
    for (const uint64_t off : doc_->content_offset) w.U64(off);
    w.Str(doc_->content_pool);
    w.U64(doc_->source_node.size());
    for (const XmlDocument::NodeIndex n : doc_->source_node) w.U32(n);
    w.U64(doc_->overflow_nodes);
    w.U64(doc_->overflow_bytes);
    w.U64(doc_->content_total_bytes);
    w.U64(doc_->source_bytes);
  } else {
    // Released store: the records are the document. Only the node count
    // (for table sizing) and provenance byte count survive on the side.
    w.U64(partition_of_.size());
    w.U64(released_source_bytes_);
  }
  w.U64(partitioning_.size());
  for (const SiblingInterval& iv : partitioning_) {
    w.U32(iv.first);
    w.U32(iv.last);
  }
  // Partitioner: 0 = never mutated, 1 = live, 2 = parked by a release.
  if (inc_ != nullptr) {
    w.U8(1);
    WritePartitionerState(&w, inc_->SaveState());
  } else if (has_saved_inc_) {
    w.U8(2);
    WritePartitionerState(&w, saved_inc_);
  } else {
    w.U8(0);
  }
  w.U64(partition_of_.size());
  for (const uint32_t p : partition_of_) w.U32(p);
  w.U64(records_.size());
  for (const RecordId r : records_) w.U32(r.value);
  w.U64(record_overflow_.size());
  for (const uint64_t b : record_overflow_) w.U64(b);
  w.U64(slot_in_record_.size());
  for (const uint32_t s : slot_in_record_) w.U32(s);
  w.U64(labels_.size());
  for (const std::string& label : labels_) w.Str(label);
  w.U64(version_);
  // Deterministic layout: overflow side-map entries sorted by node.
  std::vector<NodeId> overflow_nodes;
  overflow_nodes.reserve(overflow_content_.size());
  for (const auto& [v, content] : overflow_content_) {
    overflow_nodes.push_back(v);
  }
  std::sort(overflow_nodes.begin(), overflow_nodes.end());
  w.U64(overflow_nodes.size());
  for (const NodeId v : overflow_nodes) {
    w.U32(v);
    w.Str(overflow_content_.at(v));
  }
  w.U64(overflow_bytes_);
  w.U64(inserts_);
  w.U64(records_rewritten_);
  w.U64(records_created_);
  w.U64(deletes_);
  w.U64(moves_);
  w.U64(renames_);
  manager_.SerializeMeta(&w);
}

Result<NatixStore> NatixStore::FromCheckpointMeta(const uint8_t* data,
                                                  size_t size) {
  ByteReader r(data, size);
  NATIX_ASSIGN_OR_RETURN(const uint32_t version, r.U32());
  if (version < kCheckpointFormatVersionSealedCells ||
      version > kCheckpointFormatVersion) {
    return Status::ParseError("unsupported checkpoint format version " +
                              std::to_string(version));
  }
  NatixStore store;
  NATIX_ASSIGN_OR_RETURN(const uint64_t page_size, r.U64());
  NATIX_ASSIGN_OR_RETURN(store.options_.allocation_lookback, r.I32());
  NATIX_ASSIGN_OR_RETURN(store.options_.slot_size, r.U32());
  NATIX_ASSIGN_OR_RETURN(store.options_.metadata_slots, r.U32());
  if (version >= kCheckpointFormatVersionRecordFormat) {
    NATIX_ASSIGN_OR_RETURN(const uint32_t record_format, r.U32());
    if (record_format != kRecordFormatV2 &&
        record_format != kRecordFormatV3) {
      return Status::ParseError("checkpoint names an unknown record format " +
                                std::to_string(record_format));
    }
    store.options_.record_format = static_cast<uint16_t>(record_format);
  } else {
    // A pre-v4 checkpoint was written by a binary that only knew v2
    // records; keep writing what the store's existing records use.
    store.options_.record_format = kRecordFormatV2;
  }
  store.options_.page_size = static_cast<size_t>(page_size);
  store.page_size_ = store.options_.page_size;
  NATIX_ASSIGN_OR_RETURN(store.limit_, r.U64());
  NATIX_ASSIGN_OR_RETURN(const uint8_t has_document, r.U8());
  if (has_document > 1) {
    return Status::ParseError("checkpoint document flag corrupt");
  }
  size_t n = 0;
  if (has_document == 1) {
    store.doc_ = std::make_unique<ImportedDocument>();
    NATIX_ASSIGN_OR_RETURN(store.doc_->tree, Tree::DeserializeFrom(&r));
    n = store.doc_->tree.size();
    NATIX_ASSIGN_OR_RETURN(uint64_t count, r.U64());
    if (count != n) {
      return Status::ParseError("checkpoint content_bytes size mismatch");
    }
    store.doc_->content_bytes.resize(n);
    for (size_t i = 0; i < n; ++i) {
      NATIX_ASSIGN_OR_RETURN(store.doc_->content_bytes[i], r.U32());
    }
    NATIX_ASSIGN_OR_RETURN(count, r.U64());
    if (count != n) {
      return Status::ParseError("checkpoint content_offset size mismatch");
    }
    store.doc_->content_offset.resize(n);
    for (size_t i = 0; i < n; ++i) {
      NATIX_ASSIGN_OR_RETURN(store.doc_->content_offset[i], r.U64());
    }
    NATIX_ASSIGN_OR_RETURN(store.doc_->content_pool, r.Str());
    for (size_t i = 0; i < n; ++i) {
      const uint64_t off = store.doc_->content_offset[i];
      const uint64_t len = store.doc_->content_bytes[i];
      if (off > store.doc_->content_pool.size() ||
          len > store.doc_->content_pool.size() - off) {
        return Status::ParseError("checkpoint content slice out of range");
      }
    }
    NATIX_ASSIGN_OR_RETURN(count, r.U64());
    if (count != 0 && count != n) {
      return Status::ParseError("checkpoint source_node size mismatch");
    }
    store.doc_->source_node.resize(static_cast<size_t>(count));
    for (size_t i = 0; i < count; ++i) {
      NATIX_ASSIGN_OR_RETURN(store.doc_->source_node[i], r.U32());
    }
    NATIX_ASSIGN_OR_RETURN(store.doc_->overflow_nodes, r.U64());
    NATIX_ASSIGN_OR_RETURN(store.doc_->overflow_bytes, r.U64());
    NATIX_ASSIGN_OR_RETURN(store.doc_->content_total_bytes, r.U64());
    NATIX_ASSIGN_OR_RETURN(store.doc_->source_bytes, r.U64());
  } else {
    NATIX_ASSIGN_OR_RETURN(const uint64_t node_count, r.U64());
    if (node_count == 0 || node_count > 0xFFFFFFFFull) {
      return Status::ParseError("checkpoint node count out of range");
    }
    n = static_cast<size_t>(node_count);
    NATIX_ASSIGN_OR_RETURN(store.released_source_bytes_, r.U64());
  }
  NATIX_ASSIGN_OR_RETURN(uint64_t count, r.U64());
  if (count > r.remaining() / 8) {
    return Status::ParseError("checkpoint partitioning size exceeds payload");
  }
  store.partitioning_.Reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    SiblingInterval iv;
    NATIX_ASSIGN_OR_RETURN(iv.first, r.U32());
    NATIX_ASSIGN_OR_RETURN(iv.last, r.U32());
    store.partitioning_.Add(iv);
  }
  NATIX_ASSIGN_OR_RETURN(const uint8_t inc_flag, r.U8());
  if (inc_flag > 2) {
    return Status::ParseError("checkpoint partitioner flag corrupt");
  }
  if (inc_flag == 1) {
    if (has_document == 0) {
      return Status::ParseError(
          "checkpoint has a live partitioner but no document");
    }
    NATIX_ASSIGN_OR_RETURN(const IncrementalPartitioner::SavedState state,
                           ReadPartitionerState(&r, version));
    NATIX_ASSIGN_OR_RETURN(
        IncrementalPartitioner inc,
        IncrementalPartitioner::Restore(&store.doc_->tree, store.limit_,
                                        state));
    store.inc_ = std::make_unique<IncrementalPartitioner>(std::move(inc));
  } else if (inc_flag == 2) {
    NATIX_ASSIGN_OR_RETURN(store.saved_inc_,
                           ReadPartitionerState(&r, version));
    store.has_saved_inc_ = true;
  }
  NATIX_ASSIGN_OR_RETURN(count, r.U64());
  if (count != n) {
    return Status::ParseError("checkpoint partition_of size mismatch");
  }
  store.partition_of_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    NATIX_ASSIGN_OR_RETURN(store.partition_of_[i], r.U32());
  }
  NATIX_ASSIGN_OR_RETURN(count, r.U64());
  if (count > r.remaining() / 4) {
    return Status::ParseError("checkpoint record table exceeds payload");
  }
  store.records_.resize(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    NATIX_ASSIGN_OR_RETURN(store.records_[i].value, r.U32());
  }
  NATIX_ASSIGN_OR_RETURN(count, r.U64());
  if (count != store.records_.size()) {
    return Status::ParseError("checkpoint overflow table size mismatch");
  }
  store.record_overflow_.resize(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    NATIX_ASSIGN_OR_RETURN(store.record_overflow_[i], r.U64());
  }
  for (size_t i = 0; i < n; ++i) {
    // kNoPartition marks a tombstoned node: legal, covered by no record.
    if (store.partition_of_[i] != kNoPartition &&
        store.partition_of_[i] >= store.records_.size()) {
      return Status::ParseError("checkpoint partition_of out of range");
    }
  }
  NATIX_ASSIGN_OR_RETURN(count, r.U64());
  if (count != n) {
    return Status::ParseError("checkpoint slot table size mismatch");
  }
  store.slot_in_record_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    NATIX_ASSIGN_OR_RETURN(store.slot_in_record_[i], r.U32());
  }
  NATIX_ASSIGN_OR_RETURN(count, r.U64());
  if (count > r.remaining()) {
    return Status::ParseError("checkpoint label table exceeds payload");
  }
  store.labels_.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    NATIX_ASSIGN_OR_RETURN(std::string label, r.Str());
    store.labels_.push_back(std::move(label));
  }
  NATIX_ASSIGN_OR_RETURN(store.version_, r.U64());
  NATIX_ASSIGN_OR_RETURN(count, r.U64());
  if (count > r.remaining() / 8) {
    return Status::ParseError("checkpoint overflow map exceeds payload");
  }
  for (uint64_t i = 0; i < count; ++i) {
    NATIX_ASSIGN_OR_RETURN(const uint32_t v, r.U32());
    NATIX_ASSIGN_OR_RETURN(std::string content, r.Str());
    if (v >= n || !store.overflow_content_.emplace(v, std::move(content))
                       .second) {
      return Status::ParseError("checkpoint overflow map entry corrupt");
    }
  }
  NATIX_ASSIGN_OR_RETURN(store.overflow_bytes_, r.U64());
  NATIX_ASSIGN_OR_RETURN(store.inserts_, r.U64());
  NATIX_ASSIGN_OR_RETURN(store.records_rewritten_, r.U64());
  NATIX_ASSIGN_OR_RETURN(store.records_created_, r.U64());
  if (version >= kCheckpointFormatVersion) {
    NATIX_ASSIGN_OR_RETURN(store.deletes_, r.U64());
    NATIX_ASSIGN_OR_RETURN(store.moves_, r.U64());
    NATIX_ASSIGN_OR_RETURN(store.renames_, r.U64());
  }
  NATIX_ASSIGN_OR_RETURN(store.manager_, RecordManager::RestoreMeta(&r));
  if (!r.AtEnd()) {
    return Status::ParseError("trailing bytes after checkpoint metadata");
  }
  store.RecomputeOverflowPages();
  return store;
}

Status NatixStore::EnableDurability(std::unique_ptr<FileBackend> backend,
                                    SyncPolicy policy) {
  std::unique_lock<std::shared_mutex> lock(cc_->mu);
  if (wal_ != nullptr) {
    return Status::FailedPrecondition("store already has a WAL attached");
  }
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> writer,
                         WalWriter::Create(backend.get(), policy));
  backend_ = std::move(backend);
  wal_ = std::move(writer);
  sync_policy_ = policy;
  cc_->wal_record_base.store(manager_.record_bytes_written(),
                             std::memory_order_relaxed);
  // The initial checkpoint captures the bulk-loaded store (Build marked
  // every page dirty), making the log self-contained from entry one.
  return CheckpointLocked();
}

Status NatixStore::SyncWal() {
  std::unique_lock<std::shared_mutex> lock(cc_->mu);
  return SyncWalLocked();
}

Status NatixStore::SyncWalLocked() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("store has no WAL attached");
  }
  NATIX_RETURN_NOT_OK(CheckWritable());
  const Status st = wal_->Sync();
  if (!st.ok()) {
    if (IsBackpressure(st)) {
      // Disk full while flushing: the batch went back to the writer's
      // pending buffer, nothing was lost. The caller's ops are simply
      // not durable yet; a later SyncWal (after space frees) lands them.
      return st;
    }
    Demote(StoreHealth::kDegraded, "WAL sync", st);
    return Status::FailedPrecondition("WAL sync failed (" + st.message() +
                                      "); store is " +
                                      StoreHealthName(health_));
  }
  return Status::OK();
}

Status NatixStore::CheckWritable() const {
  if (health_ == StoreHealth::kHealthy) return Status::OK();
  return Status::FailedPrecondition(
      "store is " + std::string(StoreHealthName(health_)) + " (" +
      health_reason_ +
      "): the log no longer matches memory, so mutations are refused; " +
      (health_ == StoreHealth::kDegraded
           ? "reads still serve -- TryRehabilitate() or recover from the log"
           : "reads still serve -- recover from the log to continue"));
}

void NatixStore::Demote(StoreHealth to, const char* what,
                        const Status& cause) {
  if (to <= health_) return;  // severity only escalates; first reason wins
  health_ = to;
  health_reason_ = std::string(what) + " failed: " + cause.message();
}

void NatixStore::NoteUnrecoverableFailure(const Status& cause) {
  std::unique_lock<std::shared_mutex> lock(cc_->mu);
  Demote(StoreHealth::kFailed, "storage layer", cause);
}

Status NatixStore::TryRehabilitate() {
  std::unique_lock<std::shared_mutex> lock(cc_->mu);
  if (backend_ == nullptr) {
    return Status::FailedPrecondition(
        "store has no WAL backend; nothing to rehabilitate");
  }
  if (health_ == StoreHealth::kFailed) {
    return Status::FailedPrecondition(
        "store is failed (" + health_reason_ +
        "); rehabilitation serves only degraded stores -- Recover() from "
        "the log instead");
  }
  if (health_ == StoreHealth::kHealthy && wal_ != nullptr) {
    return Status::OK();
  }
  // Retire the dead writer first: this joins its flusher thread, so
  // nothing races the probe below, and drops buffered entries of
  // unknowable durability -- the fresh checkpoint at the end re-covers
  // their in-memory effects.
  wal_.reset();
  // Probe the backend by scanning the log's valid prefix, the same walk
  // recovery does. The scan doubles as the read-probe: a device that
  // still errors keeps the store degraded, and the call may be retried.
  uint64_t usable_end = 0;
  uint64_t usable_lsn = 0;
  {
    Result<WalReader> reader = WalReader::Open(backend_.get());
    if (!reader.ok()) {
      health_reason_ = "rehabilitation probe failed: " +
                       reader.status().message();
      return reader.status();
    }
    // Track a checkpoint the crash may have left without its End: the
    // writer must not re-attach inside it (recovery would see ops
    // trailing a dangling Begin), so truncation chops it wholesale.
    bool in_checkpoint = false;
    uint64_t begin_offset = 0;
    uint64_t begin_lsn = 0;
    while (true) {
      const uint64_t entry_start = reader->valid_end();
      Result<std::optional<WalEntry>> entry = reader->Next();
      if (!entry.ok()) {
        health_reason_ = "rehabilitation probe failed: " +
                         entry.status().message();
        return entry.status();
      }
      if (!entry->has_value()) break;
      if ((*entry)->type == WalEntryType::kCheckpointBegin) {
        in_checkpoint = true;
        begin_offset = entry_start;
        begin_lsn = (*entry)->lsn;
      } else if ((*entry)->type == WalEntryType::kCheckpointEnd) {
        in_checkpoint = false;
      }
    }
    usable_end = reader->valid_end();
    usable_lsn = reader->next_lsn();
    if (in_checkpoint) {
      usable_end = begin_offset;
      usable_lsn = begin_lsn;
    }
  }
  // Drop everything past the valid prefix (the failed write's debris)
  // and prove the device can still make that truncation durable.
  Status barrier = backend_->Truncate(usable_end);
  if (barrier.ok()) barrier = backend_->Sync();
  if (!barrier.ok()) {
    health_reason_ =
        "rehabilitation truncate/sync failed: " + barrier.message();
    return barrier;
  }
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Attach(backend_.get(), usable_lsn, sync_policy_);
  if (!writer.ok()) {
    health_reason_ =
        "rehabilitation attach failed: " + writer.status().message();
    return writer.status();
  }
  wal_ = std::move(*writer);
  // Tentatively healthy, so the resync checkpoint below passes
  // CheckWritable. The checkpoint is what actually re-earns the state:
  // ops applied in memory after the demotion were never logged, and the
  // full image supersedes them, making log == memory again.
  health_ = StoreHealth::kHealthy;
  health_reason_.clear();
  // The truncation may have erased a checkpoint that was installed (and
  // reset the dirty-page tracking) before the store degraded -- for
  // example when the probe scan stopped early on a rotten entry. An
  // incremental checkpoint would then silently omit every page the
  // erased one had cleaned, leaving a log whose cumulative images no
  // longer reconstruct memory. The resync checkpoint is therefore
  // always a full one.
  manager_.MarkAllPagesDirty();
  const Status cp = CheckpointLocked();
  if (!cp.ok()) {
    // CheckpointLocked demotes on genuine failure; a backpressure
    // (disk-full) refusal leaves health alone, so re-demote explicitly:
    // until the checkpoint lands the log still does not match memory.
    if (health_ == StoreHealth::kHealthy) {
      Demote(StoreHealth::kDegraded, "rehabilitation checkpoint", cp);
    }
    return cp;
  }
  return Status::OK();
}

Status NatixStore::Checkpoint() {
  std::unique_lock<std::shared_mutex> lock(cc_->mu);
  return CheckpointLocked();
}

Status NatixStore::CheckpointLocked() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("store has no WAL attached");
  }
  NATIX_RETURN_NOT_OK(CheckWritable());
  // A failed install may leave an incomplete checkpoint group in the
  // log. Recovery discards it wholesale, but only as long as nothing
  // else is appended afterwards -- and unlike a lost op entry, a torn
  // group cannot be fenced off by truncating to a watermark this side
  // of a full log scan. So a genuine install failure demotes to kFailed
  // (rehabilitation refused; Recover() from the bytes), while a full
  // disk -- where AppendGroup unwound the staging and nothing landed --
  // stays pure backpressure.
  auto fail = [this](const Status& st) {
    if (IsBackpressure(st)) return st;
    Demote(StoreHealth::kFailed, "checkpoint install", st);
    return Status::FailedPrecondition("checkpoint failed (" + st.message() +
                                      "); store is " +
                                      StoreHealthName(health_));
  };
  // Stage the whole checkpoint (metadata + sealed page images + End) off
  // the commit path: serialization happens into a side buffer while the
  // WAL flusher keeps draining ops, then AppendGroup installs it as ONE
  // backend append + fsync. A crash mid-install leaves a dangling
  // checkpoint that recovery truncates back to its Begin.
  //
  // LSN bookkeeping: the single mutator thread owns LSN assignment (the
  // flusher only writes already-encoded bytes), so the Begin entry's LSN
  // -- which the End payload must carry -- is known up front.
  const uint64_t expect_begin = wal_->next_lsn();
  std::vector<WalGroupEntry> group;
  std::vector<uint8_t> meta;
  SerializeCheckpointMeta(&meta);
  uint64_t bytes = kWalEntryHeaderSize + meta.size();
  group.push_back({WalEntryType::kCheckpointBegin, std::move(meta)});
  const std::vector<uint32_t> dirty = manager_.buffer().DirtyPagesSorted();
  const uint32_t epoch = static_cast<uint32_t>(version_) + 1;
  for (const uint32_t page_id : dirty) {
    Result<std::vector<uint8_t>> image = manager_.PageImage(page_id);
    if (!image.ok()) return fail(image.status());
    std::vector<uint8_t> payload;
    ByteWriter w(&payload);
    w.U32(page_id);
    const std::vector<uint8_t> cell =
        SealPageCell(epoch, image->data(), image->size());
    w.Raw(cell.data(), cell.size());
    bytes += kWalEntryHeaderSize + payload.size();
    group.push_back({WalEntryType::kPageImage, std::move(payload)});
  }
  std::vector<uint8_t> end_payload;
  ByteWriter w(&end_payload);
  w.U64(expect_begin);
  w.U64(dirty.size());
  bytes += kWalEntryHeaderSize + end_payload.size();
  group.push_back({WalEntryType::kCheckpointEnd, std::move(end_payload)});
  const Result<uint64_t> begin_lsn = wal_->AppendGroup(std::move(group));
  if (!begin_lsn.ok()) return fail(begin_lsn.status());
  if (*begin_lsn != expect_begin) {
    return fail(Status::Internal(
        "checkpoint begin LSN drifted during install (expected " +
        std::to_string(expect_begin) + ", got " +
        std::to_string(*begin_lsn) + ")"));
  }
  manager_.buffer().MarkAllClean();
  cc_->wal_checkpoint_bytes.fetch_add(bytes, std::memory_order_relaxed);
  cc_->wal_checkpoints.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<NatixStore> NatixStore::RecoverCore(FileBackend* backend,
                                           RecoveryInfo* info,
                                           uint64_t* valid_end,
                                           uint64_t* next_lsn) {
  NATIX_ASSIGN_OR_RETURN(WalReader reader, WalReader::Open(backend));
  RecoveryInfo local_info;
  if (info == nullptr) info = &local_info;
  *info = RecoveryInfo();
  struct PendingCheckpoint {
    uint64_t begin_lsn = 0;
    uint64_t end_lsn = 0;
    /// Byte offset of the begin entry, so an incomplete trailing
    /// checkpoint can be truncated wholesale.
    uint64_t begin_offset = 0;
    std::vector<uint8_t> meta;
    std::vector<std::vector<uint8_t>> images;
  };
  std::vector<PendingCheckpoint> complete;
  std::unique_ptr<PendingCheckpoint> pending;
  std::vector<WalEntry> ops;
  while (true) {
    const uint64_t entry_start = reader.valid_end();
    NATIX_ASSIGN_OR_RETURN(std::optional<WalEntry> entry, reader.Next());
    if (!entry.has_value()) break;
    ++info->entries_scanned;
    switch (entry->type) {
      case WalEntryType::kInsertOp:
      case WalEntryType::kDeleteOp:
      case WalEntryType::kMoveOp:
      case WalEntryType::kRenameOp:
        if (pending != nullptr) {
          return Status::ParseError("op entry inside a checkpoint at LSN " +
                                    std::to_string(entry->lsn));
        }
        ops.push_back(std::move(*entry));
        break;
      case WalEntryType::kCheckpointBegin:
        if (pending != nullptr) {
          return Status::ParseError("nested checkpoint at LSN " +
                                    std::to_string(entry->lsn));
        }
        pending = std::make_unique<PendingCheckpoint>();
        pending->begin_lsn = entry->lsn;
        pending->begin_offset = entry_start;
        pending->meta = std::move(entry->payload);
        break;
      case WalEntryType::kPageImage:
        if (pending == nullptr) {
          return Status::ParseError("page image outside a checkpoint at LSN " +
                                    std::to_string(entry->lsn));
        }
        pending->images.push_back(std::move(entry->payload));
        break;
      case WalEntryType::kCheckpointEnd: {
        if (pending == nullptr) {
          return Status::ParseError(
              "checkpoint end without a begin at LSN " +
              std::to_string(entry->lsn));
        }
        ByteReader r(entry->payload.data(), entry->payload.size());
        NATIX_ASSIGN_OR_RETURN(const uint64_t begin_lsn, r.U64());
        NATIX_ASSIGN_OR_RETURN(const uint64_t image_count, r.U64());
        if (begin_lsn != pending->begin_lsn ||
            image_count != pending->images.size()) {
          return Status::ParseError("checkpoint end does not match its begin");
        }
        pending->end_lsn = entry->lsn;
        complete.push_back(std::move(*pending));
        pending.reset();
        break;
      }
    }
  }
  // The scan is done: record what the log holds before deciding whether
  // it is recoverable.
  NATIX_ASSIGN_OR_RETURN(const uint64_t log_size, backend->Size());
  info->checkpoints_found = complete.size();
  info->tail_was_torn = reader.tail_is_torn();
  // A checkpoint the crash left without its end entry is discarded
  // wholesale: the valid prefix ends just before its begin entry, so the
  // attached writer appends the next op *outside* any checkpoint and a
  // later recovery never sees ops trailing a dangling begin.
  uint64_t usable_end = reader.valid_end();
  uint64_t usable_lsn = reader.next_lsn();
  if (pending != nullptr) {
    usable_end = pending->begin_offset;
    usable_lsn = pending->begin_lsn;
  }
  info->torn_bytes = usable_end < log_size ? log_size - usable_end : 0;
  if (valid_end != nullptr) *valid_end = usable_end;
  if (next_lsn != nullptr) *next_lsn = usable_lsn;
  if (complete.empty()) {
    return Status::FailedPrecondition(
        "log contains no complete checkpoint; the store never became "
        "durable");
  }
  const uint64_t restore_lsn = complete.back().end_lsn;
  info->checkpoint_begin_lsn = complete.back().begin_lsn;
  info->checkpoint_end_lsn = restore_lsn;
  info->last_lsn = restore_lsn;
  NATIX_ASSIGN_OR_RETURN(
      NatixStore store,
      FromCheckpointMeta(complete.back().meta.data(),
                         complete.back().meta.size()));
  // Page images apply cumulatively: each checkpoint wrote only the pages
  // dirtied since the previous one, so the union over all complete
  // checkpoints (later images superseding earlier ones) reconstructs
  // every page as of the final checkpoint. Each image is a sealed cell;
  // a failed CRC here is bit rot inside the log itself and is reported
  // loudly rather than applied.
  for (const PendingCheckpoint& cp : complete) {
    for (const std::vector<uint8_t>& image : cp.images) {
      ByteReader r(image.data(), image.size());
      NATIX_ASSIGN_OR_RETURN(const uint32_t page_id, r.U32());
      PageDamage damage = PageDamage::kNone;
      Result<std::vector<uint8_t>> payload = OpenPageCell(
          image.data() + 4, image.size() - 4, nullptr, &damage);
      if (!payload.ok()) {
        return Status::ParseError(
            "checkpoint image of page " + std::to_string(page_id) +
            " (checkpoint at LSN " + std::to_string(cp.begin_lsn) +
            "): " + payload.status().message());
      }
      NATIX_RETURN_NOT_OK(store.manager_.ApplyPageImage(
          page_id, payload->data(), payload->size()));
    }
  }
  NATIX_RETURN_NOT_OK(store.manager_.FinishRestore());
  for (size_t part = 0; part < store.records_.size(); ++part) {
    if (store.records_[part].valid() &&
        !store.manager_.Get(store.records_[part]).ok()) {
      return Status::ParseError("record of partition " +
                                std::to_string(part) +
                                " does not resolve after restore");
    }
  }
  if (!store.has_document()) {
    // A released store has no tree to validate against; prove the record
    // bytes are coherent (parse, cover the node set, match the tables)
    // by materializing once before trusting them for navigation.
    const Result<ImportedDocument> probe = store.BuildDocumentFromRecords();
    if (!probe.ok()) return probe.status();
  }
  // Replay the op tail through the normal insert path; replaying_
  // suppresses re-logging (no writer is attached yet either). On a
  // released store the first replayed op rematerializes the document
  // from the restored records.
  store.replaying_ = true;
  for (const WalEntry& op : ops) {
    if (op.lsn <= restore_lsn) continue;
    ByteReader r(op.payload.data(), op.payload.size());
    Status applied = Status::OK();
    switch (op.type) {
      case WalEntryType::kInsertOp: {
        NATIX_ASSIGN_OR_RETURN(const uint32_t parent, r.U32());
        NATIX_ASSIGN_OR_RETURN(const uint32_t before, r.U32());
        NATIX_ASSIGN_OR_RETURN(const uint8_t kind, r.U8());
        NATIX_ASSIGN_OR_RETURN(const std::string label, r.Str());
        NATIX_ASSIGN_OR_RETURN(const std::string content, r.Str());
        if (!r.AtEnd() ||
            kind > static_cast<uint8_t>(NodeKind::kProcessingInstruction)) {
          return Status::ParseError("malformed op entry at LSN " +
                                    std::to_string(op.lsn));
        }
        applied = store
                      .InsertBefore(parent, before, label,
                                    static_cast<NodeKind>(kind), content)
                      .status();
        break;
      }
      case WalEntryType::kDeleteOp: {
        NATIX_ASSIGN_OR_RETURN(const uint32_t v, r.U32());
        if (!r.AtEnd()) {
          return Status::ParseError("malformed op entry at LSN " +
                                    std::to_string(op.lsn));
        }
        applied = store.DeleteSubtree(v).status();
        break;
      }
      case WalEntryType::kMoveOp: {
        NATIX_ASSIGN_OR_RETURN(const uint32_t v, r.U32());
        NATIX_ASSIGN_OR_RETURN(const uint32_t parent, r.U32());
        NATIX_ASSIGN_OR_RETURN(const uint32_t before, r.U32());
        if (!r.AtEnd()) {
          return Status::ParseError("malformed op entry at LSN " +
                                    std::to_string(op.lsn));
        }
        applied = store.MoveSubtree(v, parent, before);
        break;
      }
      case WalEntryType::kRenameOp: {
        NATIX_ASSIGN_OR_RETURN(const uint32_t v, r.U32());
        NATIX_ASSIGN_OR_RETURN(const std::string label, r.Str());
        if (!r.AtEnd()) {
          return Status::ParseError("malformed op entry at LSN " +
                                    std::to_string(op.lsn));
        }
        applied = store.Rename(v, label);
        break;
      }
      default:
        return Status::ParseError("unexpected entry type in op tail at LSN " +
                                  std::to_string(op.lsn));
    }
    if (!applied.ok()) {
      return Status::Internal("replay failed at LSN " +
                              std::to_string(op.lsn) + ": " +
                              applied.message());
    }
    ++info->replayed_ops;
    info->last_lsn = op.lsn;
  }
  store.replaying_ = false;
  return store;
}

Result<NatixStore> NatixStore::Recover(std::unique_ptr<FileBackend> backend,
                                       RecoveryInfo* info,
                                       SyncPolicy policy) {
  uint64_t valid_end = 0;
  uint64_t next_lsn = 0;
  NATIX_ASSIGN_OR_RETURN(
      NatixStore store,
      RecoverCore(backend.get(), info, &valid_end, &next_lsn));
  // Drop the torn tail (if any) so the re-attached writer appends after
  // the last valid entry -- and fsync the truncation. Without the sync a
  // second crash right after recovery can resurrect the torn bytes,
  // which would sit mid-log under freshly appended entries.
  NATIX_ASSIGN_OR_RETURN(const uint64_t log_size, backend->Size());
  if (valid_end < log_size) {
    NATIX_RETURN_NOT_OK(backend->Truncate(valid_end));
    NATIX_RETURN_NOT_OK(backend->Sync());
  }
  NATIX_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> writer,
                         WalWriter::Attach(backend.get(), next_lsn, policy));
  store.backend_ = std::move(backend);
  store.wal_ = std::move(writer);
  store.sync_policy_ = policy;
  store.cc_->wal_record_base.store(store.manager_.record_bytes_written(),
                                   std::memory_order_relaxed);
  return store;
}

Result<NatixStore> NatixStore::RecoverForAudit(FileBackend* backend,
                                               RecoveryInfo* info) {
  NATIX_ASSIGN_OR_RETURN(NatixStore store,
                         RecoverCore(backend, info, nullptr, nullptr));
  store.cc_->wal_record_base.store(store.manager_.record_bytes_written(),
                                   std::memory_order_relaxed);
  return store;
}

WalStats NatixStore::wal_stats() const {
  WalStats s;
  s.wal_bytes = wal_ != nullptr ? wal_->bytes_written() : 0;
  s.op_bytes = cc_->wal_op_bytes.load(std::memory_order_relaxed);
  s.checkpoint_bytes =
      cc_->wal_checkpoint_bytes.load(std::memory_order_relaxed);
  s.op_entries = cc_->wal_op_entries.load(std::memory_order_relaxed);
  s.checkpoints = cc_->wal_checkpoints.load(std::memory_order_relaxed);
  s.record_bytes = manager_.record_bytes_written() -
                   cc_->wal_record_base.load(std::memory_order_relaxed);
  if (wal_ != nullptr) {
    s.fsyncs = wal_->fsync_count();
    s.sync_batches = wal_->sync_batch_count();
    s.synced_entries = wal_->synced_entry_count();
    s.append_retries = wal_->transient_retry_count();
    s.last_lsn = wal_->last_lsn();
    s.durable_lsn = wal_->durable_lsn();
  }
  return s;
}

UpdateStats NatixStore::update_stats() const {
  UpdateStats s;
  s.inserts = inserts_;
  s.deletes = deletes_;
  s.moves = moves_;
  s.renames = renames_;
  s.splits = inc_ != nullptr ? inc_->split_count()
                             : (has_saved_inc_ ? saved_inc_.split_count : 0);
  s.merges = inc_ != nullptr ? inc_->merge_count()
                             : (has_saved_inc_ ? saved_inc_.merge_count : 0);
  s.records_rewritten = records_rewritten_;
  s.records_created = records_created_;
  s.relocations = manager_.relocation_count();
  s.compactions = manager_.compaction_count();
  return s;
}

StoreSnapshot& StoreSnapshot::operator=(StoreSnapshot&& other) noexcept {
  if (this != &other) {
    if (state_ != nullptr && state_->store != nullptr) {
      state_->store->CloseSnapshot(state_->version);
    }
    state_ = std::move(other.state_);
    source_ = PageSource(state_.get());
  }
  return *this;
}

StoreSnapshot::~StoreSnapshot() {
  if (state_ != nullptr && state_->store != nullptr) {
    state_->store->CloseSnapshot(state_->version);
  }
}

Result<std::pair<uint32_t, uint16_t>> StoreSnapshot::AddressOfRecord(
    RecordId id) const {
  if (id.value >= state_->addresses.size() ||
      state_->addresses[id.value].first == RecordManager::kInvalidPage) {
    return Status::NotFound("record " + std::to_string(id.value) +
                            " is not placed at version " +
                            std::to_string(state_->version));
  }
  return state_->addresses[id.value];
}

uint32_t StoreSnapshot::PageOfNode(NodeId v) const {
  return state_->addresses[RecordOfNode(v).value].first;
}

Result<std::vector<uint8_t>> StoreSnapshot::CopyRecordBytes(
    uint32_t partition) const {
  NATIX_ASSIGN_OR_RETURN(const auto addr,
                         AddressOfRecord(state_->records[partition]));
  std::shared_lock<std::shared_mutex> lock(state_->store->cc_->mu);
  return state_->store->manager_.RecordBytesAsOf(addr.first, addr.second,
                                                 state_->version);
}

Result<NodeKind> StoreSnapshot::KindOfNode(NodeId v) const {
  if (v >= node_count() || !IsLiveNode(v)) {
    return Status::InvalidArgument("no such node: " + std::to_string(v));
  }
  NATIX_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                         CopyRecordBytes(state_->partition_of[v]));
  NATIX_ASSIGN_OR_RETURN(
      const RecordView view,
      RecordView::Parse(bytes.data(), bytes.size(), state_->slot_size));
  const uint32_t i = state_->slot_in_record[v];
  if (i >= view.node_count() || view.node_id(i) != v) {
    return Status::Internal("slot table does not match record contents");
  }
  return static_cast<NodeKind>(view.kind(i));
}

Result<int32_t> StoreSnapshot::LabelIdOfNode(NodeId v) const {
  if (v >= node_count() || !IsLiveNode(v)) {
    return Status::InvalidArgument("no such node: " + std::to_string(v));
  }
  NATIX_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                         CopyRecordBytes(state_->partition_of[v]));
  NATIX_ASSIGN_OR_RETURN(
      const RecordView view,
      RecordView::Parse(bytes.data(), bytes.size(), state_->slot_size));
  const uint32_t i = state_->slot_in_record[v];
  if (i >= view.node_count() || view.node_id(i) != v) {
    return Status::Internal("slot table does not match record contents");
  }
  return view.label(i);
}

Result<std::vector<uint8_t>> StoreSnapshot::PageSource::ReadPage(
    uint32_t page_id) const {
  std::shared_lock<std::shared_mutex> lock(state_->store->cc_->mu);
  return state_->store->manager_.ReadPageAsOf(page_id, state_->version);
}

Result<ImportedDocument> StoreSnapshot::MaterializeDocument() const {
  const RecordTables tables{state_->partition_of,   state_->records,
                            state_->slot_in_record, state_->labels,
                            state_->slot_size,      state_->source_bytes};
  // Holds each record's bytes across the decode of its slots; refreshed
  // per record by the callback.
  std::vector<uint8_t> scratch;
  return BuildDocumentFromTables(
      tables,
      [this, &scratch](uint32_t part)
          -> Result<std::pair<const uint8_t*, size_t>> {
        NATIX_ASSIGN_OR_RETURN(scratch, CopyRecordBytes(part));
        return std::pair<const uint8_t*, size_t>(scratch.data(),
                                                 scratch.size());
      },
      [this](NodeId v) -> Result<std::string_view> {
        const auto it = state_->overflow_content.find(v);
        if (it == state_->overflow_content.end()) {
          return Status::ParseError("overflow content of node " +
                                    std::to_string(v) + " is not available");
        }
        return std::string_view(it->second);
      });
}

Result<ImportedDocument> StoreSnapshot::CompactDocument(
    std::vector<NodeId>* old_to_new) const {
  NATIX_ASSIGN_OR_RETURN(const ImportedDocument old, MaterializeDocument());
  return CompactDocumentImpl(old, state_->slot_size, old_to_new);
}

namespace {

/// Record-backed navigation has no error channel (the bool axis moves
/// mean "no such node"); a decode failure can only be a corrupt record
/// or a table/record desync, both invariant violations. Fail fast.
[[noreturn]] void NavigatorFail(const char* what, const Status& st) {
  std::fprintf(stderr, "natix: record-backed navigation failed: %s: %s\n",
               what, st.message().c_str());
  std::abort();
}

void CheckCursor(const RecordView& view, uint32_t idx, NodeId current) {
  if (idx >= view.node_count() || view.node_id(idx) != current) {
    NavigatorFail("slot table does not match record contents",
                  Status::Internal("cursor desync at node " +
                                   std::to_string(current)));
  }
}

}  // namespace

Navigator::Navigator(const StoreSnapshot* snapshot, AccessStats* stats,
                     LruBufferPool* buffer, const PageProvider* provider)
    : snap_(snapshot),
      stats_(stats),
      buffer_(buffer),
      provider_(provider != nullptr ? provider : snapshot->page_provider()),
      current_(snapshot->RootNode()) {}

Navigator::Navigator(const NatixStore* store, AccessStats* stats,
                     LruBufferPool* buffer, const PageProvider* provider)
    : owned_(store->OpenSnapshot()),
      snap_(&*owned_),
      stats_(stats),
      buffer_(buffer),
      provider_(provider != nullptr ? provider : snap_->page_provider()),
      current_(snap_->RootNode()) {}

Navigator::~Navigator() { UnpinCurrent(); }

void Navigator::UnpinCurrent() {
  if (buffer_ != nullptr && pinned_page_ != 0xFFFFFFFFu) {
    buffer_->Unpin(pinned_page_, pinned_epoch_);
  }
  pinned_page_ = 0xFFFFFFFFu;
  pinned_epoch_ = 0;
}

void Navigator::SetView(const uint8_t* data, size_t size) {
  const Result<RecordView> view =
      RecordView::Parse(data, size, snap_->slot_size());
  if (!view.ok()) NavigatorFail("record bytes do not parse", view.status());
  view_ = *view;
  view_valid_ = true;
}

void Navigator::EnsureView() {
  if (view_valid_) return;
  // Initial position: copy straight out of the snapshot. No pool
  // traffic -- only record *crossings* touch the buffer, exactly like
  // the historical access model.
  Result<std::vector<uint8_t>> bytes =
      snap_->CopyRecordBytes(snap_->PartitionOf(current_));
  if (!bytes.ok()) {
    NavigatorFail("record of current node unreadable", bytes.status());
  }
  scratch_ = std::move(bytes).value();
  SetView(scratch_.data(), scratch_.size());
  idx_ = snap_->SlotOfNode(current_);
  CheckCursor(view_, idx_, current_);
}

void Navigator::Move(NodeId to) {
  const RecordId from_rec = snap_->RecordOfNode(current_);
  const RecordId to_rec = snap_->RecordOfNode(to);
  if (from_rec == to_rec) {
    ++stats_->intra_moves;
    current_ = to;
    idx_ = snap_->SlotOfNode(to);
    if (view_valid_) CheckCursor(view_, idx_, current_);
    return;
  }
  ++stats_->record_crossings;
  const uint32_t to_page = snap_->PageOfNode(to);
  if (snap_->PageOfNode(current_) != to_page) ++stats_->page_switches;
  view_valid_ = false;
  if (buffer_ != nullptr) {
    // Unpin before pinning: at most one frame is ever pinned per cursor,
    // and none during the Pin() itself, so eviction picks the same
    // victims as the Access()-only model and single-cursor stats stay
    // byte-identical.
    UnpinCurrent();
    const uint64_t epoch = snap_->PageEpochOf(to_page);
    const Result<const std::vector<uint8_t>*> frame =
        buffer_->Pin(to_page, provider_, epoch);
    if (!frame.ok()) NavigatorFail("page pin failed", frame.status());
    pinned_page_ = to_page;
    pinned_epoch_ = epoch;
    const std::vector<uint8_t>& bytes = **frame;
    if ((to_page & RecordManager::kJumboPageBit) != 0) {
      // A jumbo frame is the record itself.
      SetView(bytes.data(), bytes.size());
    } else {
      const Result<std::pair<uint32_t, uint16_t>> addr =
          snap_->AddressOfRecord(to_rec);
      if (!addr.ok()) {
        NavigatorFail("record address lookup failed", addr.status());
      }
      const Result<std::pair<uint32_t, uint32_t>> entry =
          Page::EntryInImage(bytes.data(), bytes.size(), addr->second);
      if (!entry.ok()) {
        NavigatorFail("record not found in pinned frame", entry.status());
      }
      SetView(bytes.data() + entry->first, entry->second);
    }
  } else {
    Result<std::vector<uint8_t>> bytes =
        snap_->CopyRecordBytes(snap_->PartitionOf(to));
    if (!bytes.ok()) {
      NavigatorFail("record of target node unreadable", bytes.status());
    }
    scratch_ = std::move(bytes).value();
    SetView(scratch_.data(), scratch_.size());
  }
  current_ = to;
  idx_ = snap_->SlotOfNode(to);
  CheckCursor(view_, idx_, current_);
}

NodeId Navigator::LinkTarget(int32_t link, RecordEdge edge) {
  if (link == kEdgeNone) return kInvalidNode;
  if (link == kEdgeRemote) {
    const std::optional<RecordProxy> proxy = view_.FindProxy(idx_, edge);
    if (!proxy.has_value()) {
      NavigatorFail("remote edge without a proxy",
                    Status::Internal("missing proxy entry for node " +
                                     std::to_string(current_)));
    }
    // The proxy names the target *node*; its current record and page are
    // resolved through the store's tables on the actual Move (the
    // record/slot hint encoded here can be stale after splits).
    return proxy->target_node;
  }
  return view_.node_id(static_cast<uint32_t>(link));
}

bool Navigator::ToFirstChild() {
  EnsureView();
  const NodeId c = LinkTarget(view_.first_child(idx_),
                              RecordEdge::kFirstChild);
  if (c == kInvalidNode) return false;
  Move(c);
  return true;
}

bool Navigator::ToNextSibling() {
  EnsureView();
  const NodeId s = LinkTarget(view_.next_sibling(idx_),
                              RecordEdge::kNextSibling);
  if (s == kInvalidNode) return false;
  Move(s);
  return true;
}

bool Navigator::ToPrevSibling() {
  EnsureView();
  const NodeId s = LinkTarget(view_.prev_sibling(idx_),
                              RecordEdge::kPrevSibling);
  if (s == kInvalidNode) return false;
  Move(s);
  return true;
}

bool Navigator::ToParent() {
  EnsureView();
  const int32_t plink = view_.parent(idx_);
  NodeId p = kInvalidNode;
  if (plink == kEdgeNone) {
    // Interval member: the parent lives in the aggregate's record
    // (kInvalidNode only in the record holding the document root).
    p = view_.aggregate().parent_node;
  } else if (plink == kEdgeRemote) {
    NavigatorFail("parent link marked remote",
                  Status::Internal("parent edges use the aggregate, never "
                                   "proxies"));
  } else {
    p = view_.node_id(static_cast<uint32_t>(plink));
  }
  if (p == kInvalidNode) return false;
  Move(p);
  return true;
}

NodeKind Navigator::CurrentKind() {
  EnsureView();
  return static_cast<NodeKind>(view_.kind(idx_));
}

int32_t Navigator::CurrentLabelId() {
  EnsureView();
  return view_.label(idx_);
}

}  // namespace natix
