#include "storage/store.h"

#include <algorithm>
#include <unordered_map>

#include "core/algorithm.h"
#include "xml/weight_model.h"

namespace natix {
namespace {

/// Serializes one partition into record bytes. `members` must list the
/// partition's nodes in document order (so parents precede their
/// in-record children). Adds `*overflow_bytes` of externalized content.
std::vector<uint8_t> SerializePartition(const ImportedDocument& doc,
                                        const std::vector<uint32_t>& partition_of,
                                        uint32_t part,
                                        const std::vector<NodeId>& members,
                                        uint32_t slot_size,
                                        uint64_t* overflow_bytes) {
  const Tree& tree = doc.tree;
  std::unordered_map<NodeId, int32_t> position;
  position.reserve(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    position[members[i]] = static_cast<int32_t>(i);
  }
  RecordBuilder builder(slot_size);
  *overflow_bytes = 0;
  for (const NodeId v : members) {
    const NodeId parent = tree.Parent(v);
    const int32_t parent_pos =
        (parent == kInvalidNode || partition_of[parent] != part)
            ? -1
            : position[parent];
    // A node is externalized iff its weight is smaller than what its
    // content would need inline (the weight model's overflow stub).
    const uint64_t inline_slots =
        1 + (static_cast<uint64_t>(doc.content_bytes[v]) + slot_size - 1) /
                slot_size;
    const bool overflow =
        doc.content_bytes[v] > 0 && inline_slots > tree.WeightOf(v);
    if (overflow) *overflow_bytes += doc.content_bytes[v];
    builder.AddNode(v, parent_pos, static_cast<uint8_t>(tree.KindOf(v)),
                    tree.LabelIdOf(v), doc.ContentOf(v), overflow);
    // One proxy entry per *run* of cut-away children sharing a target
    // record: adjacent siblings in the same foreign partition are
    // reachable through a single proxy (this is what sibling-interval
    // storage buys at the format level).
    uint32_t prev_target = part;
    for (NodeId c = tree.FirstChild(v); c != kInvalidNode;
         c = tree.NextSibling(c)) {
      const uint32_t target = partition_of[c];
      if (target != part && target != prev_target) {
        builder.AddProxy(target);
      }
      prev_target = target;
    }
  }
  return builder.Build();
}

}  // namespace

Result<NatixStore> NatixStore::Build(ImportedDocument doc,
                                     const Partitioning& partitioning,
                                     TotalWeight limit,
                                     const StoreOptions& options) {
  NATIX_ASSIGN_OR_RETURN(const PartitionAnalysis analysis,
                         Analyze(doc.tree, partitioning, limit));
  if (!analysis.feasible) {
    return Status::InvalidArgument(
        "cannot build a store from an infeasible partitioning (max "
        "partition weight " +
        std::to_string(analysis.max_weight) + " > " + std::to_string(limit) +
        ")");
  }

  NatixStore store;
  store.doc_ = std::make_unique<ImportedDocument>(std::move(doc));
  store.manager_ =
      RecordManager(options.page_size, options.allocation_lookback);
  store.options_ = options;
  store.page_size_ = options.page_size;
  store.limit_ = limit;
  store.partitioning_ = partitioning;
  store.partition_of_ = analysis.partition_of;
  store.records_.assign(partitioning.size(), RecordId{});
  store.record_overflow_.assign(partitioning.size(), 0);
  const Tree& tree = store.doc_->tree;

  // Group nodes by partition; preorder iteration makes each group sorted
  // in document order, so parents precede their in-record children.
  std::vector<std::vector<NodeId>> members(partitioning.size());
  for (const NodeId v : tree.PreorderNodes()) {
    members[store.partition_of_[v]].push_back(v);
  }

  // Insert records in document order of their first node (bulk-load
  // locality: partitions created close together land on nearby pages).
  const std::vector<uint32_t> pre_rank = tree.PreorderRanks();
  std::vector<uint32_t> order(partitioning.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return pre_rank[members[a].front()] < pre_rank[members[b].front()];
  });

  for (const uint32_t part : order) {
    uint64_t overflow = 0;
    const std::vector<uint8_t> bytes =
        SerializePartition(*store.doc_, store.partition_of_, part,
                           members[part], options.slot_size, &overflow);
    NATIX_ASSIGN_OR_RETURN(const RecordId rid, store.manager_.Insert(bytes));
    store.records_[part] = rid;
    store.record_overflow_[part] = overflow;
    store.overflow_bytes_ += overflow;
  }
  store.RecomputeOverflowPages();
  return store;
}

Status NatixStore::EnsureMutable() {
  if (inc_ != nullptr) return Status::OK();
  NATIX_ASSIGN_OR_RETURN(
      IncrementalPartitioner inc,
      IncrementalPartitioner::Create(&doc_->tree, limit_, partitioning_));
  inc_ = std::make_unique<IncrementalPartitioner>(std::move(inc));
  return Status::OK();
}

Result<NodeId> NatixStore::InsertBefore(NodeId parent, NodeId before,
                                        std::string_view label, NodeKind kind,
                                        std::string_view content) {
  NATIX_RETURN_NOT_OK(EnsureMutable());
  // Weight per the store's model; cap at the partition limit so any
  // content stays insertable (beyond the cap it is externalized, exactly
  // like the import-time overflow stub).
  const uint32_t cap = static_cast<uint32_t>(
      std::min<TotalWeight>(limit_, 0xFFFFFFFFull));
  const WeightModel model{options_.slot_size, options_.metadata_slots, cap};
  const Weight weight = model.NodeWeight(content.size());

  NATIX_ASSIGN_OR_RETURN(const NodeId id,
                         inc_->InsertBefore(parent, before, weight, label,
                                            kind));
  // Extend the document arrays for the new node.
  doc_->content_bytes.push_back(static_cast<uint32_t>(content.size()));
  doc_->content_offset.push_back(doc_->content_pool.size());
  doc_->content_pool.append(content);
  if (doc_->source_node.size() + 1 == doc_->tree.size()) {
    doc_->source_node.push_back(XmlDocument::kNoNode);
  }
  doc_->content_total_bytes += content.size();
  if (model.Overflows(content.size())) {
    ++doc_->overflow_nodes;
    doc_->overflow_bytes += content.size();
  }

  const PartitionDelta& delta = inc_->last_delta();
  partition_of_.resize(doc_->tree.size(), 0);
  if (records_.size() < inc_->interval_count()) {
    records_.resize(inc_->interval_count(), RecordId{});
    record_overflow_.resize(inc_->interval_count(), 0);
  }

  // Refresh membership for every touched partition *before* serializing
  // any of them: proxies point at the partitions of cut-away children,
  // which may themselves have moved this operation.
  std::vector<std::pair<uint32_t, std::vector<NodeId>>> groups;
  groups.reserve(delta.dirty.size() + delta.created.size());
  for (const uint32_t part : delta.dirty) {
    groups.emplace_back(part, inc_->PartitionNodes(part));
  }
  for (const uint32_t part : delta.created) {
    groups.emplace_back(part, inc_->PartitionNodes(part));
  }
  for (const auto& [part, nodes] : groups) {
    for (const NodeId v : nodes) partition_of_[v] = part;
  }

  for (const auto& [part, nodes] : groups) {
    uint64_t overflow = 0;
    const std::vector<uint8_t> bytes = SerializePartition(
        *doc_, partition_of_, part, nodes, options_.slot_size, &overflow);
    if (records_[part].valid()) {
      NATIX_RETURN_NOT_OK(manager_.Update(records_[part], bytes));
      ++records_rewritten_;
    } else {
      NATIX_ASSIGN_OR_RETURN(records_[part], manager_.Insert(bytes));
      ++records_created_;
    }
    overflow_bytes_ = overflow_bytes_ - record_overflow_[part] + overflow;
    record_overflow_[part] = overflow;
  }
  RecomputeOverflowPages();
  ++inserts_;
  return id;
}

UpdateStats NatixStore::update_stats() const {
  UpdateStats s;
  s.inserts = inserts_;
  s.splits = inc_ != nullptr ? inc_->split_count() : 0;
  s.records_rewritten = records_rewritten_;
  s.records_created = records_created_;
  s.relocations = manager_.relocation_count();
  s.compactions = manager_.compaction_count();
  return s;
}

bool Navigator::ToFirstChild() {
  const NodeId c = store_->tree().FirstChild(current_);
  if (c == kInvalidNode) return false;
  Move(c);
  return true;
}

bool Navigator::ToNextSibling() {
  const NodeId s = store_->tree().NextSibling(current_);
  if (s == kInvalidNode) return false;
  Move(s);
  return true;
}

bool Navigator::ToPrevSibling() {
  const NodeId s = store_->tree().PrevSibling(current_);
  if (s == kInvalidNode) return false;
  Move(s);
  return true;
}

bool Navigator::ToParent() {
  const NodeId p = store_->tree().Parent(current_);
  if (p == kInvalidNode) return false;
  Move(p);
  return true;
}

void Navigator::Move(NodeId to) {
  const RecordId from_rec = store_->RecordOfNode(current_);
  const RecordId to_rec = store_->RecordOfNode(to);
  if (from_rec == to_rec) {
    ++stats_->intra_moves;
  } else {
    ++stats_->record_crossings;
    const uint32_t to_page = store_->PageOfNode(to);
    if (store_->PageOfNode(current_) != to_page) ++stats_->page_switches;
    if (buffer_ != nullptr) buffer_->Access(to_page);
  }
  current_ = to;
}

}  // namespace natix
