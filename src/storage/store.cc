#include "storage/store.h"

#include <algorithm>
#include <unordered_map>

#include "common/bytes.h"
#include "core/algorithm.h"
#include "xml/weight_model.h"

namespace natix {
namespace {

/// Serializes one partition into record bytes. `members` must list the
/// partition's nodes in document order (so parents precede their
/// in-record children). Adds `*overflow_bytes` of externalized content.
std::vector<uint8_t> SerializePartition(const ImportedDocument& doc,
                                        const std::vector<uint32_t>& partition_of,
                                        uint32_t part,
                                        const std::vector<NodeId>& members,
                                        uint32_t slot_size,
                                        uint64_t* overflow_bytes) {
  const Tree& tree = doc.tree;
  std::unordered_map<NodeId, int32_t> position;
  position.reserve(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    position[members[i]] = static_cast<int32_t>(i);
  }
  RecordBuilder builder(slot_size);
  *overflow_bytes = 0;
  for (const NodeId v : members) {
    const NodeId parent = tree.Parent(v);
    const int32_t parent_pos =
        (parent == kInvalidNode || partition_of[parent] != part)
            ? -1
            : position[parent];
    // A node is externalized iff its weight is smaller than what its
    // content would need inline (the weight model's overflow stub).
    const uint64_t inline_slots =
        1 + (static_cast<uint64_t>(doc.content_bytes[v]) + slot_size - 1) /
                slot_size;
    const bool overflow =
        doc.content_bytes[v] > 0 && inline_slots > tree.WeightOf(v);
    if (overflow) *overflow_bytes += doc.content_bytes[v];
    builder.AddNode(v, parent_pos, static_cast<uint8_t>(tree.KindOf(v)),
                    tree.LabelIdOf(v), doc.ContentOf(v), overflow);
    // One proxy entry per *run* of cut-away children sharing a target
    // record: adjacent siblings in the same foreign partition are
    // reachable through a single proxy (this is what sibling-interval
    // storage buys at the format level).
    uint32_t prev_target = part;
    for (NodeId c = tree.FirstChild(v); c != kInvalidNode;
         c = tree.NextSibling(c)) {
      const uint32_t target = partition_of[c];
      if (target != part && target != prev_target) {
        builder.AddProxy(target);
      }
      prev_target = target;
    }
  }
  return builder.Build();
}

}  // namespace

Result<NatixStore> NatixStore::Build(ImportedDocument doc,
                                     const Partitioning& partitioning,
                                     TotalWeight limit,
                                     const StoreOptions& options) {
  if (options.page_size < Page::kMinPageSize + 16) {
    return Status::InvalidArgument("page size " +
                                   std::to_string(options.page_size) +
                                   " too small for the slotted page layout");
  }
  NATIX_ASSIGN_OR_RETURN(const PartitionAnalysis analysis,
                         Analyze(doc.tree, partitioning, limit));
  if (!analysis.feasible) {
    return Status::InvalidArgument(
        "cannot build a store from an infeasible partitioning (max "
        "partition weight " +
        std::to_string(analysis.max_weight) + " > " + std::to_string(limit) +
        ")");
  }

  NatixStore store;
  store.doc_ = std::make_unique<ImportedDocument>(std::move(doc));
  store.manager_ =
      RecordManager(options.page_size, options.allocation_lookback);
  store.options_ = options;
  store.page_size_ = options.page_size;
  store.limit_ = limit;
  store.partitioning_ = partitioning;
  store.partition_of_ = analysis.partition_of;
  store.records_.assign(partitioning.size(), RecordId{});
  store.record_overflow_.assign(partitioning.size(), 0);
  const Tree& tree = store.doc_->tree;

  // Group nodes by partition; preorder iteration makes each group sorted
  // in document order, so parents precede their in-record children.
  std::vector<std::vector<NodeId>> members(partitioning.size());
  for (const NodeId v : tree.PreorderNodes()) {
    members[store.partition_of_[v]].push_back(v);
  }

  // Insert records in document order of their first node (bulk-load
  // locality: partitions created close together land on nearby pages).
  const std::vector<uint32_t> pre_rank = tree.PreorderRanks();
  std::vector<uint32_t> order(partitioning.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return pre_rank[members[a].front()] < pre_rank[members[b].front()];
  });

  for (const uint32_t part : order) {
    uint64_t overflow = 0;
    const std::vector<uint8_t> bytes =
        SerializePartition(*store.doc_, store.partition_of_, part,
                           members[part], options.slot_size, &overflow);
    NATIX_ASSIGN_OR_RETURN(const RecordId rid, store.manager_.Insert(bytes));
    store.records_[part] = rid;
    store.record_overflow_[part] = overflow;
    store.overflow_bytes_ += overflow;
  }
  store.RecomputeOverflowPages();
  return store;
}

Status NatixStore::EnsureMutable() {
  if (inc_ != nullptr) return Status::OK();
  NATIX_ASSIGN_OR_RETURN(
      IncrementalPartitioner inc,
      IncrementalPartitioner::Create(&doc_->tree, limit_, partitioning_));
  inc_ = std::make_unique<IncrementalPartitioner>(std::move(inc));
  return Status::OK();
}

Result<NodeId> NatixStore::InsertBefore(NodeId parent, NodeId before,
                                        std::string_view label, NodeKind kind,
                                        std::string_view content) {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "store is poisoned: a WAL write failed, the log no longer matches "
        "memory; recover from the log to continue");
  }
  NATIX_RETURN_NOT_OK(EnsureMutable());
  // Weight per the store's model; cap at the partition limit so any
  // content stays insertable (beyond the cap it is externalized, exactly
  // like the import-time overflow stub).
  const uint32_t cap = static_cast<uint32_t>(
      std::min<TotalWeight>(limit_, 0xFFFFFFFFull));
  const WeightModel model{options_.slot_size, options_.metadata_slots, cap};
  const Weight weight = model.NodeWeight(content.size());

  NATIX_ASSIGN_OR_RETURN(const NodeId id,
                         inc_->InsertBefore(parent, before, weight, label,
                                            kind));
  // Extend the document arrays for the new node.
  doc_->content_bytes.push_back(static_cast<uint32_t>(content.size()));
  doc_->content_offset.push_back(doc_->content_pool.size());
  doc_->content_pool.append(content);
  if (doc_->source_node.size() + 1 == doc_->tree.size()) {
    doc_->source_node.push_back(XmlDocument::kNoNode);
  }
  doc_->content_total_bytes += content.size();
  if (model.Overflows(content.size())) {
    ++doc_->overflow_nodes;
    doc_->overflow_bytes += content.size();
  }

  const PartitionDelta& delta = inc_->last_delta();
  if (!delta.deleted.empty()) {
    // Insertions never delete partitions; a populated `deleted` list
    // means the partitioner and this store's record bookkeeping have
    // diverged, and silently ignoring it would leak records and leave
    // stale proxies. Fail loudly instead.
    return Status::Internal(
        "InsertBefore produced a PartitionDelta with " +
        std::to_string(delta.deleted.size()) +
        " deleted partitions; the store cannot apply deletions");
  }
  partition_of_.resize(doc_->tree.size(), 0);
  if (records_.size() < inc_->interval_count()) {
    records_.resize(inc_->interval_count(), RecordId{});
    record_overflow_.resize(inc_->interval_count(), 0);
  }

  // Refresh membership for every touched partition *before* serializing
  // any of them: proxies point at the partitions of cut-away children,
  // which may themselves have moved this operation.
  std::vector<std::pair<uint32_t, std::vector<NodeId>>> groups;
  groups.reserve(delta.dirty.size() + delta.created.size());
  for (const uint32_t part : delta.dirty) {
    groups.emplace_back(part, inc_->PartitionNodes(part));
  }
  for (const uint32_t part : delta.created) {
    groups.emplace_back(part, inc_->PartitionNodes(part));
  }
  for (const auto& [part, nodes] : groups) {
    for (const NodeId v : nodes) partition_of_[v] = part;
  }

  for (const auto& [part, nodes] : groups) {
    uint64_t overflow = 0;
    const std::vector<uint8_t> bytes = SerializePartition(
        *doc_, partition_of_, part, nodes, options_.slot_size, &overflow);
    if (records_[part].valid()) {
      NATIX_RETURN_NOT_OK(manager_.Update(records_[part], bytes));
      ++records_rewritten_;
    } else {
      NATIX_ASSIGN_OR_RETURN(records_[part], manager_.Insert(bytes));
      ++records_created_;
    }
    overflow_bytes_ = overflow_bytes_ - record_overflow_[part] + overflow;
    record_overflow_[part] = overflow;
  }
  RecomputeOverflowPages();
  ++inserts_;
  // Log after applying: the only crash points are backend writes, so an
  // op either reaches the log whole (replayable) or the tail is torn and
  // recovery stops before it -- as if the op never happened.
  if (wal_ != nullptr && !replaying_) {
    NATIX_RETURN_NOT_OK(LogInsert(parent, before, kind, label, content));
  }
  return id;
}

Status NatixStore::LogInsert(NodeId parent_logged, NodeId before,
                             NodeKind kind, std::string_view label,
                             std::string_view content) {
  std::vector<uint8_t> payload;
  ByteWriter w(&payload);
  w.U32(parent_logged);
  w.U32(before);
  w.U8(static_cast<uint8_t>(kind));
  w.Str(label);
  w.Str(content);
  Result<uint64_t> lsn = wal_->Append(WalEntryType::kInsertOp, payload);
  if (!lsn.ok()) {
    poisoned_ = true;
    return Status::FailedPrecondition("WAL append failed (" +
                                      lsn.status().message() +
                                      "); store is poisoned");
  }
  wal_op_bytes_ += kWalEntryHeaderSize + payload.size();
  ++wal_op_entries_;
  return Status::OK();
}

namespace {
constexpr uint32_t kCheckpointFormatVersion = 1;
}  // namespace

void NatixStore::SerializeCheckpointMeta(std::vector<uint8_t>* out) const {
  ByteWriter w(out);
  w.U32(kCheckpointFormatVersion);
  w.U64(options_.page_size);
  w.I32(options_.allocation_lookback);
  w.U32(options_.slot_size);
  w.U32(options_.metadata_slots);
  w.U64(limit_);
  doc_->tree.SerializeTo(out);
  w.U64(doc_->content_bytes.size());
  for (const uint32_t b : doc_->content_bytes) w.U32(b);
  w.U64(doc_->content_offset.size());
  for (const uint64_t off : doc_->content_offset) w.U64(off);
  w.Str(doc_->content_pool);
  w.U64(doc_->source_node.size());
  for (const XmlDocument::NodeIndex n : doc_->source_node) w.U32(n);
  w.U64(doc_->overflow_nodes);
  w.U64(doc_->overflow_bytes);
  w.U64(doc_->content_total_bytes);
  w.U64(doc_->source_bytes);
  w.U64(partitioning_.size());
  for (const SiblingInterval& iv : partitioning_) {
    w.U32(iv.first);
    w.U32(iv.last);
  }
  w.U8(inc_ != nullptr ? 1 : 0);
  if (inc_ != nullptr) {
    const IncrementalPartitioner::SavedState state = inc_->SaveState();
    w.U64(state.intervals.size());
    for (const IncrementalPartitioner::IntervalInfo& iv : state.intervals) {
      w.U32(iv.first);
      w.U32(iv.last);
      w.U64(iv.weight);
      w.U8(iv.alive ? 1 : 0);
    }
    w.U64(state.split_count);
  }
  w.U64(partition_of_.size());
  for (const uint32_t p : partition_of_) w.U32(p);
  w.U64(records_.size());
  for (const RecordId r : records_) w.U32(r.value);
  w.U64(record_overflow_.size());
  for (const uint64_t b : record_overflow_) w.U64(b);
  w.U64(overflow_bytes_);
  w.U64(inserts_);
  w.U64(records_rewritten_);
  w.U64(records_created_);
  manager_.SerializeMeta(&w);
}

Result<NatixStore> NatixStore::FromCheckpointMeta(const uint8_t* data,
                                                  size_t size) {
  ByteReader r(data, size);
  NATIX_ASSIGN_OR_RETURN(const uint32_t version, r.U32());
  if (version != kCheckpointFormatVersion) {
    return Status::ParseError("unsupported checkpoint format version " +
                              std::to_string(version));
  }
  NatixStore store;
  NATIX_ASSIGN_OR_RETURN(const uint64_t page_size, r.U64());
  NATIX_ASSIGN_OR_RETURN(store.options_.allocation_lookback, r.I32());
  NATIX_ASSIGN_OR_RETURN(store.options_.slot_size, r.U32());
  NATIX_ASSIGN_OR_RETURN(store.options_.metadata_slots, r.U32());
  store.options_.page_size = static_cast<size_t>(page_size);
  store.page_size_ = store.options_.page_size;
  NATIX_ASSIGN_OR_RETURN(store.limit_, r.U64());
  store.doc_ = std::make_unique<ImportedDocument>();
  NATIX_ASSIGN_OR_RETURN(store.doc_->tree, Tree::DeserializeFrom(&r));
  const size_t n = store.doc_->tree.size();
  NATIX_ASSIGN_OR_RETURN(uint64_t count, r.U64());
  if (count != n) {
    return Status::ParseError("checkpoint content_bytes size mismatch");
  }
  store.doc_->content_bytes.resize(n);
  for (size_t i = 0; i < n; ++i) {
    NATIX_ASSIGN_OR_RETURN(store.doc_->content_bytes[i], r.U32());
  }
  NATIX_ASSIGN_OR_RETURN(count, r.U64());
  if (count != n) {
    return Status::ParseError("checkpoint content_offset size mismatch");
  }
  store.doc_->content_offset.resize(n);
  for (size_t i = 0; i < n; ++i) {
    NATIX_ASSIGN_OR_RETURN(store.doc_->content_offset[i], r.U64());
  }
  NATIX_ASSIGN_OR_RETURN(store.doc_->content_pool, r.Str());
  for (size_t i = 0; i < n; ++i) {
    const uint64_t off = store.doc_->content_offset[i];
    const uint64_t len = store.doc_->content_bytes[i];
    if (off > store.doc_->content_pool.size() ||
        len > store.doc_->content_pool.size() - off) {
      return Status::ParseError("checkpoint content slice out of range");
    }
  }
  NATIX_ASSIGN_OR_RETURN(count, r.U64());
  if (count != 0 && count != n) {
    return Status::ParseError("checkpoint source_node size mismatch");
  }
  store.doc_->source_node.resize(static_cast<size_t>(count));
  for (size_t i = 0; i < count; ++i) {
    NATIX_ASSIGN_OR_RETURN(store.doc_->source_node[i], r.U32());
  }
  NATIX_ASSIGN_OR_RETURN(store.doc_->overflow_nodes, r.U64());
  NATIX_ASSIGN_OR_RETURN(store.doc_->overflow_bytes, r.U64());
  NATIX_ASSIGN_OR_RETURN(store.doc_->content_total_bytes, r.U64());
  NATIX_ASSIGN_OR_RETURN(store.doc_->source_bytes, r.U64());
  NATIX_ASSIGN_OR_RETURN(count, r.U64());
  if (count > r.remaining() / 8) {
    return Status::ParseError("checkpoint partitioning size exceeds payload");
  }
  store.partitioning_.Reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    SiblingInterval iv;
    NATIX_ASSIGN_OR_RETURN(iv.first, r.U32());
    NATIX_ASSIGN_OR_RETURN(iv.last, r.U32());
    store.partitioning_.Add(iv);
  }
  NATIX_ASSIGN_OR_RETURN(const uint8_t has_inc, r.U8());
  if (has_inc > 1) {
    return Status::ParseError("checkpoint partitioner flag corrupt");
  }
  if (has_inc == 1) {
    IncrementalPartitioner::SavedState state;
    NATIX_ASSIGN_OR_RETURN(count, r.U64());
    if (count > r.remaining() / 17) {
      return Status::ParseError("checkpoint interval table exceeds payload");
    }
    state.intervals.resize(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      IncrementalPartitioner::IntervalInfo& iv = state.intervals[i];
      NATIX_ASSIGN_OR_RETURN(iv.first, r.U32());
      NATIX_ASSIGN_OR_RETURN(iv.last, r.U32());
      NATIX_ASSIGN_OR_RETURN(iv.weight, r.U64());
      NATIX_ASSIGN_OR_RETURN(const uint8_t alive, r.U8());
      if (alive > 1) {
        return Status::ParseError("checkpoint interval alive flag corrupt");
      }
      iv.alive = alive == 1;
    }
    NATIX_ASSIGN_OR_RETURN(state.split_count, r.U64());
    NATIX_ASSIGN_OR_RETURN(
        IncrementalPartitioner inc,
        IncrementalPartitioner::Restore(&store.doc_->tree, store.limit_,
                                        state));
    store.inc_ = std::make_unique<IncrementalPartitioner>(std::move(inc));
  }
  NATIX_ASSIGN_OR_RETURN(count, r.U64());
  if (count != n) {
    return Status::ParseError("checkpoint partition_of size mismatch");
  }
  store.partition_of_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    NATIX_ASSIGN_OR_RETURN(store.partition_of_[i], r.U32());
  }
  NATIX_ASSIGN_OR_RETURN(count, r.U64());
  if (count > r.remaining() / 4) {
    return Status::ParseError("checkpoint record table exceeds payload");
  }
  store.records_.resize(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    NATIX_ASSIGN_OR_RETURN(store.records_[i].value, r.U32());
  }
  NATIX_ASSIGN_OR_RETURN(count, r.U64());
  if (count != store.records_.size()) {
    return Status::ParseError("checkpoint overflow table size mismatch");
  }
  store.record_overflow_.resize(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    NATIX_ASSIGN_OR_RETURN(store.record_overflow_[i], r.U64());
  }
  for (size_t i = 0; i < n; ++i) {
    if (store.partition_of_[i] >= store.records_.size()) {
      return Status::ParseError("checkpoint partition_of out of range");
    }
  }
  NATIX_ASSIGN_OR_RETURN(store.overflow_bytes_, r.U64());
  NATIX_ASSIGN_OR_RETURN(store.inserts_, r.U64());
  NATIX_ASSIGN_OR_RETURN(store.records_rewritten_, r.U64());
  NATIX_ASSIGN_OR_RETURN(store.records_created_, r.U64());
  NATIX_ASSIGN_OR_RETURN(store.manager_, RecordManager::RestoreMeta(&r));
  if (!r.AtEnd()) {
    return Status::ParseError("trailing bytes after checkpoint metadata");
  }
  store.RecomputeOverflowPages();
  return store;
}

Status NatixStore::EnableDurability(std::unique_ptr<FileBackend> backend) {
  if (wal_ != nullptr) {
    return Status::FailedPrecondition("store already has a WAL attached");
  }
  NATIX_ASSIGN_OR_RETURN(WalWriter writer, WalWriter::Create(backend.get()));
  backend_ = std::move(backend);
  wal_ = std::make_unique<WalWriter>(std::move(writer));
  wal_record_base_ = manager_.record_bytes_written();
  // The initial checkpoint captures the bulk-loaded store (Build marked
  // every page dirty), making the log self-contained from entry one.
  return Checkpoint();
}

Status NatixStore::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("store has no WAL attached");
  }
  if (poisoned_) {
    return Status::FailedPrecondition(
        "store is poisoned: a WAL write failed; recover from the log");
  }
  // Any failure past the Begin entry leaves an incomplete checkpoint in
  // the log. Recovery ignores it, but only as long as nothing else is
  // appended afterwards -- so every failure here poisons the store.
  auto poison = [this](const Status& st) {
    poisoned_ = true;
    return Status::FailedPrecondition("checkpoint failed (" + st.message() +
                                      "); store is poisoned");
  };
  std::vector<uint8_t> meta;
  SerializeCheckpointMeta(&meta);
  const Result<uint64_t> begin_lsn =
      wal_->Append(WalEntryType::kCheckpointBegin, meta);
  if (!begin_lsn.ok()) return poison(begin_lsn.status());
  uint64_t bytes = kWalEntryHeaderSize + meta.size();
  const std::vector<uint32_t> dirty = manager_.buffer().DirtyPagesSorted();
  for (const uint32_t page_id : dirty) {
    Result<std::vector<uint8_t>> image = manager_.PageImage(page_id);
    if (!image.ok()) return poison(image.status());
    std::vector<uint8_t> payload;
    ByteWriter w(&payload);
    w.U32(page_id);
    if (!image->empty()) w.Raw(image->data(), image->size());
    const Result<uint64_t> lsn =
        wal_->Append(WalEntryType::kPageImage, payload);
    if (!lsn.ok()) return poison(lsn.status());
    bytes += kWalEntryHeaderSize + payload.size();
  }
  std::vector<uint8_t> end_payload;
  ByteWriter w(&end_payload);
  w.U64(*begin_lsn);
  w.U64(dirty.size());
  const Result<uint64_t> end_lsn =
      wal_->Append(WalEntryType::kCheckpointEnd, end_payload);
  if (!end_lsn.ok()) return poison(end_lsn.status());
  bytes += kWalEntryHeaderSize + end_payload.size();
  const Status synced = wal_->Sync();
  if (!synced.ok()) return poison(synced);
  manager_.buffer().MarkAllClean();
  wal_checkpoint_bytes_ += bytes;
  ++wal_checkpoints_;
  return Status::OK();
}

Result<NatixStore> NatixStore::Recover(std::unique_ptr<FileBackend> backend) {
  NATIX_ASSIGN_OR_RETURN(WalReader reader, WalReader::Open(backend.get()));
  struct PendingCheckpoint {
    uint64_t begin_lsn = 0;
    uint64_t end_lsn = 0;
    std::vector<uint8_t> meta;
    std::vector<std::vector<uint8_t>> images;
  };
  std::vector<PendingCheckpoint> complete;
  std::unique_ptr<PendingCheckpoint> pending;
  std::vector<WalEntry> ops;
  while (true) {
    NATIX_ASSIGN_OR_RETURN(std::optional<WalEntry> entry, reader.Next());
    if (!entry.has_value()) break;
    switch (entry->type) {
      case WalEntryType::kInsertOp:
        if (pending != nullptr) {
          return Status::ParseError("op entry inside a checkpoint at LSN " +
                                    std::to_string(entry->lsn));
        }
        ops.push_back(std::move(*entry));
        break;
      case WalEntryType::kCheckpointBegin:
        if (pending != nullptr) {
          return Status::ParseError("nested checkpoint at LSN " +
                                    std::to_string(entry->lsn));
        }
        pending = std::make_unique<PendingCheckpoint>();
        pending->begin_lsn = entry->lsn;
        pending->meta = std::move(entry->payload);
        break;
      case WalEntryType::kPageImage:
        if (pending == nullptr) {
          return Status::ParseError("page image outside a checkpoint at LSN " +
                                    std::to_string(entry->lsn));
        }
        pending->images.push_back(std::move(entry->payload));
        break;
      case WalEntryType::kCheckpointEnd: {
        if (pending == nullptr) {
          return Status::ParseError(
              "checkpoint end without a begin at LSN " +
              std::to_string(entry->lsn));
        }
        ByteReader r(entry->payload.data(), entry->payload.size());
        NATIX_ASSIGN_OR_RETURN(const uint64_t begin_lsn, r.U64());
        NATIX_ASSIGN_OR_RETURN(const uint64_t image_count, r.U64());
        if (begin_lsn != pending->begin_lsn ||
            image_count != pending->images.size()) {
          return Status::ParseError("checkpoint end does not match its begin");
        }
        pending->end_lsn = entry->lsn;
        complete.push_back(std::move(*pending));
        pending.reset();
        break;
      }
    }
  }
  if (complete.empty()) {
    return Status::FailedPrecondition(
        "log contains no complete checkpoint; the store never became "
        "durable");
  }
  const uint64_t restore_lsn = complete.back().end_lsn;
  NATIX_ASSIGN_OR_RETURN(
      NatixStore store,
      FromCheckpointMeta(complete.back().meta.data(),
                         complete.back().meta.size()));
  // Page images apply cumulatively: each checkpoint wrote only the pages
  // dirtied since the previous one, so the union over all complete
  // checkpoints (later images superseding earlier ones) reconstructs
  // every page as of the final checkpoint.
  for (const PendingCheckpoint& cp : complete) {
    for (const std::vector<uint8_t>& image : cp.images) {
      ByteReader r(image.data(), image.size());
      NATIX_ASSIGN_OR_RETURN(const uint32_t page_id, r.U32());
      NATIX_RETURN_NOT_OK(store.manager_.ApplyPageImage(
          page_id, image.data() + 4, image.size() - 4));
    }
  }
  NATIX_RETURN_NOT_OK(store.manager_.FinishRestore());
  for (size_t part = 0; part < store.records_.size(); ++part) {
    if (store.records_[part].valid() &&
        !store.manager_.Get(store.records_[part]).ok()) {
      return Status::ParseError("record of partition " +
                                std::to_string(part) +
                                " does not resolve after restore");
    }
  }
  // Drop the torn tail (if any) so the re-attached writer appends after
  // the last valid entry.
  NATIX_ASSIGN_OR_RETURN(const uint64_t log_size, backend->Size());
  if (reader.valid_end() < log_size) {
    NATIX_RETURN_NOT_OK(backend->Truncate(reader.valid_end()));
  }
  NATIX_ASSIGN_OR_RETURN(WalWriter writer,
                         WalWriter::Attach(backend.get(), reader.next_lsn()));
  store.backend_ = std::move(backend);
  store.wal_ = std::make_unique<WalWriter>(std::move(writer));
  // Replay the op tail through the normal insert path; replaying_
  // suppresses re-logging.
  store.replaying_ = true;
  for (const WalEntry& op : ops) {
    if (op.lsn <= restore_lsn) continue;
    ByteReader r(op.payload.data(), op.payload.size());
    NATIX_ASSIGN_OR_RETURN(const uint32_t parent, r.U32());
    NATIX_ASSIGN_OR_RETURN(const uint32_t before, r.U32());
    NATIX_ASSIGN_OR_RETURN(const uint8_t kind, r.U8());
    NATIX_ASSIGN_OR_RETURN(const std::string label, r.Str());
    NATIX_ASSIGN_OR_RETURN(const std::string content, r.Str());
    if (!r.AtEnd() ||
        kind > static_cast<uint8_t>(NodeKind::kProcessingInstruction)) {
      return Status::ParseError("malformed op entry at LSN " +
                                std::to_string(op.lsn));
    }
    const Result<NodeId> id = store.InsertBefore(
        parent, before, label, static_cast<NodeKind>(kind), content);
    if (!id.ok()) {
      return Status::Internal("replay failed at LSN " +
                              std::to_string(op.lsn) + ": " +
                              id.status().message());
    }
  }
  store.replaying_ = false;
  store.wal_record_base_ = store.manager_.record_bytes_written();
  return store;
}

WalStats NatixStore::wal_stats() const {
  WalStats s;
  s.wal_bytes = wal_ != nullptr ? wal_->bytes_written() : 0;
  s.op_bytes = wal_op_bytes_;
  s.checkpoint_bytes = wal_checkpoint_bytes_;
  s.op_entries = wal_op_entries_;
  s.checkpoints = wal_checkpoints_;
  s.record_bytes = manager_.record_bytes_written() - wal_record_base_;
  return s;
}

UpdateStats NatixStore::update_stats() const {
  UpdateStats s;
  s.inserts = inserts_;
  s.splits = inc_ != nullptr ? inc_->split_count() : 0;
  s.records_rewritten = records_rewritten_;
  s.records_created = records_created_;
  s.relocations = manager_.relocation_count();
  s.compactions = manager_.compaction_count();
  return s;
}

bool Navigator::ToFirstChild() {
  const NodeId c = store_->tree().FirstChild(current_);
  if (c == kInvalidNode) return false;
  Move(c);
  return true;
}

bool Navigator::ToNextSibling() {
  const NodeId s = store_->tree().NextSibling(current_);
  if (s == kInvalidNode) return false;
  Move(s);
  return true;
}

bool Navigator::ToPrevSibling() {
  const NodeId s = store_->tree().PrevSibling(current_);
  if (s == kInvalidNode) return false;
  Move(s);
  return true;
}

bool Navigator::ToParent() {
  const NodeId p = store_->tree().Parent(current_);
  if (p == kInvalidNode) return false;
  Move(p);
  return true;
}

void Navigator::Move(NodeId to) {
  const RecordId from_rec = store_->RecordOfNode(current_);
  const RecordId to_rec = store_->RecordOfNode(to);
  if (from_rec == to_rec) {
    ++stats_->intra_moves;
  } else {
    ++stats_->record_crossings;
    const uint32_t to_page = store_->PageOfNode(to);
    if (store_->PageOfNode(current_) != to_page) ++stats_->page_switches;
    if (buffer_ != nullptr) buffer_->Access(to_page);
  }
  current_ = to;
}

}  // namespace natix
