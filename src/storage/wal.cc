#include "storage/wal.h"

#include <ctime>
#include <cstring>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/retry.h"

namespace natix {

namespace {
/// CRC over the non-length header fields and the payload. The length is
/// excluded because it is validated structurally (a wrong length either
/// truncates the read or desynchronizes the following LSN check).
uint32_t EntryCrc(uint64_t lsn, uint32_t type, const uint8_t* payload,
                  size_t payload_len) {
  uint8_t hdr[12];
  std::memcpy(hdr, &lsn, 8);
  std::memcpy(hdr + 8, &type, 4);
  const uint32_t crc = Crc32(hdr, sizeof(hdr));
  return Crc32(payload, payload_len, crc);
}

/// Appends one encoded entry to `buf`.
void EncodeEntry(std::vector<uint8_t>* buf, uint64_t lsn, WalEntryType type,
                 const std::vector<uint8_t>& payload) {
  const uint32_t type_raw = static_cast<uint32_t>(type);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = EntryCrc(lsn, type_raw, payload.data(), payload.size());
  buf->reserve(buf->size() + kWalEntryHeaderSize + payload.size());
  ByteWriter w(buf);
  w.U64(lsn);
  w.U32(type_raw);
  w.U32(len);
  w.U32(crc);
  if (!payload.empty()) w.Raw(payload.data(), payload.size());
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Create(FileBackend* backend,
                                                     SyncPolicy policy) {
  NATIX_ASSIGN_OR_RETURN(const uint64_t size, backend->Size());
  if (size != 0) {
    return Status::FailedPrecondition(
        "refusing to start a fresh WAL on a non-empty backend (" +
        std::to_string(size) + " bytes); recover it instead");
  }
  NATIX_RETURN_NOT_OK(backend->Append(kWalMagic, sizeof(kWalMagic)));
  std::unique_ptr<WalWriter> writer(new WalWriter(backend, 1, policy));
  writer->bytes_written_ = sizeof(kWalMagic);
  writer->StartFlusher();
  return writer;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Attach(FileBackend* backend,
                                                     uint64_t next_lsn,
                                                     SyncPolicy policy) {
  NATIX_ASSIGN_OR_RETURN(const uint64_t size, backend->Size());
  if (size < kWalHeaderSize) {
    return Status::FailedPrecondition("cannot attach to a log with no header");
  }
  if (next_lsn == 0) {
    return Status::InvalidArgument("next_lsn must be positive");
  }
  std::unique_ptr<WalWriter> writer(
      new WalWriter(backend, next_lsn, policy));
  writer->StartFlusher();
  return writer;
}

void WalWriter::StartFlusher() {
  if (policy_.mode == SyncPolicy::Mode::kGroupCommit) {
    flusher_ = std::thread(&WalWriter::FlusherMain, this);
  }
}

WalWriter::~WalWriter() {
  {
    std::lock_guard<std::mutex> l(mu_);
    shutdown_ = true;
    flusher_cv_.notify_all();
  }
  if (flusher_.joinable()) flusher_.join();
  // Clean-shutdown flush: make buffered / appended-but-unsynced entries
  // durable. A dead writer (sticky io_error_) is left as-is.
  std::unique_lock<std::mutex> l(mu_);
  if (io_error_.ok() &&
      (pending_entries_ > 0 || durable_lsn_ < appended_lsn_)) {
    (void)WaitDurableLocked(l, buffered_lsn_);
  }
}

Status WalWriter::RetryingAppend(const uint8_t* data, size_t size,
                                 uint64_t* retries) {
  NATIX_ASSIGN_OR_RETURN(const uint64_t base, backend_->Size());
  const Status st = RetryTransient(
      kIoRetryPolicy, [&] { return backend_->Append(data, size); },
      [&](int) {
        ++*retries;
        // A failed attempt may have landed a prefix; drop it so the
        // retry does not splice duplicate bytes into the middle of the
        // log.
        return backend_->Truncate(base);
      });
  if (IsBackpressure(st)) {
    // Disk full: not retried (the device will keep saying no) and not
    // fatal. A real ENOSPC write may land a partial transfer, so
    // restore the log to its pre-append length -- backpressure must
    // leave no trace. A failed restore IS fatal and takes over.
    NATIX_RETURN_NOT_OK(backend_->Truncate(base));
  }
  return st;
}

Status WalWriter::FlushBatchLocked(std::unique_lock<std::mutex>& lock) {
  while (flushing_) durable_cv_.wait(lock);
  NATIX_RETURN_NOT_OK(io_error_);
  if (pending_entries_ == 0 && durable_lsn_ >= appended_lsn_) {
    return Status::OK();
  }
  std::vector<uint8_t> batch;
  batch.swap(pending_);
  const uint64_t batch_entries = pending_entries_;
  pending_entries_ = 0;
  const uint64_t target_lsn = buffered_lsn_;
  const uint64_t durable_before = durable_lsn_;
  flushing_ = true;
  lock.unlock();
  uint64_t retries = 0;
  Status st = Status::OK();
  if (!batch.empty()) st = RetryingAppend(batch.data(), batch.size(), &retries);
  const bool landed = st.ok();
  if (st.ok()) st = backend_->Sync();
  lock.lock();
  flushing_ = false;
  transient_retries_ += retries;
  if (landed) {
    bytes_written_ += batch.size();
    if (target_lsn > appended_lsn_) appended_lsn_ = target_lsn;
  }
  if (st.ok()) {
    ++fsyncs_;
    if (target_lsn > durable_lsn_) durable_lsn_ = target_lsn;
    const uint64_t covered = durable_lsn_ - durable_before;
    if (covered > 0) {
      ++sync_batches_;
      synced_entries_ += covered;
    }
  } else if (IsBackpressure(st) && !landed) {
    // Disk full before anything landed (RetryingAppend truncated the
    // attempt back): backpressure, not death. The batch goes back in
    // FRONT of whatever buffered meanwhile -- its entries carry the
    // earlier LSNs -- and a later flush retries it once the operator
    // frees space. The flusher stops spinning until then.
    pending_.insert(pending_.begin(), batch.begin(), batch.end());
    pending_entries_ += batch_entries;
    pending_since_ = std::chrono::steady_clock::now();
    backpressure_ = true;
  } else {
    // A disk-full *fsync* after the batch landed leaves appended bytes
    // whose durability is unknowable; that, like every other failure,
    // is sticky.
    io_error_ = st;
  }
  durable_cv_.notify_all();
  return st;
}

Status WalWriter::WaitDurableLocked(std::unique_lock<std::mutex>& lock,
                                    uint64_t lsn) {
  if (lsn > buffered_lsn_) lsn = buffered_lsn_;
  while (durable_lsn_ < lsn) {
    NATIX_RETURN_NOT_OK(io_error_);
    if (flushing_) {
      durable_cv_.wait(lock);
      continue;
    }
    NATIX_RETURN_NOT_OK(FlushBatchLocked(lock));
  }
  return io_error_;
}

void WalWriter::FlusherMain() {
  std::unique_lock<std::mutex> l(mu_);
  const auto window = std::chrono::microseconds(policy_.window_us);
  while (true) {
    flusher_cv_.wait(l, [&] {
      return shutdown_ ||
             (pending_entries_ > 0 && io_error_.ok() && !backpressure_);
    });
    if (shutdown_) return;  // the destructor drains the remainder
    // Let the commit window fill unless a size threshold already
    // tripped; new appends re-signal, so thresholds are re-checked.
    const auto deadline = pending_since_ + window;
    while (!shutdown_ && io_error_.ok() && pending_entries_ > 0 &&
           pending_entries_ < policy_.max_ops &&
           pending_.size() < policy_.max_bytes &&
           std::chrono::steady_clock::now() < deadline) {
      flusher_cv_.wait_until(l, deadline);
    }
    if (shutdown_) return;
    if (pending_entries_ > 0 && io_error_.ok() && !backpressure_) {
      (void)FlushBatchLocked(l);
    }
  }
}

Result<uint64_t> WalWriter::Append(WalEntryType type,
                                   const std::vector<uint8_t>& payload) {
  std::unique_lock<std::mutex> l(mu_);
  NATIX_RETURN_NOT_OK(io_error_);
  // Each explicit append is one fresh chance for a previously-full disk:
  // un-gate the flusher so the backlog is retried exactly once.
  backpressure_ = false;
  const uint64_t lsn = next_lsn_;

  if (policy_.mode == SyncPolicy::Mode::kSyncOnCheckpoint) {
    // Legacy unbuffered path: one entry is exactly one backend Append
    // (an independent fault-injection point), nothing is fsynced.
    std::vector<uint8_t> buf;
    EncodeEntry(&buf, lsn, type, payload);
    while (flushing_) durable_cv_.wait(l);
    NATIX_RETURN_NOT_OK(io_error_);
    flushing_ = true;
    l.unlock();
    uint64_t retries = 0;
    const Status st = RetryingAppend(buf.data(), buf.size(), &retries);
    l.lock();
    flushing_ = false;
    transient_retries_ += retries;
    if (!st.ok()) {
      // Disk full is backpressure, not death -- but this unbuffered mode
      // has nowhere to park the entry, so the op is simply not logged.
      // (The store accounts for the resulting memory/log divergence.)
      if (!IsBackpressure(st)) io_error_ = st;
      durable_cv_.notify_all();
      return st;
    }
    ++next_lsn_;
    buffered_lsn_ = lsn;
    appended_lsn_ = lsn;
    bytes_written_ += buf.size();
    durable_cv_.notify_all();
    return lsn;
  }

  EncodeEntry(&pending_, lsn, type, payload);
  if (pending_entries_++ == 0) {
    pending_since_ = std::chrono::steady_clock::now();
  }
  ++next_lsn_;
  buffered_lsn_ = lsn;
  if (policy_.mode == SyncPolicy::Mode::kSyncEveryOp) {
    NATIX_RETURN_NOT_OK(WaitDurableLocked(l, lsn));
    return lsn;
  }
  // kGroupCommit: hand the batch to the flusher; the caller acknowledges
  // via the durable watermark.
  flusher_cv_.notify_one();
  return lsn;
}

Result<uint64_t> WalWriter::AppendGroup(std::vector<WalGroupEntry> entries) {
  if (entries.empty()) {
    return Status::InvalidArgument("empty WAL entry group");
  }
  std::unique_lock<std::mutex> l(mu_);
  while (flushing_) durable_cv_.wait(l);
  NATIX_RETURN_NOT_OK(io_error_);
  backpressure_ = false;
  // Stage buffered ops (earlier LSNs) plus the whole group as one
  // buffer: a single backend Append is the atomic install.
  std::vector<uint8_t> buf;
  buf.swap(pending_);
  const uint64_t staged_entries = pending_entries_;
  const size_t staged_bytes = buf.size();
  const uint64_t prev_next = next_lsn_;
  const uint64_t prev_buffered = buffered_lsn_;
  pending_entries_ = 0;
  const uint64_t first = next_lsn_;
  for (const WalGroupEntry& e : entries) {
    EncodeEntry(&buf, next_lsn_, e.type, e.payload);
    buffered_lsn_ = next_lsn_++;
  }
  const uint64_t target_lsn = buffered_lsn_;
  const uint64_t durable_before = durable_lsn_;
  flushing_ = true;
  l.unlock();
  uint64_t retries = 0;
  Status st = RetryingAppend(buf.data(), buf.size(), &retries);
  const bool landed = st.ok();
  if (st.ok()) st = backend_->Sync();
  l.lock();
  flushing_ = false;
  transient_retries_ += retries;
  if (!st.ok()) {
    if (IsBackpressure(st) && !landed) {
      // Disk full before the group touched the log: nothing landed and
      // no group LSN was ever observable, so unwind the staging -- the
      // previously-buffered prefix goes back to pending_ (the group's
      // bytes are chopped off the shared buffer) and the LSN counters
      // rewind. The caller may retry the whole group later.
      buf.resize(staged_bytes);
      pending_.swap(buf);
      pending_entries_ = staged_entries;
      if (staged_entries > 0) {
        pending_since_ = std::chrono::steady_clock::now();
      }
      next_lsn_ = prev_next;
      buffered_lsn_ = prev_buffered;
      backpressure_ = true;
    } else {
      // A failed fsync after the group landed leaves a group whose
      // durability is unknowable: sticky, like any other failure.
      io_error_ = st;
    }
    durable_cv_.notify_all();
    return st;
  }
  ++fsyncs_;
  bytes_written_ += buf.size();
  appended_lsn_ = target_lsn;
  durable_lsn_ = target_lsn;
  const uint64_t covered = target_lsn - durable_before;
  if (covered > 0) {
    ++sync_batches_;
    synced_entries_ += covered;
  }
  durable_cv_.notify_all();
  return first;
}

Status WalWriter::Sync() {
  std::unique_lock<std::mutex> l(mu_);
  NATIX_RETURN_NOT_OK(io_error_);
  backpressure_ = false;
  return WaitDurableLocked(l, buffered_lsn_);
}

Status WalWriter::WaitDurable(uint64_t lsn) {
  std::unique_lock<std::mutex> l(mu_);
  backpressure_ = false;
  return WaitDurableLocked(l, lsn);
}

uint64_t WalWriter::durable_lsn() const {
  std::lock_guard<std::mutex> l(mu_);
  return durable_lsn_;
}

uint64_t WalWriter::last_lsn() const {
  std::lock_guard<std::mutex> l(mu_);
  return buffered_lsn_;
}

uint64_t WalWriter::next_lsn() const {
  std::lock_guard<std::mutex> l(mu_);
  return next_lsn_;
}

uint64_t WalWriter::bytes_written() const {
  std::lock_guard<std::mutex> l(mu_);
  return bytes_written_;
}

uint64_t WalWriter::fsync_count() const {
  std::lock_guard<std::mutex> l(mu_);
  return fsyncs_;
}

uint64_t WalWriter::sync_batch_count() const {
  std::lock_guard<std::mutex> l(mu_);
  return sync_batches_;
}

uint64_t WalWriter::synced_entry_count() const {
  std::lock_guard<std::mutex> l(mu_);
  return synced_entries_;
}

uint64_t WalWriter::transient_retry_count() const {
  std::lock_guard<std::mutex> l(mu_);
  return transient_retries_;
}

Result<WalReader> WalReader::Open(FileBackend* backend) {
  NATIX_ASSIGN_OR_RETURN(const uint64_t size, backend->Size());
  if (size < kWalHeaderSize) {
    return Status::ParseError("WAL too small to hold a header (" +
                              std::to_string(size) + " bytes)");
  }
  uint8_t magic[kWalHeaderSize];
  NATIX_RETURN_NOT_OK(backend->ReadAt(0, magic, sizeof(magic)));
  if (std::memcmp(magic, kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::ParseError("bad WAL magic");
  }
  return WalReader(backend, size);
}

Result<std::optional<WalEntry>> WalReader::Next() {
  if (done_) return std::optional<WalEntry>();
  if (pos_ == size_) {  // clean end of log
    done_ = true;
    return std::optional<WalEntry>();
  }
  auto torn = [&]() -> Result<std::optional<WalEntry>> {
    done_ = true;
    tail_is_torn_ = true;
    return std::optional<WalEntry>();
  };
  if (size_ - pos_ < kWalEntryHeaderSize) return torn();
  uint8_t hdr[kWalEntryHeaderSize];
  NATIX_RETURN_NOT_OK(backend_->ReadAt(pos_, hdr, sizeof(hdr)));
  uint64_t lsn;
  uint32_t type_raw, len, crc;
  std::memcpy(&lsn, hdr, 8);
  std::memcpy(&type_raw, hdr + 8, 4);
  std::memcpy(&len, hdr + 12, 4);
  std::memcpy(&crc, hdr + 16, 4);
  if (lsn != next_lsn_) return torn();
  if (len > size_ - pos_ - kWalEntryHeaderSize) return torn();
  WalEntry entry;
  entry.lsn = lsn;
  entry.payload.resize(len);
  if (len > 0) {
    NATIX_RETURN_NOT_OK(backend_->ReadAt(pos_ + kWalEntryHeaderSize,
                                         entry.payload.data(), len));
  }
  if (EntryCrc(lsn, type_raw, entry.payload.data(), len) != crc) {
    return torn();
  }
  if (type_raw < static_cast<uint32_t>(WalEntryType::kInsertOp) ||
      type_raw > static_cast<uint32_t>(WalEntryType::kRenameOp)) {
    return torn();
  }
  entry.type = static_cast<WalEntryType>(type_raw);
  pos_ += kWalEntryHeaderSize + len;
  valid_end_ = pos_;
  ++next_lsn_;
  return std::optional<WalEntry>(std::move(entry));
}

}  // namespace natix
