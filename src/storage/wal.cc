#include "storage/wal.h"

#include <cstring>

#include "common/bytes.h"
#include "common/crc32.h"

namespace natix {

namespace {
/// CRC over the non-length header fields and the payload. The length is
/// excluded because it is validated structurally (a wrong length either
/// truncates the read or desynchronizes the following LSN check).
uint32_t EntryCrc(uint64_t lsn, uint32_t type, const uint8_t* payload,
                  size_t payload_len) {
  uint8_t hdr[12];
  std::memcpy(hdr, &lsn, 8);
  std::memcpy(hdr + 8, &type, 4);
  const uint32_t crc = Crc32(hdr, sizeof(hdr));
  return Crc32(payload, payload_len, crc);
}
}  // namespace

Result<WalWriter> WalWriter::Create(FileBackend* backend) {
  NATIX_ASSIGN_OR_RETURN(const uint64_t size, backend->Size());
  if (size != 0) {
    return Status::FailedPrecondition(
        "refusing to start a fresh WAL on a non-empty backend (" +
        std::to_string(size) + " bytes); recover it instead");
  }
  NATIX_RETURN_NOT_OK(backend->Append(kWalMagic, sizeof(kWalMagic)));
  WalWriter writer(backend, 1);
  writer.bytes_written_ = sizeof(kWalMagic);
  return writer;
}

Result<WalWriter> WalWriter::Attach(FileBackend* backend, uint64_t next_lsn) {
  NATIX_ASSIGN_OR_RETURN(const uint64_t size, backend->Size());
  if (size < kWalHeaderSize) {
    return Status::FailedPrecondition("cannot attach to a log with no header");
  }
  if (next_lsn == 0) {
    return Status::InvalidArgument("next_lsn must be positive");
  }
  return WalWriter(backend, next_lsn);
}

Result<uint64_t> WalWriter::Append(WalEntryType type,
                                   const std::vector<uint8_t>& payload) {
  const uint64_t lsn = next_lsn_;
  const uint32_t type_raw = static_cast<uint32_t>(type);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = EntryCrc(lsn, type_raw, payload.data(), payload.size());
  // One buffer, one backend Append: the entry either lands whole or is a
  // torn tail the reader can detect.
  std::vector<uint8_t> buf;
  buf.reserve(kWalEntryHeaderSize + payload.size());
  ByteWriter w(&buf);
  w.U64(lsn);
  w.U32(type_raw);
  w.U32(len);
  w.U32(crc);
  if (!payload.empty()) w.Raw(payload.data(), payload.size());
  NATIX_RETURN_NOT_OK(backend_->Append(buf.data(), buf.size()));
  ++next_lsn_;
  bytes_written_ += buf.size();
  return lsn;
}

Result<WalReader> WalReader::Open(FileBackend* backend) {
  NATIX_ASSIGN_OR_RETURN(const uint64_t size, backend->Size());
  if (size < kWalHeaderSize) {
    return Status::ParseError("WAL too small to hold a header (" +
                              std::to_string(size) + " bytes)");
  }
  uint8_t magic[kWalHeaderSize];
  NATIX_RETURN_NOT_OK(backend->ReadAt(0, magic, sizeof(magic)));
  if (std::memcmp(magic, kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::ParseError("bad WAL magic");
  }
  return WalReader(backend, size);
}

Result<std::optional<WalEntry>> WalReader::Next() {
  if (done_) return std::optional<WalEntry>();
  if (pos_ == size_) {  // clean end of log
    done_ = true;
    return std::optional<WalEntry>();
  }
  auto torn = [&]() -> Result<std::optional<WalEntry>> {
    done_ = true;
    tail_is_torn_ = true;
    return std::optional<WalEntry>();
  };
  if (size_ - pos_ < kWalEntryHeaderSize) return torn();
  uint8_t hdr[kWalEntryHeaderSize];
  NATIX_RETURN_NOT_OK(backend_->ReadAt(pos_, hdr, sizeof(hdr)));
  uint64_t lsn;
  uint32_t type_raw, len, crc;
  std::memcpy(&lsn, hdr, 8);
  std::memcpy(&type_raw, hdr + 8, 4);
  std::memcpy(&len, hdr + 12, 4);
  std::memcpy(&crc, hdr + 16, 4);
  if (lsn != next_lsn_) return torn();
  if (len > size_ - pos_ - kWalEntryHeaderSize) return torn();
  WalEntry entry;
  entry.lsn = lsn;
  entry.payload.resize(len);
  if (len > 0) {
    NATIX_RETURN_NOT_OK(backend_->ReadAt(pos_ + kWalEntryHeaderSize,
                                         entry.payload.data(), len));
  }
  if (EntryCrc(lsn, type_raw, entry.payload.data(), len) != crc) {
    return torn();
  }
  if (type_raw < static_cast<uint32_t>(WalEntryType::kInsertOp) ||
      type_raw > static_cast<uint32_t>(WalEntryType::kRenameOp)) {
    return torn();
  }
  entry.type = static_cast<WalEntryType>(type_raw);
  pos_ += kWalEntryHeaderSize + len;
  valid_end_ = pos_;
  ++next_lsn_;
  return std::optional<WalEntry>(std::move(entry));
}

}  // namespace natix
