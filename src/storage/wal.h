#ifndef NATIX_STORAGE_WAL_H_
#define NATIX_STORAGE_WAL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/file_backend.h"

namespace natix {

/// WAL entry types. The log is a single append-only stream holding both
/// logical record operations and physical checkpoint data.
enum class WalEntryType : uint32_t {
  /// A logical InsertBefore (parent, before, kind, weight, label,
  /// content). Replayed through the normal insert path during recovery.
  kInsertOp = 1,
  /// Opens a checkpoint: payload is the store's full metadata snapshot
  /// (tree, partitioner intervals, record-manager tables).
  kCheckpointBegin = 2,
  /// One dirty page image: u32 page id (jumbo bit included), raw bytes.
  kPageImage = 3,
  /// Seals a checkpoint: (begin LSN, image count). A checkpoint without
  /// its End entry is incomplete and ignored by recovery.
  kCheckpointEnd = 4,
  /// A logical DeleteSubtree (u32 root). Replayed through the normal
  /// delete path during recovery.
  kDeleteOp = 5,
  /// A logical MoveSubtree (u32 node, u32 parent, u32 before).
  kMoveOp = 6,
  /// A logical Rename (u32 node, string label).
  kRenameOp = 7,
};

/// A decoded WAL entry.
struct WalEntry {
  uint64_t lsn = 0;
  WalEntryType type = WalEntryType::kInsertOp;
  std::vector<uint8_t> payload;
};

/// When the writer fsyncs, i.e. when an appended entry becomes durable
/// and may be acknowledged. The contract: an entry survives power loss
/// iff its LSN is <= durable_lsn() at the moment of the crash.
struct SyncPolicy {
  enum class Mode : uint8_t {
    /// Fsync before every Append() returns. Strongest guarantee, one
    /// fsync per op: Append() == acknowledgement.
    kSyncEveryOp = 0,
    /// Buffer entries in memory; a background flusher appends and
    /// fsyncs a whole batch once `window_us` elapses or `max_ops` /
    /// `max_bytes` accumulate. Append() returns immediately with the
    /// LSN; the op is acknowledged durable only once durable_lsn()
    /// reaches it (WaitDurable / Sync). One fsync covers many ops.
    kGroupCommit = 1,
    /// Legacy behavior, unsafe by default: every entry is appended
    /// unbuffered (one entry = one backend Append, an independent
    /// fault-injection point) but nothing is fsynced until an explicit
    /// Sync() -- in practice the next checkpoint. Every op since the
    /// last checkpoint can vanish on power failure.
    kSyncOnCheckpoint = 2,
  };

  Mode mode = Mode::kGroupCommit;
  /// kGroupCommit: max time an entry waits in the buffer before its
  /// batch is flushed and fsynced.
  uint32_t window_us = 200;
  /// kGroupCommit: flush as soon as this many entries are buffered...
  uint32_t max_ops = 64;
  /// ...or this many buffered bytes.
  uint32_t max_bytes = 1u << 20;

  static SyncPolicy EveryOp() {
    SyncPolicy p;
    p.mode = Mode::kSyncEveryOp;
    return p;
  }
  static SyncPolicy GroupCommit(uint32_t window_us = 200,
                                uint32_t max_ops = 64,
                                uint32_t max_bytes = 1u << 20) {
    SyncPolicy p;
    p.mode = Mode::kGroupCommit;
    p.window_us = window_us;
    p.max_ops = max_ops == 0 ? 1 : max_ops;
    p.max_bytes = max_bytes == 0 ? 1 : max_bytes;
    return p;
  }
  static SyncPolicy OnCheckpoint() {
    SyncPolicy p;
    p.mode = Mode::kSyncOnCheckpoint;
    return p;
  }

  const char* ModeName() const {
    switch (mode) {
      case Mode::kSyncEveryOp: return "every_op";
      case Mode::kGroupCommit: return "group_commit";
      case Mode::kSyncOnCheckpoint: return "sync_on_checkpoint";
    }
    return "unknown";
  }
};

/// One staged entry of an atomically installed group (checkpoints).
struct WalGroupEntry {
  WalEntryType type;
  std::vector<uint8_t> payload;
};

/// On-disk format. The file opens with an 8-byte magic, then entries:
///   [lsn u64][type u32][payload_len u32][crc u32][payload bytes]
/// with crc = CRC32 over (lsn, type, payload). LSNs are assigned 1, 2,
/// 3, ... by the single writer; the reader enforces this, so any torn,
/// bit-flipped or half-written tail fails either the length, the CRC or
/// the LSN check and the log has a well-defined valid prefix.
inline constexpr uint8_t kWalMagic[8] = {'N', 'A', 'T', 'X',
                                         'W', 'A', 'L', '1'};
inline constexpr size_t kWalHeaderSize = 8;
inline constexpr size_t kWalEntryHeaderSize = 20;

/// Appends entries to the log under a SyncPolicy and tracks the durable
/// watermark. There is one logical writer (the store mutator); under
/// kGroupCommit a dedicated flusher thread batches the backend Append +
/// fsync across a commit window, so every member is mutex-guarded.
///
/// Transient backend failures (StatusCode::kUnavailable -- a flaky but
/// alive device) are retried with exponential backoff, truncating back
/// to the pre-append offset between attempts so a half-landed attempt is
/// never duplicated. Disk full (StatusCode::kResourceExhausted) is
/// backpressure, not death: the failed append is truncated back so it
/// leaves no trace, buffered batches go back into the pending buffer,
/// and the error surfaces to the caller while the writer stays alive --
/// the next Append/Sync after space is freed retries the backlog. Any
/// other failure -- and transient exhaustion -- is sticky: the writer is
/// dead and every later call returns the error.
class WalWriter {
 public:
  /// Starts a fresh log on an empty backend (writes the magic).
  static Result<std::unique_ptr<WalWriter>> Create(
      FileBackend* backend, SyncPolicy policy = SyncPolicy());

  /// Continues an existing log after recovery: the next entry gets
  /// `next_lsn`. The backend must already hold a valid log prefix.
  static Result<std::unique_ptr<WalWriter>> Attach(
      FileBackend* backend, uint64_t next_lsn,
      SyncPolicy policy = SyncPolicy());

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one entry; returns its LSN. Durability of the returned LSN
  /// depends on the policy: kSyncEveryOp returns only once the entry is
  /// fsynced; kGroupCommit returns immediately (ack via WaitDurable /
  /// durable_lsn); kSyncOnCheckpoint appends unbuffered and unsynced.
  Result<uint64_t> Append(WalEntryType type,
                          const std::vector<uint8_t>& payload);

  /// Atomically installs a group of entries with consecutive LSNs as
  /// ONE backend append followed by one fsync, flushing any buffered
  /// ops (earlier LSNs) in the same write so on-disk order matches LSN
  /// order. Used for checkpoints: the group is staged in memory off the
  /// commit path, and a crash mid-install leaves a dangling checkpoint
  /// that recovery discards wholesale. Returns the first entry's LSN.
  Result<uint64_t> AppendGroup(std::vector<WalGroupEntry> entries);

  /// Flushes every buffered entry and fsyncs; on return every appended
  /// LSN is durable (durable_lsn() == last_lsn()) or the writer is dead.
  Status Sync();

  /// Blocks until `lsn` is durable or the writer dies. Drives the flush
  /// inline when no flusher thread exists.
  Status WaitDurable(uint64_t lsn);

  /// Highest LSN known fsynced -- the acknowledgement watermark.
  uint64_t durable_lsn() const;
  /// LSN of the last entry accepted by Append/AppendGroup.
  uint64_t last_lsn() const;

  uint64_t next_lsn() const;
  /// Total log bytes this writer has appended (headers + payloads), the
  /// numerator of the write-amplification metric.
  uint64_t bytes_written() const;

  const SyncPolicy& policy() const { return policy_; }
  /// Number of backend Sync() calls issued.
  uint64_t fsync_count() const;
  /// Fsyncs that made at least one new entry durable, and the entries
  /// they covered: synced_entry_count / sync_batch_count is the mean
  /// commit batch size.
  uint64_t sync_batch_count() const;
  uint64_t synced_entry_count() const;
  /// Transient (kUnavailable) append attempts absorbed by retry.
  uint64_t transient_retry_count() const;

 private:
  WalWriter(FileBackend* backend, uint64_t next_lsn, SyncPolicy policy)
      : backend_(backend),
        policy_(policy),
        next_lsn_(next_lsn),
        buffered_lsn_(next_lsn - 1),
        appended_lsn_(next_lsn - 1),
        durable_lsn_(next_lsn - 1) {}

  void StartFlusher();
  void FlusherMain();
  /// Appends with bounded retry of transient failures. Called with the
  /// lock released and flushing_ held by this thread (exclusive backend
  /// access); `retries` accumulates absorbed attempts.
  Status RetryingAppend(const uint8_t* data, size_t size,
                        uint64_t* retries);
  /// Swaps out the pending buffer, appends + fsyncs it with the lock
  /// released, then advances durable_lsn_. Also issues a bare fsync
  /// when entries are appended but unsynced (kSyncOnCheckpoint).
  Status FlushBatchLocked(std::unique_lock<std::mutex>& lock);
  /// Blocks until durable_lsn_ >= lsn, flushing inline as needed.
  Status WaitDurableLocked(std::unique_lock<std::mutex>& lock,
                           uint64_t lsn);

  FileBackend* backend_;
  const SyncPolicy policy_;

  mutable std::mutex mu_;
  /// Wakes the flusher thread (new pending data / shutdown).
  std::condition_variable flusher_cv_;
  /// Wakes WaitDurable waiters and threads queued behind flushing_.
  std::condition_variable durable_cv_;

  /// Encoded entries not yet handed to the backend.
  std::vector<uint8_t> pending_;
  uint64_t pending_entries_ = 0;
  std::chrono::steady_clock::time_point pending_since_{};

  uint64_t next_lsn_;      // next LSN to assign
  uint64_t buffered_lsn_;  // last LSN accepted (buffered or appended)
  uint64_t appended_lsn_;  // last LSN handed to backend Append
  uint64_t durable_lsn_;   // last LSN known fsynced
  /// True while a thread runs backend I/O with the lock released; all
  /// backend access is serialized through this flag.
  bool flushing_ = false;
  bool shutdown_ = false;
  /// Sticky first I/O failure; the writer is dead once set.
  Status io_error_ = Status::OK();
  /// Set when a flush hit disk-full (the batch went back to pending_):
  /// the flusher thread stops spinning on the full disk and the next
  /// explicit Append/Sync/WaitDurable retries the backlog once.
  bool backpressure_ = false;

  uint64_t bytes_written_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t sync_batches_ = 0;
  uint64_t synced_entries_ = 0;
  uint64_t transient_retries_ = 0;

  std::thread flusher_;
};

/// Scans a log front to back, stopping at the first invalid entry. After
/// the scan, valid_end() is the byte offset just past the last valid
/// entry -- recovery truncates the backend there to drop a torn tail.
class WalReader {
 public:
  /// Verifies the magic; the cursor starts at the first entry.
  static Result<WalReader> Open(FileBackend* backend);

  /// Next valid entry, or nullopt at end of the valid prefix (clean end
  /// or torn tail -- check tail_is_torn()). Never returns a Status for
  /// corruption; a bad entry simply ends the log.
  Result<std::optional<WalEntry>> Next();

  /// Byte offset just past the last valid entry read so far.
  uint64_t valid_end() const { return valid_end_; }
  /// True when the scan stopped because of trailing bytes that do not
  /// form a valid entry (crash damage), false at a clean end.
  bool tail_is_torn() const { return tail_is_torn_; }
  /// LSN the next appended entry should carry (last valid LSN + 1).
  uint64_t next_lsn() const { return next_lsn_; }

 private:
  WalReader(FileBackend* backend, uint64_t size)
      : backend_(backend), size_(size) {}

  FileBackend* backend_;
  uint64_t size_;
  uint64_t pos_ = kWalHeaderSize;
  uint64_t valid_end_ = kWalHeaderSize;
  uint64_t next_lsn_ = 1;
  bool tail_is_torn_ = false;
  bool done_ = false;
};

}  // namespace natix

#endif  // NATIX_STORAGE_WAL_H_
