#ifndef NATIX_STORAGE_WAL_H_
#define NATIX_STORAGE_WAL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "storage/file_backend.h"

namespace natix {

/// WAL entry types. The log is a single append-only stream holding both
/// logical record operations and physical checkpoint data.
enum class WalEntryType : uint32_t {
  /// A logical InsertBefore (parent, before, kind, weight, label,
  /// content). Replayed through the normal insert path during recovery.
  kInsertOp = 1,
  /// Opens a checkpoint: payload is the store's full metadata snapshot
  /// (tree, partitioner intervals, record-manager tables).
  kCheckpointBegin = 2,
  /// One dirty page image: u32 page id (jumbo bit included), raw bytes.
  kPageImage = 3,
  /// Seals a checkpoint: (begin LSN, image count). A checkpoint without
  /// its End entry is incomplete and ignored by recovery.
  kCheckpointEnd = 4,
  /// A logical DeleteSubtree (u32 root). Replayed through the normal
  /// delete path during recovery.
  kDeleteOp = 5,
  /// A logical MoveSubtree (u32 node, u32 parent, u32 before).
  kMoveOp = 6,
  /// A logical Rename (u32 node, string label).
  kRenameOp = 7,
};

/// A decoded WAL entry.
struct WalEntry {
  uint64_t lsn = 0;
  WalEntryType type = WalEntryType::kInsertOp;
  std::vector<uint8_t> payload;
};

/// On-disk format. The file opens with an 8-byte magic, then entries:
///   [lsn u64][type u32][payload_len u32][crc u32][payload bytes]
/// with crc = CRC32 over (lsn, type, payload). LSNs are assigned 1, 2,
/// 3, ... by the single writer; the reader enforces this, so any torn,
/// bit-flipped or half-written tail fails either the length, the CRC or
/// the LSN check and the log has a well-defined valid prefix.
inline constexpr uint8_t kWalMagic[8] = {'N', 'A', 'T', 'X',
                                         'W', 'A', 'L', '1'};
inline constexpr size_t kWalHeaderSize = 8;
inline constexpr size_t kWalEntryHeaderSize = 20;

/// Appends entries to the log. One WAL entry is exactly one backend
/// Append(), so every entry is an independent fault-injection point.
class WalWriter {
 public:
  /// Starts a fresh log on an empty backend (writes the magic).
  static Result<WalWriter> Create(FileBackend* backend);

  /// Continues an existing log after recovery: the next entry gets
  /// `next_lsn`. The backend must already hold a valid log prefix.
  static Result<WalWriter> Attach(FileBackend* backend, uint64_t next_lsn);

  /// Appends one entry; returns its LSN.
  Result<uint64_t> Append(WalEntryType type,
                          const std::vector<uint8_t>& payload);

  Status Sync() { return backend_->Sync(); }

  uint64_t next_lsn() const { return next_lsn_; }
  /// Total log bytes this writer has appended (headers + payloads), the
  /// numerator of the write-amplification metric.
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  WalWriter(FileBackend* backend, uint64_t next_lsn)
      : backend_(backend), next_lsn_(next_lsn) {}

  FileBackend* backend_;
  uint64_t next_lsn_;
  uint64_t bytes_written_ = 0;
};

/// Scans a log front to back, stopping at the first invalid entry. After
/// the scan, valid_end() is the byte offset just past the last valid
/// entry -- recovery truncates the backend there to drop a torn tail.
class WalReader {
 public:
  /// Verifies the magic; the cursor starts at the first entry.
  static Result<WalReader> Open(FileBackend* backend);

  /// Next valid entry, or nullopt at end of the valid prefix (clean end
  /// or torn tail -- check tail_is_torn()). Never returns a Status for
  /// corruption; a bad entry simply ends the log.
  Result<std::optional<WalEntry>> Next();

  /// Byte offset just past the last valid entry read so far.
  uint64_t valid_end() const { return valid_end_; }
  /// True when the scan stopped because of trailing bytes that do not
  /// form a valid entry (crash damage), false at a clean end.
  bool tail_is_torn() const { return tail_is_torn_; }
  /// LSN the next appended entry should carry (last valid LSN + 1).
  uint64_t next_lsn() const { return next_lsn_; }

 private:
  WalReader(FileBackend* backend, uint64_t size)
      : backend_(backend), size_(size) {}

  FileBackend* backend_;
  uint64_t size_;
  uint64_t pos_ = kWalHeaderSize;
  uint64_t valid_end_ = kWalHeaderSize;
  uint64_t next_lsn_ = 1;
  bool tail_is_torn_ = false;
  bool done_ = false;
};

}  // namespace natix

#endif  // NATIX_STORAGE_WAL_H_
