#include "storage/page_integrity.h"

#include <cstring>
#include <string>

#include "common/crc32.h"

namespace natix {

namespace {

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void StoreU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }

}  // namespace

const char* PageDamageName(PageDamage damage) {
  switch (damage) {
    case PageDamage::kNone:
      return "clean";
    case PageDamage::kTorn:
      return "torn page (head/tail epoch mismatch)";
    case PageDamage::kChecksum:
      return "checksum mismatch (bit rot or zeroed sector)";
  }
  return "unknown";
}

std::vector<uint8_t> SealPageCell(uint32_t epoch, const uint8_t* payload,
                                  size_t size) {
  std::vector<uint8_t> cell(size + kPageCellOverhead);
  StoreU32(cell.data(), kPageCellMagic);
  StoreU32(cell.data() + 4, epoch);
  if (size > 0) std::memcpy(cell.data() + 8, payload, size);
  StoreU32(cell.data() + 8 + size, epoch);
  StoreU32(cell.data() + 12 + size, Crc32(cell.data(), cell.size() - 4));
  return cell;
}

PageDamage ClassifyPageCell(const uint8_t* cell, size_t size,
                            uint32_t* epoch_out) {
  if (size < kPageCellOverhead) return PageDamage::kChecksum;
  const bool magic_ok = LoadU32(cell) == kPageCellMagic;
  const uint32_t head_epoch = LoadU32(cell + 4);
  const uint32_t tail_epoch = LoadU32(cell + size - 8);
  if (magic_ok && epoch_out != nullptr) *epoch_out = head_epoch;
  if (LoadU32(cell + size - 4) == Crc32(cell, size - 4) && magic_ok) {
    // A consistent CRC over mismatched epochs cannot come from
    // SealPageCell; classify it as torn all the same.
    return head_epoch == tail_epoch ? PageDamage::kNone : PageDamage::kTorn;
  }
  // The head stamp survived but the generations disagree: an interrupted
  // overwrite left old bytes behind the new head. Anything else (bad
  // magic, matching epochs with a failed CRC) is rot.
  if (magic_ok && head_epoch != tail_epoch) return PageDamage::kTorn;
  return PageDamage::kChecksum;
}

Result<std::vector<uint8_t>> OpenPageCell(const uint8_t* cell, size_t size,
                                          uint32_t* epoch_out,
                                          PageDamage* damage_out) {
  const PageDamage damage = ClassifyPageCell(cell, size, epoch_out);
  if (damage_out != nullptr) *damage_out = damage;
  if (damage != PageDamage::kNone) {
    return Status::ParseError(std::string("page cell damaged: ") +
                              PageDamageName(damage));
  }
  return std::vector<uint8_t>(cell + 8, cell + size - 8);
}

}  // namespace natix
