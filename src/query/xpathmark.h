#ifndef NATIX_QUERY_XPATHMARK_H_
#define NATIX_QUERY_XPATHMARK_H_

#include <string_view>
#include <vector>

namespace natix {

/// One query of the paper's query-performance experiment.
struct XPathMarkQuery {
  std::string_view id;    // "Q1".."Q7"
  std::string_view text;  // the XPath expression from Table 3
};

/// The seven XPathMark queries (Franceschet, XSym 2005) the paper runs
/// against the XMark document in Table 3. Pure navigation queries: child,
/// descendant and ancestor axes, wildcard steps, structural predicates.
const std::vector<XPathMarkQuery>& XPathMarkQueries();

}  // namespace natix

#endif  // NATIX_QUERY_XPATHMARK_H_
