#include "query/evaluator.h"

#include <algorithm>

namespace natix {

StoreQueryEvaluator::StoreQueryEvaluator(const StoreSnapshot* snapshot,
                                         AccessStats* stats,
                                         LruBufferPool* buffer,
                                         const PageProvider* provider)
    : store_(nullptr),
      stats_(stats),
      buffer_(buffer),
      provider_(provider),
      snap_(snapshot) {
  nav_.emplace(snap_, stats_, buffer_, provider_);
}

StoreQueryEvaluator::StoreQueryEvaluator(const NatixStore* store,
                                         AccessStats* stats,
                                         LruBufferPool* buffer,
                                         const PageProvider* provider)
    : store_(store),
      stats_(stats),
      buffer_(buffer),
      provider_(provider),
      owned_(store->OpenSnapshot()),
      snap_(&*owned_) {
  nav_.emplace(snap_, stats_, buffer_, provider_);
}

void StoreQueryEvaluator::MaybeReopen() {
  if (store_ == nullptr || owned_->version() == store_->version()) return;
  // Drop the navigator first: it may hold a pool pin keyed to the old
  // snapshot's epochs, and must not outlive the snapshot it borrows.
  nav_.reset();
  owned_.emplace(store_->OpenSnapshot());
  snap_ = &*owned_;
  nav_.emplace(snap_, stats_, buffer_, provider_);
  ranks_valid_ = false;
}

void StoreQueryEvaluator::RefreshRanks() {
  if (ranks_valid_ && preorder_rank_.size() == snap_->node_count()) return;
  ranks_valid_ = true;
  if (!snap_->preorder_ranks().empty()) {
    preorder_rank_ = snap_->preorder_ranks();
    return;
  }
  // The snapshot was opened over a released document: walk the records
  // once with a throwaway cursor (ranks are bookkeeping, not part of the
  // measured navigation).
  preorder_rank_.assign(snap_->node_count(), 0);
  AccessStats scratch;
  Navigator walker(snap_, &scratch);
  uint32_t rank = 0;
  preorder_rank_[walker.current()] = rank++;
  int depth = 0;
  for (;;) {
    if (walker.ToFirstChild()) {
      ++depth;
      preorder_rank_[walker.current()] = rank++;
      continue;
    }
    for (;;) {
      if (walker.ToNextSibling()) {
        preorder_rank_[walker.current()] = rank++;
        break;
      }
      if (depth == 0) return;
      walker.ToParent();
      --depth;
    }
  }
}

Result<std::vector<NodeId>> StoreQueryEvaluator::Evaluate(
    const PathExpr& query) {
  if (!query.absolute) {
    return Status::InvalidArgument(
        "top-level queries must be absolute paths");
  }
  if (query.steps.empty()) {
    return Status::InvalidArgument("empty query");
  }
  // In auto-refresh mode the store may have mutated (InsertBefore) since
  // construction or the previous query; re-pin the latest version and
  // recompute document-order ranks so Normalize() stays correct
  // mid-update-stream.
  MaybeReopen();
  RefreshRanks();
  // The initial context is the virtual document node (the parent of the
  // root element), encoded as kInvalidNode. It can survive intermediate
  // descendant-or-self::node() steps but is never part of the final
  // result.
  std::vector<NodeId> result = EvalSteps({kInvalidNode}, query.steps);
  std::erase(result, kInvalidNode);
  return result;
}

std::vector<NodeId> StoreQueryEvaluator::EvalSteps(
    std::vector<NodeId> context, const std::vector<Step>& steps) {
  for (const Step& step : steps) {
    std::vector<NodeId> candidates;
    for (const NodeId c : context) {
      CollectAxis(c, step, &candidates);
    }
    Normalize(&candidates);
    if (step.predicates.empty()) {
      context = std::move(candidates);
      continue;
    }
    std::vector<NodeId> filtered;
    filtered.reserve(candidates.size());
    for (const NodeId v : candidates) {
      bool keep = true;
      for (const PredicateExpr& pred : step.predicates) {
        if (!EvalPredicate(v, pred)) {
          keep = false;
          break;
        }
      }
      if (keep) filtered.push_back(v);
    }
    context = std::move(filtered);
  }
  return context;
}

bool StoreQueryEvaluator::MatchesCurrent(const Step& step) {
  const NodeKind kind = nav_->CurrentKind();
  switch (step.test) {
    case NodeTestKind::kName:
      return kind == NodeKind::kElement &&
             snap_->LabelNameOf(nav_->CurrentLabelId()) == step.name;
    case NodeTestKind::kAnyElement:
      return kind == NodeKind::kElement;
    case NodeTestKind::kAnyNode:
      // The XPath child/descendant axes never deliver attribute nodes.
      return kind != NodeKind::kAttribute;
  }
  return false;
}

bool StoreQueryEvaluator::MatchesTest(NodeId v, const Step& step) const {
  const Result<NodeKind> kind = snap_->KindOfNode(v);
  if (!kind.ok()) return false;
  switch (step.test) {
    case NodeTestKind::kName: {
      if (*kind != NodeKind::kElement) return false;
      const Result<int32_t> label = snap_->LabelIdOfNode(v);
      return label.ok() && snap_->LabelNameOf(*label) == step.name;
    }
    case NodeTestKind::kAnyElement:
      return *kind == NodeKind::kElement;
    case NodeTestKind::kAnyNode:
      return *kind != NodeKind::kAttribute;
  }
  return false;
}

void StoreQueryEvaluator::CollectAxis(NodeId context, const Step& step,
                                      std::vector<NodeId>* out) {
  // Virtual document node: only downward axes make sense.
  if (context == kInvalidNode) {
    const NodeId root = snap_->RootNode();
    if (root == kInvalidNode) return;
    switch (step.axis) {
      case Axis::kChild:
        nav_->JumpTo(root);
        if (MatchesCurrent(step)) out->push_back(root);
        return;
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf: {
        // The document node's descendants are all nodes; for
        // descendant-or-self::node() the document node itself is also in
        // the result (this is what makes the // abbreviation able to
        // reach the root element via the following child step).
        if (step.axis == Axis::kDescendantOrSelf &&
            step.test == NodeTestKind::kAnyNode) {
          out->push_back(kInvalidNode);
        }
        Step scan = step;
        scan.axis = Axis::kDescendantOrSelf;
        CollectAxis(root, scan, out);
        return;
      }
      default:
        return;  // parent/ancestor/self of the document node: empty
    }
  }

  switch (step.axis) {
    case Axis::kSelf:
      if (MatchesTest(context, step)) out->push_back(context);
      return;
    case Axis::kChild: {
      nav_->JumpTo(context);
      if (!nav_->ToFirstChild()) return;
      do {
        if (MatchesCurrent(step)) out->push_back(nav_->current());
      } while (nav_->ToNextSibling());
      return;
    }
    case Axis::kParent: {
      nav_->JumpTo(context);
      if (nav_->ToParent() && MatchesCurrent(step)) {
        out->push_back(nav_->current());
      }
      return;
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      nav_->JumpTo(context);
      if (step.axis == Axis::kAncestorOrSelf && MatchesCurrent(step)) {
        out->push_back(context);
      }
      while (nav_->ToParent()) {
        if (MatchesCurrent(step)) out->push_back(nav_->current());
      }
      return;
    }
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      nav_->JumpTo(context);
      if (step.axis == Axis::kDescendantOrSelf && MatchesCurrent(step)) {
        out->push_back(context);
      }
      // Navigational depth-first scan of the subtree.
      if (!nav_->ToFirstChild()) return;
      int depth = 1;
      for (;;) {
        if (MatchesCurrent(step)) out->push_back(nav_->current());
        if (nav_->ToFirstChild()) {
          ++depth;
          continue;
        }
        for (;;) {
          if (nav_->ToNextSibling()) break;
          if (!nav_->ToParent()) return;
          if (--depth == 0) return;
        }
      }
    }
    case Axis::kFollowingSibling: {
      nav_->JumpTo(context);
      while (nav_->ToNextSibling()) {
        if (MatchesCurrent(step)) out->push_back(nav_->current());
      }
      return;
    }
    case Axis::kPrecedingSibling: {
      nav_->JumpTo(context);
      while (nav_->ToPrevSibling()) {
        if (MatchesCurrent(step)) out->push_back(nav_->current());
      }
      return;
    }
  }
}

bool StoreQueryEvaluator::EvalPredicate(NodeId v, const PredicateExpr& pred) {
  switch (pred.kind) {
    case PredicateExpr::Kind::kOr:
      for (const PredicateExpr& op : pred.operands) {
        if (EvalPredicate(v, op)) return true;
      }
      return false;
    case PredicateExpr::Kind::kAnd:
      for (const PredicateExpr& op : pred.operands) {
        if (!EvalPredicate(v, op)) return false;
      }
      return true;
    case PredicateExpr::Kind::kPath:
      return ExistsPath(v, pred.path, 0);
  }
  return false;
}

bool StoreQueryEvaluator::ExistsPath(NodeId v, const PathExpr& path,
                                     size_t step_index) {
  if (step_index == path.steps.size()) return true;
  std::vector<NodeId> matches;
  CollectAxis(v, path.steps[step_index], &matches);
  for (const NodeId m : matches) {
    bool keep = true;
    for (const PredicateExpr& pred : path.steps[step_index].predicates) {
      if (!EvalPredicate(m, pred)) {
        keep = false;
        break;
      }
    }
    if (keep && ExistsPath(m, path, step_index + 1)) return true;
  }
  return false;
}

void StoreQueryEvaluator::Normalize(std::vector<NodeId>* nodes) const {
  // The virtual document node (kInvalidNode) sorts before everything.
  const auto rank = [&](NodeId v) {
    return v == kInvalidNode ? 0u : preorder_rank_[v] + 1;
  };
  std::sort(nodes->begin(), nodes->end(),
            [&](NodeId a, NodeId b) { return rank(a) < rank(b); });
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

}  // namespace natix
