#ifndef NATIX_QUERY_AST_H_
#define NATIX_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace natix {

/// XPath axes supported by the evaluator (the set used by XPathMark
/// Q1-Q7, Sec. 6.4).
enum class Axis {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kSelf,
  kFollowingSibling,
  kPrecedingSibling,
};

/// Node tests.
enum class NodeTestKind {
  kName,        // element with a specific name
  kAnyElement,  // *
  kAnyNode,     // node()
};

struct PredicateExpr;

/// One location step: axis::node-test[predicate]*.
struct Step {
  Axis axis = Axis::kChild;
  NodeTestKind test = NodeTestKind::kName;
  std::string name;  // for kName
  std::vector<PredicateExpr> predicates;
};

/// A location path. Absolute paths start at the document root.
struct PathExpr {
  bool absolute = false;
  std::vector<Step> steps;
};

/// Boolean predicate expression: an or/and tree over relative-path
/// existence tests, e.g. [parent::namerica or parent::samerica].
struct PredicateExpr {
  enum class Kind { kOr, kAnd, kPath };
  Kind kind = Kind::kPath;
  /// For kOr / kAnd: the operands.
  std::vector<PredicateExpr> operands;
  /// For kPath: exists(relative path from the context node).
  PathExpr path;
};

/// Renders a path back to XPath-ish text (diagnostics, test output).
std::string ToString(const PathExpr& path);

}  // namespace natix

#endif  // NATIX_QUERY_AST_H_
