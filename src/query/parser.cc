#include "query/parser.h"

#include <cctype>

namespace natix {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.';
}

class XPathParser {
 public:
  explicit XPathParser(std::string_view input) : input_(input) {}

  Result<PathExpr> Parse() {
    NATIX_ASSIGN_OR_RETURN(PathExpr path, ParsePath(/*allow_absolute=*/true));
    SkipSpace();
    if (pos_ != input_.size()) return Error("trailing input");
    if (path.steps.empty()) return Error("empty path");
    return path;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError("XPath, offset " + std::to_string(pos_) +
                              ": " + what);
  }

  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return AtEnd() ? '\0' : input_[pos_]; }

  bool Consume(std::string_view token) {
    if (input_.substr(pos_, token.size()) != token) return false;
    pos_ += token.size();
    return true;
  }

  /// Consumes a keyword only if it is not part of a longer name.
  bool ConsumeKeyword(std::string_view word) {
    if (input_.substr(pos_, word.size()) != word) return false;
    const size_t after = pos_ + word.size();
    if (after < input_.size() && IsNameChar(input_[after])) return false;
    pos_ = after;
    return true;
  }

  std::string_view ParseName() {
    const size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return input_.substr(start, pos_ - start);
  }

  Result<PathExpr> ParsePath(bool allow_absolute) {
    PathExpr path;
    SkipSpace();
    if (allow_absolute && Peek() == '/') {
      path.absolute = true;
    } else if (Peek() == '/') {
      return Error("relative path expected");
    }
    bool first = true;
    for (;;) {
      SkipSpace();
      if (first) {
        if (path.absolute) {
          if (Consume("//")) {
            path.steps.push_back(DescendantOrSelfNode());
          } else if (Consume("/")) {
            // plain absolute step
          }
        }
        first = false;
      } else {
        if (Consume("//")) {
          path.steps.push_back(DescendantOrSelfNode());
        } else if (Consume("/")) {
          // next step
        } else {
          break;
        }
      }
      NATIX_ASSIGN_OR_RETURN(Step step, ParseStep());
      path.steps.push_back(std::move(step));
    }
    return path;
  }

  static Step DescendantOrSelfNode() {
    Step s;
    s.axis = Axis::kDescendantOrSelf;
    s.test = NodeTestKind::kAnyNode;
    return s;
  }

  Result<Step> ParseStep() {
    SkipSpace();
    Step step;
    // Optional explicit axis.
    static constexpr struct {
      std::string_view name;
      Axis axis;
    } kAxes[] = {
        // Longest-match order matters.
        {"descendant-or-self", Axis::kDescendantOrSelf},
        {"descendant", Axis::kDescendant},
        {"ancestor-or-self", Axis::kAncestorOrSelf},
        {"ancestor", Axis::kAncestor},
        {"following-sibling", Axis::kFollowingSibling},
        {"preceding-sibling", Axis::kPrecedingSibling},
        {"child", Axis::kChild},
        {"parent", Axis::kParent},
        {"self", Axis::kSelf},
    };
    for (const auto& a : kAxes) {
      if (input_.substr(pos_, a.name.size()) == a.name &&
          input_.substr(pos_ + a.name.size(), 2) == "::") {
        step.axis = a.axis;
        pos_ += a.name.size() + 2;
        break;
      }
    }
    // Node test.
    SkipSpace();
    if (Consume("*")) {
      step.test = NodeTestKind::kAnyElement;
    } else if (ConsumeKeyword("node") && Consume("()")) {
      step.test = NodeTestKind::kAnyNode;
    } else {
      const std::string_view name = ParseName();
      if (name.empty()) return Error("expected a node test");
      step.test = NodeTestKind::kName;
      step.name = std::string(name);
    }
    // Predicates.
    for (;;) {
      SkipSpace();
      if (!Consume("[")) break;
      NATIX_ASSIGN_OR_RETURN(PredicateExpr pred, ParseOrExpr());
      SkipSpace();
      if (!Consume("]")) return Error("expected ']'");
      step.predicates.push_back(std::move(pred));
    }
    return step;
  }

  Result<PredicateExpr> ParseOrExpr() {
    NATIX_ASSIGN_OR_RETURN(PredicateExpr left, ParseAndExpr());
    SkipSpace();
    if (!PeekKeyword("or")) return left;
    PredicateExpr out;
    out.kind = PredicateExpr::Kind::kOr;
    out.operands.push_back(std::move(left));
    while (ConsumeKeywordSpaced("or")) {
      NATIX_ASSIGN_OR_RETURN(PredicateExpr next, ParseAndExpr());
      out.operands.push_back(std::move(next));
      SkipSpace();
    }
    return out;
  }

  Result<PredicateExpr> ParseAndExpr() {
    NATIX_ASSIGN_OR_RETURN(PredicateExpr left, ParsePrimary());
    SkipSpace();
    if (!PeekKeyword("and")) return left;
    PredicateExpr out;
    out.kind = PredicateExpr::Kind::kAnd;
    out.operands.push_back(std::move(left));
    while (ConsumeKeywordSpaced("and")) {
      NATIX_ASSIGN_OR_RETURN(PredicateExpr next, ParsePrimary());
      out.operands.push_back(std::move(next));
      SkipSpace();
    }
    return out;
  }

  bool PeekKeyword(std::string_view word) {
    const size_t save = pos_;
    const bool ok = ConsumeKeywordSpaced(word);
    pos_ = save;
    return ok;
  }

  bool ConsumeKeywordSpaced(std::string_view word) {
    const size_t save = pos_;
    SkipSpace();
    if (ConsumeKeyword(word)) return true;
    pos_ = save;
    return false;
  }

  Result<PredicateExpr> ParsePrimary() {
    SkipSpace();
    if (Consume("(")) {
      NATIX_ASSIGN_OR_RETURN(PredicateExpr inner, ParseOrExpr());
      SkipSpace();
      if (!Consume(")")) return Error("expected ')'");
      return inner;
    }
    PredicateExpr out;
    out.kind = PredicateExpr::Kind::kPath;
    NATIX_ASSIGN_OR_RETURN(out.path, ParsePath(/*allow_absolute=*/false));
    if (out.path.steps.empty()) return Error("expected a predicate path");
    return out;
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<PathExpr> ParseXPath(std::string_view query) {
  return XPathParser(query).Parse();
}

std::string ToString(const PathExpr& path) {
  static constexpr std::string_view kAxisNames[] = {
      "child",    "descendant",       "descendant-or-self",
      "parent",   "ancestor",         "ancestor-or-self",
      "self",     "following-sibling", "preceding-sibling"};
  std::string out;
  bool first = true;
  for (const Step& step : path.steps) {
    if (!first || path.absolute) out += '/';
    first = false;
    out += kAxisNames[static_cast<int>(step.axis)];
    out += "::";
    switch (step.test) {
      case NodeTestKind::kName:
        out += step.name;
        break;
      case NodeTestKind::kAnyElement:
        out += '*';
        break;
      case NodeTestKind::kAnyNode:
        out += "node()";
        break;
    }
    for (const PredicateExpr& pred : step.predicates) {
      out += "[...]";
      (void)pred;
    }
  }
  return out;
}

}  // namespace natix
