#ifndef NATIX_QUERY_REFERENCE_EVALUATOR_H_
#define NATIX_QUERY_REFERENCE_EVALUATOR_H_

#include <vector>

#include "common/status.h"
#include "query/ast.h"
#include "tree/tree.h"

namespace natix {

/// Evaluates the XPath subset directly on an in-memory Tree, with no
/// storage model and an implementation independent from
/// StoreQueryEvaluator. Serves as the correctness oracle in tests and as
/// the "ideal navigation" baseline in benchmarks: results must be
/// identical to the store evaluator for every query and partitioning.
Result<std::vector<NodeId>> EvaluateOnTree(const Tree& tree,
                                           const PathExpr& query);

}  // namespace natix

#endif  // NATIX_QUERY_REFERENCE_EVALUATOR_H_
