#include "query/xpathmark.h"

namespace natix {

const std::vector<XPathMarkQuery>& XPathMarkQueries() {
  static const std::vector<XPathMarkQuery>& queries =
      *new std::vector<XPathMarkQuery>{
          {"Q1", "/site/regions/*/item"},
          {"Q2",
           "/site/closed_auctions/closed_auction/annotation/description/"
           "parlist/listitem/text/keyword"},
          {"Q3", "//keyword"},
          {"Q4", "/descendant-or-self::listitem/descendant-or-self::keyword"},
          {"Q5",
           "/site/regions/*/item[parent::namerica or parent::samerica]"},
          {"Q6", "//keyword/ancestor::listitem"},
          {"Q7", "//keyword/ancestor-or-self::mail"},
      };
  return queries;
}

}  // namespace natix
