#ifndef NATIX_QUERY_EVALUATOR_H_
#define NATIX_QUERY_EVALUATOR_H_

#include <vector>

#include "common/status.h"
#include "query/ast.h"
#include "storage/store.h"

namespace natix {

/// Evaluates an XPath-subset query against a NatixStore using only the
/// store's navigation primitives. Every axis traversal moves a Navigator
/// cursor node by node, so the evaluation cost decomposes into
/// intra-record moves and record crossings -- exactly the asymmetry the
/// paper's partitioning quality experiment measures (Sec. 6.4).
///
/// Semantics: node-set results in document order without duplicates.
/// Attribute nodes are not on the child/descendant axes (XPath data
/// model); name tests match elements only; node() matches any non-
/// attribute node. Predicates are existence tests combined with and/or,
/// evaluated with early exit.
class StoreQueryEvaluator {
 public:
  /// `store` and `stats` (and `buffer`/`provider`, if given) must
  /// outlive the evaluator. A non-null `buffer` routes every record
  /// crossing through the LRU page pool for cold-cache experiments;
  /// `provider` overrides where pool misses read page bytes from (e.g. a
  /// FilePageSource over a flushed page file) and defaults to the
  /// store's in-memory pages.
  StoreQueryEvaluator(const NatixStore* store, AccessStats* stats,
                      LruBufferPool* buffer = nullptr,
                      const PageProvider* provider = nullptr);

  /// Runs the query from the document root. Results are NodeIds of the
  /// logical tree, in document order.
  Result<std::vector<NodeId>> Evaluate(const PathExpr& query);

 private:
  std::vector<NodeId> EvalSteps(std::vector<NodeId> context,
                                const std::vector<Step>& steps);
  /// Appends nodes reached from `context` via `step` (axis + node test)
  /// to `out`; no predicate filtering.
  void CollectAxis(NodeId context, const Step& step, std::vector<NodeId>* out);
  /// Node test against the navigator's current node, decoded from its
  /// record view (O(1), no stats effect). Every positioned call site
  /// uses this; only self:: tests an unpositioned node.
  bool MatchesCurrent(const Step& step);
  /// Node test by NodeId, reading kind/label through the store's record
  /// tables (used where the navigator is not positioned on `v`; charging
  /// no navigation stats, exactly like the historical tree lookup).
  bool MatchesTest(NodeId v, const Step& step) const;
  /// Rebuilds document-order ranks when the store has mutated since the
  /// last query. Keyed on the store's monotonic mutation version -- a
  /// size compare alone misses same-size mutations and, under release /
  /// rematerialize cycles, there may be no tree to size-check against.
  void RefreshRanks();
  bool EvalPredicate(NodeId v, const PredicateExpr& pred);
  /// Existence of a relative path from `v`, early exit on first witness.
  bool ExistsPath(NodeId v, const PathExpr& path, size_t step_index);
  /// Sorts by document order and removes duplicates.
  void Normalize(std::vector<NodeId>* nodes) const;

  const NatixStore* store_;
  Navigator nav_;
  std::vector<uint32_t> preorder_rank_;
  /// Store mutation version the ranks were computed at.
  uint64_t rank_version_ = 0;
  /// Tree mutation version as a belt-and-braces check while a document
  /// is resident (0 when the ranks were computed from records).
  uint64_t rank_tree_version_ = 0;
};

}  // namespace natix

#endif  // NATIX_QUERY_EVALUATOR_H_
