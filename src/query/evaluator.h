#ifndef NATIX_QUERY_EVALUATOR_H_
#define NATIX_QUERY_EVALUATOR_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "query/ast.h"
#include "storage/store.h"

namespace natix {

/// Evaluates an XPath-subset query against one pinned store version using
/// only the store's navigation primitives. Every axis traversal moves a
/// Navigator cursor node by node, so the evaluation cost decomposes into
/// intra-record moves and record crossings -- exactly the asymmetry the
/// paper's partitioning quality experiment measures (Sec. 6.4).
///
/// Semantics: node-set results in document order without duplicates.
/// Attribute nodes are not on the child/descendant axes (XPath data
/// model); name tests match elements only; node() matches any non-
/// attribute node. Predicates are existence tests combined with and/or,
/// evaluated with early exit.
class StoreQueryEvaluator {
 public:
  /// Pinned mode: evaluates against `snapshot` (which must outlive the
  /// evaluator, as must `stats` and `buffer`/`provider` if given). Every
  /// query answers at the snapshot's version, isolated from concurrent
  /// writers. A non-null `buffer` routes every record crossing through
  /// the LRU page pool for cold-cache experiments; `provider` overrides
  /// where pool misses read page bytes from (e.g. a FilePageSource over
  /// a flushed page file) and defaults to the snapshot's as-of provider.
  StoreQueryEvaluator(const StoreSnapshot* snapshot, AccessStats* stats,
                      LruBufferPool* buffer = nullptr,
                      const PageProvider* provider = nullptr);

  /// Auto-refresh mode: opens (and owns) a snapshot of `store`, and
  /// re-opens it whenever Evaluate() finds the store's version has moved
  /// on -- single-threaded callers interleaving queries and updates see
  /// every mutation, exactly like the historical live-store evaluator.
  StoreQueryEvaluator(const NatixStore* store, AccessStats* stats,
                      LruBufferPool* buffer = nullptr,
                      const PageProvider* provider = nullptr);

  /// Runs the query from the document root. Results are NodeIds of the
  /// logical tree, in document order.
  Result<std::vector<NodeId>> Evaluate(const PathExpr& query);

  /// The snapshot queries currently answer at (owned or borrowed).
  const StoreSnapshot* snapshot() const { return snap_; }

 private:
  /// Auto-refresh mode only: re-opens the owned snapshot (and the
  /// navigator over it) when the store has mutated since the last query.
  void MaybeReopen();
  std::vector<NodeId> EvalSteps(std::vector<NodeId> context,
                                const std::vector<Step>& steps);
  /// Appends nodes reached from `context` via `step` (axis + node test)
  /// to `out`; no predicate filtering.
  void CollectAxis(NodeId context, const Step& step, std::vector<NodeId>* out);
  /// Node test against the navigator's current node, decoded from its
  /// record view (O(1), no stats effect). Every positioned call site
  /// uses this; only self:: tests an unpositioned node.
  bool MatchesCurrent(const Step& step);
  /// Node test by NodeId, reading kind/label through the snapshot's
  /// record tables (used where the navigator is not positioned on `v`;
  /// charging no navigation stats, exactly like the historical tree
  /// lookup).
  bool MatchesTest(NodeId v, const Step& step) const;
  /// Computes document-order ranks for the current snapshot (so
  /// Normalize() can sort); cached until the snapshot is re-opened.
  void RefreshRanks();
  bool EvalPredicate(NodeId v, const PredicateExpr& pred);
  /// Existence of a relative path from `v`, early exit on first witness.
  bool ExistsPath(NodeId v, const PathExpr& path, size_t step_index);
  /// Sorts by document order and removes duplicates.
  void Normalize(std::vector<NodeId>* nodes) const;

  /// Auto-refresh source store; null in pinned mode.
  const NatixStore* store_;
  AccessStats* stats_;
  LruBufferPool* buffer_;
  /// User-supplied provider override (null = each snapshot's own).
  const PageProvider* provider_;
  /// Set in auto-refresh mode; snap_ points here then.
  std::optional<StoreSnapshot> owned_;
  const StoreSnapshot* snap_;
  std::optional<Navigator> nav_;
  std::vector<uint32_t> preorder_rank_;
  bool ranks_valid_ = false;
};

}  // namespace natix

#endif  // NATIX_QUERY_EVALUATOR_H_
