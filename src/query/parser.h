#ifndef NATIX_QUERY_PARSER_H_
#define NATIX_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "query/ast.h"

namespace natix {

/// Parses the XPath subset used in the paper's evaluation:
///
///   path        := ('/' | '//')? step (('/' | '//') step)*
///   step        := (axis '::')? nodetest predicate*
///   axis        := child | descendant | descendant-or-self | parent
///                | ancestor | ancestor-or-self | self
///   nodetest    := NAME | '*' | 'node()'
///   predicate   := '[' or-expr ']'
///   or-expr     := and-expr ('or' and-expr)*
///   and-expr    := primary ('and' primary)*
///   primary     := relative-path | '(' or-expr ')'
///
/// '//' is desugared to a descendant-or-self::node() step, per the XPath
/// abbreviation rules. Examples (XPathMark Q1-Q7):
///   /site/regions/*/item
///   //keyword
///   /descendant-or-self::listitem/descendant-or-self::keyword
///   /site/regions/*/item[parent::namerica or parent::samerica]
///   //keyword/ancestor::listitem
Result<PathExpr> ParseXPath(std::string_view query);

}  // namespace natix

#endif  // NATIX_QUERY_PARSER_H_
