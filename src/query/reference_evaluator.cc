#include "query/reference_evaluator.h"

#include <algorithm>

namespace natix {

namespace {

/// Set-at-a-time evaluator: for each step, expand every context node via
/// plain tree accessors. Deliberately structured differently from the
/// navigational store evaluator (precomputed descendant ranges instead of
/// cursor walks) so the two are independent implementations.
class ReferenceEvaluator {
 public:
  explicit ReferenceEvaluator(const Tree& tree)
      : tree_(tree), preorder_(tree.PreorderNodes()) {
    rank_.resize(tree.size());
    for (uint32_t i = 0; i < preorder_.size(); ++i) rank_[preorder_[i]] = i;
    // subtree_end_[v]: one past the last preorder rank of Tv.
    subtree_end_.resize(tree.size());
    for (size_t i = preorder_.size(); i-- > 0;) {
      const NodeId v = preorder_[i];
      uint32_t end = static_cast<uint32_t>(i) + 1;
      for (NodeId c = tree.FirstChild(v); c != kInvalidNode;
           c = tree.NextSibling(c)) {
        end = std::max(end, subtree_end_[c]);
      }
      subtree_end_[v] = end;
    }
  }

  Result<std::vector<NodeId>> Evaluate(const PathExpr& query) {
    if (!query.absolute) {
      return Status::InvalidArgument(
          "top-level queries must be absolute paths");
    }
    if (query.steps.empty()) {
      return Status::InvalidArgument("empty query");
    }
    std::vector<NodeId> context = {kInvalidNode};  // virtual document node
    for (const Step& step : query.steps) {
      context = EvalStep(context, step);
    }
    std::erase(context, kInvalidNode);
    return context;
  }

 private:
  bool Matches(NodeId v, const Step& step) const {
    const NodeKind kind = tree_.KindOf(v);
    switch (step.test) {
      case NodeTestKind::kName:
        return kind == NodeKind::kElement && tree_.LabelOf(v) == step.name;
      case NodeTestKind::kAnyElement:
        return kind == NodeKind::kElement;
      case NodeTestKind::kAnyNode:
        return kind != NodeKind::kAttribute;
    }
    return false;
  }

  void CollectAxis(NodeId context, const Step& step, std::vector<NodeId>* out) {
    if (context == kInvalidNode) {
      if (tree_.empty()) return;
      switch (step.axis) {
        case Axis::kChild:
          if (Matches(tree_.root(), step)) out->push_back(tree_.root());
          return;
        case Axis::kDescendant:
        case Axis::kDescendantOrSelf:
          // descendant-or-self::node() from the document node includes
          // the document node itself (needed by the // abbreviation).
          if (step.axis == Axis::kDescendantOrSelf &&
              step.test == NodeTestKind::kAnyNode) {
            out->push_back(kInvalidNode);
          }
          for (const NodeId v : preorder_) {
            if (Matches(v, step)) out->push_back(v);
          }
          return;
        default:
          return;
      }
    }
    switch (step.axis) {
      case Axis::kSelf:
        if (Matches(context, step)) out->push_back(context);
        return;
      case Axis::kChild:
        for (NodeId c = tree_.FirstChild(context); c != kInvalidNode;
             c = tree_.NextSibling(c)) {
          if (Matches(c, step)) out->push_back(c);
        }
        return;
      case Axis::kParent: {
        const NodeId p = tree_.Parent(context);
        if (p != kInvalidNode && Matches(p, step)) out->push_back(p);
        return;
      }
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf: {
        NodeId v = step.axis == Axis::kAncestorOrSelf ? context
                                                      : tree_.Parent(context);
        while (v != kInvalidNode) {
          if (Matches(v, step)) out->push_back(v);
          v = tree_.Parent(v);
        }
        return;
      }
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf: {
        const uint32_t begin = step.axis == Axis::kDescendantOrSelf
                                   ? rank_[context]
                                   : rank_[context] + 1;
        for (uint32_t i = begin; i < subtree_end_[context]; ++i) {
          if (Matches(preorder_[i], step)) out->push_back(preorder_[i]);
        }
        return;
      }
      case Axis::kFollowingSibling:
        for (NodeId s = tree_.NextSibling(context); s != kInvalidNode;
             s = tree_.NextSibling(s)) {
          if (Matches(s, step)) out->push_back(s);
        }
        return;
      case Axis::kPrecedingSibling:
        for (NodeId s = tree_.PrevSibling(context); s != kInvalidNode;
             s = tree_.PrevSibling(s)) {
          if (Matches(s, step)) out->push_back(s);
        }
        return;
    }
  }

  std::vector<NodeId> EvalStep(const std::vector<NodeId>& context,
                               const Step& step) {
    std::vector<NodeId> out;
    for (const NodeId c : context) CollectAxis(c, step, &out);
    const auto rank = [&](NodeId v) {
      return v == kInvalidNode ? 0u : rank_[v] + 1;
    };
    std::sort(out.begin(), out.end(),
              [&](NodeId a, NodeId b) { return rank(a) < rank(b); });
    out.erase(std::unique(out.begin(), out.end()), out.end());
    if (step.predicates.empty()) return out;
    std::vector<NodeId> filtered;
    for (const NodeId v : out) {
      bool keep = true;
      for (const PredicateExpr& pred : step.predicates) {
        if (!EvalPred(v, pred)) {
          keep = false;
          break;
        }
      }
      if (keep) filtered.push_back(v);
    }
    return filtered;
  }

  bool EvalPred(NodeId v, const PredicateExpr& pred) {
    switch (pred.kind) {
      case PredicateExpr::Kind::kOr:
        return std::any_of(
            pred.operands.begin(), pred.operands.end(),
            [&](const PredicateExpr& op) { return EvalPred(v, op); });
      case PredicateExpr::Kind::kAnd:
        return std::all_of(
            pred.operands.begin(), pred.operands.end(),
            [&](const PredicateExpr& op) { return EvalPred(v, op); });
      case PredicateExpr::Kind::kPath: {
        std::vector<NodeId> context = {v};
        for (const Step& step : pred.path.steps) {
          context = EvalStep(context, step);
          if (context.empty()) return false;
        }
        return !context.empty();
      }
    }
    return false;
  }

  const Tree& tree_;
  std::vector<NodeId> preorder_;
  std::vector<uint32_t> rank_;
  std::vector<uint32_t> subtree_end_;
};

}  // namespace

Result<std::vector<NodeId>> EvaluateOnTree(const Tree& tree,
                                           const PathExpr& query) {
  return ReferenceEvaluator(tree).Evaluate(query);
}

}  // namespace natix
