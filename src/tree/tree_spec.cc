#include "tree/tree_spec.h"

#include <cctype>
#include <vector>

namespace natix {

namespace {

bool IsLabelStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsLabelChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

class SpecParser {
 public:
  explicit SpecParser(std::string_view spec) : spec_(spec) {}

  Result<Tree> Parse() {
    Tree tree;
    SkipSpace();
    NATIX_RETURN_NOT_OK(ParseNode(&tree, kInvalidNode));
    SkipSpace();
    if (pos_ != spec_.size()) {
      return Error("trailing input after root node");
    }
    return tree;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError("tree spec, offset " + std::to_string(pos_) +
                              ": " + what);
  }

  void SkipSpace() {
    while (pos_ < spec_.size() &&
           std::isspace(static_cast<unsigned char>(spec_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= spec_.size(); }
  char Peek() const { return spec_[pos_]; }

  Status ParseNode(Tree* tree, NodeId parent) {
    std::string_view label;
    if (!AtEnd() && IsLabelStart(Peek())) {
      const size_t start = pos_;
      while (!AtEnd() && IsLabelChar(Peek())) ++pos_;
      label = spec_.substr(start, pos_ - start);
    }
    Weight weight = 1;
    bool saw_weight = false;
    if (!AtEnd() && Peek() == ':') {
      saw_weight = true;
      ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("expected weight after ':'");
      }
      uint64_t w = 0;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        w = w * 10 + static_cast<uint64_t>(Peek() - '0');
        if (w > 0xFFFFFFFFull) return Error("weight overflows 32 bits");
        ++pos_;
      }
      if (w == 0) return Error("weight must be positive");
      weight = static_cast<Weight>(w);
    }
    if (label.empty() && !saw_weight && (AtEnd() || Peek() != '(')) {
      return Error("expected a node (label, ':weight' or '(')");
    }
    const NodeId id = parent == kInvalidNode
                          ? tree->AddRoot(weight, label)
                          : tree->AppendChild(parent, weight, label);
    SkipSpace();
    if (!AtEnd() && Peek() == '(') {
      ++pos_;  // consume '('
      SkipSpace();
      while (!AtEnd() && Peek() != ')') {
        NATIX_RETURN_NOT_OK(ParseNode(tree, id));
        SkipSpace();
      }
      if (AtEnd()) return Error("unterminated '('");
      ++pos_;  // consume ')'
    }
    return Status::OK();
  }

  std::string_view spec_;
  size_t pos_ = 0;
};

}  // namespace

Result<Tree> ParseTreeSpec(std::string_view spec) {
  return SpecParser(spec).Parse();
}

std::string TreeToSpec(const Tree& tree) {
  if (tree.empty()) return "";
  std::string out;
  // Iterative preorder with explicit close markers to stay safe on deep
  // trees.
  struct Frame {
    NodeId node;
    bool close;
  };
  std::vector<Frame> stack = {{tree.root(), false}};
  bool first = true;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.close) {
      out += ')';
      continue;
    }
    if (!first && out.back() != '(') out += ' ';
    first = false;
    out += std::string(tree.LabelOf(f.node));
    out += ':' + std::to_string(tree.WeightOf(f.node));
    if (tree.FirstChild(f.node) != kInvalidNode) {
      out += '(';
      stack.push_back({f.node, true});
      for (NodeId c = tree.LastChild(f.node); c != kInvalidNode;
           c = tree.PrevSibling(c)) {
        stack.push_back({c, false});
      }
    }
  }
  return out;
}

}  // namespace natix
