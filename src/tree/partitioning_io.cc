#include "tree/partitioning_io.h"

#include <charconv>

#include "common/string_util.h"

namespace natix {

namespace {

constexpr std::string_view kMagic = "natix-partitioning v1";

Result<uint64_t> ParseNumber(std::string_view token) {
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::ParseError("expected a number, got '" +
                              std::string(token) + "'");
  }
  return value;
}

}  // namespace

std::string SerializePartitioning(const Tree& tree, const Partitioning& p) {
  std::string out(kMagic);
  out += "\ntree " + std::to_string(tree.size()) + " " +
         std::to_string(tree.TotalTreeWeight()) + "\n";
  for (const SiblingInterval& iv : p) {
    out += std::to_string(iv.first) + " " + std::to_string(iv.last) + "\n";
  }
  return out;
}

Result<Partitioning> DeserializePartitioning(const Tree& tree,
                                             std::string_view text) {
  const std::vector<std::string_view> lines = SplitString(text, '\n');
  size_t i = 0;
  auto next_line = [&]() -> std::string_view {
    while (i < lines.size()) {
      const std::string_view line = TrimWhitespace(lines[i++]);
      if (!line.empty()) return line;
    }
    return {};
  };

  if (next_line() != kMagic) {
    return Status::ParseError("missing 'natix-partitioning v1' header");
  }
  const std::string_view fingerprint = next_line();
  const std::vector<std::string_view> fp = SplitString(fingerprint, ' ');
  if (fp.size() != 3 || fp[0] != "tree") {
    return Status::ParseError("missing tree fingerprint line");
  }
  NATIX_ASSIGN_OR_RETURN(const uint64_t nodes, ParseNumber(fp[1]));
  NATIX_ASSIGN_OR_RETURN(const uint64_t weight, ParseNumber(fp[2]));
  if (nodes != tree.size() || weight != tree.TotalTreeWeight()) {
    return Status::FailedPrecondition(
        "partitioning was saved for a different tree (fingerprint " +
        std::string(fp[1]) + "/" + std::string(fp[2]) + ", tree has " +
        std::to_string(tree.size()) + "/" +
        std::to_string(tree.TotalTreeWeight()) + ")");
  }

  Partitioning p;
  for (std::string_view line = next_line(); !line.empty();
       line = next_line()) {
    const std::vector<std::string_view> parts = SplitString(line, ' ');
    if (parts.size() != 2) {
      return Status::ParseError("expected 'first last', got '" +
                                std::string(line) + "'");
    }
    NATIX_ASSIGN_OR_RETURN(const uint64_t first, ParseNumber(parts[0]));
    NATIX_ASSIGN_OR_RETURN(const uint64_t last, ParseNumber(parts[1]));
    if (first >= tree.size() || last >= tree.size()) {
      return Status::ParseError("interval node out of range: '" +
                                std::string(line) + "'");
    }
    p.Add(static_cast<NodeId>(first), static_cast<NodeId>(last));
  }
  // Structural validation (disjoint sibling runs); feasibility is the
  // caller's concern since K is not stored.
  NATIX_ASSIGN_OR_RETURN(const PartitionAnalysis analysis,
                         Analyze(tree, p, ~TotalWeight{0}));
  (void)analysis;
  return p;
}

}  // namespace natix
