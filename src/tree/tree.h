#ifndef NATIX_TREE_TREE_H_
#define NATIX_TREE_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace natix {

/// Index of a node in a Tree's arena. Ids are dense, starting at 0, in node
/// creation order.
using NodeId = uint32_t;

/// Sentinel for "no node" (absent parent/child/sibling).
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// Weight of a single node (positive; number of storage "slots" in the XML
/// use case).
using Weight = uint32_t;

/// Sum of weights over many nodes.
using TotalWeight = uint64_t;

/// The kind of document node a tree node represents. Partitioning algorithms
/// ignore this; the XML importer, storage engine and query engine use it.
enum class NodeKind : uint8_t {
  kElement = 0,
  kText = 1,
  kAttribute = 2,
  kComment = 3,
  kProcessingInstruction = 4,
};

/// A rooted, ordered, labeled, weighted tree (Sec. 2.1 of the paper),
/// stored as a contiguous arena with first-child / next-sibling links.
///
/// The tree is built by creating the root with AddRoot() and appending
/// children left-to-right with AppendChild(). Node ids are stable and dense;
/// all per-node attribute accessors are O(1).
///
/// Labels are interned: the tree keeps one copy of each distinct label
/// string and nodes store a small integer label id.
class Tree {
 public:
  Tree() = default;

  // Tree owns a large arena; allow moves, forbid accidental deep copies
  // (use Clone() when a copy is really wanted).
  Tree(const Tree&) = delete;
  Tree& operator=(const Tree&) = delete;
  Tree(Tree&&) = default;
  Tree& operator=(Tree&&) = default;

  /// Explicit deep copy.
  Tree Clone() const;

  /// Creates the root node. Must be called exactly once, before any
  /// AppendChild(). `weight` must be positive.
  NodeId AddRoot(Weight weight, std::string_view label = {},
                 NodeKind kind = NodeKind::kElement);

  /// Appends a new rightmost child of `parent`. `weight` must be positive.
  NodeId AppendChild(NodeId parent, Weight weight, std::string_view label = {},
                     NodeKind kind = NodeKind::kElement);

  /// Inserts a new child of `parent` immediately before `before` (which
  /// must be a child of `parent`), or as the rightmost child when `before`
  /// is kInvalidNode. Used by incremental updates; note that after an
  /// insertion NodeIds are no longer in document order (use
  /// PreorderRanks() where order matters).
  NodeId InsertChildBefore(NodeId parent, NodeId before, Weight weight,
                           std::string_view label = {},
                           NodeKind kind = NodeKind::kElement);

  /// Unlinks the subtree rooted at `v` from its parent and siblings. The
  /// subtree keeps its internal structure and stays addressable by NodeId;
  /// it is simply no longer reachable from the root until AttachSubtree().
  /// `v` must be alive and must not be the root.
  void DetachSubtree(NodeId v);

  /// Re-links a previously detached subtree rooted at `v` as a child of
  /// `parent`, immediately before `before` (or as the rightmost child when
  /// `before` is kInvalidNode). `parent` must not lie inside the subtree.
  void AttachSubtree(NodeId v, NodeId parent, NodeId before);

  /// Deletes the subtree rooted at `v`: detaches it and tombstones every
  /// node in it. Tombstoned slots keep their NodeId (ids are never
  /// recycled) but drop all links; IsAlive() turns false and they are
  /// excluded from traversals, weights and Validate()'s coverage check.
  /// Appends the removed ids (preorder) to `removed` when non-null.
  /// `v` must be alive and must not be the root.
  void RemoveSubtree(NodeId v, std::vector<NodeId>* removed = nullptr);

  /// Splices the subtree rooted at `v` to a new position: child of
  /// `parent`, immediately before `before` (kInvalidNode appends). All
  /// NodeIds, weights, labels and the subtree's internal structure are
  /// preserved. `parent` must not lie inside the subtree and `before`
  /// must not be `v` itself.
  void MoveSubtree(NodeId v, NodeId parent, NodeId before);

  /// Replaces the label of `v` (interning the new string).
  void SetLabel(NodeId v, std::string_view label);

  /// False for tombstoned (deleted) nodes.
  bool IsAlive(NodeId v) const { return nodes_[v].alive; }

  /// Number of live (non-tombstoned) nodes.
  size_t live_count() const { return nodes_.size() - dead_count_; }

  /// Nodes of the subtree rooted at `v`, in preorder. O(subtree size).
  std::vector<NodeId> SubtreeNodes(NodeId v) const;

  /// Pre-allocates arena capacity for `n` nodes.
  void Reserve(size_t n);

  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Monotonic mutation counter: bumped by every AddRoot/AppendChild/
  /// InsertChildBefore/SetWeight. Caches derived from the tree (preorder
  /// ranks, subtree weights, ...) key their freshness on this rather
  /// than on size() -- a size compare misses any same-size mutation.
  uint64_t version() const { return version_; }

  /// The root node; kInvalidNode on an empty tree.
  NodeId root() const { return empty() ? kInvalidNode : 0; }

  NodeId Parent(NodeId v) const { return nodes_[v].parent; }
  NodeId FirstChild(NodeId v) const { return nodes_[v].first_child; }
  NodeId LastChild(NodeId v) const { return nodes_[v].last_child; }
  NodeId NextSibling(NodeId v) const { return nodes_[v].next_sibling; }
  NodeId PrevSibling(NodeId v) const { return nodes_[v].prev_sibling; }
  size_t ChildCount(NodeId v) const { return nodes_[v].child_count; }

  Weight WeightOf(NodeId v) const { return nodes_[v].weight; }
  void SetWeight(NodeId v, Weight w) {
    nodes_[v].weight = w;
    ++version_;
  }

  NodeKind KindOf(NodeId v) const { return nodes_[v].kind; }

  /// Label string of a node; empty view for unlabeled nodes.
  std::string_view LabelOf(NodeId v) const;
  /// Interned label id of a node; -1 for unlabeled nodes.
  int32_t LabelIdOf(NodeId v) const { return nodes_[v].label; }
  /// Id of a label string, or -1 if no node carries it.
  int32_t FindLabelId(std::string_view label) const;
  /// Number of distinct labels.
  size_t LabelCount() const { return labels_.size(); }
  /// Label string by interned id; empty view for -1 or out of range.
  std::string_view LabelName(int32_t id) const;

  /// Children of `v`, left to right.
  std::vector<NodeId> Children(NodeId v) const;

  /// All nodes in document (pre-)order. Iterative; safe for deep trees.
  std::vector<NodeId> PreorderNodes() const;

  /// All nodes in postorder (children before parents). Iterative.
  std::vector<NodeId> PostorderNodes() const;

  /// Subtree weight W_T(v) for every node, indexed by NodeId.
  std::vector<TotalWeight> SubtreeWeights() const;

  /// Sum of all node weights.
  TotalWeight TotalTreeWeight() const;

  /// Preorder (document-order) rank of every node, indexed by NodeId.
  std::vector<uint32_t> PreorderRanks() const;

  /// True iff `ancestor` is `v` or an ancestor of `v`. O(depth).
  bool IsAncestorOrSelf(NodeId ancestor, NodeId v) const;

  /// Depth of `v`; the root has depth 0. O(depth).
  int Depth(NodeId v) const;

  /// Height of the tree: maximum depth over all nodes, 0 for a one-node
  /// tree. O(n).
  int Height() const;

  /// Largest single node weight in the tree (0 on empty tree). A feasible
  /// sibling partitioning with limit K exists iff MaxNodeWeight() <= K.
  Weight MaxNodeWeight() const;

  /// Structural sanity check (link symmetry, child counts, positive
  /// weights). Used by tests and by the generators' self-checks.
  Status Validate() const;

  /// Appends a flat binary image of the tree (node arena + label table) to
  /// `out`. NodeIds survive the round trip exactly, which is what lets a
  /// recovered store keep answering queries with the same ids as the
  /// uncrashed run. Format is internal to DeserializeFrom().
  void SerializeTo(std::vector<uint8_t>* out) const;

  /// Rebuilds a tree from SerializeTo() bytes starting at `*reader`'s
  /// cursor. Every field is bounds-checked and the result passes
  /// Validate(); corrupt input yields a Status, never undefined behaviour.
  static Result<Tree> DeserializeFrom(class ByteReader* reader);

  /// Per-node link arrays for FromParts(), all indexed by NodeId and of
  /// equal length. last_child and child_count are derived.
  struct Links {
    std::vector<NodeId> parent;
    std::vector<NodeId> first_child;
    std::vector<NodeId> next_sibling;
    std::vector<NodeId> prev_sibling;
    std::vector<Weight> weight;
    std::vector<int32_t> label;
    std::vector<NodeKind> kind;
    std::vector<std::string> labels;
    /// Per-node liveness; empty means every node is alive. Dead slots must
    /// carry no links (all kInvalidNode).
    std::vector<uint8_t> alive;
  };

  /// Rebuilds a tree arena directly from link arrays, preserving NodeIds
  /// exactly -- record-backed rematerialization uses this, since the
  /// AppendChild/InsertChildBefore path cannot reproduce arbitrary
  /// id-to-position assignments. Node 0 must be the root. The result is
  /// Validate()d; inconsistent links yield a Status.
  static Result<Tree> FromParts(Links links);

 private:
  struct Node {
    NodeId parent = kInvalidNode;
    NodeId first_child = kInvalidNode;
    NodeId last_child = kInvalidNode;
    NodeId next_sibling = kInvalidNode;
    NodeId prev_sibling = kInvalidNode;
    uint32_t child_count = 0;
    Weight weight = 1;
    int32_t label = -1;
    NodeKind kind = NodeKind::kElement;
    bool alive = true;
  };

  int32_t InternLabel(std::string_view label);

  std::vector<Node> nodes_;
  std::vector<std::string> labels_;
  std::unordered_map<std::string, int32_t> label_ids_;
  uint64_t version_ = 0;
  size_t dead_count_ = 0;
};

}  // namespace natix

#endif  // NATIX_TREE_TREE_H_
