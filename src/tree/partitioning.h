#ifndef NATIX_TREE_PARTITIONING_H_
#define NATIX_TREE_PARTITIONING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tree/interval.h"
#include "tree/tree.h"

namespace natix {

/// A tree sibling partitioning: a set of disjoint sibling intervals
/// (Sec. 2.1). A *feasible* partitioning additionally contains the root
/// interval (t, t) and respects the weight limit; use Analyze() /
/// CheckFeasible() to verify.
class Partitioning {
 public:
  Partitioning() = default;

  void Add(SiblingInterval interval) { intervals_.push_back(interval); }
  void Add(NodeId first, NodeId last) { intervals_.push_back({first, last}); }

  /// Number of intervals (the partitioning's cardinality |P|).
  size_t size() const { return intervals_.size(); }
  bool empty() const { return intervals_.empty(); }

  const SiblingInterval& operator[](size_t i) const { return intervals_[i]; }
  const std::vector<SiblingInterval>& intervals() const { return intervals_; }

  auto begin() const { return intervals_.begin(); }
  auto end() const { return intervals_.end(); }

  void Reserve(size_t n) { intervals_.reserve(n); }

 private:
  std::vector<SiblingInterval> intervals_;
};

/// Everything Analyze() derives from a partitioning.
struct PartitionAnalysis {
  /// Cardinality |P| (number of intervals, including (t, t)).
  size_t cardinality = 0;
  /// Partition weight of the root node, W^P_T(t).
  TotalWeight root_weight = 0;
  /// Partition weight of each interval, parallel to the input's interval
  /// order.
  std::vector<TotalWeight> interval_weights;
  /// Largest partition weight.
  TotalWeight max_weight = 0;
  /// Mean partition weight.
  double avg_weight = 0.0;
  /// For each node: index of the interval whose partition contains it
  /// (i.e. of the interval containing its nearest interval-member
  /// ancestor-or-self).
  std::vector<uint32_t> partition_of;
  /// True iff every interval weight is <= K and (t, t) is present.
  bool feasible = false;
};

/// Validates the structure of `p` against `tree` (every interval is a run of
/// siblings, intervals are disjoint) and computes partition weights and
/// membership. Returns InvalidArgument with a description if the structure
/// is broken. Feasibility with respect to `limit` is reported in the result,
/// not as an error. O(n + |P|).
Result<PartitionAnalysis> Analyze(const Tree& tree, const Partitioning& p,
                                  TotalWeight limit);

/// Convenience wrapper: ok iff `p` is structurally valid *and* feasible for
/// `limit` (contains (t,t), all partition weights <= limit).
Status CheckFeasible(const Tree& tree, const Partitioning& p,
                     TotalWeight limit);

/// Renders a partitioning as "{(a,b), (c,c), ...}" using node labels when
/// present, node ids otherwise. For logs, tests and examples.
std::string ToString(const Tree& tree, const Partitioning& p);

}  // namespace natix

#endif  // NATIX_TREE_PARTITIONING_H_
