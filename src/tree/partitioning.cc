#include "tree/partitioning.h"

#include <algorithm>

namespace natix {

namespace {
constexpr uint32_t kNoInterval = 0xFFFFFFFFu;
}  // namespace

Result<PartitionAnalysis> Analyze(const Tree& tree, const Partitioning& p,
                                  TotalWeight limit) {
  const size_t n = tree.size();
  if (n == 0) {
    return Status::InvalidArgument("cannot analyze an empty tree");
  }

  // 1. Structural validation + membership marking.
  std::vector<uint32_t> member_of(n, kNoInterval);
  for (size_t i = 0; i < p.size(); ++i) {
    const SiblingInterval& iv = p[i];
    if (iv.first >= n || iv.last >= n) {
      return Status::InvalidArgument("interval " + std::to_string(i) +
                                     " references a node outside the tree");
    }
    if (tree.Parent(iv.first) != tree.Parent(iv.last)) {
      return Status::InvalidArgument(
          "interval " + std::to_string(i) +
          " endpoints do not share a parent");
    }
    NodeId v = iv.first;
    for (;;) {
      if (member_of[v] != kNoInterval) {
        return Status::InvalidArgument(
            "node " + std::to_string(v) + " is in intervals " +
            std::to_string(member_of[v]) + " and " + std::to_string(i));
      }
      member_of[v] = static_cast<uint32_t>(i);
      if (v == iv.last) break;
      v = tree.NextSibling(v);
      if (v == kInvalidNode) {
        return Status::InvalidArgument(
            "interval " + std::to_string(i) +
            " last node does not follow first node in sibling order");
      }
    }
  }

  PartitionAnalysis out;
  out.cardinality = p.size();
  out.interval_weights.assign(p.size(), 0);

  // 2. Partition weights: in the partition forest, a node's partition
  // weight is its own weight plus the partition weights of its children
  // that did NOT become roots (i.e. that are not interval members).
  std::vector<TotalWeight> pw(n, 0);
  const std::vector<NodeId> postorder = tree.PostorderNodes();
  for (const NodeId v : postorder) {
    TotalWeight sum = tree.WeightOf(v);
    for (NodeId c = tree.FirstChild(v); c != kInvalidNode;
         c = tree.NextSibling(c)) {
      if (member_of[c] == kNoInterval) sum += pw[c];
    }
    pw[v] = sum;
    if (member_of[v] != kNoInterval) {
      out.interval_weights[member_of[v]] += pw[v];
    }
  }
  out.root_weight = pw[tree.root()];

  // 3. Partition membership of every node: the interval of its nearest
  // interval-member ancestor-or-self.
  out.partition_of.assign(n, kNoInterval);
  for (const NodeId v : tree.PreorderNodes()) {
    if (member_of[v] != kNoInterval) {
      out.partition_of[v] = member_of[v];
    } else if (tree.Parent(v) != kInvalidNode) {
      out.partition_of[v] = out.partition_of[tree.Parent(v)];
    }
  }

  // 4. Aggregates and feasibility.
  const bool has_root_interval = member_of[tree.root()] != kNoInterval;
  bool within_limit = true;
  TotalWeight total = 0;
  for (const TotalWeight w : out.interval_weights) {
    out.max_weight = std::max(out.max_weight, w);
    total += w;
    if (w > limit) within_limit = false;
  }
  out.avg_weight =
      p.empty() ? 0.0 : static_cast<double>(total) / static_cast<double>(p.size());
  out.feasible = has_root_interval && within_limit;
  return out;
}

Status CheckFeasible(const Tree& tree, const Partitioning& p,
                     TotalWeight limit) {
  NATIX_ASSIGN_OR_RETURN(const PartitionAnalysis analysis,
                         Analyze(tree, p, limit));
  if (analysis.feasible) return Status::OK();
  if (p.empty() || analysis.partition_of[tree.root()] == kNoInterval) {
    return Status::InvalidArgument(
        "partitioning lacks the root interval (t, t)");
  }
  return Status::InvalidArgument(
      "partition weight " + std::to_string(analysis.max_weight) +
      " exceeds limit " + std::to_string(limit));
}

std::string ToString(const Tree& tree, const Partitioning& p) {
  auto name = [&](NodeId v) {
    const std::string_view label = tree.LabelOf(v);
    return label.empty() ? std::to_string(v) : std::string(label);
  };
  std::string out = "{";
  for (size_t i = 0; i < p.size(); ++i) {
    if (i > 0) out += ", ";
    out += "(" + name(p[i].first) + "," + name(p[i].last) + ")";
  }
  out += "}";
  return out;
}

}  // namespace natix
