#ifndef NATIX_TREE_INTERVAL_H_
#define NATIX_TREE_INTERVAL_H_

#include "tree/tree.h"

namespace natix {

/// A sibling interval (l, r)_T: the set of consecutive siblings from `first`
/// to `last` inclusive (Sec. 2.1). `first == last` denotes a single-node
/// interval. Both nodes must share the same parent and `first` must not come
/// after `last` in sibling order.
struct SiblingInterval {
  NodeId first = kInvalidNode;
  NodeId last = kInvalidNode;

  friend bool operator==(const SiblingInterval& a,
                         const SiblingInterval& b) = default;
};

}  // namespace natix

#endif  // NATIX_TREE_INTERVAL_H_
