#ifndef NATIX_TREE_TREE_STATS_H_
#define NATIX_TREE_TREE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tree/tree.h"

namespace natix {

/// Structural summary of a tree, used by the `inspect` tool, the corpus
/// generators' calibration and the benchmarks' document descriptions.
struct TreeStats {
  size_t node_count = 0;
  TotalWeight total_weight = 0;
  Weight max_node_weight = 0;
  double avg_node_weight = 0.0;
  int height = 0;
  size_t leaf_count = 0;
  size_t inner_count = 0;
  /// Maximum and average number of children over inner nodes.
  size_t max_fanout = 0;
  double avg_fanout = 0.0;
  /// Node counts by kind, indexed by NodeKind.
  size_t kind_counts[5] = {0, 0, 0, 0, 0};
  /// depth_histogram[d] = number of nodes at depth d.
  std::vector<size_t> depth_histogram;
  /// fanout_histogram[i] = number of inner nodes with fanout in
  /// [2^i, 2^(i+1)) (bucket 0 holds fanout 1).
  std::vector<size_t> fanout_histogram;
};

/// Computes the summary in O(n).
TreeStats ComputeTreeStats(const Tree& tree);

/// Renders the summary as a small human-readable report.
std::string ToString(const TreeStats& stats);

}  // namespace natix

#endif  // NATIX_TREE_TREE_STATS_H_
