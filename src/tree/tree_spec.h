#ifndef NATIX_TREE_TREE_SPEC_H_
#define NATIX_TREE_TREE_SPEC_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "tree/tree.h"

namespace natix {

/// Builds a Tree from a compact textual specification, used throughout the
/// tests and examples to encode the paper's figures.
///
/// Grammar (whitespace separates siblings):
///
///   node     := [label] [":" weight] [ "(" node* ")" ]
///   label    := [A-Za-z_][A-Za-z0-9_-]*
///   weight   := positive integer (default 1)
///
/// Example — the running example of Sec. 2.1 (Fig. 3):
///
///   ParseTreeSpec("a:3(b:2 c:1(d:2 e:2) f:1 g:1 h:2)")
Result<Tree> ParseTreeSpec(std::string_view spec);

/// Inverse of ParseTreeSpec: renders `tree` in the spec grammar
/// (labels when present, ":weight" always). Round-trips with ParseTreeSpec.
std::string TreeToSpec(const Tree& tree);

}  // namespace natix

#endif  // NATIX_TREE_TREE_SPEC_H_
