#ifndef NATIX_TREE_PARTITIONING_IO_H_
#define NATIX_TREE_PARTITIONING_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "tree/partitioning.h"
#include "tree/tree.h"

namespace natix {

/// Text interchange format for partitionings, enabling the paper's
/// offline-reorganization workflow (Sec. 6.3): run the expensive optimal
/// DHW once, save the result, and load it at import time instead of
/// re-partitioning.
///
/// Format (line oriented):
///
///   natix-partitioning v1
///   tree <node-count> <total-weight>     -- integrity fingerprint
///   <first-node-id> <last-node-id>       -- one interval per line
///   ...
///
/// Node ids refer to document order (NodeIds of a tree built by the
/// importer). Loading verifies the fingerprint against the target tree
/// and the structural validity of every interval.
std::string SerializePartitioning(const Tree& tree, const Partitioning& p);

/// Parses the format above and validates it against `tree` (fingerprint,
/// interval structure). Feasibility for a particular K is *not* checked
/// here; use CheckFeasible.
Result<Partitioning> DeserializePartitioning(const Tree& tree,
                                             std::string_view text);

}  // namespace natix

#endif  // NATIX_TREE_PARTITIONING_IO_H_
