#include "tree/tree_stats.h"

#include <algorithm>
#include <cstdio>

namespace natix {

TreeStats ComputeTreeStats(const Tree& tree) {
  TreeStats s;
  s.node_count = tree.size();
  if (tree.empty()) return s;

  std::vector<int> depth(tree.size(), 0);
  size_t fanout_sum = 0;
  for (const NodeId v : tree.PreorderNodes()) {
    const NodeId parent = tree.Parent(v);
    if (parent != kInvalidNode) depth[v] = depth[parent] + 1;
    s.height = std::max(s.height, depth[v]);
    s.total_weight += tree.WeightOf(v);
    s.max_node_weight = std::max(s.max_node_weight, tree.WeightOf(v));
    ++s.kind_counts[static_cast<size_t>(tree.KindOf(v))];
    const size_t fanout = tree.ChildCount(v);
    if (fanout == 0) {
      ++s.leaf_count;
    } else {
      ++s.inner_count;
      fanout_sum += fanout;
      s.max_fanout = std::max(s.max_fanout, fanout);
      size_t bucket = 0;
      for (size_t f = fanout; f > 1; f >>= 1) ++bucket;
      if (s.fanout_histogram.size() <= bucket) {
        s.fanout_histogram.resize(bucket + 1, 0);
      }
      ++s.fanout_histogram[bucket];
    }
  }
  s.avg_node_weight =
      static_cast<double>(s.total_weight) / static_cast<double>(s.node_count);
  s.avg_fanout = s.inner_count == 0
                     ? 0.0
                     : static_cast<double>(fanout_sum) /
                           static_cast<double>(s.inner_count);
  s.depth_histogram.assign(static_cast<size_t>(s.height) + 1, 0);
  for (const int d : depth) ++s.depth_histogram[static_cast<size_t>(d)];
  return s;
}

std::string ToString(const TreeStats& s) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "nodes: %zu (elements %zu, text %zu, attributes %zu)\n"
                "weight: total %llu slots, max %u, avg %.2f\n"
                "shape: height %d, leaves %zu, inner %zu, fanout avg %.2f "
                "max %zu\n",
                s.node_count, s.kind_counts[0], s.kind_counts[1],
                s.kind_counts[2],
                static_cast<unsigned long long>(s.total_weight),
                s.max_node_weight, s.avg_node_weight, s.height, s.leaf_count,
                s.inner_count, s.avg_fanout, s.max_fanout);
  std::string out = buf;
  out += "depth histogram:";
  for (size_t d = 0; d < s.depth_histogram.size(); ++d) {
    std::snprintf(buf, sizeof(buf), " %zu:%zu", d, s.depth_histogram[d]);
    out += buf;
  }
  out += "\n";
  return out;
}

}  // namespace natix
