#include "tree/tree.h"

#include <algorithm>
#include <cassert>

#include "common/bytes.h"

namespace natix {

Tree Tree::Clone() const {
  Tree copy;
  copy.nodes_ = nodes_;
  copy.labels_ = labels_;
  copy.label_ids_ = label_ids_;
  copy.version_ = version_;
  copy.dead_count_ = dead_count_;
  return copy;
}

int32_t Tree::InternLabel(std::string_view label) {
  if (label.empty()) return -1;
  auto it = label_ids_.find(std::string(label));
  if (it != label_ids_.end()) return it->second;
  const int32_t id = static_cast<int32_t>(labels_.size());
  labels_.emplace_back(label);
  label_ids_.emplace(labels_.back(), id);
  return id;
}

NodeId Tree::AddRoot(Weight weight, std::string_view label, NodeKind kind) {
  assert(nodes_.empty() && "AddRoot on non-empty tree");
  assert(weight > 0);
  Node n;
  n.weight = weight;
  n.label = InternLabel(label);
  n.kind = kind;
  nodes_.push_back(n);
  ++version_;
  return 0;
}

NodeId Tree::AppendChild(NodeId parent, Weight weight, std::string_view label,
                         NodeKind kind) {
  assert(parent < nodes_.size());
  assert(weight > 0);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.parent = parent;
  n.weight = weight;
  n.label = InternLabel(label);
  n.kind = kind;
  Node& p = nodes_[parent];
  if (p.last_child == kInvalidNode) {
    p.first_child = id;
  } else {
    n.prev_sibling = p.last_child;
    nodes_[p.last_child].next_sibling = id;
  }
  p.last_child = id;
  ++p.child_count;
  nodes_.push_back(n);
  ++version_;
  return id;
}

NodeId Tree::InsertChildBefore(NodeId parent, NodeId before, Weight weight,
                               std::string_view label, NodeKind kind) {
  if (before == kInvalidNode) {
    return AppendChild(parent, weight, label, kind);
  }
  assert(parent < nodes_.size());
  assert(before < nodes_.size() && nodes_[before].parent == parent);
  assert(weight > 0);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.parent = parent;
  n.weight = weight;
  n.label = InternLabel(label);
  n.kind = kind;
  n.next_sibling = before;
  n.prev_sibling = nodes_[before].prev_sibling;
  nodes_.push_back(n);
  if (nodes_[before].prev_sibling == kInvalidNode) {
    nodes_[parent].first_child = id;
  } else {
    nodes_[nodes_[before].prev_sibling].next_sibling = id;
  }
  nodes_[before].prev_sibling = id;
  ++nodes_[parent].child_count;
  ++version_;
  return id;
}

void Tree::DetachSubtree(NodeId v) {
  assert(v < nodes_.size() && v != 0);
  assert(nodes_[v].alive);
  Node& n = nodes_[v];
  assert(n.parent != kInvalidNode);
  Node& p = nodes_[n.parent];
  if (n.prev_sibling != kInvalidNode) {
    nodes_[n.prev_sibling].next_sibling = n.next_sibling;
  } else {
    p.first_child = n.next_sibling;
  }
  if (n.next_sibling != kInvalidNode) {
    nodes_[n.next_sibling].prev_sibling = n.prev_sibling;
  } else {
    p.last_child = n.prev_sibling;
  }
  --p.child_count;
  n.parent = kInvalidNode;
  n.next_sibling = kInvalidNode;
  n.prev_sibling = kInvalidNode;
  ++version_;
}

void Tree::AttachSubtree(NodeId v, NodeId parent, NodeId before) {
  assert(v < nodes_.size() && parent < nodes_.size());
  assert(nodes_[v].alive && nodes_[parent].alive);
  assert(nodes_[v].parent == kInvalidNode && v != 0);
  assert(!IsAncestorOrSelf(v, parent));
  Node& n = nodes_[v];
  Node& p = nodes_[parent];
  n.parent = parent;
  if (before == kInvalidNode) {
    if (p.last_child == kInvalidNode) {
      p.first_child = v;
    } else {
      n.prev_sibling = p.last_child;
      nodes_[p.last_child].next_sibling = v;
    }
    p.last_child = v;
  } else {
    assert(before < nodes_.size() && nodes_[before].parent == parent);
    n.next_sibling = before;
    n.prev_sibling = nodes_[before].prev_sibling;
    if (n.prev_sibling == kInvalidNode) {
      p.first_child = v;
    } else {
      nodes_[n.prev_sibling].next_sibling = v;
    }
    nodes_[before].prev_sibling = v;
  }
  ++p.child_count;
  ++version_;
}

void Tree::RemoveSubtree(NodeId v, std::vector<NodeId>* removed) {
  DetachSubtree(v);
  // Tombstone the whole subtree. A dead slot keeps its id forever (never
  // recycled) but drops every link and normalizes its payload fields, so
  // a tree rematerialized from records -- where tombstones carry no data
  // at all -- reproduces it bit for bit.
  std::vector<NodeId> stack = {v};
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    for (NodeId c = nodes_[x].last_child; c != kInvalidNode;
         c = nodes_[c].prev_sibling) {
      stack.push_back(c);
    }
    Node& n = nodes_[x];
    n.parent = kInvalidNode;
    n.first_child = kInvalidNode;
    n.last_child = kInvalidNode;
    n.next_sibling = kInvalidNode;
    n.prev_sibling = kInvalidNode;
    n.child_count = 0;
    n.weight = 1;
    n.label = -1;
    n.kind = NodeKind::kElement;
    n.alive = false;
    ++dead_count_;
    if (removed != nullptr) removed->push_back(x);
  }
  ++version_;
}

void Tree::MoveSubtree(NodeId v, NodeId parent, NodeId before) {
  assert(before != v);
  DetachSubtree(v);
  AttachSubtree(v, parent, before);
}

void Tree::SetLabel(NodeId v, std::string_view label) {
  assert(v < nodes_.size() && nodes_[v].alive);
  nodes_[v].label = InternLabel(label);
  ++version_;
}

std::vector<NodeId> Tree::SubtreeNodes(NodeId v) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack = {v};
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    out.push_back(x);
    for (NodeId c = nodes_[x].last_child; c != kInvalidNode;
         c = nodes_[c].prev_sibling) {
      stack.push_back(c);
    }
  }
  return out;
}

void Tree::Reserve(size_t n) { nodes_.reserve(n); }

std::string_view Tree::LabelOf(NodeId v) const {
  const int32_t id = nodes_[v].label;
  if (id < 0) return {};
  return labels_[static_cast<size_t>(id)];
}

int32_t Tree::FindLabelId(std::string_view label) const {
  auto it = label_ids_.find(std::string(label));
  return it == label_ids_.end() ? -1 : it->second;
}

std::string_view Tree::LabelName(int32_t id) const {
  if (id < 0 || static_cast<size_t>(id) >= labels_.size()) return {};
  return labels_[static_cast<size_t>(id)];
}

std::vector<NodeId> Tree::Children(NodeId v) const {
  std::vector<NodeId> out;
  out.reserve(nodes_[v].child_count);
  for (NodeId c = nodes_[v].first_child; c != kInvalidNode;
       c = nodes_[c].next_sibling) {
    out.push_back(c);
  }
  return out;
}

std::vector<NodeId> Tree::PreorderNodes() const {
  std::vector<NodeId> out;
  if (empty()) return out;
  out.reserve(size());
  std::vector<NodeId> stack = {root()};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    out.push_back(v);
    // Push children right-to-left so the leftmost child pops first.
    for (NodeId c = nodes_[v].last_child; c != kInvalidNode;
         c = nodes_[c].prev_sibling) {
      stack.push_back(c);
    }
  }
  return out;
}

std::vector<NodeId> Tree::PostorderNodes() const {
  // Postorder is the reverse of a preorder that visits children
  // right-to-left.
  std::vector<NodeId> out;
  if (empty()) return out;
  out.reserve(size());
  std::vector<NodeId> stack = {root()};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    out.push_back(v);
    for (NodeId c = nodes_[v].first_child; c != kInvalidNode;
         c = nodes_[c].next_sibling) {
      stack.push_back(c);
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<TotalWeight> Tree::SubtreeWeights() const {
  std::vector<TotalWeight> w(size(), 0);
  for (const NodeId v : PostorderNodes()) {
    TotalWeight sum = nodes_[v].weight;
    for (NodeId c = nodes_[v].first_child; c != kInvalidNode;
         c = nodes_[c].next_sibling) {
      sum += w[c];
    }
    w[v] = sum;
  }
  return w;
}

TotalWeight Tree::TotalTreeWeight() const {
  TotalWeight sum = 0;
  for (const Node& n : nodes_) {
    if (n.alive) sum += n.weight;
  }
  return sum;
}

std::vector<uint32_t> Tree::PreorderRanks() const {
  std::vector<uint32_t> rank(size(), 0);
  uint32_t r = 0;
  for (const NodeId v : PreorderNodes()) rank[v] = r++;
  return rank;
}

bool Tree::IsAncestorOrSelf(NodeId ancestor, NodeId v) const {
  for (NodeId x = v; x != kInvalidNode; x = nodes_[x].parent) {
    if (x == ancestor) return true;
  }
  return false;
}

int Tree::Depth(NodeId v) const {
  int d = 0;
  for (NodeId x = nodes_[v].parent; x != kInvalidNode; x = nodes_[x].parent) {
    ++d;
  }
  return d;
}

int Tree::Height() const {
  if (empty()) return 0;
  std::vector<int> depth(size(), 0);
  int h = 0;
  for (const NodeId v : PreorderNodes()) {
    const NodeId p = nodes_[v].parent;
    if (p != kInvalidNode) depth[v] = depth[p] + 1;
    h = std::max(h, depth[v]);
  }
  return h;
}

Weight Tree::MaxNodeWeight() const {
  Weight m = 0;
  for (const Node& n : nodes_) {
    if (n.alive) m = std::max(m, n.weight);
  }
  return m;
}

Status Tree::Validate() const {
  if (empty()) return Status::OK();
  if (nodes_[0].parent != kInvalidNode) {
    return Status::Internal("root has a parent");
  }
  if (!nodes_[0].alive) {
    return Status::Internal("root is tombstoned");
  }
  size_t reachable = 0;
  for (const NodeId v : PreorderNodes()) {
    ++reachable;
    const Node& n = nodes_[v];
    if (!n.alive) {
      return Status::Internal("tombstoned node " + std::to_string(v) +
                              " is reachable from the root");
    }
    if (n.weight == 0) {
      return Status::Internal("node " + std::to_string(v) +
                              " has zero weight");
    }
    size_t count = 0;
    NodeId prev = kInvalidNode;
    for (NodeId c = n.first_child; c != kInvalidNode;
         c = nodes_[c].next_sibling) {
      if (nodes_[c].parent != v) {
        return Status::Internal("child parent link mismatch at node " +
                                std::to_string(c));
      }
      if (nodes_[c].prev_sibling != prev) {
        return Status::Internal("sibling link mismatch at node " +
                                std::to_string(c));
      }
      prev = c;
      ++count;
    }
    if (prev != n.last_child) {
      return Status::Internal("last_child mismatch at node " +
                              std::to_string(v));
    }
    if (count != n.child_count) {
      return Status::Internal("child_count mismatch at node " +
                              std::to_string(v));
    }
  }
  size_t dead = 0;
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    const Node& n = nodes_[v];
    if (n.alive) continue;
    ++dead;
    if (n.parent != kInvalidNode || n.first_child != kInvalidNode ||
        n.last_child != kInvalidNode || n.next_sibling != kInvalidNode ||
        n.prev_sibling != kInvalidNode || n.child_count != 0) {
      return Status::Internal("tombstoned node " + std::to_string(v) +
                              " still carries links");
    }
  }
  if (dead != dead_count_) {
    return Status::Internal("dead-node count out of sync with arena");
  }
  if (reachable + dead != size()) {
    return Status::Internal("unreachable live nodes in arena");
  }
  return Status::OK();
}

namespace {
// v1: no liveness byte (every node alive). v2: trailing u8 alive per node.
constexpr uint32_t kTreeFormatVersion = 2;
constexpr uint32_t kTreeFormatVersionNoTombstones = 1;
}  // namespace

void Tree::SerializeTo(std::vector<uint8_t>* out) const {
  ByteWriter w(out);
  w.U32(kTreeFormatVersion);
  w.U64(nodes_.size());
  for (const Node& n : nodes_) {
    w.U32(n.parent);
    w.U32(n.first_child);
    w.U32(n.last_child);
    w.U32(n.next_sibling);
    w.U32(n.prev_sibling);
    w.U32(n.child_count);
    w.U32(n.weight);
    w.I32(n.label);
    w.U8(static_cast<uint8_t>(n.kind));
    w.U8(n.alive ? 1 : 0);
  }
  w.U64(labels_.size());
  for (const std::string& label : labels_) w.Str(label);
}

Result<Tree> Tree::DeserializeFrom(ByteReader* reader) {
  NATIX_ASSIGN_OR_RETURN(const uint32_t version, reader->U32());
  if (version != kTreeFormatVersion &&
      version != kTreeFormatVersionNoTombstones) {
    return Status::ParseError("unsupported tree format version " +
                              std::to_string(version));
  }
  const bool has_alive = version >= kTreeFormatVersion;
  NATIX_ASSIGN_OR_RETURN(const uint64_t count, reader->U64());
  // Each node occupies 33 (v1) or 34 (v2) serialized bytes; reject counts
  // the buffer cannot possibly hold before allocating.
  if (count > reader->remaining() / (has_alive ? 34 : 33)) {
    return Status::ParseError("tree node count " + std::to_string(count) +
                              " exceeds the serialized payload");
  }
  Tree tree;
  tree.nodes_.reserve(static_cast<size_t>(count));
  auto check_link = [&](uint32_t link) {
    return link == kInvalidNode || link < count;
  };
  for (uint64_t i = 0; i < count; ++i) {
    Node n;
    NATIX_ASSIGN_OR_RETURN(n.parent, reader->U32());
    NATIX_ASSIGN_OR_RETURN(n.first_child, reader->U32());
    NATIX_ASSIGN_OR_RETURN(n.last_child, reader->U32());
    NATIX_ASSIGN_OR_RETURN(n.next_sibling, reader->U32());
    NATIX_ASSIGN_OR_RETURN(n.prev_sibling, reader->U32());
    NATIX_ASSIGN_OR_RETURN(n.child_count, reader->U32());
    NATIX_ASSIGN_OR_RETURN(n.weight, reader->U32());
    NATIX_ASSIGN_OR_RETURN(n.label, reader->I32());
    NATIX_ASSIGN_OR_RETURN(const uint8_t kind, reader->U8());
    // Links must be checked before Validate(): its traversal indexes the
    // arena through them.
    if (!check_link(n.parent) || !check_link(n.first_child) ||
        !check_link(n.last_child) || !check_link(n.next_sibling) ||
        !check_link(n.prev_sibling)) {
      return Status::ParseError("tree node " + std::to_string(i) +
                                " has an out-of-range link");
    }
    if (kind > static_cast<uint8_t>(NodeKind::kProcessingInstruction)) {
      return Status::ParseError("tree node " + std::to_string(i) +
                                " has an invalid kind");
    }
    n.kind = static_cast<NodeKind>(kind);
    if (has_alive) {
      NATIX_ASSIGN_OR_RETURN(const uint8_t alive, reader->U8());
      if (alive > 1) {
        return Status::ParseError("tree node " + std::to_string(i) +
                                  " has an invalid liveness flag");
      }
      n.alive = alive != 0;
      if (!n.alive) ++tree.dead_count_;
    }
    tree.nodes_.push_back(n);
  }
  NATIX_ASSIGN_OR_RETURN(const uint64_t label_count, reader->U64());
  if (label_count > reader->remaining() / 8) {
    return Status::ParseError("tree label count exceeds payload");
  }
  tree.labels_.reserve(static_cast<size_t>(label_count));
  for (uint64_t i = 0; i < label_count; ++i) {
    NATIX_ASSIGN_OR_RETURN(std::string label, reader->Str());
    tree.labels_.push_back(std::move(label));
    tree.label_ids_.emplace(tree.labels_.back(), static_cast<int32_t>(i));
  }
  for (const Node& n : tree.nodes_) {
    if (n.label != -1 &&
        (n.label < 0 || static_cast<uint64_t>(n.label) >= label_count)) {
      return Status::ParseError("tree node has an out-of-range label id");
    }
  }
  NATIX_RETURN_NOT_OK(tree.Validate());
  return tree;
}

Result<Tree> Tree::FromParts(Links links) {
  const size_t n = links.parent.size();
  if (links.first_child.size() != n || links.next_sibling.size() != n ||
      links.prev_sibling.size() != n || links.weight.size() != n ||
      links.label.size() != n || links.kind.size() != n ||
      (!links.alive.empty() && links.alive.size() != n)) {
    return Status::InvalidArgument("tree link arrays have unequal lengths");
  }
  auto check_link = [&](NodeId link) {
    return link == kInvalidNode || link < n;
  };
  Tree tree;
  tree.nodes_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    Node& node = tree.nodes_[i];
    node.parent = links.parent[i];
    node.first_child = links.first_child[i];
    node.next_sibling = links.next_sibling[i];
    node.prev_sibling = links.prev_sibling[i];
    node.weight = links.weight[i];
    node.label = links.label[i];
    node.kind = links.kind[i];
    if (!links.alive.empty() && links.alive[i] == 0) {
      node.alive = false;
      ++tree.dead_count_;
    }
    if (!check_link(node.parent) || !check_link(node.first_child) ||
        !check_link(node.next_sibling) || !check_link(node.prev_sibling)) {
      return Status::InvalidArgument("tree node " + std::to_string(i) +
                                     " has an out-of-range link");
    }
    if (node.label != -1 &&
        (node.label < 0 ||
         static_cast<size_t>(node.label) >= links.labels.size())) {
      return Status::InvalidArgument("tree node " + std::to_string(i) +
                                     " has an out-of-range label id");
    }
  }
  if (n > 0 && tree.nodes_[0].parent != kInvalidNode) {
    return Status::InvalidArgument("node 0 must be the root");
  }
  // Derive last_child and child_count from the sibling chains. The walk
  // is bounded by n steps per parent in a valid tree; a sibling cycle
  // would spin, so cap the walk and let Validate() report the mismatch.
  for (size_t v = 0; v < n; ++v) {
    NodeId last = kInvalidNode;
    uint32_t count = 0;
    for (NodeId c = tree.nodes_[v].first_child;
         c != kInvalidNode && count <= n;
         c = tree.nodes_[c].next_sibling) {
      last = c;
      ++count;
    }
    if (count > n) {
      return Status::InvalidArgument("sibling cycle under node " +
                                     std::to_string(v));
    }
    tree.nodes_[v].last_child = last;
    tree.nodes_[v].child_count = count;
  }
  tree.labels_ = std::move(links.labels);
  for (size_t i = 0; i < tree.labels_.size(); ++i) {
    tree.label_ids_.emplace(tree.labels_[i], static_cast<int32_t>(i));
  }
  NATIX_RETURN_NOT_OK(tree.Validate());
  return tree;
}

}  // namespace natix
