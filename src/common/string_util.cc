#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace natix {

std::vector<std::string_view> SplitString(std::string_view input, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.push_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view input) {
  size_t b = 0;
  size_t e = input.size();
  while (b < e && std::isspace(static_cast<unsigned char>(input[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(input[e - 1]))) --e;
  return input.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  } else if (bytes < 1024ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", bytes / 1024.0);
  } else if (bytes < 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", bytes / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fGB",
                  bytes / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

std::string FormatWithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace natix
