#ifndef NATIX_COMMON_STATUS_H_
#define NATIX_COMMON_STATUS_H_

#include <cassert>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace natix {

/// Error category carried by a non-ok Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  /// A capacity limit was hit (a record does not fit in its page, the
  /// disk is full). Backpressure, not failure: the operation left no
  /// trace, retrying without freeing space is pointless, and nothing is
  /// broken -- the caller sheds load, relocates, or frees space.
  kResourceExhausted = 5,
  kFailedPrecondition = 6,
  kParseError = 7,
  kInternal = 8,
  /// A transient failure (device busy, injected EIO): the same call may
  /// succeed if retried. Retry loops key on this code; every other code
  /// means retrying is pointless.
  kUnavailable = 9,
};

/// Returns a human-readable name for a StatusCode ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Exception-free error propagation, in the style of arrow::Status /
/// absl::Status. Library code never throws; fallible operations return a
/// Status or a Result<T>.
///
/// The ok state is represented without allocation so that the common path is
/// cheap.
class Status {
 public:
  /// Constructs an ok status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not ok. Use only in
  /// examples, tests and benchmarks, never in library code.
  void CheckOK() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T> holds either a value of type T or an error Status,
/// in the style of arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit so functions can `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit so functions can `return Status::...;`. `status` must not be
  /// ok.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Accesses the value; undefined if !ok().
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T&& operator*() && { return *std::move(value_); }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Aborts with the error message if !ok(), otherwise returns the value.
  /// For examples/tests/benchmarks only.
  T& ValueOrDie() & {
    status_.CheckOK();
    return *value_;
  }
  T&& ValueOrDie() && {
    status_.CheckOK();
    return *std::move(value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Failure-taxonomy helpers (DESIGN.md "Failure taxonomy & degraded
/// mode"): retry loops key on IsTransient, backpressure surfaces to the
/// caller unretried and must never kill a writer, and everything else
/// is a hard failure that demotes whatever component hit it.
inline bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}
inline bool IsBackpressure(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted;
}

/// Propagates a non-ok Status from an expression to the caller.
#define NATIX_RETURN_NOT_OK(expr)               \
  do {                                          \
    ::natix::Status _st = (expr);               \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a Result expression; on error returns the Status, otherwise
/// moves the value into `lhs`.
#define NATIX_ASSIGN_OR_RETURN(lhs, expr)       \
  auto NATIX_CONCAT_(_res_, __LINE__) = (expr); \
  if (!NATIX_CONCAT_(_res_, __LINE__).ok())     \
    return NATIX_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(NATIX_CONCAT_(_res_, __LINE__)).value()

#define NATIX_CONCAT_IMPL_(a, b) a##b
#define NATIX_CONCAT_(a, b) NATIX_CONCAT_IMPL_(a, b)

}  // namespace natix

#endif  // NATIX_COMMON_STATUS_H_
