#include "common/status.h"

#include <cstdio>

namespace natix {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

void Status::CheckOK() const {
  if (ok()) return;
  std::fprintf(stderr, "Status not OK: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace natix
