#ifndef NATIX_COMMON_STRING_UTIL_H_
#define NATIX_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace natix {

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string_view> SplitString(std::string_view input, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view input);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a byte count as "123", "1.2KB", "3.4MB"...
std::string FormatBytes(uint64_t bytes);

/// Formats `value` with thousands separators ("1,234,567").
std::string FormatWithCommas(uint64_t value);

}  // namespace natix

#endif  // NATIX_COMMON_STRING_UTIL_H_
