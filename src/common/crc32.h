#ifndef NATIX_COMMON_CRC32_H_
#define NATIX_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace natix {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding WAL
/// entries against torn and corrupted writes. `seed` allows incremental
/// computation over discontiguous buffers: pass the previous return value
/// to continue a running checksum.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace natix

#endif  // NATIX_COMMON_CRC32_H_
