#ifndef NATIX_COMMON_THREAD_POOL_H_
#define NATIX_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace natix {

/// A small work-stealing pool for dependency-counted task graphs.
///
/// The scheduler is specialized for the shape the partitioning algorithms
/// need: a forest of tasks where every task has at most one *dependent*
/// (e.g. a bottom-up tree traversal, where a node becomes ready once all of
/// its children are done). Task bodies receive the executing worker's index
/// so callers can keep per-worker state (DP workspaces, stats) without any
/// locking in the hot path.
///
/// Scheduling: tasks whose dependency count is initially zero are seeded
/// round-robin across the workers' deques. A worker pops from the back of
/// its own deque (LIFO, cache-friendly: a just-unblocked parent is
/// processed while its children's results are hot) and steals from the
/// front of other workers' deques when its own is empty (FIFO, so thieves
/// take the work most distant from the victim's current locality).
class ThreadPool {
 public:
  /// Sentinel for "this task unblocks nothing".
  static constexpr uint32_t kNoDependent = 0xFFFFFFFFu;

  /// Total worker count *including* the thread that calls RunGraph();
  /// `num_threads - 1` background threads are spawned. `num_threads` is
  /// clamped to at least 1.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const { return workers_; }

  /// Executes tasks 0..n-1. Task i may start once `dependency_counts[i]`
  /// completions of its prerequisites have happened; finishing task i
  /// decrements the pending count of `dependent_of[i]` (kNoDependent for
  /// none). `run(task, worker)` is invoked with worker in
  /// [0, worker_count()). Blocks until all n tasks ran; the calling thread
  /// participates as worker 0. Not reentrant. Every task must eventually
  /// become ready (the graph must be an acyclic forest whose dependency
  /// counts are consistent with `dependent_of`), otherwise RunGraph never
  /// returns.
  void RunGraph(size_t n, const uint32_t* dependency_counts,
                const uint32_t* dependent_of,
                const std::function<void(size_t, unsigned)>& run);

  /// Executes n mutually independent tasks (all immediately ready, none
  /// unblocking anything) without materializing the two all-trivial
  /// dependency arrays RunGraph would need. Same blocking/worker-index
  /// contract as RunGraph. DHW's parallel extraction phase uses this: the
  /// light-subtree jobs have no ordering constraints among themselves.
  void RunIndependent(size_t n,
                      const std::function<void(size_t, unsigned)>& run);

 private:
  void Launch(size_t n, const std::function<void(size_t, unsigned)>& run);

  struct WorkerQueue {
    std::mutex mu;
    std::deque<uint32_t> tasks;
  };

  void WorkerLoop(unsigned worker);
  void WorkUntilDone(unsigned worker);
  bool TryRunOne(unsigned worker);

  unsigned workers_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  // State of the graph currently being run; written by RunGraph under mu_
  // before the workers are woken, so the wake-up synchronizes the plain
  // pointers.
  const std::function<void(size_t, unsigned)>* run_ = nullptr;
  const uint32_t* dependent_of_ = nullptr;
  std::unique_ptr<std::atomic<uint32_t>[]> pending_;
  std::atomic<size_t> remaining_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t generation_ = 0;
  unsigned active_workers_ = 0;
  bool shutdown_ = false;
};

}  // namespace natix

#endif  // NATIX_COMMON_THREAD_POOL_H_
