#ifndef NATIX_COMMON_TIMER_H_
#define NATIX_COMMON_TIMER_H_

#include <chrono>

namespace natix {

/// Monotonic stopwatch used by benchmarks and examples.
class Timer {
 public:
  Timer() { Reset(); }

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace natix

#endif  // NATIX_COMMON_TIMER_H_
