#include "common/rng.h"

#include <cmath>

namespace natix {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

int Rng::NextGeometric(double p, int cap) {
  int n = 0;
  while (n < cap && NextDouble() < p) ++n;
  return n;
}

uint64_t Rng::NextZipf(uint64_t n, double theta) {
  if (n <= 1) return 0;
  // Inverse-CDF approximation for the continuous analogue; adequate for
  // workload skew, not for statistics.
  const double u = NextDouble();
  const double exponent = 1.0 - theta;
  double r;
  if (std::fabs(exponent) < 1e-9) {
    r = std::pow(static_cast<double>(n), u);
  } else {
    r = std::pow(u * (std::pow(static_cast<double>(n), exponent) - 1.0) + 1.0,
                 1.0 / exponent);
  }
  uint64_t rank = static_cast<uint64_t>(r) - (r >= 1.0 ? 1 : 0);
  if (rank >= n) rank = n - 1;
  return rank;
}

}  // namespace natix
