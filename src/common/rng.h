#ifndef NATIX_COMMON_RNG_H_
#define NATIX_COMMON_RNG_H_

#include <cstdint>

namespace natix {

/// Deterministic, seedable pseudo-random number generator
/// (xoshiro256**). All workload generators and property tests use this so
/// that every experiment in the repository is exactly reproducible from its
/// seed, independent of the standard library implementation.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield equal streams on every platform.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability `p` of returning true.
  bool NextBool(double p = 0.5);

  /// Geometric-ish draw: number of successes before failure with continue
  /// probability `p`; capped at `cap` to keep generated structures bounded.
  int NextGeometric(double p, int cap);

  /// Zipf-like skewed draw in [0, n): rank r is ~ proportional to
  /// 1/(r+1)^theta. Used to mimic skewed fan-out / text length
  /// distributions in real XML corpora.
  uint64_t NextZipf(uint64_t n, double theta);

 private:
  uint64_t s_[4];
};

}  // namespace natix

#endif  // NATIX_COMMON_RNG_H_
