#ifndef NATIX_COMMON_RETRY_H_
#define NATIX_COMMON_RETRY_H_

#include <ctime>
#include <utility>

#include "common/status.h"

namespace natix {

/// Shared transient-failure policy: how many times a flaky-but-alive
/// device is retried and how long each attempt backs off. Every retry
/// loop in the tree (WAL appends, page-file reads, POSIX transfers)
/// draws its budget and backoff curve from one of these, so "how hard
/// do we try before declaring the device dead" is decided in exactly
/// one place.
///
/// Only transient errors (kUnavailable, see IsTransient()) are ever
/// retried. Backpressure (kResourceExhausted, disk full) is not: the
/// device is healthy and will keep saying no until the caller frees
/// space. Everything else is a hard failure and retrying is pointless.
struct RetryPolicy {
  /// Retries after the first attempt (so max_retries + 1 attempts total).
  int max_retries = 4;
  /// Backoff before retry k (0-based) is `backoff_base_ns << k`.
  long backoff_base_ns = 10'000;
};

/// Library-level retry loops (WAL append, sealed-page reads): short
/// backoffs, long enough to let a hiccup pass and invisible in tests.
/// 10us, 20us, 40us, 80us.
inline constexpr RetryPolicy kIoRetryPolicy{4, 10'000};

/// Device-level (errno) retry loops inside PosixFileBackend: the kernel
/// already absorbed EINTR, so a surviving EIO/EAGAIN deserves a longer
/// pause. 100us, 200us, 400us, 800us.
inline constexpr RetryPolicy kDeviceRetryPolicy{4, 100'000};

/// Sleeps the policy's backoff for 0-based retry `attempt`.
inline void RetryBackoff(const RetryPolicy& policy, int attempt) {
  struct timespec ts = {0, policy.backoff_base_ns << attempt};
  ::nanosleep(&ts, nullptr);
}

/// Runs `fn` (a callable returning Status), retrying while it fails
/// transiently (IsTransient) within the policy's budget. Before each
/// retry `on_retry(attempt)` runs -- the hook bumps counters and undoes
/// partial effects (the WAL truncates a part-landed append back); a
/// non-ok hook status aborts the loop and is returned as-is. The final
/// status of `fn` (ok, non-transient, or transient with the budget
/// spent) is returned unchanged.
template <typename Fn, typename OnRetry>
Status RetryTransient(const RetryPolicy& policy, Fn&& fn, OnRetry&& on_retry) {
  for (int attempt = 0;; ++attempt) {
    const Status st = fn();
    if (st.ok() || !IsTransient(st) || attempt >= policy.max_retries) {
      return st;
    }
    NATIX_RETURN_NOT_OK(on_retry(attempt));
    RetryBackoff(policy, attempt);
  }
}

}  // namespace natix

#endif  // NATIX_COMMON_RETRY_H_
