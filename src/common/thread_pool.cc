#include "common/thread_pool.h"

#include <algorithm>
#include <cassert>

namespace natix {

ThreadPool::ThreadPool(unsigned num_threads)
    : workers_(std::max(1u, num_threads)) {
  queues_.reserve(workers_);
  for (unsigned w = 0; w < workers_; ++w) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(workers_ - 1);
  for (unsigned w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::RunGraph(size_t n, const uint32_t* dependency_counts,
                          const uint32_t* dependent_of,
                          const std::function<void(size_t, unsigned)>& run) {
  if (n == 0) return;
  assert(n <= kNoDependent && "task ids must fit the queue element type");

  pending_ = std::make_unique<std::atomic<uint32_t>[]>(n);
  for (size_t i = 0; i < n; ++i) {
    pending_[i].store(dependency_counts[i], std::memory_order_relaxed);
  }
  // Seed the initially ready tasks round-robin so every worker starts with
  // a share of the frontier.
  unsigned next = 0;
  for (size_t i = 0; i < n; ++i) {
    if (dependency_counts[i] != 0) continue;
    WorkerQueue& q = *queues_[next];
    std::lock_guard<std::mutex> lock(q.mu);
    q.tasks.push_back(static_cast<uint32_t>(i));
    next = (next + 1) % workers_;
  }
  dependent_of_ = dependent_of;
  Launch(n, run);
}

void ThreadPool::RunIndependent(
    size_t n, const std::function<void(size_t, unsigned)>& run) {
  if (n == 0) return;
  assert(n <= kNoDependent && "task ids must fit the queue element type");

  unsigned next = 0;
  for (size_t i = 0; i < n; ++i) {
    WorkerQueue& q = *queues_[next];
    std::lock_guard<std::mutex> lock(q.mu);
    q.tasks.push_back(static_cast<uint32_t>(i));
    next = (next + 1) % workers_;
  }
  dependent_of_ = nullptr;  // TryRunOne: no task unblocks anything
  Launch(n, run);
}

void ThreadPool::Launch(size_t n,
                        const std::function<void(size_t, unsigned)>& run) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    run_ = &run;
    remaining_.store(n, std::memory_order_relaxed);
    ++generation_;
    active_workers_ = workers_ - 1;
  }
  cv_.notify_all();

  WorkUntilDone(/*worker=*/0);

  // All task bodies have completed (remaining_ == 0), but background
  // workers may still be inside their final steal attempts; wait until they
  // are back to sleep before tearing the graph state down.
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return active_workers_ == 0; });
    run_ = nullptr;
    dependent_of_ = nullptr;
  }
  pending_.reset();
}

void ThreadPool::WorkerLoop(unsigned worker) {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    WorkUntilDone(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_workers_;
    }
    cv_.notify_all();
  }
}

void ThreadPool::WorkUntilDone(unsigned worker) {
  for (;;) {
    if (TryRunOne(worker)) continue;
    if (remaining_.load(std::memory_order_acquire) == 0) return;
    std::this_thread::yield();
  }
}

bool ThreadPool::TryRunOne(unsigned worker) {
  uint32_t task = kNoDependent;
  {
    WorkerQueue& own = *queues_[worker];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = own.tasks.back();
      own.tasks.pop_back();
    }
  }
  if (task == kNoDependent) {
    for (unsigned i = 1; i < workers_ && task == kNoDependent; ++i) {
      WorkerQueue& victim = *queues_[(worker + i) % workers_];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = victim.tasks.front();
        victim.tasks.pop_front();
      }
    }
  }
  if (task == kNoDependent) return false;

  (*run_)(task, worker);

  const uint32_t dependent =
      dependent_of_ != nullptr ? dependent_of_[task] : kNoDependent;
  if (dependent != kNoDependent &&
      pending_[dependent].fetch_sub(1, std::memory_order_acq_rel) == 1) {
    WorkerQueue& own = *queues_[worker];
    std::lock_guard<std::mutex> lock(own.mu);
    own.tasks.push_back(dependent);
  }
  remaining_.fetch_sub(1, std::memory_order_release);
  return true;
}

}  // namespace natix
