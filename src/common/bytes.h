#ifndef NATIX_COMMON_BYTES_H_
#define NATIX_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace natix {

/// Appends little-endian primitives and length-prefixed blobs to a byte
/// vector. Used by the WAL and checkpoint serializers; the matching
/// ByteReader validates every read, so deserialization of corrupt or
/// truncated input degrades to a Status instead of undefined behaviour.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I32(int32_t v) { Raw(&v, 4); }

  /// Length-prefixed (u64) byte string.
  void Str(std::string_view s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }

  /// Raw bytes, no length prefix (caller encodes the count separately).
  void Raw(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + n);
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Bounds-checked cursor over a byte buffer. Every accessor returns
/// OutOfRange instead of reading past the end, which is what makes WAL
/// replay safe against torn entries and corrupt checkpoint payloads.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  Result<uint8_t> U8() {
    uint8_t v;
    NATIX_RETURN_NOT_OK(Raw(&v, 1));
    return v;
  }
  Result<uint16_t> U16() {
    uint16_t v;
    NATIX_RETURN_NOT_OK(Raw(&v, 2));
    return v;
  }
  Result<uint32_t> U32() {
    uint32_t v;
    NATIX_RETURN_NOT_OK(Raw(&v, 4));
    return v;
  }
  Result<uint64_t> U64() {
    uint64_t v;
    NATIX_RETURN_NOT_OK(Raw(&v, 8));
    return v;
  }
  Result<int32_t> I32() {
    int32_t v;
    NATIX_RETURN_NOT_OK(Raw(&v, 4));
    return v;
  }

  /// Reads a u64 length prefix followed by that many bytes.
  Result<std::string> Str() {
    NATIX_ASSIGN_OR_RETURN(const uint64_t n, U64());
    if (n > remaining()) {
      return Status::OutOfRange("string length " + std::to_string(n) +
                                " exceeds remaining " +
                                std::to_string(remaining()) + " bytes");
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
  }

  Status Raw(void* dst, size_t n) {
    if (n > remaining()) {
      return Status::OutOfRange("read of " + std::to_string(n) +
                                " bytes exceeds remaining " +
                                std::to_string(remaining()) + " bytes");
    }
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace natix

#endif  // NATIX_COMMON_BYTES_H_
