#ifndef NATIX_BULKLOAD_STREAMING_H_
#define NATIX_BULKLOAD_STREAMING_H_

#include <string_view>

#include "common/status.h"
#include "tree/partitioning.h"
#include "tree/tree.h"
#include "xml/document.h"
#include "xml/weight_model.h"

namespace natix {

/// Per-node reduction rule used by the streaming bulkloader. These are the
/// *main-memory friendly* bottom-up algorithms of Sec. 4.3: their decision
/// at a node only needs the residual weights of the node's direct
/// children, so partitions can be emitted (and their nodes evicted) long
/// before the document has been fully parsed. EKM is deliberately absent:
/// its binary-representation cuts are decided while processing *later
/// siblings*, so it is main-memory friendly in Natix's sense but not
/// streaming-equivalent in this simple form.
enum class BulkloadRule {
  kRs,    // rightmost siblings (the original Natix bulkloader)
  kKm,    // Kundu-Misra (single-node cuts)
  kGhdw,  // flat DP per node (best quality of the streaming rules)
};

/// Streaming bulkload options.
struct BulkloadOptions {
  /// Weight limit K (storage unit capacity in slots).
  TotalWeight limit = 256;
  /// Slot model applied to incoming nodes; `max_node_slots` is forced to
  /// `limit` so oversized text cannot make the stream unpartitionable.
  WeightModel weight_model;
  BulkloadRule rule = BulkloadRule::kGhdw;
  /// If non-zero: when an open element accumulates more than this many
  /// pending child subtrees, the leftmost ones are flushed into partitions
  /// early (the memory-bounding technique of Sec. 4.3). Deteriorates the
  /// partition count but caps resident memory even for a root with huge
  /// fan-out.
  size_t max_pending_children = 0;
  /// Whitespace/comment handling for the embedded parser.
  XmlParseOptions parse_options;
};

/// Outcome of a streaming bulkload.
struct BulkloadResult {
  /// The logical document tree (rebuilt alongside, for verification and
  /// for loading the partitioning into a store; the *partitioner* itself
  /// only ever held `peak_resident_nodes` of it).
  Tree tree;
  /// The emitted feasible sibling partitioning, including (t, t).
  Partitioning partitioning;
  /// Maximum number of nodes whose partition assignment was still
  /// undecided at any point (the bulkloader's working set).
  size_t peak_resident_nodes = 0;
  /// Number of early flushes forced by max_pending_children.
  size_t forced_flushes = 0;
};

/// One-pass document import: parses `xml` as a stream and partitions it on
/// the fly with the chosen rule. With max_pending_children == 0 the
/// resulting partitioning is *identical* to running the corresponding
/// batch algorithm (RS / KM / GHDW) on the imported tree -- the streaming
/// and batch code paths share the same per-node reduction (core/reduction.h).
Result<BulkloadResult> StreamingBulkload(std::string_view xml,
                                         const BulkloadOptions& options);

}  // namespace natix

#endif  // NATIX_BULKLOAD_STREAMING_H_
