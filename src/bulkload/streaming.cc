#include "bulkload/streaming.h"

#include <algorithm>
#include <cctype>

#include "core/reduction.h"
#include "xml/parser.h"

namespace natix {

namespace {

bool IsAllWhitespace(std::string_view s) {
  return std::all_of(s.begin(), s.end(), [](char c) {
    return std::isspace(static_cast<unsigned char>(c));
  });
}

class Bulkloader {
 public:
  explicit Bulkloader(const BulkloadOptions& options) : options_(options) {
    options_.weight_model.max_node_slots =
        static_cast<uint32_t>(options.limit);
  }

  Result<BulkloadResult> Run(std::string_view xml) {
    XmlParser parser(xml);
    for (;;) {
      NATIX_ASSIGN_OR_RETURN(XmlEvent ev, parser.Next());
      switch (ev.type) {
        case XmlEventType::kEndDocument:
          return Finish();
        case XmlEventType::kStartElement: {
          const NodeId id = AddNode(0, ev.name, NodeKind::kElement);
          open_.push_back({id, options_.weight_model.NodeWeight(0), {}});
          for (const XmlAttribute& a : ev.attributes) {
            AddLeaf(a.value.size(), a.name, NodeKind::kAttribute);
          }
          break;
        }
        case XmlEventType::kEndElement:
          NATIX_RETURN_NOT_OK(CloseElement());
          break;
        case XmlEventType::kText:
          if (open_.empty()) break;
          if (options_.parse_options.skip_whitespace_text &&
              IsAllWhitespace(ev.content)) {
            break;
          }
          AddLeaf(ev.content.size(), {}, NodeKind::kText);
          break;
        case XmlEventType::kComment:
          if (options_.parse_options.keep_comments && !open_.empty()) {
            AddLeaf(ev.content.size(), {}, NodeKind::kComment);
          }
          break;
        case XmlEventType::kProcessingInstruction:
          if (options_.parse_options.keep_comments && !open_.empty()) {
            AddLeaf(ev.content.size(), ev.name,
                    NodeKind::kProcessingInstruction);
          }
          break;
      }
    }
  }

 private:
  struct OpenElement {
    NodeId id;
    Weight weight;
    std::vector<ChildPart> children;
  };

  /// Creates the tree node; resident accounting for the partitioner.
  NodeId AddNode(uint64_t content_bytes, std::string_view label,
                 NodeKind kind) {
    const Weight w = options_.weight_model.NodeWeight(content_bytes);
    const NodeId id = result_.tree.empty()
                          ? result_.tree.AddRoot(w, label, kind)
                          : result_.tree.AppendChild(open_.back().id, w,
                                                     label, kind);
    ++resident_;
    result_.peak_resident_nodes =
        std::max(result_.peak_resident_nodes, resident_);
    return id;
  }

  void AddLeaf(uint64_t content_bytes, std::string_view label,
               NodeKind kind) {
    const NodeId id = AddNode(content_bytes, label, kind);
    AppendStub({id, options_.weight_model.NodeWeight(content_bytes), 1});
  }

  /// Hands a finished (already reduced) subtree to its parent, applying
  /// the early-flush memory bound if configured.
  void AppendStub(ChildPart stub) {
    OpenElement& parent = open_.back();
    parent.children.push_back(stub);
    if (options_.max_pending_children != 0 &&
        parent.children.size() > options_.max_pending_children) {
      EarlyFlush(&parent);
    }
  }

  /// Packs the leftmost pending children of `parent` into partitions,
  /// keeping a small tail so they can still merge with future siblings
  /// (Sec. 4.3's memory-bounding technique). Only *full* intervals are
  /// emitted -- an interval is closed when the next stub no longer fits --
  /// and a partial trailing group is carried back to pending, so the
  /// memory bound costs almost no partition quality. Pending can
  /// therefore transiently exceed max_pending_children by up to one
  /// interval's worth of stubs (at most K, since every stub weighs >= 1).
  void EarlyFlush(OpenElement* parent) {
    const size_t keep = options_.max_pending_children / 2 + 1;
    const size_t flush_count = parent->children.size() - keep;
    size_t i = 0;
    while (i < flush_count) {
      size_t j = i;
      TotalWeight w = parent->children[i].residual;
      while (j + 1 < flush_count &&
             w + parent->children[j + 1].residual <= options_.limit) {
        ++j;
        w += parent->children[j].residual;
      }
      if (j + 1 >= flush_count) break;  // partial group: carry back
      result_.partitioning.Add(parent->children[i].node,
                               parent->children[j].node);
      for (size_t k = i; k <= j; ++k) {
        resident_ -= parent->children[k].resident;
      }
      i = j + 1;
    }
    if (i == 0) return;  // nothing full enough to emit yet
    ++result_.forced_flushes;
    parent->children.erase(
        parent->children.begin(),
        parent->children.begin() + static_cast<std::ptrdiff_t>(i));
  }

  Status CloseElement() {
    OpenElement node = std::move(open_.back());
    open_.pop_back();
    size_t subtree_resident = 1;
    for (const ChildPart& c : node.children) subtree_resident += c.resident;

    size_t flushed = 0;
    TotalWeight residual = 0;
    switch (options_.rule) {
      case BulkloadRule::kRs:
        residual = RsReduce(node.weight, node.children, options_.limit,
                            &result_.partitioning, &flushed);
        break;
      case BulkloadRule::kKm:
        residual = KmReduce(node.weight, node.children, options_.limit,
                            &result_.partitioning, &flushed);
        break;
      case BulkloadRule::kGhdw:
        residual = GhdwReduce(node.weight, node.children, options_.limit,
                              &result_.partitioning, &flushed);
        break;
    }
    resident_ -= flushed;
    subtree_resident -= flushed;

    if (open_.empty()) {
      // Root closed: the remaining residual is the root partition.
      (void)residual;
      return Status::OK();
    }
    AppendStub({node.id, residual, subtree_resident});
    return Status::OK();
  }

  Result<BulkloadResult> Finish() {
    if (result_.tree.empty()) {
      return Status::ParseError("document has no root element");
    }
    result_.partitioning.Add(result_.tree.root(), result_.tree.root());
    return std::move(result_);
  }

  BulkloadOptions options_;
  std::vector<OpenElement> open_;
  BulkloadResult result_;
  size_t resident_ = 0;
};

}  // namespace

Result<BulkloadResult> StreamingBulkload(std::string_view xml,
                                         const BulkloadOptions& options) {
  return Bulkloader(options).Run(xml);
}

}  // namespace natix
