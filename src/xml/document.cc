#include "xml/document.h"

#include <algorithm>
#include <cctype>

#include "xml/parser.h"

namespace natix {

namespace {

bool IsAllWhitespace(std::string_view s) {
  return std::all_of(s.begin(), s.end(), [](char c) {
    return std::isspace(static_cast<unsigned char>(c));
  });
}

}  // namespace

int32_t XmlDocument::InternName(std::string_view name) {
  if (name.empty()) return -1;
  const auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  const int32_t id = static_cast<int32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

XmlDocument::NodeIndex XmlDocument::AddNode(NodeIndex parent, XmlNodeKind kind,
                                            std::string_view name,
                                            std::string_view content) {
  const NodeIndex id = static_cast<NodeIndex>(nodes_.size());
  Node n;
  n.parent = parent;
  n.kind = kind;
  n.name = InternName(name);
  n.content_offset = content_pool_.size();
  n.content_length = static_cast<uint32_t>(content.size());
  content_pool_.append(content);
  if (parent != kNoNode) {
    Node& p = nodes_[parent];
    if (p.last_child == kNoNode) {
      p.first_child = id;
    } else {
      nodes_[p.last_child].next_sibling = id;
    }
    p.last_child = id;
    ++p.child_count;
  }
  nodes_.push_back(n);
  return id;
}

Result<XmlDocument> XmlDocument::Parse(std::string_view xml,
                                       const XmlParseOptions& options) {
  XmlDocument doc;
  XmlParser parser(xml);
  std::vector<NodeIndex> stack;
  for (;;) {
    NATIX_ASSIGN_OR_RETURN(XmlEvent ev, parser.Next());
    switch (ev.type) {
      case XmlEventType::kEndDocument: {
        if (doc.nodes_.empty()) {
          return Status::ParseError("XML document has no root element");
        }
        return doc;
      }
      case XmlEventType::kStartElement: {
        const NodeIndex parent = stack.empty() ? kNoNode : stack.back();
        const NodeIndex el =
            doc.AddNode(parent, XmlNodeKind::kElement, ev.name, {});
        for (const XmlAttribute& a : ev.attributes) {
          doc.AddNode(el, XmlNodeKind::kAttribute, a.name, a.value);
        }
        stack.push_back(el);
        break;
      }
      case XmlEventType::kEndElement: {
        stack.pop_back();
        break;
      }
      case XmlEventType::kText: {
        if (stack.empty()) break;  // parser already rejects this
        if (options.skip_whitespace_text && IsAllWhitespace(ev.content)) {
          break;
        }
        doc.AddNode(stack.back(), XmlNodeKind::kText, {}, ev.content);
        break;
      }
      case XmlEventType::kComment: {
        if (options.keep_comments && !stack.empty()) {
          doc.AddNode(stack.back(), XmlNodeKind::kComment, {}, ev.content);
        }
        break;
      }
      case XmlEventType::kProcessingInstruction: {
        if (options.keep_comments && !stack.empty()) {
          doc.AddNode(stack.back(), XmlNodeKind::kProcessingInstruction,
                      ev.name, ev.content);
        }
        break;
      }
    }
  }
}

std::string_view XmlDocument::NameOf(NodeIndex v) const {
  const int32_t id = nodes_[v].name;
  if (id < 0) return {};
  return names_[static_cast<size_t>(id)];
}

std::string_view XmlDocument::ContentOf(NodeIndex v) const {
  return std::string_view(content_pool_)
      .substr(nodes_[v].content_offset, nodes_[v].content_length);
}

size_t XmlDocument::CountKind(XmlNodeKind kind) const {
  size_t n = 0;
  for (const Node& node : nodes_) {
    if (node.kind == kind) ++n;
  }
  return n;
}

std::string EscapeXmlText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeXmlAttribute(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string XmlDocument::Serialize() const {
  std::string out;
  if (nodes_.empty()) return out;
  // Iterative serialization with explicit close frames (deep-tree safe).
  struct Frame {
    NodeIndex node;
    bool close;
  };
  std::vector<Frame> stack = {{root(), false}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& n = nodes_[f.node];
    if (f.close) {
      out += "</";
      out += NameOf(f.node);
      out += '>';
      continue;
    }
    switch (n.kind) {
      case XmlNodeKind::kElement: {
        out += '<';
        out += NameOf(f.node);
        // Attributes first (they are the leading children by construction).
        NodeIndex c = n.first_child;
        while (c != kNoNode && nodes_[c].kind == XmlNodeKind::kAttribute) {
          out += ' ';
          out += NameOf(c);
          out += "=\"";
          out += EscapeXmlAttribute(ContentOf(c));
          out += '"';
          c = nodes_[c].next_sibling;
        }
        if (c == kNoNode) {
          out += "/>";
          break;
        }
        out += '>';
        stack.push_back({f.node, true});
        // Push non-attribute children in reverse document order.
        std::vector<NodeIndex> kids;
        for (NodeIndex k = c; k != kNoNode; k = nodes_[k].next_sibling) {
          kids.push_back(k);
        }
        for (size_t i = kids.size(); i-- > 0;) {
          stack.push_back({kids[i], false});
        }
        break;
      }
      case XmlNodeKind::kText:
        out += EscapeXmlText(ContentOf(f.node));
        break;
      case XmlNodeKind::kAttribute:
        // Handled by the parent element.
        break;
      case XmlNodeKind::kComment:
        out += "<!--";
        out += ContentOf(f.node);
        out += "-->";
        break;
      case XmlNodeKind::kProcessingInstruction:
        out += "<?";
        out += NameOf(f.node);
        if (nodes_[f.node].content_length > 0) {
          out += ' ';
          out += ContentOf(f.node);
        }
        out += "?>";
        break;
    }
  }
  return out;
}

}  // namespace natix
