#include "xml/weight_model.h"

namespace natix {

Weight WeightModel::NodeWeight(uint64_t content_bytes) const {
  const uint64_t content_slots = (content_bytes + slot_size - 1) / slot_size;
  const uint64_t w = metadata_slots + content_slots;
  if (max_node_slots != 0 && w > max_node_slots) {
    // Externalized: stub of metadata + overflow pointer slot.
    return metadata_slots + 1;
  }
  return static_cast<Weight>(w);
}

bool WeightModel::Overflows(uint64_t content_bytes) const {
  if (max_node_slots == 0) return false;
  const uint64_t content_slots = (content_bytes + slot_size - 1) / slot_size;
  return metadata_slots + content_slots > max_node_slots;
}

}  // namespace natix
