#ifndef NATIX_XML_PARSER_H_
#define NATIX_XML_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace natix {

/// One attribute of a start-element event.
struct XmlAttribute {
  std::string name;
  std::string value;  // entity references resolved
};

/// Kind of event produced by XmlParser.
enum class XmlEventType {
  kStartElement,
  kEndElement,
  kText,                    // character data (CDATA sections included)
  kComment,                 // <!-- ... -->
  kProcessingInstruction,   // <?target data?>
  kEndDocument,
};

/// One parsing event. Which fields are meaningful depends on `type`:
/// name for elements and PI targets, attributes for start elements,
/// content for text/comments/PI data.
struct XmlEvent {
  XmlEventType type = XmlEventType::kEndDocument;
  std::string name;
  std::string content;
  std::vector<XmlAttribute> attributes;
};

/// A streaming (pull) XML parser, built from scratch.
///
/// Supported: elements, attributes (single/double quoted), self-closing
/// tags, character data, CDATA sections, comments, processing
/// instructions, the XML declaration, a DOCTYPE declaration (skipped), the
/// five predefined entities and numeric character references.
/// Not supported (not needed for this reproduction): namespaces beyond
/// treating ':' as a name character, external entities, DTD content
/// models.
///
/// The parser enforces well-formedness: matching end tags, a single root
/// element, no text outside the root. Errors carry the 1-based line
/// number.
///
/// Typical use:
///
///   XmlParser parser(xml_text);
///   for (;;) {
///     NATIX_ASSIGN_OR_RETURN(XmlEvent ev, parser.Next());
///     if (ev.type == XmlEventType::kEndDocument) break;
///     ...
///   }
class XmlParser {
 public:
  explicit XmlParser(std::string_view input);

  /// Returns the next event, or kEndDocument after the root element
  /// closed. Returns ParseError on malformed input; after an error the
  /// parser must not be used further.
  Result<XmlEvent> Next();

  /// 1-based line of the current parse position (for error reporting).
  size_t line() const { return line_; }

 private:
  Status Error(const std::string& what) const;
  void SkipWhitespace();
  bool Consume(std::string_view token);
  char Peek(size_t ahead = 0) const;
  bool AtEnd() const { return pos_ >= input_.size(); }
  void Advance(size_t n = 1);

  Result<std::string> ParseName();
  Status ParseAttributes(XmlEvent* event);
  Result<std::string> ParseAttributeValue();
  Status DecodeEntity(std::string* out);
  Result<XmlEvent> ParseMarkup();  // dispatch at '<'
  Result<XmlEvent> ParseTextRun();

  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;
  std::vector<std::string> open_elements_;
  /// End event synthesized for a self-closing tag, delivered on the next
  /// Next() call.
  std::string pending_end_;
  bool has_pending_end_ = false;
  bool seen_root_ = false;
  bool done_ = false;
};

}  // namespace natix

#endif  // NATIX_XML_PARSER_H_
