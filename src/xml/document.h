#ifndef NATIX_XML_DOCUMENT_H_
#define NATIX_XML_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace natix {

/// Kind of node in an XmlDocument. Attribute nodes are materialized as the
/// first children of their element, in declaration order, mirroring how
/// the paper's weight model charges attributes (Sec. 6.1).
enum class XmlNodeKind : uint8_t {
  kElement,
  kText,
  kAttribute,
  kComment,
  kProcessingInstruction,
};

/// XML parse options.
struct XmlParseOptions {
  /// Drop text nodes that consist only of whitespace (typical for
  /// pretty-printed documents; the UW repository documents are stored
  /// this way).
  bool skip_whitespace_text = true;
  /// Keep comments and processing instructions as nodes.
  bool keep_comments = false;
};

/// An in-memory XML document tree (a small DOM), produced by
/// XmlDocument::Parse and consumed by the importer (xml/importer.h), the
/// serializer, and the examples.
///
/// Nodes live in a contiguous arena; names are interned; text/attribute
/// content lives in one shared pool. Navigation mirrors the Tree class.
class XmlDocument {
 public:
  using NodeIndex = uint32_t;
  static constexpr NodeIndex kNoNode = 0xFFFFFFFFu;

  /// Parses `xml` into a document. Returns ParseError on malformed input.
  static Result<XmlDocument> Parse(std::string_view xml,
                                   const XmlParseOptions& options = {});

  size_t size() const { return nodes_.size(); }
  NodeIndex root() const { return nodes_.empty() ? kNoNode : 0; }

  XmlNodeKind KindOf(NodeIndex v) const { return nodes_[v].kind; }
  NodeIndex Parent(NodeIndex v) const { return nodes_[v].parent; }
  NodeIndex FirstChild(NodeIndex v) const { return nodes_[v].first_child; }
  NodeIndex NextSibling(NodeIndex v) const { return nodes_[v].next_sibling; }
  size_t ChildCount(NodeIndex v) const { return nodes_[v].child_count; }

  /// Element/attribute/PI name; empty for text and comments.
  std::string_view NameOf(NodeIndex v) const;
  /// Text content, attribute value, comment body or PI data.
  std::string_view ContentOf(NodeIndex v) const;

  /// Number of element/text/attribute/comment/PI nodes, by kind.
  size_t CountKind(XmlNodeKind kind) const;

  /// Serializes back to XML text (no pretty printing; attribute children
  /// become attributes again, entities re-escaped). Round-trips with
  /// Parse for documents without insignificant whitespace.
  std::string Serialize() const;

 private:
  friend class XmlDocumentBuilder;

  struct Node {
    NodeIndex parent = kNoNode;
    NodeIndex first_child = kNoNode;
    NodeIndex last_child = kNoNode;
    NodeIndex next_sibling = kNoNode;
    uint32_t child_count = 0;
    int32_t name = -1;          // interned name id
    uint64_t content_offset = 0;  // into content_pool_
    uint32_t content_length = 0;
    XmlNodeKind kind = XmlNodeKind::kElement;
  };

  NodeIndex AddNode(NodeIndex parent, XmlNodeKind kind, std::string_view name,
                    std::string_view content);
  int32_t InternName(std::string_view name);

  std::vector<Node> nodes_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, int32_t> name_ids_;
  std::string content_pool_;
};

/// Escapes text content for XML serialization (&, <, >).
std::string EscapeXmlText(std::string_view text);

/// Escapes an attribute value (&, <, >, ").
std::string EscapeXmlAttribute(std::string_view value);

}  // namespace natix

#endif  // NATIX_XML_DOCUMENT_H_
