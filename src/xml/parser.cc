#include "xml/parser.h"

#include <cctype>

namespace natix {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '-' || c == '.';
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

}  // namespace

XmlParser::XmlParser(std::string_view input) : input_(input) {}

Status XmlParser::Error(const std::string& what) const {
  return Status::ParseError("XML, line " + std::to_string(line_) + ": " +
                            what);
}

char XmlParser::Peek(size_t ahead) const {
  return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
}

void XmlParser::Advance(size_t n) {
  for (size_t i = 0; i < n && pos_ < input_.size(); ++i) {
    if (input_[pos_] == '\n') ++line_;
    ++pos_;
  }
}

void XmlParser::SkipWhitespace() {
  while (!AtEnd() && IsSpace(input_[pos_])) Advance();
}

bool XmlParser::Consume(std::string_view token) {
  if (input_.substr(pos_, token.size()) != token) return false;
  Advance(token.size());
  return true;
}

Result<std::string> XmlParser::ParseName() {
  if (AtEnd() || !IsNameStart(Peek())) {
    return Error("expected a name");
  }
  const size_t start = pos_;
  while (!AtEnd() && IsNameChar(Peek())) Advance();
  return std::string(input_.substr(start, pos_ - start));
}

Status XmlParser::DecodeEntity(std::string* out) {
  // pos_ is at '&'.
  Advance();  // consume '&'
  const size_t start = pos_;
  while (!AtEnd() && Peek() != ';' && pos_ - start < 12) Advance();
  if (AtEnd() || Peek() != ';') {
    return Error("unterminated entity reference");
  }
  const std::string_view name = input_.substr(start, pos_ - start);
  Advance();  // consume ';'
  if (name == "lt") {
    out->push_back('<');
  } else if (name == "gt") {
    out->push_back('>');
  } else if (name == "amp") {
    out->push_back('&');
  } else if (name == "apos") {
    out->push_back('\'');
  } else if (name == "quot") {
    out->push_back('"');
  } else if (!name.empty() && name[0] == '#') {
    uint32_t code = 0;
    bool ok = name.size() > 1;
    if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
      for (size_t i = 2; i < name.size(); ++i) {
        const char c = name[i];
        uint32_t digit;
        if (c >= '0' && c <= '9') {
          digit = static_cast<uint32_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          digit = static_cast<uint32_t>(c - 'a' + 10);
        } else if (c >= 'A' && c <= 'F') {
          digit = static_cast<uint32_t>(c - 'A' + 10);
        } else {
          ok = false;
          break;
        }
        code = code * 16 + digit;
      }
    } else {
      for (size_t i = 1; i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9') {
          ok = false;
          break;
        }
        code = code * 10 + static_cast<uint32_t>(name[i] - '0');
      }
    }
    if (!ok || code == 0 || code > 0x10FFFF) {
      return Error("invalid character reference &" + std::string(name) + ";");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  } else {
    return Error("unknown entity &" + std::string(name) + ";");
  }
  return Status::OK();
}

Result<std::string> XmlParser::ParseAttributeValue() {
  const char quote = Peek();
  if (quote != '"' && quote != '\'') {
    return Error("expected quoted attribute value");
  }
  Advance();
  std::string value;
  while (!AtEnd() && Peek() != quote) {
    if (Peek() == '&') {
      NATIX_RETURN_NOT_OK(DecodeEntity(&value));
    } else if (Peek() == '<') {
      return Error("'<' in attribute value");
    } else {
      value.push_back(Peek());
      Advance();
    }
  }
  if (AtEnd()) return Error("unterminated attribute value");
  Advance();  // closing quote
  return value;
}

Status XmlParser::ParseAttributes(XmlEvent* event) {
  for (;;) {
    SkipWhitespace();
    if (AtEnd()) return Error("unterminated start tag");
    if (Peek() == '>' || Peek() == '/' || Peek() == '?') return Status::OK();
    Result<std::string> name = ParseName();
    NATIX_RETURN_NOT_OK(name.status());
    SkipWhitespace();
    if (!Consume("=")) return Error("expected '=' after attribute name");
    SkipWhitespace();
    Result<std::string> value = ParseAttributeValue();
    NATIX_RETURN_NOT_OK(value.status());
    for (const XmlAttribute& a : event->attributes) {
      if (a.name == *name) {
        return Error("duplicate attribute '" + *name + "'");
      }
    }
    event->attributes.push_back(
        {std::move(*name), std::move(*value)});
  }
}

Result<XmlEvent> XmlParser::ParseMarkup() {
  // pos_ is at '<'.
  if (Consume("<!--")) {
    const size_t start = pos_;
    while (!AtEnd() && input_.substr(pos_, 3) != "-->") Advance();
    if (AtEnd()) return Error("unterminated comment");
    XmlEvent ev;
    ev.type = XmlEventType::kComment;
    ev.content = std::string(input_.substr(start, pos_ - start));
    Advance(3);
    return ev;
  }
  if (Consume("<![CDATA[")) {
    if (open_elements_.empty()) return Error("CDATA outside root element");
    const size_t start = pos_;
    while (!AtEnd() && input_.substr(pos_, 3) != "]]>") Advance();
    if (AtEnd()) return Error("unterminated CDATA section");
    XmlEvent ev;
    ev.type = XmlEventType::kText;
    ev.content = std::string(input_.substr(start, pos_ - start));
    Advance(3);
    return ev;
  }
  if (Consume("<!DOCTYPE")) {
    // Skip to the matching '>' (internal subsets in brackets supported).
    int depth = 1;
    bool bracket = false;
    while (!AtEnd() && depth > 0) {
      const char c = Peek();
      if (c == '[') bracket = true;
      if (c == ']') bracket = false;
      if (c == '>' && !bracket) --depth;
      Advance();
    }
    if (depth != 0) return Error("unterminated DOCTYPE");
    return Next();
  }
  if (Consume("<?")) {
    Result<std::string> target = ParseName();
    NATIX_RETURN_NOT_OK(target.status());
    const size_t start = pos_;
    while (!AtEnd() && input_.substr(pos_, 2) != "?>") Advance();
    if (AtEnd()) return Error("unterminated processing instruction");
    std::string data(input_.substr(start, pos_ - start));
    Advance(2);
    if (*target == "xml" || *target == "XML") {
      return Next();  // XML declaration: skip
    }
    XmlEvent ev;
    ev.type = XmlEventType::kProcessingInstruction;
    ev.name = std::move(*target);
    // Trim one leading space between target and data.
    ev.content = std::move(data);
    while (!ev.content.empty() && IsSpace(ev.content.front())) {
      ev.content.erase(ev.content.begin());
    }
    return ev;
  }
  if (Consume("</")) {
    Result<std::string> name = ParseName();
    NATIX_RETURN_NOT_OK(name.status());
    SkipWhitespace();
    if (!Consume(">")) return Error("expected '>' in end tag");
    if (open_elements_.empty()) {
      return Error("end tag </" + *name + "> without open element");
    }
    if (open_elements_.back() != *name) {
      return Error("mismatched end tag: expected </" +
                   open_elements_.back() + ">, got </" + *name + ">");
    }
    open_elements_.pop_back();
    XmlEvent ev;
    ev.type = XmlEventType::kEndElement;
    ev.name = std::move(*name);
    return ev;
  }
  // Start tag.
  Advance();  // consume '<'
  if (seen_root_ && open_elements_.empty()) {
    return Error("document has more than one root element");
  }
  Result<std::string> name = ParseName();
  NATIX_RETURN_NOT_OK(name.status());
  XmlEvent ev;
  ev.type = XmlEventType::kStartElement;
  ev.name = std::move(*name);
  NATIX_RETURN_NOT_OK(ParseAttributes(&ev));
  SkipWhitespace();
  if (Consume("/>")) {
    // Self-closing: report the start event now and synthesize the end
    // event on the following Next() call via the pending queue.
    pending_end_ = ev.name;
    has_pending_end_ = true;
    seen_root_ = true;
    return ev;
  }
  if (!Consume(">")) return Error("expected '>' in start tag");
  open_elements_.push_back(ev.name);
  seen_root_ = true;
  return ev;
}

Result<XmlEvent> XmlParser::ParseTextRun() {
  std::string text;
  while (!AtEnd() && Peek() != '<') {
    if (Peek() == '&') {
      NATIX_RETURN_NOT_OK(DecodeEntity(&text));
    } else {
      text.push_back(Peek());
      Advance();
    }
  }
  XmlEvent ev;
  ev.type = XmlEventType::kText;
  ev.content = std::move(text);
  return ev;
}

Result<XmlEvent> XmlParser::Next() {
  if (has_pending_end_) {
    has_pending_end_ = false;
    XmlEvent ev;
    ev.type = XmlEventType::kEndElement;
    ev.name = std::move(pending_end_);
    return ev;
  }
  if (done_) {
    XmlEvent ev;
    ev.type = XmlEventType::kEndDocument;
    return ev;
  }
  if (open_elements_.empty()) {
    // Prolog or epilog: only whitespace, comments, PIs and (for the
    // prolog) the root element may appear.
    SkipWhitespace();
    if (AtEnd()) {
      if (!seen_root_) return Error("no root element");
      done_ = true;
      XmlEvent ev;
      ev.type = XmlEventType::kEndDocument;
      return ev;
    }
    if (Peek() != '<') return Error("text outside the root element");
    return ParseMarkup();
  }
  if (AtEnd()) {
    return Error("unexpected end of input, <" + open_elements_.back() +
                 "> still open");
  }
  if (Peek() == '<') return ParseMarkup();
  return ParseTextRun();
}

}  // namespace natix
