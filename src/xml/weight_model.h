#ifndef NATIX_XML_WEIGHT_MODEL_H_
#define NATIX_XML_WEIGHT_MODEL_H_

#include <cstdint>

#include "tree/tree.h"
#include "xml/document.h"

namespace natix {

/// The paper's storage weight model (Sec. 6.1): real-world storage engines
/// align objects on secondary storage to a "slot" size. A node's weight is
/// the number of slots it occupies:
///   * one slot of metadata per node (tag name id, node type), plus
///   * for text and attribute nodes, slots proportional to the content
///     length.
/// The paper uses a slot size of 8 bytes and K = 256 slots (2KB units).
struct WeightModel {
  /// Bytes per slot.
  uint32_t slot_size = 8;
  /// Metadata slots charged to every node.
  uint32_t metadata_slots = 1;
  /// If non-zero, nodes whose weight would exceed this many slots are
  /// *externalized*: the content moves to an overflow record of its own
  /// (as Natix does for large text values) and the in-tree node keeps a
  /// stub of metadata_slots + 1 slots (the overflow pointer). This keeps
  /// every in-tree node weight <= max_node_slots so that a feasible
  /// sibling partitioning always exists for K >= max_node_slots.
  uint32_t max_node_slots = 0;

  /// Weight of a node with `content_bytes` bytes of character content
  /// (0 for plain elements). Never returns 0.
  Weight NodeWeight(uint64_t content_bytes) const;

  /// True if NodeWeight() would externalize this content.
  bool Overflows(uint64_t content_bytes) const;
};

/// The paper's configuration: 8-byte slots, K = 256 slots = 2KB units.
inline constexpr TotalWeight kPaperWeightLimit = 256;

}  // namespace natix

#endif  // NATIX_XML_WEIGHT_MODEL_H_
