#ifndef NATIX_XML_IMPORTER_H_
#define NATIX_XML_IMPORTER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "tree/tree.h"
#include "xml/document.h"
#include "xml/weight_model.h"

namespace natix {

/// Result of mapping an XML document into a weighted partitioning problem
/// instance (Sec. 6.1 of the paper).
struct ImportedDocument {
  /// The ordered, labeled, weighted tree. Labels are element/attribute
  /// names; node kinds carry the XML node type. NodeIds follow document
  /// order.
  Tree tree;
  /// For each tree node, the byte length of its character content
  /// (0 for elements). Used by the storage engine to serialize records.
  std::vector<uint32_t> content_bytes;
  /// Per-node offset into `content_pool` (parallel to content_bytes).
  std::vector<uint64_t> content_offset;
  /// All character content, concatenated in document order.
  std::string content_pool;
  /// For each tree node, the corresponding XmlDocument node (parallel to
  /// NodeId); kNoNode when the tree was not built from an XmlDocument.
  std::vector<XmlDocument::NodeIndex> source_node;
  /// Nodes whose content was externalized by the weight model.
  uint64_t overflow_nodes = 0;
  /// Total externalized content bytes (stored in overflow records).
  uint64_t overflow_bytes = 0;
  /// Total document text/attribute bytes.
  uint64_t content_total_bytes = 0;
  /// Source document size in bytes (serialized form), when known.
  uint64_t source_bytes = 0;

  /// Character content of a tree node.
  std::string_view ContentOf(NodeId v) const {
    return std::string_view(content_pool)
        .substr(content_offset[v], content_bytes[v]);
  }

  /// Explicit deep copy (Tree forbids implicit copies; so must we). Used
  /// to snapshot a mutable store's document for reference rebuilds.
  ImportedDocument Clone() const {
    ImportedDocument out;
    out.tree = tree.Clone();
    out.content_bytes = content_bytes;
    out.content_offset = content_offset;
    out.content_pool = content_pool;
    out.source_node = source_node;
    out.overflow_nodes = overflow_nodes;
    out.overflow_bytes = overflow_bytes;
    out.content_total_bytes = content_total_bytes;
    out.source_bytes = source_bytes;
    return out;
  }
};

/// Converts a parsed XmlDocument into a weighted tree per `model`.
/// Fails if the document is empty.
Result<ImportedDocument> ImportDocument(const XmlDocument& doc,
                                        const WeightModel& model);

/// Convenience: parse + import in one step. `options` controls whitespace
/// and comment handling.
Result<ImportedDocument> ImportXml(
    std::string_view xml, const WeightModel& model,
    const XmlParseOptions& options = {});

}  // namespace natix

#endif  // NATIX_XML_IMPORTER_H_
