#include "xml/importer.h"

namespace natix {

namespace {

NodeKind ToTreeKind(XmlNodeKind kind) {
  switch (kind) {
    case XmlNodeKind::kElement:
      return NodeKind::kElement;
    case XmlNodeKind::kText:
      return NodeKind::kText;
    case XmlNodeKind::kAttribute:
      return NodeKind::kAttribute;
    case XmlNodeKind::kComment:
      return NodeKind::kComment;
    case XmlNodeKind::kProcessingInstruction:
      return NodeKind::kProcessingInstruction;
  }
  return NodeKind::kElement;
}

}  // namespace

Result<ImportedDocument> ImportDocument(const XmlDocument& doc,
                                        const WeightModel& model) {
  if (doc.size() == 0) {
    return Status::InvalidArgument("cannot import an empty XML document");
  }
  ImportedDocument out;
  out.tree.Reserve(doc.size());
  out.content_bytes.reserve(doc.size());
  out.source_node.reserve(doc.size());

  // Document-order walk; XmlDocument node construction order is already
  // document order, and Tree requires parents before children, which that
  // order guarantees.
  std::vector<NodeId> tree_id(doc.size());
  for (XmlDocument::NodeIndex v = 0; v < doc.size(); ++v) {
    const uint64_t content = doc.ContentOf(v).size();
    const Weight w = model.NodeWeight(content);
    const NodeKind kind = ToTreeKind(doc.KindOf(v));
    const std::string_view label = doc.NameOf(v);
    const XmlDocument::NodeIndex parent = doc.Parent(v);
    const NodeId id =
        parent == XmlDocument::kNoNode
            ? out.tree.AddRoot(w, label, kind)
            : out.tree.AppendChild(tree_id[parent], w, label, kind);
    tree_id[v] = id;
    out.content_bytes.push_back(static_cast<uint32_t>(content));
    out.content_offset.push_back(out.content_pool.size());
    out.content_pool.append(doc.ContentOf(v));
    out.source_node.push_back(v);
    out.content_total_bytes += content;
    if (model.Overflows(content)) {
      ++out.overflow_nodes;
      out.overflow_bytes += content;
    }
  }
  return out;
}

Result<ImportedDocument> ImportXml(std::string_view xml,
                                   const WeightModel& model,
                                   const XmlParseOptions& options) {
  NATIX_ASSIGN_OR_RETURN(const XmlDocument doc,
                         XmlDocument::Parse(xml, options));
  NATIX_ASSIGN_OR_RETURN(ImportedDocument imported,
                         ImportDocument(doc, model));
  imported.source_bytes = xml.size();
  return imported;
}

}  // namespace natix
