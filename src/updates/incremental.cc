#include "updates/incremental.h"

#include <algorithm>

#include "core/algorithm.h"

namespace natix {

Result<IncrementalPartitioner> IncrementalPartitioner::Create(
    Tree* tree, TotalWeight limit, const Partitioning& initial) {
  if (tree == nullptr || tree->empty()) {
    return Status::InvalidArgument("tree must exist and be non-empty");
  }
  NATIX_ASSIGN_OR_RETURN(const PartitionAnalysis analysis,
                         Analyze(*tree, initial, limit));
  if (!analysis.feasible) {
    return Status::InvalidArgument(
        "initial partitioning is not feasible for the given limit");
  }
  IncrementalPartitioner out(tree, limit);
  out.member_of_.assign(tree->size(), kNone);
  out.intervals_.reserve(initial.size());
  for (size_t i = 0; i < initial.size(); ++i) {
    const SiblingInterval& iv = initial[i];
    out.intervals_.push_back(
        {iv.first, iv.last, analysis.interval_weights[i], true});
    for (NodeId v = iv.first;; v = tree->NextSibling(v)) {
      out.member_of_[v] = static_cast<uint32_t>(i);
      if (v == iv.last) break;
    }
  }
  out.alive_count_ = initial.size();
  return out;
}

Result<IncrementalPartitioner> IncrementalPartitioner::CreateEmpty(
    Tree* tree, TotalWeight limit, Weight root_weight,
    std::string_view root_label) {
  if (tree == nullptr || !tree->empty()) {
    return Status::InvalidArgument("tree must exist and be empty");
  }
  if (root_weight == 0 || root_weight > limit) {
    return Status::InvalidArgument("root weight must be in [1, limit]");
  }
  const NodeId root = tree->AddRoot(root_weight, root_label);
  IncrementalPartitioner out(tree, limit);
  out.member_of_.assign(1, kNone);
  out.member_of_[root] = out.NewInterval(root, root, root_weight);
  out.delta_.Clear();
  return out;
}

IncrementalPartitioner::SavedState IncrementalPartitioner::SaveState() const {
  SavedState state;
  state.intervals.reserve(intervals_.size());
  for (const Interval& iv : intervals_) {
    state.intervals.push_back({iv.first, iv.last, iv.weight, iv.alive});
  }
  state.split_count = split_count_;
  return state;
}

Result<IncrementalPartitioner> IncrementalPartitioner::Restore(
    Tree* tree, TotalWeight limit, const SavedState& state) {
  if (tree == nullptr || tree->empty()) {
    return Status::InvalidArgument("tree must exist and be non-empty");
  }
  IncrementalPartitioner out(tree, limit);
  out.member_of_.assign(tree->size(), kNone);
  out.intervals_.reserve(state.intervals.size());
  for (size_t i = 0; i < state.intervals.size(); ++i) {
    const IntervalInfo& iv = state.intervals[i];
    out.intervals_.push_back({iv.first, iv.last, iv.weight, iv.alive});
    if (!iv.alive) continue;
    ++out.alive_count_;
    if (iv.first >= tree->size() || iv.last >= tree->size()) {
      return Status::InvalidArgument("interval " + std::to_string(i) +
                                     " references a node outside the tree");
    }
    // Walk the sibling run first..last; a snapshot whose endpoints do not
    // bound a run is corrupt.
    for (NodeId v = iv.first;; v = tree->NextSibling(v)) {
      if (v == kInvalidNode) {
        return Status::InvalidArgument(
            "interval " + std::to_string(i) +
            " endpoints do not bound a sibling run");
      }
      if (out.member_of_[v] != kNone) {
        return Status::InvalidArgument("node " + std::to_string(v) +
                                       " is a member of two intervals");
      }
      out.member_of_[v] = static_cast<uint32_t>(i);
      if (v == iv.last) break;
    }
  }
  if (out.alive_count_ == 0 || out.member_of_[tree->root()] == kNone) {
    return Status::InvalidArgument(
        "snapshot does not cover the root partition");
  }
  out.split_count_ = state.split_count;
  // Certify the rebuilt assignment: feasibility and the saved weights must
  // agree with a fresh analysis of the materialized partitioning.
  NATIX_RETURN_NOT_OK(out.Validate());
  return out;
}

uint32_t IncrementalPartitioner::PartitionOfNode(NodeId v) const {
  for (NodeId x = v; x != kInvalidNode; x = tree_->Parent(x)) {
    if (member_of_[x] != kNone) return member_of_[x];
  }
  return kNone;  // unreachable: the root is always a member
}

TotalWeight IncrementalPartitioner::LocalWeight(NodeId v) const {
  TotalWeight sum = 0;
  std::vector<NodeId> stack = {v};
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    sum += tree_->WeightOf(x);
    for (NodeId c = tree_->FirstChild(x); c != kInvalidNode;
         c = tree_->NextSibling(c)) {
      if (member_of_[c] == kNone) stack.push_back(c);
    }
  }
  return sum;
}

uint32_t IncrementalPartitioner::NewInterval(NodeId first, NodeId last,
                                             TotalWeight weight) {
  intervals_.push_back({first, last, weight, true});
  ++alive_count_;
  const uint32_t id = static_cast<uint32_t>(intervals_.size() - 1);
  delta_.created.push_back(id);
  return id;
}

void IncrementalPartitioner::MarkDirty(uint32_t p) {
  // Partitions born this operation are already fully rewritten by the
  // caller; only pre-existing ones need a dirty entry.
  if (std::find(delta_.created.begin(), delta_.created.end(), p) !=
      delta_.created.end()) {
    return;
  }
  if (std::find(delta_.dirty.begin(), delta_.dirty.end(), p) ==
      delta_.dirty.end()) {
    delta_.dirty.push_back(p);
  }
}

Result<NodeId> IncrementalPartitioner::InsertBefore(NodeId parent,
                                                    NodeId before,
                                                    Weight weight,
                                                    std::string_view label,
                                                    NodeKind kind) {
  if (weight == 0 || weight > limit_) {
    return Status::InvalidArgument("node weight must be in [1, limit]");
  }
  if (parent >= tree_->size()) {
    return Status::InvalidArgument("no such parent node");
  }
  if (before != kInvalidNode &&
      (before >= tree_->size() || tree_->Parent(before) != parent)) {
    return Status::InvalidArgument("'before' is not a child of 'parent'");
  }
  delta_.Clear();
  // A node inserted strictly between two members of an interval becomes a
  // member of that interval itself (sibling intervals are defined by
  // their endpoints); otherwise it joins its parent's partition as a
  // subordinate node.
  const NodeId left_neighbor =
      before == kInvalidNode ? kInvalidNode : tree_->PrevSibling(before);
  const bool inside_interval =
      before != kInvalidNode && left_neighbor != kInvalidNode &&
      member_of_[before] != kNone &&
      member_of_[before] == member_of_[left_neighbor];

  const NodeId id =
      tree_->InsertChildBefore(parent, before, weight, label, kind);
  member_of_.push_back(kNone);

  const uint32_t p =
      inside_interval ? member_of_[before] : PartitionOfNode(parent);
  if (inside_interval) member_of_[id] = p;
  intervals_[p].weight += weight;
  MarkDirty(p);
  std::vector<uint32_t> worklist;
  if (intervals_[p].weight > limit_) worklist.push_back(p);
  while (!worklist.empty()) {
    const uint32_t q = worklist.back();
    worklist.pop_back();
    if (intervals_[q].alive && intervals_[q].weight > limit_) {
      Split(q, &worklist);
    }
  }
  return id;
}

void IncrementalPartitioner::Split(uint32_t p,
                                   std::vector<uint32_t>* worklist) {
  ++split_count_;
  MarkDirty(p);  // p keeps its id but loses nodes either way
  // Note: NewInterval() grows intervals_, so p must be re-indexed after
  // any interval creation; never hold a reference across it.
  std::vector<NodeId> members;
  std::vector<TotalWeight> local;
  for (NodeId v = intervals_[p].first;; v = tree_->NextSibling(v)) {
    members.push_back(v);
    local.push_back(LocalWeight(v));
    if (v == intervals_[p].last) break;
  }

  if (members.size() == 1) {
    // A single root: shed weight below it.
    SplitBelow(members[0], p, worklist);
    return;
  }

  // Divide at a member boundary: keep the maximal prefix that fits; the
  // suffix becomes a new interval (re-enqueued if still too heavy).
  TotalWeight prefix = local[0];
  size_t cut = 1;  // first member of the suffix
  while (cut < members.size() && prefix + local[cut] <= limit_) {
    prefix += local[cut];
    ++cut;
  }
  TotalWeight suffix_weight = 0;
  for (size_t i = cut; i < members.size(); ++i) suffix_weight += local[i];
  const uint32_t q =
      NewInterval(members[cut], members.back(), suffix_weight);
  for (size_t i = cut; i < members.size(); ++i) member_of_[members[i]] = q;
  intervals_[p].last = members[cut - 1];
  intervals_[p].weight = prefix;
  if (suffix_weight > limit_) worklist->push_back(q);
  // The prefix can itself exceed the limit when its single member is
  // oversized (cut == 1 and local[0] > K): re-enqueue; the next round
  // takes the single-member path.
  if (prefix > limit_) worklist->push_back(p);
}

void IncrementalPartitioner::SplitBelow(NodeId member, uint32_t p,
                                        std::vector<uint32_t>* worklist) {
  // Invariant: partitions on the worklist weigh at most 2K (one
  // insertion, one boundary prefix or one dominator cut above the limit),
  // so a "dominator" node -- a subtree carrying more than half the
  // partition -- can always be cut alone, leaving a remainder under K.
  //
  // Balanced split (the classic record split): descend the heavy path to
  // the *deepest* dominator and cut it as a single-node interval. Both
  // sides end up with roughly half the weight, which keeps
  // append-at-the-tip growth from re-splitting on every insertion. The
  // cut subtree may still exceed K; it re-enters the worklist as a
  // single-member partition and splits the same way.
  const TotalWeight total = intervals_[p].weight;
  NodeId dominator = kInvalidNode;
  NodeId walk = member;
  for (;;) {
    NodeId heavy = kInvalidNode;
    for (NodeId c = tree_->FirstChild(walk); c != kInvalidNode;
         c = tree_->NextSibling(c)) {
      if (member_of_[c] == kNone && LocalWeight(c) > total / 2) {
        heavy = c;  // at most one child can exceed half
        break;
      }
    }
    if (heavy == kInvalidNode) break;
    dominator = heavy;
    walk = heavy;
  }
  if (dominator != kInvalidNode) {
    const TotalWeight w = LocalWeight(dominator);
    const uint32_t q = NewInterval(dominator, dominator, w);
    member_of_[dominator] = q;
    intervals_[p].weight -= w;
    if (w > limit_) worklist->push_back(q);
    // remainder = total - w < total/2 <= limit, so p now fits.
    return;
  }

  // No dominator: every subordinate child of `member` weighs at most
  // half. Cut *leftmost* runs of adjacent subordinate children into
  // intervals filled up to the limit, until the partition fits. Shedding
  // from the left keeps the right end -- where document-order insertions
  // append -- inside the parent partition with fresh headroom, so
  // append-heavy growth produces full partitions instead of splitting on
  // every insertion. Shedding all children always suffices since the
  // member's own weight is <= K.
  std::vector<NodeId> children;
  std::vector<TotalWeight> local;
  for (NodeId c = tree_->FirstChild(member); c != kInvalidNode;
       c = tree_->NextSibling(c)) {
    if (member_of_[c] == kNone) {
      children.push_back(c);
      local.push_back(LocalWeight(c));
    }
  }
  size_t left = 0;
  while (intervals_[p].weight > limit_ && left < children.size()) {
    // Fill the interval up to the limit (not just enough to fit): a
    // minimally-shed partition sits at the limit and re-splits on the
    // very next insertion.
    size_t right = left;
    TotalWeight w = local[left];
    while (right + 1 < children.size() &&
           tree_->NextSibling(children[right]) == children[right + 1] &&
           w + local[right + 1] <= limit_) {
      ++right;
      w += local[right];
    }
    const uint32_t q = NewInterval(children[left], children[right], w);
    for (size_t i = left; i <= right; ++i) member_of_[children[i]] = q;
    intervals_[p].weight -= w;
    if (w > limit_) worklist->push_back(q);
    left = right + 1;
  }
}

std::vector<NodeId> IncrementalPartitioner::PartitionNodes(uint32_t id) const {
  std::vector<NodeId> nodes;
  if (id >= intervals_.size() || !intervals_[id].alive) return nodes;
  const Interval& iv = intervals_[id];
  std::vector<NodeId> stack;
  for (NodeId v = iv.first;; v = tree_->NextSibling(v)) {
    // Document-order DFS through the subordinate (non-member) descendants.
    stack.push_back(v);
    while (!stack.empty()) {
      const NodeId x = stack.back();
      stack.pop_back();
      nodes.push_back(x);
      // Push children in reverse so the leftmost is visited first.
      size_t mark = stack.size();
      for (NodeId c = tree_->FirstChild(x); c != kInvalidNode;
           c = tree_->NextSibling(c)) {
        if (member_of_[c] == kNone) stack.push_back(c);
      }
      std::reverse(stack.begin() + mark, stack.end());
    }
    if (v == iv.last) break;
  }
  return nodes;
}

Partitioning IncrementalPartitioner::CurrentPartitioning() const {
  std::vector<uint32_t> alive;
  alive.reserve(alive_count_);
  for (uint32_t i = 0; i < intervals_.size(); ++i) {
    if (intervals_[i].alive) alive.push_back(i);
  }
  // Canonical (document) order: intervals sorted by the preorder rank of
  // their first member. Interval ids are insertion-ordered, not
  // document-ordered, so a rank sort is required.
  const std::vector<uint32_t> rank = tree_->PreorderRanks();
  std::sort(alive.begin(), alive.end(), [&](uint32_t a, uint32_t b) {
    return rank[intervals_[a].first] < rank[intervals_[b].first];
  });
  Partitioning p;
  p.Reserve(alive.size());
  for (const uint32_t i : alive) {
    p.Add(intervals_[i].first, intervals_[i].last);
  }
  return p;
}

Status IncrementalPartitioner::Validate() const {
  const Partitioning p = CurrentPartitioning();
  NATIX_ASSIGN_OR_RETURN(const PartitionAnalysis analysis,
                         Analyze(*tree_, p, limit_));
  if (!analysis.feasible) {
    return Status::Internal("incremental partitioning became infeasible");
  }
  // Cross-check the maintained weights against a fresh analysis. The
  // canonical ordering permutes intervals, so match by first member.
  std::vector<TotalWeight> by_first(tree_->size(), 0);
  for (size_t i = 0; i < p.size(); ++i) {
    by_first[p[i].first] = analysis.interval_weights[i];
  }
  for (size_t i = 0; i < intervals_.size(); ++i) {
    const Interval& iv = intervals_[i];
    if (!iv.alive) continue;
    if (by_first[iv.first] != iv.weight) {
      return Status::Internal(
          "maintained weight " + std::to_string(iv.weight) +
          " != analyzed weight " + std::to_string(by_first[iv.first]) +
          " for interval " + std::to_string(i));
    }
  }
  return Status::OK();
}

}  // namespace natix
