#include "updates/incremental.h"

#include <algorithm>

#include "core/algorithm.h"

namespace natix {

Result<IncrementalPartitioner> IncrementalPartitioner::Create(
    Tree* tree, TotalWeight limit, const Partitioning& initial) {
  if (tree == nullptr || tree->empty()) {
    return Status::InvalidArgument("tree must exist and be non-empty");
  }
  NATIX_ASSIGN_OR_RETURN(const PartitionAnalysis analysis,
                         Analyze(*tree, initial, limit));
  if (!analysis.feasible) {
    return Status::InvalidArgument(
        "initial partitioning is not feasible for the given limit");
  }
  IncrementalPartitioner out(tree, limit);
  out.member_of_.assign(tree->size(), kNone);
  out.intervals_.reserve(initial.size());
  for (size_t i = 0; i < initial.size(); ++i) {
    const SiblingInterval& iv = initial[i];
    out.intervals_.push_back(
        {iv.first, iv.last, analysis.interval_weights[i], true});
    for (NodeId v = iv.first;; v = tree->NextSibling(v)) {
      out.member_of_[v] = static_cast<uint32_t>(i);
      if (v == iv.last) break;
    }
  }
  out.alive_count_ = initial.size();
  return out;
}

Result<IncrementalPartitioner> IncrementalPartitioner::CreateEmpty(
    Tree* tree, TotalWeight limit, Weight root_weight,
    std::string_view root_label) {
  if (tree == nullptr || !tree->empty()) {
    return Status::InvalidArgument("tree must exist and be empty");
  }
  if (root_weight == 0 || root_weight > limit) {
    return Status::InvalidArgument("root weight must be in [1, limit]");
  }
  const NodeId root = tree->AddRoot(root_weight, root_label);
  IncrementalPartitioner out(tree, limit);
  out.member_of_.assign(1, kNone);
  out.member_of_[root] = out.NewInterval(root, root, root_weight);
  out.delta_.Clear();
  return out;
}

IncrementalPartitioner::SavedState IncrementalPartitioner::SaveState() const {
  SavedState state;
  state.intervals.reserve(intervals_.size());
  for (const Interval& iv : intervals_) {
    state.intervals.push_back({iv.first, iv.last, iv.weight, iv.alive});
  }
  state.split_count = split_count_;
  state.merge_count = merge_count_;
  return state;
}

Result<IncrementalPartitioner> IncrementalPartitioner::Restore(
    Tree* tree, TotalWeight limit, const SavedState& state) {
  if (tree == nullptr || tree->empty()) {
    return Status::InvalidArgument("tree must exist and be non-empty");
  }
  IncrementalPartitioner out(tree, limit);
  out.member_of_.assign(tree->size(), kNone);
  out.intervals_.reserve(state.intervals.size());
  for (size_t i = 0; i < state.intervals.size(); ++i) {
    const IntervalInfo& iv = state.intervals[i];
    out.intervals_.push_back({iv.first, iv.last, iv.weight, iv.alive});
    if (!iv.alive) continue;
    ++out.alive_count_;
    if (iv.first >= tree->size() || iv.last >= tree->size()) {
      return Status::InvalidArgument("interval " + std::to_string(i) +
                                     " references a node outside the tree");
    }
    // Walk the sibling run first..last; a snapshot whose endpoints do not
    // bound a run is corrupt.
    for (NodeId v = iv.first;; v = tree->NextSibling(v)) {
      if (v == kInvalidNode) {
        return Status::InvalidArgument(
            "interval " + std::to_string(i) +
            " endpoints do not bound a sibling run");
      }
      if (out.member_of_[v] != kNone) {
        return Status::InvalidArgument("node " + std::to_string(v) +
                                       " is a member of two intervals");
      }
      out.member_of_[v] = static_cast<uint32_t>(i);
      if (v == iv.last) break;
    }
  }
  if (out.alive_count_ == 0 || out.member_of_[tree->root()] == kNone) {
    return Status::InvalidArgument(
        "snapshot does not cover the root partition");
  }
  out.split_count_ = state.split_count;
  out.merge_count_ = state.merge_count;
  // Certify the rebuilt assignment: feasibility and the saved weights must
  // agree with a fresh analysis of the materialized partitioning.
  NATIX_RETURN_NOT_OK(out.Validate());
  return out;
}

uint32_t IncrementalPartitioner::PartitionOfNode(NodeId v) const {
  for (NodeId x = v; x != kInvalidNode; x = tree_->Parent(x)) {
    if (member_of_[x] != kNone) return member_of_[x];
  }
  return kNone;  // unreachable: the root is always a member
}

TotalWeight IncrementalPartitioner::LocalWeight(NodeId v) const {
  TotalWeight sum = 0;
  std::vector<NodeId> stack = {v};
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    sum += tree_->WeightOf(x);
    for (NodeId c = tree_->FirstChild(x); c != kInvalidNode;
         c = tree_->NextSibling(c)) {
      if (member_of_[c] == kNone) stack.push_back(c);
    }
  }
  return sum;
}

uint32_t IncrementalPartitioner::NewInterval(NodeId first, NodeId last,
                                             TotalWeight weight) {
  intervals_.push_back({first, last, weight, true});
  ++alive_count_;
  const uint32_t id = static_cast<uint32_t>(intervals_.size() - 1);
  delta_.created.push_back(id);
  return id;
}

void IncrementalPartitioner::MarkDirty(uint32_t p) {
  // Partitions born this operation are already fully rewritten by the
  // caller; only pre-existing ones need a dirty entry.
  if (std::find(delta_.created.begin(), delta_.created.end(), p) !=
      delta_.created.end()) {
    return;
  }
  if (std::find(delta_.dirty.begin(), delta_.dirty.end(), p) ==
      delta_.dirty.end()) {
    delta_.dirty.push_back(p);
  }
}

void IncrementalPartitioner::MarkDeleted(uint32_t p) {
  auto erase_from = [p](std::vector<uint32_t>* list) {
    auto it = std::find(list->begin(), list->end(), p);
    if (it == list->end()) return false;
    list->erase(it);
    return true;
  };
  erase_from(&delta_.dirty);
  // A partition both created and retired within one operation never
  // reaches the caller at all.
  if (erase_from(&delta_.created)) return;
  if (std::find(delta_.deleted.begin(), delta_.deleted.end(), p) ==
      delta_.deleted.end()) {
    delta_.deleted.push_back(p);
  }
}

void IncrementalPartitioner::KillInterval(uint32_t p) {
  if (!intervals_[p].alive) return;
  intervals_[p].alive = false;
  --alive_count_;
  MarkDeleted(p);
}

void IncrementalPartitioner::MergeInto(uint32_t survivor, uint32_t victim) {
  for (NodeId m = intervals_[victim].first;; m = tree_->NextSibling(m)) {
    member_of_[m] = survivor;
    if (m == intervals_[victim].last) break;
  }
  intervals_[survivor].last = intervals_[victim].last;
  intervals_[survivor].weight += intervals_[victim].weight;
  MarkDirty(survivor);
  KillInterval(victim);
  ++merge_count_;
}

void IncrementalPartitioner::MaybeMerge(uint32_t p) {
  if (p == kNone || p >= intervals_.size()) return;
  // An interval under half the limit merges with a run-adjacent sibling
  // interval whenever the union still fits; preferring the left neighbour
  // keeps the merge deterministic. Repeats while the survivor is still
  // under-utilized (bounded by the number of sibling intervals).
  while (intervals_[p].alive && intervals_[p].weight * 2 < limit_) {
    const NodeId before_first = tree_->PrevSibling(intervals_[p].first);
    if (before_first != kInvalidNode) {
      const uint32_t left = member_of_[before_first];
      if (left != kNone && left != p && intervals_[left].alive &&
          intervals_[left].last == before_first &&
          intervals_[left].weight + intervals_[p].weight <= limit_) {
        MergeInto(left, p);
        p = left;
        continue;
      }
    }
    const NodeId after_last = tree_->NextSibling(intervals_[p].last);
    if (after_last != kInvalidNode) {
      const uint32_t right = member_of_[after_last];
      if (right != kNone && right != p && intervals_[right].alive &&
          intervals_[right].first == after_last &&
          intervals_[right].weight + intervals_[p].weight <= limit_) {
        MergeInto(p, right);
        continue;
      }
    }
    break;
  }
}

Result<NodeId> IncrementalPartitioner::InsertBefore(NodeId parent,
                                                    NodeId before,
                                                    Weight weight,
                                                    std::string_view label,
                                                    NodeKind kind) {
  if (weight == 0 || weight > limit_) {
    return Status::InvalidArgument("node weight must be in [1, limit]");
  }
  if (parent >= tree_->size() || !tree_->IsAlive(parent)) {
    return Status::InvalidArgument("no such parent node");
  }
  if (before != kInvalidNode &&
      (before >= tree_->size() || tree_->Parent(before) != parent)) {
    return Status::InvalidArgument("'before' is not a child of 'parent'");
  }
  delta_.Clear();
  // A node inserted strictly between two members of an interval becomes a
  // member of that interval itself (sibling intervals are defined by
  // their endpoints); otherwise it joins its parent's partition as a
  // subordinate node.
  const NodeId left_neighbor =
      before == kInvalidNode ? kInvalidNode : tree_->PrevSibling(before);
  const bool inside_interval =
      before != kInvalidNode && left_neighbor != kInvalidNode &&
      member_of_[before] != kNone &&
      member_of_[before] == member_of_[left_neighbor];

  const NodeId id =
      tree_->InsertChildBefore(parent, before, weight, label, kind);
  member_of_.push_back(kNone);

  const uint32_t p =
      inside_interval ? member_of_[before] : PartitionOfNode(parent);
  if (inside_interval) member_of_[id] = p;
  intervals_[p].weight += weight;
  MarkDirty(p);
  SplitToFit(p);
  return id;
}

void IncrementalPartitioner::SplitToFit(uint32_t p) {
  std::vector<uint32_t> worklist;
  if (intervals_[p].weight > limit_) worklist.push_back(p);
  while (!worklist.empty()) {
    const uint32_t q = worklist.back();
    worklist.pop_back();
    if (intervals_[q].alive && intervals_[q].weight > limit_) {
      Split(q, &worklist);
    }
  }
}

Result<std::vector<NodeId>> IncrementalPartitioner::DeleteSubtree(NodeId v) {
  if (v >= tree_->size() || !tree_->IsAlive(v)) {
    return Status::InvalidArgument("no such node");
  }
  if (v == tree_->root()) {
    return Status::InvalidArgument("the root cannot be deleted");
  }
  delta_.Clear();
  // All weight and endpoint bookkeeping uses sibling links that the
  // unlink below destroys, so it runs first.
  const uint32_t p = PartitionOfNode(v);
  const TotalWeight w = LocalWeight(v);
  const NodeId old_left = tree_->PrevSibling(v);
  const NodeId old_right = tree_->NextSibling(v);
  const std::vector<NodeId> subtree = tree_->SubtreeNodes(v);

  // Intervals whose members lie strictly below v vanish with the subtree
  // (a member below v has its whole sibling run below v). Their weight is
  // exactly the part of the subtree that LocalWeight(v) stopped at.
  for (const NodeId x : subtree) {
    if (x == v) continue;
    const uint32_t q = member_of_[x];
    if (q != kNone) KillInterval(q);
  }

  if (member_of_[v] == p && intervals_[p].first == v &&
      intervals_[p].last == v) {
    // v was the sole member: the whole partition goes with it.
    KillInterval(p);
  } else {
    if (member_of_[v] == p) {
      if (intervals_[p].first == v) intervals_[p].first = old_right;
      if (intervals_[p].last == v) intervals_[p].last = old_left;
    }
    intervals_[p].weight -= w;
    MarkDirty(p);
  }
  for (const NodeId x : subtree) member_of_[x] = kNone;

  std::vector<NodeId> removed;
  tree_->RemoveSubtree(v, &removed);

  // Neighbour-merge pass: the shrunken partition itself, plus the two
  // partitions whose runs the removal may have made adjacent.
  if (intervals_[p].alive) MaybeMerge(p);
  if (old_left != kInvalidNode && member_of_[old_left] != kNone) {
    MaybeMerge(member_of_[old_left]);
  }
  if (old_right != kInvalidNode && member_of_[old_right] != kNone) {
    MaybeMerge(member_of_[old_right]);
  }
  return removed;
}

Status IncrementalPartitioner::MoveSubtree(NodeId v, NodeId parent,
                                           NodeId before) {
  if (v >= tree_->size() || !tree_->IsAlive(v)) {
    return Status::InvalidArgument("no such node");
  }
  if (v == tree_->root()) {
    return Status::InvalidArgument("the root cannot be moved");
  }
  if (parent >= tree_->size() || !tree_->IsAlive(parent)) {
    return Status::InvalidArgument("no such parent node");
  }
  if (tree_->IsAncestorOrSelf(v, parent)) {
    return Status::InvalidArgument(
        "cannot move a subtree under its own descendant");
  }
  if (before == v) {
    return Status::InvalidArgument("cannot move a node before itself");
  }
  if (before != kInvalidNode &&
      (before >= tree_->size() || tree_->Parent(before) != parent)) {
    return Status::InvalidArgument("'before' is not a child of 'parent'");
  }
  delta_.Clear();
  const uint32_t p_src = PartitionOfNode(v);
  const TotalWeight w = LocalWeight(v);
  const NodeId old_left = tree_->PrevSibling(v);
  const NodeId old_right = tree_->NextSibling(v);
  // When v is the sole member of its own interval, the interval travels
  // with the splice: no weight moves anywhere, only its crossing edges
  // (parent back-pointer, boundary proxies) change.
  const bool carries_own_interval = member_of_[v] != kNone &&
                                    intervals_[p_src].first == v &&
                                    intervals_[p_src].last == v;
  if (!carries_own_interval) {
    if (member_of_[v] == p_src) {
      if (intervals_[p_src].first == v) intervals_[p_src].first = old_right;
      if (intervals_[p_src].last == v) intervals_[p_src].last = old_left;
      member_of_[v] = kNone;
    }
    intervals_[p_src].weight -= w;
  }
  MarkDirty(p_src);

  tree_->DetachSubtree(v);
  // Same membership rule as InsertBefore, evaluated while v is detached:
  // spliced strictly between two members of one interval, v must become a
  // member of it (interval runs are contiguous); otherwise it joins the
  // destination parent's partition as a subordinate -- or, when it
  // carries its own interval, simply lands between runs.
  const NodeId left_neighbor =
      before == kInvalidNode ? kInvalidNode : tree_->PrevSibling(before);
  const bool inside_interval =
      before != kInvalidNode && left_neighbor != kInvalidNode &&
      member_of_[before] != kNone &&
      member_of_[before] == member_of_[left_neighbor];
  tree_->AttachSubtree(v, parent, before);
  if (carries_own_interval && inside_interval) {
    // A carried singleton interval may not sit mid-run inside another
    // interval; absorb it into the surrounding one instead.
    const uint32_t p_dst = member_of_[before];
    member_of_[v] = p_dst;
    intervals_[p_dst].weight += w;
    KillInterval(p_src);
    MarkDirty(p_dst);
    SplitToFit(p_dst);
  } else if (!carries_own_interval) {
    const uint32_t p_dst =
        inside_interval ? member_of_[before] : PartitionOfNode(parent);
    if (inside_interval) member_of_[v] = p_dst;
    intervals_[p_dst].weight += w;
    MarkDirty(p_dst);
    SplitToFit(p_dst);
  }

  // The source side shrank (or its run gap closed): same merge pass as a
  // delete.
  if (!carries_own_interval && intervals_[p_src].alive) MaybeMerge(p_src);
  if (old_left != kInvalidNode && member_of_[old_left] != kNone) {
    MaybeMerge(member_of_[old_left]);
  }
  if (old_right != kInvalidNode && member_of_[old_right] != kNone) {
    MaybeMerge(member_of_[old_right]);
  }
  return Status::OK();
}

Status IncrementalPartitioner::Rename(NodeId v, std::string_view label) {
  if (v >= tree_->size() || !tree_->IsAlive(v)) {
    return Status::InvalidArgument("no such node");
  }
  delta_.Clear();
  tree_->SetLabel(v, label);
  MarkDirty(PartitionOfNode(v));
  return Status::OK();
}

void IncrementalPartitioner::Split(uint32_t p,
                                   std::vector<uint32_t>* worklist) {
  ++split_count_;
  MarkDirty(p);  // p keeps its id but loses nodes either way
  // Note: NewInterval() grows intervals_, so p must be re-indexed after
  // any interval creation; never hold a reference across it.
  std::vector<NodeId> members;
  std::vector<TotalWeight> local;
  for (NodeId v = intervals_[p].first;; v = tree_->NextSibling(v)) {
    members.push_back(v);
    local.push_back(LocalWeight(v));
    if (v == intervals_[p].last) break;
  }

  if (members.size() == 1) {
    // A single root: shed weight below it.
    SplitBelow(members[0], p, worklist);
    return;
  }

  // Divide at a member boundary: keep the maximal prefix that fits; the
  // suffix becomes a new interval (re-enqueued if still too heavy).
  TotalWeight prefix = local[0];
  size_t cut = 1;  // first member of the suffix
  while (cut < members.size() && prefix + local[cut] <= limit_) {
    prefix += local[cut];
    ++cut;
  }
  TotalWeight suffix_weight = 0;
  for (size_t i = cut; i < members.size(); ++i) suffix_weight += local[i];
  const uint32_t q =
      NewInterval(members[cut], members.back(), suffix_weight);
  for (size_t i = cut; i < members.size(); ++i) member_of_[members[i]] = q;
  intervals_[p].last = members[cut - 1];
  intervals_[p].weight = prefix;
  if (suffix_weight > limit_) worklist->push_back(q);
  // The prefix can itself exceed the limit when its single member is
  // oversized (cut == 1 and local[0] > K): re-enqueue; the next round
  // takes the single-member path.
  if (prefix > limit_) worklist->push_back(p);
}

void IncrementalPartitioner::SplitBelow(NodeId member, uint32_t p,
                                        std::vector<uint32_t>* worklist) {
  // Invariant: partitions on the worklist weigh at most 2K (one
  // insertion, one boundary prefix or one dominator cut above the limit),
  // so a "dominator" node -- a subtree carrying more than half the
  // partition -- can always be cut alone, leaving a remainder under K.
  //
  // Balanced split (the classic record split): descend the heavy path to
  // the *deepest* dominator and cut it as a single-node interval. Both
  // sides end up with roughly half the weight, which keeps
  // append-at-the-tip growth from re-splitting on every insertion. The
  // cut subtree may still exceed K; it re-enters the worklist as a
  // single-member partition and splits the same way.
  const TotalWeight total = intervals_[p].weight;
  NodeId dominator = kInvalidNode;
  NodeId walk = member;
  for (;;) {
    NodeId heavy = kInvalidNode;
    for (NodeId c = tree_->FirstChild(walk); c != kInvalidNode;
         c = tree_->NextSibling(c)) {
      if (member_of_[c] == kNone && LocalWeight(c) > total / 2) {
        heavy = c;  // at most one child can exceed half
        break;
      }
    }
    if (heavy == kInvalidNode) break;
    dominator = heavy;
    walk = heavy;
  }
  if (dominator != kInvalidNode) {
    const TotalWeight w = LocalWeight(dominator);
    const uint32_t q = NewInterval(dominator, dominator, w);
    member_of_[dominator] = q;
    intervals_[p].weight -= w;
    if (w > limit_) worklist->push_back(q);
    // remainder = total - w < total/2 <= limit, so p now fits.
    return;
  }

  // No dominator: every subordinate child of `member` weighs at most
  // half. Cut *leftmost* runs of adjacent subordinate children into
  // intervals filled up to the limit, until the partition fits. Shedding
  // from the left keeps the right end -- where document-order insertions
  // append -- inside the parent partition with fresh headroom, so
  // append-heavy growth produces full partitions instead of splitting on
  // every insertion. Shedding all children always suffices since the
  // member's own weight is <= K.
  std::vector<NodeId> children;
  std::vector<TotalWeight> local;
  for (NodeId c = tree_->FirstChild(member); c != kInvalidNode;
       c = tree_->NextSibling(c)) {
    if (member_of_[c] == kNone) {
      children.push_back(c);
      local.push_back(LocalWeight(c));
    }
  }
  size_t left = 0;
  while (intervals_[p].weight > limit_ && left < children.size()) {
    // Fill the interval up to the limit (not just enough to fit): a
    // minimally-shed partition sits at the limit and re-splits on the
    // very next insertion.
    size_t right = left;
    TotalWeight w = local[left];
    while (right + 1 < children.size() &&
           tree_->NextSibling(children[right]) == children[right + 1] &&
           w + local[right + 1] <= limit_) {
      ++right;
      w += local[right];
    }
    const uint32_t q = NewInterval(children[left], children[right], w);
    for (size_t i = left; i <= right; ++i) member_of_[children[i]] = q;
    intervals_[p].weight -= w;
    if (w > limit_) worklist->push_back(q);
    left = right + 1;
  }
}

std::vector<NodeId> IncrementalPartitioner::PartitionNodes(uint32_t id) const {
  std::vector<NodeId> nodes;
  if (id >= intervals_.size() || !intervals_[id].alive) return nodes;
  const Interval& iv = intervals_[id];
  std::vector<NodeId> stack;
  for (NodeId v = iv.first;; v = tree_->NextSibling(v)) {
    // Document-order DFS through the subordinate (non-member) descendants.
    stack.push_back(v);
    while (!stack.empty()) {
      const NodeId x = stack.back();
      stack.pop_back();
      nodes.push_back(x);
      // Push children in reverse so the leftmost is visited first.
      size_t mark = stack.size();
      for (NodeId c = tree_->FirstChild(x); c != kInvalidNode;
           c = tree_->NextSibling(c)) {
        if (member_of_[c] == kNone) stack.push_back(c);
      }
      std::reverse(stack.begin() + mark, stack.end());
    }
    if (v == iv.last) break;
  }
  return nodes;
}

Partitioning IncrementalPartitioner::CurrentPartitioning() const {
  std::vector<uint32_t> alive;
  alive.reserve(alive_count_);
  for (uint32_t i = 0; i < intervals_.size(); ++i) {
    if (intervals_[i].alive) alive.push_back(i);
  }
  // Canonical (document) order: intervals sorted by the preorder rank of
  // their first member. Interval ids are insertion-ordered, not
  // document-ordered, so a rank sort is required.
  const std::vector<uint32_t> rank = tree_->PreorderRanks();
  std::sort(alive.begin(), alive.end(), [&](uint32_t a, uint32_t b) {
    return rank[intervals_[a].first] < rank[intervals_[b].first];
  });
  Partitioning p;
  p.Reserve(alive.size());
  for (const uint32_t i : alive) {
    p.Add(intervals_[i].first, intervals_[i].last);
  }
  return p;
}

Status IncrementalPartitioner::Validate() const {
  const Partitioning p = CurrentPartitioning();
  NATIX_ASSIGN_OR_RETURN(const PartitionAnalysis analysis,
                         Analyze(*tree_, p, limit_));
  if (!analysis.feasible) {
    return Status::Internal("incremental partitioning became infeasible");
  }
  // Cross-check the maintained weights against a fresh analysis. The
  // canonical ordering permutes intervals, so match by first member.
  std::vector<TotalWeight> by_first(tree_->size(), 0);
  for (size_t i = 0; i < p.size(); ++i) {
    by_first[p[i].first] = analysis.interval_weights[i];
  }
  for (size_t i = 0; i < intervals_.size(); ++i) {
    const Interval& iv = intervals_[i];
    if (!iv.alive) continue;
    if (by_first[iv.first] != iv.weight) {
      return Status::Internal(
          "maintained weight " + std::to_string(iv.weight) +
          " != analyzed weight " + std::to_string(by_first[iv.first]) +
          " for interval " + std::to_string(i));
    }
  }
  return Status::OK();
}

}  // namespace natix
