#ifndef NATIX_UPDATES_INCREMENTAL_H_
#define NATIX_UPDATES_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "tree/partitioning.h"
#include "tree/tree.h"

namespace natix {

/// Changelog of one mutating operation on an IncrementalPartitioner:
/// which partitions a caller that materializes partitions (e.g. the
/// record-per-partition store) must rewrite. Ids are the partitioner's
/// stable interval ids.
struct PartitionDelta {
  /// Pre-existing partitions whose node set changed (gained or lost
  /// nodes through an insert, delete, move, merge or split).
  std::vector<uint32_t> dirty;
  /// Partitions created by splits during the operation.
  std::vector<uint32_t> created;
  /// Pre-existing partitions retired by the operation: every node they
  /// held was deleted, or a neighbour-merge absorbed them. A materializing
  /// caller frees their records. The three lists are disjoint -- a
  /// partition created and retired within one operation appears nowhere.
  std::vector<uint32_t> deleted;

  bool empty() const {
    return dirty.empty() && created.empty() && deleted.empty();
  }
  void Clear() {
    dirty.clear();
    created.clear();
    deleted.clear();
  }
};

/// Node-at-a-time maintenance of a sibling partitioning under insertions
/// -- the online counterpart of the bulk algorithms, in the spirit of the
/// original Natix storage maintenance the paper builds on (its reference
/// [9], Kanne/Moerkotte ICDE 2000).
///
/// The partitioner owns the evolving assignment: every inserted node
/// first joins its parent's partition; when a partition outgrows the
/// weight limit it is *split*:
///   * an interval with several members is divided at a member boundary
///     (the maximal prefix that still fits), preserving sibling runs;
///   * a single-member partition sheds the rightmost subordinate children
///     of its root into a new sibling interval (the classic Natix record
///     split).
/// Splits cascade through a worklist until every partition fits again, so
/// the structure is feasible after every operation. Amortized cost per
/// insertion is O(K) plus the depth walk to find the parent's partition.
///
/// Every InsertBefore() additionally records a PartitionDelta -- the
/// interval ids it dirtied or created -- so callers maintaining per-
/// partition materializations (physical records) pay O(touched
/// partitions) per operation instead of materializing everything.
///
/// The tree is borrowed and mutated through this class only.
class IncrementalPartitioner {
 public:
  /// Everything a caller needs to materialize one partition.
  struct IntervalInfo {
    NodeId first = kInvalidNode;
    NodeId last = kInvalidNode;
    TotalWeight weight = 0;
    bool alive = false;
  };

  /// Starts from an existing feasible partitioning of `*tree` (e.g. a
  /// bulkload result), which is copied into the internal representation.
  /// Interval id i corresponds to `initial[i]`.
  static Result<IncrementalPartitioner> Create(Tree* tree, TotalWeight limit,
                                               const Partitioning& initial);

  /// Starts from a fresh one-node tree. `*tree` must be empty; a root with
  /// the given weight/label is created.
  static Result<IncrementalPartitioner> CreateEmpty(
      Tree* tree, TotalWeight limit, Weight root_weight,
      std::string_view root_label = {});

  /// Snapshot of the interval table (by stable id, dead slots included),
  /// for checkpointing. Together with the tree it fully determines the
  /// partitioner's state; member links are derivable from the endpoints.
  struct SavedState {
    std::vector<IntervalInfo> intervals;
    uint64_t split_count = 0;
    uint64_t merge_count = 0;
  };
  SavedState SaveState() const;

  /// Rebuilds a partitioner over `*tree` from a SaveState() snapshot.
  /// Member links are recomputed by walking each interval's sibling run;
  /// malformed snapshots (out-of-range nodes, broken runs, weight
  /// mismatches) are rejected with a Status.
  static Result<IncrementalPartitioner> Restore(Tree* tree, TotalWeight limit,
                                                const SavedState& state);

  /// Inserts a node as a child of `parent`, immediately before `before`
  /// (kInvalidNode appends as the rightmost child). Returns the new
  /// NodeId and resets last_delta() to this operation's changelog. Fails
  /// if `weight` is 0 or exceeds the limit.
  Result<NodeId> InsertBefore(NodeId parent, NodeId before, Weight weight,
                              std::string_view label = {},
                              NodeKind kind = NodeKind::kElement);

  /// Deletes the subtree rooted at `v`: every node in it is tombstoned in
  /// the tree and leaves its partition. Partitions that lose all nodes are
  /// retired (delta deleted-list); an affected partition left under half
  /// the weight limit is merged with a run-adjacent sibling partition when
  /// the union still fits (neighbour-merge, fighting utilization drift).
  /// Returns the removed NodeIds in preorder and resets last_delta().
  /// The root cannot be deleted.
  Result<std::vector<NodeId>> DeleteSubtree(NodeId v);

  /// Splices the subtree rooted at `v` to a new position (child of
  /// `parent`, immediately before `before`; kInvalidNode appends). The
  /// subtree's internal partition structure travels untouched: only the
  /// source partition, the destination partition and -- when `v` is the
  /// sole member of its own interval -- that interval's crossing edges
  /// change. Splits cascade at the destination and the source side is
  /// neighbour-merged like a delete. Resets last_delta().
  Status MoveSubtree(NodeId v, NodeId parent, NodeId before);

  /// Replaces the label of `v` and marks its partition dirty so the
  /// caller re-materializes the one record holding it. Resets
  /// last_delta().
  Status Rename(NodeId v, std::string_view label);

  /// Changelog of the most recent mutating operation.
  const PartitionDelta& last_delta() const { return delta_; }

  /// Interval by stable id (ids in [0, interval_count()); dead intervals
  /// have alive == false).
  IntervalInfo interval(uint32_t id) const {
    const Interval& iv = intervals_[id];
    return {iv.first, iv.last, iv.weight, iv.alive};
  }
  /// Number of interval slots ever allocated, including dead ones.
  size_t interval_count() const { return intervals_.size(); }

  /// Interval id of the partition containing `v` (the interval of the
  /// nearest interval-member ancestor-or-self). O(depth).
  uint32_t PartitionContaining(NodeId v) const { return PartitionOfNode(v); }

  /// All nodes of partition `id` in document order: each interval member
  /// followed by its subordinate (non-member) descendants. O(partition
  /// size).
  std::vector<NodeId> PartitionNodes(uint32_t id) const;

  /// Materializes the current partitioning with intervals in canonical
  /// (document) order of their first member. O(n + |P| log |P|).
  Partitioning CurrentPartitioning() const;

  size_t partition_count() const { return alive_count_; }
  uint64_t split_count() const { return split_count_; }
  uint64_t merge_count() const { return merge_count_; }
  TotalWeight limit() const { return limit_; }

  /// Re-analyzes the materialized partitioning against the tree; used by
  /// tests to certify the incremental bookkeeping.
  Status Validate() const;

 private:
  static constexpr uint32_t kNone = 0xFFFFFFFFu;

  struct Interval {
    NodeId first = kInvalidNode;
    NodeId last = kInvalidNode;
    TotalWeight weight = 0;
    bool alive = false;
  };

  IncrementalPartitioner(Tree* tree, TotalWeight limit)
      : tree_(tree), limit_(limit) {}

  /// Interval id of the partition containing `v` (walks to the nearest
  /// interval-member ancestor-or-self).
  uint32_t PartitionOfNode(NodeId v) const;

  /// Partition-local subtree weight of `v` (stops at interval members).
  TotalWeight LocalWeight(NodeId v) const;

  uint32_t NewInterval(NodeId first, NodeId last, TotalWeight weight);

  /// Records `p` in the current delta unless it was created this op.
  void MarkDirty(uint32_t p);

  /// Records `p` as retired: drops it from dirty, and either cancels a
  /// same-op creation or appends it to the deleted list.
  void MarkDeleted(uint32_t p);

  /// Retires interval `p` (idempotent).
  void KillInterval(uint32_t p);

  /// While `p` sits under half the limit, absorb it into the run-adjacent
  /// sibling interval on its left, or absorb the one on its right into it,
  /// whenever the union still fits.
  void MaybeMerge(uint32_t p);

  /// Absorbs `victim` (whose run immediately follows `survivor`'s) into
  /// `survivor`.
  void MergeInto(uint32_t survivor, uint32_t victim);

  /// Splits interval `p` (weight > limit) once; may enqueue follow-ups.
  void Split(uint32_t p, std::vector<uint32_t>* worklist);

  /// Runs the split worklist until every affected partition fits again.
  void SplitToFit(uint32_t p);

  /// Sheds rightmost subordinate children of `member` into new intervals
  /// until `p` fits.
  void SplitBelow(NodeId member, uint32_t p, std::vector<uint32_t>* worklist);

  Tree* tree_;
  TotalWeight limit_;
  std::vector<Interval> intervals_;
  /// member_of_[v]: interval id if v is an interval member, else kNone.
  std::vector<uint32_t> member_of_;
  size_t alive_count_ = 0;
  uint64_t split_count_ = 0;
  uint64_t merge_count_ = 0;
  PartitionDelta delta_;
};

}  // namespace natix

#endif  // NATIX_UPDATES_INCREMENTAL_H_
