// Document import: parse an XML document (from a file, or synthesized by
// one of the built-in corpus generators), map it to a weighted tree with
// the paper's slot model, and compare all partitioning algorithms.
//
// Usage:
//   xml_import [document.xml | generator-name] [K] [scale]
// Defaults: generator "sigmod", K = 256 slots (2KB units), scale 0.25.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/timer.h"
#include "core/algorithm.h"
#include "datagen/generator.h"
#include "xml/importer.h"

int main(int argc, char** argv) {
  const std::string source = argc > 1 ? argv[1] : "sigmod";
  const natix::TotalWeight limit = argc > 2 ? std::atoll(argv[2]) : 256;
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.25;

  std::string xml;
  if (natix::FindGenerator(source) != nullptr) {
    std::printf("generating synthetic '%s' document (scale %.2f)...\n",
                source.c_str(), scale);
    xml = *natix::GenerateDocument(source, /*seed=*/42, scale);
  } else {
    std::ifstream in(source, std::ios::binary);
    if (!in) {
      std::fprintf(stderr,
                   "cannot open '%s' (and it is not a generator name; "
                   "try one of sigmod, mondial, partsupp, uwm, orders, "
                   "xmark)\n",
                   source.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    xml = buf.str();
  }

  // The paper's weight model: 8-byte slots, one metadata slot per node;
  // oversized text is externalized so the document stays partitionable.
  natix::WeightModel model;
  model.max_node_slots = static_cast<uint32_t>(limit);

  natix::Timer timer;
  const natix::Result<natix::ImportedDocument> imp =
      natix::ImportXml(xml, model);
  imp.status().CheckOK();
  std::printf(
      "parsed %zu KB -> %zu nodes, total weight %llu slots "
      "(%.1f x K), height %d, %.0f ms\n\n",
      xml.size() / 1024, imp->tree.size(),
      static_cast<unsigned long long>(imp->tree.TotalTreeWeight()),
      static_cast<double>(imp->tree.TotalTreeWeight()) / limit,
      imp->tree.Height(), timer.ElapsedMillis());

  std::printf("%-6s %12s %14s %12s %10s\n", "algo", "partitions",
              "avg fill", "max weight", "time");
  for (const std::string_view name : natix::AlgorithmNames()) {
    if (name == "FDW") continue;  // flat trees only
    timer.Reset();
    const natix::Result<natix::Partitioning> p =
        natix::PartitionWith(name, imp->tree, limit);
    const double ms = timer.ElapsedMillis();
    p.status().CheckOK();
    const natix::Result<natix::PartitionAnalysis> a =
        natix::Analyze(imp->tree, *p, limit);
    a.status().CheckOK();
    std::printf("%-6s %12zu %13.1f%% %12llu %8.1fms\n",
                std::string(name).c_str(), a->cardinality,
                100.0 * a->avg_weight / static_cast<double>(limit),
                static_cast<unsigned long long>(a->max_weight), ms);
  }
  return 0;
}
