// natix_cli: command-line front end for the library -- generate corpus
// documents, inspect their structure, partition them with any registered
// algorithm and run XPath queries against the partitioned store.
//
// Usage:
//   natix_cli generate <generator> [scale] [seed]         XML to stdout
//   natix_cli inspect <file|generator> [scale]            structure report
//   natix_cli partition <algo|ALL> <file|generator> [K] [scale] [threads]
//              [--grain <nodes>]
//   natix_cli query <xpath> <file|generator> [algo] [K] [scale]
//   natix_cli update <file|generator> [ops] [K] [scale] [seed]
//              [--wal <path>] [--pages <path>] [--mix i,d,m,r]
//              [--sync every|group|checkpoint]
//   natix_cli recover <wal-file>                          rebuild from log
//   natix_cli fsck <wal-file> [--pages <page-file>] [--fix-hints]
//   natix_cli algorithms                                  list algorithms
//
// <file|generator>: a path to an XML file, or one of the built-in
// generator names (sigmod, mondial, partsupp, uwm, orders, xmark).
// [threads]: worker threads for parallel algorithms (DHW); 0 = one per
// hardware thread (the default), 1 = sequential.
// --grain <nodes>: target nodes per parallel task for DHW's
// subtree-chunked scheduler (default 4096). A pure scheduling knob: the
// partitioning is byte-identical for every value; smaller grains expose
// more parallelism, larger grains amortize pool overhead. Trees no
// larger than one grain run sequentially.
// --wal <path>: write every update through a write-ahead log at <path>
// (the file must not already exist); `recover` rebuilds the store from
// such a log after a crash and reports what survived.
// --pages <path>: after the workload, flush every page as a
// checksummed sealed cell to <path>; `fsck --pages` later verifies that
// file cell by cell against the store the log restores.
// --mix i,d,m,r: relative weights of insert / delete-subtree / move-
// subtree / rename ops in the update stream (default 40,30,20,10).
// --sync <policy>: when the WAL fsyncs, i.e. when an op counts as
// durable. `every` fsyncs before each op returns (strongest, slowest);
// `group` (default) batches fsyncs across a ~200us commit window --
// an op is durable once the background flusher syncs its batch;
// `checkpoint` is the legacy unsafe mode: nothing is fsynced between
// checkpoints, so every op since the last checkpoint can vanish on
// power failure.
// --fix-hints: before the audit, recover the store read-write, rewrite
// every stale proxy/aggregate placement hint in place, append a fresh
// checkpoint and (with --pages) reseal the page file, so the follow-up
// audit reports zero stale hints.
//
// Exit codes (recover): 0 clean recovery; 3 no WAL found at the path;
// 4 recovered, but a torn tail was truncated (some trailing ops were
// lost); 5 the log exists but is unrecoverable. Exit codes (fsck):
// 0 clean, 1 damage found, 3 no WAL found, 5 fix-hints could not
// recover or rewrite.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "common/timer.h"
#include "core/algorithm.h"
#include "core/heuristics.h"
#include "datagen/generator.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "storage/file_backend.h"
#include "storage/fsck.h"
#include "storage/store.h"
#include "storage/wal.h"
#include "tree/tree_stats.h"
#include "xml/importer.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  natix_cli generate <generator> [scale] [seed]\n"
      "  natix_cli inspect <file|generator> [scale]\n"
      "  natix_cli partition <algo|ALL> <file|generator> [K] [scale] "
      "[threads] [--grain <nodes>]\n"
      "  natix_cli query <xpath> <file|generator> [algo] [K] [scale]\n"
      "  natix_cli update <file|generator> [ops] [K] [scale] [seed] "
      "[--wal <path>] [--pages <path>] [--mix i,d,m,r] "
      "[--sync every|group|checkpoint]\n"
      "  natix_cli recover <wal-file>\n"
      "  natix_cli fsck <wal-file> [--pages <page-file>] [--fix-hints]\n"
      "  natix_cli algorithms\n");
  return 2;
}

// Strips `flag` and its value from argv, storing the value in *out.
// Returns false on a flag with a missing value.
bool StripFlag(const char* flag, int* argc, char** argv, std::string* out) {
  for (int i = 0; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      if (i + 1 >= *argc) return false;
      *out = argv[i + 1];
      for (int j = i; j + 2 < *argc; ++j) argv[j] = argv[j + 2];
      *argc -= 2;
      return true;
    }
  }
  return true;
}

// Strips a valueless `flag` from argv; returns true when it was present.
bool StripBoolFlag(const char* flag, int* argc, char** argv) {
  for (int i = 0; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      *argc -= 1;
      return true;
    }
  }
  return false;
}

// `recover` and `fsck` must distinguish "there is no log here" from "the
// log is damaged". PosixFileBackend::Open creates missing files, so the
// probe runs first: exit code 3 when the file is absent, too short for a
// log header, or carries the wrong magic.
int ProbeWal(const char* path) {
  std::ifstream in(path, std::ios::binary);
  char magic[natix::kWalHeaderSize] = {};
  if (!in || !in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, natix::kWalMagic, sizeof(magic)) != 0) {
    std::fprintf(stderr, "no WAL found at %s (missing file or no log "
                         "header)\n", path);
    return 3;
  }
  return 0;
}

natix::Result<std::string> LoadXml(const std::string& source, double scale) {
  if (natix::FindGenerator(source) != nullptr) {
    return natix::GenerateDocument(source, /*seed=*/42, scale);
  }
  std::ifstream in(source, std::ios::binary);
  if (!in) {
    return natix::Status::NotFound("cannot open '" + source +
                                   "' (and it is not a generator name)");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

natix::Result<natix::ImportedDocument> LoadDocument(const std::string& source,
                                                    double scale,
                                                    natix::TotalWeight k) {
  NATIX_ASSIGN_OR_RETURN(const std::string xml, LoadXml(source, scale));
  natix::WeightModel model;
  model.max_node_slots = static_cast<uint32_t>(k);
  NATIX_ASSIGN_OR_RETURN(natix::ImportedDocument doc,
                         natix::ImportXml(xml, model));
  return doc;
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 1) return Usage();
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const natix::Result<std::string> xml =
      natix::GenerateDocument(argv[0], seed, scale);
  if (!xml.ok()) {
    std::fprintf(stderr, "%s\n", xml.status().ToString().c_str());
    return 1;
  }
  std::fwrite(xml->data(), 1, xml->size(), stdout);
  return 0;
}

int CmdInspect(int argc, char** argv) {
  if (argc < 1) return Usage();
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  const auto doc = LoadDocument(argv[0], scale, 256);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  const natix::TreeStats stats = natix::ComputeTreeStats(doc->tree);
  std::fputs(natix::ToString(stats).c_str(), stdout);
  std::printf("content: %llu bytes inline, %llu bytes in %llu overflow "
              "nodes\n",
              static_cast<unsigned long long>(doc->content_total_bytes -
                                              doc->overflow_bytes),
              static_cast<unsigned long long>(doc->overflow_bytes),
              static_cast<unsigned long long>(doc->overflow_nodes));
  return 0;
}

int PartitionOne(std::string_view algo, const natix::ImportedDocument& doc,
                 natix::TotalWeight k, const natix::PartitionOptions& opts) {
  natix::Timer timer;
  const natix::Result<natix::Partitioning> p =
      natix::PartitionWith(algo, doc.tree, k, opts);
  const double ms = timer.ElapsedMillis();
  if (!p.ok()) {
    std::printf("%-6s %s\n", std::string(algo).c_str(),
                p.status().ToString().c_str());
    return 1;
  }
  const natix::Result<natix::PartitionAnalysis> a =
      natix::Analyze(doc.tree, *p, k);
  if (!a.ok() || !a->feasible) {
    std::printf("%-6s INFEASIBLE RESULT (bug!)\n",
                std::string(algo).c_str());
    return 1;
  }
  std::printf("%-6s %10zu partitions  root %6llu  max %6llu  fill %5.1f%%  "
              "%8.1fms\n",
              std::string(algo).c_str(), a->cardinality,
              static_cast<unsigned long long>(a->root_weight),
              static_cast<unsigned long long>(a->max_weight),
              100.0 * a->avg_weight / static_cast<double>(k), ms);
  return 0;
}

int CmdPartition(int argc, char** argv) {
  std::string grain;
  if (!StripFlag("--grain", &argc, argv, &grain)) return Usage();
  if (argc < 2) return Usage();
  const std::string algo = argv[0];
  const natix::TotalWeight k = argc > 2 ? std::atoll(argv[2]) : 256;
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.25;
  natix::PartitionOptions opts;
  opts.num_threads =
      argc > 4 ? static_cast<unsigned>(std::strtoul(argv[4], nullptr, 10)) : 0;
  if (!grain.empty()) {
    opts.task_grain_nodes = std::strtoull(grain.c_str(), nullptr, 10);
  }
  const auto doc = LoadDocument(argv[1], scale, k);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu nodes, total weight %llu, K = %llu\n\n",
              doc->tree.size(),
              static_cast<unsigned long long>(doc->tree.TotalTreeWeight()),
              static_cast<unsigned long long>(k));
  if (algo == "ALL") {
    int rc = 0;
    for (const std::string_view name : natix::AlgorithmNames()) {
      if (name == "FDW") continue;
      if (name == "DHW" && doc->tree.size() > 300000) {
        std::printf("%-6s (skipped: >300k nodes; run explicitly)\n",
                    std::string(name).c_str());
        continue;
      }
      rc |= PartitionOne(name, *doc, k, opts);
    }
    return rc;
  }
  return PartitionOne(algo, *doc, k, opts);
}

int CmdQuery(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string query = argv[0];
  const std::string algo = argc > 2 ? argv[2] : "EKM";
  const natix::TotalWeight k = argc > 3 ? std::atoll(argv[3]) : 256;
  const double scale = argc > 4 ? std::atof(argv[4]) : 0.25;

  const auto path = natix::ParseXPath(query);
  if (!path.ok()) {
    std::fprintf(stderr, "%s\n", path.status().ToString().c_str());
    return 1;
  }
  const auto doc = LoadDocument(argv[1], scale, k);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  const auto partitioning = natix::PartitionWith(algo, doc->tree, k);
  if (!partitioning.ok()) {
    std::fprintf(stderr, "%s\n", partitioning.status().ToString().c_str());
    return 1;
  }
  auto store = natix::NatixStore::Build(doc->Clone(), *partitioning, k);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  // Evaluate against the records alone: the store's in-memory document
  // is dropped, so every axis move decodes from record bytes.
  const natix::Status released = store->ReleaseDocument();
  if (!released.ok()) {
    std::fprintf(stderr, "%s\n", released.ToString().c_str());
    return 1;
  }
  natix::AccessStats stats;
  natix::StoreQueryEvaluator eval(&*store, &stats);
  natix::Timer timer;
  const auto result = eval.Evaluate(*path);
  const double ms = timer.ElapsedMillis();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const natix::NavigationCostModel cost;
  std::printf("%zu results (%s layout, %zu records, document released)\n",
              result->size(), algo.c_str(), store->record_count());
  std::printf("navigation: %llu intra-record, %llu crossings "
              "(%llu page switches)\n",
              static_cast<unsigned long long>(stats.intra_moves),
              static_cast<unsigned long long>(stats.record_crossings),
              static_cast<unsigned long long>(stats.page_switches));
  std::printf("time: %.2fms wall, %.2fms simulated navigation\n", ms,
              cost.CostSeconds(stats) * 1e3);
  // Print the first few results as paths of labels.
  const size_t show = std::min<size_t>(result->size(), 5);
  for (size_t i = 0; i < show; ++i) {
    const natix::NodeId v = (*result)[i];
    std::string path_str(doc->tree.LabelOf(v));
    for (natix::NodeId p = doc->tree.Parent(v); p != natix::kInvalidNode;
         p = doc->tree.Parent(p)) {
      path_str = std::string(doc->tree.LabelOf(p)) + "/" + path_str;
    }
    std::printf("  [%zu] /%s\n", i, path_str.c_str());
  }
  if (result->size() > show) {
    std::printf("  ... %zu more\n", result->size() - show);
  }
  return 0;
}

// Sweeps a couple of generic structural queries over the store and
// returns the simulated navigation cost (AccessStats through the cost
// model).
double SweepCostSeconds(const natix::NatixStore& store,
                        natix::AccessStats* out_stats) {
  static constexpr const char* kSweeps[] = {"/descendant-or-self::node()",
                                            "//*"};
  natix::AccessStats stats;
  natix::StoreQueryEvaluator eval(&store, &stats);
  for (const char* q : kSweeps) {
    const auto path = natix::ParseXPath(q);
    if (!path.ok()) continue;
    (void)eval.Evaluate(*path);
  }
  if (out_stats != nullptr) *out_stats = stats;
  return natix::NavigationCostModel().CostSeconds(stats);
}

int CmdUpdate(int argc, char** argv) {
  // Strip flags (and their values) before positional parsing.
  std::string wal_path;
  std::string pages_path;
  std::string mix_str = "40,30,20,10";
  std::string sync_str = "group";
  if (!StripFlag("--wal", &argc, argv, &wal_path) ||
      !StripFlag("--pages", &argc, argv, &pages_path) ||
      !StripFlag("--mix", &argc, argv, &mix_str) ||
      !StripFlag("--sync", &argc, argv, &sync_str)) {
    return Usage();
  }
  natix::SyncPolicy sync_policy;
  if (sync_str == "every") {
    sync_policy = natix::SyncPolicy::EveryOp();
  } else if (sync_str == "group") {
    sync_policy = natix::SyncPolicy::GroupCommit();
  } else if (sync_str == "checkpoint") {
    sync_policy = natix::SyncPolicy::OnCheckpoint();
  } else {
    std::fprintf(stderr, "bad --sync (want every, group or checkpoint)\n");
    return Usage();
  }
  if (argc < 1) return Usage();
  const int ops = argc > 1 ? std::atoi(argv[1]) : 10000;
  const natix::TotalWeight k = argc > 2 ? std::atoll(argv[2]) : 256;
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.05;
  const uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;
  int mix[4] = {0, 0, 0, 0};
  if (std::sscanf(mix_str.c_str(), "%d,%d,%d,%d", &mix[0], &mix[1], &mix[2],
                  &mix[3]) != 4 ||
      mix[0] < 0 || mix[1] < 0 || mix[2] < 0 || mix[3] < 0 ||
      mix[0] + mix[1] + mix[2] + mix[3] <= 0) {
    std::fprintf(stderr, "bad --mix (want four non-negative weights)\n");
    return Usage();
  }
  const uint64_t mix_total =
      static_cast<uint64_t>(mix[0]) + mix[1] + mix[2] + mix[3];

  const auto doc = LoadDocument(argv[0], scale, k);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  const auto partitioning = natix::EkmPartition(doc->tree, k);
  if (!partitioning.ok()) {
    std::fprintf(stderr, "%s\n", partitioning.status().ToString().c_str());
    return 1;
  }
  auto store = natix::NatixStore::Build(doc->Clone(), *partitioning, k);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu nodes, K = %llu: %zu records on %zu pages, "
              "utilization %.1f%%\n",
              store->node_count(), static_cast<unsigned long long>(k),
              store->record_count(), store->page_count(),
              100.0 * store->PageUtilization());
  const double cost_before = SweepCostSeconds(*store, nullptr);
  const double util_before = store->PageUtilization();

  if (!wal_path.empty()) {
    auto backend = natix::PosixFileBackend::Open(wal_path);
    if (!backend.ok()) {
      std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
      return 1;
    }
    const natix::Status durable =
        store->EnableDurability(std::move(*backend), sync_policy);
    if (!durable.ok()) {
      std::fprintf(stderr, "%s\n", durable.ToString().c_str());
      return 1;
    }
    std::printf("WAL attached at %s (initial checkpoint written, "
                "sync policy %s)\n",
                wal_path.c_str(), sync_policy.ModeName());
  }
  // Checkpoint cadence for durable runs: four checkpoints across the
  // workload plus a final one, so `recover` replays at most a quarter of
  // the op stream.
  const int checkpoint_every = wal_path.empty() ? 0 : std::max(1, ops / 4);

  natix::Rng rng(seed);
  static constexpr const char* kLabels[] = {"item", "note", "entry", "x"};
  int did[4] = {0, 0, 0, 0};  // insert / delete / move / rename
  int skipped = 0;
  // A delete removes a whole subtree while an insert adds one node, so
  // an unchecked mix shrinks the document to nothing; deletes turn back
  // into inserts while the live count sits below the starting size.
  const size_t size_floor = store->live_node_count();
  natix::Timer timer;
  for (int i = 0; i < ops; ++i) {
    const natix::Tree& t = store->tree();
    // The node-id space keeps tombstones forever, so draws retry until
    // they land on a live slot (the root is always live).
    const auto pick_live = [&]() -> natix::NodeId {
      for (int tries = 0; tries < 256; ++tries) {
        const auto v = static_cast<natix::NodeId>(rng.NextBounded(t.size()));
        if (store->IsLiveNode(v)) return v;
      }
      return 0;
    };
    // True when v's subtree holds at most `cap` nodes; keeps random
    // deletes from wiping out most of the document.
    const auto subtree_capped = [&](natix::NodeId v, size_t cap) {
      std::vector<natix::NodeId> stack = {v};
      size_t count = 0;
      while (!stack.empty()) {
        const natix::NodeId u = stack.back();
        stack.pop_back();
        if (++count > cap) return false;
        for (natix::NodeId c = t.FirstChild(u); c != natix::kInvalidNode;
             c = t.NextSibling(c)) {
          stack.push_back(c);
        }
      }
      return true;
    };
    uint64_t roll = rng.NextBounded(mix_total);
    if (roll >= static_cast<uint64_t>(mix[0]) &&
        roll < static_cast<uint64_t>(mix[0]) + mix[1] &&
        store->live_node_count() < size_floor) {
      roll = 0;  // delete -> insert while under the floor
    }
    natix::Status applied = natix::Status::OK();
    if (roll < static_cast<uint64_t>(mix[0])) {
      const natix::NodeId parent = pick_live();
      natix::NodeId before = natix::kInvalidNode;
      if (t.ChildCount(parent) > 0 && rng.NextBool(0.4)) {
        const std::vector<natix::NodeId> kids = t.Children(parent);
        before = kids[rng.NextBounded(kids.size())];
      }
      const bool text = rng.NextBool(0.5);
      std::string content;
      if (text) content.assign(1 + rng.NextBounded(40), 'a' + i % 26);
      applied = store
                    ->InsertBefore(parent, before,
                                   text ? "" : kLabels[rng.NextBounded(4)],
                                   text ? natix::NodeKind::kText
                                        : natix::NodeKind::kElement,
                                   content)
                    .status();
      ++did[0];
    } else if (roll < static_cast<uint64_t>(mix[0]) + mix[1]) {
      const natix::NodeId v = pick_live();
      if (v == 0 || !subtree_capped(v, 16)) {
        ++skipped;
      } else {
        applied = store->DeleteSubtree(v).status();
        ++did[1];
      }
    } else if (roll < static_cast<uint64_t>(mix[0]) + mix[1] + mix[2]) {
      const natix::NodeId v = pick_live();
      const natix::NodeId parent = pick_live();
      bool legal = v != 0;
      for (natix::NodeId a = parent; a != natix::kInvalidNode;
           a = t.Parent(a)) {
        if (a == v) {
          legal = false;
          break;
        }
      }
      if (!legal) {
        ++skipped;
      } else {
        natix::NodeId before = natix::kInvalidNode;
        if (t.ChildCount(parent) > 0 && rng.NextBool(0.5)) {
          const std::vector<natix::NodeId> kids = t.Children(parent);
          before = kids[rng.NextBounded(kids.size())];
          if (before == v) before = natix::kInvalidNode;
        }
        applied = store->MoveSubtree(v, parent, before);
        ++did[2];
      }
    } else {
      applied = store->Rename(pick_live(), kLabels[rng.NextBounded(4)]);
      ++did[3];
    }
    if (!applied.ok()) {
      std::fprintf(stderr, "op %d: %s\n", i, applied.ToString().c_str());
      // A demoted store refuses further mutations but keeps serving
      // reads; stop the stream and report the health below (exit 6/7)
      // instead of bailing on stats a degraded store can still answer.
      if (store->health() != natix::StoreHealth::kHealthy) break;
      return 1;
    }
    if (checkpoint_every > 0 && (i + 1) % checkpoint_every == 0) {
      const natix::Status ck = store->Checkpoint();
      if (!ck.ok()) {
        std::fprintf(stderr, "checkpoint after op %d: %s\n", i + 1,
                     ck.ToString().c_str());
        if (store->health() != natix::StoreHealth::kHealthy) break;
        return 1;
      }
    }
  }
  if (store->durable() && store->health() == natix::StoreHealth::kHealthy) {
    const natix::Status ck = store->Checkpoint();
    if (!ck.ok()) {
      std::fprintf(stderr, "final checkpoint: %s\n", ck.ToString().c_str());
      if (store->health() == natix::StoreHealth::kHealthy) return 1;
    }
  }
  const double update_ms = timer.ElapsedMillis();

  const natix::UpdateStats us = store->update_stats();
  std::printf("\n%d ops in %.1fms (%.2fus each): %d insert, %d delete, "
              "%d move, %d rename, %d skipped\n",
              ops, update_ms, 1e3 * update_ms / std::max(1, ops), did[0],
              did[1], did[2], did[3], skipped);
  std::printf("  splits %llu, merges %llu, records rewritten %llu, "
              "created %llu\n",
              static_cast<unsigned long long>(us.splits),
              static_cast<unsigned long long>(us.merges),
              static_cast<unsigned long long>(us.records_rewritten),
              static_cast<unsigned long long>(us.records_created));
  std::printf("  relocations %llu, page compactions %llu\n",
              static_cast<unsigned long long>(us.relocations),
              static_cast<unsigned long long>(us.compactions));
  std::printf("  utilization %.1f%% -> %.1f%% (%zu live nodes, "
              "%zu records, %zu pages)\n",
              100.0 * util_before, 100.0 * store->PageUtilization(),
              store->live_node_count(), store->record_count(),
              store->page_count());
  if (store->health() == natix::StoreHealth::kHealthy) {
    std::printf("  health: healthy\n");
  } else {
    std::printf("  health: %s (%s)\n",
                natix::StoreHealthName(store->health()),
                store->health_reason().c_str());
  }

  const double cost_grown = SweepCostSeconds(*store, nullptr);

  // Reference point: bulkload the final document from scratch. The
  // compacted snapshot renumbers live nodes in document order, dropping
  // the tombstones the grown id space keeps.
  std::vector<natix::NodeId> old_to_new;
  auto snapshot = store->CompactSnapshot(&old_to_new);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  const auto fresh_p = natix::EkmPartition(snapshot->tree, k);
  if (!fresh_p.ok()) {
    std::fprintf(stderr, "%s\n", fresh_p.status().ToString().c_str());
    return 1;
  }
  const auto fresh =
      natix::NatixStore::Build(std::move(snapshot).value(), *fresh_p, k);
  if (!fresh.ok()) {
    std::fprintf(stderr, "%s\n", fresh.status().ToString().c_str());
    return 1;
  }
  const double cost_fresh = SweepCostSeconds(*fresh, nullptr);
  std::printf("\nsimulated scan cost: before %.2fms, grown %.2fms, "
              "fresh rebuild %.2fms (drift %.1f%%)\n",
              1e3 * cost_before, 1e3 * cost_grown, 1e3 * cost_fresh,
              cost_fresh > 0 ? 100.0 * (cost_grown - cost_fresh) / cost_fresh
                             : 0.0);
  std::printf("records: grown %zu vs fresh %zu; pages: %zu vs %zu; "
              "utilization: %.1f%% vs %.1f%%\n",
              store->record_count(), fresh->record_count(),
              store->page_count(), fresh->page_count(),
              100.0 * store->PageUtilization(),
              100.0 * fresh->PageUtilization());
  if (store->durable()) {
    const natix::WalStats ws = store->wal_stats();
    std::printf("\nWAL: %llu bytes total (%llu op bytes in %llu entries, "
                "%llu checkpoint bytes in %llu checkpoints)\n",
                static_cast<unsigned long long>(ws.wal_bytes),
                static_cast<unsigned long long>(ws.op_bytes),
                static_cast<unsigned long long>(ws.op_entries),
                static_cast<unsigned long long>(ws.checkpoint_bytes),
                static_cast<unsigned long long>(ws.checkpoints));
    std::printf("  op log amplification: %.3fx of %llu record bytes\n",
                ws.OpAmplification(),
                static_cast<unsigned long long>(ws.record_bytes));
    std::printf("  sync policy %s: %llu fsyncs, %llu commit batches, "
                "mean batch %.1f entries, %llu transient retries\n",
                store->sync_policy().ModeName(),
                static_cast<unsigned long long>(ws.fsyncs),
                static_cast<unsigned long long>(ws.sync_batches),
                ws.MeanBatchOps(),
                static_cast<unsigned long long>(ws.append_retries));
  }
  if (!pages_path.empty()) {
    auto pages = natix::PosixFileBackend::Open(pages_path);
    if (!pages.ok()) {
      std::fprintf(stderr, "%s\n", pages.status().ToString().c_str());
      return 1;
    }
    const natix::Status flushed = store->FlushPagesTo(pages->get());
    if (!flushed.ok()) {
      std::fprintf(stderr, "page flush: %s\n", flushed.ToString().c_str());
      return 1;
    }
    std::printf("\nflushed %zu sealed page cell(s) to %s "
                "(%zu + %zu bytes each)\n",
                store->regular_page_count(), pages_path.c_str(),
                store->page_size(), natix::kPageCellOverhead);
  }
  // Exit code mirrors the health state machine: 6 = degraded (reads
  // kept serving; TryRehabilitate() or recover from the WAL), 7 =
  // failed (recover from the WAL).
  if (store->health() == natix::StoreHealth::kDegraded) return 6;
  if (store->health() == natix::StoreHealth::kFailed) return 7;
  return 0;
}

int CmdRecover(int argc, char** argv) {
  if (argc < 1) return Usage();
  const int probe = ProbeWal(argv[0]);
  if (probe != 0) return probe;
  auto backend = natix::PosixFileBackend::Open(argv[0]);
  if (!backend.ok()) {
    std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
    return 5;
  }
  natix::RecoveryInfo info;
  natix::Timer timer;
  auto store = natix::NatixStore::Recover(std::move(*backend), &info);
  const double ms = timer.ElapsedMillis();
  if (!store.ok()) {
    std::fprintf(stderr, "unrecoverable corruption: %s\n",
                 store.status().ToString().c_str());
    return 5;
  }
  const natix::UpdateStats us = store->update_stats();
  std::printf("recovered in %.1fms: %zu nodes, %zu records on %zu pages, "
              "utilization %.1f%%\n",
              ms, store->node_count(), store->record_count(),
              store->page_count(), 100.0 * store->PageUtilization());
  std::printf("  ops survived: %llu insert, %llu delete, %llu move, "
              "%llu rename (%llu splits, %llu merges, %llu records "
              "rewritten, %llu created)\n",
              static_cast<unsigned long long>(us.inserts),
              static_cast<unsigned long long>(us.deletes),
              static_cast<unsigned long long>(us.moves),
              static_cast<unsigned long long>(us.renames),
              static_cast<unsigned long long>(us.splits),
              static_cast<unsigned long long>(us.merges),
              static_cast<unsigned long long>(us.records_rewritten),
              static_cast<unsigned long long>(us.records_created));
  std::printf("  LSN range: checkpoint %llu..%llu, %llu op(s) replayed, "
              "last LSN %llu (%llu entries scanned, %llu checkpoints)\n",
              static_cast<unsigned long long>(info.checkpoint_begin_lsn),
              static_cast<unsigned long long>(info.checkpoint_end_lsn),
              static_cast<unsigned long long>(info.replayed_ops),
              static_cast<unsigned long long>(info.last_lsn),
              static_cast<unsigned long long>(info.entries_scanned),
              static_cast<unsigned long long>(info.checkpoints_found));
  if (store->partitioner() != nullptr) {
    const natix::Status valid = store->partitioner()->Validate();
    std::printf("  partitioning: %s\n",
                valid.ok() ? "feasible" : valid.ToString().c_str());
    if (!valid.ok()) return 5;
  }
  natix::AccessStats stats;
  const double sweep = SweepCostSeconds(*store, &stats);
  std::printf("  structural sweep: %llu moves, %.2fms simulated cost\n",
              static_cast<unsigned long long>(stats.TotalMoves()),
              1e3 * sweep);
  if (info.tail_was_torn) {
    std::printf("  torn tail truncated: %llu byte(s) past LSN %llu were "
                "dropped (ops after the last durable entry are lost)\n",
                static_cast<unsigned long long>(info.torn_bytes),
                static_cast<unsigned long long>(info.last_lsn));
    return 4;
  }
  std::printf("  log is clean; the store can continue accepting updates\n");
  return 0;
}

int CmdFsck(int argc, char** argv) {
  std::string pages_path;
  if (!StripFlag("--pages", &argc, argv, &pages_path)) return Usage();
  const bool fix_hints = StripBoolFlag("--fix-hints", &argc, argv);
  if (argc < 1) return Usage();
  const int probe = ProbeWal(argv[0]);
  if (probe != 0) return probe;
  if (fix_hints) {
    // Repair pass: recover the store read-write, rewrite every stale
    // proxy/aggregate placement hint from the authoritative tables,
    // append a checkpoint so the repaired bytes are durable, and reseal
    // the page file so it matches. The read-only audit below then runs
    // against the repaired log.
    auto rw = natix::PosixFileBackend::Open(argv[0]);
    if (!rw.ok()) {
      std::fprintf(stderr, "%s\n", rw.status().ToString().c_str());
      return 5;
    }
    natix::RecoveryInfo info;
    auto store = natix::NatixStore::Recover(std::move(*rw), &info);
    if (!store.ok()) {
      std::fprintf(stderr, "fix-hints: recovery failed: %s\n",
                   store.status().ToString().c_str());
      return 5;
    }
    const natix::Result<size_t> patched = store->RefreshPlacementHints();
    if (!patched.ok()) {
      std::fprintf(stderr, "fix-hints: %s\n",
                   patched.status().ToString().c_str());
      return 5;
    }
    const natix::Status ck = store->Checkpoint();
    if (!ck.ok()) {
      std::fprintf(stderr, "fix-hints checkpoint: %s\n",
                   ck.ToString().c_str());
      return 5;
    }
    std::printf("fix-hints: %zu hint field(s) rewritten, checkpoint "
                "appended\n", *patched);
    if (!pages_path.empty()) {
      auto pages = natix::PosixFileBackend::Open(pages_path);
      if (!pages.ok()) {
        std::fprintf(stderr, "%s\n", pages.status().ToString().c_str());
        return 5;
      }
      const natix::Status flushed = store->FlushPagesTo(pages->get());
      if (!flushed.ok()) {
        std::fprintf(stderr, "fix-hints reseal: %s\n",
                     flushed.ToString().c_str());
        return 5;
      }
      std::printf("fix-hints: resealed %zu page cell(s) at %s\n",
                  store->regular_page_count(), pages_path.c_str());
    }
  }
  auto backend = natix::PosixFileBackend::Open(argv[0]);
  if (!backend.ok()) {
    std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
    return 3;
  }
  std::unique_ptr<natix::NatixStore> store;
  auto report = natix::FsckLog(backend->get(), &store);
  if (!report.ok()) {
    std::fprintf(stderr, "fsck cannot read the log: %s\n",
                 report.status().ToString().c_str());
    return 3;
  }
  if (!pages_path.empty()) {
    if (store == nullptr) {
      report->AddProblem("page file not checked: the log restored no "
                         "store");
    } else {
      std::ifstream probe_pages(pages_path, std::ios::binary);
      if (!probe_pages) {
        std::fprintf(stderr, "no page file found at %s\n",
                     pages_path.c_str());
        return 2;
      }
      probe_pages.close();
      auto pages = natix::PosixFileBackend::Open(pages_path);
      if (!pages.ok()) {
        std::fprintf(stderr, "%s\n", pages.status().ToString().c_str());
        return 2;
      }
      const natix::Status checked =
          natix::FsckPageFile(pages->get(), *store, &*report);
      if (!checked.ok()) {
        std::fprintf(stderr, "page file check aborted: %s\n",
                     checked.ToString().c_str());
        return 2;
      }
    }
  }
  std::fputs(report->Summary().c_str(), stdout);
  return report->clean() ? 0 : 1;
}

int CmdAlgorithms() {
  for (const std::string_view name : natix::AlgorithmNames()) {
    const natix::PartitioningAlgorithm* a = natix::FindAlgorithm(name);
    std::printf("%-6s %s%s\n  %s\n", std::string(name).c_str(),
                a->IsOptimal() ? "[optimal] " : "",
                a->IsMainMemoryFriendly() ? "[memory-friendly]" : "",
                std::string(a->description()).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(argc - 2, argv + 2);
  if (cmd == "inspect") return CmdInspect(argc - 2, argv + 2);
  if (cmd == "partition") return CmdPartition(argc - 2, argv + 2);
  if (cmd == "query") return CmdQuery(argc - 2, argv + 2);
  if (cmd == "update") return CmdUpdate(argc - 2, argv + 2);
  if (cmd == "recover") return CmdRecover(argc - 2, argv + 2);
  if (cmd == "fsck") return CmdFsck(argc - 2, argv + 2);
  if (cmd == "algorithms") return CmdAlgorithms();
  return Usage();
}
