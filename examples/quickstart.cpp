// Quickstart: build a small weighted tree, run the paper's algorithms and
// inspect the resulting sibling partitionings.
//
// Reproduces the running example of Sec. 2.1 (Fig. 3) and the greedy
// failure case of Sec. 3.3.1 (Fig. 6).
#include <cstdio>

#include "core/algorithm.h"
#include "tree/partitioning.h"
#include "tree/tree_spec.h"

namespace {

void Show(const natix::Tree& tree, natix::TotalWeight limit,
          std::string_view algorithm) {
  const natix::Result<natix::Partitioning> p =
      natix::PartitionWith(algorithm, tree, limit);
  p.status().CheckOK();
  const natix::Result<natix::PartitionAnalysis> a =
      natix::Analyze(tree, *p, limit);
  a.status().CheckOK();
  std::printf("  %-5s -> %zu partitions, root weight %llu: %s\n",
              std::string(algorithm).c_str(), a->cardinality,
              static_cast<unsigned long long>(a->root_weight),
              natix::ToString(tree, *p).c_str());
}

}  // namespace

int main() {
  // The paper's running example (Fig. 3): an ordered tree with node
  // weights, written in the compact spec grammar label:weight(children).
  const natix::Result<natix::Tree> fig3 =
      natix::ParseTreeSpec("a:3(b:2 c:1(d:2 e:2) f:1 g:1 h:2)");
  fig3.status().CheckOK();

  std::printf("Fig. 3 tree, weight limit K = 5\n");
  std::printf("  total weight %llu, %zu nodes\n",
              static_cast<unsigned long long>(fig3->TotalTreeWeight()),
              fig3->size());
  for (const std::string_view algo : {"DHW", "GHDW", "EKM", "KM"}) {
    Show(*fig3, 5, algo);
  }

  // Fig. 6: the case where the greedy GHDW strategy needs one partition
  // more than the optimum -- DHW fixes it by giving the c-subtree a
  // locally *suboptimal* (nearly optimal) partitioning.
  const natix::Result<natix::Tree> fig6 =
      natix::ParseTreeSpec("a:5(b:1 c:1(d:2 e:2) f:1)");
  fig6.status().CheckOK();

  std::printf("\nFig. 6 tree, weight limit K = 5 "
              "(greedy failure: GHDW 4 vs optimal 3)\n");
  for (const std::string_view algo : {"DHW", "GHDW", "EKM", "KM"}) {
    Show(*fig6, 5, algo);
  }
  return 0;
}
