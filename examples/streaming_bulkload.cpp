// Streaming bulkload demo: one-pass document import that partitions on
// the fly (Sec. 4.3's main-memory friendly operation). Shows the working
// set staying tiny relative to the document, with and without the
// explicit memory bound, and that streaming GHDW matches the batch result.
//
// Usage: streaming_bulkload [generator] [scale]    (default xmark 0.1)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bulkload/streaming.h"
#include "common/timer.h"
#include "core/exact_algorithms.h"
#include "datagen/generator.h"
#include "tree/partitioning.h"
#include "xml/importer.h"

int main(int argc, char** argv) {
  const std::string source = argc > 1 ? argv[1] : "xmark";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;
  constexpr natix::TotalWeight kLimit = 256;

  const natix::Result<std::string> xml =
      natix::GenerateDocument(source, 42, scale);
  xml.status().CheckOK();
  std::printf("document: %s, %zu KB\n\n", source.c_str(),
              xml->size() / 1024);

  static constexpr struct {
    natix::BulkloadRule rule;
    const char* name;
  } kRules[] = {
      {natix::BulkloadRule::kGhdw, "GHDW"},
      {natix::BulkloadRule::kRs, "RS"},
      {natix::BulkloadRule::kKm, "KM"},
  };
  std::printf("%-6s %10s %12s %16s %10s %8s\n", "rule", "pending",
              "partitions", "peak resident", "of nodes", "time");
  for (const auto& r : kRules) {
    for (const size_t pending : {size_t{0}, size_t{128}}) {
      natix::BulkloadOptions opts;
      opts.limit = kLimit;
      opts.rule = r.rule;
      opts.max_pending_children = pending;
      natix::Timer timer;
      const natix::Result<natix::BulkloadResult> result =
          natix::StreamingBulkload(*xml, opts);
      const double ms = timer.ElapsedMillis();
      result.status().CheckOK();
      natix::CheckFeasible(result->tree, result->partitioning, kLimit)
          .CheckOK();
      std::printf("%-6s %10s %12zu %16zu %9.1f%% %6.0fms\n", r.name,
                  pending == 0 ? "unbounded" : "128",
                  result->partitioning.size(), result->peak_resident_nodes,
                  100.0 * result->peak_resident_nodes / result->tree.size(),
                  ms);
    }
  }

  // Cross-check: streaming GHDW equals batch GHDW on the imported tree.
  natix::WeightModel model;
  model.max_node_slots = kLimit;
  const auto imported = natix::ImportXml(*xml, model);
  imported.status().CheckOK();
  const auto batch = natix::GhdwPartition(imported->tree, kLimit);
  batch.status().CheckOK();
  natix::BulkloadOptions opts;
  opts.limit = kLimit;
  const auto streaming = natix::StreamingBulkload(*xml, opts);
  streaming.status().CheckOK();
  std::printf("\nstreaming GHDW == batch GHDW: %s (%zu partitions)\n",
              streaming->partitioning.size() == batch->size() ? "yes" : "NO",
              batch->size());
  return 0;
}
