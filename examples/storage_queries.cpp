// Storage + query demo: load an XMark document into the mini-Natix store
// under two different partitionings (KM: parent-child only, EKM: sibling
// partitioning) and run the XPathMark queries against both, comparing
// record crossings and simulated navigation time -- the mechanism behind
// the paper's Table 3.
//
// Usage: storage_queries [scale]     (default scale 0.05)
#include <cstdio>
#include <cstdlib>

#include "core/heuristics.h"
#include "datagen/generator.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/xpathmark.h"
#include "storage/store.h"
#include "xml/importer.h"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  constexpr natix::TotalWeight kLimit = 256;  // 2KB storage units

  std::printf("generating XMark document (scale %.2f)...\n", scale);
  const std::string xml = natix::GenerateXmark(42, scale);
  natix::WeightModel model;
  model.max_node_slots = kLimit;
  const natix::Result<natix::ImportedDocument> imp =
      natix::ImportXml(xml, model);
  imp.status().CheckOK();
  std::printf("%zu nodes, %zu KB\n\n", imp->tree.size(), xml.size() / 1024);

  const natix::Result<natix::Partitioning> km =
      natix::KmPartition(imp->tree, kLimit);
  const natix::Result<natix::Partitioning> ekm =
      natix::EkmPartition(imp->tree, kLimit);
  km.status().CheckOK();
  ekm.status().CheckOK();

  const natix::Result<natix::NatixStore> store_km =
      natix::NatixStore::Build(imp->Clone(), *km, kLimit);
  const natix::Result<natix::NatixStore> store_ekm =
      natix::NatixStore::Build(imp->Clone(), *ekm, kLimit);
  store_km.status().CheckOK();
  store_ekm.status().CheckOK();

  std::printf("%-28s %12s %12s\n", "", "KM", "EKM");
  std::printf("%-28s %12zu %12zu\n", "records", store_km->record_count(),
              store_ekm->record_count());
  std::printf("%-28s %10zuKB %10zuKB\n", "occupied disk space",
              store_km->TotalDiskBytes() / 1024,
              store_ekm->TotalDiskBytes() / 1024);
  std::printf("%-28s %11.1f%% %11.1f%%\n\n", "page utilization",
              100 * store_km->PageUtilization(),
              100 * store_ekm->PageUtilization());

  const natix::NavigationCostModel cost_model;
  std::printf("%-4s %9s | %11s %11s | %9s %9s | %7s\n", "query", "results",
              "KM cross", "EKM cross", "KM sim", "EKM sim", "speedup");
  for (const natix::XPathMarkQuery& q : natix::XPathMarkQueries()) {
    const natix::Result<natix::PathExpr> path = natix::ParseXPath(q.text);
    path.status().CheckOK();

    natix::AccessStats stats_km, stats_ekm;
    natix::StoreQueryEvaluator eval_km(&*store_km, &stats_km);
    natix::StoreQueryEvaluator eval_ekm(&*store_ekm, &stats_ekm);
    const auto res_km = eval_km.Evaluate(*path);
    const auto res_ekm = eval_ekm.Evaluate(*path);
    res_km.status().CheckOK();
    res_ekm.status().CheckOK();

    const double t_km = cost_model.CostSeconds(stats_km);
    const double t_ekm = cost_model.CostSeconds(stats_ekm);
    std::printf("%-4s %9zu | %11llu %11llu | %8.3fms %8.3fms | %6.2fx\n",
                std::string(q.id).c_str(), res_km->size(),
                static_cast<unsigned long long>(stats_km.record_crossings),
                static_cast<unsigned long long>(stats_ekm.record_crossings),
                t_km * 1e3, t_ekm * 1e3, t_km / t_ekm);
  }
  std::printf("\n(simulated times use the default navigation cost model: "
              "%.0fns intra-record, %.0fns per record crossing)\n",
              cost_model.intra_ns, cost_model.crossing_ns);
  return 0;
}
