// Algorithm comparison across weight limits: how the number of partitions
// and the runtime of each algorithm scale with K, on a chosen document.
//
// Usage: algorithm_comparison [generator] [scale]
// Defaults: mondial at scale 0.2.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/timer.h"
#include "core/algorithm.h"
#include "datagen/generator.h"
#include "xml/importer.h"

int main(int argc, char** argv) {
  const std::string source = argc > 1 ? argv[1] : "mondial";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.2;

  const natix::Result<std::string> xml =
      natix::GenerateDocument(source, 42, scale);
  xml.status().CheckOK();

  static constexpr natix::TotalWeight kLimits[] = {64, 128, 256, 512, 1024};

  std::printf("document: %s (scale %.2f)\n", source.c_str(), scale);
  std::printf("cells: partitions (runtime)\n\n");
  std::printf("%-6s", "algo");
  for (const natix::TotalWeight k : kLimits) {
    std::printf("      K=%-8llu", static_cast<unsigned long long>(k));
  }
  std::printf("\n");

  for (const std::string_view name : natix::AlgorithmNames()) {
    if (name == "FDW" || name == "DHW") continue;  // DHW: see bench_table2
    std::printf("%-6s", std::string(name).c_str());
    for (const natix::TotalWeight k : kLimits) {
      natix::WeightModel model;
      model.max_node_slots = static_cast<uint32_t>(k);
      const natix::Result<natix::ImportedDocument> imp =
          natix::ImportXml(*xml, model);
      imp.status().CheckOK();
      natix::Timer timer;
      const natix::Result<natix::Partitioning> p =
          natix::PartitionWith(name, imp->tree, k);
      const double ms = timer.ElapsedMillis();
      p.status().CheckOK();
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%zu (%.0fms)", p->size(), ms);
      std::printf(" %15s", cell);
    }
    std::printf("\n");
  }
  return 0;
}
